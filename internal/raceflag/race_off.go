//go:build !race

// Package raceflag exposes whether the race detector instrumented this
// build. Zero-allocation assertions skip under -race: the detector's
// instrumentation allocates on paths that are allocation-free in normal
// builds, so the assertions would pin the tool, not the code.
package raceflag

// Enabled reports whether the build is race-instrumented.
const Enabled = false
