package tunnel

import (
	"fmt"

	"antireplay/internal/ike"
)

// Rekey runs a fresh IKE handshake between two locally held peers and
// atomically installs the new generation on both: new SPIs, new keys, fresh
// sequence-number services. a plays the IKE initiator; a's outbound
// direction is the handshake's initiator-to-responder child SA.
//
// (A deployment with the peers on different machines runs the same
// handshake message-by-message with ike.Initiator/ike.Responder and then
// calls InstallKeys on each side; Rekey is the in-process composition used
// by tests, examples, and single-host experiments.)
func Rekey(a, b *Peer, initCfg, respCfg ike.Config) (ike.ChildKeys, error) {
	res, err := ike.Establish(initCfg, respCfg)
	if err != nil {
		return ike.ChildKeys{}, fmt.Errorf("tunnel: rekey handshake: %w", err)
	}
	k := res.Keys
	if err := a.InstallKeys(k.SPIInitToResp, k.InitToResp, k.SPIRespToInit, k.RespToInit); err != nil {
		return k, fmt.Errorf("tunnel: rekey %s: %w", a.Name(), err)
	}
	if err := b.InstallKeys(k.SPIRespToInit, k.RespToInit, k.SPIInitToResp, k.InitToResp); err != nil {
		return k, fmt.Errorf("tunnel: rekey %s: %w", b.Name(), err)
	}
	return k, nil
}

// Pair builds two connected peers from one IKE handshake, wiring a's
// transport to b.Receive and vice versa through the supplied couplers
// (which may add a simulated network in between; nil couples directly).
func Pair(aCfg, bCfg Config, initCfg, respCfg ike.Config,
	aToB, bToA func(wire []byte, deliver func([]byte))) (*Peer, *Peer, error) {

	res, err := ike.Establish(initCfg, respCfg)
	if err != nil {
		return nil, nil, fmt.Errorf("tunnel: pair handshake: %w", err)
	}
	k := res.Keys
	a, err := New(aCfg, k.SPIInitToResp, k.InitToResp, k.SPIRespToInit, k.RespToInit)
	if err != nil {
		return nil, nil, err
	}
	b, err := New(bCfg, k.SPIRespToInit, k.RespToInit, k.SPIInitToResp, k.InitToResp)
	if err != nil {
		return nil, nil, err
	}
	deliverToB := func(wire []byte) { b.Receive(wire) } //nolint:errcheck // verdicts observed via stats
	deliverToA := func(wire []byte) { a.Receive(wire) } //nolint:errcheck
	if aToB == nil {
		a.SetTransport(deliverToB)
	} else {
		a.SetTransport(func(wire []byte) { aToB(wire, deliverToB) })
	}
	if bToA == nil {
		b.SetTransport(deliverToA)
	} else {
		b.SetTransport(func(wire []byte) { bToA(wire, deliverToA) })
	}
	return a, b, nil
}
