package tunnel

import (
	"sync"
	"testing"

	"antireplay/internal/netsim"
	"antireplay/internal/wire"
)

// TestSetTransportRace is the -race regression for the transport swap: the
// datapath (Send, probe auto-ack) reads the transport while failover logic
// replaces it. Before the atomic.Pointer this was an unsynchronized
// read/write of cfg.Transport.
func TestSetTransportRace(t *testing.T) {
	p, err := New(Config{Name: "race", K: 1 << 20}, 1, testKeys(), 2, testKeys())
	if err != nil {
		t.Fatal(err)
	}
	sink := func([]byte) {}
	p.SetTransport(sink)

	stop := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				p.SetTransport(sink)
			} else {
				p.SetTransport(func([]byte) {})
			}
		}
	}()
	for i := 0; i < 2000; i++ {
		if err := p.Send([]byte("ping")); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	close(stop)
	swapper.Wait()
}

// TestAttachLinkSimPair drives a peer pair over wire.SimLinks end to end:
// transports point at Link.Send, inline delivery routes into Receive.
func TestAttachLinkSimPair(t *testing.T) {
	e := netsim.NewEngine(11)
	la, lb := wire.NewSimPair(e, netsim.LinkConfig{}, netsim.LinkConfig{})

	var atB, atA []string
	a, b, err := Pair(
		Config{Name: "a", K: 25, OnData: func(p []byte) { atA = append(atA, string(p)) }},
		Config{Name: "b", K: 25, OnData: func(p []byte) { atB = append(atB, string(p)) }},
		ikeCfg(21, "a"), ikeCfg(22, "b"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	a.AttachLink(la)
	b.AttachLink(lb)

	if err := a.Send([]byte("over-the-wire")); err != nil {
		t.Fatal(err)
	}
	if err := b.Send([]byte("and-back")); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if len(atB) != 1 || atB[0] != "over-the-wire" {
		t.Errorf("atB = %v", atB)
	}
	if len(atA) != 1 || atA[0] != "and-back" {
		t.Errorf("atA = %v", atA)
	}
	if s := la.Stats(); s.TxPackets != 1 {
		t.Errorf("la TxPackets = %d, want 1", s.TxPackets)
	}
}

// TestServeDrainsQueuedDatagrams covers the pull path: without inline
// delivery registered, datagrams queue on the link until Serve pumps them.
func TestServeDrainsQueuedDatagrams(t *testing.T) {
	e := netsim.NewEngine(13)
	la, lb := wire.NewSimPair(e, netsim.LinkConfig{}, netsim.LinkConfig{})

	var atB []string
	a, b, err := Pair(
		Config{Name: "a", K: 25},
		Config{Name: "b", K: 25, OnData: func(p []byte) { atB = append(atB, string(p)) }},
		ikeCfg(31, "a"), ikeCfg(32, "b"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Transports only — receive side pulls explicitly.
	a.SetTransport(func(w []byte) { la.Send(w) }) //nolint:errcheck
	b.SetTransport(func(w []byte) { lb.Send(w) }) //nolint:errcheck

	for i := 0; i < 3; i++ {
		if err := a.Send([]byte("queued")); err != nil {
			t.Fatal(err)
		}
	}
	e.Run()
	if err := b.Serve(lb); err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if len(atB) != 3 {
		t.Errorf("delivered %d, want 3", len(atB))
	}
}
