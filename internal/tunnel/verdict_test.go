package tunnel

import (
	"fmt"
	"testing"

	"antireplay/internal/adversary"
	"antireplay/internal/core"
	"antireplay/internal/netsim"
	"antireplay/internal/wire"
)

// TestOnVerdictUnderSnipe splices a window-edge snipe campaign into a
// real peer pair's wire and measures the attack at the OnVerdict hook:
// every injected edge-adjacent duplicate must surface as a
// VerdictDuplicate discard (zero replay acceptance), every original must
// deliver exactly once, and the verdict counts must reconcile with the
// campaign's own books.
func TestOnVerdictUnderSnipe(t *testing.T) {
	e := netsim.NewEngine(31)
	la, lb := wire.NewSimPair(e, netsim.LinkConfig{}, netsim.LinkConfig{})
	gate := wire.NewGateLink(la)

	var atB []string
	verdicts := map[core.Verdict]int{}
	a, b, err := Pair(
		Config{Name: "a", K: 25},
		Config{Name: "b", K: 25, W: 128,
			OnData:    func(p []byte) { atB = append(atB, string(p)) },
			OnVerdict: func(v core.Verdict) { verdicts[v]++ },
		},
		ikeCfg(41, "a"), ikeCfg(42, "b"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	a.AttachLink(gate)
	b.AttachLink(lb)

	// ESPSeq reads the cleartext sequence number straight off the sealed
	// datagrams a hands to the gate — the campaign sees only wire bytes.
	snipe := NewSnipe(t, gate)
	snipe.Activate()

	const n = 200
	for i := 0; i < n; i++ {
		if err := a.Send([]byte(fmt.Sprintf("msg-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	snipe.Deactivate()
	e.Run()

	if len(atB) != n {
		t.Fatalf("delivered %d payloads, want %d (W=128 > HoldDepth=96: holds arrive late, not lost)", len(atB), n)
	}
	seen := map[string]bool{}
	for _, m := range atB {
		if seen[m] {
			t.Fatalf("payload %q delivered twice", m)
		}
		seen[m] = true
	}

	st := snipe.Stats()
	if st.DupsInjected == 0 || st.Held == 0 {
		t.Fatalf("campaign idle: %+v", st)
	}
	delivered := verdicts[core.VerdictNew] + verdicts[core.VerdictInWindow]
	if delivered != n {
		t.Errorf("delivering verdicts = %d, want %d", delivered, n)
	}
	if got := verdicts[core.VerdictDuplicate]; uint64(got) != st.DupsInjected {
		t.Errorf("VerdictDuplicate = %d, want %d (every injected dup rejected)", got, st.DupsInjected)
	}
	if got := verdicts[core.VerdictStale]; got != 0 {
		t.Errorf("VerdictStale = %d, want 0 at W=128", got)
	}
}

// NewSnipe builds the shared snipe for the verdict tests: hold 1 in 8 by
// 96 packets, duplicate 1 in 10.
func NewSnipe(t *testing.T, gate *wire.GateLink) *adversary.WindowEdgeSnipe {
	t.Helper()
	c := adversary.NewWindowEdgeSnipe(adversary.SnipeConfig{
		HoldEvery: 8, HoldDepth: 96, DupEvery: 10,
	})
	if err := c.Arm(adversary.Hooks{Gate: gate}); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestOnVerdictNarrowWindow prices the defense knob the other way: the
// same snipe against W=64 < HoldDepth=96 loses every matured hostage —
// goodput lost with zero wire drops. (With ESN enabled the deep-late
// packets are not even VerdictStale: the receiver infers them into the
// next 2^32 epoch and the ICV check rejects them, RFC 4303 Appendix A —
// so the loss shows up as missing deliveries, not stale verdicts.)
func TestOnVerdictNarrowWindow(t *testing.T) {
	e := netsim.NewEngine(32)
	la, lb := wire.NewSimPair(e, netsim.LinkConfig{}, netsim.LinkConfig{})
	gate := wire.NewGateLink(la)

	var atB int
	verdicts := map[core.Verdict]int{}
	a, b, err := Pair(
		Config{Name: "a", K: 25},
		Config{Name: "b", K: 25, W: 64,
			OnData:    func([]byte) { atB++ },
			OnVerdict: func(v core.Verdict) { verdicts[v]++ },
		},
		ikeCfg(43, "a"), ikeCfg(44, "b"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	a.AttachLink(gate)
	b.AttachLink(lb)
	_ = b

	snipe := NewSnipe(t, gate)
	snipe.Activate()
	const n = 200
	for i := 0; i < n; i++ {
		if err := a.Send([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	snipe.Deactivate()
	e.Run()

	if atB >= n {
		t.Fatalf("W=64: delivered %d of %d; snipe should cost goodput (verdicts %v)", atB, n, verdicts)
	}
	st := snipe.Stats()
	if st.Held == 0 || st.Held != st.Released {
		t.Fatalf("hostage books don't balance: %+v", st)
	}
	// Every payload that went missing was a hostage the narrow window
	// could no longer place; nothing else on the path drops.
	if lost := n - atB; uint64(lost) > st.Held {
		t.Errorf("lost %d > hostages %d", lost, st.Held)
	}
	if delivered := verdicts[core.VerdictNew] + verdicts[core.VerdictInWindow]; delivered != atB {
		t.Errorf("delivering verdicts = %d, OnData saw %d", delivered, atB)
	}
}
