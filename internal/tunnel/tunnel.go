// Package tunnel bundles both directions of an IPsec association at one
// host — the paper's §6 observation that "usually an IPsec communication
// between two hosts is bi-directional, which means that a sender is also a
// receiver and vice versa" — and automates the whole reset lifecycle:
//
//   - Send seals application payloads through the outbound SA;
//   - Receive opens wire bytes, auto-answers DPD probes, feeds the liveness
//     monitor, and hands data payloads to the application;
//   - Reset crashes both halves of the host;
//   - Wake recovers both (FETCH + leap + SAVE) and announces the
//     resurrection with the secured "I am up" message, which the peer's
//     window provably cannot confuse with a replay.
//
// A Peer also supports in-place rekeying (Rekey/InstallKeys): when the SA
// pair approaches its lifetime, fresh keys and SPIs replace the old ones
// and both sequence-number services restart on fresh stores, as a new SA
// does in RFC 4301.
package tunnel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"antireplay/internal/core"
	"antireplay/internal/dpd"
	"antireplay/internal/ipsec"
	"antireplay/internal/store"
	"antireplay/internal/wire"
)

// Sentinel errors.
var (
	// ErrNoTransport reports a Send with no transport configured.
	ErrNoTransport = errors.New("tunnel: no transport configured")
	// ErrNotRecovered reports an operation on a host whose wake failed.
	ErrNotRecovered = errors.New("tunnel: host has not recovered")
)

// StoreFactory builds the durable cell for a (SPI, direction) pair.
// Directions are "tx" and "rx". A file-backed factory gives each SA its own
// counter file, as a real gateway keeps per-SA state.
type StoreFactory func(spi uint32, direction string) store.Store

// MemStores is a StoreFactory producing independent in-memory stores.
func MemStores(uint32, string) store.Store { return &store.Mem{} }

// Config parameterizes one Peer (one host's half of the association).
type Config struct {
	// Name labels the host (e.g. "east").
	Name string
	// K is the SAVE interval for both directions. Required.
	K uint64
	// W is the anti-replay window width (0 = 64).
	W int
	// Stores builds durable cells per SA; nil means MemStores.
	Stores StoreFactory
	// Savers, when non-nil, supplies the BackgroundSaver for a given store
	// (e.g. a netsim.SimSaver factory); nil means synchronous saves.
	Savers func(st store.Store) core.BackgroundSaver
	// Transport transmits sealed wire bytes toward the peer. Required for
	// Send/Wake; may be set later with SetTransport.
	Transport func(wire []byte)
	// OnData receives delivered application payloads.
	OnData func(payload []byte)
	// Monitor, when non-nil, is fed by inbound traffic and probe acks.
	Monitor *dpd.Monitor
	// OnVerdict, when non-nil, observes every Receive's anti-replay
	// verdict (delivered or not) before payload dispatch. This is the
	// goodput-SLO measurement point: campaign harnesses count stale and
	// duplicate discards here to price an attack's degradation, without
	// touching the datapath. Called inline on the receive path.
	OnVerdict func(v core.Verdict)
	// Lifetime bounds each SA generation.
	Lifetime ipsec.Lifetime
	// Clock supplies trace/lifetime timestamps; nil means zero.
	Clock func() time.Duration
}

func (c Config) validate() error {
	if c.K == 0 {
		return fmt.Errorf("%w: K required", core.ErrConfig)
	}
	return nil
}

// transportFn aliases the wire-transmit callback so it can live behind an
// atomic.Pointer.
type transportFn = func(wire []byte)

// Peer is one host's bidirectional endpoint.
type Peer struct {
	cfg Config

	// transport is the current wire-transmit callback. It is read on the
	// datapath (Send, probe auto-ack, AnnounceWhenUp) and may be replaced
	// concurrently (failover re-pointing a standby, a rekey swapping the
	// socket), so it lives behind an atomic pointer rather than in cfg.
	transport atomic.Pointer[transportFn]

	out *ipsec.OutboundSA
	in  *ipsec.InboundSA

	txStore store.Store
	rxStore store.Store

	generation int // bumped by each rekey
}

// New builds a peer with the given keys and SPIs: outKeys/outSPI secure
// traffic this host sends; inKeys/inSPI traffic it receives.
func New(cfg Config, outSPI uint32, outKeys ipsec.KeyMaterial, inSPI uint32, inKeys ipsec.KeyMaterial) (*Peer, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Stores == nil {
		cfg.Stores = MemStores
	}
	p := &Peer{cfg: cfg}
	if cfg.Transport != nil {
		p.transport.Store(&cfg.Transport)
	}
	if err := p.install(outSPI, outKeys, inSPI, inKeys); err != nil {
		return nil, err
	}
	return p, nil
}

// install wires fresh SAs (initial setup and rekey share this path).
func (p *Peer) install(outSPI uint32, outKeys ipsec.KeyMaterial, inSPI uint32, inKeys ipsec.KeyMaterial) error {
	txStore := p.cfg.Stores(outSPI, "tx")
	rxStore := p.cfg.Stores(inSPI, "rx")

	var txSaver, rxSaver core.BackgroundSaver
	if p.cfg.Savers != nil {
		txSaver = p.cfg.Savers(txStore)
		rxSaver = p.cfg.Savers(rxStore)
	}
	// StrictHorizon is on for both directions: the tunnel is the
	// production-facing composition, and the guard makes the paper's
	// no-duplicate-delivery theorem unconditional (see the receiver-side
	// analysis gap documented in README.md) at the cost of backpressure /
	// bounded drops when persistence lags.
	snd, err := core.NewSender(core.SenderConfig{
		K: p.cfg.K, Store: txStore, Saver: txSaver,
		Name: p.cfg.Name + "/tx", Clock: p.cfg.Clock,
		StrictHorizon: true,
	})
	if err != nil {
		return fmt.Errorf("tunnel: %s sender: %w", p.cfg.Name, err)
	}
	rcv, err := core.NewReceiver(core.ReceiverConfig{
		K: p.cfg.K, W: p.cfg.W, Store: rxStore, Saver: rxSaver,
		Name: p.cfg.Name + "/rx", Clock: p.cfg.Clock,
		StrictHorizon: true,
	})
	if err != nil {
		return fmt.Errorf("tunnel: %s receiver: %w", p.cfg.Name, err)
	}
	out, err := ipsec.NewOutboundSA(outSPI, outKeys, snd, true, p.cfg.Lifetime, p.cfg.Clock)
	if err != nil {
		return fmt.Errorf("tunnel: %s outbound SA: %w", p.cfg.Name, err)
	}
	in, err := ipsec.NewInboundSA(inSPI, inKeys, rcv, true, p.cfg.Lifetime, p.cfg.Clock)
	if err != nil {
		return fmt.Errorf("tunnel: %s inbound SA: %w", p.cfg.Name, err)
	}
	p.out, p.in = out, in
	p.txStore, p.rxStore = txStore, rxStore
	return nil
}

// SetTransport installs or replaces the wire transport. It is safe to call
// concurrently with Send/Receive: in-flight datapath operations finish on
// the transport they loaded, later ones see the replacement.
func (p *Peer) SetTransport(send func(wire []byte)) {
	if send == nil {
		p.transport.Store(nil)
		return
	}
	p.transport.Store(&send)
}

// transportFunc loads the current transport (nil if none installed).
func (p *Peer) transportFunc() transportFn {
	if fp := p.transport.Load(); fp != nil {
		return *fp
	}
	return nil
}

// AttachLink points the peer's transport at l and, when l supports inline
// delivery (simulated links), routes every received datagram into Receive.
// For blocking links (sockets) pair it with Serve.
func (p *Peer) AttachLink(l wire.Link) {
	p.SetTransport(func(w []byte) {
		l.Send(w) //nolint:errcheck // datapath sends are fire-and-forget
	})
	if ir, ok := l.(wire.InlineReceiver); ok {
		ir.OnRecv(func(b []byte) {
			p.Receive(b) //nolint:errcheck // rejections are the protocol's verdict, not a pump error
		})
	}
}

// Serve pumps l.Recv into Receive until the link closes (blocking links)
// or runs dry (simulated links return wire.ErrNoDatagram). Authentication
// and replay rejections are protocol verdicts, not pump errors, and do not
// stop the loop.
func (p *Peer) Serve(l wire.Link) error {
	for {
		b, err := l.Recv()
		switch {
		case err == nil:
			p.Receive(b) //nolint:errcheck
		case errors.Is(err, wire.ErrNoDatagram), errors.Is(err, wire.ErrClosed):
			return nil
		default:
			return err
		}
	}
}

// Name returns the host label.
func (p *Peer) Name() string { return p.cfg.Name }

// Outbound and Inbound expose the SA halves (e.g. for stats).
func (p *Peer) Outbound() *ipsec.OutboundSA { return p.out }

// Inbound returns the receiving half.
func (p *Peer) Inbound() *ipsec.InboundSA { return p.in }

// Generation returns how many rekeys have occurred.
func (p *Peer) Generation() int { return p.generation }

// Send seals payload and transmits it.
func (p *Peer) Send(payload []byte) error {
	transport := p.transportFunc()
	if transport == nil {
		return ErrNoTransport
	}
	wire, err := p.out.Seal(payload)
	if err != nil {
		return err
	}
	transport(wire)
	return nil
}

// Receive processes wire bytes from the peer: verification, anti-replay,
// DPD dispatch, data delivery. Control payloads (probes, acks, resync) are
// consumed here; data payloads go to OnData. The returned verdict reports
// the anti-replay decision; err covers authentication and parse failures.
func (p *Peer) Receive(wire []byte) (core.Verdict, error) {
	payload, verdict, err := p.in.Open(wire)
	if p.cfg.OnVerdict != nil && err == nil {
		p.cfg.OnVerdict(verdict)
	}
	if err != nil {
		return verdict, err
	}
	if !verdict.Delivered() {
		return verdict, nil
	}
	// Authenticated, fresh traffic: proof of life.
	if p.cfg.Monitor != nil {
		p.cfg.Monitor.NoteInbound()
	}
	if kind, seq, ok := dpd.ParsePayload(payload); ok {
		switch kind {
		case "probe":
			// Auto-acknowledge R-U-THERE.
			if transport := p.transportFunc(); transport != nil {
				if wire, err := p.out.Seal(dpd.AckPayload(seq)); err == nil {
					transport(wire)
				}
			}
		case "ack":
			if p.cfg.Monitor != nil {
				p.cfg.Monitor.NoteAck(seq)
			}
		case "resync":
			// The secured "I am up": nothing beyond NoteInbound needed —
			// its fresh (leaped) sequence number already proved itself.
		}
		return verdict, nil
	}
	if p.cfg.OnData != nil {
		p.cfg.OnData(payload)
	}
	return verdict, nil
}

// Reset crashes the host: both directions lose their volatile state.
func (p *Peer) Reset() {
	p.out.Sender().Reset()
	p.in.Receiver().Reset()
}

// Wake recovers both directions and, once the sender half is serving again,
// transmits the §6 "I am up" announcement. With synchronous savers the
// announcement goes out before Wake returns; with background savers it is
// sent by the completion callback via AnnounceWhenUp.
func (p *Peer) Wake() error {
	p.in.Receiver().Wake()
	p.out.Sender().Wake()
	return p.AnnounceWhenUp()
}

// AnnounceWhenUp sends the resurrection announcement if the sender half is
// up; it reports ErrNotRecovered while the post-wake SAVE is still running
// (call again from the saver's completion, or poll).
//
// The announcement is sent twice: the wake-up leap puts our sequence
// numbers up to 2K beyond what the peer's strict durable horizon may cover,
// so the peer can drop the first copy while starting the save that extends
// its horizon; with synchronous persistence the second copy then lands.
// (Under asynchronous persistence the peer revives at the latest with the
// first data packet after its horizon save commits.)
func (p *Peer) AnnounceWhenUp() error {
	if p.out.Sender().State() != core.StateUp {
		if err := p.out.Sender().LastWakeError(); err != nil {
			return fmt.Errorf("tunnel: %s wake: %w", p.cfg.Name, err)
		}
		return ErrNotRecovered
	}
	transport := p.transportFunc()
	if transport == nil {
		return nil
	}
	for i := 0; i < 2; i++ {
		wire, err := p.out.Seal(dpd.ResyncPayload())
		if err != nil {
			return err
		}
		transport(wire)
	}
	return nil
}

// InstallKeys replaces both SAs with a fresh generation (new SPIs, keys,
// counters, and durable cells) — the RFC 4301 rekey. Traffic sealed with
// the old keys is no longer accepted; callers coordinate the switchover
// with the peer (see Rekey).
func (p *Peer) InstallKeys(outSPI uint32, outKeys ipsec.KeyMaterial, inSPI uint32, inKeys ipsec.KeyMaterial) error {
	if err := p.install(outSPI, outKeys, inSPI, inKeys); err != nil {
		return err
	}
	p.generation++
	return nil
}

// NeedsRekey reports whether either SA has passed its soft lifetime.
func (p *Peer) NeedsRekey() bool {
	return p.out.State() != ipsec.LifetimeOK || p.in.State() != ipsec.LifetimeOK
}
