package tunnel

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"antireplay/internal/core"
	"antireplay/internal/dpd"
	"antireplay/internal/ike"
	"antireplay/internal/ipsec"
	"antireplay/internal/netsim"
	"antireplay/internal/store"
)

func ikeCfg(seed int64, id string) ike.Config {
	return ike.Config{
		PSK:   []byte("tunnel-test-psk"),
		Rand:  rand.New(rand.NewSource(seed)),
		Group: ike.TestGroup(),
		ID:    id,
	}
}

func directPair(t *testing.T, aCfg, bCfg Config) (*Peer, *Peer) {
	t.Helper()
	a, b, err := Pair(aCfg, bCfg, ikeCfg(1, "a"), ikeCfg(2, "b"), nil, nil)
	if err != nil {
		t.Fatalf("Pair: %v", err)
	}
	return a, b
}

func TestPairDataFlow(t *testing.T) {
	var got []string
	a, b := directPair(t,
		Config{Name: "a", K: 25},
		Config{Name: "b", K: 25, OnData: func(p []byte) { got = append(got, string(p)) }},
	)
	_ = b
	for i := 0; i < 5; i++ {
		if err := a.Send([]byte(fmt.Sprintf("msg-%d", i))); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	if len(got) != 5 || got[0] != "msg-0" || got[4] != "msg-4" {
		t.Errorf("got = %v", got)
	}
}

func TestPairBidirectional(t *testing.T) {
	var fromA, fromB []string
	a, b := directPair(t,
		Config{Name: "a", K: 25, OnData: func(p []byte) { fromB = append(fromB, string(p)) }},
		Config{Name: "b", K: 25, OnData: func(p []byte) { fromA = append(fromA, string(p)) }},
	)
	if err := a.Send([]byte("east->west")); err != nil {
		t.Fatal(err)
	}
	if err := b.Send([]byte("west->east")); err != nil {
		t.Fatal(err)
	}
	if len(fromA) != 1 || fromA[0] != "east->west" {
		t.Errorf("fromA = %v", fromA)
	}
	if len(fromB) != 1 || fromB[0] != "west->east" {
		t.Errorf("fromB = %v", fromB)
	}
}

func TestSendWithoutTransport(t *testing.T) {
	p, err := New(Config{Name: "solo", K: 25}, 1, testKeys(), 2, testKeys())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Send([]byte("x")); !errors.Is(err, ErrNoTransport) {
		t.Errorf("Send = %v, want ErrNoTransport", err)
	}
}

func testKeys() ipsec.KeyMaterial {
	k := ipsec.KeyMaterial{AuthKey: make([]byte, ipsec.AuthKeySize)}
	for i := range k.AuthKey {
		k.AuthKey[i] = byte(i + 1)
	}
	return k
}

func TestHostResetWakeResync(t *testing.T) {
	// Full §6 cycle at the host level: b resets, a's monitor declares it
	// dead, b wakes and the automatic resync revives the association.
	engine := netsim.NewEngine(3)
	var monitor *dpd.Monitor

	var delivered []string
	aCfg := Config{Name: "a", K: 25, OnData: func(p []byte) { delivered = append(delivered, string(p)) }}
	bCfg := Config{Name: "b", K: 25}
	a, b, err := Pair(aCfg, bCfg, ikeCfg(5, "a"), ikeCfg(6, "b"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	monitor, err = dpd.NewMonitor(dpd.Config{
		Engine:      engine,
		IdleTimeout: 10 * time.Second,
		AckTimeout:  2 * time.Second,
		MaxProbes:   2,
		HoldTime:    time.Minute,
		SendProbe: func(seq uint64) {
			// a probes through the tunnel; a dead b will not answer.
			wire, err := a.Outbound().Seal(dpd.ProbePayload(seq))
			if err != nil {
				return
			}
			b.Receive(wire) //nolint:errcheck // dead peers drop traffic
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rewire a's monitor into its receive path.
	a.cfg.Monitor = monitor

	// Normal traffic keeps the monitor alive.
	if err := b.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if monitor.State() != dpd.StateAlive {
		t.Fatalf("monitor = %v, want alive", monitor.State())
	}

	// b crashes; the monitor probes and declares it dead.
	b.Reset()
	engine.RunUntil(20 * time.Second)
	if monitor.State() != dpd.StateDead {
		t.Fatalf("monitor = %v, want dead", monitor.State())
	}

	// An adversary replaying b's old packet cannot revive the association:
	// replay the recorded "hello" wire bytes... (the Receive path only
	// notes life on *delivered* traffic). Build the replay from a fresh
	// capture instead: b.Send recorded nothing, so synthesize by sealing
	// before the reset — covered in TestReplayCannotRevive below.

	// b wakes: both halves recover and the resync flows automatically.
	if err := b.Wake(); err != nil {
		t.Fatalf("Wake: %v", err)
	}
	if monitor.State() != dpd.StateAlive {
		t.Fatalf("monitor = %v, want alive after resync", monitor.State())
	}

	// Traffic flows again (post-leap sequence numbers).
	if err := b.Send([]byte("back")); err != nil {
		t.Fatal(err)
	}
	if len(delivered) != 2 || delivered[1] != "back" {
		t.Errorf("delivered = %v", delivered)
	}
}

func TestReplayCannotRevive(t *testing.T) {
	engine := netsim.NewEngine(4)
	var captured []byte
	aCfg := Config{Name: "a", K: 25}
	bCfg := Config{Name: "b", K: 25}
	// Capture b's traffic on the way to a.
	a, b, err := Pair(aCfg, bCfg, ikeCfg(7, "a"), ikeCfg(8, "b"),
		nil,
		func(wire []byte, deliver func([]byte)) {
			if captured == nil {
				captured = append([]byte(nil), wire...)
			}
			deliver(wire)
		})
	if err != nil {
		t.Fatal(err)
	}
	monitor, err := dpd.NewMonitor(dpd.Config{
		Engine:      engine,
		IdleTimeout: 10 * time.Second,
		AckTimeout:  2 * time.Second,
		MaxProbes:   2,
		HoldTime:    time.Minute,
		SendProbe:   func(uint64) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	a.cfg.Monitor = monitor

	if err := b.Send([]byte("pre-reset")); err != nil {
		t.Fatal(err)
	}
	if captured == nil {
		t.Fatal("no capture")
	}

	b.Reset()
	engine.RunUntil(20 * time.Second)
	if monitor.State() != dpd.StateDead {
		t.Fatalf("monitor = %v, want dead", monitor.State())
	}

	// The adversary replays b's old authentic packet directly into a.
	v, err := a.Receive(captured)
	if err != nil {
		t.Fatalf("Receive: %v", err)
	}
	if v.Delivered() {
		t.Fatal("SAFETY: replayed packet delivered")
	}
	if monitor.State() != dpd.StateDead {
		t.Fatal("SAFETY: replay revived a dead association")
	}
}

func TestReceiveRejectsTamper(t *testing.T) {
	a, b := directPair(t, Config{Name: "a", K: 25}, Config{Name: "b", K: 25})
	_ = b
	wire, err := a.Outbound().Seal([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	wire[len(wire)-1] ^= 1
	if _, err := b.Receive(wire); !errors.Is(err, ipsec.ErrAuth) {
		t.Errorf("Receive(tampered) = %v, want ErrAuth", err)
	}
}

func TestProbeAutoAck(t *testing.T) {
	engine := netsim.NewEngine(9)
	aCfg := Config{Name: "a", K: 25}
	bCfg := Config{Name: "b", K: 25}
	a, _, err := Pair(aCfg, bCfg, ikeCfg(10, "a"), ikeCfg(11, "b"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	monitor, err := dpd.NewMonitor(dpd.Config{
		Engine:      engine,
		IdleTimeout: 10 * time.Second,
		AckTimeout:  2 * time.Second,
		MaxProbes:   3,
		HoldTime:    time.Minute,
		SendProbe: func(seq uint64) {
			_ = a.Send(dpd.ProbePayload(seq)) // through the tunnel
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	a.cfg.Monitor = monitor

	// No data traffic at all: probes fire, b auto-acks, the monitor keeps
	// returning to alive and the association never dies.
	engine.RunUntil(2 * time.Minute)
	if monitor.State() == dpd.StateDead || monitor.State() == dpd.StateExpired {
		t.Fatalf("monitor = %v; auto-ack should keep the peer alive", monitor.State())
	}
	probes, acks, deaths := monitor.Stats()
	if probes == 0 || acks == 0 {
		t.Errorf("probes=%d acks=%d, want both > 0", probes, acks)
	}
	if deaths != 0 {
		t.Errorf("deaths = %d, want 0", deaths)
	}
}

func TestRekeySwitchesGeneration(t *testing.T) {
	var got []string
	a, b := directPair(t,
		Config{Name: "a", K: 25},
		Config{Name: "b", K: 25, OnData: func(p []byte) { got = append(got, string(p)) }},
	)
	if err := a.Send([]byte("gen0")); err != nil {
		t.Fatal(err)
	}
	oldOutSPI := a.Outbound().SPI()

	// Capture an old-generation packet for a cross-generation replay.
	oldWire, err := a.Outbound().Seal([]byte("old-generation"))
	if err != nil {
		t.Fatal(err)
	}

	if _, err := Rekey(a, b, ikeCfg(20, "a"), ikeCfg(21, "b")); err != nil {
		t.Fatalf("Rekey: %v", err)
	}
	if a.Generation() != 1 || b.Generation() != 1 {
		t.Errorf("generations = %d/%d, want 1/1", a.Generation(), b.Generation())
	}
	if a.Outbound().SPI() == oldOutSPI {
		t.Error("rekey must change the SPI")
	}

	// Old-generation traffic fails outright: wrong SPI/keys.
	if _, err := b.Receive(oldWire); err == nil {
		t.Error("old-generation packet accepted after rekey")
	}

	// New-generation traffic flows, numbering restarted.
	if err := a.Send([]byte("gen1")); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1] != "gen1" {
		t.Errorf("got = %v", got)
	}
	if bytes, packets := a.Outbound().Counters(); packets != 1 || bytes == 0 {
		t.Errorf("new generation counters = (%d, %d), want fresh", bytes, packets)
	}
}

func TestNeedsRekeyOnSoftLifetime(t *testing.T) {
	a, b := directPair(t,
		Config{Name: "a", K: 25, Lifetime: ipsec.Lifetime{SoftBytes: 64}},
		Config{Name: "b", K: 25},
	)
	_ = b
	if a.NeedsRekey() {
		t.Fatal("fresh SA should not need rekey")
	}
	if err := a.Send(make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if !a.NeedsRekey() {
		t.Error("soft-expired SA should need rekey")
	}
}

func TestRekeyAfterResetKeepsSafety(t *testing.T) {
	// Reset + wake + rekey in sequence: across all of it, b never delivers
	// the same payload twice.
	var got []string
	a, b := directPair(t,
		Config{Name: "a", K: 25},
		Config{Name: "b", K: 25, OnData: func(p []byte) { got = append(got, string(p)) }},
	)
	for i := 0; i < 10; i++ {
		if err := a.Send([]byte(fmt.Sprintf("pre-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	a.Reset()
	if err := a.Wake(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := a.Send([]byte(fmt.Sprintf("mid-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Rekey(a, b, ikeCfg(30, "a"), ikeCfg(31, "b")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := a.Send([]byte(fmt.Sprintf("post-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[string]bool{}
	for _, s := range got {
		if seen[s] {
			t.Fatalf("payload %q delivered twice", s)
		}
		seen[s] = true
	}
	if len(got) != 30 {
		t.Errorf("delivered %d, want 30", len(got))
	}
}

func TestConfigValidation(t *testing.T) {
	_, err := New(Config{Name: "x"}, 1, testKeys(), 2, testKeys())
	if !errors.Is(err, core.ErrConfig) {
		t.Errorf("New without K = %v, want ErrConfig", err)
	}
}

// ghostStore accepts saves but never returns a value, modelling wiped
// persistent memory.
type ghostStore struct{}

func (ghostStore) Save(uint64) error            { return nil }
func (ghostStore) Fetch() (uint64, bool, error) { return 0, false, nil }

func TestWakeErrorSurfaced(t *testing.T) {
	p, err := New(Config{
		Name:   "x",
		K:      25,
		Stores: func(uint32, string) store.Store { return ghostStore{} },
	}, 1, testKeys(), 2, testKeys())
	if err != nil {
		t.Fatal(err)
	}
	p.Reset()
	if err := p.Wake(); !errors.Is(err, core.ErrNoSavedState) {
		t.Errorf("Wake = %v, want wrapped ErrNoSavedState", err)
	}
}
