package rekey

import "antireplay/internal/telemetry"

var (
	_ telemetry.Collector = Stats{}
	_ telemetry.Collector = (*Orchestrator)(nil)
)

// CollectTelemetry emits the rekey lifecycle phase counts: how many
// rollovers each phase of the make-before-break has completed or lost.
func (s Stats) CollectTelemetry(emit telemetry.Emit) {
	emit("soft_triggers_total", telemetry.KindCounter, float64(s.SoftTriggers))
	emit("rollovers_total", telemetry.KindCounter, float64(s.Rollovers))
	emit("exchange_failures_total", telemetry.KindCounter, float64(s.ExchangeFailures))
	emit("abandoned_total", telemetry.KindCounter, float64(s.Abandoned))
	emit("retired_total", telemetry.KindCounter, float64(s.Retired))
}

// CollectTelemetry emits a live snapshot of the orchestrator's counters.
func (o *Orchestrator) CollectTelemetry(emit telemetry.Emit) {
	o.Stats().CollectTelemetry(emit)
}

// EventObserver adapts a telemetry event ring to Config.Observer: every
// rekey lifecycle event lands in the ring under layer "rekey". Safe under
// the Observer contract (fast, no call-backs — one atomic claim and a
// pointer store). Compose with an existing observer by calling both.
func EventObserver(ev *telemetry.Events) func(Event) {
	return func(e Event) {
		ev.RecordDetail("rekey", e.Kind.String(), e.ABSPI, uint64(e.Attempt), "")
	}
}
