package rekey

import (
	"errors"
	"math/rand"
	"net/netip"
	"path/filepath"
	"testing"
	"time"

	"antireplay/internal/core"
	"antireplay/internal/ike"
	"antireplay/internal/ipsec"
	"antireplay/internal/store"
)

var (
	addrA = netip.AddrFrom4([4]byte{10, 0, 0, 1})
	addrB = netip.AddrFrom4([4]byte{10, 0, 0, 2})
	selAB = ipsec.Selector{Src: netip.PrefixFrom(addrA, 32), Dst: netip.PrefixFrom(addrB, 32)}
	selBA = ipsec.Selector{Src: netip.PrefixFrom(addrB, 32), Dst: netip.PrefixFrom(addrA, 32)}
)

func ikeCfg(seed int64, id string) ike.Config {
	return ike.Config{
		PSK:   []byte("orchestrator-psk"),
		Rand:  rand.New(rand.NewSource(seed)),
		Group: ike.TestGroup(),
		ID:    id,
	}
}

func gatewayT(t *testing.T, name string, life ipsec.Lifetime) *ipsec.Gateway {
	t.Helper()
	j, err := store.OpenJournal(filepath.Join(t.TempDir(), name+".journal"))
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	t.Cleanup(func() { j.Close() })
	g, err := ipsec.NewGateway(ipsec.GatewayConfig{Journal: j, K: 5, W: 64, Lifetime: life})
	if err != nil {
		t.Fatalf("NewGateway: %v", err)
	}
	t.Cleanup(func() { g.Close() })
	return g
}

// pairT builds two gateways joined by one IKE-established tunnel and an
// orchestrator tracking it.
func pairT(t *testing.T, life ipsec.Lifetime, cfg Config) (*ipsec.Gateway, *ipsec.Gateway, *Orchestrator, *Tunnel) {
	t.Helper()
	A := gatewayT(t, "a", life)
	B := gatewayT(t, "b", life)
	res, err := ike.Establish(ikeCfg(1, "a"), ikeCfg(2, "b"))
	if err != nil {
		t.Fatalf("Establish: %v", err)
	}
	k := res.Keys
	if _, err := A.AddOutbound(k.SPIInitToResp, k.InitToResp, selAB); err != nil {
		t.Fatalf("A.AddOutbound: %v", err)
	}
	if _, err := A.AddInbound(k.SPIRespToInit, k.RespToInit); err != nil {
		t.Fatalf("A.AddInbound: %v", err)
	}
	if _, err := B.AddInbound(k.SPIInitToResp, k.InitToResp); err != nil {
		t.Fatalf("B.AddInbound: %v", err)
	}
	if _, err := B.AddOutbound(k.SPIRespToInit, k.RespToInit, selBA); err != nil {
		t.Fatalf("B.AddOutbound: %v", err)
	}
	cfg.A, cfg.B = A, B
	if cfg.Exchange == nil {
		cfg.IKEInit = ikeCfg(3, "a")
		cfg.IKEResp = ikeCfg(4, "b")
	}
	o, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	tun, err := o.Track(k.SPIInitToResp, k.SPIRespToInit)
	if err != nil {
		t.Fatalf("Track: %v", err)
	}
	return A, B, o, tun
}

// sealAB seals one payload A->B through the gateway with ErrSaveLag retry.
func sealAB(t *testing.T, A *ipsec.Gateway, payload []byte) []byte {
	t.Helper()
	for i := 0; i < 10000; i++ {
		wire, err := A.Seal(addrA, addrB, payload)
		if err == nil {
			return wire
		}
		if !errors.Is(err, core.ErrSaveLag) {
			t.Fatalf("Seal: %v", err)
		}
		time.Sleep(20 * time.Microsecond)
	}
	t.Fatal("Seal: ErrSaveLag never cleared")
	return nil
}

// openB opens a wire at B with horizon retry.
func openB(t *testing.T, B *ipsec.Gateway, wire []byte) ([]byte, core.Verdict, error) {
	t.Helper()
	for i := 0; i < 10000; i++ {
		payload, verdict, err := B.Open(wire)
		if verdict != core.VerdictHorizon {
			return payload, verdict, err
		}
		time.Sleep(20 * time.Microsecond)
	}
	t.Fatal("Open: VerdictHorizon never cleared")
	return nil, 0, nil
}

func TestRolloverMakeBeforeBreak(t *testing.T) {
	A, B, o, tun := pairT(t, ipsec.Lifetime{}, Config{})
	oldAB, oldBA := tun.SPIs()

	// Traffic on generation 0, plus one in-flight packet the rollover must
	// not strand, and a replay set the successor must not accept.
	var history [][]byte
	for i := 0; i < 20; i++ {
		wire := sealAB(t, A, []byte("gen0"))
		history = append(history, wire)
		if _, verdict, err := openB(t, B, wire); err != nil || !verdict.Delivered() {
			t.Fatalf("gen0 delivery %d = (%v, %v)", i, verdict, err)
		}
	}
	inflight := sealAB(t, A, []byte("in flight across the cutover"))

	if err := o.Rollover(tun); err != nil {
		t.Fatalf("Rollover: %v", err)
	}
	newAB, newBA := tun.SPIs()
	if newAB == oldAB || newBA == oldBA {
		t.Fatalf("rollover kept an old SPI: %#x %#x -> %#x %#x", oldAB, oldBA, newAB, newBA)
	}
	if tun.State() != StateDraining {
		t.Fatalf("state = %v, want draining", tun.State())
	}

	// New traffic runs on the successor.
	wire := sealAB(t, A, []byte("gen1"))
	if spi, _ := ipsec.ParseSPI(wire); spi != newAB {
		t.Errorf("post-cutover SPI %#x, want %#x", spi, newAB)
	}
	if _, verdict, err := openB(t, B, wire); err != nil || !verdict.Delivered() {
		t.Fatalf("gen1 delivery = (%v, %v)", verdict, err)
	}

	// The in-flight old-SPI packet still verifies during the drain.
	payload, verdict, err := openB(t, B, inflight)
	if err != nil || !verdict.Delivered() || string(payload) != "in flight across the cutover" {
		t.Fatalf("in-flight packet = (%q, %v, %v), want delivered", payload, verdict, err)
	}

	// Replays of generation 0 are rejected, not re-accepted by a confused
	// successor window.
	for _, w := range history {
		if _, verdict, _ := openB(t, B, w); verdict.Delivered() {
			t.Fatal("old-generation replay delivered during drain")
		}
	}

	// Grace 0: the next Poll retires the old generation and tombstones its
	// journal cells.
	if err := o.Poll(); err != nil {
		t.Fatalf("Poll: %v", err)
	}
	if tun.State() != StateSteady {
		t.Fatalf("state after retire = %v, want steady", tun.State())
	}
	if _, ok, _ := A.Journal().Cell(ipsec.OutboundKey(oldAB)).Fetch(); ok {
		t.Error("A's old outbound counter survived retirement")
	}
	if _, ok, _ := B.Journal().Cell(ipsec.InboundKey(oldAB)).Fetch(); ok {
		t.Error("B's old inbound edge survived retirement")
	}
	if _, _, err := B.Open(inflight); !errors.Is(err, ipsec.ErrUnknownSPI) {
		t.Errorf("old SPI after retirement: %v, want ErrUnknownSPI", err)
	}
	st := o.Stats()
	if st.Rollovers != 1 || st.Retired != 1 {
		t.Errorf("stats = %+v, want 1 rollover, 1 retired", st)
	}
	if tun.Generation() != 1 {
		t.Errorf("generation = %d, want 1", tun.Generation())
	}
}

func TestSoftLifetimeTriggersRollover(t *testing.T) {
	// ~6 packets of 64-byte payloads trip the soft bound; hard bound far out.
	A, B, o, tun := pairT(t, ipsec.Lifetime{SoftBytes: 512, HardBytes: 1 << 20}, Config{})
	if err := o.Poll(); err != nil {
		t.Fatalf("Poll before soft: %v", err)
	}
	if got := o.Stats().SoftTriggers; got != 0 {
		t.Fatalf("premature soft trigger (%d)", got)
	}
	payload := make([]byte, 64)
	for i := 0; i < 10; i++ {
		wire := sealAB(t, A, payload)
		openB(t, B, wire)
	}
	if err := o.Poll(); err != nil {
		t.Fatalf("Poll at soft: %v", err)
	}
	st := o.Stats()
	if st.SoftTriggers != 1 || st.Rollovers != 1 {
		t.Fatalf("stats = %+v, want 1 soft trigger and 1 rollover", st)
	}
	if tun.State() != StateDraining {
		t.Fatalf("state = %v, want draining", tun.State())
	}
	// The successor has a fresh lifetime budget: no immediate re-trigger
	// (the draining state also guards against one).
	if err := o.Poll(); err != nil {
		t.Fatalf("Poll after rollover: %v", err)
	}
	if got := o.Stats().Rollovers; got != 1 {
		t.Errorf("rollovers = %d, want 1 (no churn)", got)
	}
}

func TestExchangeFailureRetriesAndAbandons(t *testing.T) {
	fails := 2
	var calls int
	init, resp := ikeCfg(30, "a"), ikeCfg(31, "b")
	cfg := Config{
		MaxAttempts: 3,
		Exchange: func(oldAB, oldBA uint32) (ike.ChildKeys, error) {
			calls++
			if calls <= fails {
				return ike.ChildKeys{}, errors.New("message lost")
			}
			res, err := ike.RekeyChild(init, resp, oldAB, oldBA)
			if err != nil {
				return ike.ChildKeys{}, err
			}
			return res.Keys, nil
		},
	}
	A, B, o, tun := pairT(t, ipsec.Lifetime{SoftBytes: 1}, cfg)
	// One packet trips the 1-byte soft bound.
	openB(t, B, sealAB(t, A, []byte("x")))

	for i := 0; i < 3 && tun.State() == StateSteady; i++ {
		o.Poll() //nolint:errcheck // exchange failures are the point
	}
	st := o.Stats()
	if st.ExchangeFailures != 2 || st.Rollovers != 1 {
		t.Fatalf("stats = %+v, want 2 failures then 1 rollover", st)
	}

	// A permanently failing exchange is abandoned after MaxAttempts.
	calls, fails = 0, 1<<30
	o.Poll() // retire the drained generation (Grace 0)
	if tun.State() != StateSteady {
		t.Fatalf("state = %v, want steady", tun.State())
	}
	openB(t, B, sealAB(t, A, []byte("y"))) // trip the successor's soft bound
	for i := 0; i < 3; i++ {
		o.Poll() //nolint:errcheck
	}
	if got := o.Stats().Abandoned; got != 1 {
		t.Errorf("abandoned = %d, want 1", got)
	}
}

// TestRolloverRecoversFromBCutoverFailure forces the worst partial-failure
// point — B's outbound cutover failing after A's already succeeded (here, a
// successor SPI colliding with a claimed journal cell on B) — and asserts
// the rollover unwinds completely: the tunnel stays steady on the old
// generation, A's traffic keeps flowing on the old SPI (the revert
// repointed the SPD back and un-drained the old SA), and a retry with
// fresh SPIs succeeds.
func TestRolloverRecoversFromBCutoverFailure(t *testing.T) {
	const blocked = uint32(0xBADBAD)
	calls := 0
	init, resp := ikeCfg(60, "a"), ikeCfg(61, "b")
	cfg := Config{
		Exchange: func(oldAB, oldBA uint32) (ike.ChildKeys, error) {
			calls++
			res, err := ike.RekeyChild(init, resp, oldAB, oldBA)
			if err != nil {
				return ike.ChildKeys{}, err
			}
			k := res.Keys
			if calls == 1 {
				k.SPIRespToInit = blocked // collides with the claim below
			}
			return k, nil
		},
	}
	A, B, o, tun := pairT(t, ipsec.Lifetime{}, cfg)
	if _, err := B.Journal().ClaimCell(ipsec.OutboundKey(blocked)); err != nil {
		t.Fatalf("ClaimCell: %v", err)
	}
	oldAB, oldBA := tun.SPIs()
	oldOutA, _ := A.Outbound(oldAB)

	if err := o.Rollover(tun); err == nil {
		t.Fatal("Rollover succeeded despite the blocked successor SPI")
	}
	if tun.State() != StateSteady {
		t.Fatalf("state after failed rollover = %v, want steady", tun.State())
	}
	if ab, ba := tun.SPIs(); ab != oldAB || ba != oldBA {
		t.Fatalf("SPIs changed across a failed rollover: %#x/%#x", ab, ba)
	}
	if oldOutA.Draining() {
		t.Error("old outbound SA left draining by the unwind")
	}
	// Traffic still flows on the old generation, through the old SPI.
	wire := sealAB(t, A, []byte("still generation 0"))
	if spi, _ := ipsec.ParseSPI(wire); spi != oldAB {
		t.Errorf("post-unwind SPI %#x, want old %#x", spi, oldAB)
	}
	if _, verdict, err := openB(t, B, wire); err != nil || !verdict.Delivered() {
		t.Fatalf("post-unwind delivery = (%v, %v)", verdict, err)
	}
	// No successor residue on either gateway.
	if _, ok := A.SAD().Lookup(blocked); ok {
		t.Error("aborted successor inbound survived on A")
	}

	// The retry (fresh SPIs) succeeds end to end.
	if err := o.Rollover(tun); err != nil {
		t.Fatalf("retry Rollover: %v", err)
	}
	newAB, _ := tun.SPIs()
	wire = sealAB(t, A, []byte("generation 1"))
	if spi, _ := ipsec.ParseSPI(wire); spi != newAB {
		t.Errorf("post-retry SPI %#x, want %#x", spi, newAB)
	}
	if _, verdict, err := openB(t, B, wire); err != nil || !verdict.Delivered() {
		t.Fatalf("post-retry delivery = (%v, %v)", verdict, err)
	}
}

// TestRolloverWithResetMidExchange injects a full receiver-gateway reset
// between the rekey exchange's two messages: the rollover must still
// converge, in-flight old-SPI packets sealed after the wake must deliver,
// and no recorded packet may be re-accepted afterwards.
func TestRolloverWithResetMidExchange(t *testing.T) {
	init, resp := ikeCfg(40, "a"), ikeCfg(41, "b")
	var (
		A, B     *ipsec.Gateway
		inflight [][]byte
	)
	cfg := Config{
		Exchange: func(oldAB, oldBA uint32) (ike.ChildKeys, error) {
			ini, err := ike.NewRekeyInitiator(init, oldAB, oldBA)
			if err != nil {
				return ike.ChildKeys{}, err
			}
			rsp, err := ike.NewRekeyResponder(resp, oldAB, oldBA)
			if err != nil {
				return ike.ChildKeys{}, err
			}
			m1, err := ini.Request()
			if err != nil {
				return ike.ChildKeys{}, err
			}
			// The reset strikes the responder gateway between the two
			// handshake messages.
			B.ResetAll()
			B.WakeAll() //nolint:errcheck // wake errors surface as exchange failures
			// The paper's receiver-reset cost: the wake leap marks the
			// whole window received, sacrificing up to 2K fresh messages
			// until the sender's counter passes the leaped edge. Flush
			// that window — its discards are the protocol's documented
			// price, not a rekey defect.
			for i := 0; i < 16; i++ { // > 2K (K=5) sacrificial packets
				openB(t, B, sealAB(t, A, []byte("sacrifice")))
			}
			// Traffic does not stop for a rekey: these packets are sealed
			// on the OLD SPI after B's recovery but before the cutover —
			// exactly the in-flight traffic the drain window exists for.
			for i := 0; i < 5; i++ {
				inflight = append(inflight, sealAB(t, A, []byte("in flight")))
			}
			m2, err := rsp.HandleRequest(m1)
			if err != nil {
				return ike.ChildKeys{}, err
			}
			if err := ini.HandleResponse(m2); err != nil {
				return ike.ChildKeys{}, err
			}
			return ini.ChildKeys(), nil
		},
	}
	a, b, o, tun := pairT(t, ipsec.Lifetime{}, cfg)
	A, B = a, b
	oldAB, _ := tun.SPIs()

	var history [][]byte
	for i := 0; i < 30; i++ {
		wire := sealAB(t, A, []byte("pre-reset"))
		history = append(history, wire)
		openB(t, B, wire)
	}

	if err := o.Rollover(tun); err != nil {
		t.Fatalf("Rollover across reset: %v", err)
	}

	// Zero false rejections: every in-flight old-SPI packet delivers
	// during the drain window.
	for i, w := range inflight {
		if spi, _ := ipsec.ParseSPI(w); spi != oldAB {
			t.Fatalf("in-flight packet %d sealed on %#x, want old SPI %#x", i, spi, oldAB)
		}
		payload, verdict, err := openB(t, B, w)
		if err != nil || !verdict.Delivered() || string(payload) != "in flight" {
			t.Fatalf("in-flight packet %d = (%q, %v, %v), want delivered", i, payload, verdict, err)
		}
	}
	// The successor carries fresh traffic.
	for i := 0; i < 5; i++ {
		wire := sealAB(t, A, []byte("post-rollover"))
		_, verdict, err := openB(t, B, wire)
		if err != nil || !verdict.Delivered() {
			t.Fatalf("post-rollover delivery %d = (%v, %v)", i, verdict, err)
		}
	}
	// Zero replay acceptances: nothing recorded before or during the
	// reset+rollover is re-accepted.
	replays := 0
	for _, w := range append(append([][]byte{}, history...), inflight...) {
		if _, verdict, _ := openB(t, B, w); verdict.Delivered() {
			replays++
		}
	}
	if replays != 0 {
		t.Fatalf("%d replays accepted after reset + rollover, want 0", replays)
	}
}
