package rekey

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"antireplay/internal/core"
	"antireplay/internal/ike"
	"antireplay/internal/ipsec"
)

// TestRekeyDuringResetStress is the -race stress test for the full
// composition: concurrent SealBatch/VerifyBatch traffic across a gateway
// pair while the orchestrator rolls the tunnel over on soft-lifetime expiry
// and the receiver gateway is crashed both mid-exchange and at random.
//
// Safety assertions:
//   - exactly-once: no wire is ever delivered twice, across resets,
//     rollovers, and generation retirements (checked continuously);
//   - zero replay acceptances after convergence: replaying every recorded
//     wire delivers nothing;
//   - zero legitimate-packet rejections after convergence: once the last
//     recovery's sacrifice window is flushed, fresh traffic delivers
//     completely.
func TestRekeyDuringResetStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	init, resp := ikeCfg(50, "a"), ikeCfg(51, "b")
	var (
		B             *ipsec.Gateway
		exchangeCount atomic.Uint64
	)
	cfg := Config{
		Grace: 50 * time.Millisecond,
		Exchange: func(oldAB, oldBA uint32) (ike.ChildKeys, error) {
			// Every second exchange, the receiver gateway resets between
			// the two handshake messages (in-process: between deriving and
			// returning), modeling the reset-mid-rekey scenario.
			n := exchangeCount.Add(1)
			res, err := ike.RekeyChild(init, resp, oldAB, oldBA)
			if n%2 == 0 {
				B.ResetAll()
				B.WakeAll() //nolint:errcheck // chaos loop re-wakes; exchange result is what matters
			}
			if err != nil {
				return ike.ChildKeys{}, err
			}
			return res.Keys, nil
		},
	}
	// Small soft lifetime so traffic trips rollovers continuously.
	A, b, o, tun := pairT(t, ipsec.Lifetime{SoftBytes: 64 << 10}, cfg)
	B = b

	var (
		mu        sync.Mutex
		delivered = make(map[string]int) // wire -> delivery count
		history   [][]byte
		doubles   atomic.Uint64
	)
	record := func(wires [][]byte, results []ipsec.VerifyResult) {
		mu.Lock()
		defer mu.Unlock()
		for i, res := range results {
			history = append(history, wires[i])
			if res.Delivered() {
				delivered[string(wires[i])]++
				if delivered[string(wires[i])] > 1 {
					doubles.Add(1)
				}
			}
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Traffic: sealers batch-seal and immediately batch-verify their own
	// wires, so every sealed wire is submitted exactly once.
	const sealers = 4
	payload := make([]byte, 512)
	for s := 0; s < sealers; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			batch := make([][]byte, 8)
			for i := range batch {
				batch[i] = payload
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				wires, err := A.SealBatch(addrA, addrB, batch)
				if err != nil && !errors.Is(err, core.ErrSaveLag) &&
					!errors.Is(err, ipsec.ErrDraining) && !errors.Is(err, core.ErrWaking) {
					t.Errorf("SealBatch: %v", err)
					return
				}
				if len(wires) == 0 {
					time.Sleep(50 * time.Microsecond)
					continue
				}
				record(wires, B.VerifyBatch(wires))
			}
		}()
	}

	// Chaos: random receiver-gateway resets on top of the mid-exchange ones.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			select {
			case <-stop:
				return
			default:
			}
			B.ResetAll()
			B.WakeAll() //nolint:errcheck // transient wake errors retried next cycle
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// Orchestrator: soft-lifetime polling drives the rollovers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			o.Poll() //nolint:errcheck // exchange failures under chaos retry next poll
			time.Sleep(time.Millisecond)
		}
	}()

	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Convergence: the receiver is up, the tunnel steady (drain windows
	// expire and retire), and the last recovery's sacrifice window flushed.
	if err := B.WakeAll(); err != nil {
		t.Fatalf("final WakeAll: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for tun.State() != StateSteady {
		if time.Now().After(deadline) {
			t.Fatalf("tunnel never returned to steady (state %v)", tun.State())
		}
		o.Poll() //nolint:errcheck
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 4; i++ { // flush > 2K sacrificial packets
		wires, err := A.SealBatch(addrA, addrB, [][]byte{payload, payload, payload, payload})
		if err == nil {
			record(wires, B.VerifyBatch(wires))
		}
	}

	if n := doubles.Load(); n != 0 {
		t.Fatalf("%d wires delivered twice during the stress run", n)
	}
	if s := o.Stats(); s.Rollovers == 0 {
		t.Fatalf("stress run completed no rollovers: %+v", s)
	}

	// Zero replay acceptances: re-submitting the entire history never
	// delivers an already-delivered wire a second time. (A wire whose only
	// prior submissions were discarded — sealed while the receiver was
	// down, say — may legitimately deliver now if it is still inside the
	// window: that is a late first delivery, exactly what an anti-replay
	// window permits.)
	mu.Lock()
	replaySet := history
	mu.Unlock()
	replays := 0
	for start := 0; start < len(replaySet); start += 64 {
		end := min(start+64, len(replaySet))
		batch := replaySet[start:end]
		results := B.VerifyBatch(batch)
		mu.Lock()
		for i, res := range results {
			if !res.Delivered() {
				continue
			}
			if delivered[string(batch[i])] > 0 {
				replays++
			}
			delivered[string(batch[i])]++
		}
		mu.Unlock()
	}
	if replays != 0 {
		t.Fatalf("%d replay acceptances after convergence, want 0", replays)
	}

	// Zero legitimate rejections after convergence: fresh bursts deliver
	// completely (horizon verdicts are retried as a retransmission would
	// be).
	for round := 0; round < 8; round++ {
		wires, err := A.SealBatch(addrA, addrB, [][]byte{payload, payload})
		if errors.Is(err, core.ErrSaveLag) {
			time.Sleep(100 * time.Microsecond)
			continue
		}
		if err != nil {
			t.Fatalf("post-convergence SealBatch: %v", err)
		}
		for i, res := range B.VerifyBatch(wires) {
			for attempt := 0; res.Verdict == core.VerdictHorizon && attempt < 10000; attempt++ {
				time.Sleep(20 * time.Microsecond)
				res = B.VerifyBatch(wires[i : i+1])[0]
			}
			if res.Err != nil || !res.Verdict.Delivered() {
				t.Fatalf("post-convergence packet rejected: (%v, %v)", res.Verdict, res.Err)
			}
		}
	}
}
