// Package rekey orchestrates the lifecycle the rest of the repository only
// prices: IKE-driven SA rollover on a live gateway pair, under traffic and
// under resets.
//
// The paper's argument (§3) is that tearing down and re-establishing an SA
// after a reset is too expensive to be the remedy for lost counters — but
// SAs still age out by policy (RFC 4301 soft/hard lifetimes), so a
// production gateway must rekey *routinely*, and a reset can strike in the
// middle of that. This package composes the repository's layers into that
// scenario: it watches per-SA soft lifetimes (the atomic byte/packet/time
// accounting on each SA), runs the CREATE_CHILD_SA-style exchange of
// internal/ike (transcript-bound to the SPIs of the generation being
// replaced), and drives make-before-break rollover on both gateways:
//
//	steady ──soft lifetime / Rollover()──▶ rekeying
//	rekeying ──exchange ok──▶ install successor inbound on BOTH ends (make)
//	         ──exchange err─▶ retry next Poll (bounded by MaxAttempts)
//	install  ──────────────▶ cut outbound over on both ends (break)
//	cutover  ──────────────▶ draining (old inbound still verifies)
//	draining ──grace over──▶ retired: old SAs removed, journal cells
//	                         tombstoned and released
//
// Ordering is what makes the rollover safe against resets:
//
//   - The successor's counters are durably initialized in the shared
//     journal (a synchronous group-committed save inside RekeyInbound /
//     RekeyOutbound) before any traffic is cut over, so a reset mid-rekey
//     recovers both generations through the ordinary wake-up leap — never
//     replaying one generation's numbers into the other.
//   - New inbound SAs are installed on both gateways before either outbound
//     cutover, so there is no instant at which a packet can be sealed that
//     its peer cannot verify (make-before-break).
//   - The old inbound SAs keep verifying through the drain window, so
//     packets sealed under the old SPI just before the cutover are still
//     delivered, not dropped.
//   - Retirement erases the old generation's journal cells with durable
//     tombstones, so a later SA that happens to reuse the SPI starts a
//     fresh counter life instead of resurrecting the retired window edge.
//
// The orchestrator is deliberately clock-explicit (Poll with an injectable
// clock) so simulations drive it deterministically; Run wraps Poll in a
// wall-clock ticker for live use.
package rekey

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"antireplay/internal/ike"
	"antireplay/internal/ipsec"
)

// Sentinel errors.
var (
	// ErrConfig reports an invalid orchestrator configuration.
	ErrConfig = errors.New("rekey: invalid configuration")
	// ErrUnknownTunnel reports a Track of SPIs not registered in the
	// gateways.
	ErrUnknownTunnel = errors.New("rekey: tunnel SAs not registered")
	// ErrRolloverInProgress reports a Rollover on a tunnel that is already
	// mid-rollover (draining its previous generation).
	ErrRolloverInProgress = errors.New("rekey: rollover already in progress")
	// ErrUnknownGateway reports a Handoff whose old gateway is neither of
	// the orchestrator's two.
	ErrUnknownGateway = errors.New("rekey: gateway not managed by this orchestrator")
)

// DefaultMaxAttempts bounds exchange retries per rollover trigger.
const DefaultMaxAttempts = 5

// State is a tunnel's position in the rollover lifecycle.
type State uint8

// Tunnel states.
const (
	// StateSteady means one live generation and no rollover in progress.
	StateSteady State = iota + 1
	// StateDraining means the successor generation carries traffic while
	// the old generation's inbound SAs linger for in-flight packets.
	StateDraining
)

// String returns the lower-case state name.
func (s State) String() string {
	switch s {
	case StateSteady:
		return "steady"
	case StateDraining:
		return "draining"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Config parameterizes an Orchestrator.
type Config struct {
	// A and B are the two gateways of the tunnel population. A plays the
	// IKE initiator on every rollover; its A->B outbound direction is the
	// exchange's init->resp child SA. Required.
	A, B *ipsec.Gateway
	// IKEInit and IKEResp configure the rekey exchange parties (PSK,
	// randomness, DH group). Required unless Exchange is set.
	IKEInit, IKEResp ike.Config
	// Grace is the drain window between outbound cutover and retirement of
	// the old generation. Zero retires on the first Poll after cutover.
	Grace time.Duration
	// MaxAttempts bounds exchange retries per rollover trigger; once
	// exhausted the trigger is abandoned (a still-soft SA re-triggers on
	// the next Poll). Zero means DefaultMaxAttempts.
	MaxAttempts int
	// Clock feeds grace-window accounting. Nil means wall clock (monotonic
	// since the orchestrator was built); simulations inject virtual time.
	Clock func() time.Duration
	// Exchange overrides the key exchange — fault-injection hooks and
	// message-level deployments substitute their own delivery here. Nil
	// runs ike.RekeyChild(IKEInit, IKEResp, oldAB, oldBA) in process. The
	// returned keys' SPIInitToResp names the successor A->B SA.
	Exchange func(oldAB, oldBA uint32) (ike.ChildKeys, error)
	// Observer, when set, receives rollover lifecycle events: soft
	// triggers, exchange failures, cutovers, abandonments, retirements.
	// This is the timing surface the adversary campaign layer attacks
	// (internal/adversary.RekeyCut aims blackouts at EventCutover) and
	// operators monitor. The observer is called synchronously with the
	// orchestrator's lock held: it must be fast and must not call back
	// into the Orchestrator.
	Observer func(Event)
}

// EventKind classifies an orchestrator lifecycle event.
type EventKind uint8

// Lifecycle events, in the order a rollover produces them.
const (
	// EventSoftTrigger fires when Poll finds a soft-expired tunnel and
	// begins a rollover.
	EventSoftTrigger EventKind = iota + 1
	// EventExchangeFailed fires per failed exchange attempt.
	EventExchangeFailed
	// EventAbandoned fires when a trigger exhausts MaxAttempts.
	EventAbandoned
	// EventCutover fires once both outbound directions carry the
	// successor generation — the rollover window's most delicate instant.
	EventCutover
	// EventRetired fires when a drained old generation is removed.
	EventRetired
)

// String returns the lower-case event name.
func (k EventKind) String() string {
	switch k {
	case EventSoftTrigger:
		return "soft-trigger"
	case EventExchangeFailed:
		return "exchange-failed"
	case EventAbandoned:
		return "abandoned"
	case EventCutover:
		return "cutover"
	case EventRetired:
		return "retired"
	default:
		return fmt.Sprintf("event(%d)", uint8(k))
	}
}

// Event is one observable orchestrator transition.
type Event struct {
	// Kind classifies the transition.
	Kind EventKind
	// ABSPI and BASPI are the tunnel's live-generation SPIs at the time
	// of the event (for EventCutover, the successor generation's).
	ABSPI, BASPI uint32
	// Attempt is the exchange attempt count (EventExchangeFailed only).
	Attempt int
}

// Tunnel is one tracked gateway-to-gateway SA pair and its rollover state.
// All fields are guarded by the orchestrator's mutex; read them through the
// accessor methods.
type Tunnel struct {
	o *Orchestrator

	abSPI, baSPI uint32            // live generation, by direction
	outA         *ipsec.OutboundSA // A's outbound (A->B), live generation
	outB         *ipsec.OutboundSA // B's outbound (B->A)

	state        State
	oldAB, oldBA uint32 // draining generation (valid in StateDraining)
	drainFrom    time.Duration
	attempts     int
	generation   uint64
}

// SPIs returns the live generation's SPIs (A->B, B->A).
func (t *Tunnel) SPIs() (ab, ba uint32) {
	t.o.mu.Lock()
	defer t.o.mu.Unlock()
	return t.abSPI, t.baSPI
}

// State returns the tunnel's rollover state.
func (t *Tunnel) State() State {
	t.o.mu.Lock()
	defer t.o.mu.Unlock()
	return t.state
}

// Generation returns how many rollovers the tunnel has completed.
func (t *Tunnel) Generation() uint64 {
	t.o.mu.Lock()
	defer t.o.mu.Unlock()
	return t.generation
}

// Stats counts orchestrator activity.
type Stats struct {
	// SoftTriggers counts rollovers initiated by soft-lifetime expiry.
	SoftTriggers uint64
	// Rollovers counts completed cutovers (successor carrying traffic).
	Rollovers uint64
	// ExchangeFailures counts failed rekey exchange attempts.
	ExchangeFailures uint64
	// Abandoned counts triggers given up after MaxAttempts failures.
	Abandoned uint64
	// Retired counts old generations fully removed after their drain.
	Retired uint64
}

// Orchestrator watches tracked tunnels and rolls them over. Safe for
// concurrent use; rollovers serialize on the orchestrator while gateway
// traffic proceeds concurrently underneath.
type Orchestrator struct {
	cfg   Config
	start time.Time

	mu      sync.Mutex
	tunnels []*Tunnel
	stats   Stats
}

// New validates cfg and returns an orchestrator with no tracked tunnels.
func New(cfg Config) (*Orchestrator, error) {
	if cfg.A == nil || cfg.B == nil {
		return nil, fmt.Errorf("%w: both gateways required", ErrConfig)
	}
	if cfg.Exchange == nil {
		if err := cfg.IKEInit.Validate(); err != nil {
			return nil, fmt.Errorf("%w: initiator IKE: %v", ErrConfig, err)
		}
		if err := cfg.IKEResp.Validate(); err != nil {
			return nil, fmt.Errorf("%w: responder IKE: %v", ErrConfig, err)
		}
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = DefaultMaxAttempts
	}
	o := &Orchestrator{cfg: cfg, start: time.Now()}
	return o, nil
}

func (o *Orchestrator) now() time.Duration {
	if o.cfg.Clock != nil {
		return o.cfg.Clock()
	}
	return time.Since(o.start)
}

// Track registers an established tunnel for lifecycle management: abSPI is
// the A->B direction (A outbound, B inbound), baSPI the reverse. All four
// SAs must already be registered in their gateways; the rollover replaces
// SPD entries in place (by SA identity), so no traffic selectors are
// needed here.
func (o *Orchestrator) Track(abSPI, baSPI uint32) (*Tunnel, error) {
	outA, okA := o.cfg.A.Outbound(abSPI)
	_, okBIn := o.cfg.B.SAD().Lookup(abSPI)
	outB, okB := o.cfg.B.Outbound(baSPI)
	_, okAIn := o.cfg.A.SAD().Lookup(baSPI)
	if !okA || !okB || !okBIn || !okAIn {
		return nil, fmt.Errorf("%w: A->B %#x, B->A %#x", ErrUnknownTunnel, abSPI, baSPI)
	}
	t := &Tunnel{
		o:     o,
		abSPI: abSPI, baSPI: baSPI,
		outA: outA, outB: outB,
		state: StateSteady,
	}
	o.mu.Lock()
	o.tunnels = append(o.tunnels, t)
	o.mu.Unlock()
	return t, nil
}

// emit delivers an event to the configured observer (lock held).
func (o *Orchestrator) emit(kind EventKind, t *Tunnel, attempt int) {
	if o.cfg.Observer == nil {
		return
	}
	o.cfg.Observer(Event{Kind: kind, ABSPI: t.abSPI, BASPI: t.baSPI, Attempt: attempt})
}

// exchange runs the configured (or default in-process) rekey exchange.
func (o *Orchestrator) exchange(oldAB, oldBA uint32) (ike.ChildKeys, error) {
	if o.cfg.Exchange != nil {
		return o.cfg.Exchange(oldAB, oldBA)
	}
	res, err := ike.RekeyChild(o.cfg.IKEInit, o.cfg.IKEResp, oldAB, oldBA)
	if err != nil {
		return ike.ChildKeys{}, err
	}
	return res.Keys, nil
}

// Rollover rolls t over to a fresh generation now: exchange, make (install
// successor inbound SAs on both gateways), break (cut both outbound sides
// over), then drain. A failed exchange leaves the tunnel steady (the
// attempt is counted; Poll retries soft-triggered tunnels); a tunnel whose
// previous generation is still draining is refused with
// ErrRolloverInProgress — retirement must finish first, because a second
// overlapping rollover would need a third concurrent inbound generation.
func (o *Orchestrator) Rollover(t *Tunnel) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.rolloverLocked(t)
}

func (o *Orchestrator) rolloverLocked(t *Tunnel) error {
	if t.state != StateSteady {
		return fmt.Errorf("%w: A->B %#x", ErrRolloverInProgress, t.abSPI)
	}
	keys, err := o.exchange(t.abSPI, t.baSPI)
	if err != nil {
		o.stats.ExchangeFailures++
		t.attempts++
		o.emit(EventExchangeFailed, t, t.attempts)
		if t.attempts >= o.cfg.MaxAttempts {
			t.attempts = 0
			o.stats.Abandoned++
			o.emit(EventAbandoned, t, o.cfg.MaxAttempts)
		}
		return fmt.Errorf("rekey: exchange for A->B %#x: %w", t.abSPI, err)
	}
	t.attempts = 0

	// Make: both successor inbound SAs exist — and their window edges are
	// durable in the journals — before any cutover.
	if _, err := o.cfg.B.RekeyInbound(t.abSPI, keys.SPIInitToResp, keys.InitToResp); err != nil {
		return fmt.Errorf("rekey: install B inbound: %w", err)
	}
	if _, err := o.cfg.A.RekeyInbound(t.baSPI, keys.SPIRespToInit, keys.RespToInit); err != nil {
		o.cfg.B.RemoveInbound(keys.SPIInitToResp) // roll the half-install back
		return fmt.Errorf("rekey: install A inbound: %w", err)
	}

	// Break: cut the outbound sides over. From here new traffic flows on
	// the successor SPIs; the old outbound SAs refuse further seals.
	outA, err := o.cfg.A.RekeyOutbound(t.abSPI, keys.SPIInitToResp, keys.InitToResp)
	if err != nil {
		o.cfg.B.RemoveInbound(keys.SPIInitToResp)
		o.cfg.A.RemoveInbound(keys.SPIRespToInit)
		return fmt.Errorf("rekey: cut over A outbound: %w", err)
	}
	outB, err := o.cfg.B.RekeyOutbound(t.baSPI, keys.SPIRespToInit, keys.RespToInit)
	if err != nil {
		// A already cut over; unwind it completely — repoint A's SPD back
		// to the old SA (which resumes sealing) and remove every successor
		// SA — so the tunnel is exactly its old self and the next trigger
		// retries from scratch. (RekeyOutbound fails only on duplicate
		// SPIs or a closed gateway, but a partial cutover left standing
		// would orphan the successor: a later retry's SPD Replace matches
		// the old SA pointer and would repoint nothing.)
		o.cfg.A.RevertOutbound(t.abSPI, keys.SPIInitToResp)
		o.cfg.B.RemoveInbound(keys.SPIInitToResp)
		o.cfg.A.RemoveInbound(keys.SPIRespToInit)
		return fmt.Errorf("rekey: cut over B outbound: %w", err)
	}

	// The rollover is committed: mark the old inbound SAs draining (they
	// keep verifying; the mark drives the grace-window bookkeeping).
	if oldIn, ok := o.cfg.B.SAD().Lookup(t.abSPI); ok {
		oldIn.BeginDrain()
	}
	if oldIn, ok := o.cfg.A.SAD().Lookup(t.baSPI); ok {
		oldIn.BeginDrain()
	}

	t.oldAB, t.oldBA = t.abSPI, t.baSPI
	t.abSPI, t.baSPI = keys.SPIInitToResp, keys.SPIRespToInit
	t.outA, t.outB = outA, outB
	t.state = StateDraining
	t.drainFrom = o.now()
	t.generation++
	o.stats.Rollovers++
	o.emit(EventCutover, t, 0)
	return nil
}

// Handoff swaps one of the orchestrator's gateways for its cluster
// successor — the promotion hand-off that lets tunnel lifecycles, including
// an in-flight rollover, survive a failover. Every tracked tunnel's live
// outbound SAs are re-resolved by SPI against the new pair, so later
// rollovers and retirements act on the promoted gateway's (adopted) SAs
// instead of the dead node's. Tunnels draining a previous generation keep
// draining: retirement addresses the old SAs by SPI and tolerates any the
// standby's mirror missed. A rollover whose exchange was interrupted by the
// crash simply failed (its successor SAs never reached the snapshot); the
// tunnel is steady, still soft-expired, and the next Poll retries the whole
// exchange against the promoted gateway.
//
// Handoff fails with ErrUnknownGateway when old is neither managed gateway,
// and with ErrUnknownTunnel when a tunnel's live SA cannot be resolved in
// the new pair (the standby's mirror predates the tunnel's last cutover);
// no tunnel is repointed unless all can be.
func (o *Orchestrator) Handoff(old, nu *ipsec.Gateway) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	cfgA, cfgB := o.cfg.A, o.cfg.B
	switch old {
	case cfgA:
		cfgA = nu
	case cfgB:
		cfgB = nu
	default:
		return ErrUnknownGateway
	}
	// Resolve everything first, then commit: a half-repointed tunnel set
	// would leave the orchestrator acting on two generations of gateway.
	outA := make([]*ipsec.OutboundSA, len(o.tunnels))
	outB := make([]*ipsec.OutboundSA, len(o.tunnels))
	for i, t := range o.tunnels {
		a, okA := cfgA.Outbound(t.abSPI)
		b, okB := cfgB.Outbound(t.baSPI)
		if !okA || !okB {
			return fmt.Errorf("%w: A->B %#x, B->A %#x (mirror predates cutover?)",
				ErrUnknownTunnel, t.abSPI, t.baSPI)
		}
		outA[i], outB[i] = a, b
	}
	o.cfg.A, o.cfg.B = cfgA, cfgB
	for i, t := range o.tunnels {
		t.outA, t.outB = outA[i], outB[i]
	}
	return nil
}

// retireLocked removes the drained old generation: outbound and inbound SAs
// on both gateways, each removal tombstoning and releasing its journal cell.
func (o *Orchestrator) retireLocked(t *Tunnel) {
	o.cfg.A.RemoveOutbound(t.oldAB)
	o.cfg.B.RemoveInbound(t.oldAB)
	o.cfg.B.RemoveOutbound(t.oldBA)
	o.cfg.A.RemoveInbound(t.oldBA)
	t.oldAB, t.oldBA = 0, 0
	t.state = StateSteady
	o.stats.Retired++
	o.emit(EventRetired, t, 0)
}

// needsRekey reports whether either outbound direction has reached its soft
// lifetime. (Hard-expired SAs trigger too: rekeying is the only way they
// resume service.)
func needsRekey(t *Tunnel) bool {
	return t.outA.State() != ipsec.LifetimeOK || t.outB.State() != ipsec.LifetimeOK
}

// Poll advances every tracked tunnel's lifecycle one step: drained
// generations past the grace window are retired, and steady tunnels whose
// soft lifetime has expired are rolled over. It returns the first rollover
// error (later tunnels are still processed) — transient exchange failures
// surface here while the tunnel stays consistent and retries on the next
// Poll.
func (o *Orchestrator) Poll() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	var first error
	now := o.now()
	for _, t := range o.tunnels {
		switch t.state {
		case StateDraining:
			if now-t.drainFrom >= o.cfg.Grace {
				o.retireLocked(t)
			}
		case StateSteady:
			if !needsRekey(t) {
				continue
			}
			o.stats.SoftTriggers++
			o.emit(EventSoftTrigger, t, 0)
			if err := o.rolloverLocked(t); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Run polls on a wall-clock interval until the returned stop function is
// called. Poll errors are delivered to onErr (nil discards them) — the
// normal fate of a transient exchange failure is simply the next tick's
// retry.
func (o *Orchestrator) Run(interval time.Duration, onErr func(error)) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				if err := o.Poll(); err != nil && onErr != nil {
					onErr(err)
				}
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// Stats returns a snapshot of the orchestrator's counters.
func (o *Orchestrator) Stats() Stats {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.stats
}
