package ike

import (
	"crypto/hmac"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
	"time"
)

// This file implements the CREATE_CHILD_SA-style rekey exchange: one round
// trip that replaces an existing child SA pair with a successor generation
// (fresh SPIs, fresh nonces, fresh DH — the PFS variant of RFC 7296 §1.3.2),
// priced with the same real modular exponentiations as the full handshake.
//
//	REKEY request:  oldSPIs, Ni, KEi, child SPI (initiator's inbound), AUTHi
//	REKEY response: oldSPIs, Nr, KEr, child SPI (responder's inbound), AUTHr
//
// Both AUTH payloads are PSK-keyed PRFs over the exchange transcript, and
// the transcript begins with the SPI pair of the SA being rekeyed: a
// captured rekey exchange for one tunnel cannot be spliced into another,
// and a responder only completes an exchange for the exact SA generation it
// was asked to roll over (ErrRekeyBinding otherwise). The successor's key
// material is additionally seeded with both the old and the new SPI pair,
// so even identical nonces could not reproduce a prior generation's keys.

// ErrRekeyBinding reports a rekey exchange whose transcript is bound to a
// different SA pair than the party was configured to roll over.
var ErrRekeyBinding = errors.New("ike: rekey exchange bound to a different SA pair")

// rekeyMsg is the body shared by the rekey request and response.
type rekeyMsg struct {
	oldIR, oldRI uint32 // the SA pair being rekeyed (init->resp, resp->init)
	childSPI     uint32 // proposer's inbound SPI for the successor pair
	nonce        []byte // nonceLen
	ke           []byte // DH public value
	auth         [32]byte
}

// Message type tags for the rekey exchange (the base handshake uses 1-4).
const (
	msgRekeyReq  = 5
	msgRekeyResp = 6
)

func marshalRekey(tag byte, m rekeyMsg) []byte {
	out := make([]byte, 0, 1+12+nonceLen+4+len(m.ke)+32)
	out = append(out, tag)
	out = binary.BigEndian.AppendUint32(out, m.oldIR)
	out = binary.BigEndian.AppendUint32(out, m.oldRI)
	out = binary.BigEndian.AppendUint32(out, m.childSPI)
	out = append(out, m.nonce...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(m.ke)))
	out = append(out, m.ke...)
	out = append(out, m.auth[:]...)
	return out
}

func unmarshalRekey(tag byte, b []byte) (rekeyMsg, error) {
	var m rekeyMsg
	if len(b) < 1+12+nonceLen+4+32 {
		return m, fmt.Errorf("%w: rekey message %d bytes", ErrBadMessage, len(b))
	}
	if b[0] != tag {
		return m, fmt.Errorf("%w: tag %d, want %d", ErrBadMessage, b[0], tag)
	}
	m.oldIR = binary.BigEndian.Uint32(b[1:5])
	m.oldRI = binary.BigEndian.Uint32(b[5:9])
	m.childSPI = binary.BigEndian.Uint32(b[9:13])
	m.nonce = append([]byte(nil), b[13:13+nonceLen]...)
	keLen := binary.BigEndian.Uint32(b[13+nonceLen : 17+nonceLen])
	rest := b[17+nonceLen:]
	if uint32(len(rest)) != keLen+32 {
		return m, fmt.Errorf("%w: KE length %d, have %d", ErrBadMessage, keLen, len(rest)-32)
	}
	m.ke = append([]byte(nil), rest[:keLen]...)
	copy(m.auth[:], rest[keLen:])
	return m, nil
}

// rekeyBinding is the transcript prefix naming the SA pair under rekey.
func rekeyBinding(oldIR, oldRI uint32) []byte {
	var b [8]byte
	binary.BigEndian.PutUint32(b[0:4], oldIR)
	binary.BigEndian.PutUint32(b[4:8], oldRI)
	return b[:]
}

// deriveRekeyKeys expands the exchange's SKEYSEED into the successor pair's
// keys, seeding the PRF+ with the nonces and both SPI generations.
func deriveRekeyKeys(skeyseed, ni, nr []byte, oldIR, oldRI, newIR, newRI uint32) ChildKeys {
	seed := make([]byte, 0, len(ni)+len(nr)+16)
	seed = append(seed, ni...)
	seed = append(seed, nr...)
	seed = binary.BigEndian.AppendUint32(seed, oldIR)
	seed = binary.BigEndian.AppendUint32(seed, oldRI)
	seed = binary.BigEndian.AppendUint32(seed, newIR)
	seed = binary.BigEndian.AppendUint32(seed, newRI)
	keys := deriveFromSeed(skeyseed, seed, newIR, newRI)
	return keys
}

// RekeyInitiator drives the initiating side of a child-SA rekey exchange.
type RekeyInitiator struct {
	cfg   Config
	stats Stats
	ph    phase

	oldIR, oldRI uint32
	ni           []byte
	priv         *big.Int
	childSPI     uint32 // initiator-chosen SPI for resp->init successor
	transcript   []byte
	keys         ChildKeys
}

// NewRekeyInitiator returns an initiator that will roll over the child SA
// pair (oldIR, oldRI) — the SPIs of the init->resp and resp->init
// directions of the generation being replaced.
func NewRekeyInitiator(cfg Config, oldIR, oldRI uint32) (*RekeyInitiator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &RekeyInitiator{cfg: cfg, oldIR: oldIR, oldRI: oldRI,
		transcript: rekeyBinding(oldIR, oldRI)}, nil
}

// Request produces the rekey request.
func (i *RekeyInitiator) Request() ([]byte, error) {
	if i.ph != phaseIdle {
		return nil, fmt.Errorf("%w: rekey Request in phase %d", ErrState, i.ph)
	}
	g := i.cfg.group()
	i.ni = randBytes(i.cfg.Rand, nonceLen)
	i.priv = new(big.Int).SetBytes(randBytes(i.cfg.Rand, g.Bits/8))
	i.childSPI = uint32(i.cfg.Rand.Uint64())
	m := rekeyMsg{
		oldIR: i.oldIR, oldRI: i.oldRI, childSPI: i.childSPI,
		nonce: i.ni, ke: modExp(&i.stats, g.G, i.priv, g.P).Bytes(),
	}
	body := marshalRekey(msgRekeyReq, m)
	body = body[:len(body)-32] // auth covers everything before itself
	i.transcript = append(i.transcript, body...)
	m.auth = authTag(i.cfg.PSK, i.transcript, "rekey-initiator")
	msg := marshalRekey(msgRekeyReq, m)
	i.stats.MsgsOut++
	i.stats.BytesOut += len(msg)
	i.ph = phaseInitSent
	return msg, nil
}

// HandleResponse consumes the rekey response, verifies its AUTH over the
// bound transcript, and derives the successor keys.
func (i *RekeyInitiator) HandleResponse(b []byte) error {
	if i.ph != phaseInitSent {
		return fmt.Errorf("%w: rekey HandleResponse in phase %d", ErrState, i.ph)
	}
	m, err := unmarshalRekey(msgRekeyResp, b)
	if err != nil {
		return err
	}
	if m.oldIR != i.oldIR || m.oldRI != i.oldRI {
		return fmt.Errorf("%w: response names (%#x, %#x), rekeying (%#x, %#x)",
			ErrRekeyBinding, m.oldIR, m.oldRI, i.oldIR, i.oldRI)
	}
	transcript := append(i.transcript, b[:len(b)-32]...)
	want := authTag(i.cfg.PSK, transcript, "rekey-responder")
	if !hmac.Equal(want[:], m.auth[:]) {
		return ErrAuthFailed
	}
	g := i.cfg.group()
	secret := modExp(&i.stats, new(big.Int).SetBytes(m.ke), i.priv, g.P)
	skeyseed := prf(append(append([]byte{}, i.ni...), m.nonce...), secret.Bytes())
	// m.childSPI is the responder-chosen successor SPI for init->resp.
	i.keys = deriveRekeyKeys(skeyseed, i.ni, m.nonce, i.oldIR, i.oldRI, m.childSPI, i.childSPI)
	i.ph = phaseDone
	return nil
}

// Established reports whether the exchange completed.
func (i *RekeyInitiator) Established() bool { return i.ph == phaseDone }

// ChildKeys returns the successor keying (valid once Established).
func (i *RekeyInitiator) ChildKeys() ChildKeys { return i.keys }

// Stats returns the initiator's accumulated costs.
func (i *RekeyInitiator) Stats() Stats { return i.stats }

// RekeyResponder drives the responding side of a child-SA rekey exchange.
type RekeyResponder struct {
	cfg   Config
	stats Stats
	ph    phase

	oldIR, oldRI uint32
	childSPI     uint32 // responder-chosen SPI for init->resp successor
	keys         ChildKeys
}

// NewRekeyResponder returns a responder that will only complete a rekey of
// the child SA pair (oldIR, oldRI); a request bound to any other pair is
// refused with ErrRekeyBinding.
func NewRekeyResponder(cfg Config, oldIR, oldRI uint32) (*RekeyResponder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &RekeyResponder{cfg: cfg, oldIR: oldIR, oldRI: oldRI}, nil
}

// HandleRequest consumes the rekey request and produces the response,
// deriving the successor keys.
func (r *RekeyResponder) HandleRequest(b []byte) ([]byte, error) {
	if r.ph != phaseIdle {
		return nil, fmt.Errorf("%w: rekey HandleRequest in phase %d", ErrState, r.ph)
	}
	m, err := unmarshalRekey(msgRekeyReq, b)
	if err != nil {
		return nil, err
	}
	if m.oldIR != r.oldIR || m.oldRI != r.oldRI {
		return nil, fmt.Errorf("%w: request names (%#x, %#x), rekeying (%#x, %#x)",
			ErrRekeyBinding, m.oldIR, m.oldRI, r.oldIR, r.oldRI)
	}
	transcript := append(rekeyBinding(r.oldIR, r.oldRI), b[:len(b)-32]...)
	want := authTag(r.cfg.PSK, transcript, "rekey-initiator")
	if !hmac.Equal(want[:], m.auth[:]) {
		return nil, ErrAuthFailed
	}

	g := r.cfg.group()
	nr := randBytes(r.cfg.Rand, nonceLen)
	priv := new(big.Int).SetBytes(randBytes(r.cfg.Rand, g.Bits/8))
	pub := modExp(&r.stats, g.G, priv, g.P)
	secret := modExp(&r.stats, new(big.Int).SetBytes(m.ke), priv, g.P)
	skeyseed := prf(append(append([]byte{}, m.nonce...), nr...), secret.Bytes())

	r.childSPI = uint32(r.cfg.Rand.Uint64())
	// m.childSPI is the initiator-chosen successor SPI for resp->init.
	r.keys = deriveRekeyKeys(skeyseed, m.nonce, nr, r.oldIR, r.oldRI, r.childSPI, m.childSPI)

	resp := rekeyMsg{
		oldIR: r.oldIR, oldRI: r.oldRI, childSPI: r.childSPI,
		nonce: nr, ke: pub.Bytes(),
	}
	body := marshalRekey(msgRekeyResp, resp)
	transcript = append(transcript, body[:len(body)-32]...)
	resp.auth = authTag(r.cfg.PSK, transcript, "rekey-responder")
	msg := marshalRekey(msgRekeyResp, resp)
	r.stats.MsgsOut++
	r.stats.BytesOut += len(msg)
	r.ph = phaseDone
	return msg, nil
}

// Established reports whether the exchange completed.
func (r *RekeyResponder) Established() bool { return r.ph == phaseDone }

// ChildKeys returns the successor keying (valid once Established).
func (r *RekeyResponder) ChildKeys() ChildKeys { return r.keys }

// Stats returns the responder's accumulated costs.
func (r *RekeyResponder) Stats() Stats { return r.stats }

// RekeyResult summarizes a completed in-memory rekey exchange.
type RekeyResult struct {
	// Keys is the successor generation's keying (identical on both sides).
	Keys ChildKeys
	// InitiatorStats and ResponderStats are each party's costs.
	InitiatorStats Stats
	ResponderStats Stats
	// Messages and Bytes total the wire traffic (2 messages).
	Messages int
	Bytes    int
	// Elapsed is the wall-clock duration of the whole exchange.
	Elapsed time.Duration
}

// RekeyChild runs the complete one-round-trip rekey exchange in memory for
// the child SA pair (oldIR, oldRI) and returns the successor keys and
// costs — the in-process composition used by the rekey orchestrator, tests,
// and single-host experiments, exactly as Establish is for the full
// handshake. Both configurations must name the same old SPI pair or the
// exchange fails with ErrRekeyBinding.
func RekeyChild(initCfg, respCfg Config, oldIR, oldRI uint32) (RekeyResult, error) {
	start := time.Now()
	ini, err := NewRekeyInitiator(initCfg, oldIR, oldRI)
	if err != nil {
		return RekeyResult{}, fmt.Errorf("ike: rekey initiator: %w", err)
	}
	rsp, err := NewRekeyResponder(respCfg, oldIR, oldRI)
	if err != nil {
		return RekeyResult{}, fmt.Errorf("ike: rekey responder: %w", err)
	}
	m1, err := ini.Request()
	if err != nil {
		return RekeyResult{}, err
	}
	m2, err := rsp.HandleRequest(m1)
	if err != nil {
		return RekeyResult{}, err
	}
	if err := ini.HandleResponse(m2); err != nil {
		return RekeyResult{}, err
	}
	return RekeyResult{
		Keys:           ini.ChildKeys(),
		InitiatorStats: ini.Stats(),
		ResponderStats: rsp.Stats(),
		Messages:       2,
		Bytes:          len(m1) + len(m2),
		Elapsed:        time.Since(start),
	}, nil
}
