package ike

import (
	"crypto/hmac"
	"fmt"
	"math/big"
	"time"
)

// Handshake phases.
type phase uint8

const (
	phaseIdle phase = iota
	phaseInitSent
	phaseInitHandled
	phaseAuthSent
	phaseDone
)

// Initiator drives the initiator side of the handshake.
type Initiator struct {
	cfg   Config
	stats Stats
	ph    phase

	spiI, spiR uint64
	ni, nr     []byte
	priv       *big.Int
	pub        []byte

	skeyseed   []byte
	transcript []byte
	childSPI   uint32 // initiator-chosen SPI for resp->init traffic
	keys       ChildKeys
}

// NewInitiator returns an initiator ready to produce the INIT request.
func NewInitiator(cfg Config) (*Initiator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Initiator{cfg: cfg}, nil
}

// InitRequest produces message 1.
func (i *Initiator) InitRequest() ([]byte, error) {
	if i.ph != phaseIdle {
		return nil, fmt.Errorf("%w: InitRequest in phase %d", ErrState, i.ph)
	}
	g := i.cfg.group()
	i.spiI = i.cfg.Rand.Uint64()
	i.ni = randBytes(i.cfg.Rand, nonceLen)
	i.priv = new(big.Int).SetBytes(randBytes(i.cfg.Rand, g.Bits/8))
	i.pub = modExp(&i.stats, g.G, i.priv, g.P).Bytes()

	msg := marshalInit(msgInitReq, initMsg{spi: i.spiI, nonce: i.ni, ke: i.pub})
	i.transcript = append(i.transcript, msg...)
	i.stats.MsgsOut++
	i.stats.BytesOut += len(msg)
	i.ph = phaseInitSent
	return msg, nil
}

// HandleInitResponse consumes message 2 and produces message 3 (AUTH
// request). The shared secret and SKEYSEED are computed here.
func (i *Initiator) HandleInitResponse(b []byte) ([]byte, error) {
	if i.ph != phaseInitSent {
		return nil, fmt.Errorf("%w: HandleInitResponse in phase %d", ErrState, i.ph)
	}
	m, err := unmarshalInit(msgInitResp, b)
	if err != nil {
		return nil, err
	}
	i.spiR = m.spi
	i.nr = m.nonce
	i.transcript = append(i.transcript, b...)

	g := i.cfg.group()
	secret := modExp(&i.stats, new(big.Int).SetBytes(m.ke), i.priv, g.P)
	i.skeyseed = prf(append(append([]byte{}, i.ni...), i.nr...), secret.Bytes())

	i.childSPI = uint32(i.cfg.Rand.Uint64())
	auth := authTag(i.cfg.PSK, i.transcript, "initiator")
	msg := marshalAuth(msgAuthReq, authMsg{
		spiI: i.spiI, spiR: i.spiR,
		id: []byte(i.cfg.ID), auth: auth, childSPI: i.childSPI,
	})
	i.stats.MsgsOut++
	i.stats.BytesOut += len(msg)
	i.ph = phaseAuthSent
	return msg, nil
}

// HandleAuthResponse consumes message 4, verifies the responder's AUTH, and
// derives the child SA keys.
func (i *Initiator) HandleAuthResponse(b []byte) error {
	if i.ph != phaseAuthSent {
		return fmt.Errorf("%w: HandleAuthResponse in phase %d", ErrState, i.ph)
	}
	m, err := unmarshalAuth(msgAuthResp, b)
	if err != nil {
		return err
	}
	want := authTag(i.cfg.PSK, i.transcript, "responder")
	if !hmac.Equal(want[:], m.auth[:]) {
		return ErrAuthFailed
	}
	// m.childSPI is the responder-chosen SPI for init->resp traffic.
	i.keys = deriveChildKeys(i.skeyseed, i.ni, i.nr, m.childSPI, i.childSPI)
	i.ph = phaseDone
	return nil
}

// Established reports whether the handshake completed.
func (i *Initiator) Established() bool { return i.ph == phaseDone }

// ChildKeys returns the negotiated child SA keying (valid once Established).
func (i *Initiator) ChildKeys() ChildKeys { return i.keys }

// Stats returns the initiator's accumulated costs.
func (i *Initiator) Stats() Stats { return i.stats }

// Responder drives the responder side of the handshake.
type Responder struct {
	cfg   Config
	stats Stats
	ph    phase

	spiI, spiR uint64
	ni, nr     []byte
	priv       *big.Int

	skeyseed   []byte
	transcript []byte
	childSPI   uint32 // responder-chosen SPI for init->resp traffic
	keys       ChildKeys
}

// NewResponder returns a responder awaiting the INIT request.
func NewResponder(cfg Config) (*Responder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Responder{cfg: cfg}, nil
}

// HandleInitRequest consumes message 1 and produces message 2.
func (r *Responder) HandleInitRequest(b []byte) ([]byte, error) {
	if r.ph != phaseIdle {
		return nil, fmt.Errorf("%w: HandleInitRequest in phase %d", ErrState, r.ph)
	}
	m, err := unmarshalInit(msgInitReq, b)
	if err != nil {
		return nil, err
	}
	r.spiI = m.spi
	r.ni = m.nonce
	r.transcript = append(r.transcript, b...)

	g := r.cfg.group()
	r.spiR = r.cfg.Rand.Uint64()
	r.nr = randBytes(r.cfg.Rand, nonceLen)
	r.priv = new(big.Int).SetBytes(randBytes(r.cfg.Rand, g.Bits/8))
	pub := modExp(&r.stats, g.G, r.priv, g.P)

	secret := modExp(&r.stats, new(big.Int).SetBytes(m.ke), r.priv, g.P)
	r.skeyseed = prf(append(append([]byte{}, r.ni...), r.nr...), secret.Bytes())

	msg := marshalInit(msgInitResp, initMsg{spi: r.spiR, nonce: r.nr, ke: pub.Bytes()})
	r.transcript = append(r.transcript, msg...)
	r.stats.MsgsOut++
	r.stats.BytesOut += len(msg)
	r.ph = phaseInitHandled
	return msg, nil
}

// HandleAuthRequest consumes message 3, verifies the initiator's AUTH, and
// produces message 4, deriving the child SA keys.
func (r *Responder) HandleAuthRequest(b []byte) ([]byte, error) {
	if r.ph != phaseInitHandled {
		return nil, fmt.Errorf("%w: HandleAuthRequest in phase %d", ErrState, r.ph)
	}
	m, err := unmarshalAuth(msgAuthReq, b)
	if err != nil {
		return nil, err
	}
	want := authTag(r.cfg.PSK, r.transcript, "initiator")
	if !hmac.Equal(want[:], m.auth[:]) {
		return nil, ErrAuthFailed
	}
	r.childSPI = uint32(r.cfg.Rand.Uint64())
	// m.childSPI is the initiator-chosen SPI for resp->init traffic.
	r.keys = deriveChildKeys(r.skeyseed, r.ni, r.nr, r.childSPI, m.childSPI)

	auth := authTag(r.cfg.PSK, r.transcript, "responder")
	msg := marshalAuth(msgAuthResp, authMsg{
		spiI: r.spiI, spiR: r.spiR,
		id: []byte(r.cfg.ID), auth: auth, childSPI: r.childSPI,
	})
	r.stats.MsgsOut++
	r.stats.BytesOut += len(msg)
	r.ph = phaseDone
	return msg, nil
}

// Established reports whether the handshake completed.
func (r *Responder) Established() bool { return r.ph == phaseDone }

// ChildKeys returns the negotiated child SA keying (valid once Established).
func (r *Responder) ChildKeys() ChildKeys { return r.keys }

// Stats returns the responder's accumulated costs.
func (r *Responder) Stats() Stats { return r.stats }

// EstablishResult summarizes a completed in-memory handshake.
type EstablishResult struct {
	// Keys is the negotiated child keying (identical on both sides).
	Keys ChildKeys
	// InitiatorStats and ResponderStats are each party's costs.
	InitiatorStats Stats
	ResponderStats Stats
	// Messages and Bytes total the wire traffic (4 messages).
	Messages int
	Bytes    int
	// Elapsed is the wall-clock duration of the whole handshake.
	Elapsed time.Duration
}

// Establish runs the complete 4-message handshake in memory and returns the
// negotiated keys and costs. It is the unit the multi-SA recovery
// experiments multiply when pricing the IETF teardown-and-renegotiate
// remedy.
func Establish(initCfg, respCfg Config) (EstablishResult, error) {
	start := time.Now()
	ini, err := NewInitiator(initCfg)
	if err != nil {
		return EstablishResult{}, fmt.Errorf("ike: initiator: %w", err)
	}
	rsp, err := NewResponder(respCfg)
	if err != nil {
		return EstablishResult{}, fmt.Errorf("ike: responder: %w", err)
	}
	m1, err := ini.InitRequest()
	if err != nil {
		return EstablishResult{}, err
	}
	m2, err := rsp.HandleInitRequest(m1)
	if err != nil {
		return EstablishResult{}, err
	}
	m3, err := ini.HandleInitResponse(m2)
	if err != nil {
		return EstablishResult{}, err
	}
	m4, err := rsp.HandleAuthRequest(m3)
	if err != nil {
		return EstablishResult{}, err
	}
	if err := ini.HandleAuthResponse(m4); err != nil {
		return EstablishResult{}, err
	}
	return EstablishResult{
		Keys:           ini.ChildKeys(),
		InitiatorStats: ini.Stats(),
		ResponderStats: rsp.Stats(),
		Messages:       4,
		Bytes:          len(m1) + len(m2) + len(m3) + len(m4),
		Elapsed:        time.Since(start),
	}, nil
}
