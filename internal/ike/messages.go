package ike

import (
	"encoding/binary"
	"fmt"
)

// Message type tags.
const (
	msgInitReq  = 1
	msgInitResp = 2
	msgAuthReq  = 3
	msgAuthResp = 4
)

const nonceLen = 32

// initMsg is the body shared by INIT request and response.
type initMsg struct {
	spi   uint64
	nonce []byte // nonceLen
	ke    []byte // DH public value, variable length
}

func marshalInit(tag byte, m initMsg) []byte {
	out := make([]byte, 0, 1+8+nonceLen+4+len(m.ke))
	out = append(out, tag)
	out = binary.BigEndian.AppendUint64(out, m.spi)
	out = append(out, m.nonce...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(m.ke)))
	out = append(out, m.ke...)
	return out
}

func unmarshalInit(tag byte, b []byte) (initMsg, error) {
	var m initMsg
	if len(b) < 1+8+nonceLen+4 {
		return m, fmt.Errorf("%w: init message %d bytes", ErrBadMessage, len(b))
	}
	if b[0] != tag {
		return m, fmt.Errorf("%w: tag %d, want %d", ErrBadMessage, b[0], tag)
	}
	m.spi = binary.BigEndian.Uint64(b[1:9])
	m.nonce = append([]byte(nil), b[9:9+nonceLen]...)
	keLen := binary.BigEndian.Uint32(b[9+nonceLen : 13+nonceLen])
	rest := b[13+nonceLen:]
	if uint32(len(rest)) != keLen {
		return m, fmt.Errorf("%w: KE length %d, have %d", ErrBadMessage, keLen, len(rest))
	}
	m.ke = append([]byte(nil), rest...)
	return m, nil
}

// authMsg is the body shared by AUTH request and response.
type authMsg struct {
	spiI     uint64
	spiR     uint64
	id       []byte
	auth     [32]byte
	childSPI uint32
}

func marshalAuth(tag byte, m authMsg) []byte {
	out := make([]byte, 0, 1+16+2+len(m.id)+32+4)
	out = append(out, tag)
	out = binary.BigEndian.AppendUint64(out, m.spiI)
	out = binary.BigEndian.AppendUint64(out, m.spiR)
	out = binary.BigEndian.AppendUint16(out, uint16(len(m.id)))
	out = append(out, m.id...)
	out = append(out, m.auth[:]...)
	out = binary.BigEndian.AppendUint32(out, m.childSPI)
	return out
}

func unmarshalAuth(tag byte, b []byte) (authMsg, error) {
	var m authMsg
	if len(b) < 1+16+2 {
		return m, fmt.Errorf("%w: auth message %d bytes", ErrBadMessage, len(b))
	}
	if b[0] != tag {
		return m, fmt.Errorf("%w: tag %d, want %d", ErrBadMessage, b[0], tag)
	}
	m.spiI = binary.BigEndian.Uint64(b[1:9])
	m.spiR = binary.BigEndian.Uint64(b[9:17])
	idLen := int(binary.BigEndian.Uint16(b[17:19]))
	rest := b[19:]
	if len(rest) != idLen+32+4 {
		return m, fmt.Errorf("%w: auth trailer %d bytes, want %d", ErrBadMessage, len(rest), idLen+36)
	}
	m.id = append([]byte(nil), rest[:idLen]...)
	copy(m.auth[:], rest[idLen:idLen+32])
	m.childSPI = binary.BigEndian.Uint32(rest[idLen+32:])
	return m, nil
}
