package ike

import "fmt"

// Conn is the two-way control channel an IKE exchange rides: a datagram
// pipe with IKE framing handled elsewhere (e.g. the wire layer's non-ESP
// marker demultiplexing on a UDP-encapsulated link, or a simulated link's
// control lane). Send transmits one message; Recv blocks for the next.
//
// The interface is structural on purpose — wire.UDPLink's Control() view
// satisfies it without this package importing the transport.
type Conn interface {
	Send(p []byte) error
	Recv() ([]byte, error)
}

// RekeyOverConn drives the initiating side of a child-SA rekey exchange
// over c: request out, response in, successor keys derived. The returned
// keys are valid only on a nil error.
func RekeyOverConn(ini *RekeyInitiator, c Conn) (ChildKeys, error) {
	req, err := ini.Request()
	if err != nil {
		return ChildKeys{}, err
	}
	if err := c.Send(req); err != nil {
		return ChildKeys{}, fmt.Errorf("ike: rekey request send: %w", err)
	}
	resp, err := c.Recv()
	if err != nil {
		return ChildKeys{}, fmt.Errorf("ike: rekey response recv: %w", err)
	}
	if err := ini.HandleResponse(resp); err != nil {
		return ChildKeys{}, err
	}
	return ini.ChildKeys(), nil
}

// ServeRekey answers one rekey request arriving on c: request in, response
// out. On success the responder holds the successor keys (rsp.ChildKeys).
func ServeRekey(rsp *RekeyResponder, c Conn) error {
	req, err := c.Recv()
	if err != nil {
		return fmt.Errorf("ike: rekey request recv: %w", err)
	}
	resp, err := rsp.HandleRequest(req)
	if err != nil {
		return err
	}
	if err := c.Send(resp); err != nil {
		return fmt.Errorf("ike: rekey response send: %w", err)
	}
	return nil
}
