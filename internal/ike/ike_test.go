package ike

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"antireplay/internal/core"
	"antireplay/internal/ipsec"
	"antireplay/internal/store"
)

func cfg(seed int64, id string) Config {
	return Config{
		PSK:   []byte("swordfish-psk"),
		Rand:  rand.New(rand.NewSource(seed)),
		Group: TestGroup(),
		ID:    id,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); !errors.Is(err, ErrConfig) {
		t.Errorf("empty config = %v, want ErrConfig", err)
	}
	if err := (Config{PSK: []byte("x")}).Validate(); !errors.Is(err, ErrConfig) {
		t.Errorf("missing rand = %v, want ErrConfig", err)
	}
	if err := cfg(1, "a").Validate(); err != nil {
		t.Errorf("valid config = %v", err)
	}
}

func TestEstablishDerivesMatchingKeys(t *testing.T) {
	res, err := Establish(cfg(1, "gw-east"), cfg(2, "gw-west"))
	if err != nil {
		t.Fatalf("Establish: %v", err)
	}
	k := res.Keys
	if err := k.InitToResp.Validate(); err != nil {
		t.Errorf("InitToResp keys invalid: %v", err)
	}
	if err := k.RespToInit.Validate(); err != nil {
		t.Errorf("RespToInit keys invalid: %v", err)
	}
	if bytes.Equal(k.InitToResp.AuthKey, k.RespToInit.AuthKey) {
		t.Error("directions share an auth key")
	}
	if k.SPIInitToResp == k.SPIRespToInit {
		t.Error("directions share an SPI")
	}
	if res.Messages != 4 {
		t.Errorf("Messages = %d, want 4", res.Messages)
	}
	if res.Bytes == 0 || res.Elapsed <= 0 {
		t.Errorf("missing cost accounting: %+v", res)
	}
	// Each party: one keypair generation + one shared-secret computation.
	if res.InitiatorStats.ModExps != 2 || res.ResponderStats.ModExps != 2 {
		t.Errorf("ModExps = %d/%d, want 2/2",
			res.InitiatorStats.ModExps, res.ResponderStats.ModExps)
	}
}

func TestBothSidesDeriveSameKeys(t *testing.T) {
	ini, err := NewInitiator(cfg(3, "i"))
	if err != nil {
		t.Fatal(err)
	}
	rsp, err := NewResponder(cfg(4, "r"))
	if err != nil {
		t.Fatal(err)
	}
	m1, err := ini.InitRequest()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := rsp.HandleInitRequest(m1)
	if err != nil {
		t.Fatal(err)
	}
	m3, err := ini.HandleInitResponse(m2)
	if err != nil {
		t.Fatal(err)
	}
	m4, err := rsp.HandleAuthRequest(m3)
	if err != nil {
		t.Fatal(err)
	}
	if err := ini.HandleAuthResponse(m4); err != nil {
		t.Fatal(err)
	}
	if !ini.Established() || !rsp.Established() {
		t.Fatal("handshake not established on both sides")
	}
	ik, rk := ini.ChildKeys(), rsp.ChildKeys()
	if !bytes.Equal(ik.InitToResp.AuthKey, rk.InitToResp.AuthKey) ||
		!bytes.Equal(ik.InitToResp.EncKey, rk.InitToResp.EncKey) ||
		!bytes.Equal(ik.RespToInit.AuthKey, rk.RespToInit.AuthKey) ||
		!bytes.Equal(ik.RespToInit.EncKey, rk.RespToInit.EncKey) {
		t.Error("child keys differ between parties")
	}
	if ik.SPIInitToResp != rk.SPIInitToResp || ik.SPIRespToInit != rk.SPIRespToInit {
		t.Error("child SPIs differ between parties")
	}
}

func TestPSKMismatchFailsAuth(t *testing.T) {
	bad := cfg(5, "imposter")
	bad.PSK = []byte("wrong-psk")
	good := cfg(6, "gw")

	ini, _ := NewInitiator(bad)
	rsp, _ := NewResponder(good)
	m1, _ := ini.InitRequest()
	m2, _ := rsp.HandleInitRequest(m1)
	m3, _ := ini.HandleInitResponse(m2)
	if _, err := rsp.HandleAuthRequest(m3); !errors.Is(err, ErrAuthFailed) {
		t.Errorf("HandleAuthRequest with wrong PSK = %v, want ErrAuthFailed", err)
	}
}

func TestResponderAuthVerifiedByInitiator(t *testing.T) {
	// A responder that answers with a corrupted AUTH must be rejected.
	ini, _ := NewInitiator(cfg(7, "i"))
	rsp, _ := NewResponder(cfg(8, "r"))
	m1, _ := ini.InitRequest()
	m2, _ := rsp.HandleInitRequest(m1)
	m3, _ := ini.HandleInitResponse(m2)
	m4, err := rsp.HandleAuthRequest(m3)
	if err != nil {
		t.Fatal(err)
	}
	m4[len(m4)-10] ^= 0x40 // flip an AUTH bit
	if err := ini.HandleAuthResponse(m4); !errors.Is(err, ErrAuthFailed) {
		t.Errorf("HandleAuthResponse tampered = %v, want ErrAuthFailed", err)
	}
}

func TestOutOfOrderStateErrors(t *testing.T) {
	ini, _ := NewInitiator(cfg(9, "i"))
	if _, err := ini.HandleInitResponse(nil); !errors.Is(err, ErrState) {
		t.Errorf("HandleInitResponse first = %v, want ErrState", err)
	}
	if err := ini.HandleAuthResponse(nil); !errors.Is(err, ErrState) {
		t.Errorf("HandleAuthResponse first = %v, want ErrState", err)
	}
	rsp, _ := NewResponder(cfg(10, "r"))
	if _, err := rsp.HandleAuthRequest(nil); !errors.Is(err, ErrState) {
		t.Errorf("HandleAuthRequest first = %v, want ErrState", err)
	}
	if _, err := ini.InitRequest(); err != nil {
		t.Fatal(err)
	}
	if _, err := ini.InitRequest(); !errors.Is(err, ErrState) {
		t.Errorf("second InitRequest = %v, want ErrState", err)
	}
}

func TestMalformedMessages(t *testing.T) {
	rsp, _ := NewResponder(cfg(11, "r"))
	if _, err := rsp.HandleInitRequest([]byte{1, 2, 3}); !errors.Is(err, ErrBadMessage) {
		t.Errorf("short init = %v, want ErrBadMessage", err)
	}
	rsp2, _ := NewResponder(cfg(12, "r"))
	ini, _ := NewInitiator(cfg(13, "i"))
	m1, _ := ini.InitRequest()
	m1[0] = 99 // wrong tag
	if _, err := rsp2.HandleInitRequest(m1); !errors.Is(err, ErrBadMessage) {
		t.Errorf("wrong tag = %v, want ErrBadMessage", err)
	}
}

func TestGroup14Properties(t *testing.T) {
	g := Group14()
	if g.Bits != 2048 {
		t.Errorf("Bits = %d, want 2048", g.Bits)
	}
	if g.P.BitLen() != 2048 {
		t.Errorf("P.BitLen = %d, want 2048", g.P.BitLen())
	}
	if !g.P.ProbablyPrime(16) {
		t.Error("group 14 modulus not prime")
	}
	if Group14() != g {
		t.Error("Group14 should return the cached instance")
	}
}

func TestTestGroupPrime(t *testing.T) {
	g := TestGroup()
	if !g.P.ProbablyPrime(16) {
		t.Error("test group modulus not prime")
	}
}

func TestNegotiatedKeysDriveIPsec(t *testing.T) {
	// End-to-end: IKE-negotiated keys secure an ESP exchange.
	res, err := Establish(cfg(20, "east"), cfg(21, "west"))
	if err != nil {
		t.Fatal(err)
	}
	var sm, rm store.Mem
	snd, err := core.NewSender(core.SenderConfig{K: 25, Store: &sm})
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := core.NewReceiver(core.ReceiverConfig{K: 25, Store: &rm, W: 64})
	if err != nil {
		t.Fatal(err)
	}
	out, err := ipsec.NewOutboundSA(res.Keys.SPIInitToResp, res.Keys.InitToResp, snd, false, ipsec.Lifetime{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	in, err := ipsec.NewInboundSA(res.Keys.SPIInitToResp, res.Keys.InitToResp, rcv, false, ipsec.Lifetime{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := out.Seal([]byte("negotiated"))
	if err != nil {
		t.Fatal(err)
	}
	payload, v, err := in.Open(wire)
	if err != nil || !v.Delivered() || string(payload) != "negotiated" {
		t.Fatalf("Open = %q %v %v", payload, v, err)
	}
}

func TestPrfPlusLengths(t *testing.T) {
	key := []byte("k")
	seed := []byte("s")
	for _, n := range []int{1, 31, 32, 33, 64, 100} {
		out := prfPlus(key, seed, n)
		if len(out) != n {
			t.Errorf("prfPlus(%d) returned %d bytes", n, len(out))
		}
	}
	// Deterministic and prefix-consistent.
	a := prfPlus(key, seed, 64)
	b := prfPlus(key, seed, 32)
	if !bytes.Equal(a[:32], b) {
		t.Error("prfPlus not prefix-consistent")
	}
}

func BenchmarkEstablishGroup14(b *testing.B) {
	psk := []byte("bench-psk")
	for i := 0; i < b.N; i++ {
		ic := Config{PSK: psk, Rand: rand.New(rand.NewSource(int64(i) + 1)), ID: "i"}
		rc := Config{PSK: psk, Rand: rand.New(rand.NewSource(int64(i) + 1e9)), ID: "r"}
		if _, err := Establish(ic, rc); err != nil {
			b.Fatal(err)
		}
	}
}
