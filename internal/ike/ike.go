// Package ike is a miniature IKE (ISAKMP/Oakley-style) handshake used to
// price the alternative the paper argues against: tearing down and
// re-establishing the whole SA after a reset (§3: "reestablishing the entire
// IPsec SA is very expensive ... recomputation of most attributes ...
// renegotiation ... using a secured connection").
//
// The handshake is a simplified IKEv2 flow — two round trips:
//
//  1. INIT  request:  SPIi, nonce Ni, KEi (Diffie-Hellman public value)
//  2. INIT  response: SPIr, nonce Nr, KEr
//  3. AUTH  request:  IDi, AUTHi = prf(prf(PSK, pad), transcript), child SPI
//  4. AUTH  response: IDr, AUTHr, child SPI
//
// with real 2048-bit MODP group-14 Diffie-Hellman (RFC 3526) via math/big,
// HMAC-SHA256 as the PRF, and RFC 7296-style PRF+ key expansion into child
// SA key material. The modular exponentiations are real work, so the
// recovery-cost experiments measure genuine asymmetric-crypto time rather
// than a synthetic constant.
//
// Randomness comes from a caller-supplied seeded source for experiment
// reproducibility; this package must not be used for actual security.
package ike

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
	"math/rand"
	"strings"
	"sync"
	"time"

	"antireplay/internal/ipsec"
)

// Sentinel errors.
var (
	// ErrAuthFailed reports an AUTH payload that failed verification.
	ErrAuthFailed = errors.New("ike: authentication failed")
	// ErrBadMessage reports a malformed or unexpected message.
	ErrBadMessage = errors.New("ike: malformed message")
	// ErrState reports a handshake method called out of order.
	ErrState = errors.New("ike: invalid handshake state")
	// ErrConfig reports an invalid configuration.
	ErrConfig = errors.New("ike: invalid configuration")
)

// Group is a finite-field Diffie-Hellman group.
type Group struct {
	// P is the prime modulus.
	P *big.Int
	// G is the generator.
	G *big.Int
	// Bits is the modulus size.
	Bits int
}

// RFC 3526 §3: the 2048-bit MODP group (group 14).
const group14Hex = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1" +
	"29024E088A67CC74020BBEA63B139B22514A08798E3404DD" +
	"EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245" +
	"E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED" +
	"EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D" +
	"C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F" +
	"83655D23DCA3AD961C62F356208552BB9ED529077096966D" +
	"670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B" +
	"E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9" +
	"DE2BCBF6955817183995497CEA956AE515D2261898FA0510" +
	"15728E5A8AACAA68FFFFFFFFFFFFFFFF"

var (
	group14Once sync.Once
	group14     *Group
)

// Group14 returns the RFC 3526 2048-bit MODP group.
func Group14() *Group {
	group14Once.Do(func() {
		p, ok := new(big.Int).SetString(strings.ToLower(group14Hex), 16)
		if !ok {
			panic("ike: invalid group 14 prime literal")
		}
		group14 = &Group{P: p, G: big.NewInt(2), Bits: 2048}
	})
	return group14
}

// TestGroup returns a tiny (insecure) group for fast unit tests: the
// 512-bit prime keeps modexp under a microsecond. Never use outside tests
// or explicitly-flagged fast experiment modes.
func TestGroup() *Group {
	// 2^512 - 569 is prime.
	p := new(big.Int).Lsh(big.NewInt(1), 512)
	p.Sub(p, big.NewInt(569))
	return &Group{P: p, G: big.NewInt(3), Bits: 512}
}

// Config parameterizes one handshake party.
type Config struct {
	// PSK is the pre-shared key authenticating the peers. Required.
	PSK []byte
	// Rand supplies nonces, SPIs and DH private keys. Required (seed it for
	// reproducible experiments).
	Rand *rand.Rand
	// Group is the DH group; nil means Group14.
	Group *Group
	// ID identifies the party in AUTH payloads (e.g. "gw-east").
	ID string
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if len(c.PSK) == 0 {
		return fmt.Errorf("%w: PSK required", ErrConfig)
	}
	if c.Rand == nil {
		return fmt.Errorf("%w: Rand required", ErrConfig)
	}
	return nil
}

func (c Config) group() *Group {
	if c.Group == nil {
		return Group14()
	}
	return c.Group
}

// Stats accumulates a party's handshake costs.
type Stats struct {
	// ModExps counts modular exponentiations performed.
	ModExps int
	// ModExpTime is the wall-clock time spent in them.
	ModExpTime time.Duration
	// MsgsOut counts handshake messages produced.
	MsgsOut int
	// BytesOut counts handshake bytes produced.
	BytesOut int
}

// prf is HMAC-SHA256.
func prf(key, data []byte) []byte {
	m := hmac.New(sha256.New, key)
	m.Write(data)
	return m.Sum(nil)
}

// prfPlus is the RFC 7296 §2.13 key expansion.
func prfPlus(key, seed []byte, n int) []byte {
	var (
		out []byte
		t   []byte
	)
	for i := byte(1); len(out) < n; i++ {
		m := hmac.New(sha256.New, key)
		m.Write(t)
		m.Write(seed)
		m.Write([]byte{i})
		t = m.Sum(nil)
		out = append(out, t...)
	}
	return out[:n]
}

// modExp computes g^x mod p, charging the cost to st.
func modExp(st *Stats, g, x, p *big.Int) *big.Int {
	start := time.Now()
	r := new(big.Int).Exp(g, x, p)
	st.ModExps++
	st.ModExpTime += time.Since(start)
	return r
}

func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
	return b
}

// keyPad is the RFC 7296 §2.15 pad string for PSK-based AUTH.
var keyPad = []byte("Key Pad for IKEv2")

// authTag computes the AUTH payload over a transcript.
func authTag(psk, transcript []byte, role string) [32]byte {
	inner := prf(psk, keyPad)
	var out [32]byte
	copy(out[:], prf(inner, append(transcript, role...)))
	return out
}

// ChildKeys is the keying for one child (ESP) SA pair produced by a
// handshake: initiator-to-responder and responder-to-initiator directions.
type ChildKeys struct {
	// InitToResp keys traffic from initiator to responder.
	InitToResp ipsec.KeyMaterial
	// RespToInit keys traffic from responder to initiator.
	RespToInit ipsec.KeyMaterial
	// SPIInitToResp and SPIRespToInit name the two SAs.
	SPIInitToResp uint32
	SPIRespToInit uint32
}

// deriveChildKeys expands SKEYSEED material into the child SA keys; both
// sides compute identical results from the shared secret and nonces.
func deriveChildKeys(skeyseed, ni, nr []byte, spiIR, spiRI uint32) ChildKeys {
	seed := make([]byte, 0, len(ni)+len(nr)+8)
	seed = append(seed, ni...)
	seed = append(seed, nr...)
	seed = binary.BigEndian.AppendUint32(seed, spiIR)
	seed = binary.BigEndian.AppendUint32(seed, spiRI)
	return deriveFromSeed(skeyseed, seed, spiIR, spiRI)
}

// deriveFromSeed runs the PRF+ expansion over an already-assembled seed and
// slices the output into the two directions' key material.
func deriveFromSeed(skeyseed, seed []byte, spiIR, spiRI uint32) ChildKeys {
	const per = ipsec.AuthKeySize + ipsec.EncKeySize
	km := prfPlus(skeyseed, seed, 2*per)
	return ChildKeys{
		InitToResp: ipsec.KeyMaterial{
			AuthKey: km[0:ipsec.AuthKeySize],
			EncKey:  km[ipsec.AuthKeySize:per],
		},
		RespToInit: ipsec.KeyMaterial{
			AuthKey: km[per : per+ipsec.AuthKeySize],
			EncKey:  km[per+ipsec.AuthKeySize : 2*per],
		},
		SPIInitToResp: spiIR,
		SPIRespToInit: spiRI,
	}
}
