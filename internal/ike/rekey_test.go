package ike

import (
	"errors"
	"math/rand"
	"testing"
)

func rekeyCfg(seed int64, id string) Config {
	return Config{
		PSK:   []byte("rekey-test-psk"),
		Rand:  rand.New(rand.NewSource(seed)),
		Group: TestGroup(),
		ID:    id,
	}
}

func TestRekeyChildDerivesMatchingKeys(t *testing.T) {
	res, err := RekeyChild(rekeyCfg(1, "east"), rekeyCfg(2, "west"), 0x100, 0x101)
	if err != nil {
		t.Fatalf("RekeyChild: %v", err)
	}
	k := res.Keys
	if k.SPIInitToResp == 0x100 || k.SPIRespToInit == 0x101 {
		t.Error("successor reused an old SPI")
	}
	if k.SPIInitToResp == k.SPIRespToInit {
		t.Error("successor directions share one SPI")
	}
	if err := k.InitToResp.Validate(); err != nil {
		t.Errorf("InitToResp keys: %v", err)
	}
	if err := k.RespToInit.Validate(); err != nil {
		t.Errorf("RespToInit keys: %v", err)
	}
	if res.Messages != 2 {
		t.Errorf("Messages = %d, want 2", res.Messages)
	}
	// One round trip must cost half the full handshake's messages but the
	// same modexp shape (2 per side: own public value + shared secret).
	if res.InitiatorStats.ModExps != 2 || res.ResponderStats.ModExps != 2 {
		t.Errorf("ModExps = (%d, %d), want (2, 2)",
			res.InitiatorStats.ModExps, res.ResponderStats.ModExps)
	}
}

// TestRekeySidesAgree runs the exchange message by message and checks both
// parties derive identical successor keying.
func TestRekeySidesAgree(t *testing.T) {
	ini, err := NewRekeyInitiator(rekeyCfg(3, "east"), 7, 8)
	if err != nil {
		t.Fatalf("NewRekeyInitiator: %v", err)
	}
	rsp, err := NewRekeyResponder(rekeyCfg(4, "west"), 7, 8)
	if err != nil {
		t.Fatalf("NewRekeyResponder: %v", err)
	}
	m1, err := ini.Request()
	if err != nil {
		t.Fatalf("Request: %v", err)
	}
	m2, err := rsp.HandleRequest(m1)
	if err != nil {
		t.Fatalf("HandleRequest: %v", err)
	}
	if err := ini.HandleResponse(m2); err != nil {
		t.Fatalf("HandleResponse: %v", err)
	}
	if !ini.Established() || !rsp.Established() {
		t.Fatal("exchange did not complete on both sides")
	}
	ki, kr := ini.ChildKeys(), rsp.ChildKeys()
	if ki.SPIInitToResp != kr.SPIInitToResp || ki.SPIRespToInit != kr.SPIRespToInit {
		t.Errorf("SPI disagreement: %+v vs %+v", ki, kr)
	}
	if string(ki.InitToResp.AuthKey) != string(kr.InitToResp.AuthKey) ||
		string(ki.RespToInit.AuthKey) != string(kr.RespToInit.AuthKey) {
		t.Error("key disagreement between initiator and responder")
	}
}

// TestRekeyTranscriptBinding: a responder rolling over one SA pair refuses
// an exchange bound to another, and a tampered binding breaks the AUTH.
func TestRekeyTranscriptBinding(t *testing.T) {
	ini, _ := NewRekeyInitiator(rekeyCfg(5, "east"), 0xAAAA, 0xBBBB)
	m1, err := ini.Request()
	if err != nil {
		t.Fatalf("Request: %v", err)
	}

	// Wrong pair configured at the responder: refused outright.
	rsp, _ := NewRekeyResponder(rekeyCfg(6, "west"), 0xAAAA, 0xCCCC)
	if _, err := rsp.HandleRequest(m1); !errors.Is(err, ErrRekeyBinding) {
		t.Errorf("mismatched pair: err = %v, want ErrRekeyBinding", err)
	}

	// A spliced message (old SPIs rewritten in transit to match what the
	// responder expects): the AUTH tag, computed over the true binding,
	// fails — the transcript is what carries the SA identity.
	spliced := append([]byte(nil), m1...)
	spliced[4] = ^spliced[4] // oldIR 0xAAAA -> 0xAA55 on the wire
	rsp2, _ := NewRekeyResponder(rekeyCfg(7, "west"), 0xAA55, 0xBBBB)
	if _, err := rsp2.HandleRequest(spliced); !errors.Is(err, ErrAuthFailed) {
		t.Errorf("spliced rekey request: err = %v, want ErrAuthFailed", err)
	}

	// Wrong PSK: AUTH fails.
	bad := rekeyCfg(8, "west")
	bad.PSK = []byte("wrong")
	rsp3, _ := NewRekeyResponder(bad, 0xAAAA, 0xBBBB)
	if _, err := rsp3.HandleRequest(m1); !errors.Is(err, ErrAuthFailed) {
		t.Errorf("wrong PSK: err = %v, want ErrAuthFailed", err)
	}
}

// TestRekeyGenerationsDiverge: two rollovers of the same pair produce
// distinct keying (fresh nonces/DH), and the successor never equals the
// generation it replaces.
func TestRekeyGenerationsDiverge(t *testing.T) {
	r1, err := RekeyChild(rekeyCfg(9, "east"), rekeyCfg(10, "west"), 1, 2)
	if err != nil {
		t.Fatalf("RekeyChild: %v", err)
	}
	r2, err := RekeyChild(rekeyCfg(11, "east"), rekeyCfg(12, "west"), 1, 2)
	if err != nil {
		t.Fatalf("RekeyChild: %v", err)
	}
	if string(r1.Keys.InitToResp.AuthKey) == string(r2.Keys.InitToResp.AuthKey) {
		t.Error("two rekeys of one pair derived identical keys")
	}
}
