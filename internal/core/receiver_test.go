package core_test

import (
	"errors"
	"testing"

	"antireplay/internal/core"
	"antireplay/internal/store"
	"antireplay/internal/trace"
)

func TestReceiverVerdicts(t *testing.T) {
	var m store.Mem
	r := mustReceiver(t, core.ReceiverConfig{K: 10, Store: &m, W: 64})

	if v := r.Admit(100); v != core.VerdictNew {
		t.Fatalf("Admit(100) = %v, want new", v)
	}
	if v := r.Admit(90); v != core.VerdictInWindow {
		t.Errorf("Admit(90) = %v, want in-window", v)
	}
	if v := r.Admit(90); v != core.VerdictDuplicate {
		t.Errorf("Admit(90) again = %v, want duplicate", v)
	}
	if v := r.Admit(36); v != core.VerdictStale {
		t.Errorf("Admit(36) = %v, want stale", v)
	}
	st := r.Stats()
	if st.Delivered != 2 || st.Discarded != 2 {
		t.Errorf("stats = %+v, want 2 delivered 2 discarded", st)
	}
	if r.Edge() != 100 {
		t.Errorf("Edge = %d, want 100", r.Edge())
	}
}

func TestReceiverSaveTrigger(t *testing.T) {
	var m store.Mem
	sv := newManualSaver(&m)
	r := mustReceiver(t, core.ReceiverConfig{K: 10, Store: &m, Saver: sv})

	for s := uint64(1); s <= 9; s++ {
		r.Admit(s)
	}
	if sv.PendingCount() != 0 {
		t.Fatal("no save expected before the edge advances K past lst")
	}
	r.Admit(10) // edge 10 >= K(10)+lst(0)
	if sv.PendingCount() != 1 {
		t.Fatal("save expected at edge 10")
	}
	sv.CommitAll(t)
	if v, _ := m.Peek(); v != 10 {
		t.Errorf("durable = %d, want 10", v)
	}
	if r.LastStored() != 10 {
		t.Errorf("LastStored = %d, want 10", r.LastStored())
	}
	r.Admit(19)
	if sv.PendingCount() != 0 {
		t.Fatal("edge 19 < lst 10 + K 10: no save")
	}
	r.Admit(20)
	if sv.PendingCount() != 1 {
		t.Fatal("save expected at edge 20")
	}
	sv.CommitAll(t)
}

func TestReceiverResetAfterSaveCompleted(t *testing.T) {
	// Fig. 2, second case: reset after SAVE(r) finished. The leap of 2Kq
	// puts the edge above every previously received sequence number, so no
	// replay is accepted; at most 2Kq fresh messages are discarded.
	const k = 10
	var m store.Mem
	sv := newManualSaver(&m)
	r := mustReceiver(t, core.ReceiverConfig{K: k, Store: &m, Saver: sv, W: 64})

	for s := uint64(1); s <= k; s++ {
		r.Admit(s)
	}
	sv.CommitAll(t) // durable k
	for s := uint64(k + 1); s <= k+3; s++ {
		r.Admit(s) // received but not durable
	}
	lastReceived := uint64(k + 3)

	r.Reset()
	r.Wake()
	sv.CommitAll(t)
	if got := r.State(); got != core.StateUp {
		t.Fatalf("State = %v (wake err %v)", got, r.LastWakeError())
	}

	newEdge := r.Edge()
	if want := uint64(k + 2*k); newEdge != want {
		t.Errorf("post-wake edge = %d, want %d", newEdge, want)
	}
	if newEdge < lastReceived {
		t.Errorf("SAFETY: edge %d below last received %d — replays possible", newEdge, lastReceived)
	}

	// Every previously received sequence number must be rejected.
	for s := uint64(1); s <= lastReceived; s++ {
		if v := r.Admit(s); v.Delivered() {
			t.Fatalf("SAFETY: replay of %d delivered after wake", s)
		}
	}

	// Fresh messages in (lastReceived, newEdge] are sacrificed — bounded.
	discarded := 0
	for s := lastReceived + 1; s <= newEdge; s++ {
		if v := r.Admit(s); !v.Delivered() {
			discarded++
		}
	}
	if discarded > 2*k {
		t.Errorf("fresh discards after wake = %d, bound 2Kq = %d", discarded, 2*k)
	}

	// And everything above the new edge flows normally.
	if v := r.Admit(newEdge + 1); v != core.VerdictNew {
		t.Errorf("Admit(edge+1) = %v, want new", v)
	}
}

func TestReceiverResetDuringSave(t *testing.T) {
	// Fig. 2, first case: reset before SAVE(r) commits. FETCH returns the
	// previous durable value; the gap can reach 2Kq and the leap still
	// covers it exactly.
	const k = 10
	var m store.Mem
	sv := newManualSaver(&m)
	r := mustReceiver(t, core.ReceiverConfig{K: k, Store: &m, Saver: sv, W: 64})

	for s := uint64(1); s <= k; s++ {
		r.Admit(s) // SAVE(10) pending
	}
	sv.CommitAll(t) // durable 10
	for s := uint64(k + 1); s <= 2*k; s++ {
		r.Admit(s) // SAVE(20) pending
	}
	for s := uint64(2*k + 1); s <= 2*k+5; s++ {
		r.Admit(s)
	}
	lastReceived := uint64(2*k + 5)

	r.Reset() // tears SAVE(20)
	if sv.PendingCount() != 0 {
		t.Fatal("reset must cancel in-flight saves")
	}
	r.Wake()
	sv.CommitAll(t)

	newEdge := r.Edge()
	if want := uint64(k + 2*k); newEdge != want {
		t.Errorf("post-wake edge = %d, want %d (stale fetch %d + leap %d)", newEdge, want, k, 2*k)
	}
	if newEdge < lastReceived {
		t.Errorf("SAFETY: edge %d below last received %d", newEdge, lastReceived)
	}
	for s := uint64(1); s <= lastReceived; s++ {
		if v := r.Admit(s); v.Delivered() {
			t.Fatalf("SAFETY: replay of %d delivered", s)
		}
	}
}

func TestReceiverBuffersDuringWake(t *testing.T) {
	const k = 10
	var m store.Mem
	sv := newManualSaver(&m)
	type drained struct {
		seq uint64
		v   core.Verdict
	}
	var drain []drained
	r := mustReceiver(t, core.ReceiverConfig{
		K: k, Store: &m, Saver: sv, W: 64,
		Drain: func(seq uint64, v core.Verdict) { drain = append(drain, drained{seq, v}) },
	})

	for s := uint64(1); s <= k; s++ {
		r.Admit(s)
	}
	sv.CommitAll(t) // durable 10

	r.Reset()
	r.Wake() // post-wake SAVE(30) pending
	// Messages arriving before the SAVE completes are buffered (§4):
	// a replay of 5 and fresh messages 31 and 32.
	if v := r.Admit(5); v != core.VerdictBuffered {
		t.Fatalf("Admit(5) while waking = %v, want buffered", v)
	}
	if v := r.Admit(31); v != core.VerdictBuffered {
		t.Fatalf("Admit(31) while waking = %v, want buffered", v)
	}
	if v := r.Admit(32); v != core.VerdictBuffered {
		t.Fatalf("Admit(32) while waking = %v, want buffered", v)
	}

	sv.CommitAll(t) // wake completes, buffer drains in arrival order

	if len(drain) != 3 {
		t.Fatalf("drained %d messages, want 3", len(drain))
	}
	if drain[0].seq != 5 || drain[0].v.Delivered() {
		t.Errorf("drain[0] = %+v, want replay 5 discarded", drain[0])
	}
	if drain[1].seq != 31 || drain[1].v != core.VerdictNew {
		t.Errorf("drain[1] = %+v, want fresh 31 delivered", drain[1])
	}
	if drain[2].seq != 32 || drain[2].v != core.VerdictNew {
		t.Errorf("drain[2] = %+v, want fresh 32 delivered", drain[2])
	}
}

func TestReceiverWakeBufferOverflow(t *testing.T) {
	var m store.Mem
	sv := newManualSaver(&m)
	r := mustReceiver(t, core.ReceiverConfig{K: 5, Store: &m, Saver: sv, WakeBuffer: 2})

	r.Reset()
	r.Wake()
	if v := r.Admit(1); v != core.VerdictBuffered {
		t.Fatalf("Admit = %v, want buffered", v)
	}
	if v := r.Admit(2); v != core.VerdictBuffered {
		t.Fatalf("Admit = %v, want buffered", v)
	}
	if v := r.Admit(3); v != core.VerdictOverflow {
		t.Fatalf("Admit = %v, want overflow", v)
	}
	if got := r.Stats().Overflowed; got != 1 {
		t.Errorf("Overflowed = %d, want 1", got)
	}
	sv.CommitAll(t)
}

func TestReceiverDownDropsMessages(t *testing.T) {
	var m store.Mem
	r := mustReceiver(t, core.ReceiverConfig{K: 5, Store: &m})
	r.Reset()
	if v := r.Admit(1); v != core.VerdictDown {
		t.Errorf("Admit while down = %v, want down", v)
	}
}

func TestReceiverBaselineWakeAcceptsReplays(t *testing.T) {
	// §3: after a baseline receiver reset, an adversary can replay the
	// entire history and everything is accepted.
	r := mustReceiver(t, core.ReceiverConfig{Baseline: true, W: 64})
	for s := uint64(1); s <= 100; s++ {
		r.Admit(s)
	}
	r.Reset()
	r.Wake()
	accepted := 0
	for s := uint64(1); s <= 100; s++ {
		if r.Admit(s).Delivered() {
			accepted++
		}
	}
	if accepted != 100 {
		t.Errorf("baseline accepted %d replays, want 100 (the vulnerability)", accepted)
	}
}

func TestReceiverDoubleResetBeforePostWakeSave(t *testing.T) {
	// §4 second consideration, receiver side: a second reset strikes while
	// the post-wake SAVE is still in flight. The receiver never served
	// traffic in between (messages were buffered, not decided), so no
	// sequence number was consumed, and the second wake leaps from the old
	// durable value again.
	const k = 10
	var m store.Mem
	sv := newManualSaver(&m)
	r := mustReceiver(t, core.ReceiverConfig{K: k, Store: &m, Saver: sv, W: 64})

	for s := uint64(1); s <= k; s++ {
		r.Admit(s)
	}
	sv.CommitAll(t) // durable 10
	lastReceived := uint64(k)

	r.Reset()
	r.Wake() // SAVE(30) in flight
	r.Admit(7)
	r.Reset() // buffer and save torn
	r.Wake()
	sv.CommitAll(t)

	if got := r.State(); got != core.StateUp {
		t.Fatalf("State = %v (wake err %v)", got, r.LastWakeError())
	}
	if edge := r.Edge(); edge < lastReceived {
		t.Errorf("SAFETY: edge %d below last received %d", edge, lastReceived)
	}
	for s := uint64(1); s <= lastReceived; s++ {
		if r.Admit(s).Delivered() {
			t.Fatalf("SAFETY: replay of %d delivered after double reset", s)
		}
	}
}

func TestReceiverWakeFetchFailure(t *testing.T) {
	var m store.Mem
	f := store.NewFaulty(&m)
	r := mustReceiver(t, core.ReceiverConfig{K: 5, Store: f})
	r.Reset()
	f.CorruptFetches(1)
	r.Wake()
	if got := r.State(); got != core.StateDown {
		t.Fatalf("State = %v, want down", got)
	}
	if err := r.LastWakeError(); !errors.Is(err, store.ErrInjected) {
		t.Errorf("LastWakeError = %v, want wrapped ErrInjected", err)
	}
	r.Wake()
	if got := r.State(); got != core.StateUp {
		t.Errorf("State = %v, want up after retry", got)
	}
}

func TestReceiverWakePostSaveFailure(t *testing.T) {
	var m store.Mem
	sv := newManualSaver(&m)
	r := mustReceiver(t, core.ReceiverConfig{K: 5, Store: &m, Saver: sv})
	r.Reset()
	r.Wake()
	if !sv.FailNext(errors.New("disk detached")) {
		t.Fatal("no pending post-wake save")
	}
	if got := r.State(); got != core.StateDown {
		t.Fatalf("State = %v, want down", got)
	}
	if r.LastWakeError() == nil {
		t.Error("LastWakeError = nil, want error")
	}
}

func TestReceiverBackgroundSaveFailureRetries(t *testing.T) {
	const k = 10
	var m store.Mem
	sv := newManualSaver(&m)
	r := mustReceiver(t, core.ReceiverConfig{K: k, Store: &m, Saver: sv})

	for s := uint64(1); s <= k; s++ {
		r.Admit(s)
	}
	if !sv.FailNext(errors.New("transient")) {
		t.Fatal("no pending save")
	}
	if got := r.Stats().SavesFailed; got != 1 {
		t.Fatalf("SavesFailed = %d, want 1", got)
	}
	// lst rolled back to durable (0): the next edge advance re-triggers.
	r.Admit(k + 1)
	if sv.PendingCount() != 1 {
		t.Fatal("expected retry save after rollback")
	}
	sv.CommitAll(t)
	if v, _ := m.Peek(); v != k+1 {
		t.Errorf("durable = %d, want %d", v, k+1)
	}
}

func TestReceiverNoSavedState(t *testing.T) {
	r := mustReceiver(t, core.ReceiverConfig{K: 5, Store: ghostStore{}})
	r.Reset()
	r.Wake()
	if err := r.LastWakeError(); !errors.Is(err, core.ErrNoSavedState) {
		t.Errorf("LastWakeError = %v, want ErrNoSavedState", err)
	}
}

func TestReceiverWakeIdempotentWhenUp(t *testing.T) {
	var m store.Mem
	r := mustReceiver(t, core.ReceiverConfig{K: 5, Store: &m})
	r.Admit(3)
	r.Wake()
	if r.Edge() != 3 || r.State() != core.StateUp {
		t.Error("Wake on an up receiver must be a no-op")
	}
}

func TestReceiverTraceEvents(t *testing.T) {
	var m store.Mem
	tc := trace.NewCollector(128)
	sv := newManualSaver(&m)
	r := mustReceiver(t, core.ReceiverConfig{K: 2, Store: &m, Saver: sv, Trace: tc, Name: "q"})

	r.Admit(1)
	r.Admit(1)
	r.Admit(2)
	sv.CommitAll(t)
	r.Reset()
	r.Admit(9)
	r.Wake()
	r.Admit(10)
	sv.CommitAll(t)

	want := map[trace.Kind]uint64{
		trace.KindDeliver:     2,
		trace.KindDiscardDup:  1,
		trace.KindDiscardDown: 1,
		trace.KindBuffered:    1,
		trace.KindReset:       1,
		trace.KindWake:        1,
		trace.KindWakeDone:    1,
		trace.KindFetch:       1,
	}
	for k, n := range want {
		if got := tc.Count(k); got < n {
			t.Errorf("trace %v = %d, want >= %d", k, got, n)
		}
	}
}

func TestReceiverDefaultWindow(t *testing.T) {
	var m store.Mem
	r := mustReceiver(t, core.ReceiverConfig{K: 5, Store: &m})
	if got := r.W(); got != 64 {
		t.Errorf("default W = %d, want 64", got)
	}
}
