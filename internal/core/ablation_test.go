package core_test

// Ablation tests documenting which environmental assumption each paper
// mechanism depends on. These tests *expect* the violation to appear when
// the assumption is broken — if an ablation stops failing, the test suite
// no longer demonstrates why the mechanism is needed.

import (
	"testing"

	"antireplay/internal/core"
	"antireplay/internal/store"
)

// TestLyingStorageBreaksTheLeapBound: the paper assumes a completed SAVE is
// durable. A medium that acknowledges before persisting (no fsync, lost
// write-back cache) silently breaks the 2K bound: after a reset the FETCH
// returns a value older than the protocol believes, and the leap no longer
// clears the numbers used before the crash.
func TestLyingStorageBreaksTheLeapBound(t *testing.T) {
	const k = 5
	var m store.Mem
	f := store.NewFaulty(&m)
	sv := newManualSaver(f)
	s := mustSender(t, core.SenderConfig{K: k, Store: f, Saver: sv})

	sendN(t, s, k) // SAVE(6)
	sv.CommitAll(t)
	// From here on, storage acknowledges but drops every write.
	f.LoseSaves(1000)
	sendN(t, s, 4*k) // several "successful" saves, none durable
	lastUsed := uint64(5 * k)

	s.Reset()
	s.Wake()
	sv.CommitAll(t) // post-wake save also lost, but reported fine
	if s.State() != core.StateUp {
		t.Fatalf("state = %v (err %v)", s.State(), s.LastWakeError())
	}

	resume := s.Seq()
	// The violation this ablation documents: the resume point falls at or
	// below numbers already used.
	if resume > lastUsed {
		t.Fatalf("expected the lying storage to break the bound, but resume %d > last used %d — "+
			"the ablation no longer demonstrates the durability requirement", resume, lastUsed)
	}
	if got := f.LostSaves(); got == 0 {
		t.Fatal("no saves were lost; the fault injection is broken")
	}
}

// TestUndersizedKBreaksTheLeapBound: §4's sizing rule K = ceil(Tsave/Tsend)
// is a correctness requirement. If far more than K messages flow while one
// save is in flight, the durable value lags more than 2K and a reset
// resumes below the last used number.
func TestUndersizedKBreaksTheLeapBound(t *testing.T) {
	const k = 5
	var m store.Mem
	sv := newManualSaver(&m)
	s := mustSender(t, core.SenderConfig{K: k, Store: &m, Saver: sv})

	// The "disk" never catches up: 10K messages flow with every save still
	// in flight (an undersized K relative to the real save latency).
	sendN(t, s, 10*k)
	lastUsed := uint64(10 * k)

	s.Reset() // tears every pending save; durable is still the initial 1
	s.Wake()
	sv.CommitAll(t)

	resume := s.Seq()
	if want := uint64(1 + 2*k); resume != want {
		t.Fatalf("resume = %d, want %d (fetched initial 1 + leap)", resume, want)
	}
	if resume > lastUsed {
		t.Fatal("expected the undersized K to break the bound — " +
			"the ablation no longer demonstrates the §4 sizing rule")
	}
}

// TestProperlySizedKHoldsTheBound is the control for the previous test:
// when saves keep pace (at most K messages between commit opportunities),
// the bound holds no matter where the reset lands.
func TestProperlySizedKHoldsTheBound(t *testing.T) {
	const k = 5
	for resetAt := uint64(1); resetAt <= 6*k; resetAt++ {
		var m store.Mem
		sv := newManualSaver(&m)
		s := mustSender(t, core.SenderConfig{K: k, Store: &m, Saver: sv})

		var lastUsed uint64
		for i := uint64(1); i <= resetAt; i++ {
			seq, err := s.Next()
			if err != nil {
				t.Fatal(err)
			}
			lastUsed = seq
			// The medium keeps pace: commits happen within K sends.
			if i%k == 0 {
				sv.CommitAll(t)
			}
		}
		s.Reset()
		s.Wake()
		sv.CommitAll(t)

		resume := s.Seq()
		if resume <= lastUsed {
			t.Fatalf("resetAt=%d: SAFETY: resume %d <= last used %d", resetAt, resume, lastUsed)
		}
		if lost := resume - lastUsed - 1; lost > 2*k {
			t.Fatalf("resetAt=%d: lost %d > 2K=%d", resetAt, lost, 2*k)
		}
	}
}
