package core_test

// Randomized-schedule property tests.
//
// Two regimes per endpoint:
//
//   - paper mode: schedules respect the paper's operating assumptions —
//     saves keep pace (at most one in flight, per the §4 sizing rule) and,
//     for the receiver, no loss-induced sequence jumps (fresh traffic
//     pauses while the receiver is down). Under these assumptions the
//     paper's theorems hold and the invariants below must too.
//   - strict mode (StrictHorizon): fully adversarial schedules — lagging
//     saves, traffic racing ahead during receiver downtime, replays of
//     everything — and the invariants must STILL hold, because the horizon
//     guard makes them unconditional.
//
// Invariants:
//
//   INV1 (sender):   no sequence number is ever handed out twice;
//   INV2 (receiver): no sequence number is ever delivered twice.

import (
	"math/rand"
	"testing"

	"antireplay/internal/core"
	"antireplay/internal/store"
)

func TestSenderNeverReusesPaperMode(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		rng := rand.New(rand.NewSource(seed * 131))
		k := uint64(1 + rng.Intn(40))
		var m store.Mem
		sv := newManualSaver(&m)
		s := mustSender(t, core.SenderConfig{K: k, Store: &m, Saver: sv})

		handedOut := make(map[uint64]int)
		down := false
		for step := 0; step < 3000; step++ {
			switch r := rng.Intn(20); {
			case r < 12 && !down: // send, with saves keeping pace (§4)
				seq, err := s.Next()
				if err != nil {
					continue
				}
				if handedOut[seq]++; handedOut[seq] > 1 {
					t.Fatalf("seed %d K=%d step %d: INV1 violated: seq %d reused",
						seed, k, step, seq)
				}
				for sv.PendingCount() > 1 {
					sv.Commit()
				}
			case r < 14:
				sv.Commit()
			case r < 16 && !down:
				s.Reset()
				down = true
			case r < 19 && down:
				s.Wake()
				sv.CommitAll(t) // the §4 wake waits for its save; model that
				down = s.State() != core.StateUp
			}
		}
	}
}

func TestSenderNeverReusesStrictMode(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		rng := rand.New(rand.NewSource(seed * 173))
		k := uint64(1 + rng.Intn(40))
		var m store.Mem
		sv := newManualSaver(&m)
		s := mustSender(t, core.SenderConfig{K: k, Store: &m, Saver: sv, StrictHorizon: true})

		handedOut := make(map[uint64]int)
		down := false
		for step := 0; step < 3000; step++ {
			switch r := rng.Intn(20); {
			case r < 12 && !down: // send with NO pacing: commits lag freely
				seq, err := s.Next()
				if err != nil {
					continue // ErrSaveLag backpressure is allowed
				}
				if handedOut[seq]++; handedOut[seq] > 1 {
					t.Fatalf("seed %d K=%d step %d: INV1 violated: seq %d reused",
						seed, k, step, seq)
				}
			case r < 14: // commits are rare and partial
				sv.Commit()
			case r < 16 && !down:
				s.Reset()
				down = true
			case r < 19 && down:
				s.Wake()
				if rng.Intn(2) == 0 {
					sv.CommitAll(t)
				}
				down = s.State() != core.StateUp
			}
		}
	}
}

func TestReceiverNeverDuplicatesPaperMode(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		rng := rand.New(rand.NewSource(seed * 257))
		k := uint64(1 + rng.Intn(40))
		w := 1 + rng.Intn(100)

		var sm, rm store.Mem
		ssv := newManualSaver(&sm)
		rsv := newManualSaver(&rm)
		snd := mustSender(t, core.SenderConfig{K: k, Store: &sm, Saver: ssv})

		delivered := make(map[uint64]int)
		check := func(seq uint64) {
			if delivered[seq]++; delivered[seq] > 1 {
				t.Fatalf("seed %d K=%d w=%d: INV2 violated: seq %d delivered twice",
					seed, k, w, seq)
			}
		}
		rcv := mustReceiver(t, core.ReceiverConfig{
			K: k, W: w, Store: &rm, Saver: rsv,
			Drain: func(seq uint64, v core.Verdict) {
				if v.Delivered() {
					check(seq)
				}
			},
		})

		var wire []uint64
		rcvDown := false
		for step := 0; step < 3000; step++ {
			switch r := rng.Intn(20); {
			case r < 8 && !rcvDown:
				// Fresh traffic only while the receiver serves: the paper's
				// model has no loss-induced jumps across the reset.
				seq, err := snd.Next()
				if err != nil {
					continue
				}
				wire = append(wire, seq)
				if v := rcv.Admit(seq); v.Delivered() {
					check(seq)
				}
				for rsv.PendingCount() > 1 {
					rsv.Commit()
				}
				for ssv.PendingCount() > 1 {
					ssv.Commit()
				}
			case r < 12 && len(wire) > 0: // replays at any time
				seq := wire[rng.Intn(len(wire))]
				if v := rcv.Admit(seq); v.Delivered() {
					check(seq)
				}
			case r == 12:
				rsv.Commit()
				ssv.Commit()
			case r == 13 && !rcvDown:
				rcv.Reset()
				rcvDown = true
			case r < 16 && rcvDown:
				rcv.Wake()
				rsv.CommitAll(t)
				rcvDown = rcv.State() != core.StateUp
			}
		}
	}
}

func TestReceiverNeverDuplicatesStrictMode(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		rng := rand.New(rand.NewSource(seed * 389))
		k := uint64(1 + rng.Intn(40))
		w := 1 + rng.Intn(100)

		var sm, rm store.Mem
		ssv := newManualSaver(&sm)
		rsv := newManualSaver(&rm)
		snd := mustSender(t, core.SenderConfig{K: k, Store: &sm, Saver: ssv})

		delivered := make(map[uint64]int)
		check := func(seq uint64) {
			if delivered[seq]++; delivered[seq] > 1 {
				t.Fatalf("seed %d K=%d w=%d: INV2 violated: seq %d delivered twice",
					seed, k, w, seq)
			}
		}
		rcv := mustReceiver(t, core.ReceiverConfig{
			K: k, W: w, Store: &rm, Saver: rsv, StrictHorizon: true,
			Drain: func(seq uint64, v core.Verdict) {
				if v.Delivered() {
					check(seq)
				}
			},
		})

		var wire []uint64
		rcvDown := false
		for step := 0; step < 3000; step++ {
			switch r := rng.Intn(20); {
			case r < 8: // fully adversarial: traffic races ahead during downtime
				seq, err := snd.Next()
				if err != nil {
					continue
				}
				wire = append(wire, seq)
				if v := rcv.Admit(seq); v.Delivered() {
					check(seq)
				}
			case r < 12 && len(wire) > 0:
				seq := wire[rng.Intn(len(wire))]
				if v := rcv.Admit(seq); v.Delivered() {
					check(seq)
				}
			case r == 12: // commits lag freely
				rsv.Commit()
				ssv.CommitAll(t)
			case r == 13 && !rcvDown:
				rcv.Reset()
				rcvDown = true
			case r < 16 && rcvDown:
				rcv.Wake()
				if rng.Intn(2) == 0 {
					rsv.CommitAll(t)
				}
				rcvDown = rcv.State() != core.StateUp
			}
		}
	}
}
