package core_test

// Tests for the strict durable horizon — the guard this implementation adds
// beyond the paper after finding that the receiver-side Figure 2 analysis
// assumes the window edge advances at most Kq numbers per save interval.
// See README.md ("Tests and benchmarks": the analysis-gap note).

import (
	"errors"
	"testing"

	"antireplay/internal/core"
	"antireplay/internal/store"
)

// TestPaperProtocolLossJumpViolation pins the gap itself: under the paper's
// unguarded protocol, a loss-induced sequence jump whose save is torn by a
// reset lets the adversary deliver the jumped message twice. If this test
// ever fails, the faithful reproduction of the paper's behaviour changed.
func TestPaperProtocolLossJumpViolation(t *testing.T) {
	const k = 25
	var m store.Mem
	sv := newManualSaver(&m)
	r := mustReceiver(t, core.ReceiverConfig{K: k, W: 64, Store: &m, Saver: sv})

	for s := uint64(1); s <= 50; s++ {
		r.Admit(s)
	}
	sv.CommitAll(t) // durable 50

	// Loss burst: 51..999 never arrive. 1000 arrives and is delivered.
	if v := r.Admit(1000); !v.Delivered() {
		t.Fatalf("jump delivery = %v", v)
	}
	// SAVE(1000) is in flight; the reset tears it.
	r.Reset()
	r.Wake()
	sv.CommitAll(t)

	if v := r.Admit(1000); !v.Delivered() {
		t.Fatal("expected the paper's protocol to re-deliver the jumped message — " +
			"the reproduction of the analysis gap no longer holds")
	}
}

// TestStrictHorizonClosesLossJump: the same schedule with StrictHorizon
// never delivers the jumped message in the first place (it lies beyond
// committed+2K), so nothing can repeat.
func TestStrictHorizonClosesLossJump(t *testing.T) {
	const k = 25
	var m store.Mem
	sv := newManualSaver(&m)
	r := mustReceiver(t, core.ReceiverConfig{K: k, W: 64, Store: &m, Saver: sv, StrictHorizon: true})

	for s := uint64(1); s <= 50; s++ {
		r.Admit(s)
		sv.CommitAll(t)
	}

	// The jump lands beyond the durable horizon (50+2K=100): dropped.
	if v := r.Admit(1000); v != core.VerdictHorizon {
		t.Fatalf("jump verdict = %v, want horizon", v)
	}
	r.Reset()
	r.Wake()
	sv.CommitAll(t)
	// Replay of the jump: beyond the (new) horizon again, or eventually
	// delivered exactly once when saves catch up; never twice.
	first := r.Admit(1000)
	second := r.Admit(1000)
	if first.Delivered() && second.Delivered() {
		t.Fatal("SAFETY: delivered twice despite the horizon")
	}
}

// TestStrictHorizonLiveness: with commits keeping pace, the horizon never
// interferes — gap-free traffic flows exactly as in the paper's protocol.
func TestStrictHorizonLiveness(t *testing.T) {
	const k = 10
	var m store.Mem
	sv := newManualSaver(&m)
	r := mustReceiver(t, core.ReceiverConfig{K: k, W: 64, Store: &m, Saver: sv, StrictHorizon: true})
	for s := uint64(1); s <= 500; s++ {
		if v := r.Admit(s); !v.Delivered() {
			t.Fatalf("Admit(%d) = %v with commits keeping pace", s, v)
		}
		sv.CommitAll(t)
	}
}

// TestStrictHorizonRecoversAfterJumpDrop: a jump is dropped, but once saves
// catch up the stream resumes (bounded unavailability, not a deadlock).
func TestStrictHorizonRecoversAfterJumpDrop(t *testing.T) {
	const k = 10
	var m store.Mem
	sv := newManualSaver(&m)
	r := mustReceiver(t, core.ReceiverConfig{K: k, W: 256, Store: &m, Saver: sv, StrictHorizon: true})
	for s := uint64(1); s <= 30; s++ {
		r.Admit(s)
		sv.CommitAll(t)
	}
	// Jump to 90: beyond horizon 30+20=50 -> dropped. The sender retries
	// (or later traffic arrives); each delivered message below the horizon
	// advances the edge, starts saves, and extends the horizon.
	if v := r.Admit(90); v != core.VerdictHorizon {
		t.Fatalf("Admit(90) = %v, want horizon", v)
	}
	delivered := false
	for try := 0; try < 10 && !delivered; try++ {
		// In-horizon traffic keeps flowing and commits extend the horizon.
		for s := uint64(31 + try*5); s <= uint64(35+try*5); s++ {
			r.Admit(s)
			sv.CommitAll(t)
		}
		delivered = r.Admit(90).Delivered()
		sv.CommitAll(t)
	}
	if !delivered {
		t.Fatal("jump never became deliverable; horizon starved the stream")
	}
}

func TestSenderStrictHorizonBackpressure(t *testing.T) {
	const k = 5
	var m store.Mem
	sv := newManualSaver(&m)
	s := mustSender(t, core.SenderConfig{K: k, Store: &m, Saver: sv, StrictHorizon: true})

	// With no commits at all, the sender refuses past committed(1)+2K-1.
	sent := 0
	for {
		_, err := s.Next()
		if errors.Is(err, core.ErrSaveLag) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		sent++
		if sent > 3*k {
			t.Fatal("no backpressure: sender ran past the horizon")
		}
	}
	if sent != 2*k {
		t.Errorf("sent %d before backpressure, want %d (seqs 1..committed+leap-1)", sent, 2*k)
	}
	// A commit releases the backpressure.
	sv.CommitAll(t)
	if _, err := s.Next(); err != nil {
		t.Errorf("Next after commit = %v, want nil", err)
	}
	// And a reset after all this never reuses a number.
	s.Reset()
	s.Wake()
	sv.CommitAll(t)
	seq, err := s.Next()
	if err != nil {
		t.Fatal(err)
	}
	if seq <= uint64(sent)+1 {
		t.Errorf("SAFETY: resumed at %d, at or below used numbers", seq)
	}
}

func TestVerdictHorizonString(t *testing.T) {
	if got := core.VerdictHorizon.String(); got != "horizon" {
		t.Errorf("String = %q, want horizon", got)
	}
	if core.VerdictHorizon.Delivered() {
		t.Error("horizon verdict must not deliver")
	}
}
