// Package core implements the paper's contribution: the anti-replay window
// protocol augmented with SAVE and FETCH (§4), plus the unaugmented baseline
// protocol (§2) for comparison.
//
// A Sender numbers outgoing messages and, every K messages, starts a
// background SAVE of its counter. A Receiver admits sequence numbers through
// an anti-replay window and, every K window advances, SAVEs the window's
// right edge. After a reset, an endpoint FETCHes the last durable value,
// adds a leap of 2K (covering the at-most-2K gap a torn background save can
// leave, Figures 1–2), synchronously SAVEs the leaped value, and only then
// resumes — the receiver buffering any messages that arrive during that
// final save (§4, "second consideration").
//
// Both endpoints are safe for concurrent use and are driven either by the
// deterministic simulator (netsim.SimSaver, virtual time) or by real
// goroutines (store.AsyncSaver, wall clock).
package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"antireplay/internal/store"
)

// Sentinel errors.
var (
	// ErrDown reports an operation on an endpoint that has been reset and
	// has not woken up.
	ErrDown = errors.New("core: endpoint is down")
	// ErrWaking reports a send attempted while the post-wake SAVE is still
	// running; the paper requires the sender to wait for it.
	ErrWaking = errors.New("core: endpoint is waking up")
	// ErrNoSavedState reports a FETCH that found no durable value; the
	// endpoint cannot resume safely and stays down.
	ErrNoSavedState = errors.New("core: no saved sequence state to fetch")
	// ErrSaveLag reports a send refused by the strict durable horizon: the
	// next sequence number would exceed committed+leap, so handing it out
	// before a save commits could let a later reset reuse it. Back off and
	// retry; persistent ErrSaveLag means K is undersized for the medium
	// (see SizeK).
	ErrSaveLag = errors.New("core: durable horizon reached, save still in flight")
	// ErrConfig reports an invalid endpoint configuration.
	ErrConfig = errors.New("core: invalid configuration")
)

// State is the lifecycle state of an endpoint.
type State uint8

// Endpoint states.
const (
	// StateUp means the endpoint is in normal operation.
	StateUp State = iota + 1
	// StateDown means the endpoint has been reset and not yet woken.
	StateDown
	// StateWaking means the endpoint has fetched and leaped its sequence
	// state and is waiting for the post-wake SAVE to complete.
	StateWaking
)

// String returns the lower-case state name.
func (s State) String() string {
	switch s {
	case StateUp:
		return "up"
	case StateDown:
		return "down"
	case StateWaking:
		return "waking"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// BackgroundSaver starts asynchronous SAVE operations, mirroring the paper's
// "& SAVE(s) executed in background". done (possibly nil) must be invoked
// exactly once with the save's result, unless the saver is canceled by a
// reset first. netsim.SimSaver implements this over virtual time and
// store.AsyncSaver over goroutines; SyncSaver degenerates to an immediate
// synchronous save.
type BackgroundSaver interface {
	StartSave(v uint64, done func(error))
}

// Canceler is optionally implemented by savers whose in-flight saves a reset
// must discard (a real crash destroys the write in transit).
type Canceler interface {
	Cancel()
}

// SyncSaver is a BackgroundSaver that saves synchronously: StartSave
// returns only after the value is durable and done has run.
type SyncSaver struct {
	Store store.Store
}

var _ BackgroundSaver = SyncSaver{}

// StartSave saves v and then invokes done with the result.
func (s SyncSaver) StartSave(v uint64, done func(error)) {
	err := s.Store.Save(v)
	if done != nil {
		done(err)
	}
}

// Leap computes the sequence-number leap added to a fetched value on
// wake-up: ceil(factor*k). The paper proves factor 2 is sufficient (the gap
// between the value a FETCH returns and the last sequence number used before
// the reset is at most 2K) and the leap-ablation experiment shows it is also
// necessary. DefaultLeapFactor is the paper's choice.
func Leap(k uint64, factor float64) uint64 {
	if factor <= 0 || k == 0 {
		return 0
	}
	return uint64(math.Ceil(factor * float64(k)))
}

// DefaultLeapFactor is the paper's leap multiplier: leap = 2K.
const DefaultLeapFactor = 2.0

// SizeK applies the paper's §4 sizing rule: the SAVE interval must be at
// least the number of messages that can be sent (or received) during one
// SAVE, K = ceil(tSave/tSend), floored at 1. The rule is load-bearing for
// the 2K bound: if more than K messages flow while a save is in flight, the
// durable value can lag the live counter by more than 2K and the wake-up
// leap no longer covers the gap. (Paper example: 100µs write, 4µs send,
// K = 25.)
func SizeK(tSave, tSend time.Duration) uint64 {
	if tSend <= 0 || tSave <= 0 {
		return 1
	}
	k := uint64(math.Ceil(float64(tSave) / float64(tSend)))
	if k == 0 {
		k = 1
	}
	return k
}

// nowFunc supplies trace timestamps; a nil function means zero timestamps.
type nowFunc func() time.Duration

func clockOrZero(f func() time.Duration) nowFunc {
	if f == nil {
		return func() time.Duration { return 0 }
	}
	return f
}
