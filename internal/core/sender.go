package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"antireplay/internal/store"
	"antireplay/internal/trace"
)

// SenderConfig configures a Sender.
type SenderConfig struct {
	// K is the paper's Kp: a background SAVE starts whenever the counter
	// has advanced K past the last value handed to a SAVE. Required (>= 1)
	// unless Baseline is set.
	K uint64
	// LeapFactor scales the post-wake leap: leap = ceil(LeapFactor*K).
	// Zero means DefaultLeapFactor (the paper's 2). Negative values disable
	// the leap entirely (ablation only; unsafe).
	LeapFactor float64
	// Store is the durable cell holding the saved counter. Required unless
	// Baseline is set.
	Store store.Store
	// Saver executes background SAVEs. Nil means synchronous saves through
	// Store (SyncSaver).
	Saver BackgroundSaver
	// Baseline selects the §2 protocol: no SAVE/FETCH, and a wake-up
	// restarts the counter at 1 — the configuration whose failure modes §3
	// demonstrates.
	Baseline bool
	// AblationSkipPostWakeSave resumes immediately after FETCH+leap without
	// waiting for the synchronous post-wake SAVE, dropping the paper's §4
	// "second consideration" protection. UNSAFE — a second reset before the
	// next save then reuses sequence numbers. For ablation experiments only.
	AblationSkipPostWakeSave bool
	// StrictHorizon enforces the invariant "every handed-out sequence
	// number < committed+leap" by refusing sends (ErrSaveLag) once the
	// counter reaches the durable horizon. This strengthens the paper:
	// the no-reuse guarantee then holds even when K is undersized for the
	// medium — the failure mode becomes bounded backpressure instead of
	// silent sequence reuse. With K sized per §4 (SizeK) the horizon is
	// never hit and behaviour is identical to the paper's protocol.
	StrictHorizon bool
	// Trace receives protocol events; nil discards them.
	Trace *trace.Collector
	// Name labels trace events (e.g. "p").
	Name string
	// Clock supplies trace timestamps; nil means zero timestamps.
	Clock func() time.Duration
}

func (c SenderConfig) leapFactor() float64 {
	if c.LeapFactor == 0 {
		return DefaultLeapFactor
	}
	return c.LeapFactor
}

// Validate reports configuration errors.
func (c SenderConfig) Validate() error {
	if c.Baseline {
		return nil
	}
	if c.K == 0 {
		return fmt.Errorf("%w: K must be >= 1", ErrConfig)
	}
	if c.Store == nil {
		return fmt.Errorf("%w: Store is required", ErrConfig)
	}
	return nil
}

// Sender is the paper's process p: it hands out increasing sequence numbers
// and maintains the durable counter through SAVE/FETCH. Safe for concurrent
// use.
type Sender struct {
	cfg   SenderConfig
	saver BackgroundSaver
	now   nowFunc

	mu        sync.Mutex
	s         uint64 // next sequence number to hand out (paper: s)
	committed uint64 // last value known durable

	// lst is the last value actually handed to a SAVE (paper: lst),
	// written by startSave under saveMu (and by wake/failure handling
	// under mu); atomic so both lock domains can read it.
	lst     atomic.Uint64
	state   State
	gen     uint64 // bumped by Reset; stales in-flight callbacks
	wakeErr error

	saveMu  sync.Mutex // orders saver invocations; see Receiver.startSave
	saveGen uint64     // mirrors gen for startSave's torn-save check

	sent        uint64
	savesStart  atomic.Uint64
	savesOK     uint64
	savesFailed uint64
	resets      uint64
}

// NewSender validates cfg and returns a ready sender. For a resilient
// sender whose store is empty, the initial counter (1) is saved
// synchronously, making the first post-reset FETCH well defined — the
// paper's lst "initially 1".
func NewSender(cfg SenderConfig) (*Sender, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	x := &Sender{
		cfg:   cfg,
		saver: cfg.Saver,
		now:   clockOrZero(cfg.Clock),
		s:     1,
		state: StateUp,
	}
	x.lst.Store(1)
	if !cfg.Baseline {
		if x.saver == nil {
			x.saver = SyncSaver{Store: cfg.Store}
		}
		if _, ok, err := cfg.Store.Fetch(); err != nil {
			return nil, fmt.Errorf("core: probing sender store: %w", err)
		} else if !ok {
			if err := cfg.Store.Save(1); err != nil {
				return nil, fmt.Errorf("core: initializing sender store: %w", err)
			}
		}
		x.committed = 1
	}
	return x, nil
}

// startSave hands v to the background saver; see Receiver.startSave for
// the full rationale. The bookkeeping that must be consistent with the
// hand-off — lst (which doubles as the dedup watermark), the
// saves-started counter, the trace event — happens here: triggered saves
// are invoked after x.mu is released, so with concurrent Next/NextN
// callers a trigger-time lst update would let the counter outrun the
// durable value by up to C*K, and out-of-order or post-reset straggler
// invocations would regress the medium — both paths to sequence reuse
// after a reset, the exact failure the protocol exists to prevent. force
// bypasses the dedup for the post-wake save (the previous life's larger
// lst is still visible). Deduplicated and torn (generation-stale) saves
// are dropped without calling done.
func (x *Sender) startSave(gen, v uint64, force bool, done func(v uint64, err error)) {
	x.saveMu.Lock()
	defer x.saveMu.Unlock()
	if gen != x.saveGen {
		return // a reset intervened; the write never reaches the medium
	}
	if !force && v <= x.lst.Load() {
		return // an at-least-as-fresh save is already on its way
	}
	x.lst.Store(v)
	x.savesStart.Add(1)
	x.cfg.Trace.Record(trace.Event{At: x.now(), Kind: trace.KindSaveStart, Node: x.cfg.Name, Seq: v})
	x.saver.StartSave(v, func(err error) { done(v, err) })
}

// Next returns the sequence number for the next outgoing message,
// implementing the paper's first action of process p: emit s, increment,
// and start a background SAVE once the counter has advanced K past lst.
// It returns ErrDown or ErrWaking while the endpoint cannot send. Next is
// the burst-of-one case of NextN; the reserve/trigger critical section
// lives only there.
func (x *Sender) Next() (uint64, error) {
	seq, _, err := x.NextN(1)
	return seq, err
}

// NextN reserves up to n consecutive sequence numbers in one lock
// acquisition — the burst analogue of Next, used by the batched seal path
// to amortize the sender mutex and the SAVE-trigger check across a whole
// packet burst. It returns the first reserved number and how many were
// granted. Under StrictHorizon the grant is truncated to the numbers below
// the durable horizon: count may be less than n, and a zero grant returns
// ErrSaveLag exactly as Next would. At most one background SAVE is started
// per call, no matter how many save intervals the burst crosses.
func (x *Sender) NextN(n int) (first uint64, count int, err error) {
	if n <= 0 {
		return 0, 0, nil
	}
	x.mu.Lock()
	switch x.state {
	case StateDown:
		x.mu.Unlock()
		return 0, 0, ErrDown
	case StateWaking:
		x.mu.Unlock()
		return 0, 0, ErrWaking
	}
	grant := uint64(n)
	if x.cfg.StrictHorizon && !x.cfg.Baseline {
		horizon := x.committed + Leap(x.cfg.K, x.cfg.leapFactor())
		if x.s >= horizon {
			x.mu.Unlock()
			return 0, 0, ErrSaveLag
		}
		if avail := horizon - x.s; grant > avail {
			grant = avail
		}
	}
	first = x.s
	x.s += grant
	x.sent += grant
	var (
		saveVal uint64
		gen     uint64
		doSave  bool
	)
	if !x.cfg.Baseline && x.s >= x.cfg.K+x.lst.Load() {
		saveVal, gen, doSave = x.s, x.gen, true
	}
	x.mu.Unlock()

	if x.cfg.Trace != nil {
		for i := uint64(0); i < grant; i++ {
			x.cfg.Trace.Record(trace.Event{At: x.now(), Kind: trace.KindSend, Node: x.cfg.Name, Seq: first + i})
		}
	}
	if doSave {
		x.startSave(gen, saveVal, false, func(v uint64, err error) { x.saveDone(gen, v, err) })
	}
	return first, int(grant), nil
}

// Reset crashes the sender: all volatile state is considered lost and any
// in-flight save is discarded (the write never reached the medium).
func (x *Sender) Reset() {
	x.mu.Lock()
	x.state = StateDown
	x.gen++
	gen := x.gen
	x.resets++
	x.wakeErr = nil
	x.mu.Unlock()

	// Saves triggered in the old life are torn: startSave drops them via
	// the generation check (the crash destroyed the write in transit).
	x.saveMu.Lock()
	x.saveGen = gen
	x.saveMu.Unlock()

	if c, ok := x.saver.(Canceler); ok {
		c.Cancel()
	}
	x.cfg.Trace.Record(trace.Event{At: x.now(), Kind: trace.KindReset, Node: x.cfg.Name})
}

// Wake boots the sender after a reset, implementing the paper's third
// action: FETCH(s); SAVE(s+2Kp); s := s+2Kp; only when that SAVE completes
// does the sender leave the waiting state. Wake on an endpoint that is not
// down is a no-op. A failed FETCH or SAVE leaves the endpoint down with the
// error available from LastWakeError.
func (x *Sender) Wake() {
	x.mu.Lock()
	if x.state != StateDown {
		x.mu.Unlock()
		return
	}
	if x.cfg.Baseline {
		// §3: the reset sender restarts its counter at 1.
		x.s = 1
		x.lst.Store(1)
		x.state = StateUp
		x.mu.Unlock()
		x.cfg.Trace.Record(trace.Event{At: x.now(), Kind: trace.KindWake, Node: x.cfg.Name, Seq: 1})
		x.cfg.Trace.Record(trace.Event{At: x.now(), Kind: trace.KindWakeDone, Node: x.cfg.Name, Seq: 1})
		return
	}
	x.state = StateWaking
	gen := x.gen
	x.mu.Unlock()

	x.cfg.Trace.Record(trace.Event{At: x.now(), Kind: trace.KindWake, Node: x.cfg.Name})

	v, ok, err := x.cfg.Store.Fetch()
	if err == nil && !ok {
		err = ErrNoSavedState
	}
	x.cfg.Trace.Record(trace.Event{At: x.now(), Kind: trace.KindFetch, Node: x.cfg.Name, Seq: v})
	if err != nil {
		x.failWake(gen, fmt.Errorf("core: sender wake fetch: %w", err))
		return
	}
	leaped := v + Leap(x.cfg.K, x.cfg.leapFactor())
	if x.cfg.AblationSkipPostWakeSave {
		// UNSAFE ablation: resume without the durable leap record; a save is
		// still started in the background, mimicking the naive fix.
		x.startSave(gen, leaped, true, func(v uint64, err error) { x.saveDone(gen, v, err) })
		x.finishWake(gen, leaped, nil)
		return
	}
	x.startSave(gen, leaped, true, func(v uint64, err error) { x.finishWake(gen, v, err) })
}

func (x *Sender) failWake(gen uint64, err error) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.gen != gen {
		return
	}
	x.state = StateDown
	x.wakeErr = err
}

func (x *Sender) finishWake(gen, leaped uint64, err error) {
	x.mu.Lock()
	if x.gen != gen {
		x.mu.Unlock()
		return
	}
	if err != nil {
		x.state = StateDown
		x.wakeErr = fmt.Errorf("core: sender post-wake save: %w", err)
		x.mu.Unlock()
		x.cfg.Trace.Record(trace.Event{At: x.now(), Kind: trace.KindSaveError, Node: x.cfg.Name, Seq: leaped})
		return
	}
	x.s = leaped
	x.lst.Store(leaped)
	x.committed = leaped
	x.state = StateUp
	x.mu.Unlock()
	x.cfg.Trace.Record(trace.Event{At: x.now(), Kind: trace.KindSaveDone, Node: x.cfg.Name, Seq: leaped})
	x.cfg.Trace.Record(trace.Event{At: x.now(), Kind: trace.KindWakeDone, Node: x.cfg.Name, Seq: leaped})
}

// saveDone finalizes a background SAVE started by Next.
func (x *Sender) saveDone(gen, v uint64, err error) {
	x.mu.Lock()
	if x.gen != gen {
		x.mu.Unlock()
		return // a reset intervened; the save was torn
	}
	if err != nil {
		x.savesFailed++
		// Roll lst back so the next send retries the save (lst doubles as
		// startSave's dedup watermark), unless a newer save has been handed
		// out meanwhile. CAS, not load-then-store: startSave updates the
		// watermark under saveMu, not x.mu, and the rollback must not
		// regress lst below a value it has already handed to the saver.
		x.lst.CompareAndSwap(v, x.committed)
		x.mu.Unlock()
		x.cfg.Trace.Record(trace.Event{At: x.now(), Kind: trace.KindSaveError, Node: x.cfg.Name, Seq: v})
		return
	}
	x.savesOK++
	if v > x.committed {
		x.committed = v
	}
	x.mu.Unlock()
	x.cfg.Trace.Record(trace.Event{At: x.now(), Kind: trace.KindSaveDone, Node: x.cfg.Name, Seq: v})
}

// Seq returns the next sequence number to be handed out (paper: s).
func (x *Sender) Seq() uint64 {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.s
}

// LastStored returns the last value handed to a SAVE (paper: lst).
func (x *Sender) LastStored() uint64 { return x.lst.Load() }

// Committed returns the last value known durable — the floor under the
// sender's horizon. Unlike LastStored (optimistic: handed to a save, not
// necessarily acknowledged) this only grows on completed SAVEs and on the
// wake-up leap, so it is the regression witness disk-fault experiments
// compare across reopen.
func (x *Sender) Committed() uint64 {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.committed
}

// State returns the lifecycle state.
func (x *Sender) State() State {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.state
}

// LastWakeError returns the error that kept the last Wake from completing,
// if any.
func (x *Sender) LastWakeError() error {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.wakeErr
}

// SenderStats is a snapshot of sender counters.
type SenderStats struct {
	Sent         uint64
	SavesStarted uint64
	SavesOK      uint64
	SavesFailed  uint64
	Resets       uint64
}

// Stats returns a snapshot of the sender's counters.
func (x *Sender) Stats() SenderStats {
	x.mu.Lock()
	defer x.mu.Unlock()
	return SenderStats{
		Sent:         x.sent,
		SavesStarted: x.savesStart.Load(),
		SavesOK:      x.savesOK,
		SavesFailed:  x.savesFailed,
		Resets:       x.resets,
	}
}
