package core

import (
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"antireplay/internal/store"
)

func newFastReceiver(t *testing.T, cfg ReceiverConfig) (*Receiver, *store.Mem) {
	t.Helper()
	var m store.Mem
	cfg.Store = &m
	cfg.Concurrent = true
	r, err := NewReceiver(cfg)
	if err != nil {
		t.Fatalf("NewReceiver: %v", err)
	}
	if r.fastWin.Load() == nil {
		t.Fatal("Concurrent config did not enable the fast path")
	}
	return r, &m
}

// TestFastPathDifferential drives the same serial stream through a mutex
// (Bitmap) receiver and a fast-path (Atomic) receiver, including resets and
// wakes, and requires identical verdict sequences and saved values.
func TestFastPathDifferential(t *testing.T) {
	var mMutex, mFast store.Mem
	mutexR, err := NewReceiver(ReceiverConfig{K: 10, W: 64, Store: &mMutex})
	if err != nil {
		t.Fatalf("NewReceiver(mutex): %v", err)
	}
	fastR, err := NewReceiver(ReceiverConfig{K: 10, W: 64, Store: &mFast, Concurrent: true})
	if err != nil {
		t.Fatalf("NewReceiver(fast): %v", err)
	}

	rng := rand.New(rand.NewSource(42))
	base := uint64(1)
	for i := 0; i < 20000; i++ {
		if rng.Intn(2000) == 0 {
			mutexR.Reset()
			fastR.Reset()
			mutexR.Wake()
			fastR.Wake()
			continue
		}
		var s uint64
		switch rng.Intn(10) {
		case 0:
			s = base + uint64(rng.Intn(200))
		case 1:
			d := uint64(rng.Intn(100))
			if d >= base {
				s = 1
			} else {
				s = base - d
			}
		default:
			s = base + uint64(rng.Intn(4))
		}
		if s > base {
			base = s
		}
		vm, vf := mutexR.Admit(s), fastR.Admit(s)
		if vm != vf {
			t.Fatalf("step %d: Admit(%d): mutex=%v fast=%v", i, s, vm, vf)
		}
		if me, fe := mutexR.Edge(), fastR.Edge(); me != fe {
			t.Fatalf("step %d: edge: mutex=%d fast=%d", i, me, fe)
		}
	}
	sm, sf := mutexR.Stats(), fastR.Stats()
	if sm.Delivered != sf.Delivered || sm.Discarded != sf.Discarded {
		t.Errorf("stats diverged: mutex=%+v fast=%+v", sm, sf)
	}
	vm, _ := mMutex.Peek()
	vf, _ := mFast.Peek()
	if vm != vf {
		t.Errorf("saved edge diverged: mutex=%d fast=%d", vm, vf)
	}
}

// TestFastPathConcurrentExactlyOnce hammers the fast path from many
// goroutines while resets and wakes fire concurrently; no sequence number
// may ever be delivered twice across the whole history. Run with -race.
func TestFastPathConcurrentExactlyOnce(t *testing.T) {
	const (
		goroutines = 8
		perG       = 10000
		span       = 64 * goroutines * perG
	)
	r, _ := newFastReceiver(t, ReceiverConfig{K: 50, W: 256})

	var delivered sync.Map // seq -> struct{}
	var next atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)*17 + 1))
			for i := 0; i < perG; i++ {
				s := next.Add(1)
				if rng.Intn(4) == 0 { // replay something recent
					d := uint64(rng.Intn(300) + 1)
					if d < s {
						s -= d
					}
				}
				if s > span {
					s = span
				}
				if r.Admit(s).Delivered() {
					if _, dup := delivered.LoadOrStore(s, struct{}{}); dup {
						t.Errorf("sequence %d delivered twice", s)
						return
					}
				}
			}
		}(g)
	}
	// One goroutine cycles reset/wake under load: the fast path must hand
	// off cleanly at every lifecycle transition. The cycle count is bounded
	// and yields between cycles so admitters keep making progress.
	stop := make(chan struct{})
	var cycles sync.WaitGroup
	cycles.Add(1)
	go func() {
		defer cycles.Done()
		for i := 0; i < 200; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r.Reset()
			r.Wake()
			for y := 0; y < 50; y++ {
				runtime.Gosched()
			}
		}
	}()
	wg.Wait()
	close(stop)
	cycles.Wait()

	// After a wake the window re-admits nothing it delivered before: replay
	// the entire delivered set and require zero deliveries.
	r.Reset()
	r.Wake()
	delivered.Range(func(k, _ any) bool {
		if v := r.Admit(k.(uint64)); v.Delivered() {
			t.Errorf("post-wake replay of %d delivered (verdict %v)", k.(uint64), v)
			return false
		}
		return true
	})
}

// TestFastPathStrictHorizon verifies the fast path never delivers at or
// beyond committed+leap: horizon messages fall back to the slow path and
// come back VerdictHorizon, exactly as the mutex path decides.
func TestFastPathStrictHorizon(t *testing.T) {
	block := make(chan struct{})
	var m store.Mem
	saver := &gatedSaver{inner: SyncSaver{Store: &m}, gate: block}
	r, err := NewReceiver(ReceiverConfig{
		K: 10, W: 64, Store: &m, Saver: saver,
		StrictHorizon: true, Concurrent: true,
	})
	if err != nil {
		t.Fatalf("NewReceiver: %v", err)
	}
	// committed = 0, leap = 2K = 20: numbers below 20 deliver, 20+ discard.
	for s := uint64(1); s < 20; s++ {
		if v := r.Admit(s); !v.Delivered() {
			t.Fatalf("Admit(%d) = %v below horizon, want delivery", s, v)
		}
	}
	if v := r.Admit(20); v != VerdictHorizon {
		t.Fatalf("Admit(20) = %v at horizon with saves blocked, want horizon", v)
	}
	close(block) // let the queued saves land
	saver.wait()
	// committed advanced; the stream resumes.
	if v := r.Admit(21); !v.Delivered() {
		t.Errorf("Admit(21) after save landed = %v, want delivery", v)
	}
}

// gatedSaver delays every save until the gate closes, then saves
// synchronously; it makes horizon scenarios deterministic.
type gatedSaver struct {
	inner SyncSaver
	gate  <-chan struct{}
	wg    sync.WaitGroup
}

func (g *gatedSaver) StartSave(v uint64, done func(error)) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		<-g.gate
		g.inner.StartSave(v, done)
	}()
}

func (g *gatedSaver) wait() { g.wg.Wait() }

// TestFastPathTriggersSaves checks the "edge advanced >= K" SAVE trigger
// still fires from the fast path: a long in-order stream must keep lst
// within K of the edge and actually persist values.
func TestFastPathTriggersSaves(t *testing.T) {
	r, m := newFastReceiver(t, ReceiverConfig{K: 25, W: 64})
	for s := uint64(1); s <= 1000; s++ {
		r.Admit(s)
	}
	if got := r.LastStored(); got < 1000-25 {
		t.Errorf("lst = %d after 1000 in-order admits with K=25, want >= %d", got, 1000-25)
	}
	if v, ok := m.Peek(); !ok || v < 1000-25 {
		t.Errorf("persisted edge = %d (ok=%v), want >= %d", v, ok, 1000-25)
	}
	st := r.Stats()
	if st.SavesStarted < 30 {
		t.Errorf("SavesStarted = %d, want roughly 1000/25 = 40", st.SavesStarted)
	}
}

// TestFastPathConcurrentSaves runs the fast path with background-style
// saves under -race, then resets and wakes: the recovered edge must leap
// past everything delivered, so no pre-reset number is re-accepted.
func TestFastPathConcurrentSaves(t *testing.T) {
	const goroutines = 4
	r, _ := newFastReceiver(t, ReceiverConfig{K: 20, W: 128})
	var next atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				r.Admit(next.Add(1))
			}
		}()
	}
	wg.Wait()
	high := next.Load()
	r.Reset()
	r.Wake()
	if r.State() != StateUp {
		t.Fatalf("receiver not up after wake: %v", r.LastWakeError())
	}
	if edge := r.Edge(); edge < high {
		// lst trails the live edge by at most K=20 and the wake adds 2K=40,
		// so the recovered edge can never fall below the pre-reset edge.
		t.Errorf("post-wake edge %d below pre-reset edge %d", edge, high)
	}
	for s := uint64(1); s <= high; s += 97 {
		if v := r.Admit(s); v.Delivered() {
			t.Errorf("pre-reset number %d re-delivered after wake (verdict %v)", s, v)
		}
	}
}

func TestNextNBatchedReservation(t *testing.T) {
	var m store.Mem
	x, err := NewSender(SenderConfig{K: 25, Store: &m})
	if err != nil {
		t.Fatalf("NewSender: %v", err)
	}
	first, n, err := x.NextN(10)
	if err != nil || first != 1 || n != 10 {
		t.Fatalf("NextN(10) = (%d, %d, %v), want (1, 10, nil)", first, n, err)
	}
	seq, err := x.Next()
	if err != nil || seq != 11 {
		t.Fatalf("Next after NextN = (%d, %v), want (11, nil)", seq, err)
	}
	if first, n, err = x.NextN(0); first != 0 || n != 0 || err != nil {
		t.Errorf("NextN(0) = (%d, %d, %v), want (0, 0, nil)", first, n, err)
	}
	st := x.Stats()
	if st.Sent != 11 {
		t.Errorf("Sent = %d, want 11", st.Sent)
	}
}

func TestNextNHorizonTruncates(t *testing.T) {
	block := make(chan struct{})
	var m store.Mem
	saver := &gatedSaver{inner: SyncSaver{Store: &m}, gate: block}
	x, err := NewSender(SenderConfig{K: 10, Store: &m, Saver: saver, StrictHorizon: true})
	if err != nil {
		t.Fatalf("NewSender: %v", err)
	}
	// committed = 1, leap = 20: horizon is 21, so 20 numbers are available.
	first, n, err := x.NextN(100)
	if err != nil || first != 1 || n != 20 {
		t.Fatalf("NextN(100) = (%d, %d, %v), want truncation to (1, 20, nil)", first, n, err)
	}
	if _, _, err = x.NextN(5); err != ErrSaveLag {
		t.Fatalf("NextN at horizon = %v, want ErrSaveLag", err)
	}
	close(block)
	saver.wait()
	if _, n, err = x.NextN(5); err != nil || n != 5 {
		t.Errorf("NextN after save landed = (n=%d, %v), want full grant", n, err)
	}
}

func TestNextNDownAndWaking(t *testing.T) {
	var m store.Mem
	x, err := NewSender(SenderConfig{K: 5, Store: &m})
	if err != nil {
		t.Fatalf("NewSender: %v", err)
	}
	x.Reset()
	if _, _, err := x.NextN(3); err != ErrDown {
		t.Errorf("NextN while down = %v, want ErrDown", err)
	}
	x.Wake()
	if _, n, err := x.NextN(3); err != nil || n != 3 {
		t.Errorf("NextN after wake = (n=%d, %v), want full grant", n, err)
	}
}

// failOnceSaver fails the first StartSave and saves synchronously after.
type failOnceSaver struct {
	inner  SyncSaver
	failed atomic.Bool
}

func (f *failOnceSaver) StartSave(v uint64, done func(error)) {
	if !f.failed.Swap(true) {
		done(errFlaky)
		return
	}
	f.inner.StartSave(v, done)
}

var errFlaky = errors.New("flaky medium")

// TestFailedSaveRetriesSameValue pins the saveHi rollback in saveDone: after
// a failed horizon-extension save, a retransmission re-triggering the SAME
// save value must be handed to the saver again — not deduplicated as
// "already on its way" — or the horizon never extends and the stream wedges.
func TestFailedSaveRetriesSameValue(t *testing.T) {
	var m store.Mem
	saver := &failOnceSaver{inner: SyncSaver{Store: &m}}
	r, err := NewReceiver(ReceiverConfig{
		K: 10, W: 64, Store: &m, Saver: saver, StrictHorizon: true, Concurrent: true,
	})
	if err != nil {
		t.Fatalf("NewReceiver: %v", err)
	}
	// Horizon = committed(0) + 2K(20): 25 lands beyond it, triggering the
	// horizon-extension save, which fails once.
	if v := r.Admit(25); v != VerdictHorizon {
		t.Fatalf("Admit(25) = %v, want horizon", v)
	}
	// The retransmission must re-trigger the same save; with the dedup
	// watermark stuck this second save would be dropped and 25 discarded
	// forever.
	if v := r.Admit(25); v != VerdictHorizon {
		t.Fatalf("retransmitted Admit(25) = %v, want horizon (save retried in background)", v)
	}
	if v := r.Admit(25); !v.Delivered() {
		t.Fatalf("Admit(25) after retried save landed = %v, want delivery", v)
	}
	if st := r.Stats(); st.SavesFailed != 1 || st.SavesOK == 0 {
		t.Errorf("stats = %+v, want exactly one failed and at least one ok save", st)
	}
}
