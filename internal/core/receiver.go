package core

import (
	"fmt"
	"sync"
	"time"

	"antireplay/internal/seqwin"
	"antireplay/internal/store"
	"antireplay/internal/trace"
)

// Verdict is the receiver's outcome for one observed message.
type Verdict uint8

// Verdict values.
const (
	// VerdictNew delivers a message beyond the window's right edge.
	VerdictNew Verdict = iota + 1
	// VerdictInWindow delivers an unseen message inside the window.
	VerdictInWindow
	// VerdictDuplicate discards a message already marked in the window.
	VerdictDuplicate
	// VerdictStale discards a message below the window.
	VerdictStale
	// VerdictBuffered defers a message that arrived during the post-wake
	// SAVE; its final verdict is reported through the Drain callback.
	VerdictBuffered
	// VerdictOverflow discards a message because the post-wake buffer was
	// full.
	VerdictOverflow
	// VerdictDown discards a message that arrived while the machine was off.
	VerdictDown
	// VerdictHorizon discards a message whose sequence number lies at or
	// beyond the strict durable horizon (committed+leap): delivering it
	// before the in-flight save commits could let a later reset accept its
	// replay. Only produced with ReceiverConfig.StrictHorizon.
	VerdictHorizon
)

// Delivered reports whether the verdict delivers the message to the
// application.
func (v Verdict) Delivered() bool { return v == VerdictNew || v == VerdictInWindow }

// String returns the lower-case verdict name.
func (v Verdict) String() string {
	switch v {
	case VerdictNew:
		return "new"
	case VerdictInWindow:
		return "in-window"
	case VerdictDuplicate:
		return "duplicate"
	case VerdictStale:
		return "stale"
	case VerdictBuffered:
		return "buffered"
	case VerdictOverflow:
		return "overflow"
	case VerdictDown:
		return "down"
	case VerdictHorizon:
		return "horizon"
	default:
		return fmt.Sprintf("verdict(%d)", uint8(v))
	}
}

func verdictOf(d seqwin.Decision) Verdict {
	switch d {
	case seqwin.DecisionNew:
		return VerdictNew
	case seqwin.DecisionInWindow:
		return VerdictInWindow
	case seqwin.DecisionDuplicate:
		return VerdictDuplicate
	default:
		return VerdictStale
	}
}

// DefaultWakeBuffer is the default capacity of the post-wake message buffer.
const DefaultWakeBuffer = 1024

// ReceiverConfig configures a Receiver.
type ReceiverConfig struct {
	// K is the paper's Kq: a background SAVE of the window edge starts
	// whenever the edge has advanced K past the last saved value.
	// Required (>= 1) unless Baseline is set.
	K uint64
	// LeapFactor scales the post-wake leap; zero means the paper's 2.
	// Negative disables the leap (ablation only; unsafe).
	LeapFactor float64
	// W is the anti-replay window width used when Window is nil
	// (a seqwin.Bitmap is created). Defaults to 64.
	W int
	// Window overrides the window implementation.
	Window seqwin.Window
	// Store is the durable cell holding the saved edge. Required unless
	// Baseline is set.
	Store store.Store
	// Saver executes background SAVEs; nil means synchronous saves.
	Saver BackgroundSaver
	// Baseline selects the §2 protocol: no SAVE/FETCH; a wake-up restarts
	// with edge 0 and a cleared window (§3).
	Baseline bool
	// AblationSkipPostWakeSave resumes immediately after FETCH+leap without
	// waiting for the synchronous post-wake SAVE, dropping the paper's §4
	// "second consideration" protection. UNSAFE — a second reset before the
	// next save then re-accepts replayed traffic. For ablation experiments
	// only.
	AblationSkipPostWakeSave bool
	// StrictHorizon enforces the invariant "every delivered sequence
	// number < committed+leap" by discarding (VerdictHorizon) messages at
	// or beyond the durable horizon. This closes a gap in the paper's
	// receiver-side analysis: its Figure 2 bound assumes the window edge
	// advances at most Kq sequence numbers per save interval, which a
	// loss-induced jump violates — two resets around such a jump let the
	// paper's protocol deliver a message twice. With the guard the
	// no-duplicate-delivery theorem holds unconditionally, at the cost of
	// bounded drops while saves catch up to a jump.
	StrictHorizon bool
	// WakeBuffer caps the messages buffered during the post-wake SAVE;
	// zero means DefaultWakeBuffer.
	WakeBuffer int
	// Drain receives the deferred verdict of each buffered message after
	// the post-wake SAVE completes, in arrival order. Nil discards them
	// (they are still counted in Stats and Trace).
	Drain func(seq uint64, v Verdict)
	// Trace receives protocol events; nil discards them.
	Trace *trace.Collector
	// Name labels trace events (e.g. "q").
	Name string
	// Clock supplies trace timestamps; nil means zero timestamps.
	Clock func() time.Duration
}

func (c ReceiverConfig) leapFactor() float64 {
	if c.LeapFactor == 0 {
		return DefaultLeapFactor
	}
	return c.LeapFactor
}

// Validate reports configuration errors.
func (c ReceiverConfig) Validate() error {
	if c.W < 0 {
		return fmt.Errorf("%w: W must be >= 0", ErrConfig)
	}
	if c.WakeBuffer < 0 {
		return fmt.Errorf("%w: WakeBuffer must be >= 0", ErrConfig)
	}
	if c.Baseline {
		return nil
	}
	if c.K == 0 {
		return fmt.Errorf("%w: K must be >= 1", ErrConfig)
	}
	if c.Store == nil {
		return fmt.Errorf("%w: Store is required", ErrConfig)
	}
	return nil
}

// Receiver is the paper's process q: an anti-replay window with SAVE/FETCH
// persistence of the right edge. Safe for concurrent use.
type Receiver struct {
	cfg   ReceiverConfig
	saver BackgroundSaver
	now   nowFunc

	mu        sync.Mutex
	win       seqwin.Window
	lst       uint64 // last edge value handed to a SAVE (paper: lst)
	committed uint64 // last edge value known durable
	state     State
	gen       uint64
	wakeErr   error
	buffer    []uint64 // messages held during StateWaking

	delivered   uint64
	discarded   uint64
	savesStart  uint64
	savesOK     uint64
	savesFailed uint64
	resets      uint64
	overflowed  uint64
}

// NewReceiver validates cfg and returns a ready receiver. For a resilient
// receiver whose store is empty, the initial edge (0) is saved synchronously
// — the paper's lst "initially 0".
func NewReceiver(cfg ReceiverConfig) (*Receiver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	win := cfg.Window
	if win == nil {
		w := cfg.W
		if w == 0 {
			w = 64
		}
		win = seqwin.NewBitmap(w)
	}
	if cfg.WakeBuffer == 0 {
		cfg.WakeBuffer = DefaultWakeBuffer
	}
	r := &Receiver{
		cfg:   cfg,
		saver: cfg.Saver,
		now:   clockOrZero(cfg.Clock),
		win:   win,
		state: StateUp,
	}
	if !cfg.Baseline {
		if r.saver == nil {
			r.saver = SyncSaver{Store: cfg.Store}
		}
		if _, ok, err := cfg.Store.Fetch(); err != nil {
			return nil, fmt.Errorf("core: probing receiver store: %w", err)
		} else if !ok {
			if err := cfg.Store.Save(0); err != nil {
				return nil, fmt.Errorf("core: initializing receiver store: %w", err)
			}
		}
	}
	return r, nil
}

// Admit runs the paper's receive action for sequence number s: decide
// against the window, then start a background SAVE if the edge advanced K
// past the last saved value. While the machine is down the message is
// unobserved (VerdictDown); while waking it is buffered for the Drain
// callback (VerdictBuffered) or dropped if the buffer is full
// (VerdictOverflow).
func (r *Receiver) Admit(s uint64) Verdict {
	r.mu.Lock()
	switch r.state {
	case StateDown:
		r.mu.Unlock()
		r.cfg.Trace.Record(trace.Event{At: r.now(), Kind: trace.KindDiscardDown, Node: r.cfg.Name, Seq: s})
		return VerdictDown
	case StateWaking:
		if len(r.buffer) >= r.cfg.WakeBuffer {
			r.overflowed++
			r.mu.Unlock()
			r.cfg.Trace.Record(trace.Event{At: r.now(), Kind: trace.KindBufferOverflow, Node: r.cfg.Name, Seq: s})
			return VerdictOverflow
		}
		r.buffer = append(r.buffer, s)
		r.mu.Unlock()
		r.cfg.Trace.Record(trace.Event{At: r.now(), Kind: trace.KindBuffered, Node: r.cfg.Name, Seq: s})
		return VerdictBuffered
	}
	v, save := r.decideLocked(s)
	r.mu.Unlock()

	r.traceVerdict(s, v)
	save()
	return v
}

// decideLocked applies the window decision and prepares any triggered SAVE.
// The returned closure must be invoked after releasing the lock.
func (r *Receiver) decideLocked(s uint64) (Verdict, func()) {
	if r.cfg.StrictHorizon && !r.cfg.Baseline {
		if horizon := r.committed + Leap(r.cfg.K, r.cfg.leapFactor()); s >= horizon {
			r.discarded++
			// Extend the horizon: start a save of s itself so the stream
			// resumes one save-latency later (retransmissions or subsequent
			// packets then fall below the new horizon). Saving a value above
			// the current edge is safe — it only widens the post-reset
			// fresh-sacrifice window, exactly as the leap itself does.
			if s > r.lst {
				r.lst = s
				r.savesStart++
				gen, val := r.gen, s
				return VerdictHorizon, func() {
					r.cfg.Trace.Record(trace.Event{At: r.now(), Kind: trace.KindSaveStart, Node: r.cfg.Name, Seq: val})
					r.saver.StartSave(val, func(err error) { r.saveDone(gen, val, err) })
				}
			}
			return VerdictHorizon, func() {}
		}
	}
	d := r.win.Admit(s)
	v := verdictOf(d)
	if v.Delivered() {
		r.delivered++
	} else {
		r.discarded++
	}
	if r.cfg.Baseline {
		return v, func() {}
	}
	edge := r.win.Edge()
	if edge < r.cfg.K+r.lst {
		return v, func() {}
	}
	r.lst = edge
	r.savesStart++
	gen := r.gen
	return v, func() {
		r.cfg.Trace.Record(trace.Event{At: r.now(), Kind: trace.KindSaveStart, Node: r.cfg.Name, Seq: edge})
		r.saver.StartSave(edge, func(err error) { r.saveDone(gen, edge, err) })
	}
}

func (r *Receiver) traceVerdict(s uint64, v Verdict) {
	var k trace.Kind
	switch v {
	case VerdictNew, VerdictInWindow:
		k = trace.KindDeliver
	case VerdictDuplicate:
		k = trace.KindDiscardDup
	case VerdictStale:
		k = trace.KindDiscardStale
	case VerdictHorizon:
		k = trace.KindDiscardHorizon
	default:
		return
	}
	r.cfg.Trace.Record(trace.Event{At: r.now(), Kind: k, Node: r.cfg.Name, Seq: s})
}

// Reset crashes the receiver: window, counters and buffer are volatile and
// considered lost; any in-flight save is discarded.
func (r *Receiver) Reset() {
	r.mu.Lock()
	r.state = StateDown
	r.gen++
	r.resets++
	r.wakeErr = nil
	r.buffer = nil
	r.mu.Unlock()

	if c, ok := r.saver.(Canceler); ok {
		c.Cancel()
	}
	r.cfg.Trace.Record(trace.Event{At: r.now(), Kind: trace.KindReset, Node: r.cfg.Name})
}

// Wake boots the receiver after a reset, implementing the paper's third
// action of process q: FETCH(r); SAVE(r+2Kq); r := r+2Kq; mark the whole
// window received. Messages arriving before the SAVE completes are buffered
// and decided afterwards through the Drain callback. Wake on an endpoint
// that is not down is a no-op; a failed FETCH or SAVE leaves it down with
// the error available from LastWakeError.
func (r *Receiver) Wake() {
	r.mu.Lock()
	if r.state != StateDown {
		r.mu.Unlock()
		return
	}
	if r.cfg.Baseline {
		// §3: the reset receiver restarts with r=0 and a cleared window,
		// accepting any previously used sequence number again.
		r.win.Reinit(0, false)
		r.state = StateUp
		r.mu.Unlock()
		r.cfg.Trace.Record(trace.Event{At: r.now(), Kind: trace.KindWake, Node: r.cfg.Name})
		r.cfg.Trace.Record(trace.Event{At: r.now(), Kind: trace.KindWakeDone, Node: r.cfg.Name})
		return
	}
	r.state = StateWaking
	gen := r.gen
	r.mu.Unlock()

	r.cfg.Trace.Record(trace.Event{At: r.now(), Kind: trace.KindWake, Node: r.cfg.Name})

	v, ok, err := r.cfg.Store.Fetch()
	if err == nil && !ok {
		err = ErrNoSavedState
	}
	r.cfg.Trace.Record(trace.Event{At: r.now(), Kind: trace.KindFetch, Node: r.cfg.Name, Seq: v})
	if err != nil {
		r.failWake(gen, fmt.Errorf("core: receiver wake fetch: %w", err))
		return
	}
	leaped := v + Leap(r.cfg.K, r.cfg.leapFactor())
	if r.cfg.AblationSkipPostWakeSave {
		// UNSAFE ablation: resume without the durable leap record.
		r.saver.StartSave(leaped, func(err error) { r.saveDone(gen, leaped, err) })
		r.finishWake(gen, leaped, nil)
		return
	}
	r.cfg.Trace.Record(trace.Event{At: r.now(), Kind: trace.KindSaveStart, Node: r.cfg.Name, Seq: leaped})
	r.saver.StartSave(leaped, func(err error) { r.finishWake(gen, leaped, err) })
}

func (r *Receiver) failWake(gen uint64, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gen != gen {
		return
	}
	r.state = StateDown
	r.wakeErr = err
}

func (r *Receiver) finishWake(gen, leaped uint64, err error) {
	r.mu.Lock()
	if r.gen != gen {
		r.mu.Unlock()
		return
	}
	if err != nil {
		r.state = StateDown
		r.wakeErr = fmt.Errorf("core: receiver post-wake save: %w", err)
		r.mu.Unlock()
		r.cfg.Trace.Record(trace.Event{At: r.now(), Kind: trace.KindSaveError, Node: r.cfg.Name, Seq: leaped})
		return
	}
	// Paper: r := fetched + 2Kq; every entry of wdw set to true.
	r.win.Reinit(leaped, true)
	r.lst = leaped
	r.committed = leaped
	r.state = StateUp
	buf := r.buffer
	r.buffer = nil
	r.mu.Unlock()

	r.cfg.Trace.Record(trace.Event{At: r.now(), Kind: trace.KindSaveDone, Node: r.cfg.Name, Seq: leaped})
	r.cfg.Trace.Record(trace.Event{At: r.now(), Kind: trace.KindWakeDone, Node: r.cfg.Name, Seq: leaped})

	// Decide the buffered messages in arrival order.
	for _, s := range buf {
		r.mu.Lock()
		v, save := r.decideLocked(s)
		r.mu.Unlock()
		r.traceVerdict(s, v)
		save()
		if r.cfg.Drain != nil {
			r.cfg.Drain(s, v)
		}
	}
}

func (r *Receiver) saveDone(gen, v uint64, err error) {
	r.mu.Lock()
	if r.gen != gen {
		r.mu.Unlock()
		return
	}
	if err != nil {
		r.savesFailed++
		if r.lst == v {
			r.lst = r.committed
		}
		r.mu.Unlock()
		r.cfg.Trace.Record(trace.Event{At: r.now(), Kind: trace.KindSaveError, Node: r.cfg.Name, Seq: v})
		return
	}
	r.savesOK++
	if v > r.committed {
		r.committed = v
	}
	r.mu.Unlock()
	r.cfg.Trace.Record(trace.Event{At: r.now(), Kind: trace.KindSaveDone, Node: r.cfg.Name, Seq: v})
}

// Edge returns the anti-replay window's right edge (paper: r).
func (r *Receiver) Edge() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.win.Edge()
}

// W returns the anti-replay window width.
func (r *Receiver) W() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.win.W()
}

// LastStored returns the last edge value handed to a SAVE (paper: lst).
func (r *Receiver) LastStored() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lst
}

// State returns the lifecycle state.
func (r *Receiver) State() State {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

// LastWakeError returns the error that kept the last Wake from completing.
func (r *Receiver) LastWakeError() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.wakeErr
}

// ReceiverStats is a snapshot of receiver counters.
type ReceiverStats struct {
	Delivered    uint64
	Discarded    uint64
	SavesStarted uint64
	SavesOK      uint64
	SavesFailed  uint64
	Resets       uint64
	Overflowed   uint64
}

// Stats returns a snapshot of the receiver's counters.
func (r *Receiver) Stats() ReceiverStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return ReceiverStats{
		Delivered:    r.delivered,
		Discarded:    r.discarded,
		SavesStarted: r.savesStart,
		SavesOK:      r.savesOK,
		SavesFailed:  r.savesFailed,
		Resets:       r.resets,
		Overflowed:   r.overflowed,
	}
}
