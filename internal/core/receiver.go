package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"antireplay/internal/seqwin"
	"antireplay/internal/stats"
	"antireplay/internal/store"
	"antireplay/internal/trace"
)

// Verdict is the receiver's outcome for one observed message.
type Verdict uint8

// Verdict values.
const (
	// VerdictNew delivers a message beyond the window's right edge.
	VerdictNew Verdict = iota + 1
	// VerdictInWindow delivers an unseen message inside the window.
	VerdictInWindow
	// VerdictDuplicate discards a message already marked in the window.
	VerdictDuplicate
	// VerdictStale discards a message below the window.
	VerdictStale
	// VerdictBuffered defers a message that arrived during the post-wake
	// SAVE; its final verdict is reported through the Drain callback.
	VerdictBuffered
	// VerdictOverflow discards a message because the post-wake buffer was
	// full.
	VerdictOverflow
	// VerdictDown discards a message that arrived while the machine was off.
	VerdictDown
	// VerdictHorizon discards a message whose sequence number lies at or
	// beyond the strict durable horizon (committed+leap): delivering it
	// before the in-flight save commits could let a later reset accept its
	// replay. Only produced with ReceiverConfig.StrictHorizon.
	VerdictHorizon
)

// Delivered reports whether the verdict delivers the message to the
// application.
func (v Verdict) Delivered() bool { return v == VerdictNew || v == VerdictInWindow }

// String returns the lower-case verdict name.
func (v Verdict) String() string {
	switch v {
	case VerdictNew:
		return "new"
	case VerdictInWindow:
		return "in-window"
	case VerdictDuplicate:
		return "duplicate"
	case VerdictStale:
		return "stale"
	case VerdictBuffered:
		return "buffered"
	case VerdictOverflow:
		return "overflow"
	case VerdictDown:
		return "down"
	case VerdictHorizon:
		return "horizon"
	default:
		return fmt.Sprintf("verdict(%d)", uint8(v))
	}
}

func verdictOf(d seqwin.Decision) Verdict {
	// The first four Verdict values deliberately mirror the Decision values
	// (compile-time checked below), so the per-packet conversion is a cast.
	if d >= seqwin.DecisionNew && d <= seqwin.DecisionStale {
		return Verdict(d)
	}
	return VerdictStale
}

// The cast in verdictOf relies on this correspondence; each pair is pinned
// independently so no two misalignments can cancel out.
var (
	_ = [1]struct{}{}[VerdictNew-Verdict(seqwin.DecisionNew)]
	_ = [1]struct{}{}[VerdictInWindow-Verdict(seqwin.DecisionInWindow)]
	_ = [1]struct{}{}[VerdictDuplicate-Verdict(seqwin.DecisionDuplicate)]
	_ = [1]struct{}{}[VerdictStale-Verdict(seqwin.DecisionStale)]
)

// DefaultWakeBuffer is the default capacity of the post-wake message buffer.
const DefaultWakeBuffer = 1024

// ReceiverConfig configures a Receiver.
type ReceiverConfig struct {
	// K is the paper's Kq: a background SAVE of the window edge starts
	// whenever the edge has advanced K past the last saved value.
	// Required (>= 1) unless Baseline is set.
	K uint64
	// LeapFactor scales the post-wake leap; zero means the paper's 2.
	// Negative disables the leap (ablation only; unsafe).
	LeapFactor float64
	// W is the anti-replay window width used when Window is nil
	// (a seqwin.Bitmap is created, or a seqwin.Atomic with Concurrent).
	// Defaults to 64.
	W int
	// Window overrides the window implementation.
	Window seqwin.Window
	// Concurrent selects a seqwin.Atomic window when Window is nil, which
	// enables the lock-minimizing admission fast path: in-window and
	// in-order messages are admitted with atomic operations under a shared
	// read gate, falling back to the receiver mutex only for reset/wake
	// transitions, SAVE triggers, and strict-horizon discards. A
	// caller-provided Window enables the same fast path when it implements
	// seqwin.ConcurrentWindow.
	Concurrent bool
	// Store is the durable cell holding the saved edge. Required unless
	// Baseline is set.
	Store store.Store
	// Saver executes background SAVEs; nil means synchronous saves.
	Saver BackgroundSaver
	// Baseline selects the §2 protocol: no SAVE/FETCH; a wake-up restarts
	// with edge 0 and a cleared window (§3).
	Baseline bool
	// AblationSkipPostWakeSave resumes immediately after FETCH+leap without
	// waiting for the synchronous post-wake SAVE, dropping the paper's §4
	// "second consideration" protection. UNSAFE — a second reset before the
	// next save then re-accepts replayed traffic. For ablation experiments
	// only.
	AblationSkipPostWakeSave bool
	// StrictHorizon enforces the invariant "every delivered sequence
	// number < committed+leap" by discarding (VerdictHorizon) messages at
	// or beyond the durable horizon. This closes a gap in the paper's
	// receiver-side analysis: its Figure 2 bound assumes the window edge
	// advances at most Kq sequence numbers per save interval, which a
	// loss-induced jump violates — two resets around such a jump let the
	// paper's protocol deliver a message twice. With the guard the
	// no-duplicate-delivery theorem holds unconditionally, at the cost of
	// bounded drops while saves catch up to a jump.
	StrictHorizon bool
	// WakeBuffer caps the messages buffered during the post-wake SAVE;
	// zero means DefaultWakeBuffer.
	WakeBuffer int
	// Drain receives the deferred verdict of each buffered message after
	// the post-wake SAVE completes, in arrival order. Nil discards them
	// (they are still counted in Stats and Trace).
	Drain func(seq uint64, v Verdict)
	// Trace receives protocol events; nil discards them.
	Trace *trace.Collector
	// Name labels trace events (e.g. "q").
	Name string
	// Clock supplies trace timestamps; nil means zero timestamps.
	Clock func() time.Duration
}

func (c ReceiverConfig) leapFactor() float64 {
	if c.LeapFactor == 0 {
		return DefaultLeapFactor
	}
	return c.LeapFactor
}

// Validate reports configuration errors.
func (c ReceiverConfig) Validate() error {
	if c.W < 0 {
		return fmt.Errorf("%w: W must be >= 0", ErrConfig)
	}
	if c.WakeBuffer < 0 {
		return fmt.Errorf("%w: WakeBuffer must be >= 0", ErrConfig)
	}
	if c.Baseline {
		return nil
	}
	if c.K == 0 {
		return fmt.Errorf("%w: K must be >= 1", ErrConfig)
	}
	if c.Store == nil {
		return fmt.Errorf("%w: Store is required", ErrConfig)
	}
	return nil
}

// Receiver is the paper's process q: an anti-replay window with SAVE/FETCH
// persistence of the right edge. Safe for concurrent use.
//
// With ReceiverConfig.Concurrent the receiver admits messages on a
// wait-free fast path: the current seqwin.Atomic window is published
// through an atomic pointer (RCU-style), so an admit is one pointer load
// plus the window's own lock-free admission — no mutex, no read-write gate,
// no shared-cacheline counter. Lifecycle transitions unpublish the pointer
// (Reset) or install a freshly built window (Wake) under the mutex; an
// admit that raced a reset completes against the superseded window object,
// which is equivalent to the message having been admitted just before the
// crash — the post-wake window starts beyond the leap with every slot
// marked, so exactly-once delivery is preserved (the -race stress suites
// exercise exactly this interleaving). A caller-provided Window (even a
// ConcurrentWindow) is driven through the serialized slow path: the
// receiver cannot rebuild a foreign window on wake, so it cannot let
// stale fast-path admits race a Reinit.
//
// Locking discipline: r.state and r.win are mutated only under r.mu; the
// fast path never reads them — it consumes the published window pointer,
// which is non-nil only while the receiver is StateUp. Monotonic protocol
// counters shared with the fast path (lst, committed) are atomics written
// under r.mu or saveMu; delivered/discarded are sharded counters.
type Receiver struct {
	cfg     ReceiverConfig
	saver   BackgroundSaver
	now     nowFunc
	leap    uint64 // Leap(K, leapFactor), precomputed
	width   int    // window width (immutable)
	k       uint64 // cfg.K, flattened for the per-packet trigger check
	strict  bool   // cfg.StrictHorizon && !cfg.Baseline, flattened
	traceOn bool   // cfg.Trace != nil, flattened

	// fastWin publishes the current window to the admission fast path. It
	// is non-nil exactly while the receiver is StateUp with an owned
	// concurrent window; Reset stores nil, Wake installs a new window.
	fastWin atomic.Pointer[seqwin.Atomic]
	ownFast bool // the receiver owns (and may rebuild) its Atomic window

	mu        sync.Mutex
	win       seqwin.Window
	state     State
	gen       uint64
	wakeErr   error
	buffer    []uint64 // messages held during StateWaking
	harvested bool     // r.win's delivery tally already folded into delivered

	lst       atomic.Uint64 // last edge value handed to a SAVE (paper: lst)
	committed atomic.Uint64 // last edge value known durable

	saveMu  sync.Mutex // orders saver invocations; see startSave
	saveGen uint64     // mirrors gen for startSave's torn-save check

	// delivered/discarded share one Tallies block: both are bumped on the
	// admission path, and one 1 KiB block instead of two 1 KiB sharded
	// counters halves the per-receiver tally footprint at million-SA scale.
	tallies     stats.Tallies // lanes: tallyDelivered, tallyDiscarded
	savesStart  atomic.Uint64
	savesOK     uint64
	savesFailed uint64
	resets      uint64
	overflowed  uint64
}

// Lane indices into Receiver.tallies.
const (
	tallyDelivered = iota
	tallyDiscarded
)

// NewReceiver validates cfg and returns a ready receiver. For a resilient
// receiver whose store is empty, the initial edge (0) is saved synchronously
// — the paper's lst "initially 0".
func NewReceiver(cfg ReceiverConfig) (*Receiver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	win := cfg.Window
	if win == nil {
		w := cfg.W
		if w == 0 {
			w = 64
		}
		if cfg.Concurrent {
			win = seqwin.NewAtomic(w)
		} else {
			win = seqwin.NewBitmap(w)
		}
	}
	if cfg.WakeBuffer == 0 {
		cfg.WakeBuffer = DefaultWakeBuffer
	}
	r := &Receiver{
		cfg:     cfg,
		saver:   cfg.Saver,
		now:     clockOrZero(cfg.Clock),
		win:     win,
		width:   win.W(),
		leap:    Leap(cfg.K, cfg.leapFactor()),
		k:       cfg.K,
		strict:  cfg.StrictHorizon && !cfg.Baseline,
		traceOn: cfg.Trace != nil,
		state:   StateUp,
	}
	if cfg.Baseline {
		r.k = 0 // the fast path treats k == 0 as "no SAVE trigger"
	}
	if aw, ok := win.(*seqwin.Atomic); ok && cfg.Window == nil {
		// The receiver built this window itself, so it may replace it on
		// wake — the precondition for the RCU fast path.
		r.ownFast = true
		r.fastWin.Store(aw)
	}
	if !cfg.Baseline {
		if r.saver == nil {
			r.saver = SyncSaver{Store: cfg.Store}
		}
		if _, ok, err := cfg.Store.Fetch(); err != nil {
			return nil, fmt.Errorf("core: probing receiver store: %w", err)
		} else if !ok {
			if err := cfg.Store.Save(0); err != nil {
				return nil, fmt.Errorf("core: initializing receiver store: %w", err)
			}
		}
	}
	return r, nil
}

// Admit runs the paper's receive action for sequence number s: decide
// against the window, then start a background SAVE if the edge advanced K
// past the last saved value. While the machine is down the message is
// unobserved (VerdictDown); while waking it is buffered for the Drain
// callback (VerdictBuffered) or dropped if the buffer is full
// (VerdictOverflow).
//
// With ReceiverConfig.Concurrent the common case completes on the wait-free
// fast path — one atomic pointer load plus the window's own lock-free
// admission; see the type comment.
func (r *Receiver) Admit(s uint64) Verdict {
	if w := r.fastWin.Load(); w != nil {
		if v, ok := r.admitFast(w, s); ok {
			return v
		}
	}
	return r.admitSlow(s)
}

// startSave hands v to the background saver. All save bookkeeping that must
// be consistent with the invocation — lst, the saves-started counter, the
// trace event — happens here, atomically with the hand-off, because saves
// are triggered under r.mu but invoked after it is released:
//
//   - Updating lst at trigger time (the pre-concurrency design) lets the
//     next trigger wait another K admissions while the first save is still
//     un-invoked; with C concurrent admitters the edge can then outrun the
//     durable value by up to C*K — far beyond the 2K wake leap, breaking
//     exactly-once delivery (or, for a sender, no-reuse) across a reset.
//     Here lst means "largest value actually handed to the saver", so the
//     window between trigger and invocation suppresses nothing.
//   - Two triggers can reach this point out of order; deduplicating against
//     lst — "largest value actually handed to the saver" — drops any
//     invocation no fresher than one already handed over, which both
//     collapses the trigger herd into one write and keeps the medium
//     monotonic (an out-of-order stale write would regress it, and a reset
//     then wakes below delivered traffic). saveDone's gen-checked failure
//     rollback of lst reopens the dedup so a failed save's value can be
//     retried (e.g. a retransmission re-triggering the same
//     horizon-extension save).
//   - gen is the generation captured at trigger time. A reset advances
//     saveGen under this same lock, so a straggler from the old life is
//     dropped — the paper's "torn save" — instead of writing into the new
//     life's medium.
//
// force bypasses the dedup: the post-wake save must run even though the
// (volatile, possibly larger) lst of the previous life is still visible.
// done is not called for dropped or deduplicated invocations (their
// callbacks are stale or subsumed by the fresher save's).
func (r *Receiver) startSave(gen, v uint64, force bool, done func(v uint64, err error)) {
	r.saveMu.Lock()
	defer r.saveMu.Unlock()
	if gen != r.saveGen {
		return // a reset intervened; the write never reaches the medium
	}
	if !force && v <= r.lst.Load() {
		return // an at-least-as-fresh save is already on its way
	}
	r.lst.Store(v)
	r.savesStart.Add(1)
	r.cfg.Trace.Record(trace.Event{At: r.now(), Kind: trace.KindSaveStart, Node: r.cfg.Name, Seq: v})
	r.saver.StartSave(v, func(err error) { done(v, err) })
}

// admitFast decides s against the published concurrent window w, touching
// no lock at all. It reports ok=false when the message needs the slow
// path: s lies at or beyond the strict durable horizon. (Lifecycle is
// handled before the call: a non-nil published window means the receiver
// was StateUp when it was published; an admit racing a concurrent Reset
// completes against the superseded window, equivalent to arriving just
// before the crash.)
func (r *Receiver) admitFast(w *seqwin.Atomic, s uint64) (Verdict, bool) {
	if r.strict && s >= r.committed.Load()+r.leap {
		// committed only grows, so a stale read errs toward the slow path,
		// never toward delivering beyond the true horizon.
		return 0, false
	}
	d := w.Admit(s)
	v := verdictOf(d)
	if !d.Deliver() {
		// Deliveries are not counted here: the claim bit-flip inside the
		// window already recorded the event (seqwin.Atomic.Delivered), so
		// the fast path's delivery case costs no extra locked operation.
		r.tallies.AddSpread(s, tallyDiscarded, 1)
	}
	if r.traceOn {
		r.traceVerdict(s, v)
	}
	// k == 0 means baseline (no SAVE protocol); the racy lst read is
	// re-checked under the mutex in saveFromFastPath.
	if d == seqwin.DecisionNew && r.k != 0 && s >= r.k+r.lst.Load() {
		r.saveFromFastPath(s)
	}
	return v, true
}

// saveFromFastPath re-checks the SAVE trigger under the mutex and starts
// the background save. The fast path detects "edge advanced >= K" with a
// racy read of lst, so this slow step runs at most once per K admissions
// per concurrent admitter (startSave collapses the herd into one write).
func (r *Receiver) saveFromFastPath(edge uint64) {
	r.mu.Lock()
	if r.state != StateUp || edge < r.cfg.K+r.lst.Load() {
		r.mu.Unlock()
		return
	}
	if e := r.win.Edge(); e > edge {
		edge = e // a concurrent admit advanced further; save the larger edge
	}
	gen := r.gen
	r.mu.Unlock()

	r.startSave(gen, edge, false, func(v uint64, err error) { r.saveDone(gen, v, err) })
}

// admitSlow is the original mutex-serialized admission path; it also backs
// the fast path's fallback cases (down/waking/horizon).
func (r *Receiver) admitSlow(s uint64) Verdict {
	r.mu.Lock()
	switch r.state {
	case StateDown:
		r.mu.Unlock()
		r.cfg.Trace.Record(trace.Event{At: r.now(), Kind: trace.KindDiscardDown, Node: r.cfg.Name, Seq: s})
		return VerdictDown
	case StateWaking:
		if len(r.buffer) >= r.cfg.WakeBuffer {
			r.overflowed++
			r.mu.Unlock()
			r.cfg.Trace.Record(trace.Event{At: r.now(), Kind: trace.KindBufferOverflow, Node: r.cfg.Name, Seq: s})
			return VerdictOverflow
		}
		r.buffer = append(r.buffer, s)
		r.mu.Unlock()
		r.cfg.Trace.Record(trace.Event{At: r.now(), Kind: trace.KindBuffered, Node: r.cfg.Name, Seq: s})
		return VerdictBuffered
	}
	v, save := r.decideLocked(s)
	r.mu.Unlock()

	r.traceVerdict(s, v)
	save()
	return v
}

// decideLocked applies the window decision and prepares any triggered SAVE.
// The returned closure must be invoked after releasing the lock.
func (r *Receiver) decideLocked(s uint64) (Verdict, func()) {
	if r.cfg.StrictHorizon && !r.cfg.Baseline {
		if horizon := r.committed.Load() + r.leap; s >= horizon {
			r.tallies.Add(tallyDiscarded, 1)
			// Extend the horizon: start a save of s itself so the stream
			// resumes one save-latency later (retransmissions or subsequent
			// packets then fall below the new horizon). Saving a value above
			// the current edge is safe — it only widens the post-reset
			// fresh-sacrifice window, exactly as the leap itself does.
			if s > r.lst.Load() {
				gen, val := r.gen, s
				return VerdictHorizon, func() {
					r.startSave(gen, val, false, func(v uint64, err error) { r.saveDone(gen, v, err) })
				}
			}
			return VerdictHorizon, func() {}
		}
	}
	d := r.win.Admit(s)
	v := verdictOf(d)
	if v.Delivered() {
		if !r.ownFast {
			// An owned Atomic window records its own deliveries as claim
			// bits (see admitFast); counting here too would double-count
			// the slow-path admits that land in the same window.
			r.tallies.Add(tallyDelivered, 1)
		}
	} else {
		r.tallies.Add(tallyDiscarded, 1)
	}
	if r.cfg.Baseline {
		return v, func() {}
	}
	edge := r.win.Edge()
	if edge < r.cfg.K+r.lst.Load() {
		return v, func() {}
	}
	gen := r.gen
	return v, func() {
		r.startSave(gen, edge, false, func(sv uint64, err error) { r.saveDone(gen, sv, err) })
	}
}

func (r *Receiver) traceVerdict(s uint64, v Verdict) {
	var k trace.Kind
	switch v {
	case VerdictNew, VerdictInWindow:
		k = trace.KindDeliver
	case VerdictDuplicate:
		k = trace.KindDiscardDup
	case VerdictStale:
		k = trace.KindDiscardStale
	case VerdictHorizon:
		k = trace.KindDiscardHorizon
	default:
		return
	}
	r.cfg.Trace.Record(trace.Event{At: r.now(), Kind: k, Node: r.cfg.Name, Seq: s})
}

// Reset crashes the receiver: window, counters and buffer are volatile and
// considered lost; any in-flight save is discarded.
func (r *Receiver) Reset() {
	r.mu.Lock()
	// Unpublish the fast path first: admits that already loaded the pointer
	// finish against the superseded window (see the type comment); new ones
	// fall to the slow path and observe StateDown.
	r.fastWin.Store(nil)
	if r.ownFast && !r.harvested {
		// Fold the abandoned window's delivery tally into the receiver
		// counter before the wake installs a fresh window. A fast-path admit
		// still in flight against the old window can slip its claim in after
		// this harvest; its delivery then goes uncounted — a bounded
		// observability race on a crashing endpoint, never a protocol one.
		r.tallies.Add(tallyDelivered, r.win.(*seqwin.Atomic).Delivered())
		r.harvested = true
	}
	r.state = StateDown
	r.gen++
	gen := r.gen
	r.resets++
	r.wakeErr = nil
	r.buffer = nil
	r.mu.Unlock()

	// Any save triggered in the old life is torn: startSave drops it via
	// the generation check (the crash destroyed the write in transit).
	r.saveMu.Lock()
	r.saveGen = gen
	r.saveMu.Unlock()

	if c, ok := r.saver.(Canceler); ok {
		c.Cancel()
	}
	r.cfg.Trace.Record(trace.Event{At: r.now(), Kind: trace.KindReset, Node: r.cfg.Name})
}

// Wake boots the receiver after a reset, implementing the paper's third
// action of process q: FETCH(r); SAVE(r+2Kq); r := r+2Kq; mark the whole
// window received. Messages arriving before the SAVE completes are buffered
// and decided afterwards through the Drain callback. Wake on an endpoint
// that is not down is a no-op; a failed FETCH or SAVE leaves it down with
// the error available from LastWakeError.
func (r *Receiver) Wake() {
	r.mu.Lock()
	if r.state != StateDown {
		r.mu.Unlock()
		return
	}
	if r.cfg.Baseline {
		// §3: the reset receiver restarts with r=0 and a cleared window,
		// accepting any previously used sequence number again.
		r.reinstallLocked(0, false)
		r.state = StateUp
		r.publishLocked()
		r.mu.Unlock()
		r.cfg.Trace.Record(trace.Event{At: r.now(), Kind: trace.KindWake, Node: r.cfg.Name})
		r.cfg.Trace.Record(trace.Event{At: r.now(), Kind: trace.KindWakeDone, Node: r.cfg.Name})
		return
	}
	r.state = StateWaking
	gen := r.gen
	r.mu.Unlock()

	r.cfg.Trace.Record(trace.Event{At: r.now(), Kind: trace.KindWake, Node: r.cfg.Name})

	v, ok, err := r.cfg.Store.Fetch()
	if err == nil && !ok {
		err = ErrNoSavedState
	}
	r.cfg.Trace.Record(trace.Event{At: r.now(), Kind: trace.KindFetch, Node: r.cfg.Name, Seq: v})
	if err != nil {
		r.failWake(gen, fmt.Errorf("core: receiver wake fetch: %w", err))
		return
	}
	leaped := v + r.leap
	if r.cfg.AblationSkipPostWakeSave {
		// UNSAFE ablation: resume without the durable leap record.
		r.startSave(gen, leaped, true, func(v uint64, err error) { r.saveDone(gen, v, err) })
		r.finishWake(gen, leaped, nil)
		return
	}
	r.startSave(gen, leaped, true, func(v uint64, err error) { r.finishWake(gen, v, err) })
}

func (r *Receiver) failWake(gen uint64, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gen != gen {
		return
	}
	r.state = StateDown
	r.wakeErr = err
}

// reinstallLocked rebuilds the window at the given edge. An owned
// concurrent window is replaced by a freshly allocated one — never mutated
// in place — because a fast-path admit that raced the preceding Reset may
// still be operating on the old object; the superseded window is simply
// abandoned to it. Other windows are reinitialized in place: they are only
// ever touched under r.mu. Called with r.mu held and the fast path
// unpublished.
func (r *Receiver) reinstallLocked(edge uint64, allSeen bool) {
	if r.ownFast {
		w := seqwin.NewAtomic(r.width)
		w.Reinit(edge, allSeen)
		r.win = w
		r.harvested = false // the fresh window starts a new delivery tally
		return
	}
	r.win.Reinit(edge, allSeen)
}

// publishLocked re-opens the fast path over the current window; a no-op for
// receivers without an owned concurrent window. Called with r.mu held and
// r.state == StateUp.
func (r *Receiver) publishLocked() {
	if r.ownFast {
		r.fastWin.Store(r.win.(*seqwin.Atomic))
	}
}

func (r *Receiver) finishWake(gen, leaped uint64, err error) {
	r.mu.Lock()
	if r.gen != gen {
		r.mu.Unlock()
		return
	}
	if err != nil {
		r.state = StateDown
		r.wakeErr = fmt.Errorf("core: receiver post-wake save: %w", err)
		r.mu.Unlock()
		r.cfg.Trace.Record(trace.Event{At: r.now(), Kind: trace.KindSaveError, Node: r.cfg.Name, Seq: leaped})
		return
	}
	// Paper: r := fetched + 2Kq; every entry of wdw set to true.
	r.reinstallLocked(leaped, true)
	r.state = StateUp
	r.publishLocked()
	r.lst.Store(leaped)
	r.committed.Store(leaped)
	buf := r.buffer
	r.buffer = nil
	r.mu.Unlock()

	r.cfg.Trace.Record(trace.Event{At: r.now(), Kind: trace.KindSaveDone, Node: r.cfg.Name, Seq: leaped})
	r.cfg.Trace.Record(trace.Event{At: r.now(), Kind: trace.KindWakeDone, Node: r.cfg.Name, Seq: leaped})

	// Decide the buffered messages in arrival order.
	for _, s := range buf {
		r.mu.Lock()
		v, save := r.decideLocked(s)
		r.mu.Unlock()
		r.traceVerdict(s, v)
		save()
		if r.cfg.Drain != nil {
			r.cfg.Drain(s, v)
		}
	}
}

func (r *Receiver) saveDone(gen, v uint64, err error) {
	r.mu.Lock()
	if r.gen != gen {
		r.mu.Unlock()
		return
	}
	if err != nil {
		r.savesFailed++
		// Roll lst back so the next trigger — or a retransmission
		// re-triggering the same horizon-extension value — retries the
		// save (lst doubles as startSave's dedup watermark), unless a
		// newer save has been handed out meanwhile. The single CAS makes
		// the newer-save check atomic with the rollback: startSave runs
		// under saveMu, not r.mu, so a load-then-store pair here could
		// interleave with its watermark update and regress lst below a
		// value already handed to the saver.
		r.lst.CompareAndSwap(v, r.committed.Load())
		r.mu.Unlock()
		r.cfg.Trace.Record(trace.Event{At: r.now(), Kind: trace.KindSaveError, Node: r.cfg.Name, Seq: v})
		return
	}
	r.savesOK++
	if v > r.committed.Load() {
		r.committed.Store(v)
	}
	r.mu.Unlock()
	r.cfg.Trace.Record(trace.Event{At: r.now(), Kind: trace.KindSaveDone, Node: r.cfg.Name, Seq: v})
}

// Edge returns the anti-replay window's right edge (paper: r).
func (r *Receiver) Edge() uint64 {
	if w := r.fastWin.Load(); w != nil {
		return w.Edge() // atomic; no lock needed
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.win.Edge()
}

// W returns the anti-replay window width.
func (r *Receiver) W() int { return r.width }

// Occupancy returns how many numbers inside (edge-w, edge] the window has
// marked seen, or -1 when the window implementation cannot report it. A
// full window right after a wake is the mark-all-seen reinstall; a sparse
// one under load betrays loss or reordering.
func (r *Receiver) Occupancy() int {
	if w := r.fastWin.Load(); w != nil {
		return w.Occupancy() // tag-checked scan; no lock needed
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if o, ok := r.win.(seqwin.Occupier); ok {
		return o.Occupancy()
	}
	return -1
}

// LastStored returns the last edge value handed to a SAVE (paper: lst).
func (r *Receiver) LastStored() uint64 { return r.lst.Load() }

// Committed returns the last edge value known durable — the floor under the
// receiver's acceptance horizon. Unlike LastStored (optimistic: handed to a
// save, not necessarily acknowledged) this only grows on completed SAVEs and
// on the wake-up leap, so it is the regression witness disk-fault
// experiments compare across reopen.
func (r *Receiver) Committed() uint64 { return r.committed.Load() }

// State returns the lifecycle state.
func (r *Receiver) State() State {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

// LastWakeError returns the error that kept the last Wake from completing.
func (r *Receiver) LastWakeError() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.wakeErr
}

// ReceiverStats is a snapshot of receiver counters.
type ReceiverStats struct {
	Delivered    uint64
	Discarded    uint64
	SavesStarted uint64
	SavesOK      uint64
	SavesFailed  uint64
	Resets       uint64
	Overflowed   uint64
}

// Stats returns a snapshot of the receiver's counters.
func (r *Receiver) Stats() ReceiverStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	delivered := r.tallies.Value(tallyDelivered)
	if r.ownFast && !r.harvested {
		// The live window carries the current life's delivery tally; see
		// seqwin.Atomic.Delivered.
		delivered += r.win.(*seqwin.Atomic).Delivered()
	}
	return ReceiverStats{
		Delivered:    delivered,
		Discarded:    r.tallies.Value(tallyDiscarded),
		SavesStarted: r.savesStart.Load(),
		SavesOK:      r.savesOK,
		SavesFailed:  r.savesFailed,
		Resets:       r.resets,
		Overflowed:   r.overflowed,
	}
}
