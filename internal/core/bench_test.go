package core_test

import (
	"fmt"
	"testing"

	"antireplay/internal/core"
	"antireplay/internal/store"
)

// BenchmarkSenderNext measures the per-message sequencing cost at different
// SAVE intervals, including the baseline (no saves). The SAVE itself runs
// synchronously against a Mem store here, so small K shows the worst-case
// in-line cost.
func BenchmarkSenderNext(b *testing.B) {
	for _, k := range []uint64{1, 25, 1 << 20} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			var m store.Mem
			s, err := core.NewSender(core.SenderConfig{K: k, Store: &m})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Next(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("baseline", func(b *testing.B) {
		s, err := core.NewSender(core.SenderConfig{Baseline: true})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Next(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkReceiverAdmitInOrder(b *testing.B) {
	var m store.Mem
	r, err := core.NewReceiver(core.ReceiverConfig{K: 25, Store: &m, W: 64})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Admit(uint64(i + 1))
	}
}

func BenchmarkReceiverAdmitReplay(b *testing.B) {
	var m store.Mem
	r, err := core.NewReceiver(core.ReceiverConfig{K: 1 << 40, Store: &m, W: 64})
	if err != nil {
		b.Fatal(err)
	}
	r.Admit(100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.Admit(100).Delivered() {
			b.Fatal("replay delivered")
		}
	}
}

// BenchmarkResetWakeCycle measures the full crash-recovery cost on a Mem
// store: Reset + FETCH + leap + synchronous SAVE.
func BenchmarkResetWakeCycle(b *testing.B) {
	var m store.Mem
	s, err := core.NewSender(core.SenderConfig{K: 25, Store: &m})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reset()
		s.Wake()
		if s.State() != core.StateUp {
			b.Fatal("not up after wake")
		}
	}
}
