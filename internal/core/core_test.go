package core_test

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"antireplay/internal/core"
	"antireplay/internal/store"
	"antireplay/internal/trace"
)

// manualSaver is a BackgroundSaver whose commits the test fires by hand,
// giving precise control over the paper's "reset before/after the current
// SAVE finishes" branches.
type manualSaver struct {
	mu      sync.Mutex
	st      store.Store
	pending []manualPending
}

type manualPending struct {
	v    uint64
	done func(error)
}

func newManualSaver(st store.Store) *manualSaver { return &manualSaver{st: st} }

func (m *manualSaver) StartSave(v uint64, done func(error)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pending = append(m.pending, manualPending{v: v, done: done})
}

// CommitAll completes every pending save in order.
func (m *manualSaver) CommitAll(t *testing.T) {
	t.Helper()
	for {
		m.mu.Lock()
		if len(m.pending) == 0 {
			m.mu.Unlock()
			return
		}
		p := m.pending[0]
		m.pending = m.pending[1:]
		m.mu.Unlock()
		if err := m.st.Save(p.v); err != nil {
			t.Fatalf("manualSaver commit: %v", err)
		}
		if p.done != nil {
			p.done(nil)
		}
	}
}

// Commit completes the oldest pending save, reporting whether one existed.
func (m *manualSaver) Commit() bool {
	m.mu.Lock()
	if len(m.pending) == 0 {
		m.mu.Unlock()
		return false
	}
	p := m.pending[0]
	m.pending = m.pending[1:]
	m.mu.Unlock()
	if err := m.st.Save(p.v); err != nil {
		if p.done != nil {
			p.done(err)
		}
		return true
	}
	if p.done != nil {
		p.done(nil)
	}
	return true
}

// FailNext reports err to the oldest pending save without persisting.
func (m *manualSaver) FailNext(err error) bool {
	m.mu.Lock()
	if len(m.pending) == 0 {
		m.mu.Unlock()
		return false
	}
	p := m.pending[0]
	m.pending = m.pending[1:]
	m.mu.Unlock()
	if p.done != nil {
		p.done(err)
	}
	return true
}

// Cancel implements core.Canceler: a reset tears all in-flight saves.
func (m *manualSaver) Cancel() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pending = nil
}

func (m *manualSaver) PendingCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pending)
}

var _ core.BackgroundSaver = (*manualSaver)(nil)
var _ core.Canceler = (*manualSaver)(nil)

func mustSender(t *testing.T, cfg core.SenderConfig) *core.Sender {
	t.Helper()
	s, err := core.NewSender(cfg)
	if err != nil {
		t.Fatalf("NewSender: %v", err)
	}
	return s
}

func mustReceiver(t *testing.T, cfg core.ReceiverConfig) *core.Receiver {
	t.Helper()
	r, err := core.NewReceiver(cfg)
	if err != nil {
		t.Fatalf("NewReceiver: %v", err)
	}
	return r
}

func sendN(t *testing.T, s *core.Sender, n int) uint64 {
	t.Helper()
	var last uint64
	for i := 0; i < n; i++ {
		seq, err := s.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		last = seq
	}
	return last
}

func TestSenderConfigValidation(t *testing.T) {
	var m store.Mem
	tests := []struct {
		name string
		cfg  core.SenderConfig
		ok   bool
	}{
		{"valid", core.SenderConfig{K: 25, Store: &m}, true},
		{"baseline needs nothing", core.SenderConfig{Baseline: true}, true},
		{"missing K", core.SenderConfig{Store: &m}, false},
		{"missing store", core.SenderConfig{K: 25}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := core.NewSender(tt.cfg)
			if tt.ok && err != nil {
				t.Errorf("NewSender = %v, want nil", err)
			}
			if !tt.ok && !errors.Is(err, core.ErrConfig) {
				t.Errorf("NewSender = %v, want ErrConfig", err)
			}
		})
	}
}

func TestReceiverConfigValidation(t *testing.T) {
	var m store.Mem
	tests := []struct {
		name string
		cfg  core.ReceiverConfig
		ok   bool
	}{
		{"valid", core.ReceiverConfig{K: 25, Store: &m}, true},
		{"baseline", core.ReceiverConfig{Baseline: true}, true},
		{"missing K", core.ReceiverConfig{Store: &m}, false},
		{"missing store", core.ReceiverConfig{K: 25}, false},
		{"negative W", core.ReceiverConfig{K: 25, Store: &m, W: -1}, false},
		{"negative buffer", core.ReceiverConfig{K: 25, Store: &m, WakeBuffer: -1}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := core.NewReceiver(tt.cfg)
			if tt.ok && err != nil {
				t.Errorf("NewReceiver = %v, want nil", err)
			}
			if !tt.ok && !errors.Is(err, core.ErrConfig) {
				t.Errorf("NewReceiver = %v, want ErrConfig", err)
			}
		})
	}
}

func TestSenderSequencesAndSaveTrigger(t *testing.T) {
	var m store.Mem
	sv := newManualSaver(&m)
	s := mustSender(t, core.SenderConfig{K: 5, Store: &m, Saver: sv})

	for want := uint64(1); want <= 5; want++ {
		seq, err := s.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if seq != want {
			t.Fatalf("Next = %d, want %d", seq, want)
		}
	}
	// After sending 5 messages s=6 >= K+lst=6: exactly one save started.
	if n := sv.PendingCount(); n != 1 {
		t.Fatalf("pending saves = %d, want 1", n)
	}
	if got := s.LastStored(); got != 6 {
		t.Errorf("LastStored = %d, want 6 (next-to-send at save time)", got)
	}
	sv.CommitAll(t)
	if v, _ := m.Peek(); v != 6 {
		t.Errorf("durable = %d, want 6", v)
	}

	sendN(t, s, 5) // s reaches 11 -> second save
	if n := sv.PendingCount(); n != 1 {
		t.Fatalf("pending saves = %d, want 1", n)
	}
	sv.CommitAll(t)
	if v, _ := m.Peek(); v != 11 {
		t.Errorf("durable = %d, want 11", v)
	}
	st := s.Stats()
	if st.Sent != 10 || st.SavesStarted != 2 || st.SavesOK != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSenderResetAfterSaveCompleted(t *testing.T) {
	// Fig. 1, second case: reset occurs after SAVE(s) finished; the gap is
	// at most Kp, and the leap of 2Kp lands strictly above every used seq.
	const k = 5
	var m store.Mem
	sv := newManualSaver(&m)
	s := mustSender(t, core.SenderConfig{K: k, Store: &m, Saver: sv})

	sendN(t, s, k) // triggers SAVE(6)
	sv.CommitAll(t)
	lastUsed := sendN(t, s, 3) // seqs 6,7,8 used; durable stays 6

	s.Reset()
	s.Wake()
	sv.CommitAll(t) // post-wake SAVE

	if got := s.State(); got != core.StateUp {
		t.Fatalf("State = %v, want up (wake err: %v)", got, s.LastWakeError())
	}
	resume := s.Seq()
	if want := uint64(6 + 2*k); resume != want {
		t.Errorf("resume seq = %d, want %d (fetched 6 + leap 10)", resume, want)
	}
	if resume <= lastUsed {
		t.Errorf("resume seq %d not fresh (last used %d)", resume, lastUsed)
	}
	if lost := resume - lastUsed - 1; lost > 2*k {
		t.Errorf("lost %d sequence numbers, bound is %d", lost, 2*k)
	}
}

func TestSenderResetDuringSave(t *testing.T) {
	// Fig. 1, first case: reset strikes before SAVE(s) commits; FETCH
	// returns the previous durable value (gap up to 2Kp) and the 2Kp leap
	// still lands strictly above every used sequence number.
	const k = 5
	var m store.Mem
	sv := newManualSaver(&m)
	s := mustSender(t, core.SenderConfig{K: k, Store: &m, Saver: sv})

	sendN(t, s, k) // SAVE(6) pending
	sv.CommitAll(t)
	sendN(t, s, k) // SAVE(11) pending, NOT committed
	lastUsed := sendN(t, s, k-1)
	if lastUsed != 2*k+k-1 {
		t.Fatalf("last used = %d, want %d", lastUsed, 2*k+k-1)
	}

	s.Reset() // cancels the in-flight SAVE(11)
	if sv.PendingCount() != 0 {
		t.Fatal("reset must cancel in-flight saves")
	}
	s.Wake()
	sv.CommitAll(t)

	resume := s.Seq()
	if want := uint64(6 + 2*k); resume != want {
		t.Errorf("resume seq = %d, want %d (fetched stale 6 + leap 10)", resume, want)
	}
	if resume <= lastUsed {
		t.Errorf("SAFETY: resume seq %d reuses a sequence number (last used %d)", resume, lastUsed)
	}
}

func TestSenderWorstCaseLossBound(t *testing.T) {
	// §5 condition (i): the number of lost sequence numbers is bounded by
	// 2Kp, with the worst case when the reset strikes immediately after a
	// save starts.
	for _, k := range []uint64{1, 5, 25, 100} {
		var m store.Mem
		sv := newManualSaver(&m)
		s := mustSender(t, core.SenderConfig{K: k, Store: &m, Saver: sv})

		sendN(t, s, int(k)) // SAVE(k+1) pending
		sv.CommitAll(t)
		lastUsed := uint64(k) // seqs 1..k used

		s.Reset()
		s.Wake()
		sv.CommitAll(t)

		resume := s.Seq()
		lost := resume - lastUsed - 1
		if lost > 2*k {
			t.Errorf("K=%d: lost %d > bound %d", k, lost, 2*k)
		}
		if lost != 2*k {
			t.Errorf("K=%d: lost %d, want exactly 2K=%d in this worst case", k, lost, 2*k)
		}
	}
}

func TestSenderDownAndWaking(t *testing.T) {
	var m store.Mem
	sv := newManualSaver(&m)
	s := mustSender(t, core.SenderConfig{K: 5, Store: &m, Saver: sv})

	s.Reset()
	if _, err := s.Next(); !errors.Is(err, core.ErrDown) {
		t.Errorf("Next while down = %v, want ErrDown", err)
	}
	s.Wake() // post-wake save pending: still cannot send
	if got := s.State(); got != core.StateWaking {
		t.Fatalf("State = %v, want waking", got)
	}
	if _, err := s.Next(); !errors.Is(err, core.ErrWaking) {
		t.Errorf("Next while waking = %v, want ErrWaking", err)
	}
	sv.CommitAll(t)
	if _, err := s.Next(); err != nil {
		t.Errorf("Next after wake = %v, want nil", err)
	}
}

func TestSenderBaselineWakeRestartsAtOne(t *testing.T) {
	s := mustSender(t, core.SenderConfig{Baseline: true})
	sendN(t, s, 100)
	s.Reset()
	s.Wake()
	seq, err := s.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if seq != 1 {
		t.Errorf("baseline resume seq = %d, want 1 (the §3 vulnerability)", seq)
	}
}

func TestSenderWakeIdempotentWhenUp(t *testing.T) {
	var m store.Mem
	s := mustSender(t, core.SenderConfig{K: 5, Store: &m})
	before := s.Seq()
	s.Wake() // not down: no-op
	if s.Seq() != before || s.State() != core.StateUp {
		t.Error("Wake on an up endpoint must be a no-op")
	}
}

func TestSenderDoubleResetBeforePostWakeSave(t *testing.T) {
	// §4 "second consideration": a second reset before the post-wake SAVE
	// completes. Because the sender waits for that SAVE, no sequence number
	// is handed out in between, and the second wake leaps again from the
	// old durable value — fresh but farther.
	const k = 5
	var m store.Mem
	sv := newManualSaver(&m)
	s := mustSender(t, core.SenderConfig{K: k, Store: &m, Saver: sv})

	lastUsed := sendN(t, s, int(k))
	sv.CommitAll(t) // durable 6

	s.Reset()
	s.Wake() // SAVE(16) pending
	s.Reset()
	if sv.PendingCount() != 0 {
		t.Fatal("second reset must cancel the post-wake save")
	}
	s.Wake()
	sv.CommitAll(t)

	resume := s.Seq()
	if want := uint64(6 + 2*k); resume != want {
		t.Errorf("resume = %d, want %d (fetch durable 6, leap again)", resume, want)
	}
	if resume <= lastUsed {
		t.Errorf("SAFETY: resume %d reuses a sequence number (last used %d)", resume, lastUsed)
	}
}

func TestSenderDoubleResetAfterPostWakeSaveCommitted(t *testing.T) {
	const k = 5
	var m store.Mem
	sv := newManualSaver(&m)
	s := mustSender(t, core.SenderConfig{K: k, Store: &m, Saver: sv})

	sendN(t, s, int(k))
	sv.CommitAll(t) // durable 6

	s.Reset()
	s.Wake()
	sv.CommitAll(t) // durable 16, resumed at 16
	lastUsed := sendN(t, s, 2)

	s.Reset()
	s.Wake()
	sv.CommitAll(t)
	resume := s.Seq()
	if want := uint64(16 + 2*k); resume != want {
		t.Errorf("resume = %d, want %d", resume, want)
	}
	if resume <= lastUsed {
		t.Errorf("SAFETY: resume %d <= last used %d", resume, lastUsed)
	}
}

func TestSenderWakeFetchFailureStaysDown(t *testing.T) {
	var m store.Mem
	f := store.NewFaulty(&m)
	s := mustSender(t, core.SenderConfig{K: 5, Store: f})
	s.Reset()
	f.CorruptFetches(1)
	s.Wake()
	if got := s.State(); got != core.StateDown {
		t.Fatalf("State = %v, want down after fetch failure", got)
	}
	if err := s.LastWakeError(); !errors.Is(err, store.ErrInjected) {
		t.Errorf("LastWakeError = %v, want wrapped ErrInjected", err)
	}
	// A later wake with healthy storage succeeds.
	s.Wake()
	if got := s.State(); got != core.StateUp {
		t.Errorf("State = %v, want up after retry", got)
	}
}

func TestSenderWakePostSaveFailureStaysDown(t *testing.T) {
	var m store.Mem
	sv := newManualSaver(&m)
	s := mustSender(t, core.SenderConfig{K: 5, Store: &m, Saver: sv})
	s.Reset()
	s.Wake()
	if !sv.FailNext(errors.New("disk on fire")) {
		t.Fatal("no pending post-wake save")
	}
	if got := s.State(); got != core.StateDown {
		t.Fatalf("State = %v, want down after post-wake save failure", got)
	}
	if s.LastWakeError() == nil {
		t.Error("LastWakeError = nil, want error")
	}
}

func TestSenderBackgroundSaveFailureRetries(t *testing.T) {
	const k = 5
	var m store.Mem
	sv := newManualSaver(&m)
	s := mustSender(t, core.SenderConfig{K: k, Store: &m, Saver: sv})

	sendN(t, s, int(k)) // SAVE(6) pending
	if !sv.FailNext(errors.New("transient")) {
		t.Fatal("no pending save")
	}
	if got := s.Stats().SavesFailed; got != 1 {
		t.Fatalf("SavesFailed = %d, want 1", got)
	}
	// lst rolled back to the durable value, so the very next send
	// re-triggers a save.
	sendN(t, s, 1)
	if n := sv.PendingCount(); n != 1 {
		t.Fatalf("pending saves after retry = %d, want 1", n)
	}
	sv.CommitAll(t)
	if v, _ := m.Peek(); v != 7 {
		t.Errorf("durable = %d, want 7", v)
	}
}

// ghostStore accepts saves but never returns a value: it models persistent
// memory that was wiped between the reset and the wake-up.
type ghostStore struct{}

func (ghostStore) Save(uint64) error            { return nil }
func (ghostStore) Fetch() (uint64, bool, error) { return 0, false, nil }

func TestSenderNoSavedStateError(t *testing.T) {
	s := mustSender(t, core.SenderConfig{K: 5, Store: ghostStore{}})
	s.Reset()
	s.Wake()
	if err := s.LastWakeError(); !errors.Is(err, core.ErrNoSavedState) {
		t.Errorf("LastWakeError = %v, want ErrNoSavedState", err)
	}
	if got := s.State(); got != core.StateDown {
		t.Errorf("State = %v, want down", got)
	}
}

func TestStateString(t *testing.T) {
	tests := []struct {
		s    core.State
		want string
	}{
		{core.StateUp, "up"},
		{core.StateDown, "down"},
		{core.StateWaking, "waking"},
		{core.State(0), "state(0)"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("State(%d) = %q, want %q", tt.s, got, tt.want)
		}
	}
}

func TestLeap(t *testing.T) {
	tests := []struct {
		k      uint64
		factor float64
		want   uint64
	}{
		{25, 2, 50},
		{25, 1, 25},
		{25, 1.5, 38},
		{25, 0.5, 13},
		{25, -1, 0},
		{0, 2, 0},
		{1, 2, 2},
	}
	for _, tt := range tests {
		if got := core.Leap(tt.k, tt.factor); got != tt.want {
			t.Errorf("Leap(%d, %g) = %d, want %d", tt.k, tt.factor, got, tt.want)
		}
	}
}

func TestSenderTraceEvents(t *testing.T) {
	var m store.Mem
	tc := trace.NewCollector(64)
	s := mustSender(t, core.SenderConfig{K: 2, Store: &m, Trace: tc, Name: "p"})
	sendN(t, s, 4)
	if got := tc.Count(trace.KindSend); got != 4 {
		t.Errorf("send events = %d, want 4", got)
	}
	if got := tc.Count(trace.KindSaveStart); got < 1 {
		t.Errorf("save-start events = %d, want >= 1", got)
	}
	s.Reset()
	s.Wake()
	if got := tc.Count(trace.KindReset); got != 1 {
		t.Errorf("reset events = %d, want 1", got)
	}
	if got := tc.Count(trace.KindWakeDone); got != 1 {
		t.Errorf("wake-done events = %d, want 1", got)
	}
	for _, ev := range tc.Events() {
		if ev.Node != "p" {
			t.Fatalf("event %+v has node %q, want p", ev, ev.Node)
		}
	}
}

func TestVerdictStringsAndDelivered(t *testing.T) {
	tests := []struct {
		v         core.Verdict
		want      string
		delivered bool
	}{
		{core.VerdictNew, "new", true},
		{core.VerdictInWindow, "in-window", true},
		{core.VerdictDuplicate, "duplicate", false},
		{core.VerdictStale, "stale", false},
		{core.VerdictBuffered, "buffered", false},
		{core.VerdictOverflow, "overflow", false},
		{core.VerdictDown, "down", false},
		{core.VerdictHorizon, "horizon", false},
	}
	for _, tt := range tests {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("Verdict.String = %q, want %q", got, tt.want)
		}
		if got := tt.v.Delivered(); got != tt.delivered {
			t.Errorf("Verdict(%v).Delivered = %v, want %v", tt.v, got, tt.delivered)
		}
	}
	if !strings.HasPrefix(core.Verdict(99).String(), "verdict(") {
		t.Error("invalid verdict should format as verdict(n)")
	}
}
