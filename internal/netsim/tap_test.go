package netsim

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLinkTapRegistrationRace is the -race regression for the missed-tap
// race: Link.Tap used to append to the tap slice with no synchronization
// while Send (on the engine's goroutine) iterated it — the exact shape
// of an adversary attaching its Recorder wiretap to a live link from a
// campaign goroutine. Tap and Send must agree on the slice through the
// link's mutex, and a Tap that has returned must be visible to every
// subsequent Send.
func TestLinkTapRegistrationRace(t *testing.T) {
	e := NewEngine(1)
	link := NewLink(e, LinkConfig{Delay: time.Microsecond}, func(int) {})

	stop := make(chan struct{})
	var observed atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 64; i++ {
			select {
			case <-stop:
				return
			default:
			}
			link.Tap(func(int) { observed.Add(1) })
		}
	}()
	for i := 0; i < 512; i++ {
		link.Send(i)
	}
	close(stop)
	wg.Wait()

	// Sequential visibility: a tap registered after traffic stops sees
	// the next Send exactly once.
	var late atomic.Uint64
	link.Tap(func(int) { late.Add(1) })
	link.Send(999)
	if got := late.Load(); got != 1 {
		t.Fatalf("late tap saw %d sends, want 1", got)
	}
}
