package netsim

import (
	"fmt"
	"sync"
	"time"
)

// LinkConfig sets the impairment model of a unidirectional link.
type LinkConfig struct {
	// Delay is the base propagation delay applied to every message.
	Delay time.Duration
	// Jitter adds a uniform random delay in [0, Jitter).
	Jitter time.Duration
	// LossProb is the probability a message is dropped.
	LossProb float64
	// DupProb is the probability a message is delivered twice (the network
	// duplicate arrives after an extra jitter sample).
	DupProb float64
	// ReorderProb is the probability a message is held back by an extra
	// uniform delay in (0, ReorderDelay], letting later traffic overtake it.
	ReorderProb float64
	// ReorderDelay bounds the extra hold-back delay. Together with the send
	// rate it bounds the reorder degree the link can induce.
	ReorderDelay time.Duration
	// MTU, when positive, drops (and counts as Oversize) messages larger
	// than MTU bytes. Size is defined for []byte-carrying links (the wire
	// layer's); messages of other types are never oversize. Keeping the
	// drop in the simulated link makes simulated and real transports agree
	// on when fragmentation must trigger.
	MTU int
}

// Validate reports configuration errors.
func (c LinkConfig) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"LossProb", c.LossProb},
		{"DupProb", c.DupProb},
		{"ReorderProb", c.ReorderProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("netsim: %s = %v out of [0,1]", p.name, p.v)
		}
	}
	if c.Delay < 0 || c.Jitter < 0 || c.ReorderDelay < 0 {
		return fmt.Errorf("netsim: negative duration in link config")
	}
	if c.ReorderProb > 0 && c.ReorderDelay == 0 {
		return fmt.Errorf("netsim: ReorderProb > 0 requires ReorderDelay > 0")
	}
	if c.MTU < 0 {
		return fmt.Errorf("netsim: MTU = %d must be >= 0", c.MTU)
	}
	return nil
}

// LinkStats counts what the link did to traffic.
type LinkStats struct {
	Sent       uint64 // messages handed to Send
	Injected   uint64 // messages handed to Inject
	Lost       uint64
	Duplicated uint64
	Reordered  uint64
	Oversize   uint64 // messages dropped for exceeding the configured MTU
	Delivered  uint64 // deliveries performed (including duplicates, injections)
}

// Link is a unidirectional impaired channel carrying values of type T into a
// delivery callback. Taps observe every message handed to Send (before
// impairment) — this is the adversary's wiretap position: it sees what the
// sender transmits, even messages the network then loses.
//
// Inject delivers a message through the same delay pipeline but bypasses
// taps and loss (the adversary controls its own injections).
type Link[T any] struct {
	engine  *Engine
	cfg     LinkConfig
	deliver func(T)

	mu    sync.Mutex
	taps  []func(T)
	stats LinkStats
}

// NewLink returns a link over engine delivering into deliver.
// It panics if cfg fails validation or deliver is nil (programmer error).
func NewLink[T any](engine *Engine, cfg LinkConfig, deliver func(T)) *Link[T] {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if deliver == nil {
		panic("netsim: nil deliver callback")
	}
	return &Link[T]{engine: engine, cfg: cfg, deliver: deliver}
}

// Tap registers fn to observe every message handed to Send. Safe to call
// while traffic is flowing: an adversary attaches its wiretap mid-run
// (campaign phases arm and disarm taps against live links).
func (l *Link[T]) Tap(fn func(T)) {
	l.mu.Lock()
	l.taps = append(l.taps, fn)
	l.mu.Unlock()
}

// Send transmits v, applying taps and the impairment model.
func (l *Link[T]) Send(v T) {
	l.mu.Lock()
	l.stats.Sent++
	taps := l.taps
	l.mu.Unlock()
	// Taps run outside the lock: a tap is allowed to call back into the
	// link (the adversary's tap->inject shape) without deadlocking.
	for _, tap := range taps {
		tap(v)
	}
	if l.cfg.MTU > 0 {
		if b, ok := any(v).([]byte); ok && len(b) > l.cfg.MTU {
			l.count(func(s *LinkStats) { s.Oversize++ })
			return
		}
	}
	rng := l.engine.Rand()
	if l.cfg.LossProb > 0 && rng.Float64() < l.cfg.LossProb {
		l.count(func(s *LinkStats) { s.Lost++ })
		return
	}
	delay := l.delay()
	if l.cfg.ReorderProb > 0 && rng.Float64() < l.cfg.ReorderProb {
		extra := time.Duration(rng.Int63n(int64(l.cfg.ReorderDelay))) + 1
		delay += extra
		l.count(func(s *LinkStats) { s.Reordered++ })
	}
	l.scheduleDelivery(v, delay)
	if l.cfg.DupProb > 0 && rng.Float64() < l.cfg.DupProb {
		l.count(func(s *LinkStats) { s.Duplicated++ })
		l.scheduleDelivery(v, delay+l.delay())
	}
}

// Inject delivers v after the base delay pipeline, bypassing taps and loss.
func (l *Link[T]) Inject(v T) {
	l.count(func(s *LinkStats) { s.Injected++ })
	l.scheduleDelivery(v, l.delay())
}

// Stats returns a snapshot of the link counters.
func (l *Link[T]) Stats() LinkStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

func (l *Link[T]) count(f func(*LinkStats)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	f(&l.stats)
}

func (l *Link[T]) delay() time.Duration {
	d := l.cfg.Delay
	if l.cfg.Jitter > 0 {
		d += time.Duration(l.engine.Rand().Int63n(int64(l.cfg.Jitter)))
	}
	return d
}

func (l *Link[T]) scheduleDelivery(v T, delay time.Duration) {
	l.engine.After(delay, func() {
		l.count(func(s *LinkStats) { s.Delivered++ })
		l.deliver(v)
	})
}
