package netsim

import (
	"antireplay/internal/store"
)

import "time"

// SimSaver models the paper's background SAVE inside the simulation: the
// durable commit and the completion callback happen saveDelay after the save
// starts, in virtual time. A reset that occurs before the commit event fires
// can cancel it (Cancel), which leaves the previously committed value in the
// store — exactly the paper's torn-save semantics, driving the "reset before
// the current SAVE finishes" branch of Figures 1 and 2.
type SimSaver struct {
	engine    *Engine
	st        store.Store
	saveDelay time.Duration
	epoch     uint64 // cancels in-flight saves when bumped
	inflight  int
	started   uint64
	committed uint64
}

// NewSimSaver returns a saver committing to st after saveDelay virtual time.
func NewSimSaver(engine *Engine, st store.Store, saveDelay time.Duration) *SimSaver {
	return &SimSaver{engine: engine, st: st, saveDelay: saveDelay}
}

// StartSave schedules the durable commit of v at now+saveDelay. done (may be
// nil) runs after the commit with its result. If Cancel intervenes, neither
// happens.
func (s *SimSaver) StartSave(v uint64, done func(error)) {
	epoch := s.epoch
	s.inflight++
	s.started++
	s.engine.After(s.saveDelay, func() {
		if s.epoch != epoch {
			return // canceled by a reset; the old durable value remains
		}
		s.inflight--
		s.committed++
		err := s.st.Save(v)
		if done != nil {
			done(err)
		}
	})
}

// Cancel discards all in-flight saves (a machine reset: the write never
// reaches the platter). Already-committed values are untouched.
func (s *SimSaver) Cancel() {
	s.epoch++
	s.inflight = 0
}

// InFlight reports whether a save is pending commit.
func (s *SimSaver) InFlight() bool { return s.inflight > 0 }

// Started and Committed report save counts for experiments.
func (s *SimSaver) Started() uint64 { return s.started }

// Committed reports how many saves reached the durable store.
func (s *SimSaver) Committed() uint64 { return s.committed }

// Delay returns the configured save latency.
func (s *SimSaver) Delay() time.Duration { return s.saveDelay }
