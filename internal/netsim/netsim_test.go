package netsim

import (
	"testing"
	"time"

	"antireplay/internal/store"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.At(30*time.Millisecond, func() { got = append(got, 3) })
	e.At(10*time.Millisecond, func() { got = append(got, 1) })
	e.At(20*time.Millisecond, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("execution order = %v, want [1 2 3]", got)
	}
	if e.Now() != 30*time.Millisecond {
		t.Errorf("Now = %v, want 30ms", e.Now())
	}
}

func TestEngineTieBreakBySchedulingOrder(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Millisecond, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events out of order: %v", got)
		}
	}
}

func TestEngineAfterAndNesting(t *testing.T) {
	e := NewEngine(1)
	var fired []time.Duration
	e.After(5*time.Millisecond, func() {
		fired = append(fired, e.Now())
		e.After(5*time.Millisecond, func() {
			fired = append(fired, e.Now())
		})
	})
	e.Run()
	if len(fired) != 2 || fired[0] != 5*time.Millisecond || fired[1] != 10*time.Millisecond {
		t.Errorf("fired = %v, want [5ms 10ms]", fired)
	}
}

func TestEnginePastSchedulesClampToNow(t *testing.T) {
	e := NewEngine(1)
	ran := false
	e.At(10*time.Millisecond, func() {
		e.At(time.Millisecond, func() { ran = true }) // in the past
	})
	e.Run()
	if !ran {
		t.Error("past-scheduled event did not run")
	}
	if e.Now() != 10*time.Millisecond {
		t.Errorf("Now = %v, want 10ms", e.Now())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine(1)
	var count int
	for i := 1; i <= 10; i++ {
		e.At(time.Duration(i)*time.Second, func() { count++ })
	}
	e.RunUntil(5 * time.Second)
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if e.Now() != 5*time.Second {
		t.Errorf("Now = %v, want 5s", e.Now())
	}
	if e.Pending() != 5 {
		t.Errorf("Pending = %d, want 5", e.Pending())
	}
	e.RunFor(2 * time.Second)
	if count != 7 {
		t.Errorf("count after RunFor = %d, want 7", count)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []uint64 {
		e := NewEngine(42)
		var out []uint64
		link := NewLink[uint64](e, LinkConfig{
			Delay:        time.Millisecond,
			Jitter:       time.Millisecond,
			LossProb:     0.2,
			DupProb:      0.1,
			ReorderProb:  0.3,
			ReorderDelay: 5 * time.Millisecond,
		}, func(v uint64) { out = append(out, v) })
		for i := uint64(1); i <= 200; i++ {
			i := i
			e.At(time.Duration(i)*100*time.Microsecond, func() { link.Send(i) })
		}
		e.Run()
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d differs: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestLinkPerfectDeliveryInOrder(t *testing.T) {
	e := NewEngine(1)
	var got []int
	link := NewLink[int](e, LinkConfig{Delay: time.Millisecond}, func(v int) {
		got = append(got, v)
	})
	for i := 1; i <= 100; i++ {
		i := i
		e.At(time.Duration(i)*time.Millisecond, func() { link.Send(i) })
	}
	e.Run()
	if len(got) != 100 {
		t.Fatalf("delivered %d, want 100", len(got))
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("out of order at %d: %v", i, v)
		}
	}
	st := link.Stats()
	if st.Sent != 100 || st.Delivered != 100 || st.Lost != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLinkLossRate(t *testing.T) {
	e := NewEngine(7)
	delivered := 0
	link := NewLink[int](e, LinkConfig{LossProb: 0.5}, func(int) { delivered++ })
	const n = 10000
	for i := 0; i < n; i++ {
		link.Send(i)
	}
	e.Run()
	if delivered < 4500 || delivered > 5500 {
		t.Errorf("delivered %d of %d with 50%% loss, want ~5000", delivered, n)
	}
	st := link.Stats()
	if st.Lost+st.Delivered != n {
		t.Errorf("lost %d + delivered %d != %d", st.Lost, st.Delivered, n)
	}
}

func TestLinkDuplication(t *testing.T) {
	e := NewEngine(7)
	count := map[int]int{}
	link := NewLink[int](e, LinkConfig{DupProb: 1}, func(v int) { count[v]++ })
	link.Send(1)
	link.Send(2)
	e.Run()
	if count[1] != 2 || count[2] != 2 {
		t.Errorf("counts = %v, want every message twice", count)
	}
}

func TestLinkReorder(t *testing.T) {
	e := NewEngine(3)
	var got []int
	link := NewLink[int](e, LinkConfig{
		Delay:        time.Millisecond,
		ReorderProb:  0.5,
		ReorderDelay: 20 * time.Millisecond,
	}, func(v int) { got = append(got, v) })
	for i := 1; i <= 500; i++ {
		i := i
		e.At(time.Duration(i)*time.Millisecond, func() { link.Send(i) })
	}
	e.Run()
	if len(got) != 500 {
		t.Fatalf("delivered %d, want 500", len(got))
	}
	inversions := 0
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			inversions++
		}
	}
	if inversions == 0 {
		t.Error("expected some reordering, saw none")
	}
	if link.Stats().Reordered == 0 {
		t.Error("Reordered counter is zero")
	}
}

func TestLinkTapSeesLostMessages(t *testing.T) {
	e := NewEngine(5)
	var tapped []int
	link := NewLink[int](e, LinkConfig{LossProb: 1}, func(int) {
		t.Error("nothing should be delivered at 100% loss")
	})
	link.Tap(func(v int) { tapped = append(tapped, v) })
	link.Send(1)
	link.Send(2)
	e.Run()
	if len(tapped) != 2 {
		t.Errorf("tap saw %d messages, want 2 (wiretap precedes loss)", len(tapped))
	}
}

func TestLinkInjectBypassesTapAndLoss(t *testing.T) {
	e := NewEngine(5)
	delivered := 0
	link := NewLink[int](e, LinkConfig{LossProb: 1}, func(int) { delivered++ })
	tapped := 0
	link.Tap(func(int) { tapped++ })
	link.Inject(99)
	e.Run()
	if delivered != 1 {
		t.Errorf("injected message delivered %d times, want 1 (bypasses loss)", delivered)
	}
	if tapped != 0 {
		t.Errorf("tap saw %d injections, want 0", tapped)
	}
	if link.Stats().Injected != 1 {
		t.Errorf("Injected = %d, want 1", link.Stats().Injected)
	}
}

func TestLinkConfigValidate(t *testing.T) {
	tests := []struct {
		name string
		cfg  LinkConfig
		ok   bool
	}{
		{"zero", LinkConfig{}, true},
		{"full", LinkConfig{Delay: time.Millisecond, Jitter: time.Millisecond,
			LossProb: 0.1, DupProb: 0.1, ReorderProb: 0.1, ReorderDelay: time.Millisecond}, true},
		{"loss too high", LinkConfig{LossProb: 1.5}, false},
		{"negative dup", LinkConfig{DupProb: -0.1}, false},
		{"negative delay", LinkConfig{Delay: -time.Millisecond}, false},
		{"reorder without delay", LinkConfig{ReorderProb: 0.5}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			if tt.ok && err != nil {
				t.Errorf("Validate = %v, want nil", err)
			}
			if !tt.ok && err == nil {
				t.Error("Validate = nil, want error")
			}
		})
	}
}

func TestNewLinkPanicsOnBadConfig(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Error("NewLink with bad config should panic")
		}
	}()
	NewLink[int](e, LinkConfig{LossProb: 2}, func(int) {})
}

func TestNewLinkPanicsOnNilDeliver(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Error("NewLink with nil deliver should panic")
		}
	}()
	NewLink[int](e, LinkConfig{}, nil)
}

func TestSimSaverCommitsAfterDelay(t *testing.T) {
	e := NewEngine(1)
	var st store.Mem
	sv := NewSimSaver(e, &st, 100*time.Microsecond)
	var doneAt time.Duration
	sv.StartSave(42, func(err error) {
		if err != nil {
			t.Errorf("save err: %v", err)
		}
		doneAt = e.Now()
	})
	if !sv.InFlight() {
		t.Error("InFlight = false during save")
	}
	if _, ok := st.Peek(); ok {
		t.Error("value committed before delay elapsed")
	}
	e.Run()
	if doneAt != 100*time.Microsecond {
		t.Errorf("done at %v, want 100µs", doneAt)
	}
	v, ok := st.Peek()
	if !ok || v != 42 {
		t.Errorf("Peek = (%d, %v), want (42, true)", v, ok)
	}
	if sv.InFlight() {
		t.Error("InFlight = true after commit")
	}
	if sv.Started() != 1 || sv.Committed() != 1 {
		t.Errorf("Started/Committed = %d/%d, want 1/1", sv.Started(), sv.Committed())
	}
}

func TestSimSaverCancelIsTornSave(t *testing.T) {
	e := NewEngine(1)
	var st store.Mem
	if err := st.Save(10); err != nil {
		t.Fatal(err)
	}
	sv := NewSimSaver(e, &st, time.Millisecond)
	called := false
	sv.StartSave(20, func(error) { called = true })
	// Reset strikes before the save commits.
	e.After(500*time.Microsecond, func() { sv.Cancel() })
	e.Run()
	if called {
		t.Error("done callback ran despite cancellation")
	}
	v, ok := st.Peek()
	if !ok || v != 10 {
		t.Errorf("Peek = (%d, %v), want old value (10, true)", v, ok)
	}
	if sv.Committed() != 0 {
		t.Errorf("Committed = %d, want 0", sv.Committed())
	}
}

func TestSimSaverNilDone(t *testing.T) {
	e := NewEngine(1)
	var st store.Mem
	sv := NewSimSaver(e, &st, time.Millisecond)
	sv.StartSave(5, nil)
	e.Run()
	if v, ok := st.Peek(); !ok || v != 5 {
		t.Errorf("Peek = (%d, %v), want (5, true)", v, ok)
	}
}

func TestSimSaverDelayAccessor(t *testing.T) {
	sv := NewSimSaver(NewEngine(1), &store.Mem{}, 7*time.Millisecond)
	if sv.Delay() != 7*time.Millisecond {
		t.Errorf("Delay = %v, want 7ms", sv.Delay())
	}
}

func TestLinkConfigValidateMTU(t *testing.T) {
	if err := (LinkConfig{MTU: 1500}).Validate(); err != nil {
		t.Errorf("MTU 1500: Validate = %v, want nil", err)
	}
	if err := (LinkConfig{MTU: -1}).Validate(); err == nil {
		t.Error("MTU -1: Validate = nil, want error")
	}
}

func TestLinkMTUDropsOversize(t *testing.T) {
	e := NewEngine(1)
	var got [][]byte
	link := NewLink[[]byte](e, LinkConfig{MTU: 64}, func(v []byte) { got = append(got, v) })
	link.Send(make([]byte, 64)) // at the MTU: carried
	link.Send(make([]byte, 65)) // over: dropped and counted
	e.Run()
	if len(got) != 1 || len(got[0]) != 64 {
		t.Fatalf("delivered %d messages", len(got))
	}
	st := link.Stats()
	if st.Oversize != 1 || st.Sent != 2 || st.Delivered != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLinkMTUIgnoresNonByteMessages(t *testing.T) {
	// Size is only defined for []byte-carrying links; other types are
	// never oversize.
	e := NewEngine(1)
	var got []uint64
	link := NewLink[uint64](e, LinkConfig{MTU: 1}, func(v uint64) { got = append(got, v) })
	link.Send(1 << 40)
	e.Run()
	if len(got) != 1 {
		t.Fatalf("delivered %d messages", len(got))
	}
	if st := link.Stats(); st.Oversize != 0 {
		t.Errorf("Oversize = %d on a non-[]byte link", st.Oversize)
	}
}

func TestLinkStatsDeterministicAcrossRuns(t *testing.T) {
	// Same seed => identical LinkStats, bit for bit; a different seed must
	// disturb at least one impairment counter.
	run := func(seed int64) LinkStats {
		e := NewEngine(seed)
		link := NewLink[[]byte](e, LinkConfig{
			Delay:        time.Millisecond,
			Jitter:       time.Millisecond,
			LossProb:     0.2,
			DupProb:      0.15,
			ReorderProb:  0.25,
			ReorderDelay: 5 * time.Millisecond,
			MTU:          256,
		}, func([]byte) {})
		for i := 0; i < 500; i++ {
			n := 16 + (i*37)%400 // some above the MTU, deterministically
			i := i
			e.At(time.Duration(i)*50*time.Microsecond, func() { link.Send(make([]byte, n)) })
		}
		e.Run()
		return link.Stats()
	}
	a, b := run(42), run(42)
	if a != b {
		t.Fatalf("same seed, stats differ:\n%+v\n%+v", a, b)
	}
	if c := run(43); c == a {
		t.Fatalf("different seed, identical stats: %+v", c)
	}
	if a.Oversize == 0 || a.Lost == 0 || a.Duplicated == 0 || a.Reordered == 0 {
		t.Fatalf("impairments not exercised: %+v", a)
	}
}
