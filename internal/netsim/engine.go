// Package netsim is a deterministic discrete-event network simulator: a
// virtual clock with an event queue, and point-to-point links that apply
// configurable latency, jitter, loss, duplication, and reordering.
//
// Determinism: all randomness flows from a single seeded source owned by the
// Engine, and simultaneous events fire in scheduling order, so a simulation
// with the same seed and inputs replays identically. This is what lets the
// experiment harness regenerate the paper's figures bit-for-bit.
//
// The engine is single-goroutine by design (callers drive it with Run/Step);
// the live-goroutine execution mode of the protocol lives in the endpoints,
// not here.
package netsim

import (
	"container/heap"
	"math/rand"
	"time"
)

// Engine is a discrete-event scheduler over a virtual clock.
type Engine struct {
	now    time.Duration
	events eventHeap
	nextID uint64
	rng    *rand.Rand
}

// NewEngine returns an engine whose randomness derives from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at virtual time t. Times in the past run at the
// current time (still after already-queued events for that instant).
func (e *Engine) At(t time.Duration, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.nextID++
	heap.Push(&e.events, &event{at: t, id: e.nextID, fn: fn})
}

// After schedules fn to run d from now.
func (e *Engine) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// Step executes the earliest pending event, advancing the clock to it.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	ev.fn()
	return true
}

// Run executes events until the queue is empty. Protocols that generate
// unbounded traffic must bound themselves (see RunUntil) or the call will
// not return.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes all events scheduled at or before t, then advances the
// clock to t.
func (e *Engine) RunUntil(t time.Duration) {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor executes all events within d from the current time.
func (e *Engine) RunFor(d time.Duration) { e.RunUntil(e.now + d) }

// event is one scheduled callback; id breaks ties so that events scheduled
// for the same instant fire in scheduling order.
type event struct {
	at time.Duration
	id uint64
	fn func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].id < h[j].id
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
