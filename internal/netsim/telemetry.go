package netsim

import "antireplay/internal/telemetry"

var _ telemetry.Collector = LinkStats{}

// CollectTelemetry emits the simulated link's delivery and impairment
// counters, so netsim-backed experiments scrape identically to the socket
// transports (wire.Stats implements the same interface).
func (s LinkStats) CollectTelemetry(emit telemetry.Emit) {
	emit("sent_total", telemetry.KindCounter, float64(s.Sent))
	emit("injected_total", telemetry.KindCounter, float64(s.Injected))
	emit("lost_total", telemetry.KindCounter, float64(s.Lost))
	emit("duplicated_total", telemetry.KindCounter, float64(s.Duplicated))
	emit("reordered_total", telemetry.KindCounter, float64(s.Reordered))
	emit("oversize_total", telemetry.KindCounter, float64(s.Oversize))
	emit("delivered_total", telemetry.KindCounter, float64(s.Delivered))
}
