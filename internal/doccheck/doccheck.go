// Package doccheck is the documentation system's lint: a markdown link
// checker that fails on references to files that do not exist. It exists
// because PR 1 shipped a README that pointed at a DESIGN.md nobody had
// written — the docs-rot class of bug that only a gate catches. The CI
// docs gate runs it via cmd-style wrapper internal/tools/mdlinkcheck, and
// docs_test.go runs the same check inside `go test` so tier-1 catches
// dangling references locally.
package doccheck

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline markdown links [text](target); reference-style
// links are rare enough here not to be worth the parser.
var linkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// CheckFile scans one markdown file and returns a description of every
// broken relative link (the target, stripped of any #fragment, does not
// exist relative to the file's directory). External schemes and pure
// fragments are skipped. A missing or unreadable file is itself an error.
func CheckFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("doccheck: %w", err)
	}
	dir := filepath.Dir(path)
	var broken []string
	for _, m := range linkRE.FindAllStringSubmatch(string(data), -1) {
		target := m[1]
		switch {
		case strings.Contains(target, "://"), strings.HasPrefix(target, "mailto:"):
			continue // external
		case strings.HasPrefix(target, "#"):
			continue // intra-document fragment
		}
		if i := strings.IndexByte(target, '#'); i >= 0 {
			target = target[:i]
		}
		if target == "" {
			continue
		}
		if _, err := os.Stat(filepath.Join(dir, target)); err != nil {
			broken = append(broken, fmt.Sprintf("%s: broken link %q", path, m[1]))
		}
	}
	return broken, nil
}

// Check runs CheckFile over every path and aggregates the findings.
func Check(paths ...string) ([]string, error) {
	var all []string
	for _, p := range paths {
		broken, err := CheckFile(p)
		if err != nil {
			return nil, err
		}
		all = append(all, broken...)
	}
	return all, nil
}
