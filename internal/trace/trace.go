// Package trace provides classified event recording and outcome counters
// for protocol simulations, experiments, and tests.
//
// A Collector accumulates per-kind counters and (optionally) a bounded ring
// of recent events. A Matrix tracks the receiver's confusion matrix between
// ground truth (fresh vs. replayed message) and verdict (delivered vs.
// discarded); the cell (TruthReplay, VerdictDelivered) is the safety
// violation the paper's protocol is designed to keep at zero.
//
// All types are safe for concurrent use. A nil *Collector and a nil *Matrix
// are valid no-op recorders, so instrumented code never needs nil checks —
// core.Sender and core.Receiver record unconditionally and production
// configurations simply leave Trace nil.
//
// Event kinds mirror the paper's protocol actions (send, deliver, the
// discard taxonomy, reset/wake, SAVE start/done/error, FETCH), so a
// collector's ring of recent events reads as an execution trace of the §4
// pseudocode; tests assert on counters per kind rather than parsing logs.
// The Matrix's four cells close the loop with the adversary package: truth
// (fresh vs. replayed transmission) comes from the harness, verdict
// (delivered vs. discarded) from the receiver, and the protocol's safety
// claim is exactly "the replay/delivered cell stays zero" while its
// liveness claim bounds the fresh/discarded cell.
package trace

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Kind classifies a protocol event.
type Kind uint8

// Event kinds. KindDeliver through KindDiscardDown are receiver verdicts;
// the Save/Fetch kinds instrument the persistence operations the paper adds.
const (
	// KindSend records a fresh message leaving the sender.
	KindSend Kind = iota + 1
	// KindDeliver records a message delivered to the application.
	KindDeliver
	// KindDiscardStale records a discard because the sequence number lies
	// below the anti-replay window (paper: s <= r-w).
	KindDiscardStale
	// KindDiscardDup records a discard because the window already marks the
	// sequence number as seen.
	KindDiscardDup
	// KindDiscardDown records a message that arrived while the node was down
	// (between reset and wake-up) and was therefore never observed.
	KindDiscardDown
	// KindDiscardHorizon records a discard by the strict durable horizon: a
	// sequence number at or beyond committed+leap, whose delivery before
	// the in-flight save commits could repeat after a reset.
	KindDiscardHorizon
	// KindBuffered records a message buffered during the post-wake SAVE.
	KindBuffered
	// KindBufferOverflow records a message dropped because the post-wake
	// buffer was full.
	KindBufferOverflow
	// KindSaveStart records the start of a background SAVE.
	KindSaveStart
	// KindSaveDone records the durable completion of a SAVE.
	KindSaveDone
	// KindSaveError records a failed SAVE.
	KindSaveError
	// KindFetch records a FETCH of the persisted sequence number.
	KindFetch
	// KindReset records a crash of the node.
	KindReset
	// KindWake records the node starting its wake-up sequence.
	KindWake
	// KindWakeDone records the node completing wake-up (post-wake SAVE done).
	KindWakeDone
	// KindInject records an adversary injecting a replayed message.
	KindInject
	// KindLoss records a message dropped by the network.
	KindLoss
	// KindDup records a message duplicated by the network.
	KindDup
	// KindReorder records a message delayed so that later traffic overtakes it.
	KindReorder

	kindMax // sentinel; keep last
)

var kindNames = [...]string{
	KindSend:           "send",
	KindDeliver:        "deliver",
	KindDiscardStale:   "discard-stale",
	KindDiscardDup:     "discard-dup",
	KindDiscardDown:    "discard-down",
	KindDiscardHorizon: "discard-horizon",
	KindBuffered:       "buffered",
	KindBufferOverflow: "buffer-overflow",
	KindSaveStart:      "save-start",
	KindSaveDone:       "save-done",
	KindSaveError:      "save-error",
	KindFetch:          "fetch",
	KindReset:          "reset",
	KindWake:           "wake",
	KindWakeDone:       "wake-done",
	KindInject:         "inject",
	KindLoss:           "loss",
	KindDup:            "dup",
	KindReorder:        "reorder",
}

// String returns the lower-case hyphenated name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Kinds returns all defined kinds in declaration order.
func Kinds() []Kind {
	ks := make([]Kind, 0, int(kindMax)-1)
	for k := Kind(1); k < kindMax; k++ {
		ks = append(ks, k)
	}
	return ks
}

// Event is a single recorded protocol event.
type Event struct {
	// At is the (virtual or wall-clock) time of the event.
	At time.Duration
	// Kind classifies the event.
	Kind Kind
	// Node names the endpoint the event occurred at (e.g. "p", "q").
	Node string
	// Seq is the sequence number involved, if any.
	Seq uint64
	// Note carries free-form detail.
	Note string
}

// Collector accumulates per-kind counters and an optional bounded ring of
// recent events. The zero value counts events but retains none.
type Collector struct {
	mu     sync.Mutex
	counts [kindMax]uint64
	ring   []Event
	next   int
	wrap   bool
}

// NewCollector returns a Collector retaining up to ringCap recent events.
// ringCap <= 0 retains none (counters only).
func NewCollector(ringCap int) *Collector {
	c := &Collector{}
	if ringCap > 0 {
		c.ring = make([]Event, ringCap)
	}
	return c
}

// Record registers ev. Record on a nil Collector is a no-op.
func (c *Collector) Record(ev Event) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if ev.Kind > 0 && ev.Kind < kindMax {
		c.counts[ev.Kind]++
	}
	if len(c.ring) > 0 {
		c.ring[c.next] = ev
		c.next++
		if c.next == len(c.ring) {
			c.next = 0
			c.wrap = true
		}
	}
}

// Count returns the number of events recorded with kind k.
func (c *Collector) Count(k Kind) uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if k == 0 || k >= kindMax {
		return 0
	}
	return c.counts[k]
}

// Total returns the number of events recorded across all kinds.
func (c *Collector) Total() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var t uint64
	for _, n := range c.counts {
		t += n
	}
	return t
}

// Events returns the retained events in chronological order of recording.
func (c *Collector) Events() []Event {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.ring) == 0 {
		return nil
	}
	var out []Event
	if c.wrap {
		out = make([]Event, 0, len(c.ring))
		out = append(out, c.ring[c.next:]...)
		out = append(out, c.ring[:c.next]...)
	} else {
		out = make([]Event, c.next)
		copy(out, c.ring[:c.next])
	}
	return out
}

// Reset clears all counters and retained events.
func (c *Collector) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.counts = [kindMax]uint64{}
	c.next = 0
	c.wrap = false
	for i := range c.ring {
		c.ring[i] = Event{}
	}
}

// Snapshot returns a copy of all non-zero counters keyed by kind.
func (c *Collector) Snapshot() map[Kind]uint64 {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	m := make(map[Kind]uint64)
	for k := Kind(1); k < kindMax; k++ {
		if n := c.counts[k]; n > 0 {
			m[k] = n
		}
	}
	return m
}

// WriteCSV writes the retained events as CSV rows
// (at_ns,kind,node,seq,note) preceded by a header row.
func (c *Collector) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "at_ns,kind,node,seq,note\n"); err != nil {
		return fmt.Errorf("trace: write csv header: %w", err)
	}
	for _, ev := range c.Events() {
		_, err := fmt.Fprintf(w, "%d,%s,%s,%d,%s\n",
			ev.At.Nanoseconds(), ev.Kind, ev.Node, ev.Seq, csvEscape(ev.Note))
		if err != nil {
			return fmt.Errorf("trace: write csv row: %w", err)
		}
	}
	return nil
}

func csvEscape(s string) string {
	needsQuote := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ',', '"', '\n', '\r':
			needsQuote = true
		}
	}
	if !needsQuote {
		return s
	}
	out := make([]byte, 0, len(s)+2)
	out = append(out, '"')
	for i := 0; i < len(s); i++ {
		if s[i] == '"' {
			out = append(out, '"', '"')
			continue
		}
		out = append(out, s[i])
	}
	return string(append(out, '"'))
}
