package trace

import (
	"fmt"
	"sync"
)

// Truth is the ground-truth provenance of a message, known to the harness
// (not to the receiver): either a fresh transmission from the sender or a
// copy replayed by the adversary or duplicated by the network.
type Truth uint8

// Truth values.
const (
	// TruthFresh marks an original transmission.
	TruthFresh Truth = iota + 1
	// TruthReplay marks an adversarial replay or network duplicate.
	TruthReplay

	truthMax
)

// String returns "fresh" or "replay".
func (t Truth) String() string {
	switch t {
	case TruthFresh:
		return "fresh"
	case TruthReplay:
		return "replay"
	default:
		return fmt.Sprintf("truth(%d)", uint8(t))
	}
}

// Verdict is the receiver's decision about a message it observed.
type Verdict uint8

// Verdict values.
const (
	// VerdictDelivered means the message was passed to the application.
	VerdictDelivered Verdict = iota + 1
	// VerdictDiscarded means the message was rejected (stale or duplicate).
	VerdictDiscarded
	// VerdictUnobserved means the message never reached the receiver's
	// protocol logic (lost in the network or arrived while the node was down).
	VerdictUnobserved

	verdictMax
)

// String returns the lower-case name of the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictDelivered:
		return "delivered"
	case VerdictDiscarded:
		return "discarded"
	case VerdictUnobserved:
		return "unobserved"
	default:
		return fmt.Sprintf("verdict(%d)", uint8(v))
	}
}

// Matrix is a confusion matrix between message ground truth and receiver
// verdict. The safety property of the paper's protocol is
// Get(TruthReplay, VerdictDelivered) == 0; the liveness/efficiency
// properties bound Get(TruthFresh, VerdictDiscarded).
//
// The zero value is ready to use. A nil *Matrix is a valid no-op recorder.
type Matrix struct {
	mu sync.Mutex
	n  [truthMax][verdictMax]uint64
}

// Add records one (truth, verdict) observation. Invalid values are ignored.
func (m *Matrix) Add(t Truth, v Verdict) {
	if m == nil || t == 0 || t >= truthMax || v == 0 || v >= verdictMax {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.n[t][v]++
}

// Get returns the count for cell (t, v).
func (m *Matrix) Get(t Truth, v Verdict) uint64 {
	if m == nil || t == 0 || t >= truthMax || v == 0 || v >= verdictMax {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.n[t][v]
}

// FreshDelivered returns the count of fresh messages delivered.
func (m *Matrix) FreshDelivered() uint64 { return m.Get(TruthFresh, VerdictDelivered) }

// FreshDiscarded returns the count of fresh messages wrongly discarded.
// The paper bounds this by 2*Kq after a receiver reset.
func (m *Matrix) FreshDiscarded() uint64 { return m.Get(TruthFresh, VerdictDiscarded) }

// ReplayAccepted returns the count of replayed messages delivered.
// This is the safety violation; it must be zero under the paper's protocol.
func (m *Matrix) ReplayAccepted() uint64 { return m.Get(TruthReplay, VerdictDelivered) }

// ReplayDiscarded returns the count of replayed messages correctly rejected.
func (m *Matrix) ReplayDiscarded() uint64 { return m.Get(TruthReplay, VerdictDiscarded) }

// Reset zeroes the matrix.
func (m *Matrix) Reset() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.n = [truthMax][verdictMax]uint64{}
}

// String summarizes the matrix on one line.
func (m *Matrix) String() string {
	if m == nil {
		return "trace.Matrix(nil)"
	}
	return fmt.Sprintf(
		"fresh{delivered:%d discarded:%d unobserved:%d} replay{accepted:%d discarded:%d unobserved:%d}",
		m.Get(TruthFresh, VerdictDelivered),
		m.Get(TruthFresh, VerdictDiscarded),
		m.Get(TruthFresh, VerdictUnobserved),
		m.Get(TruthReplay, VerdictDelivered),
		m.Get(TruthReplay, VerdictDiscarded),
		m.Get(TruthReplay, VerdictUnobserved),
	)
}
