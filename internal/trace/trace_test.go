package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCollectorCounts(t *testing.T) {
	c := NewCollector(0)
	for i := 0; i < 5; i++ {
		c.Record(Event{Kind: KindSend, Seq: uint64(i)})
	}
	c.Record(Event{Kind: KindDeliver, Seq: 1})
	c.Record(Event{Kind: KindDiscardDup, Seq: 1})

	if got := c.Count(KindSend); got != 5 {
		t.Errorf("Count(KindSend) = %d, want 5", got)
	}
	if got := c.Count(KindDeliver); got != 1 {
		t.Errorf("Count(KindDeliver) = %d, want 1", got)
	}
	if got := c.Count(KindReset); got != 0 {
		t.Errorf("Count(KindReset) = %d, want 0", got)
	}
	if got := c.Total(); got != 7 {
		t.Errorf("Total() = %d, want 7", got)
	}
}

func TestCollectorNilSafe(t *testing.T) {
	var c *Collector
	c.Record(Event{Kind: KindSend}) // must not panic
	if got := c.Count(KindSend); got != 0 {
		t.Errorf("nil Count = %d, want 0", got)
	}
	if got := c.Total(); got != 0 {
		t.Errorf("nil Total = %d, want 0", got)
	}
	if got := c.Events(); got != nil {
		t.Errorf("nil Events = %v, want nil", got)
	}
	if got := c.Snapshot(); got != nil {
		t.Errorf("nil Snapshot = %v, want nil", got)
	}
	c.Reset() // must not panic
}

func TestCollectorRingOrder(t *testing.T) {
	c := NewCollector(3)
	for i := 1; i <= 5; i++ {
		c.Record(Event{Kind: KindSend, Seq: uint64(i)})
	}
	evs := c.Events()
	if len(evs) != 3 {
		t.Fatalf("len(Events) = %d, want 3", len(evs))
	}
	for i, want := range []uint64{3, 4, 5} {
		if evs[i].Seq != want {
			t.Errorf("Events()[%d].Seq = %d, want %d", i, evs[i].Seq, want)
		}
	}
}

func TestCollectorRingPartial(t *testing.T) {
	c := NewCollector(10)
	c.Record(Event{Kind: KindSend, Seq: 1})
	c.Record(Event{Kind: KindSend, Seq: 2})
	evs := c.Events()
	if len(evs) != 2 {
		t.Fatalf("len(Events) = %d, want 2", len(evs))
	}
	if evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Errorf("Events() seqs = %d,%d, want 1,2", evs[0].Seq, evs[1].Seq)
	}
}

func TestCollectorReset(t *testing.T) {
	c := NewCollector(4)
	c.Record(Event{Kind: KindSend})
	c.Reset()
	if c.Total() != 0 {
		t.Errorf("Total after Reset = %d, want 0", c.Total())
	}
	if len(c.Events()) != 0 {
		t.Errorf("Events after Reset = %v, want empty", c.Events())
	}
}

func TestCollectorSnapshot(t *testing.T) {
	c := NewCollector(0)
	c.Record(Event{Kind: KindSend})
	c.Record(Event{Kind: KindSend})
	c.Record(Event{Kind: KindLoss})
	snap := c.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("len(Snapshot) = %d, want 2", len(snap))
	}
	if snap[KindSend] != 2 || snap[KindLoss] != 1 {
		t.Errorf("Snapshot = %v, want send:2 loss:1", snap)
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector(16)
	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Record(Event{Kind: KindSend, Seq: uint64(i)})
			}
		}()
	}
	wg.Wait()
	if got := c.Count(KindSend); got != goroutines*perG {
		t.Errorf("Count = %d, want %d", got, goroutines*perG)
	}
}

func TestKindString(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{KindSend, "send"},
		{KindDiscardStale, "discard-stale"},
		{KindWakeDone, "wake-done"},
		{Kind(0), "kind(0)"},
		{Kind(200), "kind(200)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tt.k, got, tt.want)
		}
	}
}

func TestKindsAllNamed(t *testing.T) {
	for _, k := range Kinds() {
		if strings.HasPrefix(k.String(), "kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	c := NewCollector(8)
	c.Record(Event{At: 5 * time.Microsecond, Kind: KindSend, Node: "p", Seq: 7})
	c.Record(Event{At: 9 * time.Microsecond, Kind: KindDeliver, Node: "q", Seq: 7, Note: `says "hi", ok`})
	var sb strings.Builder
	if err := c.WriteCSV(&sb); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got := sb.String()
	want := "at_ns,kind,node,seq,note\n" +
		"5000,send,p,7,\n" +
		"9000,deliver,q,7,\"says \"\"hi\"\", ok\"\n"
	if got != want {
		t.Errorf("WriteCSV:\n got %q\nwant %q", got, want)
	}
}

func TestMatrix(t *testing.T) {
	var m Matrix
	m.Add(TruthFresh, VerdictDelivered)
	m.Add(TruthFresh, VerdictDelivered)
	m.Add(TruthFresh, VerdictDiscarded)
	m.Add(TruthReplay, VerdictDiscarded)
	m.Add(TruthReplay, VerdictDelivered)

	if got := m.FreshDelivered(); got != 2 {
		t.Errorf("FreshDelivered = %d, want 2", got)
	}
	if got := m.FreshDiscarded(); got != 1 {
		t.Errorf("FreshDiscarded = %d, want 1", got)
	}
	if got := m.ReplayAccepted(); got != 1 {
		t.Errorf("ReplayAccepted = %d, want 1", got)
	}
	if got := m.ReplayDiscarded(); got != 1 {
		t.Errorf("ReplayDiscarded = %d, want 1", got)
	}

	m.Reset()
	if got := m.ReplayAccepted(); got != 0 {
		t.Errorf("after Reset, ReplayAccepted = %d, want 0", got)
	}
}

func TestMatrixIgnoresInvalid(t *testing.T) {
	var m Matrix
	m.Add(Truth(0), VerdictDelivered)
	m.Add(TruthFresh, Verdict(0))
	m.Add(Truth(99), Verdict(99))
	if got := m.Get(TruthFresh, VerdictDelivered); got != 0 {
		t.Errorf("Get = %d, want 0", got)
	}
	if got := m.Get(Truth(99), Verdict(99)); got != 0 {
		t.Errorf("Get(invalid) = %d, want 0", got)
	}
}

func TestMatrixNilSafe(t *testing.T) {
	var m *Matrix
	m.Add(TruthFresh, VerdictDelivered)
	if got := m.ReplayAccepted(); got != 0 {
		t.Errorf("nil ReplayAccepted = %d, want 0", got)
	}
	if got := m.String(); got != "trace.Matrix(nil)" {
		t.Errorf("nil String = %q", got)
	}
	m.Reset()
}

func TestMatrixString(t *testing.T) {
	var m Matrix
	m.Add(TruthFresh, VerdictDelivered)
	m.Add(TruthReplay, VerdictUnobserved)
	s := m.String()
	if !strings.Contains(s, "delivered:1") || !strings.Contains(s, "unobserved:1") {
		t.Errorf("String() = %q, missing expected cells", s)
	}
}

func TestTruthVerdictStrings(t *testing.T) {
	if TruthFresh.String() != "fresh" || TruthReplay.String() != "replay" {
		t.Error("Truth.String mismatch")
	}
	if VerdictDelivered.String() != "delivered" ||
		VerdictDiscarded.String() != "discarded" ||
		VerdictUnobserved.String() != "unobserved" {
		t.Error("Verdict.String mismatch")
	}
	if !strings.HasPrefix(Truth(9).String(), "truth(") {
		t.Error("invalid Truth should format as truth(n)")
	}
	if !strings.HasPrefix(Verdict(9).String(), "verdict(") {
		t.Error("invalid Verdict should format as verdict(n)")
	}
}

func TestMatrixConcurrent(t *testing.T) {
	var m Matrix
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Add(TruthFresh, VerdictDelivered)
			}
		}()
	}
	wg.Wait()
	if got := m.FreshDelivered(); got != 4000 {
		t.Errorf("FreshDelivered = %d, want 4000", got)
	}
}
