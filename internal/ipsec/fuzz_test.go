package ipsec

import (
	"bytes"
	"testing"

	"antireplay/internal/core"
	"antireplay/internal/store"
)

// FuzzOpen throws arbitrary bytes at the inbound path: it must never panic
// and must never deliver anything that was not sealed with the SA's keys.
func FuzzOpen(f *testing.F) {
	var sm, rm store.Mem
	snd, err := core.NewSender(core.SenderConfig{K: 1 << 30, Store: &sm})
	if err != nil {
		f.Fatal(err)
	}
	rcv, err := core.NewReceiver(core.ReceiverConfig{K: 1 << 30, Store: &rm, W: 64})
	if err != nil {
		f.Fatal(err)
	}
	keys := KeyMaterial{
		AuthKey: bytes.Repeat([]byte{0x11}, AuthKeySize),
		EncKey:  bytes.Repeat([]byte{0x22}, EncKeySize),
	}
	out, err := NewOutboundSA(0x42, keys, snd, false, Lifetime{}, nil)
	if err != nil {
		f.Fatal(err)
	}
	in, err := NewInboundSA(0x42, keys, rcv, true, Lifetime{}, nil)
	if err != nil {
		f.Fatal(err)
	}

	// Seed with a genuine packet and mutations of it.
	genuine, err := out.Seal([]byte("seed payload"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(genuine)
	f.Add([]byte{})
	f.Add(make([]byte, headerLen+icvLen))
	truncated := genuine[:len(genuine)-1]
	f.Add(truncated)

	f.Fuzz(func(t *testing.T, wire []byte) {
		payload, verdict, err := in.Open(wire)
		if err != nil {
			return // rejected: fine
		}
		if verdict.Delivered() && !bytes.Equal(wire, genuine) {
			// Any delivered packet must be byte-identical to one actually
			// sealed (the fuzzer cannot forge the HMAC); the only sealed
			// packet in this corpus run is `genuine`, and even that one
			// delivers at most once.
			t.Fatalf("forged packet delivered: wire=%x payload=%q", wire, payload)
		}
	})
}

// FuzzParse checks the header parsers never panic on arbitrary input.
func FuzzParse(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, 7))
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, wire []byte) {
		_, _ = ParseSPI(wire)
		_, _ = ParseSeqLo(wire)
	})
}
