package ipsec

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"antireplay/internal/core"
	"antireplay/internal/store"
)

// batchGateway builds a gateway over a fresh journal with the given config;
// the journal is closed by test cleanup after the gateway.
func batchGateway(t *testing.T, cfg GatewayConfig) *Gateway {
	t.Helper()
	j, err := store.OpenJournal(filepath.Join(t.TempDir(), "gw.journal"))
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	t.Cleanup(func() { j.Close() })
	cfg.Journal = j
	g, err := NewGateway(cfg)
	if err != nil {
		t.Fatalf("NewGateway: %v", err)
	}
	t.Cleanup(func() { g.Close() })
	return g
}

// seededSender builds a sender whose durable counter already holds seed, so
// after reset+wake it resumes at seed+2K — the way a long-lived SA reaches
// the top of the sequence space without 2^32 Seal calls.
func seededSender(t *testing.T, k, seed uint64) *core.Sender {
	t.Helper()
	var m store.Mem
	if err := m.Save(seed); err != nil {
		t.Fatal(err)
	}
	snd, err := core.NewSender(core.SenderConfig{K: k, Store: &m})
	if err != nil {
		t.Fatalf("NewSender: %v", err)
	}
	snd.Reset()
	snd.Wake()
	return snd
}

// TestSealSeqExhausted is the wrap regression: a non-ESN SA seeded near
// 2^32 must seal every number up to 0xFFFFFFFF and then hard-fail with
// ErrSeqExhausted instead of truncating seq64 and reusing wire sequence
// numbers (RFC 4303 forbids the cycle).
func TestSealSeqExhausted(t *testing.T) {
	const k = 10
	snd := seededSender(t, k, math.MaxUint32-2*k-5) // resumes at 2^32 - 6
	out, err := NewOutboundSA(0x5EED, testKeys(false), snd, false, Lifetime{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint32]bool)
	sealed := 0
	for i := 0; i < 50; i++ {
		wire, err := out.Seal([]byte("p"))
		if err != nil {
			if !errors.Is(err, ErrSeqExhausted) {
				t.Fatalf("Seal %d: %v, want ErrSeqExhausted", i, err)
			}
			break
		}
		sealed++
		lo, _ := ParseSeqLo(wire)
		if seen[lo] {
			t.Fatalf("wire sequence %#x reused", lo)
		}
		seen[lo] = true
	}
	if sealed == 0 || sealed >= 50 {
		t.Fatalf("sealed %d packets, want the boundary inside (0, 50)", sealed)
	}
	// The SA stays dead: every further Seal (and SealBatch) fails.
	if _, err := out.Seal([]byte("p")); !errors.Is(err, ErrSeqExhausted) {
		t.Errorf("Seal after exhaustion = %v, want ErrSeqExhausted", err)
	}
	if _, err := out.SealBatch([][]byte{[]byte("p")}); !errors.Is(err, ErrSeqExhausted) {
		t.Errorf("SealBatch after exhaustion = %v, want ErrSeqExhausted", err)
	}
	// An ESN SA over the same region sails through: the wire half may wrap
	// because the authenticated 64-bit number does not.
	sndESN := seededSender(t, k, math.MaxUint32-2*k-5)
	outESN, err := NewOutboundSA(0x5EEE, testKeys(false), sndESN, true, Lifetime{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := outESN.Seal([]byte("p")); err != nil {
			t.Fatalf("ESN Seal %d across 2^32: %v", i, err)
		}
	}
}

// TestSealConcurrentHardBytes is the lifetime TOCTOU regression: N
// concurrent Seals against a nearly-exhausted HardBytes budget must not all
// pass the stale check. At most one packet may cross the boundary.
func TestSealConcurrentHardBytes(t *testing.T) {
	const (
		goroutines = 8
		perG       = 200
		payload    = 10
		wireLen    = payload + Overhead
	)
	hard := uint64(50 * wireLen) // far fewer than goroutines*perG packets
	snd, _ := newSenderT(t, 1<<20)
	out, err := NewOutboundSA(1, testKeys(false), snd, false, Lifetime{HardBytes: hard}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var ok, expired atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				_, err := out.Seal(make([]byte, payload))
				switch {
				case err == nil:
					ok.Add(1)
				case errors.Is(err, ErrHardExpired):
					expired.Add(1)
				default:
					t.Errorf("Seal: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	gotBytes, gotPackets := out.Counters()
	if gotBytes > hard+wireLen-1 {
		t.Errorf("bytes = %d overshot HardBytes = %d by more than one packet", gotBytes, hard)
	}
	if gotPackets != ok.Load() {
		t.Errorf("packets = %d, want %d successful seals", gotPackets, ok.Load())
	}
	if expired.Load() == 0 {
		t.Error("no Seal observed ErrHardExpired")
	}
	if out.State() != LifetimeHard {
		t.Errorf("State = %v at exhausted budget, want hard", out.State())
	}
}

// TestSealBatchRoundTrip seals a burst with SealBatch and verifies it with
// VerifyBatch, checking positional results and payload integrity.
func TestSealBatchRoundTrip(t *testing.T) {
	out, in := newPair(t, true, false)
	payloads := make([][]byte, 32)
	for i := range payloads {
		payloads[i] = []byte(fmt.Sprintf("batch payload %02d", i))
	}
	wires, err := out.SealBatch(payloads)
	if err != nil {
		t.Fatalf("SealBatch: %v", err)
	}
	if len(wires) != len(payloads) {
		t.Fatalf("sealed %d of %d", len(wires), len(payloads))
	}
	results := in.VerifyBatch(wires)
	for j, res := range results {
		if !res.Delivered() {
			t.Fatalf("result %d: verdict=%v err=%v", j, res.Verdict, res.Err)
		}
		if !bytes.Equal(res.Payload, payloads[j]) {
			t.Fatalf("result %d: payload %q, want %q", j, res.Payload, payloads[j])
		}
	}
	// Replaying the whole batch yields only discards, counted as replays.
	for j, res := range in.VerifyBatch(wires) {
		if res.Err != nil || res.Verdict.Delivered() {
			t.Fatalf("replayed result %d delivered: verdict=%v err=%v", j, res.Verdict, res.Err)
		}
	}
	_, packets, _, replays := in.Counters()
	if packets != 64 || replays != 32 {
		t.Errorf("counters: packets=%d replays=%d, want 64/32", packets, replays)
	}
	bo, po := out.Counters()
	if po != 32 {
		t.Errorf("outbound packets = %d, want 32", po)
	}
	var want uint64
	for _, p := range payloads {
		want += uint64(len(p)) + Overhead
	}
	if bo != want {
		t.Errorf("outbound bytes = %d, want %d", bo, want)
	}
}

// TestSealBatchHorizonTruncation: under StrictHorizon with saves stuck, a
// burst is cut at the durable horizon with core.ErrSaveLag, and the counters
// roll back to the packets actually sealed.
func TestSealBatchHorizonTruncation(t *testing.T) {
	var m store.Mem
	blocked := &blockedSaver{}
	snd, err := core.NewSender(core.SenderConfig{K: 10, Store: &m, Saver: blocked, StrictHorizon: true})
	if err != nil {
		t.Fatal(err)
	}
	out, err := NewOutboundSA(2, testKeys(false), snd, false, Lifetime{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	payloads := make([][]byte, 100)
	for i := range payloads {
		payloads[i] = []byte("x")
	}
	wires, err := out.SealBatch(payloads)
	if !errors.Is(err, core.ErrSaveLag) {
		t.Fatalf("SealBatch err = %v, want ErrSaveLag", err)
	}
	if len(wires) != 20 { // horizon = committed(1) + 2K(20), seq starts at 1
		t.Fatalf("sealed %d, want 20 (horizon truncation)", len(wires))
	}
	b, p := out.Counters()
	if p != 20 || b != 20*(1+Overhead) {
		t.Errorf("counters after truncation: bytes=%d packets=%d, want %d/20", b, p, 20*(1+Overhead))
	}
}

// blockedSaver never completes a save; it pins the durable horizon.
type blockedSaver struct{}

func (blockedSaver) StartSave(v uint64, done func(error)) {}

// TestGatewayBatchRoundTrip drives SealBatch/VerifyBatch through a Gateway
// with several SAs, interleaving SPIs and invalid packets in one burst.
func TestGatewayBatchRoundTrip(t *testing.T) {
	g := batchGateway(t, GatewayConfig{K: 25, W: 64})
	const nSAs = 3
	for i := 0; i < nSAs; i++ {
		spi := uint32(0x6000 + i)
		if _, err := g.AddOutbound(spi, testKeys(true), gwSelector(i)); err != nil {
			t.Fatalf("AddOutbound: %v", err)
		}
		if _, err := g.AddInbound(spi, testKeys(true)); err != nil {
			t.Fatalf("AddInbound: %v", err)
		}
	}
	// Seal one burst per SA, then interleave all bursts into one big batch.
	var wires [][]byte
	var wantPayload [][]byte
	for p := 0; p < 8; p++ {
		for i := 0; i < nSAs; i++ {
			payload := []byte(fmt.Sprintf("sa%d pkt%d", i, p))
			src, dst := gwAddr(i)
			burst, err := g.SealBatch(src, dst, [][]byte{payload})
			if err != nil {
				t.Fatalf("SealBatch sa%d: %v", i, err)
			}
			wires = append(wires, burst[0])
			wantPayload = append(wantPayload, payload)
		}
	}
	// Splice in a packet for an unknown SPI and a short packet.
	unknown := append([]byte(nil), wires[0]...)
	unknown[3] ^= 0x77
	wires = append(wires, unknown, []byte("tiny"))
	wantPayload = append(wantPayload, nil, nil)

	results := g.VerifyBatch(wires)
	if len(results) != len(wires) {
		t.Fatalf("got %d results for %d wires", len(results), len(wires))
	}
	for j, res := range results[:len(results)-2] {
		if !res.Delivered() {
			t.Fatalf("result %d: verdict=%v err=%v", j, res.Verdict, res.Err)
		}
		if !bytes.Equal(res.Payload, wantPayload[j]) {
			t.Fatalf("result %d: payload %q, want %q", j, res.Payload, wantPayload[j])
		}
	}
	if err := results[len(results)-2].Err; !errors.Is(err, ErrUnknownSPI) {
		t.Errorf("unknown-SPI result err = %v, want ErrUnknownSPI", err)
	}
	if err := results[len(results)-1].Err; !errors.Is(err, ErrShortPacket) {
		t.Errorf("short-packet result err = %v, want ErrShortPacket", err)
	}
}

// TestGatewayBatchConcurrent stress-tests the batched gateway datapath
// under -race: concurrent sealers and verifiers over multiple SAs, with
// exactly-once delivery across the whole run.
func TestGatewayBatchConcurrent(t *testing.T) {
	g := batchGateway(t, GatewayConfig{K: 50, W: 1024, NoStrictHorizon: true})
	const (
		nSAs    = 4
		bursts  = 40
		perB    = 16
		senders = 4
	)
	for i := 0; i < nSAs; i++ {
		spi := uint32(0x7000 + i)
		if _, err := g.AddOutbound(spi, testKeys(false), gwSelector(i)); err != nil {
			t.Fatalf("AddOutbound: %v", err)
		}
		if _, err := g.AddInbound(spi, testKeys(false)); err != nil {
			t.Fatalf("AddInbound: %v", err)
		}
	}
	var delivered sync.Map // payload string -> struct{}
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for b := 0; b < bursts; b++ {
				sa := (s + b) % nSAs
				payloads := make([][]byte, perB)
				for p := range payloads {
					payloads[p] = []byte(fmt.Sprintf("s%d b%d p%d", s, b, p))
				}
				src, dst := gwAddr(sa)
				wires, err := g.SealBatch(src, dst, payloads)
				if err != nil {
					t.Errorf("SealBatch: %v", err)
					return
				}
				// Verify the burst twice concurrently: every payload must be
				// delivered exactly once across both verifications.
				var inner sync.WaitGroup
				for v := 0; v < 2; v++ {
					inner.Add(1)
					go func() {
						defer inner.Done()
						for _, res := range g.VerifyBatch(wires) {
							if res.Err != nil {
								t.Errorf("VerifyBatch: %v", res.Err)
								return
							}
							if res.Delivered() {
								if _, dup := delivered.LoadOrStore(string(res.Payload), struct{}{}); dup {
									t.Errorf("payload %q delivered twice", res.Payload)
									return
								}
							}
						}
					}()
				}
				inner.Wait()
			}
		}(s)
	}
	wg.Wait()
	count := 0
	delivered.Range(func(_, _ any) bool { count++; return true })
	if want := senders * bursts * perB; count != want {
		t.Errorf("delivered %d unique payloads, want %d", count, want)
	}
}

// TestOpenConcurrentESNBoundary crosses the 2^32 subspace boundary with
// concurrent Opens under -race: the single-snapshot inference plus
// re-inference retry must deliver every packet exactly once even when a
// racing Open moves the edge mid-verification.
func TestOpenConcurrentESNBoundary(t *testing.T) {
	const k = 25
	base := uint64(1)<<32 - 200
	var sm store.Mem
	if err := sm.Save(base); err != nil {
		t.Fatal(err)
	}
	snd, err := core.NewSender(core.SenderConfig{K: k, Store: &sm})
	if err != nil {
		t.Fatal(err)
	}
	snd.Reset()
	snd.Wake()

	var rm store.Mem
	if err := rm.Save(base - k); err != nil {
		t.Fatal(err)
	}
	rcv, err := core.NewReceiver(core.ReceiverConfig{K: k, Store: &rm, W: 1024, Concurrent: true})
	if err != nil {
		t.Fatal(err)
	}
	rcv.Reset()
	rcv.Wake()

	out, err := NewOutboundSA(9, testKeys(true), snd, true, Lifetime{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewInboundSA(9, testKeys(true), rcv, true, Lifetime{}, nil)
	if err != nil {
		t.Fatal(err)
	}

	const total = 900 // crosses 2^32; stays within W so skewed goroutines never go stale
	wires := make([][]byte, total)
	for i := range wires {
		w, err := out.Seal([]byte{byte(i), byte(i >> 8)})
		if err != nil {
			t.Fatalf("Seal %d: %v", i, err)
		}
		wires[i] = w
	}
	const goroutines = 8
	var delivered sync.Map
	var wg sync.WaitGroup
	for gor := 0; gor < goroutines; gor++ {
		wg.Add(1)
		go func(gor int) {
			defer wg.Done()
			// Each goroutine walks the window-sized stream at an offset, so
			// edges race exactly around the subspace boundary.
			for i := gor; i < total; i += goroutines {
				payload, v, err := in.Open(wires[i])
				if err != nil {
					t.Errorf("Open %d: %v", i, err)
					return
				}
				if v.Delivered() {
					key := [2]byte{payload[0], payload[1]}
					if _, dup := delivered.LoadOrStore(key, struct{}{}); dup {
						t.Errorf("packet %d delivered twice", i)
						return
					}
				}
			}
		}(gor)
	}
	wg.Wait()
	count := 0
	delivered.Range(func(_, _ any) bool { count++; return true })
	if count != total {
		t.Errorf("delivered %d of %d across the boundary", count, total)
	}
	if in.Receiver().Edge() <= 1<<32 {
		t.Errorf("edge %#x did not cross 2^32", in.Receiver().Edge())
	}
}
