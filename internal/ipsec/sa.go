package ipsec

import (
	"fmt"
	"sync"
	"time"

	"antireplay/internal/core"
	"antireplay/internal/seqwin"
)

// Lifetime bounds an SA's use, after RFC 4301's soft/hard semantics: past
// the soft bound the SA should be rekeyed; past the hard bound it must not
// be used.
type Lifetime struct {
	SoftBytes uint64
	HardBytes uint64
	SoftTime  time.Duration
	HardTime  time.Duration
}

// LifetimeState classifies an SA's position in its lifetime.
type LifetimeState uint8

// Lifetime states.
const (
	// LifetimeOK means the SA is fully usable.
	LifetimeOK LifetimeState = iota + 1
	// LifetimeSoft means the SA should be rekeyed but still works.
	LifetimeSoft
	// LifetimeHard means the SA must not secure further traffic.
	LifetimeHard
)

// String returns "ok", "soft" or "hard".
func (s LifetimeState) String() string {
	switch s {
	case LifetimeOK:
		return "ok"
	case LifetimeSoft:
		return "soft"
	case LifetimeHard:
		return "hard"
	default:
		return fmt.Sprintf("lifetime(%d)", uint8(s))
	}
}

// OutboundSA secures one direction of traffic: it numbers packets through
// the reset-resilient sender and seals them. Safe for concurrent use.
type OutboundSA struct {
	spi  uint32
	keys KeyMaterial
	seq  *core.Sender
	life Lifetime
	now  func() time.Duration

	mu      sync.Mutex
	born    time.Duration
	bytes   uint64
	packets uint64
}

// NewOutboundSA builds an outbound SA. sender provides the sequence-number
// service (configure its SAVE/FETCH behaviour there); clock may be nil.
func NewOutboundSA(spi uint32, keys KeyMaterial, sender *core.Sender, life Lifetime, clock func() time.Duration) (*OutboundSA, error) {
	if err := keys.Validate(); err != nil {
		return nil, err
	}
	if sender == nil {
		return nil, fmt.Errorf("%w: nil sender", core.ErrConfig)
	}
	o := &OutboundSA{spi: spi, keys: keys, seq: sender, life: life, now: clockOrZero(clock)}
	o.born = o.now()
	return o, nil
}

// SPI returns the SA's security parameter index.
func (o *OutboundSA) SPI() uint32 { return o.spi }

// Sender exposes the underlying sequence-number sender (for reset/wake).
func (o *OutboundSA) Sender() *core.Sender { return o.seq }

// Seal encapsulates payload, assigning the next sequence number. It fails
// with core.ErrDown / core.ErrWaking while the endpoint cannot send and
// ErrHardExpired past the hard lifetime.
func (o *OutboundSA) Seal(payload []byte) ([]byte, error) {
	if o.State() == LifetimeHard {
		return nil, ErrHardExpired
	}
	seq64, err := o.seq.Next()
	if err != nil {
		return nil, err
	}
	wire, err := seal(o.keys, o.spi, seq64, payload)
	if err != nil {
		return nil, err
	}
	o.mu.Lock()
	o.bytes += uint64(len(wire))
	o.packets++
	o.mu.Unlock()
	return wire, nil
}

// State classifies the SA's lifetime position.
func (o *OutboundSA) State() LifetimeState {
	o.mu.Lock()
	bytes := o.bytes
	born := o.born
	o.mu.Unlock()
	return lifetimeState(o.life, bytes, o.now()-born)
}

// Counters returns bytes and packets sealed so far.
func (o *OutboundSA) Counters() (bytes, packets uint64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.bytes, o.packets
}

// InboundSA verifies and decapsulates one direction of traffic, admitting
// sequence numbers through the reset-resilient receiver. Safe for
// concurrent use.
type InboundSA struct {
	spi    uint32
	keys   KeyMaterial
	replay *core.Receiver
	esn    bool
	life   Lifetime
	now    func() time.Duration

	mu        sync.Mutex
	born      time.Duration
	bytes     uint64
	packets   uint64
	authFails uint64
	replays   uint64
}

// NewInboundSA builds an inbound SA. receiver provides the anti-replay
// service; esn enables 64-bit extended sequence number reconstruction.
func NewInboundSA(spi uint32, keys KeyMaterial, receiver *core.Receiver, esn bool, life Lifetime, clock func() time.Duration) (*InboundSA, error) {
	if err := keys.Validate(); err != nil {
		return nil, err
	}
	if receiver == nil {
		return nil, fmt.Errorf("%w: nil receiver", core.ErrConfig)
	}
	i := &InboundSA{spi: spi, keys: keys, replay: receiver, esn: esn, life: life, now: clockOrZero(clock)}
	i.born = i.now()
	return i, nil
}

// SPI returns the SA's security parameter index.
func (i *InboundSA) SPI() uint32 { return i.spi }

// Receiver exposes the underlying anti-replay receiver (for reset/wake).
func (i *InboundSA) Receiver() *core.Receiver { return i.replay }

// Open verifies wire bytes and returns the payload. The verdict reports the
// anti-replay decision; payload is non-nil only when verdict.Delivered().
// Following RFC 4303 the ICV is verified before the window is updated, so
// forged traffic cannot move the window; replayed-but-authentic traffic is
// then rejected by the window.
func (i *InboundSA) Open(wire []byte) ([]byte, core.Verdict, error) {
	if i.State() == LifetimeHard {
		return nil, 0, ErrHardExpired
	}
	if len(wire) < headerLen+icvLen {
		return nil, 0, fmt.Errorf("%w: %d bytes", ErrShortPacket, len(wire))
	}
	spi, _ := ParseSPI(wire)
	if spi != i.spi {
		return nil, 0, fmt.Errorf("%w: packet SPI %#x, SA SPI %#x", ErrUnknownSPI, spi, i.spi)
	}
	lo, _ := ParseSeqLo(wire)
	seq64 := uint64(lo)
	if i.esn {
		seq64 = seqwin.InferESN(i.replay.Edge(), lo, i.replay.W())
	}
	payload, err := open(i.keys, i.spi, seq64, wire)
	if err != nil {
		i.mu.Lock()
		i.authFails++
		i.mu.Unlock()
		return nil, 0, err
	}
	verdict := i.replay.Admit(seq64)
	i.mu.Lock()
	i.bytes += uint64(len(wire))
	i.packets++
	if verdict == core.VerdictDuplicate || verdict == core.VerdictStale {
		i.replays++
	}
	i.mu.Unlock()
	if !verdict.Delivered() {
		return nil, verdict, nil
	}
	return payload, verdict, nil
}

// State classifies the SA's lifetime position.
func (i *InboundSA) State() LifetimeState {
	i.mu.Lock()
	bytes := i.bytes
	born := i.born
	i.mu.Unlock()
	return lifetimeState(i.life, bytes, i.now()-born)
}

// Counters returns (bytes, packets, authFailures, replayDiscards).
func (i *InboundSA) Counters() (bytes, packets, authFails, replays uint64) {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.bytes, i.packets, i.authFails, i.replays
}

func lifetimeState(l Lifetime, bytes uint64, age time.Duration) LifetimeState {
	if l.HardBytes > 0 && bytes >= l.HardBytes {
		return LifetimeHard
	}
	if l.HardTime > 0 && age >= l.HardTime {
		return LifetimeHard
	}
	if l.SoftBytes > 0 && bytes >= l.SoftBytes {
		return LifetimeSoft
	}
	if l.SoftTime > 0 && age >= l.SoftTime {
		return LifetimeSoft
	}
	return LifetimeOK
}

func clockOrZero(f func() time.Duration) func() time.Duration {
	if f == nil {
		return func() time.Duration { return 0 }
	}
	return f
}
