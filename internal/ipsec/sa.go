package ipsec

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"antireplay/internal/core"
	"antireplay/internal/seqwin"
	"antireplay/internal/stats"
)

// sub decrements an atomic counter by d (Add with two's complement).
func sub(c *atomic.Uint64, d uint64) {
	if d > 0 {
		c.Add(^(d - 1))
	}
}

// Lifetime bounds an SA's use, after RFC 4301's soft/hard semantics: past
// the soft bound the SA should be rekeyed; past the hard bound it must not
// be used.
type Lifetime struct {
	SoftBytes uint64
	HardBytes uint64
	SoftTime  time.Duration
	HardTime  time.Duration
}

// LifetimeState classifies an SA's position in its lifetime.
type LifetimeState uint8

// Lifetime states.
const (
	// LifetimeOK means the SA is fully usable.
	LifetimeOK LifetimeState = iota + 1
	// LifetimeSoft means the SA should be rekeyed but still works.
	LifetimeSoft
	// LifetimeHard means the SA must not secure further traffic.
	LifetimeHard
)

// String returns "ok", "soft" or "hard".
func (s LifetimeState) String() string {
	switch s {
	case LifetimeOK:
		return "ok"
	case LifetimeSoft:
		return "soft"
	case LifetimeHard:
		return "hard"
	default:
		return fmt.Sprintf("lifetime(%d)", uint8(s))
	}
}

// OutboundSA secures one direction of traffic: it numbers packets through
// the reset-resilient sender and seals them. Safe for concurrent use; the
// per-packet counters are atomics, so concurrent Seals serialize only on
// the sender's own sequence allocation.
type OutboundSA struct {
	spi    uint32
	keys   KeyMaterial
	crypto *cryptoPool
	seq    *core.Sender
	esn    bool
	life   Lifetime
	now    func() time.Duration
	born   time.Duration

	// lineage: generation number within a rekey chain and the SPI of the
	// predecessor generation (0 = first generation). Written once, by the
	// gateway rekey path, before the SA is published.
	generation uint64
	prevSPI    uint32
	draining   atomic.Bool

	bytes   atomic.Uint64
	packets atomic.Uint64
}

// NewOutboundSA builds an outbound SA. sender provides the sequence-number
// service (configure its SAVE/FETCH behaviour there); esn declares whether
// the peer reconstructs 64-bit extended sequence numbers — without it the
// SA hard-fails with ErrSeqExhausted before the 32-bit wire number can
// wrap; clock may be nil.
func NewOutboundSA(spi uint32, keys KeyMaterial, sender *core.Sender, esn bool, life Lifetime, clock func() time.Duration) (*OutboundSA, error) {
	if err := keys.Validate(); err != nil {
		return nil, err
	}
	if sender == nil {
		return nil, fmt.Errorf("%w: nil sender", core.ErrConfig)
	}
	o := &OutboundSA{
		spi: spi, keys: keys, crypto: newCryptoPool(keys),
		seq: sender, esn: esn, life: life, now: clockOrZero(clock),
	}
	o.born = o.now()
	return o, nil
}

// SPI returns the SA's security parameter index.
func (o *OutboundSA) SPI() uint32 { return o.spi }

// Sender exposes the underlying sequence-number sender (for reset/wake).
func (o *OutboundSA) Sender() *core.Sender { return o.seq }

// Generation returns the SA's position in its rekey chain (0 for an SA that
// never rekeyed).
func (o *OutboundSA) Generation() uint64 { return o.generation }

// PrevSPI returns the SPI of the generation this SA replaced (0 = none).
func (o *OutboundSA) PrevSPI() uint32 { return o.prevSPI }

// setLineage records the rekey chain position; called by the gateway before
// the SA is published.
func (o *OutboundSA) setLineage(gen uint64, prev uint32) {
	o.generation, o.prevSPI = gen, prev
}

// BeginDrain retires the SA from new traffic: every later Seal fails with
// ErrDraining. The rekey cutover calls this on the old generation the
// moment its successor owns the SPD entry, so a stale handle cannot keep
// emitting packets the peer will soon stop accepting. Reversed only by
// Gateway.RevertOutbound when a wider rollover fails before the peer cut
// over.
func (o *OutboundSA) BeginDrain() { o.draining.Store(true) }

// endDrain returns the SA to service; only the gateway's rollback path
// (RevertOutbound) may call it.
func (o *OutboundSA) endDrain() { o.draining.Store(false) }

// Draining reports whether BeginDrain has retired the SA.
func (o *OutboundSA) Draining() bool { return o.draining.Load() }

// reserve atomically checks the hard lifetime and accounts n wire bytes and
// one packet in a single step, so that concurrent Seals cannot all pass a
// stale check and collectively overshoot HardBytes: each successful CAS
// observes a byte count strictly below the bound, and once the bound is
// reached every later attempt fails. The one packet that crosses the
// boundary is allowed, as with any in-flight packet at expiry.
func (o *OutboundSA) reserve(n uint64) error {
	if o.life.HardTime > 0 && o.now()-o.born >= o.life.HardTime {
		return ErrHardExpired
	}
	if o.life.HardBytes == 0 {
		// No byte bound: plain wait-free accounting, no CAS retries on the
		// hot path.
		o.bytes.Add(n)
		o.packets.Add(1)
		return nil
	}
	for {
		cur := o.bytes.Load()
		if o.life.HardBytes > 0 && cur >= o.life.HardBytes {
			return ErrHardExpired
		}
		if o.bytes.CompareAndSwap(cur, cur+n) {
			o.packets.Add(1)
			return nil
		}
	}
}

// unreserve rolls back a reserve whose seal failed.
func (o *OutboundSA) unreserve(n uint64) {
	sub(&o.bytes, n)
	sub(&o.packets, 1)
}

// sealSeqAppend validates seq64 against the 32-bit wire wrap and appends the
// sealed wire bytes to dst; on error dst is returned unchanged.
func (o *OutboundSA) sealSeqAppend(dst []byte, seq64 uint64, payload []byte) ([]byte, error) {
	if !o.esn && seq64 > math.MaxUint32 {
		// RFC 4303 §3.3.3: without ESN the sender MUST NOT let the sequence
		// number cycle — reusing a wire number would also reuse the CTR
		// nonce. The SA is permanently exhausted; rekey to continue.
		return dst, fmt.Errorf("%w: sequence %d exceeds the 32-bit wire space", ErrSeqExhausted, seq64)
	}
	return sealAppendState(o.crypto, o.spi, seq64, payload, dst), nil
}

// Seal encapsulates payload, assigning the next sequence number. It fails
// with core.ErrDown / core.ErrWaking while the endpoint cannot send,
// ErrHardExpired past the hard lifetime, ErrSeqExhausted when a non-ESN SA
// has consumed the whole 32-bit sequence space, and ErrDraining once a
// rekey has cut traffic over to the SA's successor. Each call allocates the
// returned wire; the steady-state datapath form is SealAppend, which reuses
// a caller buffer and allocates nothing.
func (o *OutboundSA) Seal(payload []byte) ([]byte, error) {
	wire, err := o.SealAppend(make([]byte, 0, len(payload)+Overhead), payload)
	if err != nil {
		return nil, err
	}
	return wire, nil
}

// SealAppend is Seal appending the wire bytes to dst instead of allocating:
// the sealed packet is dst[len(dst):] of the returned slice. With a reused
// dst of sufficient capacity a steady-state SealAppend performs zero
// allocations — sequence reservation is atomic, the AES key schedule and
// HMAC state are pooled per SA, and the wire is built in place. On error
// dst is returned unchanged.
func (o *OutboundSA) SealAppend(dst []byte, payload []byte) ([]byte, error) {
	if o.draining.Load() {
		return dst, fmt.Errorf("%w: %#x", ErrDraining, o.spi)
	}
	wireLen := uint64(len(payload)) + Overhead
	if err := o.reserve(wireLen); err != nil {
		return dst, err
	}
	seq64, err := o.seq.Next()
	if err != nil {
		o.unreserve(wireLen)
		return dst, err
	}
	out, err := o.sealSeqAppend(dst, seq64, payload)
	if err != nil {
		o.unreserve(wireLen)
		return dst, err
	}
	return out, nil
}

// SealBatch seals a burst of payloads, reserving all their sequence numbers
// from the sender in one lock acquisition (core.Sender.NextN) and checking
// the lifetime once for the whole burst. It returns the wires for the
// sealed prefix; when fewer than len(payloads) were sealed, err reports why
// the burst was cut short (core.ErrSaveLag backpressure truncating the
// grant, ErrHardExpired, ErrSeqExhausted, ...). Lifetime accounting is
// batch-granular: a burst may overshoot HardBytes by at most one burst.
func (o *OutboundSA) SealBatch(payloads [][]byte) ([][]byte, error) {
	if len(payloads) == 0 {
		return nil, nil
	}
	if o.draining.Load() {
		return nil, fmt.Errorf("%w: %#x", ErrDraining, o.spi)
	}
	var total uint64
	for _, p := range payloads {
		total += uint64(len(p)) + Overhead
	}
	if err := o.reserve(total); err != nil {
		return nil, err
	}
	o.packets.Add(uint64(len(payloads) - 1)) // reserve counted one packet

	first, n, err := o.seq.NextN(len(payloads))
	if n < len(payloads) {
		var unused uint64
		for _, p := range payloads[n:] {
			unused += uint64(len(p)) + Overhead
		}
		sub(&o.bytes, unused)
		sub(&o.packets, uint64(len(payloads)-n))
		if err == nil {
			err = core.ErrSaveLag // NextN truncated the grant at the horizon
		}
	}
	// One arena backs the whole burst (two allocations per batch instead of
	// one per packet); its capacity is exact, so the per-packet appends
	// never reallocate and the returned wires stay valid.
	var arenaCap int
	for _, p := range payloads[:n] {
		arenaCap += len(p) + Overhead
	}
	arena := make([]byte, 0, arenaCap)
	wires := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		mark := len(arena)
		arena2, serr := o.sealSeqAppend(arena, first+uint64(i), payloads[i])
		if serr != nil {
			// Roll back the unsealed tail (the reserved numbers are burned,
			// but the bytes were never sent).
			var unused uint64
			for _, p := range payloads[i:n] {
				unused += uint64(len(p)) + Overhead
			}
			sub(&o.bytes, unused)
			sub(&o.packets, uint64(n-i))
			return wires, serr
		}
		arena = arena2
		wires = append(wires, arena[mark:])
	}
	return wires, err
}

// State classifies the SA's lifetime position.
func (o *OutboundSA) State() LifetimeState {
	return lifetimeState(o.life, o.bytes.Load(), o.now()-o.born)
}

// Counters returns bytes and packets sealed so far.
func (o *OutboundSA) Counters() (bytes, packets uint64) {
	return o.bytes.Load(), o.packets.Load()
}

// VerifyResult is the outcome of verifying one inbound packet: exactly one
// of Err != nil (the packet could not be checked: malformed, wrong SPI,
// failed ICV, expired SA) or Verdict != 0 (the anti-replay decision;
// Payload is non-nil only when Verdict.Delivered()).
type VerifyResult struct {
	Payload []byte
	Verdict core.Verdict
	Err     error
}

// Delivered reports whether the packet was verified, admitted, and carries
// a payload.
func (r VerifyResult) Delivered() bool { return r.Err == nil && r.Verdict.Delivered() }

// InboundSA verifies and decapsulates one direction of traffic, admitting
// sequence numbers through the reset-resilient receiver. Safe for
// concurrent use; with a fast-path receiver (ipsec.Gateway's default)
// concurrent Opens do not serialize on any SA-wide lock.
type InboundSA struct {
	spi     uint32
	keys    KeyMaterial
	crypto  *cryptoPool
	replay  *core.Receiver
	esn     bool
	winW    int  // receiver window width, immutable
	hasLife bool // any lifetime bound set; false skips per-packet checks
	life    Lifetime
	now     func() time.Duration
	born    time.Duration

	// lineage: see OutboundSA. An inbound SA keeps verifying while
	// draining — the whole point of the drain window is that in-flight
	// packets on the old SPI are still authenticated and admitted until
	// the grace period retires the SA.
	generation uint64
	prevSPI    uint32
	draining   atomic.Bool

	// Per-packet tallies are sharded so a many-queue gateway's counters do
	// not serialize its admission path on one cache line, and packed into
	// one Tallies block — the four counters move together per packet, and
	// four separate ShardedCounters would cost 4 KiB per SA where the block
	// costs 1 KiB, the dominant term at million-SA scale. (The outbound
	// byte counter stays a single atomic: hard-lifetime reservation CASes
	// it, which a sharded counter cannot do.)
	tallies stats.Tallies
}

// Lane indices into InboundSA.tallies.
const (
	tallyBytes = iota
	tallyPackets
	tallyAuthFails
	tallyReplays
)

// NewInboundSA builds an inbound SA. receiver provides the anti-replay
// service; esn enables 64-bit extended sequence number reconstruction.
func NewInboundSA(spi uint32, keys KeyMaterial, receiver *core.Receiver, esn bool, life Lifetime, clock func() time.Duration) (*InboundSA, error) {
	if err := keys.Validate(); err != nil {
		return nil, err
	}
	if receiver == nil {
		return nil, fmt.Errorf("%w: nil receiver", core.ErrConfig)
	}
	i := &InboundSA{
		spi: spi, keys: keys, crypto: newCryptoPool(keys), replay: receiver,
		esn: esn, winW: receiver.W(), hasLife: life != Lifetime{},
		life: life, now: clockOrZero(clock),
	}
	i.born = i.now()
	return i, nil
}

// SPI returns the SA's security parameter index.
func (i *InboundSA) SPI() uint32 { return i.spi }

// Receiver exposes the underlying anti-replay receiver (for reset/wake).
func (i *InboundSA) Receiver() *core.Receiver { return i.replay }

// Generation returns the SA's position in its rekey chain (0 for an SA that
// never rekeyed).
func (i *InboundSA) Generation() uint64 { return i.generation }

// PrevSPI returns the SPI of the generation this SA replaced (0 = none).
func (i *InboundSA) PrevSPI() uint32 { return i.prevSPI }

// setLineage records the rekey chain position; called by the gateway before
// the SA is published.
func (i *InboundSA) setLineage(gen uint64, prev uint32) {
	i.generation, i.prevSPI = gen, prev
}

// BeginDrain marks the SA as superseded by a rekey. Unlike the outbound
// side, a draining inbound SA still verifies and admits traffic — in-flight
// packets sealed under the old SPI before the cutover must not be dropped —
// but the mark tells operators (and the rekey orchestrator's grace timer)
// that the SA is due for removal. Irreversible.
func (i *InboundSA) BeginDrain() { i.draining.Store(true) }

// Draining reports whether BeginDrain has marked the SA.
func (i *InboundSA) Draining() bool { return i.draining.Load() }

// verifyOneInto parses, authenticates, and admits one packet without
// touching the SA counters (callers account singly or per batch). A
// delivered payload is appended to dst (the result's Payload aliases the
// returned slice); on any other outcome the returned slice has dst's
// original length.
//
// With ESN the 64-bit sequence number is inferred from a single edge
// snapshot taken immediately before the ICV check. A concurrent Open can
// advance the edge between that snapshot and the check; near a 2^32
// subspace boundary the moved edge changes the inferred high half, which
// would reject a legitimate packet. On ICV failure the inference is
// therefore redone against a fresh snapshot and retried once when it
// yields a different number. The admission itself needs no snapshot
// consistency: it admits the authenticated 64-bit value, which no longer
// depends on the edge.
func (i *InboundSA) verifyOneInto(dst []byte, wire []byte) (VerifyResult, []byte) {
	if len(wire) < headerLen+icvLen {
		return VerifyResult{Err: fmt.Errorf("%w: %d bytes", ErrShortPacket, len(wire))}, dst
	}
	spi, _ := ParseSPI(wire)
	if spi != i.spi {
		return VerifyResult{Err: fmt.Errorf("%w: packet SPI %#x, SA SPI %#x", ErrUnknownSPI, spi, i.spi)}, dst
	}
	lo, _ := ParseSeqLo(wire)
	seq64 := uint64(lo)
	var edge uint64
	if i.esn {
		edge = i.replay.Edge()
		seq64 = seqwin.InferESN(edge, lo, i.winW)
	}
	mark := len(dst)
	out, err := openAppendState(i.crypto, i.spi, seq64, wire, dst)
	if err != nil && i.esn {
		if e2 := i.replay.Edge(); e2 != edge {
			if s2 := seqwin.InferESN(e2, lo, i.winW); s2 != seq64 {
				if out2, err2 := openAppendState(i.crypto, i.spi, s2, wire, dst); err2 == nil {
					out, err, seq64 = out2, nil, s2
				}
			}
		}
	}
	if err != nil {
		return VerifyResult{Err: err}, dst
	}
	verdict := i.replay.Admit(seq64)
	if !verdict.Delivered() {
		// Drop the decrypted bytes: the caller's arena length is restored,
		// so rejected packets cost no arena space.
		return VerifyResult{Verdict: verdict}, dst
	}
	return VerifyResult{Payload: out[mark:], Verdict: verdict}, out
}

// Open verifies wire bytes and returns the payload. The verdict reports the
// anti-replay decision; payload is non-nil only when verdict.Delivered().
// Following RFC 4303 the ICV is verified before the window is updated, so
// forged traffic cannot move the window; replayed-but-authentic traffic is
// then rejected by the window. Each delivered payload is freshly allocated;
// the steady-state datapath form is OpenAppend.
func (i *InboundSA) Open(wire []byte) ([]byte, core.Verdict, error) {
	if i.hasLife && i.State() == LifetimeHard {
		return nil, 0, ErrHardExpired
	}
	res, _ := i.verifyOneInto(nil, wire)
	i.account(wire, res)
	return res.Payload, res.Verdict, res.Err
}

// OpenAppend is Open appending the decrypted payload to dst instead of
// allocating: on delivery the payload is out[len(dst):] of the returned
// slice; on any other outcome out retains dst's length. With a reused dst
// of sufficient capacity a steady-state OpenAppend performs zero
// allocations.
func (i *InboundSA) OpenAppend(dst []byte, wire []byte) (out []byte, v core.Verdict, err error) {
	if i.hasLife && i.State() == LifetimeHard {
		return dst, 0, ErrHardExpired
	}
	res, out := i.verifyOneInto(dst, wire)
	i.account(wire, res)
	return out, res.Verdict, res.Err
}

// account updates the SA counters for one verified (or rejected) packet.
func (i *InboundSA) account(wire []byte, res VerifyResult) {
	if res.Err != nil {
		if isAuthErr(res.Err) {
			i.tallies.Add(tallyAuthFails, 1)
		}
		return
	}
	i.tallies.Add(tallyBytes, uint64(len(wire)))
	i.tallies.Add(tallyPackets, 1)
	if res.Verdict == core.VerdictDuplicate || res.Verdict == core.VerdictStale {
		i.tallies.Add(tallyReplays, 1)
	}
}

// VerifyBatch verifies a burst of packets for this SA, checking the hard
// lifetime once and folding all counter updates into one set of atomic adds
// — the inbound analogue of SealBatch. Results are positional: out[j]
// corresponds to wires[j]. Lifetime enforcement is batch-granular: a batch
// admitted at its start runs to completion even if it crosses HardBytes.
// The burst's payloads share one allocation; VerifyBatchInto reuses
// caller-provided storage and allocates nothing.
func (i *InboundSA) VerifyBatch(wires [][]byte) []VerifyResult {
	out := make([]VerifyResult, len(wires))
	if len(wires) == 0 {
		return out
	}
	i.VerifyBatchInto(out, make([]byte, 0, arenaCap(wires)), wires)
	return out
}

// arenaCap sizes a payload arena for a burst: the sum of the bursts'
// maximum payload lengths.
func arenaCap(wires [][]byte) int {
	var n int
	for _, w := range wires {
		if len(w) > Overhead {
			n += len(w) - Overhead
		}
	}
	return n
}

// VerifyBatchInto is VerifyBatch writing results into out (len(out) must be
// at least len(wires); extra entries are untouched) and appending delivered
// payloads into the arena buf, which is returned. Each result's Payload
// aliases the arena. With reused out and buf of sufficient capacity a
// steady-state VerifyBatchInto performs zero allocations.
func (i *InboundSA) VerifyBatchInto(out []VerifyResult, buf []byte, wires [][]byte) []byte {
	if len(wires) == 0 {
		return buf
	}
	if i.hasLife && i.State() == LifetimeHard {
		for j := range wires {
			out[j] = VerifyResult{Err: ErrHardExpired}
		}
		return buf
	}
	var bytes, packets, authFails, replays uint64
	for j, wire := range wires {
		res, buf2 := i.verifyOneInto(buf, wire)
		buf = buf2
		out[j] = res
		switch {
		case res.Err != nil:
			if isAuthErr(res.Err) {
				authFails++
			}
		default:
			bytes += uint64(len(wire))
			packets++
			if res.Verdict == core.VerdictDuplicate || res.Verdict == core.VerdictStale {
				replays++
			}
		}
	}
	if bytes > 0 {
		i.tallies.Add(tallyBytes, bytes)
	}
	if packets > 0 {
		i.tallies.Add(tallyPackets, packets)
	}
	if authFails > 0 {
		i.tallies.Add(tallyAuthFails, authFails)
	}
	if replays > 0 {
		i.tallies.Add(tallyReplays, replays)
	}
	return buf
}

// State classifies the SA's lifetime position.
func (i *InboundSA) State() LifetimeState {
	if !i.hasLife {
		return LifetimeOK
	}
	return lifetimeState(i.life, i.tallies.Value(tallyBytes), i.now()-i.born)
}

// Counters returns (bytes, packets, authFailures, replayDiscards).
func (i *InboundSA) Counters() (bytes, packets, authFails, replays uint64) {
	return i.tallies.Value(tallyBytes), i.tallies.Value(tallyPackets),
		i.tallies.Value(tallyAuthFails), i.tallies.Value(tallyReplays)
}

func lifetimeState(l Lifetime, bytes uint64, age time.Duration) LifetimeState {
	if l.HardBytes > 0 && bytes >= l.HardBytes {
		return LifetimeHard
	}
	if l.HardTime > 0 && age >= l.HardTime {
		return LifetimeHard
	}
	if l.SoftBytes > 0 && bytes >= l.SoftBytes {
		return LifetimeSoft
	}
	if l.SoftTime > 0 && age >= l.SoftTime {
		return LifetimeSoft
	}
	return LifetimeOK
}

func isAuthErr(err error) bool { return errors.Is(err, ErrAuth) }

func clockOrZero(f func() time.Duration) func() time.Duration {
	if f == nil {
		return func() time.Duration { return 0 }
	}
	return f
}
