package ipsec

import (
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"antireplay/internal/core"
	"antireplay/internal/store"
)

// GatewayConfig configures a Gateway.
type GatewayConfig struct {
	// Journal is the shared durable medium for every SA's counter —
	// a *store.Journal for a single commit lane, or a *store.Lanes for
	// the laned, million-SA-scale medium. Required.
	Journal store.Medium
	// Pool executes the SAs' background SAVEs. Nil creates a pool of
	// Workers workers owned (drained and stopped) by the gateway. A
	// caller-provided pool is not closed by the gateway: close it before
	// Gateway.Close, or its queued saves race the journal closing.
	Pool *store.SaverPool
	// Workers sizes the owned pool when Pool is nil; <= 0 means
	// store.DefaultPoolWorkers.
	Workers int
	// K is the SAVE interval applied to each SA's sender/receiver.
	// Zero means DefaultGatewayK.
	K uint64
	// W is the anti-replay window width for inbound SAs. Zero means 64.
	W int
	// ESN enables 64-bit extended sequence numbers on inbound SAs.
	ESN bool
	// NoStrictHorizon disables the durable-horizon guard (see
	// core.SenderConfig.StrictHorizon) that gateways enable by default.
	// With a shared saver pool, background SAVEs queue behind other SAs'
	// work, so a burst can push a counter more than 2K past its durable
	// value; the guard turns that window — where a reset would reuse
	// sequence numbers or re-accept replays — into bounded backpressure
	// (core.ErrSaveLag from Seal, a discarded-then-retried packet inbound).
	// Disable only when K is provably sized for the medium's worst-case
	// queueing delay.
	NoStrictHorizon bool
	// Lifetime bounds each SA; the zero value means unbounded.
	Lifetime Lifetime
	// Clock feeds SA lifetime accounting; nil means a frozen clock.
	Clock func() time.Duration
	// OnLifecycle, if non-nil, observes population-wide lifecycle
	// transitions: kind is "reset", "wake", "wake-done", or "wake-failed",
	// and sas is the SA population the transition covered. Called from
	// ResetAll/WakeAll on the caller's goroutine; keep it fast (the
	// telemetry event ring's Record is the intended consumer).
	OnLifecycle func(kind string, sas int)
}

// DefaultGatewayK is the SAVE interval used when GatewayConfig.K is zero —
// the paper's §4 sizing example (100µs save / 4µs send).
const DefaultGatewayK = 25

// Gateway is a multi-SA IPsec endpoint whose every security association
// persists its counter into one shared Journal through one shared
// SaverPool: the gateway-scale deployment of the paper's SAVE/FETCH
// protocol. Where the one-file-one-goroutine-per-SA pattern costs a file
// descriptor, a goroutine, and a private fsync stream per tunnel, a Gateway
// holds one log file and a bounded worker pool, and concurrent SAVEs across
// SAs group-commit under shared fsyncs.
//
// Outbound SAs register into an SPD keyed by traffic selectors; inbound SAs
// into a lock-striped SAD keyed by SPI. ResetAll / WakeAll drive the
// paper's reset protocol across the whole SA population — the §3
// "host with multiple existing SAs" scenario — with recovery cost one
// journal replay instead of one IKE renegotiation per SA.
//
// Registering an SA durably initializes its counter, costing one group
// commit; sequential AddOutbound/AddInbound calls cannot share commits, so
// populate large gateways from a few concurrent goroutines and the journal
// batches their registrations into shared fsyncs.
//
// By default every SA runs with the strict durable horizon, so the paper's
// no-reuse and no-replay guarantees hold even when pool queueing lets the
// durable counter lag more than 2K: Seal then returns core.ErrSaveLag
// (back off and retry) and inbound delivery briefly discards
// (core.VerdictHorizon) until the lagging save lands.
//
// Gateway is safe for concurrent use.
type Gateway struct {
	cfg     GatewayConfig
	pool    *store.SaverPool
	ownPool bool
	sad     *SAD
	spd     *SPD

	mu     sync.Mutex
	closed bool
	// outbound SAs are tracked here because the SPD has no iteration;
	// inbound SAs live only in the SAD (iterated via Range).
	outbound []*OutboundSA
	// cells holds the journal keys this gateway owns (released on
	// RemoveInbound/RemoveOutbound and Close) mapped to each key's pool
	// handle — nil between the claim and saver registration — so removal
	// can flush in-flight background saves before tombstoning the cell (a
	// stale save landing after the tombstone would resurrect the retired
	// counter). One map instead of a claim set plus a saver map: at
	// million-SA scale the second map's per-entry overhead is real memory.
	cells map[string]*store.PoolSaver
}

// claimCell claims the journal cell for key and reads whether it holds a
// prior life's state. An existing claim maps to ErrDuplicateSPI (two
// endpoints over one cell would interleave counters); other failures —
// e.g. a closed journal or gateway — pass through untouched. The gateway
// mutex is held across the journal claim so a concurrent Close cannot
// strand a claim outside the release set.
func (g *Gateway) claimCell(key string, spi uint32, dir string) (*store.Cell, bool, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return nil, false, fmt.Errorf("ipsec: gateway %s %#x: %w", dir, spi, store.ErrClosed)
	}
	cell, err := g.cfg.Journal.ClaimCell(key)
	if err != nil {
		if errors.Is(err, store.ErrCellClaimed) {
			return nil, false, fmt.Errorf("%w: %s %#x: %w", ErrDuplicateSPI, dir, spi, err)
		}
		return nil, false, fmt.Errorf("ipsec: gateway %s %#x: %w", dir, spi, err)
	}
	_, resume, err := cell.Fetch()
	if err != nil {
		g.cfg.Journal.ReleaseCell(key)
		return nil, false, fmt.Errorf("ipsec: gateway %s %#x: %w", dir, spi, err)
	}
	g.cells[key] = nil
	return cell, resume, nil
}

// registerSaver records a claimed key's pool handle for removal-time
// flushing; no-op if the claim was lost to a concurrent Close.
func (g *Gateway) registerSaver(key string, s *store.PoolSaver) {
	g.mu.Lock()
	if _, claimed := g.cells[key]; claimed {
		g.cells[key] = s
	}
	g.mu.Unlock()
}

// releaseCell drops a claim taken by claimCell (failed registration, SA
// removal, or a registration that lost a race with Close). The journal
// release only happens while this gateway still owns the key: once Close
// has taken the claim set and released it, the same key may already belong
// to a successor gateway, and releasing it again would strip the
// successor's exclusivity.
func (g *Gateway) releaseCell(key string) {
	g.mu.Lock()
	_, owned := g.cells[key]
	delete(g.cells, key)
	g.mu.Unlock()
	if owned {
		g.cfg.Journal.ReleaseCell(key)
	}
}

// NewGateway validates cfg and returns an empty gateway.
func NewGateway(cfg GatewayConfig) (*Gateway, error) {
	if cfg.Journal == nil {
		return nil, fmt.Errorf("%w: gateway requires a journal", core.ErrConfig)
	}
	if cfg.K == 0 {
		cfg.K = DefaultGatewayK
	}
	g := &Gateway{
		cfg:   cfg,
		pool:  cfg.Pool,
		sad:   NewSAD(),
		spd:   NewSPD(),
		cells: make(map[string]*store.PoolSaver),
	}
	if g.pool == nil {
		g.pool = store.NewSaverPool(cfg.Workers)
		g.ownPool = true
	}
	return g, nil
}

const hexDigits = "0123456789abcdef"

// spiKey builds "<dir>/<spi as %08x>" with a fixed-width hex encoder: one
// string allocation, no fmt machinery. The byte layout is pinned by
// TestKeyFormatCompat — these strings are on-disk journal keys, so existing
// journals must replay under exactly the same names forever.
func spiKey(dir string, spi uint32) string {
	var b [11]byte
	copy(b[:3], dir)
	for i := 0; i < 8; i++ {
		b[3+i] = hexDigits[(spi>>(28-4*i))&0xf]
	}
	return string(b[:])
}

// OutboundKey is the journal key of an outbound SA's counter.
func OutboundKey(spi uint32) string { return spiKey("tx/", spi) }

// InboundKey is the journal key of an inbound SA's window edge.
func InboundKey(spi uint32) string { return spiKey("rx/", spi) }

// buildOutbound claims the journal cell for spi and constructs the SA over
// a resilient sender, resuming through the paper's wake-up when the cell
// holds a prior life's counter. With adopt set the SA is instead left in
// the down state regardless of prior journal state — a standby's warm image
// must not wake (and thereby leap and write) until takeover, when a single
// WakeAll fetches the freshest replicated counters. The SA is not yet
// registered; on error the claim is already released.
func (g *Gateway) buildOutbound(spi uint32, keys KeyMaterial, adopt bool) (*OutboundSA, error) {
	key := OutboundKey(spi)
	cell, resume, err := g.claimCell(key, spi, "outbound")
	if err != nil {
		return nil, err
	}
	saver := g.pool.Saver(cell)
	snd, err := core.NewSender(core.SenderConfig{
		K:             g.cfg.K,
		Store:         cell,
		Saver:         saver,
		StrictHorizon: !g.cfg.NoStrictHorizon,
	})
	if err != nil {
		g.releaseCell(key)
		return nil, fmt.Errorf("ipsec: gateway outbound %#x: %w", spi, err)
	}
	g.registerSaver(key, saver)
	sa, err := NewOutboundSA(spi, keys, snd, g.cfg.ESN, g.cfg.Lifetime, g.cfg.Clock)
	if err != nil {
		g.releaseCell(key)
		return nil, fmt.Errorf("ipsec: gateway outbound %#x: %w", spi, err)
	}
	if adopt {
		// Warm standby image: hold the SA down; takeover wakes it.
		snd.Reset()
	} else if resume {
		// The cell held a prior life's counter: starting at 1 would reuse
		// every number below it. Resume via reset + wake instead.
		snd.Reset()
		snd.Wake()
	}
	return sa, nil
}

// AddOutbound creates an outbound SA whose sender persists into the shared
// journal under OutboundKey(spi), registers it in the SPD under sel, and
// returns it. The journal cell is claimed exclusively: reusing a live SPI —
// even from another gateway sharing the journal — is refused with
// ErrDuplicateSPI, because two senders over one cell would emit overlapping
// sequence numbers after a wake. If the journal already holds state for the
// SPI (a prior process life), the SA resumes through the paper's wake-up
// (FETCH + 2K leap + SAVE) rather than restarting at 1; it is briefly
// StateWaking — WakeAll waits for it.
func (g *Gateway) AddOutbound(spi uint32, keys KeyMaterial, sel Selector) (*OutboundSA, error) {
	sa, err := g.buildOutbound(spi, keys, false)
	if err != nil {
		return nil, err
	}
	g.mu.Lock()
	if g.closed {
		// Close ran between the claim and here and already released the
		// cell; completing registration would hand out an SA whose cell a
		// successor gateway can claim too. releaseCell no-ops if Close got
		// there first.
		g.mu.Unlock()
		g.releaseCell(OutboundKey(spi))
		return nil, fmt.Errorf("ipsec: gateway outbound %#x: %w", spi, store.ErrClosed)
	}
	g.outbound = append(g.outbound, sa)
	g.spd.Add(sel, sa) // inside g.mu so Close cannot interleave
	g.mu.Unlock()
	return sa, nil
}

// RekeyOutbound performs the outbound half of a make-before-break rollover:
// it builds a successor SA for newSPI (counter durably initialized in the
// shared journal before any cutover — a reset mid-rekey recovers both
// generations independently), atomically repoints every SPD entry from the
// old SA to the successor, and retires the old SA from new traffic
// (BeginDrain: further Seals on it fail with ErrDraining). The old SA stays
// registered so its journal cell remains owned; retire it with
// RemoveOutbound once the peer has confirmed its inbound cutover and any
// in-flight packets have drained.
//
// The successor records its lineage: Generation is the old SA's plus one and
// PrevSPI names the old SPI.
func (g *Gateway) RekeyOutbound(oldSPI, newSPI uint32, keys KeyMaterial) (*OutboundSA, error) {
	old := g.findOutbound(oldSPI)
	if old == nil {
		return nil, fmt.Errorf("ipsec: rekey outbound %#x: %w: no such SA", oldSPI, ErrUnknownSPI)
	}
	sa, err := g.buildOutbound(newSPI, keys, false)
	if err != nil {
		return nil, err
	}
	sa.setLineage(old.Generation()+1, oldSPI)
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		g.releaseCell(OutboundKey(newSPI))
		return nil, fmt.Errorf("ipsec: rekey outbound %#x: %w", newSPI, store.ErrClosed)
	}
	g.outbound = append(g.outbound, sa)
	g.spd.Replace(old, sa) // the cutover: one atomic repoint under the SPD lock
	g.mu.Unlock()
	old.BeginDrain()
	return sa, nil
}

// RevertOutbound undoes a RekeyOutbound whose wider rollover failed before
// the peer cut its side over: the old SA resumes sealing, every SPD entry
// is repointed back from the successor to it, and the successor is
// unregistered with its journal cell retired (so its SPI and counter leave
// no residue). Reports whether both SAs were registered. The brief window
// in which the SPD already points at the old SA while it still refuses
// seals surfaces as ErrDraining — the same bounded backpressure as
// ErrSaveLag, cleared by the endDrain below.
func (g *Gateway) RevertOutbound(oldSPI, newSPI uint32) bool {
	g.mu.Lock()
	old := g.findOutboundLocked(oldSPI)
	nu := g.findOutboundLocked(newSPI)
	if old == nil || nu == nil {
		g.mu.Unlock()
		return false
	}
	kept := g.outbound[:0]
	for _, o := range g.outbound {
		if o != nu {
			kept = append(kept, o)
		}
	}
	for i := len(kept); i < len(g.outbound); i++ {
		g.outbound[i] = nil
	}
	g.outbound = kept
	g.spd.Replace(nu, old)
	g.mu.Unlock()
	old.endDrain()
	nu.BeginDrain()
	nu.Sender().Reset()
	g.retireCell(OutboundKey(newSPI)) //nolint:errcheck // see RemoveInbound
	return true
}

// findOutbound returns the registered outbound SA with the given SPI.
func (g *Gateway) findOutbound(spi uint32) *OutboundSA {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.findOutboundLocked(spi)
}

func (g *Gateway) findOutboundLocked(spi uint32) *OutboundSA {
	for _, sa := range g.outbound {
		if sa.SPI() == spi {
			return sa
		}
	}
	return nil
}

// Outbound returns the registered outbound SA with the given SPI — the
// outbound analogue of SAD().Lookup, used by lifecycle machinery (rekey
// orchestration, lifetime monitoring) that addresses SAs by SPI rather than
// by traffic selector.
func (g *Gateway) Outbound(spi uint32) (*OutboundSA, bool) {
	sa := g.findOutbound(spi)
	return sa, sa != nil
}

// buildInbound claims the journal cell for spi and constructs the SA over a
// resilient fast-path receiver; see buildOutbound (including the adopt
// down-state semantics).
func (g *Gateway) buildInbound(spi uint32, keys KeyMaterial, adopt bool) (*InboundSA, error) {
	key := InboundKey(spi)
	cell, resume, err := g.claimCell(key, spi, "inbound")
	if err != nil {
		return nil, err
	}
	saver := g.pool.Saver(cell)
	rcv, err := core.NewReceiver(core.ReceiverConfig{
		K:             g.cfg.K,
		W:             g.cfg.W,
		Store:         cell,
		Saver:         saver,
		StrictHorizon: !g.cfg.NoStrictHorizon,
		// Gateways admit from many NIC queues at once: use the concurrent
		// window so per-packet admission runs on the receiver fast path.
		Concurrent: true,
	})
	if err != nil {
		g.releaseCell(key)
		return nil, fmt.Errorf("ipsec: gateway inbound %#x: %w", spi, err)
	}
	g.registerSaver(key, saver)
	sa, err := NewInboundSA(spi, keys, rcv, g.cfg.ESN, g.cfg.Lifetime, g.cfg.Clock)
	if err != nil {
		g.releaseCell(key)
		return nil, fmt.Errorf("ipsec: gateway inbound %#x: %w", spi, err)
	}
	if adopt {
		rcv.Reset()
	} else if resume {
		rcv.Reset()
		rcv.Wake()
	}
	return sa, nil
}

// AddInbound creates an inbound SA whose receiver persists into the shared
// journal under InboundKey(spi), registers it in the SAD, and returns it.
// Duplicate SPIs and prior journal state are handled as in AddOutbound: the
// cell is claimed exclusively, and a recovered window edge resumes through
// the wake-up leap instead of re-accepting old sequence numbers.
func (g *Gateway) AddInbound(spi uint32, keys KeyMaterial) (*InboundSA, error) {
	sa, err := g.buildInbound(spi, keys, false)
	if err != nil {
		return nil, err
	}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		g.releaseCell(InboundKey(spi))
		return nil, fmt.Errorf("ipsec: gateway inbound %#x: %w", spi, store.ErrClosed)
	}
	g.sad.Add(sa) // inside g.mu so Close cannot interleave
	g.mu.Unlock()
	return sa, nil
}

// RekeyInbound performs the inbound "make" half of a make-before-break
// rollover: the successor SA for newSPI is installed in the SAD — its window
// edge durably initialized in the journal — while the old SA keeps
// verifying, so the peer can cut its outbound side over whenever it likes
// and packets of both generations authenticate during the overlap. The old
// SA is deliberately NOT marked draining here: the make step can still be
// rolled back if the wider rollover fails, and until the cutover actually
// happens the old generation is simply live. The orchestrator marks it
// draining (InboundSA.BeginDrain, advisory — it still verifies) once both
// outbound sides have cut over, and retires it with RemoveInbound after the
// grace window. The successor records its lineage as in RekeyOutbound.
func (g *Gateway) RekeyInbound(oldSPI, newSPI uint32, keys KeyMaterial) (*InboundSA, error) {
	old, ok := g.sad.Lookup(oldSPI)
	if !ok {
		return nil, fmt.Errorf("ipsec: rekey inbound %#x: %w: no such SA", oldSPI, ErrUnknownSPI)
	}
	sa, err := g.buildInbound(newSPI, keys, false)
	if err != nil {
		return nil, err
	}
	sa.setLineage(old.Generation()+1, oldSPI)
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		g.releaseCell(InboundKey(newSPI))
		return nil, fmt.Errorf("ipsec: rekey inbound %#x: %w", newSPI, store.ErrClosed)
	}
	g.sad.Add(sa)
	g.mu.Unlock()
	return sa, nil
}

// Seal routes payload through the SPD and seals it on the matching SA.
func (g *Gateway) Seal(src, dst netip.Addr, payload []byte) ([]byte, error) {
	return g.spd.Seal(src, dst, payload)
}

// SealAppend routes payload through the SPD and seals it on the matching SA,
// appending the wire bytes to buf (OutboundSA.SealAppend): the gateway-level
// zero-allocation send path — the SPD lookup is one atomic snapshot load and
// the seal reuses pooled crypto state and the caller's buffer.
func (g *Gateway) SealAppend(buf []byte, src, dst netip.Addr, payload []byte) ([]byte, error) {
	sa, ok := g.spd.Lookup(src, dst)
	if !ok {
		return buf, fmt.Errorf("%w: %v -> %v", ErrNoPolicy, src, dst)
	}
	return sa.SealAppend(buf, payload)
}

// Open routes wire bytes through the SAD and opens them on the SA named by
// their SPI.
func (g *Gateway) Open(wire []byte) ([]byte, core.Verdict, error) {
	return g.sad.Open(wire)
}

// OpenAppend routes wire bytes through the SAD and opens them on the SA
// named by their SPI, appending the payload to buf (InboundSA.OpenAppend):
// the gateway-level zero-allocation receive path. On delivery the payload
// is out[len(buf):]; on any other outcome out retains buf's length.
func (g *Gateway) OpenAppend(buf []byte, wire []byte) (out []byte, v core.Verdict, err error) {
	spi, err := ParseSPI(wire)
	if err != nil {
		return buf, 0, err
	}
	sa, ok := g.sad.Lookup(spi)
	if !ok {
		return buf, 0, fmt.Errorf("%w: %#x", ErrUnknownSPI, spi)
	}
	return sa.OpenAppend(buf, wire)
}

// SealBatch routes a burst of payloads for one (src, dst) flow through a
// single SPD lookup and seals them on the matching SA with one sequence
// reservation (OutboundSA.SealBatch). It returns the sealed prefix; a
// non-nil error explains why the burst was cut short.
func (g *Gateway) SealBatch(src, dst netip.Addr, payloads [][]byte) ([][]byte, error) {
	if len(payloads) == 0 {
		return nil, nil
	}
	sa, ok := g.spd.Lookup(src, dst)
	if !ok {
		return nil, fmt.Errorf("%w: %v -> %v", ErrNoPolicy, src, dst)
	}
	return sa.SealBatch(payloads)
}

// verifyScratch is the reusable grouping state of one gateway VerifyBatch
// call; pooled so steady-state batch verification allocates nothing beyond
// what the caller provides. None of its slices are referenced by results.
type verifyScratch struct {
	spis    []uint32
	grouped []bool
	batch   [][]byte
	idx     []int
	res     []VerifyResult
}

var verifyScratchPool = sync.Pool{New: func() any { return new(verifyScratch) }}

// fit readies the scratch for a burst of n packets.
func (s *verifyScratch) fit(n int) {
	if cap(s.spis) < n {
		s.spis = make([]uint32, n)
		s.grouped = make([]bool, n)
		s.batch = make([][]byte, 0, n)
		s.idx = make([]int, 0, n)
		s.res = make([]VerifyResult, n)
	}
	s.spis = s.spis[:n]
	s.grouped = s.grouped[:n]
	for j := range s.grouped {
		s.grouped[j] = false
	}
	s.res = s.res[:n]
}

// release clears every buffer reference — results AND the regrouped wire
// slices — and returns the scratch to the pool, so a pooled scratch never
// keeps a past burst's packet buffers alive.
func (s *verifyScratch) release() {
	for j := range s.res {
		s.res[j] = VerifyResult{}
	}
	s.batch = s.batch[:cap(s.batch)]
	for j := range s.batch {
		s.batch[j] = nil
	}
	s.batch = s.batch[:0]
	verifyScratchPool.Put(s)
}

// VerifyBatch verifies a burst of inbound packets, amortizing SAD lookups
// and SA counter updates across the burst: packets are grouped by SPI (one
// lookup per SA, preserving each SA's arrival order) and handed to
// InboundSA.VerifyBatchInto. Results are positional: out[j] corresponds to
// wires[j]. Bursts from a NIC queue typically hit a handful of SAs, so a
// 64-packet batch costs a few lookups instead of 64. The burst's results
// and payloads cost two allocations; VerifyBatchInto reuses caller storage
// and allocates nothing.
func (g *Gateway) VerifyBatch(wires [][]byte) []VerifyResult {
	out := make([]VerifyResult, len(wires))
	if len(wires) == 0 {
		return out
	}
	g.VerifyBatchInto(out, make([]byte, 0, arenaCap(wires)), wires)
	return out
}

// VerifyBatchInto is VerifyBatch writing results into out (len(out) must be
// at least len(wires)) and appending delivered payloads into the arena buf,
// which is returned; each result's Payload aliases the arena. Grouping
// scratch is pooled, so with reused out and buf of sufficient capacity a
// steady-state call performs zero allocations.
func (g *Gateway) VerifyBatchInto(out []VerifyResult, buf []byte, wires [][]byte) []byte {
	if len(wires) == 0 {
		return buf
	}
	s := verifyScratchPool.Get().(*verifyScratch)
	s.fit(len(wires))
	for j, wire := range wires {
		spi, err := ParseSPI(wire)
		if err != nil {
			out[j] = VerifyResult{Err: err}
			s.grouped[j] = true
			continue
		}
		s.spis[j] = spi
	}
	for j := range wires {
		if s.grouped[j] {
			continue
		}
		spi := s.spis[j]
		s.batch, s.idx = s.batch[:0], s.idx[:0]
		for k := j; k < len(wires); k++ {
			if !s.grouped[k] && s.spis[k] == spi {
				s.grouped[k] = true
				s.batch = append(s.batch, wires[k])
				s.idx = append(s.idx, k)
			}
		}
		sa, ok := g.sad.Lookup(spi)
		if !ok {
			err := fmt.Errorf("%w: %#x", ErrUnknownSPI, spi)
			for _, k := range s.idx {
				out[k] = VerifyResult{Err: err}
			}
			continue
		}
		res := s.res[:len(s.batch)]
		buf = sa.VerifyBatchInto(res, buf, s.batch)
		for k, r := range res {
			out[s.idx[k]] = r
		}
	}
	s.release()
	return buf
}

// SAD exposes the inbound database.
func (g *Gateway) SAD() *SAD { return g.sad }

// SPD exposes the outbound policy database.
func (g *Gateway) SPD() *SPD { return g.spd }

// Journal exposes the shared durable medium.
func (g *Gateway) Journal() store.Medium { return g.cfg.Journal }

// Degraded returns the quarantined commit-lane indices of the gateway's
// medium — lanes whose journal an I/O failure poisoned — in lane order, or
// nil while fully healthy. SAs hashed to a quarantined lane stall at their
// durable horizon (outbound Seal returns core.ErrSaveLag, inbound traffic
// beyond the horizon is discarded with core.VerdictHorizon) — the
// paper-correct behaviour when SAVE cannot complete — while every other
// lane's SAs run at full speed. After the lane is repaired
// (store.Lanes.RepairLane or cluster.Standby.RepairSourceLane), WakeAll
// resumes the stalled SAs through the usual FETCH + leap + SAVE.
func (g *Gateway) Degraded() []int {
	var out []int
	for i, j := range g.cfg.Journal.LaneJournals() {
		if j.Poisoned() != nil {
			out = append(out, i)
		}
	}
	return out
}

// ResetAll crashes every SA's endpoint, as a machine reset would: all
// volatile counters and windows are lost; the journal survives.
func (g *Gateway) ResetAll() {
	snap := g.snapshot()
	for _, sa := range snap.outbound {
		sa.Sender().Reset()
	}
	for _, sa := range snap.inbound {
		sa.Receiver().Reset()
	}
	g.lifecycle("reset", len(snap.outbound)+len(snap.inbound))
}

// lifecycle reports a population-wide transition to OnLifecycle, if set.
func (g *Gateway) lifecycle(kind string, sas int) {
	if g.cfg.OnLifecycle != nil {
		g.cfg.OnLifecycle(kind, sas)
	}
}

// WakeAll runs the paper's wake-up (FETCH + leap + SAVE) on every SA and
// blocks until each endpoint is back up or fails, returning the first
// failure. The post-wake SAVEs run through the shared pool, so the whole
// population's recovery group-commits into a handful of fsyncs.
func (g *Gateway) WakeAll() error {
	snap := g.snapshot()
	g.lifecycle("wake", len(snap.outbound)+len(snap.inbound))
	for _, sa := range snap.outbound {
		sa.Sender().Wake()
	}
	for _, sa := range snap.inbound {
		sa.Receiver().Wake()
	}
	for _, sa := range snap.outbound {
		for i := 0; sa.Sender().State() != core.StateUp; i++ {
			if err := sa.Sender().LastWakeError(); err != nil {
				g.lifecycle("wake-failed", 1)
				return fmt.Errorf("ipsec: gateway wake outbound %#x: %w", sa.SPI(), err)
			}
			// An SA removed while waking is permanently down (removal
			// resets it with no wake scheduled); without this check the
			// wait would spin forever. The outbound registry is a linear
			// scan under g.mu, so the re-check is throttled to every ~5ms
			// of waiting rather than every 50µs poll.
			if i%100 == 99 && g.findOutbound(sa.SPI()) != sa {
				break
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	for _, sa := range snap.inbound {
		for sa.Receiver().State() != core.StateUp {
			if err := sa.Receiver().LastWakeError(); err != nil {
				g.lifecycle("wake-failed", 1)
				return fmt.Errorf("ipsec: gateway wake inbound %#x: %w", sa.SPI(), err)
			}
			// Same removed-while-waking check; the SAD lookup is O(1)
			// under a shard read-lock, so no throttling is needed.
			if cur, ok := g.sad.Lookup(sa.SPI()); !ok || cur != sa {
				break
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	g.lifecycle("wake-done", len(snap.outbound)+len(snap.inbound))
	return nil
}

type gatewaySnapshot struct {
	outbound []*OutboundSA
	inbound  []*InboundSA
}

// snapshot copies the SA population: outbound from the gateway's own list,
// inbound from the SAD (the single source of truth for registered inbound
// SAs, including any the caller added directly).
func (g *Gateway) snapshot() gatewaySnapshot {
	g.mu.Lock()
	snap := gatewaySnapshot{outbound: append([]*OutboundSA(nil), g.outbound...)}
	g.mu.Unlock()
	g.sad.Range(func(sa *InboundSA) bool {
		snap.inbound = append(snap.inbound, sa)
		return true
	})
	return snap
}

// retireCell permanently disposes of an SA's journal cell. Ordering is the
// whole function: the caller has already stopped the endpoint (Reset), so
// no new saves can start; the pool handle is then flushed, so every save
// already queued lands first; only then is the key erased with a
// group-committed tombstone (the "final flush" — Delete returns once the
// tombstone is durable) and the claim released. Skipping the flush would
// let a straggler save drain after the tombstone and resurrect the retired
// counter — the exact bug class removal exists to prevent. As with
// releaseCell, disposal only runs while this gateway still owns the claim;
// a best-effort error from the tombstone append is returned for
// observability but the claim is released regardless (the claim map, not
// the tombstone, guards double registration in-process).
func (g *Gateway) retireCell(key string) error {
	g.mu.Lock()
	saver, owned := g.cells[key]
	delete(g.cells, key)
	g.mu.Unlock()
	if !owned {
		return nil
	}
	if saver != nil {
		saver.Flush()
	}
	err := g.cfg.Journal.Delete(key)
	// A WakeAll whose snapshot predates the removal can race this path: if
	// its FETCH runs after the tombstone it fails safely (no saved state,
	// the endpoint stays down), but one that fetched earlier can enqueue
	// its post-wake save after the flush above. Each re-check flushes the
	// handle again and re-erases anything that slipped in; the wake's
	// startSave is synchronous with its fetch, so one extra round is the
	// realistic worst case and the loop bound is just paranoia.
	if saver != nil {
		for i := 0; i < 8; i++ {
			saver.Flush()
			if _, ok, ferr := g.cfg.Journal.Cell(key).Fetch(); ferr != nil || !ok {
				break
			}
			err = g.cfg.Journal.Delete(key)
		}
	}
	g.cfg.Journal.ReleaseCell(key)
	return err
}

// RemoveInbound tears down the inbound SA for spi: it is dropped from the
// SAD, its durable counter is erased from the journal (a group-committed
// tombstone), and the cell claim is released. Reports whether the SA
// existed. Re-establishing the same SPI later starts a fresh counter life —
// a retired SA's window edge must not be resurrected for a new SA that
// happens to reuse the SPI, since the new SA's sequence numbers restart
// at 1 and would all fall below the old edge.
func (g *Gateway) RemoveInbound(spi uint32) bool {
	sa, ok := g.sad.Lookup(spi)
	if !ok || !g.sad.Delete(spi) {
		return false
	}
	// Stop the endpoint so no further admission can trigger a save, then
	// retire the cell (flush queued saves, tombstone, release).
	sa.BeginDrain()
	sa.Receiver().Reset()
	g.retireCell(InboundKey(spi)) //nolint:errcheck // claim released either way; tombstone errors are journal-poisoning events the next save surfaces
	return true
}

// RemoveOutbound tears down the outbound SA for spi: its SPD entries are
// removed, the SA is retired from new traffic (BeginDrain), its durable
// counter is erased from the journal, and the cell claim is released.
// Reports whether the SA existed. As with RemoveInbound, re-adding the same
// SPI afterwards starts a fresh life. After a rekey cutover the SPD no
// longer references the old SA, so the removal is purely the retirement of
// its counter and claim.
func (g *Gateway) RemoveOutbound(spi uint32) bool {
	g.mu.Lock()
	var sa *OutboundSA
	kept := g.outbound[:0]
	for _, o := range g.outbound {
		if o.SPI() == spi && sa == nil {
			sa = o
			continue
		}
		kept = append(kept, o)
	}
	if sa == nil {
		g.mu.Unlock()
		return false
	}
	for i := len(kept); i < len(g.outbound); i++ {
		g.outbound[i] = nil
	}
	g.outbound = kept
	g.spd.Remove(spi)
	g.mu.Unlock()
	sa.BeginDrain()
	sa.Sender().Reset()            // stop the counter so no further save can start
	g.retireCell(OutboundKey(spi)) //nolint:errcheck // see RemoveInbound
	return true
}

// Close drains the pool if the gateway created it and releases the
// gateway's journal cell claims, so a successor gateway can be built over
// the same journal. The journal and any caller-provided pool belong to the
// caller (both may be shared with other gateways): close the pool first,
// then the gateway, then the journal. SAs must not be used afterwards.
func (g *Gateway) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	cells := g.cells
	g.cells = nil
	g.mu.Unlock()
	if g.ownPool {
		g.pool.Close()
	}
	for key := range cells {
		g.cfg.Journal.ReleaseCell(key)
	}
	return nil
}
