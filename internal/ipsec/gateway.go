package ipsec

import (
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"antireplay/internal/core"
	"antireplay/internal/store"
)

// GatewayConfig configures a Gateway.
type GatewayConfig struct {
	// Journal is the shared durable medium for every SA's counter.
	// Required.
	Journal *store.Journal
	// Pool executes the SAs' background SAVEs. Nil creates a pool of
	// Workers workers owned (drained and stopped) by the gateway. A
	// caller-provided pool is not closed by the gateway: close it before
	// Gateway.Close, or its queued saves race the journal closing.
	Pool *store.SaverPool
	// Workers sizes the owned pool when Pool is nil; <= 0 means
	// store.DefaultPoolWorkers.
	Workers int
	// K is the SAVE interval applied to each SA's sender/receiver.
	// Zero means DefaultGatewayK.
	K uint64
	// W is the anti-replay window width for inbound SAs. Zero means 64.
	W int
	// ESN enables 64-bit extended sequence numbers on inbound SAs.
	ESN bool
	// NoStrictHorizon disables the durable-horizon guard (see
	// core.SenderConfig.StrictHorizon) that gateways enable by default.
	// With a shared saver pool, background SAVEs queue behind other SAs'
	// work, so a burst can push a counter more than 2K past its durable
	// value; the guard turns that window — where a reset would reuse
	// sequence numbers or re-accept replays — into bounded backpressure
	// (core.ErrSaveLag from Seal, a discarded-then-retried packet inbound).
	// Disable only when K is provably sized for the medium's worst-case
	// queueing delay.
	NoStrictHorizon bool
	// Lifetime bounds each SA; the zero value means unbounded.
	Lifetime Lifetime
	// Clock feeds SA lifetime accounting; nil means a frozen clock.
	Clock func() time.Duration
}

// DefaultGatewayK is the SAVE interval used when GatewayConfig.K is zero —
// the paper's §4 sizing example (100µs save / 4µs send).
const DefaultGatewayK = 25

// Gateway is a multi-SA IPsec endpoint whose every security association
// persists its counter into one shared Journal through one shared
// SaverPool: the gateway-scale deployment of the paper's SAVE/FETCH
// protocol. Where the one-file-one-goroutine-per-SA pattern costs a file
// descriptor, a goroutine, and a private fsync stream per tunnel, a Gateway
// holds one log file and a bounded worker pool, and concurrent SAVEs across
// SAs group-commit under shared fsyncs.
//
// Outbound SAs register into an SPD keyed by traffic selectors; inbound SAs
// into a lock-striped SAD keyed by SPI. ResetAll / WakeAll drive the
// paper's reset protocol across the whole SA population — the §3
// "host with multiple existing SAs" scenario — with recovery cost one
// journal replay instead of one IKE renegotiation per SA.
//
// Registering an SA durably initializes its counter, costing one group
// commit; sequential AddOutbound/AddInbound calls cannot share commits, so
// populate large gateways from a few concurrent goroutines and the journal
// batches their registrations into shared fsyncs.
//
// By default every SA runs with the strict durable horizon, so the paper's
// no-reuse and no-replay guarantees hold even when pool queueing lets the
// durable counter lag more than 2K: Seal then returns core.ErrSaveLag
// (back off and retry) and inbound delivery briefly discards
// (core.VerdictHorizon) until the lagging save lands.
//
// Gateway is safe for concurrent use.
type Gateway struct {
	cfg     GatewayConfig
	pool    *store.SaverPool
	ownPool bool
	sad     *SAD
	spd     *SPD

	mu     sync.Mutex
	closed bool
	// outbound SAs are tracked here because the SPD has no iteration;
	// inbound SAs live only in the SAD (iterated via Range).
	outbound []*OutboundSA
	// claimed holds the journal keys this gateway owns, released on
	// RemoveInbound and Close.
	claimed map[string]bool
}

// claimCell claims the journal cell for key and reads whether it holds a
// prior life's state. An existing claim maps to ErrDuplicateSPI (two
// endpoints over one cell would interleave counters); other failures —
// e.g. a closed journal or gateway — pass through untouched. The gateway
// mutex is held across the journal claim so a concurrent Close cannot
// strand a claim outside the release set.
func (g *Gateway) claimCell(key string, spi uint32, dir string) (*store.Cell, bool, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return nil, false, fmt.Errorf("ipsec: gateway %s %#x: %w", dir, spi, store.ErrClosed)
	}
	cell, err := g.cfg.Journal.ClaimCell(key)
	if err != nil {
		if errors.Is(err, store.ErrCellClaimed) {
			return nil, false, fmt.Errorf("%w: %s %#x: %w", ErrDuplicateSPI, dir, spi, err)
		}
		return nil, false, fmt.Errorf("ipsec: gateway %s %#x: %w", dir, spi, err)
	}
	_, resume, err := cell.Fetch()
	if err != nil {
		g.cfg.Journal.ReleaseCell(key)
		return nil, false, fmt.Errorf("ipsec: gateway %s %#x: %w", dir, spi, err)
	}
	g.claimed[key] = true
	return cell, resume, nil
}

// releaseCell drops a claim taken by claimCell (failed registration, SA
// removal, or a registration that lost a race with Close). The journal
// release only happens while this gateway still owns the key: once Close
// has taken the claim set and released it, the same key may already belong
// to a successor gateway, and releasing it again would strip the
// successor's exclusivity.
func (g *Gateway) releaseCell(key string) {
	g.mu.Lock()
	owned := g.claimed[key]
	delete(g.claimed, key)
	g.mu.Unlock()
	if owned {
		g.cfg.Journal.ReleaseCell(key)
	}
}

// NewGateway validates cfg and returns an empty gateway.
func NewGateway(cfg GatewayConfig) (*Gateway, error) {
	if cfg.Journal == nil {
		return nil, fmt.Errorf("%w: gateway requires a journal", core.ErrConfig)
	}
	if cfg.K == 0 {
		cfg.K = DefaultGatewayK
	}
	g := &Gateway{
		cfg:     cfg,
		pool:    cfg.Pool,
		sad:     NewSAD(),
		spd:     NewSPD(),
		claimed: make(map[string]bool),
	}
	if g.pool == nil {
		g.pool = store.NewSaverPool(cfg.Workers)
		g.ownPool = true
	}
	return g, nil
}

// OutboundKey is the journal key of an outbound SA's counter.
func OutboundKey(spi uint32) string { return fmt.Sprintf("tx/%08x", spi) }

// InboundKey is the journal key of an inbound SA's window edge.
func InboundKey(spi uint32) string { return fmt.Sprintf("rx/%08x", spi) }

// AddOutbound creates an outbound SA whose sender persists into the shared
// journal under OutboundKey(spi), registers it in the SPD under sel, and
// returns it. The journal cell is claimed exclusively: reusing a live SPI —
// even from another gateway sharing the journal — is refused with
// ErrDuplicateSPI, because two senders over one cell would emit overlapping
// sequence numbers after a wake. If the journal already holds state for the
// SPI (a prior process life), the SA resumes through the paper's wake-up
// (FETCH + 2K leap + SAVE) rather than restarting at 1; it is briefly
// StateWaking — WakeAll waits for it.
func (g *Gateway) AddOutbound(spi uint32, keys KeyMaterial, sel Selector) (*OutboundSA, error) {
	key := OutboundKey(spi)
	cell, resume, err := g.claimCell(key, spi, "outbound")
	if err != nil {
		return nil, err
	}
	snd, err := core.NewSender(core.SenderConfig{
		K:             g.cfg.K,
		Store:         cell,
		Saver:         g.pool.Saver(cell),
		StrictHorizon: !g.cfg.NoStrictHorizon,
	})
	if err != nil {
		g.releaseCell(key)
		return nil, fmt.Errorf("ipsec: gateway outbound %#x: %w", spi, err)
	}
	sa, err := NewOutboundSA(spi, keys, snd, g.cfg.ESN, g.cfg.Lifetime, g.cfg.Clock)
	if err != nil {
		g.releaseCell(key)
		return nil, fmt.Errorf("ipsec: gateway outbound %#x: %w", spi, err)
	}
	if resume {
		// The cell held a prior life's counter: starting at 1 would reuse
		// every number below it. Resume via reset + wake instead.
		snd.Reset()
		snd.Wake()
	}
	g.mu.Lock()
	if g.closed {
		// Close ran between the claim and here and already released the
		// cell; completing registration would hand out an SA whose cell a
		// successor gateway can claim too. releaseCell no-ops if Close got
		// there first.
		g.mu.Unlock()
		g.releaseCell(key)
		return nil, fmt.Errorf("ipsec: gateway outbound %#x: %w", spi, store.ErrClosed)
	}
	g.outbound = append(g.outbound, sa)
	g.spd.Add(sel, sa) // inside g.mu so Close cannot interleave
	g.mu.Unlock()
	return sa, nil
}

// AddInbound creates an inbound SA whose receiver persists into the shared
// journal under InboundKey(spi), registers it in the SAD, and returns it.
// Duplicate SPIs and prior journal state are handled as in AddOutbound: the
// cell is claimed exclusively, and a recovered window edge resumes through
// the wake-up leap instead of re-accepting old sequence numbers.
func (g *Gateway) AddInbound(spi uint32, keys KeyMaterial) (*InboundSA, error) {
	key := InboundKey(spi)
	cell, resume, err := g.claimCell(key, spi, "inbound")
	if err != nil {
		return nil, err
	}
	rcv, err := core.NewReceiver(core.ReceiverConfig{
		K:             g.cfg.K,
		W:             g.cfg.W,
		Store:         cell,
		Saver:         g.pool.Saver(cell),
		StrictHorizon: !g.cfg.NoStrictHorizon,
		// Gateways admit from many NIC queues at once: use the concurrent
		// window so per-packet admission runs on the receiver fast path.
		Concurrent: true,
	})
	if err != nil {
		g.releaseCell(key)
		return nil, fmt.Errorf("ipsec: gateway inbound %#x: %w", spi, err)
	}
	sa, err := NewInboundSA(spi, keys, rcv, g.cfg.ESN, g.cfg.Lifetime, g.cfg.Clock)
	if err != nil {
		g.releaseCell(key)
		return nil, fmt.Errorf("ipsec: gateway inbound %#x: %w", spi, err)
	}
	if resume {
		rcv.Reset()
		rcv.Wake()
	}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		g.releaseCell(key)
		return nil, fmt.Errorf("ipsec: gateway inbound %#x: %w", spi, store.ErrClosed)
	}
	g.sad.Add(sa) // inside g.mu so Close cannot interleave
	g.mu.Unlock()
	return sa, nil
}

// Seal routes payload through the SPD and seals it on the matching SA.
func (g *Gateway) Seal(src, dst netip.Addr, payload []byte) ([]byte, error) {
	return g.spd.Seal(src, dst, payload)
}

// Open routes wire bytes through the SAD and opens them on the SA named by
// their SPI.
func (g *Gateway) Open(wire []byte) ([]byte, core.Verdict, error) {
	return g.sad.Open(wire)
}

// SealBatch routes a burst of payloads for one (src, dst) flow through a
// single SPD lookup and seals them on the matching SA with one sequence
// reservation (OutboundSA.SealBatch). It returns the sealed prefix; a
// non-nil error explains why the burst was cut short.
func (g *Gateway) SealBatch(src, dst netip.Addr, payloads [][]byte) ([][]byte, error) {
	if len(payloads) == 0 {
		return nil, nil
	}
	sa, ok := g.spd.Lookup(src, dst)
	if !ok {
		return nil, fmt.Errorf("%w: %v -> %v", ErrNoPolicy, src, dst)
	}
	return sa.SealBatch(payloads)
}

// VerifyBatch verifies a burst of inbound packets, amortizing SAD lookups
// and SA counter updates across the burst: packets are grouped by SPI (one
// lookup per SA, preserving each SA's arrival order) and handed to
// InboundSA.VerifyBatch. Results are positional: out[j] corresponds to
// wires[j]. Bursts from a NIC queue typically hit a handful of SAs, so a
// 64-packet batch costs a few lookups instead of 64.
func (g *Gateway) VerifyBatch(wires [][]byte) []VerifyResult {
	out := make([]VerifyResult, len(wires))
	if len(wires) == 0 {
		return out
	}
	// Group by SPI with flat scratch slices instead of a map: bursts
	// typically span a handful of SAs, so the linear rescan per distinct
	// SPI is cheap and the grouping costs four fixed allocations.
	spis := make([]uint32, len(wires))
	grouped := make([]bool, len(wires))
	batch := make([][]byte, 0, len(wires))
	idx := make([]int, 0, len(wires))
	for j, wire := range wires {
		spi, err := ParseSPI(wire)
		if err != nil {
			out[j].Err = err
			grouped[j] = true
			continue
		}
		spis[j] = spi
	}
	for j := range wires {
		if grouped[j] {
			continue
		}
		spi := spis[j]
		batch, idx = batch[:0], idx[:0]
		for k := j; k < len(wires); k++ {
			if !grouped[k] && spis[k] == spi {
				grouped[k] = true
				batch = append(batch, wires[k])
				idx = append(idx, k)
			}
		}
		sa, ok := g.sad.Lookup(spi)
		if !ok {
			err := fmt.Errorf("%w: %#x", ErrUnknownSPI, spi)
			for _, k := range idx {
				out[k].Err = err
			}
			continue
		}
		for k, res := range sa.VerifyBatch(batch) {
			out[idx[k]] = res
		}
	}
	return out
}

// SAD exposes the inbound database.
func (g *Gateway) SAD() *SAD { return g.sad }

// SPD exposes the outbound policy database.
func (g *Gateway) SPD() *SPD { return g.spd }

// Journal exposes the shared durable medium.
func (g *Gateway) Journal() *store.Journal { return g.cfg.Journal }

// ResetAll crashes every SA's endpoint, as a machine reset would: all
// volatile counters and windows are lost; the journal survives.
func (g *Gateway) ResetAll() {
	snap := g.snapshot()
	for _, sa := range snap.outbound {
		sa.Sender().Reset()
	}
	for _, sa := range snap.inbound {
		sa.Receiver().Reset()
	}
}

// WakeAll runs the paper's wake-up (FETCH + leap + SAVE) on every SA and
// blocks until each endpoint is back up or fails, returning the first
// failure. The post-wake SAVEs run through the shared pool, so the whole
// population's recovery group-commits into a handful of fsyncs.
func (g *Gateway) WakeAll() error {
	snap := g.snapshot()
	for _, sa := range snap.outbound {
		sa.Sender().Wake()
	}
	for _, sa := range snap.inbound {
		sa.Receiver().Wake()
	}
	for _, sa := range snap.outbound {
		for sa.Sender().State() != core.StateUp {
			if err := sa.Sender().LastWakeError(); err != nil {
				return fmt.Errorf("ipsec: gateway wake outbound %#x: %w", sa.SPI(), err)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	for _, sa := range snap.inbound {
		for sa.Receiver().State() != core.StateUp {
			if err := sa.Receiver().LastWakeError(); err != nil {
				return fmt.Errorf("ipsec: gateway wake inbound %#x: %w", sa.SPI(), err)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	return nil
}

type gatewaySnapshot struct {
	outbound []*OutboundSA
	inbound  []*InboundSA
}

// snapshot copies the SA population: outbound from the gateway's own list,
// inbound from the SAD (the single source of truth for registered inbound
// SAs, including any the caller added directly).
func (g *Gateway) snapshot() gatewaySnapshot {
	g.mu.Lock()
	snap := gatewaySnapshot{outbound: append([]*OutboundSA(nil), g.outbound...)}
	g.mu.Unlock()
	g.sad.Range(func(sa *InboundSA) bool {
		snap.inbound = append(snap.inbound, sa)
		return true
	})
	return snap
}

// RemoveInbound tears down the inbound SA for spi: it is dropped from the
// SAD and its journal cell claim is released, so the SPI can be
// re-established (e.g. a rekey reusing the SPI) against the recovered
// counter. Reports whether the SA existed. (Outbound SAs cannot be removed
// — the SPD holds policies for their whole lifetime — but Close releases
// every claim when the gateway goes away.)
func (g *Gateway) RemoveInbound(spi uint32) bool {
	if !g.sad.Delete(spi) {
		return false
	}
	g.releaseCell(InboundKey(spi))
	return true
}

// Close drains the pool if the gateway created it and releases the
// gateway's journal cell claims, so a successor gateway can be built over
// the same journal. The journal and any caller-provided pool belong to the
// caller (both may be shared with other gateways): close the pool first,
// then the gateway, then the journal. SAs must not be used afterwards.
func (g *Gateway) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	claimed := g.claimed
	g.claimed = nil
	g.mu.Unlock()
	if g.ownPool {
		g.pool.Close()
	}
	for key := range claimed {
		g.cfg.Journal.ReleaseCell(key)
	}
	return nil
}
