package ipsec

import (
	"bytes"
	"runtime"
	"testing"

	"antireplay/internal/store"
)

// saHeapBudget is the pinned per-SA heap budget in bytes: gateway map
// entries, the SAD stripe slot, the inbound SA (window, HMAC states,
// receiver), its journal cell, and the pool handle. The compact cell
// representation is what keeps the journal side near-zero (a packed uint64
// key instead of map+string per counter); measured ~3.2 KiB/SA on the
// reference host, pinned with headroom so a regression trips loudly, not
// flakily.
const saHeapBudget = 4096

// TestSAFootprint pins heap bytes per installed SA so the compact cell
// representation can't silently regress. 100k inbound SAs are installed on
// one gateway over a 64-lane medium — the ISSUE's million-SA configuration,
// downscaled to keep the test seconds-long — and the before/after
// runtime.ReadMemStats delta is divided out.
func TestSAFootprint(t *testing.T) {
	if testing.Short() {
		t.Skip("footprint measurement is slow")
	}
	const n = 100_000

	lanes, err := store.OpenLanes(t.TempDir(), store.LanesWithoutSync())
	if err != nil {
		t.Fatalf("OpenLanes: %v", err)
	}
	defer lanes.Close()
	gw, err := NewGateway(GatewayConfig{Journal: lanes})
	if err != nil {
		t.Fatalf("NewGateway: %v", err)
	}
	defer gw.Close()

	keys := KeyMaterial{AuthKey: bytes.Repeat([]byte{0x5A}, AuthKeySize)}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	for i := 0; i < n; i++ {
		if _, err := gw.AddInbound(uint32(i+1), keys); err != nil {
			t.Fatalf("AddInbound %d: %v", i, err)
		}
	}

	runtime.GC()
	runtime.ReadMemStats(&after)
	perSA := (after.HeapAlloc - before.HeapAlloc) / n
	t.Logf("%d SAs: %.1f MiB heap, %d bytes/SA (budget %d)",
		n, float64(after.HeapAlloc-before.HeapAlloc)/(1<<20), perSA, saHeapBudget)
	if perSA > saHeapBudget {
		t.Errorf("heap footprint %d bytes/SA exceeds the %d budget", perSA, saHeapBudget)
	}

	// The population must actually work: spot-check admission state exists
	// on a few SAs across the SPI (and so lane) range.
	for _, spi := range []uint32{1, n / 2, n} {
		if _, ok := gw.SAD().Lookup(spi); !ok {
			t.Errorf("SAD lacks SPI %#x", spi)
		}
	}
}
