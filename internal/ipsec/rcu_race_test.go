package ipsec

import (
	"net/netip"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"antireplay/internal/store"
)

// TestRaceRCUDatapath hammers the RCU read side of both databases — SAD
// lookups/opens and SPD lookups/seals from many goroutines — while the
// control plane concurrently mutates them: Add, Delete, Replace-style rekey
// cutovers (RekeyOutbound/RekeyInbound through the gateway), and removals.
// Run with -race. The assertions are the RCU safety contract:
//
//   - a reader never observes a half-updated database (every lookup either
//     misses cleanly or returns a fully constructed SA);
//   - traffic sealed via a snapshot that still points at the old generation
//     keeps verifying during the overlap (make-before-break);
//   - exactly-once: no sequence number is ever delivered twice, across all
//     generations, under any interleaving of cutovers and lookups.
func TestRaceRCUDatapath(t *testing.T) {
	j, err := store.OpenJournal(filepath.Join(t.TempDir(), "j.log"), store.JournalWithoutSync())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	g, err := NewGateway(GatewayConfig{Journal: j, K: 64, W: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	src := netip.MustParseAddr("10.0.0.1")
	dst := netip.MustParseAddr("10.0.1.1")
	sel := Selector{
		Src: netip.MustParsePrefix("10.0.0.1/32"),
		Dst: netip.MustParsePrefix("10.0.1.1/32"),
	}
	if _, err := g.AddOutbound(1, testKeys(false), sel); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddInbound(1, testKeys(false)); err != nil {
		t.Fatal(err)
	}

	var (
		stop      atomic.Bool
		delivered sync.Map // payload identity (seq echoed in payload) -> seen
		wg        sync.WaitGroup
	)

	// Writers: rekey the tunnel through successive generations, plus churn
	// unrelated SAD/SPD entries so copy-on-write rebuilds overlap lookups.
	wg.Add(1)
	go func() {
		defer wg.Done()
		spi := uint32(1)
		for i := 0; i < 24; i++ {
			next := spi + 1
			if _, err := g.RekeyInbound(spi, next, testKeys(false)); err != nil {
				t.Errorf("RekeyInbound: %v", err)
				return
			}
			if _, err := g.RekeyOutbound(spi, next, testKeys(false)); err != nil {
				t.Errorf("RekeyOutbound: %v", err)
				return
			}
			// Old inbound generation lingers for in-flight packets, then
			// retires; the old outbound is fully cut over already.
			g.RemoveOutbound(spi)
			g.RemoveInbound(spi)
			spi = next
		}
		stop.Store(true)
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		churnSel := Selector{
			Src: netip.MustParsePrefix("10.9.0.0/16"),
			Dst: netip.MustParsePrefix("10.10.0.0/16"),
		}
		for i := uint32(0); !stop.Load(); i++ {
			spi := 0x9000 + i%8
			if sa, err := g.AddInbound(spi, testKeys(false)); err == nil && sa == nil {
				t.Error("AddInbound returned nil SA without error")
			}
			if _, err := g.AddOutbound(spi, testKeys(false), churnSel); err == nil {
				g.RemoveOutbound(spi)
			}
			g.RemoveInbound(spi)
		}
	}()

	// Readers: seal through whatever SPD snapshot they observe and verify
	// through whatever SAD snapshot routes the SPI. ErrDraining and
	// ErrUnknownSPI are legitimate transients of a cutover racing a lookup;
	// double delivery never is.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			payload := make([]byte, 16)
			for i := 0; !stop.Load(); i++ {
				payload[0], payload[1] = byte(r), byte(i)
				wire, err := g.Seal(src, dst, payload)
				if err != nil {
					continue // draining/horizon backpressure mid-cutover
				}
				spi, _ := ParseSPI(wire)
				seqLo, _ := ParseSeqLo(wire)
				pt, verdict, err := g.Open(wire)
				if err != nil {
					continue // SA retired between seal and open
				}
				if verdict.Delivered() {
					if pt[0] != byte(r) || pt[1] != byte(i) {
						t.Errorf("payload corrupted across seal/open")
						return
					}
					key := uint64(spi)<<32 | uint64(seqLo)
					if _, dup := delivered.LoadOrStore(key, struct{}{}); dup {
						t.Errorf("spi %#x seq %d delivered twice", spi, seqLo)
						return
					}
					// Replay must never deliver again, on any snapshot.
					if _, v2, err2 := g.Open(wire); err2 == nil && v2.Delivered() {
						t.Errorf("replay of spi %#x seq %d delivered", spi, seqLo)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
}
