package ipsec

import (
	"bytes"
	"errors"
	"net/netip"
	"testing"
	"time"

	"antireplay/internal/core"
	"antireplay/internal/store"
)

func testKeys(enc bool) KeyMaterial {
	k := KeyMaterial{AuthKey: bytes.Repeat([]byte{0xA1}, AuthKeySize)}
	if enc {
		k.EncKey = bytes.Repeat([]byte{0xB2}, EncKeySize)
	}
	return k
}

func newSenderT(t *testing.T, k uint64) (*core.Sender, *store.Mem) {
	t.Helper()
	var m store.Mem
	s, err := core.NewSender(core.SenderConfig{K: k, Store: &m})
	if err != nil {
		t.Fatalf("NewSender: %v", err)
	}
	return s, &m
}

func newReceiverT(t *testing.T, k uint64, w int) (*core.Receiver, *store.Mem) {
	t.Helper()
	var m store.Mem
	r, err := core.NewReceiver(core.ReceiverConfig{K: k, Store: &m, W: w})
	if err != nil {
		t.Fatalf("NewReceiver: %v", err)
	}
	return r, &m
}

func newPair(t *testing.T, enc, esn bool) (*OutboundSA, *InboundSA) {
	t.Helper()
	snd, _ := newSenderT(t, 25)
	rcv, _ := newReceiverT(t, 25, 64)
	out, err := NewOutboundSA(0x1001, testKeys(enc), snd, false, Lifetime{}, nil)
	if err != nil {
		t.Fatalf("NewOutboundSA: %v", err)
	}
	in, err := NewInboundSA(0x1001, testKeys(enc), rcv, esn, Lifetime{}, nil)
	if err != nil {
		t.Fatalf("NewInboundSA: %v", err)
	}
	return out, in
}

func TestKeyMaterialValidate(t *testing.T) {
	tests := []struct {
		name string
		k    KeyMaterial
		ok   bool
	}{
		{"auth only", testKeys(false), true},
		{"auth+enc", testKeys(true), true},
		{"short auth", KeyMaterial{AuthKey: make([]byte, 16)}, false},
		{"no auth", KeyMaterial{}, false},
		{"bad enc", KeyMaterial{AuthKey: make([]byte, 32), EncKey: make([]byte, 8)}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.k.Validate()
			if tt.ok && err != nil {
				t.Errorf("Validate = %v, want nil", err)
			}
			if !tt.ok && !errors.Is(err, ErrKeySize) {
				t.Errorf("Validate = %v, want ErrKeySize", err)
			}
		})
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	for _, enc := range []bool{false, true} {
		name := "integrity-only"
		if enc {
			name = "encrypted"
		}
		t.Run(name, func(t *testing.T) {
			out, in := newPair(t, enc, false)
			payload := []byte("attack at dawn")
			wire, err := out.Seal(payload)
			if err != nil {
				t.Fatalf("Seal: %v", err)
			}
			if len(wire) != len(payload)+Overhead {
				t.Errorf("wire len = %d, want %d", len(wire), len(payload)+Overhead)
			}
			if enc && bytes.Contains(wire, payload) {
				t.Error("plaintext visible in encrypted packet")
			}
			if !enc && !bytes.Contains(wire, payload) {
				t.Error("integrity-only packet should carry plaintext")
			}
			got, verdict, err := in.Open(wire)
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			if !verdict.Delivered() {
				t.Fatalf("verdict = %v, want delivered", verdict)
			}
			if !bytes.Equal(got, payload) {
				t.Errorf("payload = %q, want %q", got, payload)
			}
		})
	}
}

func TestOpenEmptyPayload(t *testing.T) {
	out, in := newPair(t, true, false)
	wire, err := out.Seal(nil)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	got, verdict, err := in.Open(wire)
	if err != nil || !verdict.Delivered() {
		t.Fatalf("Open = %v %v", verdict, err)
	}
	if len(got) != 0 {
		t.Errorf("payload = %q, want empty", got)
	}
}

func TestTamperDetection(t *testing.T) {
	out, in := newPair(t, true, false)
	wire, err := out.Seal([]byte("payload payload payload"))
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	tests := []struct {
		name string
		at   int
	}{
		{"spi bit", 0},
		{"seq bit", 5},
		{"payload bit", headerLen + 3},
		{"icv bit", len(wire) - 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tampered := make([]byte, len(wire))
			copy(tampered, wire)
			tampered[tt.at] ^= 0x01
			_, _, err := in.Open(tampered)
			if err == nil {
				t.Fatal("Open accepted tampered packet")
			}
			if tt.name == "spi bit" {
				if !errors.Is(err, ErrUnknownSPI) {
					t.Errorf("err = %v, want ErrUnknownSPI", err)
				}
				return
			}
			if !errors.Is(err, ErrAuth) {
				t.Errorf("err = %v, want ErrAuth", err)
			}
		})
	}
	_, _, authFails, _ := in.Counters()
	if authFails != 3 {
		t.Errorf("authFails = %d, want 3", authFails)
	}
}

func TestWrongKeyRejected(t *testing.T) {
	out, _ := newPair(t, true, false)
	rcv, _ := newReceiverT(t, 25, 64)
	otherKeys := KeyMaterial{AuthKey: bytes.Repeat([]byte{0xFF}, AuthKeySize), EncKey: bytes.Repeat([]byte{0xEE}, EncKeySize)}
	in, err := NewInboundSA(0x1001, otherKeys, rcv, false, Lifetime{}, nil)
	if err != nil {
		t.Fatalf("NewInboundSA: %v", err)
	}
	wire, _ := out.Seal([]byte("x"))
	if _, _, err := in.Open(wire); !errors.Is(err, ErrAuth) {
		t.Errorf("Open with wrong key = %v, want ErrAuth", err)
	}
}

func TestReplayRejected(t *testing.T) {
	out, in := newPair(t, true, false)
	wire, _ := out.Seal([]byte("once"))
	if _, v, err := in.Open(wire); err != nil || !v.Delivered() {
		t.Fatalf("first Open = %v %v", v, err)
	}
	_, v, err := in.Open(wire)
	if err != nil {
		t.Fatalf("replay Open err = %v", err)
	}
	if v.Delivered() {
		t.Fatal("SAFETY: replayed packet delivered")
	}
	if v != core.VerdictDuplicate {
		t.Errorf("verdict = %v, want duplicate", v)
	}
	_, _, _, replays := in.Counters()
	if replays != 1 {
		t.Errorf("replays = %d, want 1", replays)
	}
}

func TestShortPacket(t *testing.T) {
	_, in := newPair(t, false, false)
	if _, _, err := in.Open(make([]byte, 5)); !errors.Is(err, ErrShortPacket) {
		t.Errorf("Open(short) = %v, want ErrShortPacket", err)
	}
	if _, err := ParseSPI(nil); !errors.Is(err, ErrShortPacket) {
		t.Errorf("ParseSPI(nil) = %v, want ErrShortPacket", err)
	}
	if _, err := ParseSeqLo(make([]byte, 3)); !errors.Is(err, ErrShortPacket) {
		t.Errorf("ParseSeqLo = %v, want ErrShortPacket", err)
	}
}

func TestESNAcrossSubspaceBoundary(t *testing.T) {
	// Drive both counters near 2^32 via a stored value plus wake leap, then
	// exchange packets across the 32-bit boundary: the inbound SA must
	// reconstruct the high bits and authenticate successfully.
	const k = 25
	base := uint64(1)<<32 - 10

	var sm store.Mem
	if err := sm.Save(base); err != nil {
		t.Fatal(err)
	}
	snd, err := core.NewSender(core.SenderConfig{K: k, Store: &sm})
	if err != nil {
		t.Fatalf("NewSender: %v", err)
	}
	snd.Reset()
	snd.Wake() // resumes at base + 2k, just below 2^32

	// Store a slightly older edge on the receiver so its leaped edge lands
	// below the sender's resumed counter (otherwise the first packet, whose
	// seq equals the edge, is sacrificed as the paper predicts).
	var rm store.Mem
	if err := rm.Save(base - k); err != nil {
		t.Fatal(err)
	}
	rcv, err := core.NewReceiver(core.ReceiverConfig{K: k, Store: &rm, W: 64})
	if err != nil {
		t.Fatalf("NewReceiver: %v", err)
	}
	rcv.Reset()
	rcv.Wake() // edge = base + 2k

	out, err := NewOutboundSA(7, testKeys(true), snd, true, Lifetime{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewInboundSA(7, testKeys(true), rcv, true, Lifetime{}, nil)
	if err != nil {
		t.Fatal(err)
	}

	delivered := 0
	for i := 0; i < 100; i++ { // crosses 2^32
		wire, err := out.Seal([]byte{byte(i)})
		if err != nil {
			t.Fatalf("Seal %d: %v", i, err)
		}
		payload, v, err := in.Open(wire)
		if err != nil {
			t.Fatalf("Open %d: %v (edge %#x)", i, err, rcv.Edge())
		}
		if v.Delivered() {
			delivered++
			if payload[0] != byte(i) {
				t.Fatalf("payload %d = %d", i, payload[0])
			}
		}
	}
	if delivered != 100 {
		t.Errorf("delivered %d of 100 across ESN boundary", delivered)
	}
	if rcv.Edge() <= 1<<32 {
		t.Errorf("edge %#x did not cross 2^32", rcv.Edge())
	}
}

func TestLifetimeBytes(t *testing.T) {
	snd, _ := newSenderT(t, 25)
	out, err := NewOutboundSA(1, testKeys(false), snd, false, Lifetime{SoftBytes: 40, HardBytes: 80}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.State() != LifetimeOK {
		t.Errorf("State = %v, want ok", out.State())
	}
	if _, err := out.Seal(make([]byte, 30)); err != nil {
		t.Fatal(err)
	}
	if out.State() != LifetimeSoft {
		t.Errorf("State = %v, want soft after 50 bytes", out.State())
	}
	if _, err := out.Seal(make([]byte, 30)); err != nil {
		t.Fatal(err)
	}
	if out.State() != LifetimeHard {
		t.Errorf("State = %v, want hard after 100 bytes", out.State())
	}
	if _, err := out.Seal([]byte("x")); !errors.Is(err, ErrHardExpired) {
		t.Errorf("Seal past hard = %v, want ErrHardExpired", err)
	}
}

func TestLifetimeTime(t *testing.T) {
	var now time.Duration
	clock := func() time.Duration { return now }
	snd, _ := newSenderT(t, 25)
	out, err := NewOutboundSA(1, testKeys(false), snd, false, Lifetime{SoftTime: time.Hour, HardTime: 2 * time.Hour}, clock)
	if err != nil {
		t.Fatal(err)
	}
	if out.State() != LifetimeOK {
		t.Errorf("State = %v, want ok", out.State())
	}
	now = 90 * time.Minute
	if out.State() != LifetimeSoft {
		t.Errorf("State = %v, want soft", out.State())
	}
	now = 3 * time.Hour
	if out.State() != LifetimeHard {
		t.Errorf("State = %v, want hard", out.State())
	}
}

func TestLifetimeStateString(t *testing.T) {
	if LifetimeOK.String() != "ok" || LifetimeSoft.String() != "soft" || LifetimeHard.String() != "hard" {
		t.Error("LifetimeState.String mismatch")
	}
}

func TestSADRouting(t *testing.T) {
	out1, in1 := newPair(t, true, false)
	_ = out1
	snd2, _ := newSenderT(t, 25)
	rcv2, _ := newReceiverT(t, 25, 64)
	out2, err := NewOutboundSA(0x2002, testKeys(false), snd2, false, Lifetime{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	in2, err := NewInboundSA(0x2002, testKeys(false), rcv2, false, Lifetime{}, nil)
	if err != nil {
		t.Fatal(err)
	}

	sad := NewSAD()
	sad.Add(in1)
	sad.Add(in2)
	if sad.Len() != 2 {
		t.Fatalf("Len = %d, want 2", sad.Len())
	}

	wire, _ := out2.Seal([]byte("via sad"))
	payload, v, err := sad.Open(wire)
	if err != nil || !v.Delivered() {
		t.Fatalf("SAD.Open = %v %v", v, err)
	}
	if string(payload) != "via sad" {
		t.Errorf("payload = %q", payload)
	}

	if !sad.Delete(0x2002) {
		t.Error("Delete existing = false")
	}
	if sad.Delete(0x2002) {
		t.Error("Delete missing = true")
	}
	if _, _, err := sad.Open(wire); !errors.Is(err, ErrUnknownSPI) {
		t.Errorf("Open after delete = %v, want ErrUnknownSPI", err)
	}
}

func TestSPDFirstMatch(t *testing.T) {
	sndA, _ := newSenderT(t, 25)
	sndB, _ := newSenderT(t, 25)
	saA, err := NewOutboundSA(1, testKeys(false), sndA, false, Lifetime{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	saB, err := NewOutboundSA(2, testKeys(false), sndB, false, Lifetime{}, nil)
	if err != nil {
		t.Fatal(err)
	}

	spd := NewSPD()
	spd.Add(Selector{
		Src: netip.MustParsePrefix("10.1.0.0/16"),
		Dst: netip.MustParsePrefix("10.2.0.0/16"),
	}, saA)
	spd.Add(Selector{
		Src: netip.MustParsePrefix("10.0.0.0/8"),
		Dst: netip.MustParsePrefix("10.0.0.0/8"),
	}, saB)
	if spd.Len() != 2 {
		t.Fatalf("Len = %d", spd.Len())
	}

	sa, ok := spd.Lookup(netip.MustParseAddr("10.1.5.5"), netip.MustParseAddr("10.2.9.9"))
	if !ok || sa.SPI() != 1 {
		t.Errorf("Lookup = %v %v, want SPI 1 (first match)", sa, ok)
	}
	sa, ok = spd.Lookup(netip.MustParseAddr("10.9.5.5"), netip.MustParseAddr("10.8.9.9"))
	if !ok || sa.SPI() != 2 {
		t.Errorf("Lookup = %v %v, want SPI 2", sa, ok)
	}
	if _, ok := spd.Lookup(netip.MustParseAddr("192.168.1.1"), netip.MustParseAddr("10.0.0.1")); ok {
		t.Error("Lookup outside policy should fail")
	}

	wire, err := spd.Seal(netip.MustParseAddr("10.1.5.5"), netip.MustParseAddr("10.2.9.9"), []byte("hi"))
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if spi, _ := ParseSPI(wire); spi != 1 {
		t.Errorf("sealed with SPI %d, want 1", spi)
	}
	if _, err := spd.Seal(netip.MustParseAddr("192.168.1.1"), netip.MustParseAddr("8.8.8.8"), []byte("hi")); !errors.Is(err, ErrNoPolicy) {
		t.Errorf("Seal without policy = %v, want ErrNoPolicy", err)
	}
}

func TestInboundSAResetRecoveryEndToEnd(t *testing.T) {
	// The full paper scenario over authenticated packets: receiver resets,
	// wakes with the leap, rejects authentic replays, accepts fresh traffic.
	out, in := newPair(t, true, false)
	var history [][]byte
	for i := 0; i < 60; i++ {
		wire, err := out.Seal([]byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		history = append(history, wire)
		if _, v, err := in.Open(wire); err != nil || !v.Delivered() {
			t.Fatalf("Open %d = %v %v", i, v, err)
		}
	}

	in.Receiver().Reset()
	in.Receiver().Wake() // sync saver: wake completes immediately

	for i, wire := range history {
		_, v, err := in.Open(wire)
		if err != nil {
			t.Fatalf("replay Open %d: %v", i, err)
		}
		if v.Delivered() {
			t.Fatalf("SAFETY: replayed packet %d delivered after reset", i)
		}
	}

	// Fresh traffic from the (non-reset) sender: its counter (61...) is
	// below the receiver's leaped edge, so the paper predicts a bounded
	// sacrifice of fresh packets, then normal delivery.
	deliveredAgain := 0
	for i := 0; i < 200; i++ {
		wire, err := out.Seal([]byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		if _, v, err := in.Open(wire); err == nil && v.Delivered() {
			deliveredAgain++
		}
	}
	if deliveredAgain == 0 {
		t.Error("no fresh traffic delivered after receiver recovery")
	}
	// Bound: discarded fresh <= 2Kq = 50.
	if discarded := 200 - deliveredAgain; discarded > 50 {
		t.Errorf("fresh discards after reset = %d, bound 50", discarded)
	}
}

func TestOutboundCounters(t *testing.T) {
	out, _ := newPair(t, false, false)
	if _, err := out.Seal(make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	bytes_, packets := out.Counters()
	if packets != 1 || bytes_ != 10+Overhead {
		t.Errorf("Counters = (%d, %d), want (%d, 1)", bytes_, packets, 10+Overhead)
	}
}
