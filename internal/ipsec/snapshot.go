package ipsec

import (
	"fmt"

	"antireplay/internal/store"
)

// GatewaySnapshot is a gateway's control-plane state: the SA population with
// keys, traffic selectors, rekey lineage, and drain marks — everything a
// standby needs to mirror the gateway, and nothing the journal already
// carries (the counters themselves travel through journal replication, not
// through snapshots). Snapshots are plain data: safe to serialize, diff, or
// hold across a failover.
type GatewaySnapshot struct {
	Outbound []OutboundSnapshot
	Inbound  []InboundSnapshot
}

// OutboundSnapshot describes one outbound SA and its SPD entries.
type OutboundSnapshot struct {
	SPI       uint32
	Keys      KeyMaterial
	Selectors []Selector
	// Generation and PrevSPI record the rekey lineage; Draining marks an SA
	// a rollover has already cut traffic away from.
	Generation uint64
	PrevSPI    uint32
	Draining   bool
}

// InboundSnapshot describes one inbound SA.
type InboundSnapshot struct {
	SPI        uint32
	Keys       KeyMaterial
	Generation uint64
	PrevSPI    uint32
	Draining   bool
}

// copyKeys deep-copies key material so snapshots do not alias live SA state.
func copyKeys(k KeyMaterial) KeyMaterial {
	out := KeyMaterial{AuthKey: append([]byte(nil), k.AuthKey...)}
	if len(k.EncKey) > 0 {
		out.EncKey = append([]byte(nil), k.EncKey...)
	}
	return out
}

// Snapshot exports the gateway's control-plane state for a standby's mirror
// (Adopt on the standby's gateway). The snapshot is consistent per SA but
// not across the population: SAs added or removed concurrently may or may
// not appear, exactly as with SAD.Range. Counters are not included — they
// are the journal's, and reach a standby through journal replication.
func (g *Gateway) Snapshot() GatewaySnapshot {
	g.mu.Lock()
	outs := append([]*OutboundSA(nil), g.outbound...)
	g.mu.Unlock()

	sels := make(map[*OutboundSA][]Selector)
	g.spd.Range(func(sel Selector, sa *OutboundSA) bool {
		sels[sa] = append(sels[sa], sel)
		return true
	})

	var snap GatewaySnapshot
	for _, sa := range outs {
		snap.Outbound = append(snap.Outbound, OutboundSnapshot{
			SPI:        sa.SPI(),
			Keys:       copyKeys(sa.keys),
			Selectors:  append([]Selector(nil), sels[sa]...),
			Generation: sa.Generation(),
			PrevSPI:    sa.PrevSPI(),
			Draining:   sa.Draining(),
		})
	}
	g.sad.Range(func(sa *InboundSA) bool {
		snap.Inbound = append(snap.Inbound, InboundSnapshot{
			SPI:        sa.SPI(),
			Keys:       copyKeys(sa.keys),
			Generation: sa.Generation(),
			PrevSPI:    sa.PrevSPI(),
			Draining:   sa.Draining(),
		})
		return true
	})
	return snap
}

// Adopt reconciles the gateway's SA population to snap, building a warm
// standby image: SAs in the snapshot but not yet registered are created in
// the DOWN state (they hold their journal cell claims but neither send nor
// receive — and crucially never wake, so the standby writes nothing into
// cells the replication stream owns); SAs already registered have their
// drain marks updated; SAs no longer in the snapshot are forgotten —
// dropped from the databases and their claims released WITHOUT a journal
// tombstone, because on a follower journal the authoritative tombstone
// arrives through the replication stream and a local one would race it.
//
// Adopt is idempotent: re-adopting the same snapshot is a no-op, and a
// failed adoption (the first error is returned) can simply be retried with
// the next snapshot. It is meant for gateways that are not serving traffic
// — a cluster standby's image — not for live reconfiguration; takeover
// turns the image live with ResetAll-free WakeAll (every adopted SA is
// already down, so waking IS the paper's recovery).
func (g *Gateway) Adopt(snap GatewaySnapshot) error {
	wantOut := make(map[uint32]OutboundSnapshot, len(snap.Outbound))
	for _, ob := range snap.Outbound {
		wantOut[ob.SPI] = ob
	}
	wantIn := make(map[uint32]InboundSnapshot, len(snap.Inbound))
	for _, ib := range snap.Inbound {
		wantIn[ib.SPI] = ib
	}

	// Forget SAs that left the population (rekey retirements on the
	// primary): claims released, no tombstones (see the doc comment).
	g.mu.Lock()
	var dropOut []uint32
	for _, sa := range g.outbound {
		if _, ok := wantOut[sa.SPI()]; !ok {
			dropOut = append(dropOut, sa.SPI())
		}
	}
	g.mu.Unlock()
	for _, spi := range dropOut {
		g.forgetOutbound(spi)
	}
	var dropIn []uint32
	g.sad.Range(func(sa *InboundSA) bool {
		if _, ok := wantIn[sa.SPI()]; !ok {
			dropIn = append(dropIn, sa.SPI())
		}
		return true
	})
	for _, spi := range dropIn {
		g.forgetInbound(spi)
	}

	// Add (or update) the snapshot's SAs, preserving snapshot order so a
	// first-match-wins SPD mirrors the primary's.
	for _, ob := range snap.Outbound {
		if existing := g.findOutbound(ob.SPI); existing != nil {
			if ob.Draining {
				existing.BeginDrain()
			}
			continue
		}
		sa, err := g.buildOutbound(ob.SPI, copyKeys(ob.Keys), true)
		if err != nil {
			return fmt.Errorf("ipsec: adopt outbound %#x: %w", ob.SPI, err)
		}
		sa.setLineage(ob.Generation, ob.PrevSPI)
		if ob.Draining {
			sa.BeginDrain()
		}
		g.mu.Lock()
		if g.closed {
			g.mu.Unlock()
			g.releaseCell(OutboundKey(ob.SPI))
			return fmt.Errorf("ipsec: adopt outbound %#x: %w", ob.SPI, store.ErrClosed)
		}
		g.outbound = append(g.outbound, sa)
		for _, sel := range ob.Selectors {
			g.spd.Add(sel, sa)
		}
		g.mu.Unlock()
	}
	for _, ib := range snap.Inbound {
		if existing, ok := g.sad.Lookup(ib.SPI); ok {
			if ib.Draining {
				existing.BeginDrain()
			}
			continue
		}
		sa, err := g.buildInbound(ib.SPI, copyKeys(ib.Keys), true)
		if err != nil {
			return fmt.Errorf("ipsec: adopt inbound %#x: %w", ib.SPI, err)
		}
		sa.setLineage(ib.Generation, ib.PrevSPI)
		if ib.Draining {
			sa.BeginDrain()
		}
		g.mu.Lock()
		if g.closed {
			g.mu.Unlock()
			g.releaseCell(InboundKey(ib.SPI))
			return fmt.Errorf("ipsec: adopt inbound %#x: %w", ib.SPI, store.ErrClosed)
		}
		g.sad.Add(sa)
		g.mu.Unlock()
	}
	return nil
}

// forgetOutbound unregisters the outbound SA for spi and releases its
// journal cell claim without tombstoning the cell — the mirror-side removal
// for SAs retired on the primary, whose tombstone arrives through the
// replication stream instead. Reports whether the SA existed.
func (g *Gateway) forgetOutbound(spi uint32) bool {
	g.mu.Lock()
	var sa *OutboundSA
	kept := g.outbound[:0]
	for _, o := range g.outbound {
		if o.SPI() == spi && sa == nil {
			sa = o
			continue
		}
		kept = append(kept, o)
	}
	if sa == nil {
		g.mu.Unlock()
		return false
	}
	for i := len(kept); i < len(g.outbound); i++ {
		g.outbound[i] = nil
	}
	g.outbound = kept
	g.spd.Remove(spi)
	g.mu.Unlock()
	sa.BeginDrain()
	sa.Sender().Reset() // stop the endpoint; no further saves can start
	g.releaseCell(OutboundKey(spi))
	return true
}

// forgetInbound is forgetOutbound's inbound counterpart.
func (g *Gateway) forgetInbound(spi uint32) bool {
	sa, ok := g.sad.Lookup(spi)
	if !ok || !g.sad.Delete(spi) {
		return false
	}
	sa.BeginDrain()
	sa.Receiver().Reset()
	g.releaseCell(InboundKey(spi))
	return true
}
