package ipsec

import (
	"fmt"
	"net/netip"
	"strings"
	"testing"

	"antireplay/internal/core"
	"antireplay/internal/raceflag"
	"antireplay/internal/store"
	"antireplay/internal/telemetry"
)

// The steady-state datapath contract, pinned: SealAppend, OpenAppend, and
// the gateway batch verify path allocate NOTHING per packet once their
// reusable buffers have warmed up. CI runs these in the non-race test pass;
// a regression here means a per-packet allocation crept back into the hot
// path. (Skipped under -race: the detector's instrumentation allocates.)

func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceflag.Enabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
}

func newBenchOutbound(t testing.TB) *OutboundSA {
	t.Helper()
	var m store.Mem
	snd, err := core.NewSender(core.SenderConfig{K: 1 << 30, Store: &m})
	if err != nil {
		t.Fatal(err)
	}
	sa, err := NewOutboundSA(0x1001, testKeys(true), snd, true, Lifetime{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return sa
}

func newBenchInbound(t testing.TB, spi uint32) *InboundSA {
	t.Helper()
	var m store.Mem
	rcv, err := core.NewReceiver(core.ReceiverConfig{K: 1 << 30, W: 1024, Store: &m, Concurrent: true})
	if err != nil {
		t.Fatal(err)
	}
	sa, err := NewInboundSA(spi, testKeys(true), rcv, true, Lifetime{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return sa
}

func TestZeroAllocSealAppend(t *testing.T) {
	skipUnderRace(t)
	sa := newBenchOutbound(t)
	payload := make([]byte, 256)
	buf := make([]byte, 0, 4096)
	if got := testing.AllocsPerRun(500, func() {
		out, err := sa.SealAppend(buf[:0], payload)
		if err != nil {
			t.Fatal(err)
		}
		buf = out[:0]
	}); got != 0 {
		t.Errorf("SealAppend allocates %v per op, want 0", got)
	}
}

func TestZeroAllocOpenAppend(t *testing.T) {
	skipUnderRace(t)
	out := newBenchOutbound(t)
	in := newBenchInbound(t, 0x1001)
	payload := make([]byte, 256)
	buf := make([]byte, 0, 4096)
	wires := make([][]byte, 600)
	for i := range wires {
		w, err := out.Seal(payload)
		if err != nil {
			t.Fatal(err)
		}
		wires[i] = w
	}
	i := 0
	if got := testing.AllocsPerRun(500, func() {
		res, _, err := in.OpenAppend(buf[:0], wires[i])
		if err != nil {
			t.Fatal(err)
		}
		buf = res[:0]
		i++
	}); got != 0 {
		t.Errorf("OpenAppend allocates %v per op, want 0", got)
	}
}

func TestZeroAllocGatewayVerifyBatchInto(t *testing.T) {
	skipUnderRace(t)
	dir := t.TempDir()
	j, err := store.OpenJournal(dir+"/j.log", store.JournalWithoutSync())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	// K is huge so no background SAVE (which allocates in the saver pool)
	// fires inside the measured window.
	g, err := NewGateway(GatewayConfig{Journal: j, K: 1 << 30, W: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	tx, err := g.AddOutbound(0x77, testKeys(true), Selector{
		Src: netip.MustParsePrefix("10.0.0.1/32"),
		Dst: netip.MustParsePrefix("10.0.1.1/32"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddInbound(0x77, testKeys(true)); err != nil {
		t.Fatal(err)
	}

	const burst = 32
	payload := make([]byte, 128)
	batches := make([][][]byte, 600)
	for b := range batches {
		wires, err := tx.SealBatch(repeat(payload, burst))
		if err != nil {
			t.Fatal(err)
		}
		batches[b] = wires
	}
	out := make([]VerifyResult, burst)
	buf := make([]byte, 0, burst*(len(payload)+64))
	b := 0
	if got := testing.AllocsPerRun(500, func() {
		buf = g.VerifyBatchInto(out, buf[:0], batches[b])
		for j := range out[:burst] {
			if !out[j].Delivered() {
				t.Fatalf("batch %d packet %d not delivered: %+v", b, j, out[j])
			}
		}
		b++
	}); got != 0 {
		t.Errorf("Gateway.VerifyBatchInto allocates %v per op (%d-packet burst), want 0", got, burst)
	}
}

// The instrumented variants: the same per-packet contract with the
// telemetry layer fully attached — the gateway registered as a /metrics
// collector and the lifecycle hook set. Collection is read-side (the
// scrape walks the SA population; the datapath only bumps its existing
// sharded tallies), so registration must not cost the hot path a single
// allocation. A scrape before and after the measured window proves the
// instruments are actually live, not just registered.

func newInstrumentedGateway(t *testing.T) (*Gateway, *telemetry.Registry) {
	t.Helper()
	j, err := store.OpenJournal(t.TempDir()+"/j.log", store.JournalWithoutSync())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	// K is huge so no background SAVE (which allocates in the saver pool)
	// fires inside the measured window.
	g, err := NewGateway(GatewayConfig{Journal: j, K: 1 << 30, W: 1024,
		OnLifecycle: func(string, int) {}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	reg := telemetry.NewRegistry()
	reg.RegisterCollector("apn_gateway", g)
	return g, reg
}

// scrapePackets returns the current apn_gateway seal/verify packet totals.
func scrapePackets(t *testing.T, reg *telemetry.Registry) (sealed, verified float64) {
	t.Helper()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(b.String(), "\n") {
		if v, ok := strings.CutPrefix(line, "apn_gateway_seal_packets_total "); ok {
			fmt.Sscanf(v, "%g", &sealed) //nolint:errcheck // parse checked by caller
		}
		if v, ok := strings.CutPrefix(line, "apn_gateway_verify_packets_total "); ok {
			fmt.Sscanf(v, "%g", &verified) //nolint:errcheck // parse checked by caller
		}
	}
	return sealed, verified
}

func TestZeroAllocInstrumentedSealAppend(t *testing.T) {
	skipUnderRace(t)
	g, reg := newInstrumentedGateway(t)
	src := netip.MustParseAddr("10.0.0.1")
	dst := netip.MustParseAddr("10.0.1.1")
	if _, err := g.AddOutbound(0x77, testKeys(true), Selector{
		Src: netip.PrefixFrom(src, 32), Dst: netip.PrefixFrom(dst, 32),
	}); err != nil {
		t.Fatal(err)
	}
	before, _ := scrapePackets(t, reg)
	payload := make([]byte, 256)
	buf := make([]byte, 0, 4096)
	if got := testing.AllocsPerRun(500, func() {
		out, err := g.SealAppend(buf[:0], src, dst, payload)
		if err != nil {
			t.Fatal(err)
		}
		buf = out[:0]
	}); got != 0 {
		t.Errorf("instrumented Gateway.SealAppend allocates %v per op, want 0", got)
	}
	if after, _ := scrapePackets(t, reg); after <= before {
		t.Errorf("seal_packets_total stuck at %v, instruments not live", after)
	}
}

func TestZeroAllocInstrumentedOpenAppend(t *testing.T) {
	skipUnderRace(t)
	g, reg := newInstrumentedGateway(t)
	src := netip.MustParseAddr("10.0.0.1")
	dst := netip.MustParseAddr("10.0.1.1")
	if _, err := g.AddOutbound(0x77, testKeys(true), Selector{
		Src: netip.PrefixFrom(src, 32), Dst: netip.PrefixFrom(dst, 32),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddInbound(0x77, testKeys(true)); err != nil {
		t.Fatal(err)
	}
	wires := make([][]byte, 600)
	for i := range wires {
		w, err := g.Seal(src, dst, make([]byte, 256))
		if err != nil {
			t.Fatal(err)
		}
		wires[i] = w
	}
	_, before := scrapePackets(t, reg)
	buf := make([]byte, 0, 4096)
	i := 0
	if got := testing.AllocsPerRun(500, func() {
		res, v, err := g.OpenAppend(buf[:0], wires[i])
		if err != nil {
			t.Fatal(err)
		}
		if !v.Delivered() {
			t.Fatalf("packet %d not delivered: %v", i, v)
		}
		buf = res[:0]
		i++
	}); got != 0 {
		t.Errorf("instrumented Gateway.OpenAppend allocates %v per op, want 0", got)
	}
	if _, after := scrapePackets(t, reg); after <= before {
		t.Errorf("verify_packets_total stuck at %v, instruments not live", after)
	}
}

func repeat(p []byte, n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = p
	}
	return out
}

// TestKeyFormatCompat pins the exact journal key strings of SA counters.
// These are on-disk names: an existing journal replays only if OutboundKey
// and InboundKey produce byte-identical strings forever, so the fixed-width
// hex encoder must match fmt.Sprintf("%s/%08x", ...) on every input shape.
func TestKeyFormatCompat(t *testing.T) {
	cases := []uint32{0, 1, 0xa, 0x10, 0xff, 0x1234, 0xabcdef, 0x00c0ffee, 0xdeadbeef, 0xffffffff}
	for _, spi := range cases {
		if got, want := OutboundKey(spi), fmt.Sprintf("tx/%08x", spi); got != want {
			t.Errorf("OutboundKey(%#x) = %q, want %q", spi, got, want)
		}
		if got, want := InboundKey(spi), fmt.Sprintf("rx/%08x", spi); got != want {
			t.Errorf("InboundKey(%#x) = %q, want %q", spi, got, want)
		}
	}
	// The literal strings, pinned independently of Sprintf so a formatting
	// change in either implementation is caught.
	if got := OutboundKey(0x2a); got != "tx/0000002a" {
		t.Errorf("OutboundKey(0x2a) = %q, want %q", got, "tx/0000002a")
	}
	if got := InboundKey(0xdeadbeef); got != "rx/deadbeef" {
		t.Errorf("InboundKey(0xdeadbeef) = %q, want %q", got, "rx/deadbeef")
	}
}
