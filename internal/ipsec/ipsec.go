// Package ipsec is a userspace miniature of the IPsec data plane the paper
// runs on: security associations (SAs) with keys, algorithms and lifetimes;
// an ESP-like packet format with HMAC-SHA256-96 integrity and AES-CTR
// confidentiality; a security association database (SAD) and a simple
// security policy database (SPD).
//
// The anti-replay service is provided by internal/core: an outbound SA
// numbers packets through a core.Sender and an inbound SA admits them
// through a core.Receiver, so the SAVE/FETCH reset protection applies to
// real authenticated packets, not just abstract sequence numbers.
//
// Wire format (big endian), loosely after RFC 4303 but simplified — the
// 64-bit CTR nonce is derived from the sequence number instead of carrying
// an explicit IV, which is safe here precisely because the paper's protocol
// guarantees sequence numbers are never reused across resets:
//
//	offset 0  4  SPI
//	offset 4  4  sequence number (low 32 bits)
//	offset 8  n  payload (encrypted when the SA has an encryption key)
//	offset 8+n 12 ICV = HMAC-SHA256-96 over SPI || seq64 || payload-bytes
//
// The full 64-bit sequence number is authenticated (ESN style): the high 32
// bits enter the MAC but not the wire, and the receiver reconstructs them
// with seqwin.InferESN before verifying.
package ipsec

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// Sentinel errors.
var (
	// ErrShortPacket reports a packet too small to parse.
	ErrShortPacket = errors.New("ipsec: packet too short")
	// ErrAuth reports an ICV verification failure.
	ErrAuth = errors.New("ipsec: integrity check failed")
	// ErrReplay reports a packet rejected by the anti-replay service.
	ErrReplay = errors.New("ipsec: anti-replay discard")
	// ErrUnknownSPI reports an inbound packet with no matching SA.
	ErrUnknownSPI = errors.New("ipsec: unknown SPI")
	// ErrHardExpired reports an SA past its hard lifetime.
	ErrHardExpired = errors.New("ipsec: SA hard lifetime expired")
	// ErrSeqExhausted reports an outbound SA without ESN that has consumed
	// the entire 32-bit sequence space: RFC 4303 forbids letting the wire
	// sequence number cycle, so the SA must be rekeyed.
	ErrSeqExhausted = errors.New("ipsec: sequence number space exhausted")
	// ErrKeySize reports invalid key material.
	ErrKeySize = errors.New("ipsec: invalid key size")
	// ErrNoPolicy reports an outbound packet matching no SPD entry.
	ErrNoPolicy = errors.New("ipsec: no matching policy")
	// ErrDuplicateSPI reports a gateway SA registration reusing a live SPI.
	ErrDuplicateSPI = errors.New("ipsec: duplicate SPI")
	// ErrDraining reports a Seal on an outbound SA that a rekey has already
	// cut traffic away from: its successor owns the flow, and the old SA
	// only lingers so in-flight packets can still be verified by the peer.
	ErrDraining = errors.New("ipsec: outbound SA draining after rekey")
)

const (
	headerLen = 8
	icvLen    = 12
	// Overhead is the total bytes the ESP encapsulation adds to a payload.
	Overhead = headerLen + icvLen
	// AuthKeySize is the required HMAC-SHA256 key length.
	AuthKeySize = 32
	// EncKeySize is the required AES-128 key length (0 = no encryption).
	EncKeySize = 16
)

// KeyMaterial is the symmetric keying of one SA direction.
type KeyMaterial struct {
	// AuthKey keys the HMAC-SHA256-96 ICV. Must be AuthKeySize bytes.
	AuthKey []byte
	// EncKey keys AES-CTR. Either EncKeySize bytes or empty for
	// integrity-only SAs.
	EncKey []byte
}

// Validate reports key-size errors.
func (k KeyMaterial) Validate() error {
	if len(k.AuthKey) != AuthKeySize {
		return fmt.Errorf("%w: auth key %d bytes, want %d", ErrKeySize, len(k.AuthKey), AuthKeySize)
	}
	if len(k.EncKey) != 0 && len(k.EncKey) != EncKeySize {
		return fmt.Errorf("%w: enc key %d bytes, want 0 or %d", ErrKeySize, len(k.EncKey), EncKeySize)
	}
	return nil
}

// seal computes the wire bytes for (spi, seq64, payload).
func seal(keys KeyMaterial, spi uint32, seq64 uint64, payload []byte) ([]byte, error) {
	body := make([]byte, len(payload))
	copy(body, payload)
	if len(keys.EncKey) > 0 {
		if err := ctrXOR(keys.EncKey, spi, seq64, body); err != nil {
			return nil, err
		}
	}
	out := make([]byte, headerLen+len(body)+icvLen)
	binary.BigEndian.PutUint32(out[0:4], spi)
	binary.BigEndian.PutUint32(out[4:8], uint32(seq64))
	copy(out[headerLen:], body)
	icv := computeICV(keys.AuthKey, spi, seq64, body)
	copy(out[headerLen+len(body):], icv)
	return out, nil
}

// open verifies and decrypts wire bytes given the reconstructed seq64.
func open(keys KeyMaterial, spi uint32, seq64 uint64, wire []byte) ([]byte, error) {
	body := wire[headerLen : len(wire)-icvLen]
	want := computeICV(keys.AuthKey, spi, seq64, body)
	got := wire[len(wire)-icvLen:]
	if !hmac.Equal(want, got) {
		return nil, ErrAuth
	}
	payload := make([]byte, len(body))
	copy(payload, body)
	if len(keys.EncKey) > 0 {
		if err := ctrXOR(keys.EncKey, spi, seq64, payload); err != nil {
			return nil, err
		}
	}
	return payload, nil
}

// computeICV returns HMAC-SHA256 truncated to 96 bits over the SPI, the
// full 64-bit sequence number (ESN-style implicit high half), and the body.
func computeICV(authKey []byte, spi uint32, seq64 uint64, body []byte) []byte {
	mac := hmac.New(sha256.New, authKey)
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:4], spi)
	binary.BigEndian.PutUint64(hdr[4:12], seq64)
	mac.Write(hdr[:])
	mac.Write(body)
	return mac.Sum(nil)[:icvLen]
}

// ctrXOR applies AES-CTR in place with a nonce derived from (spi, seq64).
func ctrXOR(key []byte, spi uint32, seq64 uint64, data []byte) error {
	block, err := aes.NewCipher(key)
	if err != nil {
		return fmt.Errorf("ipsec: aes: %w", err)
	}
	var iv [aes.BlockSize]byte
	binary.BigEndian.PutUint32(iv[0:4], spi)
	binary.BigEndian.PutUint64(iv[4:12], seq64)
	// iv[12:16] is the CTR counter, starting at 0.
	cipher.NewCTR(block, iv[:]).XORKeyStream(data, data)
	return nil
}

// ParseSPI extracts the SPI from wire bytes without validating the rest.
func ParseSPI(wire []byte) (uint32, error) {
	if len(wire) < headerLen+icvLen {
		return 0, fmt.Errorf("%w: %d bytes", ErrShortPacket, len(wire))
	}
	return binary.BigEndian.Uint32(wire[0:4]), nil
}

// ParseSeqLo extracts the low 32 sequence bits from wire bytes.
func ParseSeqLo(wire []byte) (uint32, error) {
	if len(wire) < headerLen+icvLen {
		return 0, fmt.Errorf("%w: %d bytes", ErrShortPacket, len(wire))
	}
	return binary.BigEndian.Uint32(wire[4:8]), nil
}
