// Package ipsec is a userspace miniature of the IPsec data plane the paper
// runs on: security associations (SAs) with keys, algorithms and lifetimes;
// an ESP-like packet format with HMAC-SHA256-96 integrity and AES-CTR
// confidentiality; a security association database (SAD) and a simple
// security policy database (SPD).
//
// The anti-replay service is provided by internal/core: an outbound SA
// numbers packets through a core.Sender and an inbound SA admits them
// through a core.Receiver, so the SAVE/FETCH reset protection applies to
// real authenticated packets, not just abstract sequence numbers.
//
// Wire format (big endian), loosely after RFC 4303 but simplified — the
// 64-bit CTR nonce is derived from the sequence number instead of carrying
// an explicit IV, which is safe here precisely because the paper's protocol
// guarantees sequence numbers are never reused across resets:
//
//	offset 0  4  SPI
//	offset 4  4  sequence number (low 32 bits)
//	offset 8  n  payload (encrypted when the SA has an encryption key)
//	offset 8+n 12 ICV = HMAC-SHA256-96 over SPI || seq64 || payload-bytes
//
// The full 64-bit sequence number is authenticated (ESN style): the high 32
// bits enter the MAC but not the wire, and the receiver reconstructs them
// with seqwin.InferESN before verifying.
package ipsec

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"slices"
	"sync"
)

// Sentinel errors.
var (
	// ErrShortPacket reports a packet too small to parse.
	ErrShortPacket = errors.New("ipsec: packet too short")
	// ErrAuth reports an ICV verification failure.
	ErrAuth = errors.New("ipsec: integrity check failed")
	// ErrReplay reports a packet rejected by the anti-replay service.
	ErrReplay = errors.New("ipsec: anti-replay discard")
	// ErrUnknownSPI reports an inbound packet with no matching SA.
	ErrUnknownSPI = errors.New("ipsec: unknown SPI")
	// ErrHardExpired reports an SA past its hard lifetime.
	ErrHardExpired = errors.New("ipsec: SA hard lifetime expired")
	// ErrSeqExhausted reports an outbound SA without ESN that has consumed
	// the entire 32-bit sequence space: RFC 4303 forbids letting the wire
	// sequence number cycle, so the SA must be rekeyed.
	ErrSeqExhausted = errors.New("ipsec: sequence number space exhausted")
	// ErrKeySize reports invalid key material.
	ErrKeySize = errors.New("ipsec: invalid key size")
	// ErrNoPolicy reports an outbound packet matching no SPD entry.
	ErrNoPolicy = errors.New("ipsec: no matching policy")
	// ErrDuplicateSPI reports a gateway SA registration reusing a live SPI.
	ErrDuplicateSPI = errors.New("ipsec: duplicate SPI")
	// ErrDraining reports a Seal on an outbound SA that a rekey has already
	// cut traffic away from: its successor owns the flow, and the old SA
	// only lingers so in-flight packets can still be verified by the peer.
	ErrDraining = errors.New("ipsec: outbound SA draining after rekey")
)

const (
	headerLen = 8
	icvLen    = 12
	// Overhead is the total bytes the ESP encapsulation adds to a payload.
	Overhead = headerLen + icvLen
	// AuthKeySize is the required HMAC-SHA256 key length.
	AuthKeySize = 32
	// EncKeySize is the required AES-128 key length (0 = no encryption).
	EncKeySize = 16
)

// KeyMaterial is the symmetric keying of one SA direction.
type KeyMaterial struct {
	// AuthKey keys the HMAC-SHA256-96 ICV. Must be AuthKeySize bytes.
	AuthKey []byte
	// EncKey keys AES-CTR. Either EncKeySize bytes or empty for
	// integrity-only SAs.
	EncKey []byte
}

// Validate reports key-size errors.
func (k KeyMaterial) Validate() error {
	if len(k.AuthKey) != AuthKeySize {
		return fmt.Errorf("%w: auth key %d bytes, want %d", ErrKeySize, len(k.AuthKey), AuthKeySize)
	}
	if len(k.EncKey) != 0 && len(k.EncKey) != EncKeySize {
		return fmt.Errorf("%w: enc key %d bytes, want 0 or %d", ErrKeySize, len(k.EncKey), EncKeySize)
	}
	return nil
}

// cryptoState is the reusable scratch for one in-flight seal or open: a
// keyed HMAC instance, the SA's expanded AES block, and fixed buffers for
// the MAC sum and the CTR keystream. States are pooled per SA (cryptoPool),
// so steady-state datapath crypto performs no allocation — the classic
// "expand keys once, never allocate per packet" shape of kernel IPsec
// implementations.
type cryptoState struct {
	mac hash.Hash    // HMAC-SHA256 keyed with the SA's auth key
	blk cipher.Block // AES-128 block keyed with the SA's enc key; nil if none
	hdr [12]byte     // MAC header scratch (kept here so it never escapes)
	sum [sha256.Size]byte
	ctr [aes.BlockSize]byte
	ks  [aes.BlockSize]byte
}

// cryptoPool hands out cryptoStates for one SA's immutable KeyMaterial.
type cryptoPool struct {
	p sync.Pool
}

// newCryptoPool builds the pool; keys must already be validated.
func newCryptoPool(keys KeyMaterial) *cryptoPool {
	cp := &cryptoPool{}
	cp.p.New = func() any {
		st := &cryptoState{mac: hmac.New(sha256.New, keys.AuthKey)}
		if len(keys.EncKey) > 0 {
			blk, err := aes.NewCipher(keys.EncKey)
			if err != nil {
				// Validate() pinned the key length; aes.NewCipher cannot
				// fail on a validated key.
				panic(fmt.Sprintf("ipsec: aes: %v", err))
			}
			st.blk = blk
		}
		return st
	}
	return cp
}

func (cp *cryptoPool) get() *cryptoState   { return cp.p.Get().(*cryptoState) }
func (cp *cryptoPool) put(st *cryptoState) { cp.p.Put(st) }

// icvInto computes the HMAC-SHA256-96 ICV over SPI || seq64 || body into the
// state's sum buffer, returning the truncated slice (valid until the next
// icvInto on the same state).
func (st *cryptoState) icvInto(spi uint32, seq64 uint64, body []byte) []byte {
	st.mac.Reset()
	binary.BigEndian.PutUint32(st.hdr[0:4], spi)
	binary.BigEndian.PutUint64(st.hdr[4:12], seq64)
	st.mac.Write(st.hdr[:])
	st.mac.Write(body)
	return st.mac.Sum(st.sum[:0])[:icvLen]
}

// ctrXOR applies AES-CTR in place with a nonce derived from (spi, seq64),
// block by block through the state's cached cipher. Byte-identical to
// cipher.NewCTR over the same IV for any packet shorter than 2^32 blocks
// (the stdlib CTR carries into byte 11 only past a 64GiB keystream).
func (st *cryptoState) ctrXOR(spi uint32, seq64 uint64, data []byte) {
	binary.BigEndian.PutUint32(st.ctr[0:4], spi)
	binary.BigEndian.PutUint64(st.ctr[4:12], seq64)
	var ctr32 uint32
	for i := 0; i < len(data); i += aes.BlockSize {
		binary.BigEndian.PutUint32(st.ctr[12:16], ctr32)
		ctr32++
		st.blk.Encrypt(st.ks[:], st.ctr[:])
		n := len(data) - i
		if n > aes.BlockSize {
			n = aes.BlockSize
		}
		subtle.XORBytes(data[i:i+n], data[i:i+n], st.ks[:n])
	}
}

// sealAppendState appends the wire bytes for (spi, seq64, payload) to dst
// using pooled crypto scratch. It allocates only when dst lacks capacity.
func sealAppendState(cp *cryptoPool, spi uint32, seq64 uint64, payload, dst []byte) []byte {
	st := cp.get()
	start := len(dst)
	n := headerLen + len(payload) + icvLen
	dst = slices.Grow(dst, n)[:start+n]
	out := dst[start:]
	binary.BigEndian.PutUint32(out[0:4], spi)
	binary.BigEndian.PutUint32(out[4:8], uint32(seq64))
	body := out[headerLen : headerLen+len(payload)]
	copy(body, payload)
	if st.blk != nil {
		st.ctrXOR(spi, seq64, body)
	}
	copy(out[headerLen+len(payload):], st.icvInto(spi, seq64, body))
	cp.put(st)
	return dst
}

// openAppendState verifies wire bytes given the reconstructed seq64 and
// appends the decrypted payload to dst, using pooled crypto scratch. On
// error dst is returned unchanged.
func openAppendState(cp *cryptoPool, spi uint32, seq64 uint64, wire, dst []byte) ([]byte, error) {
	st := cp.get()
	body := wire[headerLen : len(wire)-icvLen]
	want := st.icvInto(spi, seq64, body)
	got := wire[len(wire)-icvLen:]
	if !hmac.Equal(want, got) {
		cp.put(st)
		return dst, ErrAuth
	}
	start := len(dst)
	dst = slices.Grow(dst, len(body))[:start+len(body)]
	payload := dst[start:]
	copy(payload, body)
	if st.blk != nil {
		st.ctrXOR(spi, seq64, payload)
	}
	cp.put(st)
	return dst, nil
}

// ParseSPI extracts the SPI from wire bytes without validating the rest.
func ParseSPI(wire []byte) (uint32, error) {
	if len(wire) < headerLen+icvLen {
		return 0, fmt.Errorf("%w: %d bytes", ErrShortPacket, len(wire))
	}
	return binary.BigEndian.Uint32(wire[0:4]), nil
}

// ParseSeqLo extracts the low 32 sequence bits from wire bytes.
func ParseSeqLo(wire []byte) (uint32, error) {
	if len(wire) < headerLen+icvLen {
		return 0, fmt.Errorf("%w: %d bytes", ErrShortPacket, len(wire))
	}
	return binary.BigEndian.Uint32(wire[4:8]), nil
}
