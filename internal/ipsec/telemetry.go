package ipsec

import (
	"antireplay/internal/core"
	"antireplay/internal/telemetry"
)

var _ telemetry.Collector = (*Gateway)(nil)

// CollectTelemetry emits the gateway's population-wide datapath counters:
// seal volume summed over outbound SAs, verify/admission outcomes summed
// over inbound SAs, and the population gauges (per direction, plus how
// many SAs are draining after a rekey cutover and how many are off the
// StateUp fast path mid-reset/wake). Sums re-walk the SA population at
// scrape time — the hot paths keep their per-SA sharded tallies and never
// see the scrape.
func (g *Gateway) CollectTelemetry(emit telemetry.Emit) {
	snap := g.snapshot()
	var txBytes, txPackets uint64
	var drainOut, downOut int
	for _, sa := range snap.outbound {
		b, p := sa.Counters()
		txBytes += b
		txPackets += p
		if sa.Draining() {
			drainOut++
		}
		if sa.Sender().State() != core.StateUp {
			downOut++
		}
	}
	var rxBytes, rxPackets, authFails, replays uint64
	var drainIn, downIn int
	for _, sa := range snap.inbound {
		b, p, af, rp := sa.Counters()
		rxBytes += b
		rxPackets += p
		authFails += af
		replays += rp
		if sa.Draining() {
			drainIn++
		}
		if sa.Receiver().State() != core.StateUp {
			downIn++
		}
	}
	out := telemetry.Label{Key: "dir", Value: "out"}
	in := telemetry.Label{Key: "dir", Value: "in"}
	emit("sas", telemetry.KindGauge, float64(len(snap.outbound)), out)
	emit("sas", telemetry.KindGauge, float64(len(snap.inbound)), in)
	emit("sas_draining", telemetry.KindGauge, float64(drainOut), out)
	emit("sas_draining", telemetry.KindGauge, float64(drainIn), in)
	emit("sas_down", telemetry.KindGauge, float64(downOut), out)
	emit("sas_down", telemetry.KindGauge, float64(downIn), in)
	emit("seal_bytes_total", telemetry.KindCounter, float64(txBytes))
	emit("seal_packets_total", telemetry.KindCounter, float64(txPackets))
	emit("verify_bytes_total", telemetry.KindCounter, float64(rxBytes))
	emit("verify_packets_total", telemetry.KindCounter, float64(rxPackets))
	emit("auth_fails_total", telemetry.KindCounter, float64(authFails))
	emit("replay_drops_total", telemetry.KindCounter, float64(replays))
}

// TelemetrySAs returns the per-SA introspection snapshot backing the
// telemetry server's /saz endpoint: one entry per SA with its sequence
// edge, durable horizon (the SAVE watermark a reset would recover to),
// window occupancy, and datapath tallies. Ordering is outbound SAs in
// registration order, then inbound SAs in SAD iteration order.
func (g *Gateway) TelemetrySAs() []telemetry.SAInfo {
	snap := g.snapshot()
	infos := make([]telemetry.SAInfo, 0, len(snap.outbound)+len(snap.inbound))
	for _, sa := range snap.outbound {
		b, p := sa.Counters()
		infos = append(infos, telemetry.SAInfo{
			SPI:            sa.SPI(),
			Dir:            "out",
			State:          sa.Sender().State().String(),
			Generation:     sa.Generation(),
			Draining:       sa.Draining(),
			SeqEdge:        sa.Sender().Seq(),
			DurableHorizon: sa.Sender().LastStored(),
			Bytes:          b,
			Packets:        p,
		})
	}
	for _, sa := range snap.inbound {
		b, p, af, rp := sa.Counters()
		r := sa.Receiver()
		infos = append(infos, telemetry.SAInfo{
			SPI:            sa.SPI(),
			Dir:            "in",
			State:          r.State().String(),
			Generation:     sa.Generation(),
			Draining:       sa.Draining(),
			SeqEdge:        r.Edge(),
			DurableHorizon: r.LastStored(),
			Window:         r.W(),
			Occupancy:      r.Occupancy(),
			Bytes:          b,
			Packets:        p,
			AuthFails:      af,
			Replays:        rp,
		})
	}
	return infos
}

// LifecycleRecorder adapts a telemetry event ring to
// GatewayConfig.OnLifecycle: reset/wake transitions land in the ring under
// layer "gateway" with the SA population as the value. Nil-ring safe.
func LifecycleRecorder(ev *telemetry.Events) func(kind string, sas int) {
	return func(kind string, sas int) {
		ev.Record("gateway", kind, 0, uint64(sas))
	}
}

// LaneFaultRecorder adapts a telemetry event ring to store.LanesOnPoison:
// each lane poisoning lands in the ring as a lane/quarantine event carrying
// the lane index and the fault text. The hook runs under the poisoned
// lane's mutex, which is safe here — the ring's Record never calls back
// into the store. Record the matching lane/repair event with
// RecordLaneRepair wherever the repair is driven. Nil-ring safe.
func LaneFaultRecorder(ev *telemetry.Events) func(lane int, err error) {
	return func(lane int, err error) {
		ev.RecordDetail("lane", "quarantine", 0, uint64(lane), err.Error())
	}
}

// RecordLaneRepair records the lane/repair lifecycle event after a
// successful lane repair — the bookend to LaneFaultRecorder's
// lane/quarantine. Nil-ring safe.
func RecordLaneRepair(ev *telemetry.Events, lane int) {
	ev.Record("lane", "repair", 0, uint64(lane))
}
