package ipsec

import (
	"bytes"
	"errors"
	"testing"

	"antireplay/internal/core"
)

// testKeys2 is a second key set so old- and new-generation traffic cannot
// cross-authenticate.
func testKeys2() KeyMaterial {
	return KeyMaterial{AuthKey: bytes.Repeat([]byte{0xC3}, AuthKeySize)}
}

// TestGatewayRekeyOutboundCutover: after RekeyOutbound, gateway traffic for
// the selector flows on the new SPI, the old handle refuses new seals, and
// the lineage links are recorded.
func TestGatewayRekeyOutboundCutover(t *testing.T) {
	g, _ := testGateway(t)
	defer g.Close()
	src, dst := gwAddr(1)
	old, err := g.AddOutbound(0x100, testKeys(false), gwSelector(1))
	if err != nil {
		t.Fatalf("AddOutbound: %v", err)
	}
	if _, err := g.Seal(src, dst, []byte("gen0")); err != nil {
		t.Fatalf("Seal gen0: %v", err)
	}

	nu, err := g.RekeyOutbound(0x100, 0x200, testKeys2())
	if err != nil {
		t.Fatalf("RekeyOutbound: %v", err)
	}
	if nu.Generation() != 1 || nu.PrevSPI() != 0x100 {
		t.Errorf("lineage = (gen %d, prev %#x), want (1, 0x100)", nu.Generation(), nu.PrevSPI())
	}
	wire := gwSeal(t, g, src, dst, []byte("gen1"))
	spi, _ := ParseSPI(wire)
	if spi != 0x200 {
		t.Errorf("post-cutover Seal used SPI %#x, want 0x200", spi)
	}
	if _, err := old.Seal([]byte("stale")); !errors.Is(err, ErrDraining) {
		t.Errorf("Seal on drained SA = %v, want ErrDraining", err)
	}
	if _, err := old.SealBatch([][]byte{[]byte("stale")}); !errors.Is(err, ErrDraining) {
		t.Errorf("SealBatch on drained SA = %v, want ErrDraining", err)
	}
	if !old.Draining() || nu.Draining() {
		t.Errorf("Draining: old %v new %v, want true false", old.Draining(), nu.Draining())
	}
}

// TestGatewayRekeyInboundOverlap: during the drain window both generations
// verify; after RemoveInbound the old SPI is unknown.
func TestGatewayRekeyInboundOverlap(t *testing.T) {
	g, _ := testGateway(t)
	defer g.Close()
	src, dst := gwAddr(2)
	if _, err := g.AddOutbound(0x101, testKeys(false), gwSelector(2)); err != nil {
		t.Fatalf("AddOutbound: %v", err)
	}
	oldIn, err := g.AddInbound(0x101, testKeys(false))
	if err != nil {
		t.Fatalf("AddInbound: %v", err)
	}
	inflight := gwSeal(t, g, src, dst, []byte("in flight"))

	newIn, err := g.RekeyInbound(0x101, 0x201, testKeys2())
	if err != nil {
		t.Fatalf("RekeyInbound: %v", err)
	}
	if newIn.Generation() != 1 || newIn.PrevSPI() != 0x101 {
		t.Errorf("lineage = (gen %d, prev %#x), want (1, 0x101)", newIn.Generation(), newIn.PrevSPI())
	}
	// The make step must NOT mark the old SA draining — the rollover can
	// still be rolled back; the orchestrator marks it after the cutover.
	if oldIn.Draining() {
		t.Error("RekeyInbound prematurely marked the old SA draining")
	}
	oldIn.BeginDrain() // what the orchestrator does once the cutover commits
	// The drain window's whole point: the in-flight old-SPI packet still
	// verifies after the successor is installed.
	payload, verdict := gwOpen(t, g, inflight)
	if string(payload) != "in flight" || !verdict.Delivered() {
		t.Fatalf("in-flight old-SPI packet = (%q, %v), want delivered", payload, verdict)
	}

	if !g.RemoveInbound(0x101) {
		t.Fatal("RemoveInbound reported missing SA")
	}
	if _, _, err := g.Open(inflight); !errors.Is(err, ErrUnknownSPI) {
		t.Errorf("Open after retirement = %v, want ErrUnknownSPI", err)
	}
}

// TestGatewayRemoveReAddFreshLife is the counter-resurrection regression
// test: removing an SA must erase its journal counter so re-adding the same
// SPI starts a fresh life instead of resuming (and leaping past) the
// retired one.
func TestGatewayRemoveReAddFreshLife(t *testing.T) {
	g, _ := testGateway(t)
	defer g.Close()
	src, dst := gwAddr(3)
	out, err := g.AddOutbound(0x300, testKeys(false), gwSelector(3))
	if err != nil {
		t.Fatalf("AddOutbound: %v", err)
	}
	in, err := g.AddInbound(0x300, testKeys(false))
	if err != nil {
		t.Fatalf("AddInbound: %v", err)
	}
	// Advance both counters well past a fresh life's values and let the
	// SAVE interval persist them.
	for i := 0; i < 64; i++ {
		wire := gwSeal(t, g, src, dst, []byte("traffic"))
		gwOpen(t, g, wire)
	}
	if seq := out.Sender().Seq(); seq < 32 {
		t.Fatalf("sender counter %d advanced too little for the test to bite", seq)
	}
	if edge := in.Receiver().Edge(); edge < 32 {
		t.Fatalf("receiver edge %d advanced too little for the test to bite", edge)
	}

	if !g.RemoveOutbound(0x300) || !g.RemoveInbound(0x300) {
		t.Fatal("Remove* reported missing SA")
	}
	if _, ok, _ := g.Journal().Cell(OutboundKey(0x300)).Fetch(); ok {
		t.Error("outbound counter survived removal")
	}
	if _, ok, _ := g.Journal().Cell(InboundKey(0x300)).Fetch(); ok {
		t.Error("inbound edge survived removal")
	}

	// Re-add the SPI: fresh life — sender at 1, receiver edge at 0, and a
	// seq-1 packet (impossible against a resurrected window) delivers.
	out2, err := g.AddOutbound(0x300, testKeys2(), gwSelector(3))
	if err != nil {
		t.Fatalf("re-AddOutbound: %v", err)
	}
	in2, err := g.AddInbound(0x300, testKeys2())
	if err != nil {
		t.Fatalf("re-AddInbound: %v", err)
	}
	if s := out2.Sender().State(); s != core.StateUp {
		t.Fatalf("re-added sender state %v, want up (no prior journal life)", s)
	}
	if seq := out2.Sender().Seq(); seq != 1 {
		t.Errorf("re-added sender starts at %d, want 1", seq)
	}
	if edge := in2.Receiver().Edge(); edge != 0 {
		t.Errorf("re-added receiver edge %d, want 0", edge)
	}
	wire := gwSeal(t, g, src, dst, []byte("fresh life"))
	payload, verdict := gwOpen(t, g, wire)
	if string(payload) != "fresh life" || !verdict.Delivered() {
		t.Errorf("fresh-life packet = (%q, %v), want delivered", payload, verdict)
	}
}

// TestGatewayRevertOutbound: the rollback of a half-committed cutover —
// the old SA resumes sealing under its original SPD entries and the
// successor leaves no SPI or journal residue behind.
func TestGatewayRevertOutbound(t *testing.T) {
	g, _ := testGateway(t)
	defer g.Close()
	src, dst := gwAddr(4)
	old, err := g.AddOutbound(0x400, testKeys(false), gwSelector(4))
	if err != nil {
		t.Fatalf("AddOutbound: %v", err)
	}
	if _, err := g.RekeyOutbound(0x400, 0x500, testKeys2()); err != nil {
		t.Fatalf("RekeyOutbound: %v", err)
	}
	if !g.RevertOutbound(0x400, 0x500) {
		t.Fatal("RevertOutbound reported missing SAs")
	}
	if old.Draining() {
		t.Error("old SA still draining after revert")
	}
	wire := gwSeal(t, g, src, dst, []byte("back on the old generation"))
	if spi, _ := ParseSPI(wire); spi != 0x400 {
		t.Errorf("post-revert Seal used SPI %#x, want 0x400", spi)
	}
	if _, ok := g.Outbound(0x500); ok {
		t.Error("aborted successor still registered")
	}
	if _, ok, _ := g.Journal().Cell(OutboundKey(0x500)).Fetch(); ok {
		t.Error("aborted successor's journal cell survived")
	}
	// A later retry can reuse the aborted successor's SPI from scratch.
	if _, err := g.RekeyOutbound(0x400, 0x500, testKeys2()); err != nil {
		t.Fatalf("retry RekeyOutbound after revert: %v", err)
	}
}

// TestSPDReplaceAndRemove exercises the policy-database halves of the
// cutover directly, including the host-route index rebuild.
func TestSPDReplaceAndRemove(t *testing.T) {
	p := NewSPD()
	mkSA := func(spi uint32) *OutboundSA {
		snd, m := newSenderT(t, 5)
		_ = m
		sa, err := NewOutboundSA(spi, testKeys(false), snd, false, Lifetime{}, nil)
		if err != nil {
			t.Fatalf("NewOutboundSA: %v", err)
		}
		return sa
	}
	a, b := mkSA(1), mkSA(2)
	p.Add(gwSelector(1), a)
	p.Add(gwSelector(2), b)

	src, dst := gwAddr(1)
	if got, _ := p.Lookup(src, dst); got != a {
		t.Fatal("pre-replace lookup missed")
	}
	if n := p.Replace(a, mkSA(3)); n != 1 {
		t.Errorf("Replace repointed %d entries, want 1", n)
	}
	if got, _ := p.Lookup(src, dst); got == nil || got.SPI() != 3 {
		t.Error("post-replace lookup did not find the successor")
	}
	if n := p.Remove(3); n != 1 {
		t.Errorf("Remove removed %d entries, want 1", n)
	}
	if _, ok := p.Lookup(src, dst); ok {
		t.Error("removed entry still matches")
	}
	if src2, dst2 := gwAddr(2); true {
		if got, _ := p.Lookup(src2, dst2); got != b {
			t.Error("unrelated entry lost by Remove's index rebuild")
		}
	}
	if p.Len() != 1 {
		t.Errorf("Len = %d, want 1", p.Len())
	}
}
