package ipsec

import (
	"errors"
	"net/netip"
	"path/filepath"
	"testing"
	"time"

	"antireplay/internal/core"
	"antireplay/internal/store"
)

func snapTestKeys(b byte) KeyMaterial {
	k := KeyMaterial{AuthKey: make([]byte, AuthKeySize)}
	for i := range k.AuthKey {
		k.AuthKey[i] = b
	}
	return k
}

func snapTestSelector(i int) Selector {
	a := netip.AddrFrom4([4]byte{10, 0, 0, byte(i)})
	b := netip.AddrFrom4([4]byte{10, 0, 1, byte(i)})
	return Selector{Src: netip.PrefixFrom(a, 32), Dst: netip.PrefixFrom(b, 32)}
}

func TestGatewaySnapshotCapturesPopulation(t *testing.T) {
	j, err := store.OpenJournal(filepath.Join(t.TempDir(), "gw.log"), store.JournalWithoutSync())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	gw, err := NewGateway(GatewayConfig{Journal: j, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	if _, err := gw.AddOutbound(0x11, snapTestKeys(1), snapTestSelector(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := gw.AddInbound(0x21, snapTestKeys(2)); err != nil {
		t.Fatal(err)
	}
	// A rekeyed outbound SA: the successor carries lineage, the old SA
	// drains.
	if _, err := gw.RekeyOutbound(0x11, 0x12, snapTestKeys(3)); err != nil {
		t.Fatal(err)
	}

	snap := gw.Snapshot()
	if len(snap.Outbound) != 2 || len(snap.Inbound) != 1 {
		t.Fatalf("snapshot has %d outbound / %d inbound, want 2/1",
			len(snap.Outbound), len(snap.Inbound))
	}
	bySPI := make(map[uint32]OutboundSnapshot)
	for _, ob := range snap.Outbound {
		bySPI[ob.SPI] = ob
	}
	old, nu := bySPI[0x11], bySPI[0x12]
	if !old.Draining || old.Generation != 0 {
		t.Errorf("old SA snapshot = %+v, want draining generation 0", old)
	}
	if nu.Draining || nu.Generation != 1 || nu.PrevSPI != 0x11 {
		t.Errorf("successor snapshot = %+v, want gen 1 prev 0x11", nu)
	}
	if len(nu.Selectors) != 1 || nu.Selectors[0] != snapTestSelector(1) {
		t.Errorf("successor selectors = %v, want the rekeyed-over entry", nu.Selectors)
	}
	if len(old.Selectors) != 0 {
		t.Errorf("old SA still owns selectors %v after cutover", old.Selectors)
	}
	// Keys are deep copies, not aliases.
	snap.Inbound[0].Keys.AuthKey[0] ^= 0xff
	if gw.Snapshot().Inbound[0].Keys.AuthKey[0] == snap.Inbound[0].Keys.AuthKey[0] {
		t.Error("snapshot keys alias live SA key material")
	}
}

func TestGatewayAdoptBuildsDownImageAndWakes(t *testing.T) {
	dir := t.TempDir()
	jp, err := store.OpenJournal(filepath.Join(dir, "primary.log"), store.JournalWithoutSync())
	if err != nil {
		t.Fatal(err)
	}
	defer jp.Close()
	jf, err := store.OpenJournal(filepath.Join(dir, "follower.log"), store.JournalWithoutSync())
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()

	primary, err := NewGateway(GatewayConfig{Journal: jp, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	sel := snapTestSelector(1)
	out, err := primary.AddOutbound(0x11, snapTestKeys(1), sel)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := primary.AddInbound(0x21, snapTestKeys(2)); err != nil {
		t.Fatal(err)
	}
	// Advance the outbound counter so the journal holds real state, then
	// "replicate" the journal to the follower wholesale.
	for i := 0; i < 40; i++ {
		for {
			_, err := out.Seal([]byte("x"))
			if err == nil {
				break
			}
			if !errors.Is(err, core.ErrSaveLag) {
				t.Fatal(err)
			}
			time.Sleep(20 * time.Microsecond) // background save catching up
		}
	}
	var recs []store.TailRecord
	for k, v := range jp.Values() {
		recs = append(recs, store.TailRecord{Key: k, Val: v})
	}
	if err := jf.Apply(recs); err != nil {
		t.Fatal(err)
	}

	standby, err := NewGateway(GatewayConfig{Journal: jf, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer standby.Close()
	if err := standby.Adopt(primary.Snapshot()); err != nil {
		t.Fatal(err)
	}

	// The image is warm but down: nothing seals, nothing admits.
	adopted, ok := standby.Outbound(0x11)
	if !ok {
		t.Fatal("adopted outbound SA missing")
	}
	if st := adopted.Sender().State(); st != core.StateDown {
		t.Fatalf("adopted sender state = %v, want down", st)
	}
	if _, err := standby.Seal(sel.Src.Addr(), sel.Dst.Addr(), []byte("x")); err == nil {
		t.Fatal("standby image sealed a packet while down")
	}
	in, ok := standby.SAD().Lookup(0x21)
	if !ok {
		t.Fatal("adopted inbound SA missing")
	}
	if st := in.Receiver().State(); st != core.StateDown {
		t.Fatalf("adopted receiver state = %v, want down", st)
	}

	// Re-adopting is a no-op.
	if err := standby.Adopt(primary.Snapshot()); err != nil {
		t.Fatal(err)
	}

	// Takeover-as-wake-up: WakeAll leaps every adopted SA from its
	// replicated counter, so the first sealed sequence number clears every
	// number the primary ever used.
	if err := standby.WakeAll(); err != nil {
		t.Fatal(err)
	}
	used := out.Sender().Seq() // primary's next unused number
	first := adopted.Sender().Seq()
	if first < used {
		t.Fatalf("adopted sender resumes at %d, below the primary's %d", first, used)
	}
	if _, err := standby.Seal(sel.Src.Addr(), sel.Dst.Addr(), []byte("x")); err != nil {
		t.Fatalf("promoted standby seal: %v", err)
	}
}

func TestGatewayAdoptForgetsWithoutTombstone(t *testing.T) {
	j, err := store.OpenJournal(filepath.Join(t.TempDir(), "gw.log"), store.JournalWithoutSync())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	gw, err := NewGateway(GatewayConfig{Journal: j, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	snap := GatewaySnapshot{
		Inbound: []InboundSnapshot{{SPI: 0x21, Keys: snapTestKeys(2)}},
	}
	if err := gw.Adopt(snap); err != nil {
		t.Fatal(err)
	}
	// Simulate the replication stream having delivered a counter for the
	// adopted cell.
	if err := j.Apply([]store.TailRecord{{Key: InboundKey(0x21), Val: 500}}); err != nil {
		t.Fatal(err)
	}
	// The SA leaves the population: the claim is released but the cell's
	// replicated value must survive — the stream, not the mirror, owns it.
	if err := gw.Adopt(GatewaySnapshot{}); err != nil {
		t.Fatal(err)
	}
	if _, ok := gw.SAD().Lookup(0x21); ok {
		t.Fatal("forgotten SA still registered")
	}
	if v, ok, _ := j.Cell(InboundKey(0x21)).Fetch(); !ok || v != 500 {
		t.Fatalf("cell after forget = %d,%v, want 500,true (no tombstone)", v, ok)
	}
	// And the released claim can be re-taken (re-adoption after a revert).
	if err := gw.Adopt(snap); err != nil {
		t.Fatalf("re-adopt after forget: %v", err)
	}
}
