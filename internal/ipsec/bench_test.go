package ipsec

import (
	"bytes"
	"fmt"
	"testing"

	"antireplay/internal/core"
	"antireplay/internal/store"
)

// benchPair builds SAs with a huge K so background saves never trigger
// inside the measurement loop.
func benchPair(b *testing.B, enc bool) (*OutboundSA, *InboundSA) {
	b.Helper()
	var sm, rm store.Mem
	snd, err := core.NewSender(core.SenderConfig{K: 1 << 40, Store: &sm})
	if err != nil {
		b.Fatal(err)
	}
	rcv, err := core.NewReceiver(core.ReceiverConfig{K: 1 << 40, Store: &rm, W: 64})
	if err != nil {
		b.Fatal(err)
	}
	keys := KeyMaterial{AuthKey: bytes.Repeat([]byte{1}, AuthKeySize)}
	if enc {
		keys.EncKey = bytes.Repeat([]byte{2}, EncKeySize)
	}
	out, err := NewOutboundSA(1, keys, snd, false, Lifetime{}, nil)
	if err != nil {
		b.Fatal(err)
	}
	in, err := NewInboundSA(1, keys, rcv, false, Lifetime{}, nil)
	if err != nil {
		b.Fatal(err)
	}
	return out, in
}

// BenchmarkSeal measures the paper's T_send (per-message cost) — the
// denominator of the §4 sizing rule.
func BenchmarkSeal(b *testing.B) {
	for _, size := range []int{64, 1000, 1500} {
		for _, enc := range []bool{false, true} {
			mode := "auth"
			if enc {
				mode = "auth+enc"
			}
			b.Run(fmt.Sprintf("%s/%dB", mode, size), func(b *testing.B) {
				out, _ := benchPair(b, enc)
				payload := bytes.Repeat([]byte{0x42}, size)
				b.SetBytes(int64(size))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := out.Seal(payload); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkOpen(b *testing.B) {
	for _, size := range []int{64, 1000} {
		b.Run(fmt.Sprintf("auth+enc/%dB", size), func(b *testing.B) {
			out, in := benchPair(b, true)
			payload := bytes.Repeat([]byte{0x42}, size)
			wires := make([][]byte, b.N)
			for i := range wires {
				w, err := out.Seal(payload)
				if err != nil {
					b.Fatal(err)
				}
				wires[i] = w
			}
			b.SetBytes(int64(size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, v, err := in.Open(wires[i]); err != nil || !v.Delivered() {
					b.Fatalf("Open: %v %v", v, err)
				}
			}
		})
	}
}

// BenchmarkSealBatch prices the batched outbound path against per-packet
// Seal: one sender lock and one lifetime check per burst instead of per
// packet.
func BenchmarkSealBatch(b *testing.B) {
	for _, burst := range []int{16, 64} {
		b.Run(fmt.Sprintf("burst=%d", burst), func(b *testing.B) {
			out, _ := benchPair(b, true)
			payloads := make([][]byte, burst)
			for i := range payloads {
				payloads[i] = bytes.Repeat([]byte{0x42}, 256)
			}
			b.SetBytes(int64(burst * 256))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := out.SealBatch(payloads); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkVerifyBatch prices the batched inbound path: one hard-lifetime
// check and one set of counter updates per burst.
func BenchmarkVerifyBatch(b *testing.B) {
	for _, burst := range []int{16, 64} {
		b.Run(fmt.Sprintf("burst=%d", burst), func(b *testing.B) {
			out, in := benchPair(b, true)
			payload := bytes.Repeat([]byte{0x42}, 256)
			b.SetBytes(int64(burst * 256))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer() // sealing the burst is the sender's cost
				wires, err := out.SealBatch(repeatPayload(payload, burst))
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for _, res := range in.VerifyBatch(wires) {
					if !res.Delivered() {
						b.Fatalf("verdict=%v err=%v", res.Verdict, res.Err)
					}
				}
			}
		})
	}
}

func repeatPayload(p []byte, n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = p
	}
	return out
}

func BenchmarkOpenReplayReject(b *testing.B) {
	out, in := benchPair(b, true)
	wire, err := out.Seal([]byte("payload"))
	if err != nil {
		b.Fatal(err)
	}
	if _, v, err := in.Open(wire); err != nil || !v.Delivered() {
		b.Fatal("first open failed")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, v, _ := in.Open(wire); v.Delivered() {
			b.Fatal("replay delivered")
		}
	}
}
