package ipsec

import (
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"antireplay/internal/core"
	"antireplay/internal/store"
)

func newInboundT(t *testing.T, spi uint32) *InboundSA {
	t.Helper()
	rcv, err := core.NewReceiver(core.ReceiverConfig{K: 5, W: 64, Store: &store.Mem{}})
	if err != nil {
		t.Fatalf("NewReceiver: %v", err)
	}
	sa, err := NewInboundSA(spi, testKeys(false), rcv, false, Lifetime{}, nil)
	if err != nil {
		t.Fatalf("NewInboundSA: %v", err)
	}
	return sa
}

// TestSADShardDistribution: sequentially allocated SPIs (the common
// allocator pattern) must spread across stripes, not pile onto a few.
func TestSADShardDistribution(t *testing.T) {
	d := NewSAD()
	counts := make(map[*sadShard]int)
	for spi := uint32(1); spi <= 4096; spi++ {
		counts[d.shard(spi)]++
	}
	if len(counts) != sadShardCount {
		t.Fatalf("%d shards used, want all %d", len(counts), sadShardCount)
	}
	for s, n := range counts {
		if n > 4096/sadShardCount*4 {
			t.Errorf("shard %p holds %d of 4096 SPIs — distribution too skewed", s, n)
		}
	}
}

// TestSADConcurrentStress hammers the sharded SAD with concurrent Add,
// Delete, Lookup, Open, Len, and Range. Run under -race this is the
// regression test for the lock striping.
func TestSADConcurrentStress(t *testing.T) {
	d := NewSAD()
	const spis = 128

	// Pre-seal one valid packet per SPI so Open exercises full routing.
	wires := make([][]byte, spis)
	for i := range wires {
		spi := uint32(i + 1)
		snd, err := core.NewSender(core.SenderConfig{K: 5, Store: &store.Mem{}})
		if err != nil {
			t.Fatalf("NewSender: %v", err)
		}
		out, err := NewOutboundSA(spi, testKeys(false), snd, false, Lifetime{}, nil)
		if err != nil {
			t.Fatalf("NewOutboundSA: %v", err)
		}
		w, err := out.Seal([]byte("stress"))
		if err != nil {
			t.Fatalf("Seal: %v", err)
		}
		wires[i] = w
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 2000; i++ {
				spi := uint32(rng.Intn(spis) + 1)
				switch rng.Intn(5) {
				case 0:
					d.Add(newInboundT(t, spi))
				case 1:
					d.Delete(spi)
				case 2:
					d.Lookup(spi)
				case 3:
					// Concurrent deletes make ErrUnknownSPI legitimate;
					// only data races (caught by -race) and panics fail.
					_, _, _ = d.Open(wires[spi-1])
				case 4:
					if n := d.Len(); n < 0 || n > spis {
						t.Errorf("Len = %d, want 0..%d", n, spis)
					}
					d.Range(func(*InboundSA) bool { return true })
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestSPDExactFastPath: with only host-route selectors Lookup uses the hash
// map; one prefix selector drops back to the ordered scan, and first-match
// order is preserved either way.
func TestSPDExactFastPath(t *testing.T) {
	newOut := func(spi uint32) *OutboundSA {
		snd, err := core.NewSender(core.SenderConfig{K: 5, Store: &store.Mem{}})
		if err != nil {
			t.Fatalf("NewSender: %v", err)
		}
		sa, err := NewOutboundSA(spi, testKeys(false), snd, false, Lifetime{}, nil)
		if err != nil {
			t.Fatalf("NewOutboundSA: %v", err)
		}
		return sa
	}
	host1, host2 := gwSelector(1), gwSelector(2)
	src1, dst1 := gwAddr(1)

	p := NewSPD()
	sa1, sa2 := newOut(1), newOut(2)
	p.Add(host1, sa1)
	p.Add(host2, sa2)
	p.Add(host1, newOut(3)) // duplicate must not shadow the first match
	if got, ok := p.Lookup(src1, dst1); !ok || got != sa1 {
		t.Errorf("exact Lookup = (%p, %v), want first-added sa1", got, ok)
	}
	if _, ok := p.Lookup(dst1, src1); ok {
		t.Error("reversed pair matched, want miss")
	}

	// The zero value stays usable (public API exposes the type).
	var zero SPD
	zero.Add(host1, sa1)
	if got, ok := zero.Lookup(src1, dst1); !ok || got != sa1 {
		t.Errorf("zero-value SPD Lookup = (%p, %v), want sa1", got, ok)
	}

	// A broad prefix added first must win over a later host entry.
	p2 := NewSPD()
	broad := newOut(9)
	p2.Add(Selector{
		Src: netip.MustParsePrefix("10.0.0.0/8"),
		Dst: netip.MustParsePrefix("10.1.0.0/16"),
	}, broad)
	p2.Add(host1, newOut(10))
	if got, ok := p2.Lookup(src1, dst1); !ok || got != broad {
		t.Errorf("prefix-first Lookup = (%p, %v), want the broad first match", got, ok)
	}
}

func TestSADRange(t *testing.T) {
	d := NewSAD()
	for spi := uint32(1); spi <= 10; spi++ {
		d.Add(newInboundT(t, spi))
	}
	seen := make(map[uint32]bool)
	d.Range(func(sa *InboundSA) bool {
		seen[sa.SPI()] = true
		return true
	})
	if len(seen) != 10 {
		t.Errorf("Range visited %d SAs, want 10", len(seen))
	}
	visited := 0
	d.Range(func(*InboundSA) bool {
		visited++
		return false
	})
	if visited != 1 {
		t.Errorf("Range with early stop visited %d, want 1", visited)
	}
}

func testGateway(t *testing.T, opts ...store.JournalOption) (*Gateway, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "gw.journal")
	j, err := store.OpenJournal(path, opts...)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	// Cleanups run after the test body's deferred g.Close has drained the
	// owned pool.
	t.Cleanup(func() { j.Close() })
	g, err := NewGateway(GatewayConfig{Journal: j, K: 5, W: 64})
	if err != nil {
		t.Fatalf("NewGateway: %v", err)
	}
	return g, path
}

func gwAddr(i int) (src, dst netip.Addr) {
	return netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)}),
		netip.AddrFrom4([4]byte{10, 1, byte(i >> 8), byte(i)})
}

func gwSelector(i int) Selector {
	src, dst := gwAddr(i)
	return Selector{
		Src: netip.PrefixFrom(src, 32),
		Dst: netip.PrefixFrom(dst, 32),
	}
}

// gwSeal seals with retry on ErrSaveLag: the strict horizon's bounded
// backpressure while a queued background save catches up.
func gwSeal(t *testing.T, g *Gateway, src, dst netip.Addr, payload []byte) []byte {
	t.Helper()
	for attempt := 0; attempt < 10000; attempt++ {
		wire, err := g.Seal(src, dst, payload)
		if err == nil {
			return wire
		}
		if !errors.Is(err, core.ErrSaveLag) {
			t.Fatalf("Seal: %v", err)
		}
		time.Sleep(20 * time.Microsecond)
	}
	t.Fatal("Seal: ErrSaveLag never cleared")
	return nil
}

// gwOpen opens with retry on VerdictHorizon (the receiver-side analogue; a
// horizon discard does not mark the window, so a retry is a retransmission).
func gwOpen(t *testing.T, g *Gateway, wire []byte) ([]byte, core.Verdict) {
	t.Helper()
	for attempt := 0; attempt < 10000; attempt++ {
		payload, verdict, err := g.Open(wire)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		if verdict != core.VerdictHorizon {
			return payload, verdict
		}
		time.Sleep(20 * time.Microsecond)
	}
	t.Fatal("Open: VerdictHorizon never cleared")
	return nil, 0
}

func TestGatewaySealOpenAcrossSAs(t *testing.T) {
	g, _ := testGateway(t)
	defer g.Close()
	const n = 16
	for i := 0; i < n; i++ {
		spi := uint32(0x1000 + i)
		if _, err := g.AddOutbound(spi, testKeys(true), gwSelector(i)); err != nil {
			t.Fatalf("AddOutbound: %v", err)
		}
		if _, err := g.AddInbound(spi, testKeys(true)); err != nil {
			t.Fatalf("AddInbound: %v", err)
		}
	}
	if g.SAD().Len() != n || g.SPD().Len() != n {
		t.Fatalf("SAD/SPD len = %d/%d, want %d/%d", g.SAD().Len(), g.SPD().Len(), n, n)
	}
	// A live SPI must not be registrable twice in either direction: two
	// endpoints over one journal cell would collide after a wake.
	if _, err := g.AddOutbound(0x1000, testKeys(true), gwSelector(99)); !errors.Is(err, ErrDuplicateSPI) {
		t.Errorf("duplicate AddOutbound = %v, want ErrDuplicateSPI", err)
	}
	if _, err := g.AddInbound(0x1000, testKeys(true)); !errors.Is(err, ErrDuplicateSPI) {
		t.Errorf("duplicate AddInbound = %v, want ErrDuplicateSPI", err)
	}
	for i := 0; i < n; i++ {
		src, dst := gwAddr(i)
		msg := []byte(fmt.Sprintf("tunnel-%d", i))
		wire := gwSeal(t, g, src, dst, msg)
		got, verdict := gwOpen(t, g, wire)
		if !verdict.Delivered() || string(got) != string(msg) {
			t.Fatalf("Open %d = (%q, %v), want delivered %q", i, got, verdict, msg)
		}
	}
}

// TestGatewayResetRecovery is the paper's multi-SA reset scenario on the
// shared journal: after ResetAll/WakeAll, no sequence number is reused
// (fresh seals land above the pre-reset counters) and replayed packets are
// rejected by every SA.
func TestGatewayResetRecovery(t *testing.T) {
	g, _ := testGateway(t)
	defer g.Close()
	const n = 8
	outs := make([]*OutboundSA, n)
	ins := make([]*InboundSA, n)
	for i := 0; i < n; i++ {
		spi := uint32(0x2000 + i)
		out, err := g.AddOutbound(spi, testKeys(false), gwSelector(i))
		if err != nil {
			t.Fatalf("AddOutbound: %v", err)
		}
		outs[i] = out
		in, err := g.AddInbound(spi, testKeys(false))
		if err != nil {
			t.Fatalf("AddInbound: %v", err)
		}
		ins[i] = in
	}

	replays := make([][]byte, n)
	preSeq := make([]uint64, n)
	for i := 0; i < n; i++ {
		src, dst := gwAddr(i)
		for p := 0; p < 30; p++ {
			wire := gwSeal(t, g, src, dst, []byte("pre-reset"))
			if _, verdict := gwOpen(t, g, wire); !verdict.Delivered() {
				t.Fatalf("Open pre-reset: %v", verdict)
			}
			replays[i] = wire
		}
		preSeq[i] = outs[i].Sender().Seq()
	}

	// Let the async saver pool drain before the reset. Post-wake the sender
	// leaps to durable_s + leap·K and the receiver sacrifices everything at
	// or below durable_r + leap·K, so fresh traffic flows immediately only
	// when durable_s >= durable_r per SA. That holds at quiescence (the
	// sender saves ahead of its seq) but not necessarily mid-flight: under
	// heavy parallel load the receiver's last save can commit while the
	// sender's is still queued, and the first post-wake seal is then
	// (correctly, per the paper) sacrificed — not what this test asserts.
	for i := 0; i < n; i++ {
		for a := 0; outs[i].Sender().LastStored() < ins[i].Receiver().LastStored(); a++ {
			if a >= 10000 {
				t.Fatalf("SA %d: sender durable %d stuck below receiver durable %d",
					i, outs[i].Sender().LastStored(), ins[i].Receiver().LastStored())
			}
			time.Sleep(20 * time.Microsecond)
		}
	}

	g.ResetAll()
	if _, err := outs[0].Seal([]byte("down")); err == nil {
		t.Fatal("Seal while down succeeded, want error")
	}
	if err := g.WakeAll(); err != nil {
		t.Fatalf("WakeAll: %v", err)
	}

	for i := 0; i < n; i++ {
		// The leaped counter must clear everything handed out pre-reset.
		if got := outs[i].Sender().Seq(); got < preSeq[i] {
			t.Errorf("SA %d: post-wake seq %d < pre-reset %d — sequence reuse", i, got, preSeq[i])
		}
		// Replays of pre-reset traffic must be rejected...
		if _, verdict, err := g.Open(replays[i]); err != nil || verdict.Delivered() {
			t.Errorf("SA %d: replay after reset = (%v, %v), want discarded", i, verdict, err)
		}
		// ...and fresh traffic must flow.
		src, dst := gwAddr(i)
		wire := gwSeal(t, g, src, dst, []byte("post-reset"))
		if _, verdict := gwOpen(t, g, wire); !verdict.Delivered() {
			t.Errorf("SA %d: fresh post-reset = %v, want delivered", i, verdict)
		}
	}
}

// TestGatewayRecoveryFromDisk reboots the whole gateway process: a second
// gateway over the same journal path must resume with counters at or above
// the first life's, so no SA ever reuses a sequence number.
func TestGatewayRecoveryFromDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gw.journal")
	j, err := store.OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	g, err := NewGateway(GatewayConfig{Journal: j, K: 5})
	if err != nil {
		t.Fatalf("NewGateway: %v", err)
	}
	const n = 8
	lastSeq := make([]uint64, n)
	for i := 0; i < n; i++ {
		out, err := g.AddOutbound(uint32(0x3000+i), testKeys(false), gwSelector(i))
		if err != nil {
			t.Fatalf("AddOutbound: %v", err)
		}
		src, dst := gwAddr(i)
		for p := 0; p < 40; p++ {
			gwSeal(t, g, src, dst, []byte("x"))
		}
		lastSeq[i] = out.Sender().Seq()
	}
	if err := g.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("journal Close: %v", err)
	}

	j2, err := store.OpenJournal(path)
	if err != nil {
		t.Fatalf("reopen journal: %v", err)
	}
	defer j2.Close()
	g2, err := NewGateway(GatewayConfig{Journal: j2, K: 5})
	if err != nil {
		t.Fatalf("NewGateway 2: %v", err)
	}
	defer g2.Close()
	outs := make([]*OutboundSA, n)
	for i := 0; i < n; i++ {
		// AddOutbound sees the prior life's counter in the journal and
		// resumes through the paper's wake-up on its own; no hand-rolled
		// Reset/Wake needed.
		outs[i], err = g2.AddOutbound(uint32(0x3000+i), testKeys(false), gwSelector(i))
		if err != nil {
			t.Fatalf("AddOutbound 2: %v", err)
		}
	}
	if err := g2.WakeAll(); err != nil {
		t.Fatalf("WakeAll: %v", err)
	}
	for i := 0; i < n; i++ {
		if got := outs[i].Sender().Seq(); got < lastSeq[i] {
			t.Errorf("SA %d: rebooted seq %d < pre-reboot %d — reuse across process restart", i, got, lastSeq[i])
		}
	}
}

// TestGatewayAddAfterClose: registration on a closed gateway must fail
// cleanly (no panic, no stranded journal claim).
func TestGatewayAddAfterClose(t *testing.T) {
	g, _ := testGateway(t)
	j := g.Journal()
	if err := g.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := g.AddOutbound(0x1, testKeys(false), gwSelector(1)); !errors.Is(err, store.ErrClosed) {
		t.Errorf("AddOutbound after Close = %v, want ErrClosed", err)
	}
	if _, err := g.AddInbound(0x1, testKeys(false)); !errors.Is(err, store.ErrClosed) {
		t.Errorf("AddInbound after Close = %v, want ErrClosed", err)
	}
	// The failed Adds left no claim behind: a successor gateway owns the SPI.
	g2, err := NewGateway(GatewayConfig{Journal: j, K: 5})
	if err != nil {
		t.Fatalf("NewGateway: %v", err)
	}
	defer g2.Close()
	if _, err := g2.AddOutbound(0x1, testKeys(false), gwSelector(1)); err != nil {
		t.Errorf("successor AddOutbound = %v, want nil", err)
	}
}

// TestGatewayDuplicateSPIAcrossGateways: the duplicate guard is scoped to
// the journal, not the gateway — two gateways sharing one journal must not
// both own an SPI's cell.
func TestGatewayDuplicateSPIAcrossGateways(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shared.journal")
	j, err := store.OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	defer j.Close()
	g1, err := NewGateway(GatewayConfig{Journal: j, K: 5})
	if err != nil {
		t.Fatalf("NewGateway 1: %v", err)
	}
	defer g1.Close()
	g2, err := NewGateway(GatewayConfig{Journal: j, K: 5})
	if err != nil {
		t.Fatalf("NewGateway 2: %v", err)
	}
	defer g2.Close()

	if _, err := g1.AddOutbound(0x9000, testKeys(false), gwSelector(1)); err != nil {
		t.Fatalf("g1 AddOutbound: %v", err)
	}
	if _, err := g2.AddOutbound(0x9000, testKeys(false), gwSelector(2)); !errors.Is(err, ErrDuplicateSPI) {
		t.Errorf("g2 duplicate AddOutbound = %v, want ErrDuplicateSPI", err)
	}
	// A disjoint SPI on the shared journal is fine.
	if _, err := g2.AddOutbound(0x9001, testKeys(false), gwSelector(2)); err != nil {
		t.Errorf("g2 disjoint AddOutbound = %v, want nil", err)
	}
}
