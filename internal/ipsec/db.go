package ipsec

import (
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"

	"antireplay/internal/core"
)

// sadShardBits sets the number of shards in a SAD (a power of two so the
// hash's top bits index directly). 64 shards keep writer contention
// negligible well past 100k SAs while costing a few KB per database.
const (
	sadShardBits  = 6
	sadShardCount = 1 << sadShardBits
)

// sadMap is one shard's immutable SPI table. Readers obtain it with a
// single atomic load; writers rebuild a copy under the shard mutex and
// publish the new map — RCU with the garbage collector standing in for the
// grace period.
type sadMap = map[uint32]*InboundSA

type sadShard struct {
	cur atomic.Pointer[sadMap] // always non-nil; the published snapshot
	mu  sync.Mutex             // serializes writers (copy-on-write rebuilds)
}

// SAD is the security association database: inbound SAs keyed by SPI. Each
// of the sadShardCount shards publishes an immutable map snapshot through
// an atomic pointer, so the per-packet Lookup is wait-free — one atomic
// load plus a map read, with no lock acquisition at all. Mutations
// (Add/Delete) copy the shard's map under a writer mutex and swap the
// pointer; at gateway scale they are control-plane rare while lookups run
// per packet, exactly the asymmetry copy-on-write wants. Safe for
// concurrent use.
type SAD struct {
	shards [sadShardCount]sadShard
}

// NewSAD returns an empty database.
func NewSAD() *SAD {
	d := &SAD{}
	empty := sadMap{}
	for i := range d.shards {
		d.shards[i].cur.Store(&empty)
	}
	return d
}

// shard maps an SPI to its shard. SPIs are often allocated sequentially,
// so the index comes from the top bits of a Fibonacci-hash multiply rather
// than the SPI's own low bits.
func (d *SAD) shard(spi uint32) *sadShard {
	return &d.shards[(spi*2654435761)>>(32-sadShardBits)]
}

// mutate rebuilds a shard's snapshot through fn under the writer mutex.
func (s *sadShard) mutate(fn func(m sadMap)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := *s.cur.Load()
	m := make(sadMap, len(old)+1)
	for k, v := range old {
		m[k] = v
	}
	fn(m)
	s.cur.Store(&m)
}

// Add registers sa, replacing any SA with the same SPI.
func (d *SAD) Add(sa *InboundSA) {
	d.shard(sa.SPI()).mutate(func(m sadMap) { m[sa.SPI()] = sa })
}

// Delete removes the SA with the given SPI, reporting whether it existed.
// Deleting an absent SPI is a read-only no-op (no snapshot republish).
func (d *SAD) Delete(spi uint32) bool {
	s := d.shard(spi)
	s.mu.Lock()
	defer s.mu.Unlock()
	old := *s.cur.Load()
	if _, ok := old[spi]; !ok {
		return false
	}
	m := make(sadMap, len(old))
	for k, v := range old {
		if k != spi {
			m[k] = v
		}
	}
	s.cur.Store(&m)
	return true
}

// Lookup returns the SA for spi. It is wait-free: one atomic snapshot load
// and a map read, safe against any concurrent Add/Delete.
func (d *SAD) Lookup(spi uint32) (*InboundSA, bool) {
	sa, ok := (*d.shard(spi).cur.Load())[spi]
	return sa, ok
}

// Len returns the number of registered SAs.
func (d *SAD) Len() int {
	n := 0
	for i := range d.shards {
		n += len(*d.shards[i].cur.Load())
	}
	return n
}

// Range calls fn for each registered SA until fn returns false. The
// iteration walks each shard's published snapshot without blocking writers;
// SAs added or deleted concurrently may or may not be observed.
func (d *SAD) Range(fn func(*InboundSA) bool) {
	for i := range d.shards {
		for _, sa := range *d.shards[i].cur.Load() {
			if !fn(sa) {
				return
			}
		}
	}
}

// Open routes wire bytes to the SA named by their SPI and opens them.
func (d *SAD) Open(wire []byte) ([]byte, core.Verdict, error) {
	spi, err := ParseSPI(wire)
	if err != nil {
		return nil, 0, err
	}
	sa, ok := d.Lookup(spi)
	if !ok {
		return nil, 0, fmt.Errorf("%w: %#x", ErrUnknownSPI, spi)
	}
	return sa.Open(wire)
}

// Selector matches traffic by source and destination prefix, after the
// SPD selectors of RFC 4301 (ports and protocol omitted).
type Selector struct {
	Src netip.Prefix
	Dst netip.Prefix
}

// Matches reports whether the selector covers the (src, dst) pair.
func (s Selector) Matches(src, dst netip.Addr) bool {
	return s.Src.Contains(src) && s.Dst.Contains(dst)
}

// spdView is an immutable snapshot of the policy database: the ordered
// entry list plus the host-route index derived from it. Lookup consumes a
// view with one atomic load; every mutation builds and publishes a fresh
// view under the writer mutex, so a reader can never observe a half-updated
// index — the property the old read-write lock provided, now without any
// per-packet lock traffic.
type spdView struct {
	entries []spdEntry
	exact   map[hostPair]*OutboundSA
	scanAll bool // a non-host selector exists; the ordered scan decides
}

// SPD is the security policy database: an ordered list of selectors mapping
// outbound traffic to SAs (first match wins). Host-route selectors (both
// prefixes single-address, the common shape on a tunnel concentrator) are
// additionally indexed in a hash map; while every entry is a host route,
// Lookup is O(1) instead of a linear selector scan — the outbound analogue
// of the SAD's sharding. One non-host selector falls Lookup back to the
// ordered scan, preserving first-match-wins exactly. Reads are wait-free
// against an atomically published immutable view; see spdView. Safe for
// concurrent use.
type SPD struct {
	mu  sync.Mutex // serializes writers (view rebuilds)
	cur atomic.Pointer[spdView]
}

type spdEntry struct {
	sel Selector
	sa  *OutboundSA
}

type hostPair struct {
	src, dst netip.Addr
}

// emptySPDView backs zero-value and fresh SPDs.
var emptySPDView = &spdView{exact: map[hostPair]*OutboundSA{}}

// NewSPD returns an empty policy database.
func NewSPD() *SPD {
	p := &SPD{}
	p.cur.Store(emptySPDView)
	return p
}

// view returns the current snapshot, tolerating a zero-value SPD.
func (p *SPD) view() *spdView {
	if v := p.cur.Load(); v != nil {
		return v
	}
	return emptySPDView
}

// rebuild derives a fresh view from an entry list: the host-route index is
// reconstructed entry by entry so first-match-wins semantics are identical
// to the ordered scan.
func rebuildSPDView(entries []spdEntry) *spdView {
	v := &spdView{entries: entries, exact: make(map[hostPair]*OutboundSA, len(entries))}
	for _, e := range entries {
		if e.sel.Src.IsSingleIP() && e.sel.Dst.IsSingleIP() {
			pair := hostPair{src: e.sel.Src.Addr(), dst: e.sel.Dst.Addr()}
			if _, dup := v.exact[pair]; !dup {
				// First match wins; a later duplicate never shadows it.
				v.exact[pair] = e.sa
			}
		} else {
			v.scanAll = true
			v.exact = nil // never consulted; the ordered scan decides
			break
		}
	}
	if v.scanAll {
		v.exact = nil
	}
	return v
}

// Add appends a policy entry. The new view's entry list shares the old
// backing array where capacity allows (published views only ever read
// their own prefix, and in-place mutation happens solely on freshly copied
// slices), so the slice work is amortized O(1); the host-route index is
// copied and extended, which makes Add O(existing host routes) — the price
// of lock-free readers. That is fine at control-plane rates; a caller
// installing a very large table pays a quadratic total and should prefer
// fewer, wider selectors (or accept the one-time cost — 10k entries
// install in well under a second).
func (p *SPD) Add(sel Selector, sa *OutboundSA) {
	p.mu.Lock()
	defer p.mu.Unlock()
	old := p.view()
	entries := append(old.entries, spdEntry{sel: sel, sa: sa})
	v := &spdView{entries: entries, scanAll: old.scanAll}
	switch {
	case old.scanAll:
		// The ordered scan already decides; no index to maintain.
	case sel.Src.IsSingleIP() && sel.Dst.IsSingleIP():
		v.exact = make(map[hostPair]*OutboundSA, len(old.exact)+1)
		for k, sa := range old.exact {
			v.exact[k] = sa
		}
		pair := hostPair{src: sel.Src.Addr(), dst: sel.Dst.Addr()}
		if _, dup := v.exact[pair]; !dup {
			// First match wins; a later duplicate never shadows it.
			v.exact[pair] = sa
		}
	default:
		v.scanAll = true // a non-host selector: the ordered scan decides
	}
	p.cur.Store(v)
}

// Len returns the number of policy entries.
func (p *SPD) Len() int { return len(p.view().entries) }

// Replace atomically repoints every entry carrying old to carry new,
// preserving each entry's selector and position — the outbound cutover of a
// make-before-break rekey: one moment the selectors seal on the old
// generation, the next on its successor, with no window where a lookup can
// miss. Returns the number of entries repointed.
func (p *SPD) Replace(old, new *OutboundSA) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	v := p.view()
	n := 0
	for i := range v.entries {
		if v.entries[i].sa == old {
			n++
		}
	}
	if n == 0 {
		return 0 // nothing matched; keep the published view
	}
	entries := make([]spdEntry, len(v.entries))
	copy(entries, v.entries)
	for i := range entries {
		if entries[i].sa == old {
			entries[i].sa = new
		}
	}
	p.cur.Store(rebuildSPDView(entries))
	return n
}

// Remove deletes every entry whose SA has the given SPI, returning how many
// were removed. The published view is rebuilt from the surviving entries,
// so first-match-wins semantics are preserved — and a removal that takes
// out the only non-host selector restores O(1) lookups.
func (p *SPD) Remove(spi uint32) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	v := p.view()
	kept := make([]spdEntry, 0, len(v.entries))
	n := 0
	for _, e := range v.entries {
		if e.sa.SPI() == spi {
			n++
			continue
		}
		kept = append(kept, e)
	}
	if n == 0 {
		return 0
	}
	p.cur.Store(rebuildSPDView(kept))
	return n
}

// Range calls fn for each policy entry in order until fn returns false,
// iterating a consistent published snapshot without blocking writers — the
// iteration a control plane needs to export the policy table (e.g. for a
// standby's mirror).
func (p *SPD) Range(fn func(Selector, *OutboundSA) bool) {
	for _, e := range p.view().entries {
		if !fn(e.sel, e.sa) {
			return
		}
	}
}

// Lookup returns the first SA whose selector covers (src, dst). It is
// wait-free: one atomic view load, then a hash probe (all-host-route
// tables) or the ordered scan.
func (p *SPD) Lookup(src, dst netip.Addr) (*OutboundSA, bool) {
	v := p.view()
	if !v.scanAll {
		sa, ok := v.exact[hostPair{src: src, dst: dst}]
		return sa, ok
	}
	for _, e := range v.entries {
		if e.sel.Matches(src, dst) {
			return e.sa, true
		}
	}
	return nil, false
}

// Seal finds the policy for (src, dst) and seals payload through its SA.
func (p *SPD) Seal(src, dst netip.Addr, payload []byte) ([]byte, error) {
	sa, ok := p.Lookup(src, dst)
	if !ok {
		return nil, fmt.Errorf("%w: %v -> %v", ErrNoPolicy, src, dst)
	}
	return sa.Seal(payload)
}
