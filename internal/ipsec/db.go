package ipsec

import (
	"fmt"
	"net/netip"
	"sync"

	"antireplay/internal/core"
)

// SAD is the security association database: inbound SAs keyed by SPI.
// Safe for concurrent use.
type SAD struct {
	mu  sync.RWMutex
	sas map[uint32]*InboundSA
}

// NewSAD returns an empty database.
func NewSAD() *SAD { return &SAD{sas: make(map[uint32]*InboundSA)} }

// Add registers sa, replacing any SA with the same SPI.
func (d *SAD) Add(sa *InboundSA) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.sas[sa.SPI()] = sa
}

// Delete removes the SA with the given SPI, reporting whether it existed.
func (d *SAD) Delete(spi uint32) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.sas[spi]
	delete(d.sas, spi)
	return ok
}

// Lookup returns the SA for spi.
func (d *SAD) Lookup(spi uint32) (*InboundSA, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	sa, ok := d.sas[spi]
	return sa, ok
}

// Len returns the number of registered SAs.
func (d *SAD) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.sas)
}

// Open routes wire bytes to the SA named by their SPI and opens them.
func (d *SAD) Open(wire []byte) ([]byte, core.Verdict, error) {
	spi, err := ParseSPI(wire)
	if err != nil {
		return nil, 0, err
	}
	sa, ok := d.Lookup(spi)
	if !ok {
		return nil, 0, fmt.Errorf("%w: %#x", ErrUnknownSPI, spi)
	}
	return sa.Open(wire)
}

// Selector matches traffic by source and destination prefix, after the
// SPD selectors of RFC 4301 (ports and protocol omitted).
type Selector struct {
	Src netip.Prefix
	Dst netip.Prefix
}

// Matches reports whether the selector covers the (src, dst) pair.
func (s Selector) Matches(src, dst netip.Addr) bool {
	return s.Src.Contains(src) && s.Dst.Contains(dst)
}

// SPD is the security policy database: an ordered list of selectors mapping
// outbound traffic to SAs (first match wins). Safe for concurrent use.
type SPD struct {
	mu      sync.RWMutex
	entries []spdEntry
}

type spdEntry struct {
	sel Selector
	sa  *OutboundSA
}

// NewSPD returns an empty policy database.
func NewSPD() *SPD { return &SPD{} }

// Add appends a policy entry.
func (p *SPD) Add(sel Selector, sa *OutboundSA) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.entries = append(p.entries, spdEntry{sel: sel, sa: sa})
}

// Len returns the number of policy entries.
func (p *SPD) Len() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.entries)
}

// Lookup returns the first SA whose selector covers (src, dst).
func (p *SPD) Lookup(src, dst netip.Addr) (*OutboundSA, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	for _, e := range p.entries {
		if e.sel.Matches(src, dst) {
			return e.sa, true
		}
	}
	return nil, false
}

// Seal finds the policy for (src, dst) and seals payload through its SA.
func (p *SPD) Seal(src, dst netip.Addr, payload []byte) ([]byte, error) {
	sa, ok := p.Lookup(src, dst)
	if !ok {
		return nil, fmt.Errorf("%w: %v -> %v", ErrNoPolicy, src, dst)
	}
	return sa.Seal(payload)
}
