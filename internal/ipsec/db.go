package ipsec

import (
	"fmt"
	"net/netip"
	"sync"

	"antireplay/internal/core"
)

// sadShardBits sets the number of lock stripes in a SAD (a power of two so
// the hash's top bits index directly). 64 stripes keep contention
// negligible well past 100k SAs while costing ~6KB per database.
const (
	sadShardBits  = 6
	sadShardCount = 1 << sadShardBits
)

type sadShard struct {
	mu  sync.RWMutex
	sas map[uint32]*InboundSA
}

// SAD is the security association database: inbound SAs keyed by SPI. The
// table is lock-striped into sadShardCount shards so per-packet lookups on
// different SAs never serialize on one database-wide lock — the hot path of
// a gateway terminating many tunnels. Safe for concurrent use.
type SAD struct {
	shards [sadShardCount]sadShard
}

// NewSAD returns an empty database.
func NewSAD() *SAD {
	d := &SAD{}
	for i := range d.shards {
		d.shards[i].sas = make(map[uint32]*InboundSA)
	}
	return d
}

// shard maps an SPI to its stripe. SPIs are often allocated sequentially,
// so the index comes from the top bits of a Fibonacci-hash multiply rather
// than the SPI's own low bits.
func (d *SAD) shard(spi uint32) *sadShard {
	return &d.shards[(spi*2654435761)>>(32-sadShardBits)]
}

// Add registers sa, replacing any SA with the same SPI.
func (d *SAD) Add(sa *InboundSA) {
	s := d.shard(sa.SPI())
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sas[sa.SPI()] = sa
}

// Delete removes the SA with the given SPI, reporting whether it existed.
func (d *SAD) Delete(spi uint32) bool {
	s := d.shard(spi)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.sas[spi]
	delete(s.sas, spi)
	return ok
}

// Lookup returns the SA for spi.
func (d *SAD) Lookup(spi uint32) (*InboundSA, bool) {
	s := d.shard(spi)
	s.mu.RLock()
	defer s.mu.RUnlock()
	sa, ok := s.sas[spi]
	return sa, ok
}

// Len returns the number of registered SAs.
func (d *SAD) Len() int {
	n := 0
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.RLock()
		n += len(s.sas)
		s.mu.RUnlock()
	}
	return n
}

// Range calls fn for each registered SA until fn returns false. The
// iteration holds one shard's read lock at a time; SAs added or deleted
// concurrently may or may not be observed.
func (d *SAD) Range(fn func(*InboundSA) bool) {
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.RLock()
		for _, sa := range s.sas {
			if !fn(sa) {
				s.mu.RUnlock()
				return
			}
		}
		s.mu.RUnlock()
	}
}

// Open routes wire bytes to the SA named by their SPI and opens them.
func (d *SAD) Open(wire []byte) ([]byte, core.Verdict, error) {
	spi, err := ParseSPI(wire)
	if err != nil {
		return nil, 0, err
	}
	sa, ok := d.Lookup(spi)
	if !ok {
		return nil, 0, fmt.Errorf("%w: %#x", ErrUnknownSPI, spi)
	}
	return sa.Open(wire)
}

// Selector matches traffic by source and destination prefix, after the
// SPD selectors of RFC 4301 (ports and protocol omitted).
type Selector struct {
	Src netip.Prefix
	Dst netip.Prefix
}

// Matches reports whether the selector covers the (src, dst) pair.
func (s Selector) Matches(src, dst netip.Addr) bool {
	return s.Src.Contains(src) && s.Dst.Contains(dst)
}

// SPD is the security policy database: an ordered list of selectors mapping
// outbound traffic to SAs (first match wins). Host-route selectors (both
// prefixes single-address, the common shape on a tunnel concentrator) are
// additionally indexed in a hash map; while every entry is a host route,
// Lookup is O(1) instead of a linear selector scan — the outbound analogue
// of the SAD's lock striping. One non-host selector falls Lookup back to
// the ordered scan, preserving first-match-wins exactly. Safe for
// concurrent use.
type SPD struct {
	mu      sync.RWMutex
	entries []spdEntry
	exact   map[hostPair]*OutboundSA
	scanAll bool // a non-host selector exists; the ordered scan decides
}

type spdEntry struct {
	sel Selector
	sa  *OutboundSA
}

type hostPair struct {
	src, dst netip.Addr
}

// NewSPD returns an empty policy database.
func NewSPD() *SPD { return &SPD{exact: make(map[hostPair]*OutboundSA)} }

// Add appends a policy entry.
func (p *SPD) Add(sel Selector, sa *OutboundSA) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.entries = append(p.entries, spdEntry{sel: sel, sa: sa})
	if p.scanAll {
		return // the ordered scan decides; the map has been dropped
	}
	if sel.Src.IsSingleIP() && sel.Dst.IsSingleIP() {
		if p.exact == nil { // zero-value SPD works like before
			p.exact = make(map[hostPair]*OutboundSA)
		}
		pair := hostPair{src: sel.Src.Addr(), dst: sel.Dst.Addr()}
		if _, dup := p.exact[pair]; !dup {
			// First match wins; a later duplicate never shadows it.
			p.exact[pair] = sa
		}
	} else {
		p.scanAll = true
		p.exact = nil // never consulted again; free it
	}
}

// Len returns the number of policy entries.
func (p *SPD) Len() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.entries)
}

// Replace atomically repoints every entry carrying old to carry new,
// preserving each entry's selector and position — the outbound cutover of a
// make-before-break rekey: one moment the selectors seal on the old
// generation, the next on its successor, with no window where a lookup can
// miss. Returns the number of entries repointed.
func (p *SPD) Replace(old, new *OutboundSA) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for i := range p.entries {
		if p.entries[i].sa == old {
			p.entries[i].sa = new
			n++
		}
	}
	for pair, sa := range p.exact {
		if sa == old {
			p.exact[pair] = new
		}
	}
	return n
}

// Remove deletes every entry whose SA has the given SPI, returning how many
// were removed. The host-route index and the scan-all flag are rebuilt from
// the surviving entries, so first-match-wins semantics are preserved — and a
// removal that takes out the only non-host selector restores O(1) lookups.
func (p *SPD) Remove(spi uint32) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	kept := p.entries[:0]
	n := 0
	for _, e := range p.entries {
		if e.sa.SPI() == spi {
			n++
			continue
		}
		kept = append(kept, e)
	}
	if n == 0 {
		return 0
	}
	// Zero the removed tail so the dropped SAs are collectable.
	for i := len(kept); i < len(p.entries); i++ {
		p.entries[i] = spdEntry{}
	}
	p.entries = kept
	p.scanAll = false
	p.exact = make(map[hostPair]*OutboundSA)
	for _, e := range p.entries {
		if !p.scanAll && e.sel.Src.IsSingleIP() && e.sel.Dst.IsSingleIP() {
			pair := hostPair{src: e.sel.Src.Addr(), dst: e.sel.Dst.Addr()}
			if _, dup := p.exact[pair]; !dup {
				p.exact[pair] = e.sa
			}
		} else {
			p.scanAll = true
			p.exact = nil
		}
	}
	return n
}

// Range calls fn for each policy entry in order until fn returns false,
// holding the database read lock throughout — the iteration a control plane
// needs to export the policy table (e.g. for a standby's mirror).
func (p *SPD) Range(fn func(Selector, *OutboundSA) bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	for _, e := range p.entries {
		if !fn(e.sel, e.sa) {
			return
		}
	}
}

// Lookup returns the first SA whose selector covers (src, dst).
func (p *SPD) Lookup(src, dst netip.Addr) (*OutboundSA, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if !p.scanAll {
		sa, ok := p.exact[hostPair{src: src, dst: dst}]
		return sa, ok
	}
	for _, e := range p.entries {
		if e.sel.Matches(src, dst) {
			return e.sa, true
		}
	}
	return nil, false
}

// Seal finds the policy for (src, dst) and seals payload through its SA.
func (p *SPD) Seal(src, dst netip.Addr, payload []byte) ([]byte, error) {
	sa, ok := p.Lookup(src, dst)
	if !ok {
		return nil, fmt.Errorf("%w: %v -> %v", ErrNoPolicy, src, dst)
	}
	return sa.Seal(payload)
}
