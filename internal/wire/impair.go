package wire

import (
	"math/rand"
	"sync"
)

// ImpairConfig is the send-side impairment model an ImpairLink applies.
// All draws come from one seeded source, so a run over any link —
// including a real socket — replays its impairment decisions
// deterministically for the same traffic.
type ImpairConfig struct {
	// Seed drives the impairment randomness.
	Seed int64
	// LossProb drops a datagram.
	LossProb float64
	// DupProb transmits a datagram twice.
	DupProb float64
	// ReorderProb holds a datagram back and releases it after the next
	// one (adjacent swap — the bounded reorder a short queue causes).
	ReorderProb float64
}

// ImpairStats counts the middleware's interference.
type ImpairStats struct {
	Lost, Duplicated, Reordered, Injected uint64
}

// ImpairLink composes loss, duplication, and reordering over any Link,
// and carries the adversary hooks across transports: Tap is the wiretap
// position (sees every datagram handed to Send, even ones then lost)
// and Inject transmits bypassing taps and impairment. This is what lets
// the resetinj/adversary layers drive the same scenarios over netsim
// and over real sockets.
type ImpairLink struct {
	inner Link

	mu      sync.Mutex
	rng     *rand.Rand
	cfg     ImpairConfig
	taps    []func([]byte)
	held    []byte
	hasHeld bool
	istats  ImpairStats
}

// NewImpairLink wraps inner with the seeded impairment model.
func NewImpairLink(inner Link, cfg ImpairConfig) *ImpairLink {
	return &ImpairLink{inner: inner, cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Tap registers fn at the wiretap position.
func (l *ImpairLink) Tap(fn func(p []byte)) {
	l.mu.Lock()
	l.taps = append(l.taps, fn)
	l.mu.Unlock()
}

// Send applies the impairment model, then transmits survivors.
func (l *ImpairLink) Send(p []byte) error {
	l.mu.Lock()
	taps := l.taps
	l.mu.Unlock()
	// Taps run outside the lock: a tap may call straight back into
	// Inject (the adversary's tap->inject shape, e.g. duplicating the
	// packet it just observed), which takes l.mu itself.
	for _, tap := range taps {
		tap(p)
	}
	l.mu.Lock()
	if l.cfg.LossProb > 0 && l.rng.Float64() < l.cfg.LossProb {
		l.istats.Lost++
		l.mu.Unlock()
		return nil
	}
	if l.cfg.ReorderProb > 0 && l.rng.Float64() < l.cfg.ReorderProb && !l.hasHeld {
		// Hold p back; it rides out after the next datagram.
		l.held, l.hasHeld = p, true
		l.istats.Reordered++
		l.mu.Unlock()
		return nil
	}
	// Duplication applies to datagrams transmitted now (a held datagram
	// is released exactly once).
	dup := l.cfg.DupProb > 0 && l.rng.Float64() < l.cfg.DupProb
	if dup {
		l.istats.Duplicated++
	}
	var release []byte
	if l.hasHeld {
		release, l.held, l.hasHeld = l.held, nil, false
	}
	l.mu.Unlock()

	if err := l.inner.Send(p); err != nil {
		return err
	}
	if dup {
		if err := l.inner.Send(p); err != nil {
			return err
		}
	}
	if release != nil {
		return l.inner.Send(release)
	}
	return nil
}

// Inject transmits p directly: no taps, no impairment. It satisfies
// adversary.Injector[[]byte].
func (l *ImpairLink) Inject(p []byte) {
	l.mu.Lock()
	l.istats.Injected++
	l.mu.Unlock()
	l.inner.Send(p) //nolint:errcheck // the adversary gets no delivery report
}

// Flush releases a held (reordered) datagram, if any — call at the end
// of a traffic burst so the swap victim is not stranded.
func (l *ImpairLink) Flush() error {
	l.mu.Lock()
	var release []byte
	if l.hasHeld {
		release, l.held, l.hasHeld = l.held, nil, false
	}
	l.mu.Unlock()
	if release != nil {
		return l.inner.Send(release)
	}
	return nil
}

// Recv, Close, Stats, and MTU delegate to the inner link.
func (l *ImpairLink) Recv() ([]byte, error) { return l.inner.Recv() }

// OnRecv delegates inline delivery when the inner link supports it.
func (l *ImpairLink) OnRecv(h Handler) {
	if ir, ok := l.inner.(InlineReceiver); ok {
		ir.OnRecv(h)
	}
}

// Close closes the inner link.
func (l *ImpairLink) Close() error { return l.inner.Close() }

// Stats returns the inner link's counters (the impairment's own are in
// ImpairStats).
func (l *ImpairLink) Stats() Stats { return l.inner.Stats() }

// ImpairStats returns the interference counters.
func (l *ImpairLink) ImpairStats() ImpairStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.istats
}

// MTU returns the inner link's MTU.
func (l *ImpairLink) MTU() int { return l.inner.MTU() }

// Inner exposes the wrapped link.
func (l *ImpairLink) Inner() Link { return l.inner }

var (
	_ Link     = (*ImpairLink)(nil)
	_ Tapper   = (*ImpairLink)(nil)
	_ Injector = (*ImpairLink)(nil)
)
