package wire

import (
	"encoding/binary"
	"testing"
	"time"
)

// fuzzInnerLink is the null inner link beneath the fuzzed FragLink: probe
// acks vanish, Recv never yields (the fuzzer drives handleFrame directly).
type fuzzInnerLink struct{}

func (fuzzInnerLink) Send([]byte) error     { return nil }
func (fuzzInnerLink) Recv() ([]byte, error) { return nil, ErrNoDatagram }
func (fuzzInnerLink) Close() error          { return nil }
func (fuzzInnerLink) Stats() Stats          { return Stats{} }
func (fuzzInnerLink) MTU() int              { return 0 }

// fuzzFrameStream splits raw fuzz input into a frame sequence with 2-byte
// big-endian length prefixes (a short final chunk is taken as-is), so one
// input drives a whole hostile conversation: interleaved ids, splinters,
// forged headers, retransmissions.
func fuzzFrameStream(raw []byte) [][]byte {
	var frames [][]byte
	for off := 0; off+2 <= len(raw); {
		n := int(binary.BigEndian.Uint16(raw[off : off+2]))
		off += 2
		if n > len(raw)-off {
			n = len(raw) - off
		}
		frames = append(frames, raw[off:off+n])
		off += n
	}
	return frames
}

// prefixFrames is the seed-side inverse of fuzzFrameStream.
func prefixFrames(frames ...[]byte) []byte {
	var raw []byte
	for _, f := range frames {
		var lp [2]byte
		binary.BigEndian.PutUint16(lp[:], uint16(len(f)))
		raw = append(raw, lp[:]...)
		raw = append(raw, f...)
	}
	return raw
}

// FuzzFragReassembly throws arbitrary frame sequences at the reassembly
// state machine. Invariants, no matter how hostile the stream:
//
//   - never panic;
//   - PendingBytes stays within [0, MaxReassemblyBytes] — buffered
//     reassembly memory is bounded even when every frame lies;
//   - a frame without the version magic (or shorter than the header)
//     never delivers a datagram;
//   - every delivered datagram fits MaxDatagram.
func FuzzFragReassembly(f *testing.F) {
	const memBound = 1 << 16

	// Seeds: a legitimate whole-datagram frame, a clean two-fragment
	// reassembly, and one of each hostile class the catalogue rejects.
	whole := []byte("a perfectly ordinary datagram")
	f.Add(prefixFrames(EncodeFrame(7, 0, 1, 0, len(whole), whole)))
	big := make([]byte, 300)
	for i := range big {
		big[i] = byte(i)
	}
	f.Add(prefixFrames(
		EncodeFrame(7, FragFlagFrag, 2, 0, len(big), big[:150]),
		EncodeFrame(7, FragFlagFrag, 2, 150, len(big), big[150:]),
	))
	f.Add(prefixFrames([]byte{0, 0, 0, 7, 0x00, 0, 0, 0, 3, 0, 0, 0, 9})) // bad magic
	f.Add(prefixFrames(EncodeFrame(7, FragFlagFrag, 4, 0, 500, big[:4]))) // tiny splinter
	f.Add(prefixFrames(                                                   // overlapping rewrite
		EncodeFrame(7, FragFlagFrag, 5, 0, len(big), big[:150]),
		EncodeFrame(7, FragFlagFrag, 5, 100, len(big), big[:150]),
	))
	f.Add(prefixFrames(EncodeFrame(probeSPI, FragFlagProbe, 6, 0, 200, make([]byte, 187))))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, raw []byte) {
		l := NewFragLink(fuzzInnerLink{}, FragConfig{
			MaxReassemblyBytes: memBound,
			MaxPending:         32,
			MinFragPayload:     8,
			Now:                func() time.Duration { return 0 },
		})
		for _, frame := range fuzzFrameStream(raw) {
			p, ok := l.handleFrame(frame)
			if ok {
				if len(frame) < fragHdrLen || frame[4]&flagMagicMsk != flagMagic {
					t.Fatalf("delivered a datagram from a frame without the version magic: % x", frame)
				}
				if len(p) > MaxDatagram {
					t.Fatalf("delivered %d bytes > MaxDatagram %d", len(p), MaxDatagram)
				}
			}
			fs := l.FragStats()
			if fs.PendingBytes < 0 || fs.PendingBytes > memBound {
				t.Fatalf("PendingBytes = %d outside [0, %d]", fs.PendingBytes, memBound)
			}
		}
	})
}
