package wire

import "sync"

// GateVerdict classifies one datagram at the gate.
type GateVerdict uint8

// Gate verdicts.
const (
	// GatePass transmits the datagram immediately.
	GatePass GateVerdict = iota
	// GateDrop discards the datagram silently (targeted loss — on a real
	// network the sender cannot tell this from congestion).
	GateDrop
	// GateHold queues the datagram until Release — the adversary's
	// delay/reorder primitive: held traffic re-enters the path later, by
	// which time the receiver's window edge has moved.
	GateHold
)

// GateFunc decides a datagram's fate. A nil gate passes everything.
type GateFunc func(p []byte) GateVerdict

// GateStats counts the gate's interference.
type GateStats struct {
	// Passed, Dropped, and Held count Send classifications.
	Passed, Dropped, Held uint64
	// Released counts held datagrams later transmitted by Release.
	Released uint64
	// HeldDropped counts held datagrams discarded by DropHeld or Close.
	HeldDropped uint64
	// Injected counts Inject calls (the adversary's own transmissions).
	Injected uint64
}

// GateLink is programmable drop/hold middleware over any Link: every
// datagram handed to Send is classified by the installed GateFunc as
// pass, drop, or hold, and held datagrams accumulate until the
// controller releases them. Unlike ImpairLink's seeded randomness, the
// gate is *scheduled* interference — the actuator the adversary
// campaign layer (internal/adversary) drives to aim drops and reorders
// at protocol-significant moments: window edges, SAVE cadence, rekey
// cutovers, failover blackouts.
//
// GateLink carries the adversary hooks across transports like
// ImpairLink does: Tap is the wiretap position (sees every datagram
// handed to Send, before the gate decides), and Inject transmits
// bypassing taps and the gate.
type GateLink struct {
	inner Link

	mu     sync.Mutex
	gate   GateFunc
	taps   []func([]byte)
	held   [][]byte
	gstats GateStats
}

// NewGateLink wraps inner with an open gate (everything passes until
// SetGate installs a decider).
func NewGateLink(inner Link) *GateLink { return &GateLink{inner: inner} }

// SetGate installs (or, with nil, removes) the decider. Safe to call
// while traffic is flowing — campaign phases swap deciders mid-run.
func (l *GateLink) SetGate(fn GateFunc) {
	l.mu.Lock()
	l.gate = fn
	l.mu.Unlock()
}

// Tap registers fn at the wiretap position.
func (l *GateLink) Tap(fn func(p []byte)) {
	l.mu.Lock()
	l.taps = append(l.taps, fn)
	l.mu.Unlock()
}

// Send taps p, asks the gate, and transmits, queues, or drops it.
func (l *GateLink) Send(p []byte) error {
	l.mu.Lock()
	taps := l.taps
	gate := l.gate
	l.mu.Unlock()
	// Taps and the gate run outside the lock: both may call back into
	// the link (Inject, Release — the tap->inject shape), which takes
	// l.mu itself.
	for _, tap := range taps {
		tap(p)
	}
	verdict := GatePass
	if gate != nil {
		verdict = gate(p)
	}
	switch verdict {
	case GateDrop:
		l.count(func(s *GateStats) { s.Dropped++ })
		return nil
	case GateHold:
		l.mu.Lock()
		l.held = append(l.held, p)
		l.gstats.Held++
		l.mu.Unlock()
		return nil
	default:
		l.count(func(s *GateStats) { s.Passed++ })
		return l.inner.Send(p)
	}
}

// Release transmits up to n held datagrams in hold order (n < 0 means
// all) and returns how many went out.
func (l *GateLink) Release(n int) int {
	l.mu.Lock()
	if n < 0 || n > len(l.held) {
		n = len(l.held)
	}
	batch := l.held[:n:n]
	l.held = l.held[n:]
	l.gstats.Released += uint64(n)
	l.mu.Unlock()
	for _, p := range batch {
		l.inner.Send(p) //nolint:errcheck // released traffic is fire-and-forget like Send survivors
	}
	return n
}

// DropHeld discards all held datagrams and returns how many.
func (l *GateLink) DropHeld() int {
	l.mu.Lock()
	n := len(l.held)
	l.held = nil
	l.gstats.HeldDropped += uint64(n)
	l.mu.Unlock()
	return n
}

// HeldCount returns how many datagrams the gate is holding.
func (l *GateLink) HeldCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.held)
}

// Inject transmits p directly: no taps, no gate. It satisfies
// adversary.Injector[[]byte]; when the inner link has its own Inject
// (impairment or simulation below the gate), injection bypasses that
// layer too — the adversary controls its own transmissions end to end.
func (l *GateLink) Inject(p []byte) {
	l.count(func(s *GateStats) { s.Injected++ })
	if inj, ok := l.inner.(Injector); ok {
		inj.Inject(p)
		return
	}
	l.inner.Send(p) //nolint:errcheck // the adversary gets no delivery report
}

func (l *GateLink) count(f func(*GateStats)) {
	l.mu.Lock()
	f(&l.gstats)
	l.mu.Unlock()
}

// GateStats returns the interference counters.
func (l *GateLink) GateStats() GateStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.gstats
}

// Recv delegates to the inner link.
func (l *GateLink) Recv() ([]byte, error) { return l.inner.Recv() }

// OnRecv delegates inline delivery when the inner link supports it.
func (l *GateLink) OnRecv(h Handler) {
	if ir, ok := l.inner.(InlineReceiver); ok {
		ir.OnRecv(h)
	}
}

// Close discards held datagrams and closes the inner link.
func (l *GateLink) Close() error {
	l.DropHeld()
	return l.inner.Close()
}

// Stats returns the inner link's counters (the gate's own are in
// GateStats).
func (l *GateLink) Stats() Stats { return l.inner.Stats() }

// MTU returns the inner link's MTU.
func (l *GateLink) MTU() int { return l.inner.MTU() }

// Inner exposes the wrapped link.
func (l *GateLink) Inner() Link { return l.inner }

var (
	_ Link     = (*GateLink)(nil)
	_ Tapper   = (*GateLink)(nil)
	_ Injector = (*GateLink)(nil)
)
