package wire

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"antireplay/internal/netsim"
)

func TestGateLinkPassDropHold(t *testing.T) {
	e := netsim.NewEngine(1)
	a, b := NewSimPair(e, netsim.LinkConfig{}, netsim.LinkConfig{})
	g := NewGateLink(a)

	// Open gate: everything passes.
	if err := g.Send([]byte("open")); err != nil {
		t.Fatal(err)
	}
	// Programmed gate: drop "d*", hold "h*", pass the rest.
	g.SetGate(func(p []byte) GateVerdict {
		switch p[0] {
		case 'd':
			return GateDrop
		case 'h':
			return GateHold
		}
		return GatePass
	})
	for _, m := range []string{"p1", "d1", "h1", "p2", "h2", "d2"} {
		if err := g.Send([]byte(m)); err != nil {
			t.Fatal(err)
		}
	}
	e.Run()
	got := map[string]bool{}
	for {
		p, err := b.Recv()
		if err != nil {
			break
		}
		got[string(p)] = true
	}
	for _, want := range []string{"open", "p1", "p2"} {
		if !got[want] {
			t.Fatalf("passed datagram %q not delivered (got %v)", want, got)
		}
	}
	for _, blocked := range []string{"d1", "d2", "h1", "h2"} {
		if got[blocked] {
			t.Fatalf("gated datagram %q delivered", blocked)
		}
	}
	if n := g.HeldCount(); n != 2 {
		t.Fatalf("HeldCount = %d, want 2", n)
	}

	// Release in hold order; the held traffic re-enters the path late.
	if n := g.Release(1); n != 1 {
		t.Fatalf("Release(1) = %d", n)
	}
	if n := g.Release(-1); n != 1 {
		t.Fatalf("Release(-1) = %d", n)
	}
	e.Run()
	p, err := b.Recv()
	if err != nil || string(p) != "h1" {
		t.Fatalf("first release = %q, %v, want h1", p, err)
	}
	p, err = b.Recv()
	if err != nil || string(p) != "h2" {
		t.Fatalf("second release = %q, %v, want h2", p, err)
	}

	st := g.GateStats()
	if st.Passed != 3 || st.Dropped != 2 || st.Held != 2 || st.Released != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGateLinkTapSeesGatedTraffic(t *testing.T) {
	e := netsim.NewEngine(1)
	a, _ := NewSimPair(e, netsim.LinkConfig{}, netsim.LinkConfig{})
	g := NewGateLink(a)
	g.SetGate(func([]byte) GateVerdict { return GateDrop })
	var seen int
	g.Tap(func([]byte) { seen++ })
	for i := 0; i < 5; i++ {
		if err := g.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if seen != 5 {
		t.Fatalf("wiretap saw %d, want 5 (taps precede the gate)", seen)
	}
}

func TestGateLinkInjectBypassesGateAndImpairment(t *testing.T) {
	e := netsim.NewEngine(1)
	a, b := NewSimPair(e, netsim.LinkConfig{}, netsim.LinkConfig{})
	imp := NewImpairLink(a, ImpairConfig{Seed: 3, LossProb: 1.0})
	g := NewGateLink(imp)
	g.SetGate(func([]byte) GateVerdict { return GateDrop })
	var tapped int
	g.Tap(func([]byte) { tapped++ })

	g.Inject([]byte("adversary"))
	e.Run()
	p, err := b.Recv()
	if err != nil || string(p) != "adversary" {
		t.Fatalf("injection = %q, %v (must bypass gate AND the 100%% loss below)", p, err)
	}
	if tapped != 0 {
		t.Fatalf("injection must bypass the wiretap")
	}
}

// TestGateLinkCloseDiscardsHeld pins that Close does not transmit held
// datagrams (a torn-down campaign must not leak its hostages).
func TestGateLinkCloseDiscardsHeld(t *testing.T) {
	e := netsim.NewEngine(1)
	a, b := NewSimPair(e, netsim.LinkConfig{}, netsim.LinkConfig{})
	g := NewGateLink(a)
	g.SetGate(func([]byte) GateVerdict { return GateHold })
	if err := g.Send([]byte("hostage")); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if _, err := b.Recv(); err == nil {
		t.Fatal("held datagram transmitted by Close")
	}
	if st := g.GateStats(); st.HeldDropped != 1 {
		t.Fatalf("HeldDropped = %d, want 1", st.HeldDropped)
	}
}

// TestImpairTapInjectReentry is the regression test for the tap->inject
// deadlock: ImpairLink.Send used to invoke tap callbacks while holding
// its mutex, so a tap that called Inject (which takes the same mutex —
// exactly the campaign layer's duplicate-on-observe shape) deadlocked
// the datapath. Taps must run outside the lock.
func TestImpairTapInjectReentry(t *testing.T) {
	e := netsim.NewEngine(1)
	a, b := NewSimPair(e, netsim.LinkConfig{}, netsim.LinkConfig{})
	imp := NewImpairLink(a, ImpairConfig{Seed: 9})
	imp.Tap(func(p []byte) {
		dup := append([]byte(nil), p...)
		imp.Inject(dup) // re-entry: would self-deadlock before the fix
	})

	done := make(chan error, 1)
	go func() { done <- imp.Send([]byte("observed")) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Send deadlocked: tap could not call Inject")
	}
	e.Run()
	n := 0
	for {
		if _, err := b.Recv(); err != nil {
			break
		}
		n++
	}
	if n != 2 {
		t.Fatalf("delivered %d datagrams, want original + injected copy", n)
	}
	if st := imp.ImpairStats(); st.Injected != 1 {
		t.Fatalf("Injected = %d, want 1", st.Injected)
	}
}

// TestGateTapInjectReentry pins the same re-entry contract for GateLink:
// a tap and the gate function itself may call Inject and Release.
func TestGateTapInjectReentry(t *testing.T) {
	e := netsim.NewEngine(1)
	a, b := NewSimPair(e, netsim.LinkConfig{}, netsim.LinkConfig{})
	g := NewGateLink(a)
	g.Tap(func(p []byte) { g.Inject(append([]byte("tap-"), p...)) })
	g.SetGate(func(p []byte) GateVerdict {
		g.Release(-1) // gate callbacks may drive the gate itself
		return GatePass
	})
	done := make(chan error, 1)
	go func() { done <- g.Send([]byte("x")) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Send deadlocked: gate callback could not re-enter the link")
	}
	e.Run()
	n := 0
	for {
		if _, err := b.Recv(); err != nil {
			break
		}
		n++
	}
	if n != 2 {
		t.Fatalf("delivered %d datagrams, want passed original + injected copy", n)
	}
}

// TestImpairTapRegistrationRace is the -race regression for registering
// a wiretap while traffic flows: the campaign layer arms taps on live
// links from its own goroutine. Send must snapshot the tap list under
// the lock, and a tap registered before Send starts must observe it.
func TestImpairTapRegistrationRace(t *testing.T) {
	e := netsim.NewEngine(1)
	a, _ := NewSimPair(e, netsim.LinkConfig{}, netsim.LinkConfig{})
	imp := NewImpairLink(a, ImpairConfig{Seed: 1})

	stop := make(chan struct{})
	var observed atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 64; i++ {
			select {
			case <-stop:
				return
			default:
			}
			imp.Tap(func([]byte) { observed.Add(1) })
		}
	}()
	for i := 0; i < 512; i++ {
		if err := imp.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	// A tap registered after the dust settles sees subsequent traffic.
	seen := 0
	imp.Tap(func([]byte) { seen++ })
	if err := imp.Send([]byte("late")); err != nil {
		t.Fatal(err)
	}
	if seen != 1 {
		t.Fatalf("late tap saw %d sends, want 1", seen)
	}
}
