//go:build sockets

package wire

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"antireplay/internal/ike"
)

// These tests open real UDP sockets on the loopback interface. They are
// behind the `sockets` build tag (and all named TestTransport*) so the
// default test run stays hermetic; CI runs them in a dedicated job:
//
//	go test -run TestTransport -tags sockets ./internal/...

const sockTimeout = 5 * time.Second

// udpPair opens two loopback endpoints and a link each way. SPI a→b is
// 0x10 (registered at b), b→a is 0x20 (registered at a).
func udpPair(t *testing.T, cfg UDPConfig) (la, lb *UDPLink) {
	t.Helper()
	ea, err := ListenUDP("", cfg)
	if err != nil {
		t.Fatalf("ListenUDP a: %v", err)
	}
	t.Cleanup(func() { ea.Close() })
	eb, err := ListenUDP("", cfg)
	if err != nil {
		t.Fatalf("ListenUDP b: %v", err)
	}
	t.Cleanup(func() { eb.Close() })
	la, err = ea.Link(eb.Addr(), 0x20)
	if err != nil {
		t.Fatalf("link a: %v", err)
	}
	lb, err = eb.Link(ea.Addr(), 0x10)
	if err != nil {
		t.Fatalf("link b: %v", err)
	}
	return la, lb
}

// esp fabricates an ESP-shaped datagram: leading SPI, then payload.
func esp(spi uint32, payload []byte) []byte {
	p := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(p, spi)
	copy(p[4:], payload)
	return p
}

func TestTransportUDPRoundTrip(t *testing.T) {
	la, lb := udpPair(t, UDPConfig{})

	want := esp(0x10, []byte("east-to-west over real sockets"))
	if err := la.Send(want); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got, err := lb.RecvTimeout(sockTimeout)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %q", got)
	}

	back := esp(0x20, []byte("west-to-east"))
	if err := lb.Send(back); err != nil {
		t.Fatalf("Send back: %v", err)
	}
	if got, err = la.RecvTimeout(sockTimeout); err != nil || !bytes.Equal(got, back) {
		t.Fatalf("Recv back: %q, %v", got, err)
	}

	if s := la.Stats(); s.TxPackets != 1 || s.RxPackets != 1 {
		t.Errorf("la stats = %+v", s)
	}
}

func TestTransportUDPControlPlane(t *testing.T) {
	la, lb := udpPair(t, UDPConfig{})

	// A control message must not collide with ESP demux even when its
	// body begins with a valid SPI.
	msg := esp(0x10, []byte("ike-shaped control body"))
	if err := la.SendControl(msg); err != nil {
		t.Fatalf("SendControl: %v", err)
	}
	got, err := lb.RecvControlTimeout(sockTimeout)
	if err != nil {
		t.Fatalf("RecvControl: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("control got %q", got)
	}
	// Nothing leaked into the ESP lane.
	if _, err := lb.RecvTimeout(50 * time.Millisecond); err != ErrNoDatagram {
		t.Fatalf("data lane err = %v, want ErrNoDatagram", err)
	}
}

func TestTransportUDPRekeyExchange(t *testing.T) {
	la, lb := udpPair(t, UDPConfig{})

	cfg := func(seed int64, id string) ike.Config {
		return ike.Config{
			PSK:   []byte("sockets-test-psk"),
			Rand:  rand.New(rand.NewSource(seed)),
			Group: ike.TestGroup(),
			ID:    id,
		}
	}
	ini, err := ike.NewRekeyInitiator(cfg(1, "a"), 0x10, 0x20)
	if err != nil {
		t.Fatal(err)
	}
	rsp, err := ike.NewRekeyResponder(cfg(2, "b"), 0x10, 0x20)
	if err != nil {
		t.Fatal(err)
	}

	srvErr := make(chan error, 1)
	go func() { srvErr <- ike.ServeRekey(rsp, lb.Control()) }()

	keys, err := ike.RekeyOverConn(ini, la.Control())
	if err != nil {
		t.Fatalf("RekeyOverConn: %v", err)
	}
	if err := <-srvErr; err != nil {
		t.Fatalf("ServeRekey: %v", err)
	}
	if !reflect.DeepEqual(keys, rsp.ChildKeys()) {
		t.Fatalf("keys diverge across the socket exchange")
	}
}

func TestTransportUDPKeepalive(t *testing.T) {
	la, lb := udpPair(t, UDPConfig{KeepaliveInterval: 30 * time.Millisecond})
	_ = la

	// Neither side transmits; keepalives must flow and be absorbed.
	deadline := time.Now().Add(sockTimeout)
	for time.Now().Before(deadline) {
		if lb.Stats().Keepalives > 0 && la.KeepalivesSent() > 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("keepalives: sent=%d seen=%d", la.KeepalivesSent(), lb.Stats().Keepalives)
}

func TestTransportUDPFragmentation(t *testing.T) {
	la, lb := udpPair(t, UDPConfig{MTU: 512})
	fa := NewFragLink(la, FragConfig{})
	fb := NewFragLink(lb, FragConfig{})

	want := esp(0x10, bytes.Repeat([]byte("fragment-me."), 300)) // ~3.6 KiB
	if err := fa.Send(want); err != nil {
		t.Fatalf("Send: %v", err)
	}
	type res struct {
		p   []byte
		err error
	}
	ch := make(chan res, 1)
	go func() {
		p, err := fb.Recv()
		ch <- res{p, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatalf("Recv: %v", r.err)
		}
		if !bytes.Equal(r.p, want) {
			t.Fatalf("reassembly mismatch: %d bytes, want %d", len(r.p), len(want))
		}
	case <-time.After(sockTimeout):
		t.Fatal("reassembly timed out")
	}
	if fs := fb.FragStats(); fs.Reassembled != 1 || fs.FragsRx == 0 {
		t.Errorf("frag stats = %+v", fs)
	}
}

func TestTransportUDPPMTUDiscovery(t *testing.T) {
	la, lb := udpPair(t, UDPConfig{MTU: 512})
	fa := NewFragLink(la, FragConfig{WireMTU: 1400})
	fb := NewFragLink(lb, FragConfig{})

	// fb must pump to answer probes; fa pumps to absorb acks.
	stop := make(chan struct{})
	go func() {
		for {
			if _, err := fb.Recv(); err != nil {
				return
			}
		}
	}()
	go func() {
		for {
			if _, err := fa.Recv(); err != nil {
				return
			}
		}
	}()
	defer close(stop)

	// 1024/1400 exceed the socket's MTU and never leave; 256/512 survive
	// and are acked.
	fa.DiscoverPMTU([]int{256, 512, 1024, 1400})
	deadline := time.Now().Add(sockTimeout)
	for time.Now().Before(deadline) {
		if fa.FragStats().ProbeAcks >= 2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := fa.AdoptPMTU(); got != 512 {
		t.Fatalf("AdoptPMTU = %d, want 512", got)
	}
}
