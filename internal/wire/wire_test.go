package wire

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"antireplay/internal/netsim"
)

// testRecorder is a minimal wiretap recorder. (The real one lives in
// internal/adversary, which now imports wire for the campaign engine —
// an in-package test here cannot import it back.)
type testRecorder struct{ msgs [][]byte }

func (r *testRecorder) Tap() func([]byte) {
	return func(p []byte) { r.msgs = append(r.msgs, p) }
}
func (r *testRecorder) Len() int           { return len(r.msgs) }
func (r *testRecorder) Messages() [][]byte { return r.msgs }

func TestSimPairRoundTrip(t *testing.T) {
	e := netsim.NewEngine(1)
	a, b := NewSimPair(e, netsim.LinkConfig{Delay: time.Millisecond}, netsim.LinkConfig{Delay: time.Millisecond})

	if err := a.Send([]byte("hello")); err != nil {
		t.Fatalf("send: %v", err)
	}
	if _, err := b.Recv(); err != ErrNoDatagram {
		t.Fatalf("pre-engine Recv = %v, want ErrNoDatagram", err)
	}
	e.Run()
	p, err := b.Recv()
	if err != nil || string(p) != "hello" {
		t.Fatalf("Recv = %q, %v", p, err)
	}
	if err := b.Send([]byte("yo")); err != nil {
		t.Fatalf("reverse send: %v", err)
	}
	e.Run()
	p, err = a.Recv()
	if err != nil || string(p) != "yo" {
		t.Fatalf("reverse Recv = %q, %v", p, err)
	}
	st := a.Stats()
	if st.TxPackets != 1 || st.RxPackets != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSimLinkMTUDrop(t *testing.T) {
	e := netsim.NewEngine(1)
	a, b := NewSimPair(e, netsim.LinkConfig{MTU: 10}, netsim.LinkConfig{})

	if err := a.Send(make([]byte, 11)); err != ErrTooLarge {
		t.Fatalf("oversize Send = %v, want ErrTooLarge", err)
	}
	if err := a.Send(make([]byte, 10)); err != nil {
		t.Fatalf("at-MTU Send = %v", err)
	}
	e.Run()
	if _, err := b.Recv(); err != nil {
		t.Fatalf("at-MTU datagram not delivered: %v", err)
	}
	if _, err := b.Recv(); err != ErrNoDatagram {
		t.Fatalf("oversize datagram was delivered")
	}
	if got := a.Inner().Stats().Oversize; got != 1 {
		t.Fatalf("netsim Oversize = %d, want 1", got)
	}
	if got := a.Stats().TxDrops; got != 1 {
		t.Fatalf("TxDrops = %d, want 1", got)
	}
}

func TestSimLinkInlineDelivery(t *testing.T) {
	e := netsim.NewEngine(1)
	a, b := NewSimPair(e, netsim.LinkConfig{}, netsim.LinkConfig{})
	var got [][]byte
	b.OnRecv(func(p []byte) { got = append(got, p) })
	for i := 0; i < 3; i++ {
		if err := a.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	e.Run()
	if len(got) != 3 {
		t.Fatalf("inline deliveries = %d, want 3", len(got))
	}
	if _, err := b.Recv(); err != ErrNoDatagram {
		t.Fatalf("queue should be bypassed with a handler")
	}
}

func TestImpairLinkLossAndTap(t *testing.T) {
	e := netsim.NewEngine(1)
	a, b := NewSimPair(e, netsim.LinkConfig{}, netsim.LinkConfig{})
	imp := NewImpairLink(a, ImpairConfig{Seed: 42, LossProb: 0.5})

	rec := &testRecorder{}
	imp.Tap(rec.Tap())

	const n = 200
	for i := 0; i < n; i++ {
		if err := imp.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	e.Run()
	delivered := 0
	for {
		if _, err := b.Recv(); err != nil {
			break
		}
		delivered++
	}
	st := imp.ImpairStats()
	if rec.Len() != n {
		t.Fatalf("wiretap saw %d, want all %d (taps precede loss)", rec.Len(), n)
	}
	if delivered+int(st.Lost) != n {
		t.Fatalf("delivered %d + lost %d != %d", delivered, st.Lost, n)
	}
	if st.Lost == 0 || delivered == 0 {
		t.Fatalf("degenerate loss split: %+v", st)
	}

	// The adversary injects a recorded datagram: bypasses taps and loss.
	imp.Inject(rec.Messages()[0])
	e.Run()
	if _, err := b.Recv(); err != nil {
		t.Fatalf("injection not delivered: %v", err)
	}
	if rec.Len() != n {
		t.Fatalf("injection must bypass the wiretap")
	}
}

func TestImpairLinkReorderAndDup(t *testing.T) {
	e := netsim.NewEngine(1)
	a, b := NewSimPair(e, netsim.LinkConfig{}, netsim.LinkConfig{})
	imp := NewImpairLink(a, ImpairConfig{Seed: 7, ReorderProb: 0.3, DupProb: 0.2})

	const n = 100
	sent := make(map[string]int)
	for i := 0; i < n; i++ {
		p := []byte(fmt.Sprintf("m%03d", i))
		sent[string(p)]++
		if err := imp.Send(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := imp.Flush(); err != nil {
		t.Fatal(err)
	}
	e.Run()
	got := make(map[string]int)
	total := 0
	for {
		p, err := b.Recv()
		if err != nil {
			break
		}
		got[string(p)]++
		total++
	}
	st := imp.ImpairStats()
	if uint64(total) != uint64(n)+st.Duplicated {
		t.Fatalf("delivered %d, want %d + %d dups", total, n, st.Duplicated)
	}
	for k := range sent {
		if got[k] == 0 {
			t.Fatalf("message %q vanished (no loss configured)", k)
		}
	}
	if st.Reordered == 0 || st.Duplicated == 0 {
		t.Fatalf("degenerate impairment: %+v", st)
	}
}

func TestFragRoundTrip(t *testing.T) {
	e := netsim.NewEngine(1)
	a, b := NewSimPair(e, netsim.LinkConfig{MTU: 200}, netsim.LinkConfig{MTU: 200})
	fa := NewFragLink(a, FragConfig{Now: e.Now})
	fb := NewFragLink(b, FragConfig{Now: e.Now})

	small := bytes.Repeat([]byte("s"), 100)
	big := bytes.Repeat([]byte("B"), 1000)
	if err := fa.Send(small); err != nil {
		t.Fatal(err)
	}
	if err := fa.Send(big); err != nil {
		t.Fatal(err)
	}
	e.Run()
	p, err := fb.Recv()
	if err != nil || !bytes.Equal(p, small) {
		t.Fatalf("small: %v (len %d)", err, len(p))
	}
	p, err = fb.Recv()
	if err != nil || !bytes.Equal(p, big) {
		t.Fatalf("big: %v (len %d)", err, len(p))
	}
	fs := fa.FragStats()
	if fs.FragsTx < 5 {
		t.Fatalf("FragsTx = %d, want >= 5 for 1000B over 200B MTU", fs.FragsTx)
	}
	if got := fb.FragStats().Reassembled; got != 1 {
		t.Fatalf("Reassembled = %d, want 1", got)
	}
}

func TestFragReorderedFragmentsReassemble(t *testing.T) {
	e := netsim.NewEngine(3)
	a, b := NewSimPair(e,
		netsim.LinkConfig{MTU: 256, ReorderProb: 0.5, ReorderDelay: 5 * time.Millisecond, Delay: time.Millisecond},
		netsim.LinkConfig{MTU: 256})
	fa := NewFragLink(a, FragConfig{Now: e.Now})
	fb := NewFragLink(b, FragConfig{Now: e.Now})

	const n = 20
	for i := 0; i < n; i++ {
		if err := fa.Send(bytes.Repeat([]byte{byte(i)}, 900)); err != nil {
			t.Fatal(err)
		}
	}
	e.Run()
	got := 0
	for {
		p, err := fb.Recv()
		if err != nil {
			break
		}
		if len(p) != 900 {
			t.Fatalf("reassembled %d bytes, want 900", len(p))
		}
		got++
	}
	if got != n {
		t.Fatalf("reassembled %d datagrams, want %d (drops: %+v)", got, n, fb.FragStats())
	}
}

func TestFragDuplicatedFragmentIdempotent(t *testing.T) {
	e := netsim.NewEngine(5)
	a, b := NewSimPair(e,
		netsim.LinkConfig{MTU: 256, DupProb: 0.5},
		netsim.LinkConfig{MTU: 256})
	fa := NewFragLink(a, FragConfig{Now: e.Now})
	fb := NewFragLink(b, FragConfig{Now: e.Now})

	for i := 0; i < 10; i++ {
		if err := fa.Send(bytes.Repeat([]byte{byte(i)}, 700)); err != nil {
			t.Fatal(err)
		}
	}
	e.Run()
	got := 0
	for {
		if _, err := fb.Recv(); err != nil {
			break
		}
		got++
	}
	fs := fb.FragStats()
	if got != 10 {
		t.Fatalf("delivered %d, want 10: dup fragments must be idempotent, not hostile (%+v)", got, fs)
	}
	if fs.HostileDrops != 0 {
		t.Fatalf("HostileDrops = %d on benign duplication", fs.HostileDrops)
	}
}

// forge delivers raw fragment frames to fb through the engine.
func forge(t *testing.T, e *netsim.Engine, a *SimLink, frames ...[]byte) {
	t.Helper()
	for _, f := range frames {
		a.Inject(f)
	}
	e.Run()
}

func TestFragHostileRejection(t *testing.T) {
	e := netsim.NewEngine(1)
	a, b := NewSimPair(e, netsim.LinkConfig{MTU: 256}, netsim.LinkConfig{MTU: 256})
	fb := NewFragLink(b, FragConfig{Now: e.Now})

	drain := func() int {
		n := 0
		for {
			if _, err := fb.Recv(); err != nil {
				return n
			}
			n++
		}
	}

	// Overlapping fragments with different content (RFC 5722): the whole
	// datagram is condemned, even when the final byte count adds up.
	forge(t, e, a,
		EncodeFrame(1, FragFlagFrag, 100, 0, 256, bytes.Repeat([]byte("A"), 128)),
		EncodeFrame(1, FragFlagFrag, 100, 64, 256, bytes.Repeat([]byte("X"), 128)),
		EncodeFrame(1, FragFlagFrag, 100, 128, 256, bytes.Repeat([]byte("A"), 128)),
	)
	if n := drain(); n != 0 {
		t.Fatalf("overlap: %d datagrams delivered, want 0", n)
	}
	if fs := fb.FragStats(); fs.HostileDrops != 1 {
		t.Fatalf("overlap: HostileDrops = %d, want 1", fs.HostileDrops)
	}

	// Tiny non-final fragment: rejected before it pins state.
	forge(t, e, a,
		EncodeFrame(1, FragFlagFrag, 101, 0, 1024, bytes.Repeat([]byte("t"), 8)),
	)
	if n := drain(); n != 0 {
		t.Fatalf("tiny: %d delivered", n)
	}
	if fs := fb.FragStats(); fs.HostileDrops != 2 {
		t.Fatalf("tiny: HostileDrops = %d, want 2", fs.HostileDrops)
	}

	// Inconsistent totals across one id.
	forge(t, e, a,
		EncodeFrame(1, FragFlagFrag, 102, 0, 512, bytes.Repeat([]byte("c"), 128)),
		EncodeFrame(1, FragFlagFrag, 102, 128, 600, bytes.Repeat([]byte("c"), 128)),
	)
	if n := drain(); n != 0 {
		t.Fatalf("inconsistent: %d delivered", n)
	}
	if fs := fb.FragStats(); fs.HostileDrops != 3 {
		t.Fatalf("inconsistent: HostileDrops = %d, want 3", fs.HostileDrops)
	}

	// Out-of-bounds offset.
	forge(t, e, a,
		EncodeFrame(1, FragFlagFrag, 103, 60000, 1024, bytes.Repeat([]byte("o"), 128)),
	)
	if n := drain(); n != 0 {
		t.Fatalf("oob: %d delivered", n)
	}
	if fs := fb.FragStats(); fs.HostileDrops != 4 {
		t.Fatalf("oob: HostileDrops = %d, want 4", fs.HostileDrops)
	}

	// A poisoned id stays dead: later "completing" fragments of the
	// overlap victim deliver nothing.
	forge(t, e, a,
		EncodeFrame(1, FragFlagFrag, 100, 128, 256, bytes.Repeat([]byte("A"), 128)),
	)
	if n := drain(); n != 0 {
		t.Fatalf("poisoned id delivered %d datagrams", n)
	}

	// The atomic fragment (lone fragment covering its whole total) is
	// legal and delivered, but counted.
	forge(t, e, a,
		EncodeFrame(1, FragFlagFrag, 104, 0, 128, bytes.Repeat([]byte("a"), 128)),
	)
	if n := drain(); n != 1 {
		t.Fatalf("atomic fragment: %d delivered, want 1", n)
	}
	if fs := fb.FragStats(); fs.AtomicFrags != 1 {
		t.Fatalf("AtomicFrags = %d, want 1", fs.AtomicFrags)
	}

	// Garbage that fails the frame magic.
	forge(t, e, a, []byte{0, 0, 0, 9, 0xAB, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	if n := drain(); n != 0 {
		t.Fatalf("garbage: %d delivered", n)
	}
	if fs := fb.FragStats(); fs.BadFrames == 0 {
		t.Fatalf("BadFrames = 0 after garbage frame")
	}
}

func TestFragReassemblyTimeoutAndMemoryBound(t *testing.T) {
	e := netsim.NewEngine(1)
	a, b := NewSimPair(e, netsim.LinkConfig{MTU: 256}, netsim.LinkConfig{MTU: 256})
	fb := NewFragLink(b, FragConfig{
		Now:                e.Now,
		ReassemblyTimeout:  100 * time.Millisecond,
		MaxReassemblyBytes: 4096,
		MaxPending:         8,
	})

	// Flood with incomplete reassemblies far beyond the memory bound:
	// 64 datagrams x 1024 bytes claimed, one 128-byte fragment each.
	for i := 0; i < 64; i++ {
		a.Inject(EncodeFrame(1, FragFlagFrag, uint32(1000+i), 0, 1024, bytes.Repeat([]byte("f"), 128)))
	}
	e.Run()
	if _, err := fb.Recv(); err != ErrNoDatagram {
		t.Fatalf("incomplete datagrams delivered")
	}
	fs := fb.FragStats()
	if fs.PendingBytes > 4096 {
		t.Fatalf("PendingBytes = %d exceeds the 4096 bound", fs.PendingBytes)
	}
	if fs.EvictDrops == 0 {
		t.Fatalf("flood should have evicted: %+v", fs)
	}

	// Time passes; the stragglers expire.
	e.RunFor(time.Second)
	a.Inject(EncodeFrame(1, 0, 9999, 0, 1, []byte("x"))) // any frame triggers the sweep
	e.Run()
	drainOne(t, fb)
	fs = fb.FragStats()
	if fs.PendingBytes != 0 {
		t.Fatalf("PendingBytes = %d after timeout sweep, want 0", fs.PendingBytes)
	}
	if fs.TimeoutDrops == 0 {
		t.Fatalf("TimeoutDrops = 0 after expiry")
	}
}

func drainOne(t *testing.T, l Link) {
	t.Helper()
	if _, err := l.Recv(); err != nil {
		t.Fatalf("expected one datagram: %v", err)
	}
}

func TestFragPMTUDiscovery(t *testing.T) {
	e := netsim.NewEngine(1)
	// The path carries at most 512 bytes per frame.
	a, b := NewSimPair(e, netsim.LinkConfig{MTU: 512}, netsim.LinkConfig{MTU: 512})
	fa := NewFragLink(a, FragConfig{WireMTU: 1400, Now: e.Now}) // wrong prior
	fb := NewFragLink(b, FragConfig{Now: e.Now})

	// Without discovery, a 1000-byte datagram goes out as one 1013-byte
	// frame and the path drops it.
	if err := fa.Send(bytes.Repeat([]byte("x"), 1000)); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if _, err := fb.Recv(); err == nil {
		t.Fatalf("frame above path MTU should have been dropped")
	}

	fa.DiscoverPMTU([]int{256, 512, 1024, 1400})
	// Probes above 512 die on the path. Pump each side: fb processes the
	// surviving probes (emitting acks), the engine carries the acks back,
	// fa folds them in.
	e.Run()
	fb.Recv() //nolint:errcheck // drains control frames; ErrNoDatagram expected
	e.Run()
	fa.Recv() //nolint:errcheck
	if got := fa.AdoptPMTU(); got != 512 {
		t.Fatalf("AdoptPMTU = %d, want 512", got)
	}

	// Now the same datagram fragments to fit and arrives.
	if err := fa.Send(bytes.Repeat([]byte("y"), 1000)); err != nil {
		t.Fatal(err)
	}
	e.Run()
	p, err := fb.Recv()
	if err != nil || len(p) != 1000 {
		t.Fatalf("post-discovery delivery: %v (len %d)", err, len(p))
	}
	if fs := fb.FragStats(); fs.ProbesRx == 0 {
		t.Fatalf("no probes observed at the receiver")
	}
	if fs := fa.FragStats(); fs.ProbeAcks == 0 {
		t.Fatalf("no probe acks observed at the prober")
	}
}

func TestSeededDeterminism(t *testing.T) {
	// Same seed ⇒ identical LinkStats and identical impairment decisions:
	// the reproducibility contract the fragment/loss experiments rely on.
	run := func(seed int64) (netsim.LinkStats, ImpairStats, FragStats, int) {
		e := netsim.NewEngine(seed)
		a, b := NewSimPair(e,
			netsim.LinkConfig{MTU: 300, LossProb: 0.2, DupProb: 0.1,
				ReorderProb: 0.2, ReorderDelay: 3 * time.Millisecond, Delay: time.Millisecond},
			netsim.LinkConfig{MTU: 300})
		imp := NewImpairLink(a, ImpairConfig{Seed: seed + 1, LossProb: 0.1})
		fa := NewFragLink(imp, FragConfig{Now: e.Now})
		fb := NewFragLink(b, FragConfig{Now: e.Now})
		for i := 0; i < 300; i++ {
			fa.Send(bytes.Repeat([]byte{byte(i)}, 50+(i*37)%900)) //nolint:errcheck // loss is the point
		}
		e.Run()
		delivered := 0
		for {
			if _, err := fb.Recv(); err != nil {
				break
			}
			delivered++
		}
		return a.Inner().Stats(), imp.ImpairStats(), fb.FragStats(), delivered
	}

	l1, i1, f1, d1 := run(11)
	l2, i2, f2, d2 := run(11)
	if l1 != l2 {
		t.Fatalf("same seed, different LinkStats:\n%+v\n%+v", l1, l2)
	}
	if i1 != i2 {
		t.Fatalf("same seed, different ImpairStats:\n%+v\n%+v", i1, i2)
	}
	if f1 != f2 {
		t.Fatalf("same seed, different FragStats:\n%+v\n%+v", f1, f2)
	}
	if d1 != d2 {
		t.Fatalf("same seed, different deliveries: %d vs %d", d1, d2)
	}

	l3, _, _, _ := run(12)
	if l1 == l3 {
		t.Fatalf("different seeds produced identical LinkStats (suspicious): %+v", l1)
	}
}
