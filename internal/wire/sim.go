package wire

import (
	"sync"

	"antireplay/internal/netsim"
)

// SimLink adapts a pair of unidirectional netsim links into the
// bidirectional Link contract. Deliveries are driven by the simulation
// engine: they land in a bounded queue for Recv (which never blocks —
// ErrNoDatagram means "run the engine") or, once OnRecv is registered,
// go inline to the handler in engine context, which is what the
// deterministic experiments want.
//
// SimLink exposes the adversary positions of the underlying netsim link:
// Tap wiretaps everything this endpoint sends (before impairment) and
// Inject writes into the channel toward the peer, bypassing taps and
// loss.
type SimLink struct {
	out *netsim.Link[[]byte] // the channel toward the peer
	mtu int

	mu      sync.Mutex
	queue   [][]byte
	handler Handler
	closed  bool
	stats   Stats
}

// simQueueBound caps the Recv queue; beyond it deliveries are dropped
// and counted, as a socket's receive buffer would.
const simQueueBound = 4096

// NewSimPair builds two cross-connected SimLinks over engine: ab is the
// impairment model of the a→b direction, ba of b→a. The netsim MTU field
// of each direction bounds that direction's datagram size, so simulated
// and real links agree on when fragmentation must trigger.
func NewSimPair(engine *netsim.Engine, ab, ba netsim.LinkConfig) (a, b *SimLink) {
	a = &SimLink{mtu: ab.MTU}
	b = &SimLink{mtu: ba.MTU}
	a.out = netsim.NewLink(engine, ab, b.deliver)
	b.out = netsim.NewLink(engine, ba, a.deliver)
	return a, b
}

func (l *SimLink) deliver(p []byte) {
	l.mu.Lock()
	if l.closed {
		l.stats.RxDrops++
		l.mu.Unlock()
		return
	}
	l.stats.RxPackets++
	l.stats.RxBytes += uint64(len(p))
	if h := l.handler; h != nil {
		l.mu.Unlock()
		h(p)
		return
	}
	if len(l.queue) >= simQueueBound {
		l.stats.RxPackets--
		l.stats.RxBytes -= uint64(len(p))
		l.stats.RxDrops++
		l.mu.Unlock()
		return
	}
	l.queue = append(l.queue, p)
	l.mu.Unlock()
}

// Send transmits p toward the peer through the simulated impairments.
// Oversize datagrams (beyond the direction's MTU) are handed to the link
// anyway — the netsim layer drops and counts them, keeping the wiretap's
// view honest — and reported here as ErrTooLarge.
func (l *SimLink) Send(p []byte) error {
	l.mu.Lock()
	if l.closed {
		l.stats.TxDrops++
		l.mu.Unlock()
		return ErrClosed
	}
	oversize := l.mtu > 0 && len(p) > l.mtu
	if oversize {
		l.stats.TxDrops++
	} else {
		l.stats.TxPackets++
		l.stats.TxBytes += uint64(len(p))
	}
	l.mu.Unlock()
	l.out.Send(p)
	if oversize {
		return ErrTooLarge
	}
	return nil
}

// Recv returns the next engine-delivered datagram, or ErrNoDatagram when
// the queue is empty (run the engine), or ErrClosed.
func (l *SimLink) Recv() ([]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.queue) == 0 {
		if l.closed {
			return nil, ErrClosed
		}
		return nil, ErrNoDatagram
	}
	p := l.queue[0]
	l.queue = l.queue[1:]
	return p, nil
}

// OnRecv routes subsequent deliveries inline to h (engine context),
// bypassing the Recv queue. Datagrams already queued stay for Recv.
func (l *SimLink) OnRecv(h Handler) {
	l.mu.Lock()
	l.handler = h
	l.mu.Unlock()
}

// Close marks the link closed; further Sends fail and deliveries drop.
func (l *SimLink) Close() error {
	l.mu.Lock()
	l.closed = true
	l.queue = nil
	l.mu.Unlock()
	return nil
}

// Stats returns a snapshot of the endpoint counters.
func (l *SimLink) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// MTU returns this direction's configured MTU (0 = unlimited).
func (l *SimLink) MTU() int { return l.mtu }

// Tap registers fn at the wiretap position of the channel toward the
// peer: it observes every datagram handed to Send, including ones the
// network then loses.
func (l *SimLink) Tap(fn func(p []byte)) { l.out.Tap(fn) }

// Inject writes p into the channel toward the peer, bypassing taps,
// loss, and the MTU check — the adversary's transmitter.
func (l *SimLink) Inject(p []byte) { l.out.Inject(p) }

// Inner exposes the underlying netsim link toward the peer (its stats
// carry the loss/duplication/reorder/oversize accounting).
func (l *SimLink) Inner() *netsim.Link[[]byte] { return l.out }

var (
	_ Link           = (*SimLink)(nil)
	_ InlineReceiver = (*SimLink)(nil)
	_ Tapper         = (*SimLink)(nil)
	_ Injector       = (*SimLink)(nil)
)
