package wire

import "antireplay/internal/telemetry"

// The wire layer's snapshot structs implement telemetry.Collector, so a
// link's numbers register under a prefix instead of being yet another
// struct readable only from test code. The snapshots are values — register
// a live link with a CollectorFunc that re-snapshots at scrape time:
//
//	reg.RegisterCollector("apn_wire", telemetry.CollectorFunc(
//		func(emit telemetry.Emit) { link.Stats().CollectTelemetry(emit) }))

var (
	_ telemetry.Collector = Stats{}
	_ telemetry.Collector = GateStats{}
	_ telemetry.Collector = ImpairStats{}
	_ telemetry.Collector = FragStats{}
)

// CollectTelemetry emits the link's transfer and drop counters.
func (s Stats) CollectTelemetry(emit telemetry.Emit) {
	emit("tx_packets_total", telemetry.KindCounter, float64(s.TxPackets))
	emit("tx_bytes_total", telemetry.KindCounter, float64(s.TxBytes))
	emit("rx_packets_total", telemetry.KindCounter, float64(s.RxPackets))
	emit("rx_bytes_total", telemetry.KindCounter, float64(s.RxBytes))
	emit("tx_drops_total", telemetry.KindCounter, float64(s.TxDrops))
	emit("rx_drops_total", telemetry.KindCounter, float64(s.RxDrops))
	emit("keepalives_total", telemetry.KindCounter, float64(s.Keepalives))
}

// CollectTelemetry emits the replay-gate's admission counters.
func (s GateStats) CollectTelemetry(emit telemetry.Emit) {
	emit("passed_total", telemetry.KindCounter, float64(s.Passed))
	emit("dropped_total", telemetry.KindCounter, float64(s.Dropped))
	emit("held_total", telemetry.KindCounter, float64(s.Held))
	emit("released_total", telemetry.KindCounter, float64(s.Released))
	emit("held_dropped_total", telemetry.KindCounter, float64(s.HeldDropped))
	emit("injected_total", telemetry.KindCounter, float64(s.Injected))
}

// CollectTelemetry emits the impairment middleware's interference counts.
func (s ImpairStats) CollectTelemetry(emit telemetry.Emit) {
	emit("lost_total", telemetry.KindCounter, float64(s.Lost))
	emit("duplicated_total", telemetry.KindCounter, float64(s.Duplicated))
	emit("reordered_total", telemetry.KindCounter, float64(s.Reordered))
	emit("injected_total", telemetry.KindCounter, float64(s.Injected))
}

// CollectTelemetry emits the fragmentation layer's work and its headline
// security counter (hostile_drops).
func (s FragStats) CollectTelemetry(emit telemetry.Emit) {
	emit("frags_tx_total", telemetry.KindCounter, float64(s.FragsTx))
	emit("frags_rx_total", telemetry.KindCounter, float64(s.FragsRx))
	emit("reassembled_total", telemetry.KindCounter, float64(s.Reassembled))
	emit("atomic_frags_total", telemetry.KindCounter, float64(s.AtomicFrags))
	emit("hostile_drops_total", telemetry.KindCounter, float64(s.HostileDrops))
	emit("timeout_drops_total", telemetry.KindCounter, float64(s.TimeoutDrops))
	emit("evict_drops_total", telemetry.KindCounter, float64(s.EvictDrops))
	emit("bad_frames_total", telemetry.KindCounter, float64(s.BadFrames))
	emit("probes_tx_total", telemetry.KindCounter, float64(s.ProbesTx))
	emit("probes_rx_total", telemetry.KindCounter, float64(s.ProbesRx))
	emit("probe_acks_total", telemetry.KindCounter, float64(s.ProbeAcks))
	emit("reassembly_pending_bytes", telemetry.KindGauge, float64(s.PendingBytes))
}

// LinkCollector adapts a live Link: each scrape re-snapshots Stats, and
// when the link is a GateLink, ImpairLink, or FragLink its layer stats
// ride along under the same prefix.
func LinkCollector(l Link) telemetry.Collector {
	return telemetry.CollectorFunc(func(emit telemetry.Emit) {
		l.Stats().CollectTelemetry(emit)
		if g, ok := l.(*GateLink); ok {
			g.GateStats().CollectTelemetry(emit)
		}
		if im, ok := l.(*ImpairLink); ok {
			im.ImpairStats().CollectTelemetry(emit)
		}
		if f, ok := l.(*FragLink); ok {
			f.FragStats().CollectTelemetry(emit)
		}
	})
}
