package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Fragment framing. Every datagram through a FragLink travels as one or
// more frames with a fixed 13-byte header:
//
//	offset 0  4  demux SPI (copied from the inner ESP datagram's leading
//	             4 bytes; probeSPI for PMTU probes/acks, which must stay
//	             nonzero so UDP endpoints do not mistake them for the
//	             non-ESP control marker) — kept first so a UDP endpoint's
//	             per-peer SPI demultiplexer routes fragments exactly like
//	             whole packets
//	offset 4  1  flags: high nibble 0x5 (version magic), low bits below
//	offset 5  4  datagram id (per-link counter)
//	offset 9  2  fragment byte offset
//	offset 11 2  total datagram length
//	offset 13 n  payload
//
// A frame without flagFrag carries the whole datagram. PMTU probes and
// their acks are control frames riding the same framing, so discovery
// exercises the real path.
const (
	fragHdrLen = 13

	flagMagic    = 0x50
	flagMagicMsk = 0xF0
	flagFrag     = 0x01
	flagProbe    = 0x02
	flagProbeAck = 0x04

	// probeSPI is the demux SPI carried by PMTU probes and their acks. It
	// is deliberately nonzero (the all-zero word is the UDP non-ESP
	// marker) and outside any real SA's range by convention.
	probeSPI = 0xFFFF_FFFF
)

// Fragmentation limits and defaults.
const (
	// MaxDatagram is the largest datagram the fragment framing can carry
	// (the total field is 16 bits, like UDP's length).
	MaxDatagram = 1<<16 - 1

	defaultMinFragPayload    = 64
	defaultMaxReassemblyMem  = 1 << 20
	defaultMaxPending        = 256
	defaultReassemblyTimeout = 3 * time.Second
)

// EncodeFrame builds one raw fragment-layer frame. It is exported for
// the experiment harness's adversary, which forges hostile fragment
// sequences (overlapping, tiny, inconsistent) and injects them beneath
// the FragLink; well-behaved traffic never needs it.
func EncodeFrame(spi uint32, flags byte, id uint32, off, total int, payload []byte) []byte {
	f := make([]byte, fragHdrLen+len(payload))
	binary.BigEndian.PutUint32(f[0:4], spi)
	f[4] = flagMagic | flags
	binary.BigEndian.PutUint32(f[5:9], id)
	binary.BigEndian.PutUint16(f[9:11], uint16(off))
	binary.BigEndian.PutUint16(f[11:13], uint16(total))
	copy(f[fragHdrLen:], payload)
	return f
}

// FragFlags exports the frame flag bits for forged-frame construction.
const (
	FragFlagFrag     = flagFrag
	FragFlagProbe    = flagProbe
	FragFlagProbeAck = flagProbeAck
)

// FragConfig parameterizes a FragLink.
type FragConfig struct {
	// WireMTU is the largest frame the underlying link carries; datagrams
	// bigger than WireMTU-header are fragmented. 0 adopts the inner
	// link's MTU; if that is also 0 the link never fragments (but still
	// frames, so both ends must wrap). PMTU discovery replaces this value
	// with the probed path MTU.
	WireMTU int
	// MinFragPayload rejects non-final fragments smaller than this (the
	// tiny-fragment attack: splinters that inflate reassembly state and
	// sneak headers past filters). 0 means 64.
	MinFragPayload int
	// MaxReassemblyBytes bounds the total buffered bytes across all
	// pending reassemblies; beyond it the oldest pending datagram is
	// evicted. 0 means 1 MiB.
	MaxReassemblyBytes int
	// MaxPending bounds concurrent reassemblies; 0 means 256.
	MaxPending int
	// ReassemblyTimeout evicts incomplete datagrams (fragments held
	// hostage never pin memory). 0 means 3s.
	ReassemblyTimeout time.Duration
	// Now supplies the reassembly clock; nil uses wall time. Simulations
	// pass the engine's Now for deterministic timeouts.
	Now func() time.Duration
}

// FragStats counts the fragmentation layer's work. HostileDrops is the
// headline security counter: datagrams rejected for overlapping,
// undersized, or inconsistent fragments per the IPv6 fragment-handling
// catalogue.
type FragStats struct {
	// FragsTx and FragsRx count fragment frames (not whole-datagram
	// frames) sent and received.
	FragsTx, FragsRx uint64
	// Reassembled counts multi-fragment datagrams delivered.
	Reassembled uint64
	// AtomicFrags counts single-fragment datagrams (offset 0 covering the
	// whole total): legal, delivered, but worth watching — RFC 6946
	// processes them independently precisely because attackers send them.
	AtomicFrags uint64
	// HostileDrops counts datagrams rejected for overlap, tiny non-final
	// fragments, inconsistent totals, or out-of-bounds offsets.
	HostileDrops uint64
	// TimeoutDrops counts reassemblies evicted by ReassemblyTimeout.
	TimeoutDrops uint64
	// EvictDrops counts reassemblies evicted by the memory/pending bound.
	EvictDrops uint64
	// BadFrames counts frames that failed header parsing.
	BadFrames uint64
	// ProbesTx, ProbesRx, ProbeAcks count PMTU discovery traffic.
	ProbesTx, ProbesRx, ProbeAcks uint64
	// PendingBytes is the current buffered reassembly memory.
	PendingBytes int
}

// pending is one in-progress reassembly.
type pending struct {
	id       uint32
	total    int
	buf      []byte
	ranges   [][2]int // received [off,end) byte ranges, sorted
	got      int
	born     time.Duration
	poisoned bool // hostile fragments seen: drop everything with this id
}

// FragLink layers explicit fragmentation/reassembly and probe-based path
// MTU discovery over any Link. Both endpoints must wrap the same way.
type FragLink struct {
	inner Link
	cfg   FragConfig

	mu       sync.Mutex
	wireMTU  int
	nextID   uint32
	entries  map[uint32]*pending
	order    []uint32 // insertion order for eviction
	pendMem  int
	maxAcked int
	stats    Stats
	fstats   FragStats
	handler  Handler
}

// NewFragLink wraps inner. See FragConfig for the defaulting rules.
func NewFragLink(inner Link, cfg FragConfig) *FragLink {
	if cfg.MinFragPayload == 0 {
		cfg.MinFragPayload = defaultMinFragPayload
	}
	if cfg.MaxReassemblyBytes == 0 {
		cfg.MaxReassemblyBytes = defaultMaxReassemblyMem
	}
	if cfg.MaxPending == 0 {
		cfg.MaxPending = defaultMaxPending
	}
	if cfg.ReassemblyTimeout == 0 {
		cfg.ReassemblyTimeout = defaultReassemblyTimeout
	}
	if cfg.Now == nil {
		start := time.Now()
		cfg.Now = func() time.Duration { return time.Since(start) }
	}
	wmtu := cfg.WireMTU
	if wmtu == 0 {
		wmtu = inner.MTU()
	}
	return &FragLink{inner: inner, cfg: cfg, wireMTU: wmtu,
		entries: make(map[uint32]*pending)}
}

// Send fragments p as needed and transmits the frames.
func (l *FragLink) Send(p []byte) error {
	spi := demuxSPI(p)
	l.mu.Lock()
	wmtu := l.wireMTU
	id := l.nextID
	l.nextID++
	l.mu.Unlock()

	if len(p) > MaxDatagram {
		l.countTx(0, 0, true)
		return fmt.Errorf("%w: %d > %d", ErrTooLarge, len(p), MaxDatagram)
	}
	if wmtu == 0 || len(p)+fragHdrLen <= wmtu {
		// One whole-datagram frame. An inner ErrTooLarge means the frame
		// exceeded the *path's* capability while our wire-MTU belief said
		// it fit: on a real network that frame dies at the constrained
		// hop, invisibly to the sender — model it as a silent path drop
		// (this is exactly the blackhole PMTU discovery repairs).
		if err := l.inner.Send(EncodeFrame(spi, 0, id, 0, len(p), p)); err != nil {
			l.countTx(0, 0, true)
			if errors.Is(err, ErrTooLarge) {
				return nil
			}
			return err
		}
		l.countTx(len(p), 0, false)
		return nil
	}
	chunk := wmtu - fragHdrLen
	if chunk <= 0 {
		l.countTx(0, 0, true)
		return fmt.Errorf("%w: wire MTU %d below fragment header", ErrTooLarge, wmtu)
	}
	frags, dropped := 0, false
	for off := 0; off < len(p); off += chunk {
		end := off + chunk
		if end > len(p) {
			end = len(p)
		}
		if err := l.inner.Send(EncodeFrame(spi, flagFrag, id, off, len(p), p[off:end])); err != nil {
			if errors.Is(err, ErrTooLarge) {
				dropped = true // lost at the constrained hop; keep going
				continue
			}
			l.countTx(0, frags, true)
			return err
		}
		frags++
	}
	l.countTx(len(p), frags, dropped)
	return nil
}

func (l *FragLink) countTx(bytes, frags int, drop bool) {
	l.mu.Lock()
	if drop {
		l.stats.TxDrops++
	} else {
		l.stats.TxPackets++
		l.stats.TxBytes += uint64(bytes)
	}
	l.fstats.FragsTx += uint64(frags)
	l.mu.Unlock()
}

// Recv pulls frames from the inner link until a whole datagram is
// available, handling control frames and partial fragments internally.
// Inner ErrNoDatagram (simulated links) passes through.
func (l *FragLink) Recv() ([]byte, error) {
	for {
		f, err := l.inner.Recv()
		if err != nil {
			return nil, err
		}
		if p, ok := l.handleFrame(f); ok {
			return p, nil
		}
	}
}

// OnRecv delivers reassembled datagrams inline when the inner link
// supports inline delivery (simulated links). Until it is called, frames
// queue in the inner link for Recv.
func (l *FragLink) OnRecv(h Handler) {
	l.mu.Lock()
	l.handler = h
	l.mu.Unlock()
	if ir, ok := l.inner.(InlineReceiver); ok {
		ir.OnRecv(func(f []byte) {
			if p, ok := l.handleFrame(f); ok {
				l.mu.Lock()
				cur := l.handler
				l.mu.Unlock()
				if cur != nil {
					cur(p)
				}
			}
		})
	}
}

// handleFrame processes one inbound frame; ok reports a complete
// datagram ready for delivery.
func (l *FragLink) handleFrame(f []byte) (p []byte, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.expireLocked()

	if len(f) < fragHdrLen || f[4]&flagMagicMsk != flagMagic {
		l.fstats.BadFrames++
		l.stats.RxDrops++
		return nil, false
	}
	flags := f[4] &^ flagMagicMsk
	id := binary.BigEndian.Uint32(f[5:9])
	off := int(binary.BigEndian.Uint16(f[9:11]))
	total := int(binary.BigEndian.Uint16(f[11:13]))
	payload := f[fragHdrLen:]
	spi := binary.BigEndian.Uint32(f[0:4])

	switch {
	case flags&flagProbe != 0:
		l.fstats.ProbesRx++
		// Acknowledge with the size we actually received; the prober
		// learns which candidate sizes survive the path.
		ack := EncodeFrame(spi, flagProbeAck, id, 0, len(f), nil)
		inner := l.inner
		l.mu.Unlock()
		inner.Send(ack) //nolint:errcheck // probe acks are best-effort
		l.mu.Lock()
		return nil, false
	case flags&flagProbeAck != 0:
		l.fstats.ProbeAcks++
		if total > l.maxAcked {
			l.maxAcked = total
		}
		return nil, false
	case flags&flagFrag == 0:
		// Whole datagram in one frame.
		if total != len(payload) {
			l.fstats.BadFrames++
			l.stats.RxDrops++
			return nil, false
		}
		l.stats.RxPackets++
		l.stats.RxBytes += uint64(len(payload))
		return payload, true
	}

	// Fragment path.
	l.fstats.FragsRx++
	if total > MaxDatagram || off+len(payload) > total || len(payload) == 0 {
		l.fstats.HostileDrops++
		l.poisonLocked(id)
		return nil, false
	}
	if off == 0 && len(payload) == total {
		// The atomic fragment: a lone fragment claiming the whole
		// datagram. Legal (RFC 6946: process independently), delivered.
		l.fstats.AtomicFrags++
		l.stats.RxPackets++
		l.stats.RxBytes += uint64(total)
		return payload, true
	}
	final := off+len(payload) == total
	if !final && len(payload) < l.cfg.MinFragPayload {
		// Tiny-fragment attack: non-final splinter below the floor.
		l.fstats.HostileDrops++
		l.poisonLocked(id)
		return nil, false
	}

	e := l.entries[id]
	if e == nil {
		l.evictForLocked(total)
		e = &pending{id: id, total: total, buf: make([]byte, total),
			born: l.cfg.Now()}
		l.entries[id] = e
		l.order = append(l.order, id)
		l.pendMem += total
		l.fstats.PendingBytes = l.pendMem
	}
	if e.poisoned {
		return nil, false
	}
	if e.total != total {
		// Inconsistent totals across fragments of one id.
		l.fstats.HostileDrops++
		l.poisonLocked(id)
		return nil, false
	}
	end := off + len(payload)
	for _, r := range e.ranges {
		if off >= r[1] || r[0] >= end {
			continue
		}
		if off == r[0] && end == r[1] && string(e.buf[off:end]) == string(payload) {
			// Byte-identical retransmission of a fragment already held
			// (the link's duplication, not an attack): idempotent.
			return nil, false
		}
		// Overlapping fragment: the classic reassembly ambiguity attack
		// (RFC 5722 semantics). The whole datagram is condemned, not
		// just the frame.
		l.fstats.HostileDrops++
		l.poisonLocked(id)
		return nil, false
	}
	copy(e.buf[off:end], payload)
	e.ranges = insertRange(e.ranges, [2]int{off, end})
	e.got += len(payload)
	if e.got < e.total {
		return nil, false
	}
	l.dropLocked(id)
	l.fstats.Reassembled++
	l.stats.RxPackets++
	l.stats.RxBytes += uint64(e.total)
	return e.buf, true
}

// insertRange keeps ranges sorted by start.
func insertRange(rs [][2]int, r [2]int) [][2]int {
	i := len(rs)
	for j, x := range rs {
		if r[0] < x[0] {
			i = j
			break
		}
	}
	rs = append(rs, [2]int{})
	copy(rs[i+1:], rs[i:])
	rs[i] = r
	return rs
}

// poisonLocked condemns id: its buffered bytes are released immediately
// and later fragments with the same id are ignored until timeout.
func (l *FragLink) poisonLocked(id uint32) {
	e := l.entries[id]
	if e == nil {
		e = &pending{id: id, born: l.cfg.Now(), poisoned: true}
		l.entries[id] = e
		l.order = append(l.order, id)
		return
	}
	if !e.poisoned {
		l.pendMem -= e.total
		l.fstats.PendingBytes = l.pendMem
		e.buf, e.ranges, e.total = nil, nil, 0
		e.poisoned = true
	}
}

// dropLocked removes id from the pending set, releasing its memory.
func (l *FragLink) dropLocked(id uint32) {
	e := l.entries[id]
	if e == nil {
		return
	}
	if !e.poisoned {
		l.pendMem -= e.total
		l.fstats.PendingBytes = l.pendMem
	}
	delete(l.entries, id)
	for i, x := range l.order {
		if x == id {
			l.order = append(l.order[:i], l.order[i+1:]...)
			break
		}
	}
}

// expireLocked evicts reassemblies past the timeout.
func (l *FragLink) expireLocked() {
	now := l.cfg.Now()
	for len(l.order) > 0 {
		e := l.entries[l.order[0]]
		if e == nil {
			l.order = l.order[1:]
			continue
		}
		if now-e.born < l.cfg.ReassemblyTimeout {
			break
		}
		if !e.poisoned {
			l.fstats.TimeoutDrops++
		}
		l.dropLocked(e.id)
	}
}

// evictForLocked makes room for a new reassembly of `need` bytes under
// the memory and pending-count bounds by evicting oldest entries.
func (l *FragLink) evictForLocked(need int) {
	for len(l.order) > 0 &&
		(l.pendMem+need > l.cfg.MaxReassemblyBytes || len(l.entries) >= l.cfg.MaxPending) {
		id := l.order[0]
		if e := l.entries[id]; e != nil && !e.poisoned {
			l.fstats.EvictDrops++
		}
		l.dropLocked(id)
	}
}

// SendProbe transmits one PMTU probe frame padded to exactly size bytes
// on the wire. The peer's FragLink acks with the size it received;
// AdoptPMTU later folds the acks into the effective wire MTU.
func (l *FragLink) SendProbe(size int) error {
	if size < fragHdrLen {
		return fmt.Errorf("wire: probe size %d below header %d", size, fragHdrLen)
	}
	l.mu.Lock()
	id := l.nextID
	l.nextID++
	l.fstats.ProbesTx++
	l.mu.Unlock()
	pad := make([]byte, size-fragHdrLen)
	return l.inner.Send(EncodeFrame(probeSPI, flagProbe, id, 0, size, pad))
}

// DiscoverPMTU sends one probe per candidate size. Drive the link (run
// the engine, or let the socket pump turn) and then call AdoptPMTU.
// Candidates the path cannot carry are simply never acked; a candidate
// the inner link refuses outright (simulated MTU) is skipped.
func (l *FragLink) DiscoverPMTU(candidates []int) {
	for _, c := range candidates {
		l.SendProbe(c) //nolint:errcheck // unackable probes = unusable sizes
	}
}

// AdoptPMTU installs the largest acked probe size as the wire MTU and
// returns it; with no acks observed the MTU is unchanged.
func (l *FragLink) AdoptPMTU() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.maxAcked > 0 {
		l.wireMTU = l.maxAcked
	}
	return l.wireMTU
}

// PathMTU returns the current effective wire MTU (0 = unlimited).
func (l *FragLink) PathMTU() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.wireMTU
}

// Close closes the inner link.
func (l *FragLink) Close() error { return l.inner.Close() }

// Stats returns datagram-level counters (TxPackets counts datagrams
// accepted by Send, not frames; see FragStats for frame detail).
func (l *FragLink) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// FragStats returns the fragmentation/PMTU counters.
func (l *FragLink) FragStats() FragStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.fstats
}

// MTU returns the largest datagram Send accepts: fragmentation lifts the
// wire MTU up to the framing's MaxDatagram.
func (l *FragLink) MTU() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.wireMTU == 0 {
		return 0
	}
	return MaxDatagram
}

// Inner exposes the wrapped link (the adversary's injection point for
// forged frames).
func (l *FragLink) Inner() Link { return l.inner }

var (
	_ Link           = (*FragLink)(nil)
	_ InlineReceiver = (*FragLink)(nil)
)
