package wire

import (
	"fmt"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"
)

// UDP encapsulation, after RFC 3948 (UDP encapsulation of ESP):
//
//   - an ESP datagram travels as-is — its leading 32-bit SPI (never
//     zero for a real SA) doubles as the demux key;
//   - non-ESP traffic (the IKE exchanges) is prefixed with the 4-byte
//     zero "non-ESP marker", which no ESP packet can start with;
//   - a NAT-T keepalive is the single byte 0xFF, sent when a link has
//     been transmit-idle for the keepalive interval and absorbed (but
//     counted) on receipt.
//
// One UDPEndpoint owns one socket and demultiplexes inbound datagrams to
// its links: ESP by SPI (falling back to the peer address for SPIs
// registered nowhere, so fragment frames carrying a demux SPI route the
// same as whole packets), non-ESP and keepalives by peer address.
const (
	// maxUDPDatagram is the IPv4 UDP payload ceiling.
	maxUDPDatagram = 65507
	natKeepalive   = 0xFF

	defaultRecvQueue  = 512
	defaultReadBuffer = 1 << 22
)

// UDPConfig parameterizes an endpoint and its links.
type UDPConfig struct {
	// MTU, when positive, refuses Sends larger than MTU bytes, so a real
	// link and a simulated one agree on when fragmentation triggers.
	// 0 allows anything up to the UDP ceiling.
	MTU int
	// KeepaliveInterval sends a NAT-T keepalive on each link that has
	// been transmit-idle this long. 0 disables keepalives.
	KeepaliveInterval time.Duration
	// RecvQueue bounds each link's buffered inbound datagrams (beyond it
	// they drop, as a socket buffer would). 0 means 512.
	RecvQueue int
	// ReadBuffer sizes the socket receive buffer. 0 means 4 MiB.
	ReadBuffer int
}

// UDPEndpoint owns one UDP socket and routes its traffic to links.
type UDPEndpoint struct {
	conn *net.UDPConn
	cfg  UDPConfig

	mu       sync.Mutex
	bySPI    map[uint32]*UDPLink
	byAddr   map[netip.AddrPort]*UDPLink
	closed   bool
	unrouted uint64
}

// ListenUDP opens an endpoint on addr ("" means 127.0.0.1:0 — the
// loopback-first default) and starts its demux loop.
func ListenUDP(addr string, cfg UDPConfig) (*UDPEndpoint, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	if cfg.RecvQueue == 0 {
		cfg.RecvQueue = defaultRecvQueue
	}
	if cfg.ReadBuffer == 0 {
		cfg.ReadBuffer = defaultReadBuffer
	}
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: %w", err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("wire: %w", err)
	}
	conn.SetReadBuffer(cfg.ReadBuffer)  //nolint:errcheck // best-effort sizing
	conn.SetWriteBuffer(cfg.ReadBuffer) //nolint:errcheck
	e := &UDPEndpoint{conn: conn, cfg: cfg,
		bySPI:  make(map[uint32]*UDPLink),
		byAddr: make(map[netip.AddrPort]*UDPLink)}
	go e.readLoop()
	return e, nil
}

// Addr returns the bound local address.
func (e *UDPEndpoint) Addr() netip.AddrPort {
	return e.conn.LocalAddr().(*net.UDPAddr).AddrPort()
}

// Link opens a link toward peer. spis registers the inbound SPIs this
// link receives (the SPIs of the SAs terminating here); inbound non-ESP
// traffic and keepalives from peer route to the link by address.
func (e *UDPEndpoint) Link(peer netip.AddrPort, spis ...uint32) (*UDPLink, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrClosed
	}
	if _, dup := e.byAddr[peer]; dup {
		return nil, fmt.Errorf("wire: link to %v already open", peer)
	}
	for _, spi := range spis {
		if spi == 0 {
			return nil, fmt.Errorf("wire: SPI 0 is the non-ESP marker")
		}
		if _, dup := e.bySPI[spi]; dup {
			return nil, fmt.Errorf("wire: SPI %#x already registered", spi)
		}
	}
	l := &UDPLink{ep: e, peer: peer,
		data: make(chan []byte, e.cfg.RecvQueue),
		ctrl: make(chan []byte, e.cfg.RecvQueue),
		done: make(chan struct{})}
	for _, spi := range spis {
		e.bySPI[spi] = l
	}
	l.spis = append(l.spis, spis...)
	e.byAddr[peer] = l
	if iv := e.cfg.KeepaliveInterval; iv > 0 {
		l.lastTx.Store(time.Now().UnixNano())
		l.keepalive(iv)
	}
	return l, nil
}

// RegisterSPI adds an inbound SPI to an existing link (a rekey's new
// generation riding the same wire).
func (e *UDPEndpoint) RegisterSPI(l *UDPLink, spi uint32) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if spi == 0 {
		return fmt.Errorf("wire: SPI 0 is the non-ESP marker")
	}
	if cur, dup := e.bySPI[spi]; dup && cur != l {
		return fmt.Errorf("wire: SPI %#x already registered", spi)
	}
	e.bySPI[spi] = l
	l.spis = append(l.spis, spi)
	return nil
}

// Close shuts the socket down; every link's pending Recv returns
// ErrClosed.
func (e *UDPEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	links := make([]*UDPLink, 0, len(e.byAddr))
	for _, l := range e.byAddr {
		links = append(links, l)
	}
	e.mu.Unlock()
	for _, l := range links {
		l.Close() //nolint:errcheck // idempotent
	}
	return e.conn.Close()
}

// Unrouted returns datagrams that matched no link (demux misses).
func (e *UDPEndpoint) Unrouted() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.unrouted
}

func (e *UDPEndpoint) readLoop() {
	buf := make([]byte, maxUDPDatagram)
	for {
		n, from, err := e.conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			return // socket closed
		}
		p := buf[:n]
		e.mu.Lock()
		var l *UDPLink
		switch {
		case n == 1 && p[0] == natKeepalive:
			if l = e.byAddr[from]; l != nil {
				l.mu.Lock()
				l.stats.Keepalives++
				l.mu.Unlock()
			}
			e.mu.Unlock()
			continue
		case n >= 4 && demuxSPI(p) == 0:
			// Non-ESP marker: control traffic, routed by peer address.
			if l = e.byAddr[from]; l != nil {
				l.enqueue(l.ctrl, append([]byte(nil), p[4:]...))
			} else {
				e.unrouted++
			}
		default:
			if l = e.bySPI[demuxSPI(p)]; l == nil {
				l = e.byAddr[from]
			}
			if l != nil {
				l.enqueue(l.data, append([]byte(nil), p...))
			} else {
				e.unrouted++
			}
		}
		e.mu.Unlock()
	}
}

// UDPLink is one peer's channel over a shared endpoint socket.
type UDPLink struct {
	ep   *UDPEndpoint
	peer netip.AddrPort
	spis []uint32

	data chan []byte
	ctrl chan []byte
	done chan struct{}
	once sync.Once

	lastTx    atomic.Int64
	keepsSent atomic.Uint64
	mu        sync.Mutex
	stats     Stats
}

// Send transmits one ESP datagram to the peer.
func (l *UDPLink) Send(p []byte) error {
	if err := l.checkSize(len(p)); err != nil {
		return err
	}
	return l.write(p)
}

// SendControl transmits a non-ESP datagram (IKE traffic) behind the
// zero marker.
func (l *UDPLink) SendControl(p []byte) error {
	if err := l.checkSize(len(p) + 4); err != nil {
		return err
	}
	buf := make([]byte, 4+len(p))
	copy(buf[4:], p)
	return l.write(buf)
}

func (l *UDPLink) checkSize(n int) error {
	max := maxUDPDatagram
	if l.ep.cfg.MTU > 0 && l.ep.cfg.MTU < max {
		max = l.ep.cfg.MTU
	}
	if n > max {
		l.mu.Lock()
		l.stats.TxDrops++
		l.mu.Unlock()
		return fmt.Errorf("%w: %d > %d", ErrTooLarge, n, max)
	}
	return nil
}

func (l *UDPLink) write(p []byte) error {
	select {
	case <-l.done:
		return ErrClosed
	default:
	}
	if _, err := l.ep.conn.WriteToUDPAddrPort(p, l.peer); err != nil {
		l.mu.Lock()
		l.stats.TxDrops++
		l.mu.Unlock()
		return fmt.Errorf("wire: %w", err)
	}
	l.lastTx.Store(time.Now().UnixNano())
	l.mu.Lock()
	l.stats.TxPackets++
	l.stats.TxBytes += uint64(len(p))
	l.mu.Unlock()
	return nil
}

func (l *UDPLink) enqueue(ch chan []byte, p []byte) {
	select {
	case ch <- p:
		l.mu.Lock()
		l.stats.RxPackets++
		l.stats.RxBytes += uint64(len(p))
		l.mu.Unlock()
	default:
		l.mu.Lock()
		l.stats.RxDrops++
		l.mu.Unlock()
	}
}

// Recv blocks for the next ESP datagram, ErrClosed after Close.
func (l *UDPLink) Recv() ([]byte, error) {
	select {
	case p := <-l.data:
		return p, nil
	case <-l.done:
		// Drain what arrived before the close.
		select {
		case p := <-l.data:
			return p, nil
		default:
			return nil, ErrClosed
		}
	}
}

// RecvTimeout is Recv bounded by d; it returns ErrNoDatagram on timeout.
func (l *UDPLink) RecvTimeout(d time.Duration) ([]byte, error) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case p := <-l.data:
		return p, nil
	case <-l.done:
		return nil, ErrClosed
	case <-t.C:
		return nil, ErrNoDatagram
	}
}

// RecvControl blocks for the next non-ESP datagram (IKE traffic).
func (l *UDPLink) RecvControl() ([]byte, error) {
	select {
	case p := <-l.ctrl:
		return p, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

// RecvControlTimeout is RecvControl bounded by d (ErrNoDatagram on
// timeout).
func (l *UDPLink) RecvControlTimeout(d time.Duration) ([]byte, error) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case p := <-l.ctrl:
		return p, nil
	case <-l.done:
		return nil, ErrClosed
	case <-t.C:
		return nil, ErrNoDatagram
	}
}

// keepalive arms the NAT-T keepalive timer: when the link has been
// transmit-idle for iv, a 0xFF byte refreshes the NAT binding.
func (l *UDPLink) keepalive(iv time.Duration) {
	time.AfterFunc(iv, func() {
		select {
		case <-l.done:
			return
		default:
		}
		idle := time.Since(time.Unix(0, l.lastTx.Load()))
		next := iv - idle
		if idle >= iv {
			if _, err := l.ep.conn.WriteToUDPAddrPort([]byte{natKeepalive}, l.peer); err == nil {
				l.keepsSent.Add(1)
				l.lastTx.Store(time.Now().UnixNano())
			}
			next = iv
		}
		if next <= 0 {
			next = iv
		}
		l.keepalive(next)
	})
}

// KeepalivesSent returns NAT-T keepalives this link transmitted.
func (l *UDPLink) KeepalivesSent() uint64 { return l.keepsSent.Load() }

// ControlConn is the link's control plane (non-ESP-marker datagrams) as a
// plain send/recv pair — the channel IKE exchanges ride. It satisfies
// ike.Conn structurally.
type ControlConn struct{ l *UDPLink }

// Control returns the control-plane view of the link.
func (l *UDPLink) Control() *ControlConn { return &ControlConn{l} }

// Send transmits one control message behind the non-ESP marker.
func (c *ControlConn) Send(p []byte) error { return c.l.SendControl(p) }

// Recv blocks for the next control message.
func (c *ControlConn) Recv() ([]byte, error) { return c.l.RecvControl() }

// Peer returns the remote address.
func (l *UDPLink) Peer() netip.AddrPort { return l.peer }

// Close detaches the link from its endpoint.
func (l *UDPLink) Close() error {
	l.once.Do(func() {
		close(l.done)
		e := l.ep
		e.mu.Lock()
		for _, spi := range l.spis {
			if e.bySPI[spi] == l {
				delete(e.bySPI, spi)
			}
		}
		if e.byAddr[l.peer] == l {
			delete(e.byAddr, l.peer)
		}
		e.mu.Unlock()
	})
	return nil
}

// Stats returns a snapshot of the link counters.
func (l *UDPLink) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// MTU returns the configured MTU, or the UDP ceiling.
func (l *UDPLink) MTU() int {
	if l.ep.cfg.MTU > 0 {
		return l.ep.cfg.MTU
	}
	return maxUDPDatagram
}

var _ Link = (*UDPLink)(nil)
