// Package wire is the transport layer: the Link contract every packet path
// in the repo rides, with three families of implementations —
//
//   - SimLink adapts the deterministic netsim engine (the original
//     in-process wire every experiment grew up on);
//   - UDPLink is a real socket: RFC 3948-style UDP encapsulation of ESP
//     with a non-ESP marker for control traffic, NAT-T keepalives, and
//     per-peer demultiplexing by SPI at a shared UDPEndpoint;
//   - FragLink and ImpairLink are middleware that compose over any Link:
//     explicit fragmentation/reassembly with probe-based path-MTU
//     discovery and hostile-fragment rejection (the IPv6
//     fragment-handling catalogue: overlapping, tiny, atomic fragments),
//     and seeded loss/duplication/reordering with the adversary's
//     wiretap (Tap) and injection (Inject) positions.
//
// A Link carries opaque datagrams — here, sealed ESP packets — between
// exactly two peers. Send never blocks on the network (socket sends are
// fire-and-forget datagrams; simulated sends schedule engine events).
// Recv is pull-based: socket links block until a datagram or Close,
// simulated links drain a queue filled by the engine and report
// ErrNoDatagram when it is empty (simulations are single-threaded; their
// deliveries can also be taken inline via OnRecv). This split keeps the
// deterministic experiments deterministic while letting the same
// endpoint code run over real sockets.
package wire

import "errors"

// Sentinel errors.
var (
	// ErrClosed reports an operation on a closed link.
	ErrClosed = errors.New("wire: link closed")
	// ErrTooLarge reports a datagram exceeding the link MTU on a link
	// that does not fragment (FragLink splits instead).
	ErrTooLarge = errors.New("wire: datagram exceeds MTU")
	// ErrNoDatagram reports an empty receive queue on a non-blocking
	// (simulated) link; the caller is expected to run the engine further.
	ErrNoDatagram = errors.New("wire: no datagram queued")
)

// Stats counts one link's traffic, both directions, as seen at this
// endpoint. Middleware links (FragLink, ImpairLink) keep their own
// additional counters; these are the universal ones.
type Stats struct {
	// TxPackets and TxBytes count datagrams accepted by Send.
	TxPackets, TxBytes uint64
	// RxPackets and RxBytes count datagrams returned by Recv (or handed
	// to an OnRecv handler).
	RxPackets, RxBytes uint64
	// TxDrops counts datagrams Send refused (oversize, closed socket).
	TxDrops uint64
	// RxDrops counts inbound datagrams discarded before delivery
	// (malformed encapsulation, demux miss, queue overflow).
	RxDrops uint64
	// Keepalives counts NAT-T keepalives received and absorbed.
	Keepalives uint64
}

// Link is a bidirectional point-to-point datagram channel.
//
// Implementations are safe for one concurrent sender and one concurrent
// receiver (the tunnel's shape); Stats and Close may be called from any
// goroutine.
type Link interface {
	// Send transmits one datagram toward the peer. It returns ErrTooLarge
	// when the datagram exceeds MTU on a non-fragmenting link and
	// ErrClosed after Close; network loss is not an error.
	Send(p []byte) error
	// Recv returns the next datagram from the peer. Socket links block
	// until traffic, Close (ErrClosed), or a deadline; simulated links
	// never block and return ErrNoDatagram when nothing is queued.
	Recv() ([]byte, error)
	// Close releases the link. Blocked Recvs return ErrClosed.
	Close() error
	// Stats returns a snapshot of the traffic counters.
	Stats() Stats
	// MTU returns the largest datagram Send accepts, or 0 when the link
	// imposes no limit.
	MTU() int
}

// Handler consumes inbound datagrams inline.
type Handler func(p []byte)

// InlineReceiver is implemented by links whose deliveries can be taken
// inline in the delivering goroutine (the simulated links, where that
// goroutine is the engine's). Registering a handler bypasses the Recv
// queue for subsequent deliveries.
type InlineReceiver interface {
	OnRecv(h Handler)
}

// Tapper is implemented by links offering the adversary's wiretap
// position: fn observes every datagram handed to Send, including those
// the network then loses.
type Tapper interface {
	Tap(fn func(p []byte))
}

// Injector is implemented by links the adversary can write to directly,
// bypassing taps and impairment (it controls its own transmissions).
// It matches adversary.Injector[[]byte].
type Injector interface {
	Inject(p []byte)
}

// demuxSPI reads the leading 32-bit SPI of an ESP datagram, the key both
// the UDP endpoint and the fragment framing route by. Short or non-ESP
// datagrams demux to 0 (the control channel).
func demuxSPI(p []byte) uint32 {
	if len(p) < 4 {
		return 0
	}
	return uint32(p[0])<<24 | uint32(p[1])<<16 | uint32(p[2])<<8 | uint32(p[3])
}
