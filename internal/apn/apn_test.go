package apn

import (
	"errors"
	"math/rand"
	"testing"
)

func TestChannelFIFO(t *testing.T) {
	c := &Channel{name: "a->b"}
	c.Send(Msg{Tag: "msg", Seq: 1})
	c.Send(Msg{Tag: "msg", Seq: 2})
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	m, ok := c.receive()
	if !ok || m.Seq != 1 {
		t.Errorf("receive = %+v %v, want seq 1", m, ok)
	}
	m, ok = c.receive()
	if !ok || m.Seq != 2 {
		t.Errorf("receive = %+v %v, want seq 2", m, ok)
	}
	if _, ok := c.receive(); ok {
		t.Error("receive on empty channel should report false")
	}
}

func TestChannelDrop(t *testing.T) {
	c := &Channel{}
	c.Send(Msg{Seq: 1})
	c.Send(Msg{Seq: 2})
	c.Send(Msg{Seq: 3})
	if !c.Drop(1) {
		t.Fatal("Drop(1) = false")
	}
	if c.Drop(5) {
		t.Error("Drop(5) on 2-element queue should be false")
	}
	m, _ := c.receive()
	if m.Seq != 1 {
		t.Errorf("head = %d, want 1", m.Seq)
	}
	m, _ = c.receive()
	if m.Seq != 3 {
		t.Errorf("next = %d, want 3 (2 was dropped)", m.Seq)
	}
}

func TestChannelReorder(t *testing.T) {
	c := &Channel{rng: rand.New(rand.NewSource(5)), reorder: true}
	for i := uint64(1); i <= 100; i++ {
		c.Send(Msg{Seq: i})
	}
	var got []uint64
	for {
		m, ok := c.receive()
		if !ok {
			break
		}
		got = append(got, m.Seq)
	}
	if len(got) != 100 {
		t.Fatalf("received %d, want 100", len(got))
	}
	inOrder := true
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			inOrder = false
			break
		}
	}
	if inOrder {
		t.Error("reordering channel delivered in order; expected shuffling")
	}
}

func TestSystemExecAndErrors(t *testing.T) {
	sys := NewSystem(1)
	n := 0
	enabled := true
	p := NewProcess("p")
	p.Add(&Action{Name: "inc", Guard: func() bool { return enabled }, Body: func() { n++ }})
	sys.Add(p)

	if err := sys.Exec("p", "inc"); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if n != 1 {
		t.Fatalf("n = %d, want 1", n)
	}
	enabled = false
	if err := sys.Exec("p", "inc"); !errors.Is(err, ErrNotEnabled) {
		t.Errorf("Exec disabled = %v, want ErrNotEnabled", err)
	}
	if err := sys.Exec("p", "nope"); !errors.Is(err, ErrUnknownAction) {
		t.Errorf("Exec unknown = %v, want ErrUnknownAction", err)
	}
	if err := sys.Exec("ghost", "inc"); !errors.Is(err, ErrUnknownAction) {
		t.Errorf("Exec unknown proc = %v, want ErrUnknownAction", err)
	}
	if sys.Steps() != 1 {
		t.Errorf("Steps = %d, want 1", sys.Steps())
	}
}

func TestSystemStepWeakFairness(t *testing.T) {
	// Two always-enabled actions: over many random steps both must run.
	sys := NewSystem(7)
	var a, b int
	p := NewProcess("p")
	p.Add(&Action{Name: "a", Body: func() { a++ }})
	p.Add(&Action{Name: "b", Body: func() { b++ }})
	sys.Add(p)
	sys.Run(1000)
	if a == 0 || b == 0 {
		t.Errorf("fairness violated: a=%d b=%d", a, b)
	}
	if a+b != 1000 {
		t.Errorf("total = %d, want 1000", a+b)
	}
}

func TestSystemStepNoneEnabled(t *testing.T) {
	sys := NewSystem(1)
	p := NewProcess("p")
	p.Add(&Action{Name: "never", Guard: func() bool { return false }, Body: func() {}})
	sys.Add(p)
	if sys.Step() {
		t.Error("Step with no enabled actions should report false")
	}
	if got := sys.Run(10); got != 0 {
		t.Errorf("Run = %d, want 0", got)
	}
	if refs := sys.Enabled(); len(refs) != 0 {
		t.Errorf("Enabled = %v, want empty", refs)
	}
}

func TestReceiveActionGuardedByChannel(t *testing.T) {
	sys := NewSystem(1)
	ch := sys.Chan("p", "q")
	var got []uint64
	q := NewProcess("q")
	q.Add(&Action{Name: "rcv", From: ch, OnMsg: func(m Msg) { got = append(got, m.Seq) }})
	sys.Add(q)

	if len(sys.Enabled()) != 0 {
		t.Fatal("receive enabled on empty channel")
	}
	ch.Send(Msg{Seq: 9})
	refs := sys.Enabled()
	if len(refs) != 1 || refs[0].Action != "rcv" {
		t.Fatalf("Enabled = %v, want [q.rcv]", refs)
	}
	if !sys.Step() {
		t.Fatal("Step = false")
	}
	if len(got) != 1 || got[0] != 9 {
		t.Errorf("got = %v, want [9]", got)
	}
}

func TestChanIdentity(t *testing.T) {
	sys := NewSystem(1)
	a := sys.Chan("p", "q")
	b := sys.Chan("p", "q")
	if a != b {
		t.Error("Chan must return the same channel for the same pair")
	}
	c := sys.Chan("q", "p")
	if a == c {
		t.Error("opposite directions must be distinct channels")
	}
	if a.Name() != "p->q" {
		t.Errorf("Name = %q, want p->q", a.Name())
	}
}

func TestAddPanicsOnMalformedAction(t *testing.T) {
	tests := []struct {
		name string
		a    *Action
	}{
		{"unnamed", &Action{Body: func() {}}},
		{"no body", &Action{Name: "x"}},
		{"both bodies", &Action{Name: "x", Body: func() {}, From: &Channel{}, OnMsg: func(Msg) {}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("Add should panic")
				}
			}()
			NewProcess("p").Add(tt.a)
		})
	}
}

func TestPaperSenderBaselineStream(t *testing.T) {
	sys := NewSystem(1)
	ch := sys.Chan("p", "q")
	p := NewPaperSender("p", ch, 0, false)
	sys.Add(p.Process())

	for i := 0; i < 5; i++ {
		if err := sys.Exec("p", "send"); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	for want := uint64(1); want <= 5; want++ {
		m, ok := ch.receive()
		if !ok || m.Seq != want {
			t.Fatalf("msg = %+v %v, want seq %d", m, ok, want)
		}
	}
	if p.S != 6 {
		t.Errorf("S = %d, want 6", p.S)
	}
}

func TestPaperSenderBaselineResetForgets(t *testing.T) {
	sys := NewSystem(1)
	ch := sys.Chan("p", "q")
	p := NewPaperSender("p", ch, 0, false)
	sys.Add(p.Process())

	for i := 0; i < 10; i++ {
		_ = sys.Exec("p", "send")
	}
	p.RequestReset()
	if err := sys.Exec("p", "reset"); err != nil {
		t.Fatalf("reset: %v", err)
	}
	if !p.Wait {
		t.Fatal("Wait = false after reset")
	}
	if err := sys.Exec("p", "send"); !errors.Is(err, ErrNotEnabled) {
		t.Fatalf("send while down = %v, want ErrNotEnabled", err)
	}
	p.RequestWake()
	if err := sys.Exec("p", "wake"); err != nil {
		t.Fatalf("wake: %v", err)
	}
	if p.S != 1 {
		t.Errorf("baseline S after wake = %d, want 1 (§3 vulnerability)", p.S)
	}
}

func TestPaperSenderSaveFetchLeap(t *testing.T) {
	const k = 5
	sys := NewSystem(1)
	ch := sys.Chan("p", "q")
	p := NewPaperSender("p", ch, k, true)
	sys.Add(p.Process())

	// k sends trigger the background SAVE(k+1).
	for i := 0; i < k; i++ {
		if err := sys.Exec("p", "send"); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	if !p.SavePending() {
		t.Fatal("no background SAVE pending after K sends")
	}
	if p.Lst != k+1 {
		t.Fatalf("Lst = %d, want %d", p.Lst, k+1)
	}
	if err := sys.Exec("p", "save"); err != nil {
		t.Fatalf("save: %v", err)
	}
	if v, ok := p.Durable(); !ok || v != k+1 {
		t.Fatalf("durable = %d %v, want %d", v, ok, k+1)
	}

	// Reset after the save committed: wake resumes at durable + 2K.
	p.RequestReset()
	_ = sys.Exec("p", "reset")
	p.RequestWake()
	_ = sys.Exec("p", "wake")
	if want := uint64(k + 1 + 2*k); p.S != want {
		t.Errorf("S after wake = %d, want %d", p.S, want)
	}
	if v, _ := p.Durable(); v != p.S {
		t.Errorf("durable = %d, want %d (wake saves synchronously)", v, p.S)
	}
}

func TestPaperSenderTornSave(t *testing.T) {
	const k = 5
	sys := NewSystem(1)
	ch := sys.Chan("p", "q")
	p := NewPaperSender("p", ch, k, true)
	sys.Add(p.Process())

	for i := 0; i < k; i++ {
		_ = sys.Exec("p", "send")
	}
	_ = sys.Exec("p", "save") // durable k+1
	for i := 0; i < k; i++ {
		_ = sys.Exec("p", "send") // SAVE(2k+1) pending
	}
	lastUsed := p.S - 1
	if !p.SavePending() {
		t.Fatal("expected pending save")
	}
	// Reset strikes before the save commits: the write is torn.
	p.RequestReset()
	_ = sys.Exec("p", "reset")
	if p.SavePending() {
		t.Fatal("reset must tear the pending save")
	}
	p.RequestWake()
	_ = sys.Exec("p", "wake")
	if want := uint64(k + 1 + 2*k); p.S != want {
		t.Errorf("S after wake = %d, want %d (stale fetch + leap)", p.S, want)
	}
	if p.S <= lastUsed {
		t.Errorf("SAFETY: S %d not above last used %d", p.S, lastUsed)
	}
}

func TestPaperReceiverThreeCases(t *testing.T) {
	sys := NewSystem(1)
	ch := sys.Chan("p", "q")
	q := NewPaperReceiver("q", ch, 64, 10, true)
	sys.Add(q.Process())

	admit := func(s uint64) bool {
		t.Helper()
		ch.Send(Msg{Tag: "msg", Seq: s})
		if err := sys.Exec("q", "rcv"); err != nil {
			t.Fatalf("rcv: %v", err)
		}
		return q.Log[len(q.Log)-1].Delivered
	}

	if !admit(100) {
		t.Error("fresh 100 should deliver")
	}
	if q.R != 100 {
		t.Errorf("R = %d, want 100", q.R)
	}
	if !admit(80) {
		t.Error("in-window 80 should deliver")
	}
	if admit(80) {
		t.Error("duplicate 80 should discard")
	}
	if admit(100) {
		t.Error("replay of edge should discard")
	}
	if admit(36) {
		t.Error("stale 36 should discard")
	}
	if !admit(37) {
		t.Error("left edge 37 should deliver")
	}
}

func TestPaperReceiverWakeLeapsAndBlocksReplays(t *testing.T) {
	const k = 10
	sys := NewSystem(1)
	ch := sys.Chan("p", "q")
	q := NewPaperReceiver("q", ch, 32, k, true)
	sys.Add(q.Process())

	admit := func(s uint64) bool {
		ch.Send(Msg{Tag: "msg", Seq: s})
		if err := sys.Exec("q", "rcv"); err != nil {
			t.Fatalf("rcv: %v", err)
		}
		return q.Log[len(q.Log)-1].Delivered
	}

	for s := uint64(1); s <= k; s++ {
		admit(s) // triggers SAVE(k)
	}
	if !q.SavePending() {
		t.Fatal("no SAVE pending at edge k")
	}
	_ = sys.Exec("q", "save")
	for s := uint64(k + 1); s <= k+5; s++ {
		admit(s)
	}
	lastReceived := uint64(k + 5)

	q.RequestReset()
	_ = sys.Exec("q", "reset")
	q.RequestWake()
	_ = sys.Exec("q", "wake")

	if want := uint64(k + 2*k); q.R != want {
		t.Errorf("R after wake = %d, want %d", q.R, want)
	}
	for s := uint64(1); s <= lastReceived; s++ {
		if admit(s) {
			t.Fatalf("SAFETY: replay of %d delivered after wake", s)
		}
	}
	if !admit(q.R + 1) {
		t.Error("fresh message above new edge should deliver")
	}
}

func TestPaperBaselineReceiverAcceptsReplaysAfterReset(t *testing.T) {
	sys := NewSystem(1)
	ch := sys.Chan("p", "q")
	q := NewPaperReceiver("q", ch, 32, 0, false)
	sys.Add(q.Process())

	admit := func(s uint64) bool {
		ch.Send(Msg{Tag: "msg", Seq: s})
		if err := sys.Exec("q", "rcv"); err != nil {
			t.Fatalf("rcv: %v", err)
		}
		return q.Log[len(q.Log)-1].Delivered
	}
	for s := uint64(1); s <= 50; s++ {
		admit(s)
	}
	q.RequestReset()
	_ = sys.Exec("q", "reset")
	q.RequestWake()
	_ = sys.Exec("q", "wake")

	accepted := 0
	for s := uint64(1); s <= 50; s++ {
		if admit(s) {
			accepted++
		}
	}
	if accepted != 50 {
		t.Errorf("baseline accepted %d of 50 replays, want all (§3)", accepted)
	}
}

// TestPaperSystemRandomizedNoDuplicateDelivery runs the full §4 protocol
// under the random scheduler with resets, wakes, and adversarial replays,
// and checks the paper's central theorem: the receiver never delivers the
// same sequence number twice.
func TestPaperSystemRandomizedNoDuplicateDelivery(t *testing.T) {
	runRandomizedScenario(t, 1)
}

func runRandomizedScenario(t *testing.T, seed int64) {
	t.Helper()
	sys := NewSystem(seed)
	rng := rand.New(rand.NewSource(seed * 31))
	ch := sys.Chan("p", "q")
	const k = 7
	p := NewPaperSender("p", ch, k, true)
	q := NewPaperReceiver("q", ch, 16, k, true)
	sys.Add(p.Process(), q.Process())

	var sent []Msg
	for step := 0; step < 5000; step++ {
		switch r := rng.Intn(100); {
		case r == 0:
			p.RequestReset()
		case r == 1:
			q.RequestReset()
		case r < 6:
			if p.Wait {
				p.RequestWake()
			}
			if q.Wait {
				q.RequestWake()
			}
		case r < 16 && len(sent) > 0:
			ch.Inject(sent[rng.Intn(len(sent))]) // adversary replay
		default:
			before := p.S
			sys.Step()
			if p.S > before {
				sent = append(sent, Msg{Tag: "msg", Seq: before})
			}
		}
	}
	// Drain: wake everyone and let the system run dry of receive work.
	if p.Wait {
		p.RequestWake()
	}
	if q.Wait {
		q.RequestWake()
	}
	for i := 0; i < 2000 && sys.Step(); i++ {
	}

	seen := make(map[uint64]int)
	for _, ev := range q.Log {
		if !ev.Delivered {
			continue
		}
		seen[ev.Seq]++
		if seen[ev.Seq] > 1 {
			t.Fatalf("seed %d: SAFETY: sequence %d delivered twice", seed, ev.Seq)
		}
	}
}

func TestPaperSystemRandomizedManySeeds(t *testing.T) {
	for seed := int64(2); seed <= 25; seed++ {
		runRandomizedScenario(t, seed)
	}
}
