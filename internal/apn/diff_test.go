package apn

// Differential tests: the paper's APN processes and the production
// implementation in internal/core must make identical decisions on
// identical schedules of sends, receives, save commits, resets, and wakes.

import (
	"math/rand"
	"sync"
	"testing"

	"antireplay/internal/core"
	"antireplay/internal/seqwin"
	"antireplay/internal/store"
)

// stepSaver is a core.BackgroundSaver committing only when the test fires
// Commit, so that save timing can be mirrored onto the APN "save" action.
type stepSaver struct {
	mu      sync.Mutex
	st      store.Store
	pending []struct {
		v    uint64
		done func(error)
	}
}

func (s *stepSaver) StartSave(v uint64, done func(error)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending = append(s.pending, struct {
		v    uint64
		done func(error)
	}{v, done})
}

func (s *stepSaver) Commit(t *testing.T) bool {
	t.Helper()
	s.mu.Lock()
	if len(s.pending) == 0 {
		s.mu.Unlock()
		return false
	}
	p := s.pending[0]
	s.pending = s.pending[1:]
	s.mu.Unlock()
	if err := s.st.Save(p.v); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if p.done != nil {
		p.done(nil)
	}
	return true
}

func (s *stepSaver) CommitAll(t *testing.T) {
	for s.Commit(t) {
	}
}

func (s *stepSaver) Cancel() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending = nil
}

func TestDifferentialSenderAPNvsCore(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		const k = 5
		sys := NewSystem(seed)
		ch := sys.Chan("p", "q")
		ap := NewPaperSender("p", ch, k, true)
		sys.Add(ap.Process())

		var mem store.Mem
		sv := &stepSaver{st: &mem}
		cs, err := core.NewSender(core.SenderConfig{K: k, Store: &mem, Saver: sv})
		if err != nil {
			t.Fatalf("NewSender: %v", err)
		}

		rng := rand.New(rand.NewSource(seed * 97))
		down := false
		for step := 0; step < 2000; step++ {
			switch r := rng.Intn(10); {
			case r < 6 && !down: // send on both
				if err := sys.Exec("p", "send"); err != nil {
					t.Fatalf("apn send: %v", err)
				}
				apnSeq := ap.S - 1
				coreSeq, err := cs.Next()
				if err != nil {
					t.Fatalf("core Next: %v", err)
				}
				if apnSeq != coreSeq {
					t.Fatalf("seed %d step %d: seq diverged: apn %d core %d", seed, step, apnSeq, coreSeq)
				}
			case r == 6: // commit pending saves on both
				if ap.SavePending() {
					_ = sys.Exec("p", "save")
				}
				sv.CommitAll(t)
			case r == 7 && !down: // reset both
				ap.RequestReset()
				_ = sys.Exec("p", "reset")
				cs.Reset()
				down = true
			case r == 8 && down: // wake both (APN wake is atomic incl. save)
				ap.RequestWake()
				_ = sys.Exec("p", "wake")
				cs.Wake()
				sv.CommitAll(t) // complete the core post-wake save
				down = false
			}
			if !down {
				if ap.S != cs.Seq() {
					t.Fatalf("seed %d step %d: counter diverged: apn %d core %d", seed, step, ap.S, cs.Seq())
				}
				if ap.Lst != cs.LastStored() {
					t.Fatalf("seed %d step %d: lst diverged: apn %d core %d", seed, step, ap.Lst, cs.LastStored())
				}
			}
		}
	}
}

func TestDifferentialReceiverAPNvsCore(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		const (
			k = 7
			w = 16
		)
		sys := NewSystem(seed)
		ch := sys.Chan("p", "q")
		aq := NewPaperReceiver("q", ch, w, k, true)
		sys.Add(aq.Process())

		var mem store.Mem
		sv := &stepSaver{st: &mem}
		cr, err := core.NewReceiver(core.ReceiverConfig{
			K:      k,
			Store:  &mem,
			Saver:  sv,
			Window: seqwin.NewBool(w),
		})
		if err != nil {
			t.Fatalf("NewReceiver: %v", err)
		}

		rng := rand.New(rand.NewSource(seed * 101))
		down := false
		base := uint64(1)
		for step := 0; step < 3000; step++ {
			switch r := rng.Intn(10); {
			case r < 6 && !down: // admit the same (possibly old) seq on both
				var s uint64
				if rng.Intn(4) == 0 && base > 1 {
					s = 1 + uint64(rng.Int63n(int64(base))) // replay-ish
				} else {
					s = base + uint64(rng.Intn(3))
					if s >= base {
						base = s + 1
					}
				}
				ch.Send(Msg{Tag: "msg", Seq: s})
				if err := sys.Exec("q", "rcv"); err != nil {
					t.Fatalf("apn rcv: %v", err)
				}
				apnDelivered := aq.Log[len(aq.Log)-1].Delivered
				v := cr.Admit(s)
				if apnDelivered != v.Delivered() {
					t.Fatalf("seed %d step %d: verdict diverged on %d: apn %v core %v (edge apn %d core %d)",
						seed, step, s, apnDelivered, v, aq.R, cr.Edge())
				}
			case r == 6:
				if aq.SavePending() {
					_ = sys.Exec("q", "save")
				}
				sv.CommitAll(t)
			case r == 7 && !down:
				aq.RequestReset()
				_ = sys.Exec("q", "reset")
				cr.Reset()
				down = true
			case r == 8 && down:
				aq.RequestWake()
				_ = sys.Exec("q", "wake")
				cr.Wake()
				sv.CommitAll(t)
				down = false
			}
			if !down {
				if aq.R != cr.Edge() {
					t.Fatalf("seed %d step %d: edge diverged: apn %d core %d", seed, step, aq.R, cr.Edge())
				}
				if aq.Lst != cr.LastStored() {
					t.Fatalf("seed %d step %d: lst diverged: apn %d core %d", seed, step, aq.Lst, cr.LastStored())
				}
			}
		}
	}
}
