// Package apn is a small runtime for the Abstract Protocol Notation the
// paper specifies its protocols in (Gouda, "Elements of Network Protocol
// Design"): a protocol is a set of processes, each a set of guarded actions
// over local state and message channels.
//
// Execution follows the notation's three rules: an action executes only
// when its guard is true; actions execute one at a time (interleaving
// semantics — each action is atomic); and an action whose guard is
// continuously true is eventually executed (weak fairness, realized here by
// uniform random choice among enabled actions from a seeded source, plus a
// deterministic Exec for schedule-controlled tests).
//
// The paper's processes p and q — both the §2 baseline and the §4
// SAVE/FETCH versions — are encoded in this package (see paper.go) and are
// differentially tested against the production implementation in
// internal/core.
package apn

import (
	"errors"
	"fmt"
	"math/rand"
)

// Sentinel errors.
var (
	// ErrUnknownAction reports an Exec of an action that does not exist.
	ErrUnknownAction = errors.New("apn: unknown action")
	// ErrNotEnabled reports an Exec of an action whose guard is false.
	ErrNotEnabled = errors.New("apn: action not enabled")
)

// Msg is a protocol message: the paper's msg(s) plus a tag for control
// messages.
type Msg struct {
	// Tag names the message type; the data messages of the paper are "msg".
	Tag string
	// Seq is the sequence number carried by the message.
	Seq uint64
}

// Channel is a message channel between two processes. The default order is
// FIFO; Pick-based receive (random order) models the reordering channel of
// §2 when enabled.
type Channel struct {
	name    string
	queue   []Msg
	reorder bool
	rng     *rand.Rand
}

// Name returns the channel's name ("from->to").
func (c *Channel) Name() string { return c.name }

// Send appends m to the channel (the notation's send statement).
func (c *Channel) Send(m Msg) { c.queue = append(c.queue, m) }

// Inject inserts m as an adversary would (same as Send; the channel cannot
// tell the difference, which is the point of the replay attack).
func (c *Channel) Inject(m Msg) { c.queue = append(c.queue, m) }

// Len returns the number of queued messages.
func (c *Channel) Len() int { return len(c.queue) }

// Drop removes the i-th queued message, modelling message loss.
// It reports whether the index existed.
func (c *Channel) Drop(i int) bool {
	if i < 0 || i >= len(c.queue) {
		return false
	}
	c.queue = append(c.queue[:i], c.queue[i+1:]...)
	return true
}

// receive removes and returns the next message: the head in FIFO mode, a
// uniformly random element in reorder mode.
func (c *Channel) receive() (Msg, bool) {
	if len(c.queue) == 0 {
		return Msg{}, false
	}
	i := 0
	if c.reorder && c.rng != nil {
		i = c.rng.Intn(len(c.queue))
	}
	m := c.queue[i]
	c.queue = append(c.queue[:i], c.queue[i+1:]...)
	return m, true
}

// Action is one guarded command of a process.
type Action struct {
	// Name identifies the action for Exec and traces.
	Name string
	// Guard enables the action; nil means always enabled (the paper's
	// "true ->" guard). For receive actions the guard is implicit: the
	// channel must be non-empty (an additional Guard, if set, must also
	// hold).
	Guard func() bool
	// Body executes the action's statement. Exactly one of Body or OnMsg
	// must be set.
	Body func()
	// From, when non-nil, makes this a receive action: the action is
	// enabled when From has a message, and OnMsg consumes it.
	From *Channel
	// OnMsg handles the received message for receive actions.
	OnMsg func(Msg)
}

func (a *Action) enabled() bool {
	if a.From != nil && a.From.Len() == 0 {
		return false
	}
	if a.Guard != nil && !a.Guard() {
		return false
	}
	return true
}

func (a *Action) execute() {
	if a.From != nil {
		m, ok := a.From.receive()
		if !ok {
			return
		}
		a.OnMsg(m)
		return
	}
	a.Body()
}

// Process is a named set of actions.
type Process struct {
	name    string
	actions []*Action
}

// NewProcess returns an empty process.
func NewProcess(name string) *Process { return &Process{name: name} }

// Name returns the process name.
func (p *Process) Name() string { return p.name }

// Add appends an action. It panics on a malformed action (programmer
// error): no name, or neither/both of Body and OnMsg.
func (p *Process) Add(a *Action) *Process {
	if a.Name == "" {
		panic("apn: action without name")
	}
	hasBody := a.Body != nil
	hasRecv := a.From != nil && a.OnMsg != nil
	if hasBody == hasRecv {
		panic(fmt.Sprintf("apn: action %s.%s must have exactly one of Body or From+OnMsg", p.name, a.Name))
	}
	p.actions = append(p.actions, a)
	return p
}

// System is a protocol: processes plus channels, with a scheduler.
type System struct {
	rng    *rand.Rand
	procs  []*Process
	chans  map[string]*Channel
	steps  uint64
	maxLag int
}

// NewSystem returns a system whose scheduling randomness derives from seed.
func NewSystem(seed int64) *System {
	return &System{rng: rand.New(rand.NewSource(seed)), chans: make(map[string]*Channel)}
}

// Add registers processes with the scheduler.
func (s *System) Add(procs ...*Process) {
	s.procs = append(s.procs, procs...)
}

// Chan returns (creating on first use) the channel from one process name to
// another, in FIFO order.
func (s *System) Chan(from, to string) *Channel {
	key := from + "->" + to
	c, ok := s.chans[key]
	if !ok {
		c = &Channel{name: key, rng: s.rng}
		s.chans[key] = c
	}
	return c
}

// SetReorder switches a channel between FIFO and random-order delivery.
func (s *System) SetReorder(c *Channel, reorder bool) { c.reorder = reorder }

// ActionRef identifies an enabled action.
type ActionRef struct {
	Process string
	Action  string
}

// Enabled lists all currently enabled actions in declaration order.
func (s *System) Enabled() []ActionRef {
	var out []ActionRef
	for _, p := range s.procs {
		for _, a := range p.actions {
			if a.enabled() {
				out = append(out, ActionRef{Process: p.name, Action: a.Name})
			}
		}
	}
	return out
}

// Step executes one uniformly random enabled action, reporting whether any
// action was enabled.
func (s *System) Step() bool {
	type cand struct{ a *Action }
	var cands []cand
	for _, p := range s.procs {
		for _, a := range p.actions {
			if a.enabled() {
				cands = append(cands, cand{a})
			}
		}
	}
	if len(cands) == 0 {
		return false
	}
	c := cands[s.rng.Intn(len(cands))]
	c.a.execute()
	s.steps++
	return true
}

// Run executes up to maxSteps random steps, returning how many ran.
func (s *System) Run(maxSteps int) int {
	n := 0
	for n < maxSteps && s.Step() {
		n++
	}
	return n
}

// Exec executes one specific action by process and action name, for
// schedule-controlled tests. It returns ErrUnknownAction or ErrNotEnabled
// when it cannot.
func (s *System) Exec(process, action string) error {
	for _, p := range s.procs {
		if p.name != process {
			continue
		}
		for _, a := range p.actions {
			if a.Name != action {
				continue
			}
			if !a.enabled() {
				return fmt.Errorf("%w: %s.%s", ErrNotEnabled, process, action)
			}
			a.execute()
			s.steps++
			return nil
		}
	}
	return fmt.Errorf("%w: %s.%s", ErrUnknownAction, process, action)
}

// Steps returns the number of actions executed so far.
func (s *System) Steps() uint64 { return s.steps }
