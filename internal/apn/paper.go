package apn

// This file encodes the paper's processes literally. The §4 processes keep
// a durable cell (the persistent memory) and model the background SAVE as a
// separate "save" action: once a SAVE has been started, the commit action is
// continuously enabled and therefore eventually executes (weak fairness) —
// but an adversarial scheduler may delay it arbitrarily, which is exactly
// the timing window analysed in Figures 1 and 2. A reset clears the pending
// save: the write never reached the medium (torn save). The wake-up action
// performs FETCH and the synchronous SAVE atomically, as one guarded action,
// exactly as specified.
//
// External events appear as request flags: the harness calls RequestReset /
// RequestWake and the corresponding guarded action consumes the flag.

// PaperSender is process p. With Resilient it is the §4 version (SAVE/FETCH,
// constants Kp and leap 2Kp); otherwise the §2 original whose wake-up
// restarts at s = 1 (§3).
type PaperSender struct {
	// S is the paper's s: the next sequence number to send, initially 1.
	S uint64
	// Lst is the paper's lst: the last value handed to SAVE, initially 1.
	Lst uint64
	// Wait is the paper's wait flag: true between reset and wake-up.
	Wait bool
	// K is the paper's Kp.
	K uint64
	// Resilient selects the §4 process over the §2 baseline.
	Resilient bool

	durable      uint64 // persistent memory cell
	durableSet   bool
	pending      *uint64 // background SAVE in flight, if any
	resetPending bool
	wakePending  bool
	proc         *Process
}

// RequestReset arms the "(process p is reset)" guard.
func (p *PaperSender) RequestReset() { p.resetPending = true }

// RequestWake arms the "(process p wakes up after a reset)" guard.
func (p *PaperSender) RequestWake() { p.wakePending = true }

// Durable returns the persistent cell's value.
func (p *PaperSender) Durable() (uint64, bool) { return p.durable, p.durableSet }

// SavePending reports whether a background SAVE is in flight.
func (p *PaperSender) SavePending() bool { return p.pending != nil }

// Process returns the APN process for registration with a System.
func (p *PaperSender) Process() *Process { return p.proc }

// NewPaperSender builds process p sending msg(s) into out. For the
// resilient version the persistent cell starts at 1, matching lst's initial
// value (the SA-establishment save).
func NewPaperSender(name string, out *Channel, k uint64, resilient bool) *PaperSender {
	p := &PaperSender{S: 1, Lst: 1, K: k, Resilient: resilient}
	if resilient {
		p.durable, p.durableSet = 1, true
	}
	proc := NewProcess(name)

	// true (and not reset) -> send msg(s) to q; s := s+1; maybe & SAVE(s)
	proc.Add(&Action{
		Name:  "send",
		Guard: func() bool { return !p.Wait },
		Body: func() {
			out.Send(Msg{Tag: "msg", Seq: p.S})
			p.S++
			if p.Resilient && p.S >= p.K+p.Lst {
				p.Lst = p.S
				v := p.S
				p.pending = &v // & SAVE(s) executed in background
			}
		},
	})

	if resilient {
		// Background SAVE commit: continuously enabled once started.
		proc.Add(&Action{
			Name:  "save",
			Guard: func() bool { return p.pending != nil },
			Body: func() {
				p.durable, p.durableSet = *p.pending, true
				p.pending = nil
			},
		})
	}

	// (process p is reset) -> wait := true
	proc.Add(&Action{
		Name:  "reset",
		Guard: func() bool { return p.resetPending },
		Body: func() {
			p.resetPending = false
			p.Wait = true
			p.pending = nil // the in-flight write is torn
		},
	})

	// (process p wakes up after a reset) -> ...
	proc.Add(&Action{
		Name:  "wake",
		Guard: func() bool { return p.wakePending && p.Wait },
		Body: func() {
			p.wakePending = false
			if !p.Resilient {
				// §3: the counter is forgotten; p resumes with s = 1.
				p.S = 1
				p.Lst = 1
				p.Wait = false
				return
			}
			// FETCH(s); SAVE(s+2Kp); s := s+2Kp; lst := s; wait := false
			s := p.durable
			s += 2 * p.K
			p.durable, p.durableSet = s, true
			p.S = s
			p.Lst = s
			p.Wait = false
		},
	})

	p.proc = proc
	return p
}

// RxEvent is one receive verdict of the paper receiver, for differential
// tests against the production implementation.
type RxEvent struct {
	Seq       uint64
	Delivered bool
}

// PaperReceiver is process q. With Resilient it is the §4 version;
// otherwise the §2 original whose wake-up restarts with r = 0 and a cleared
// window (§3).
type PaperReceiver struct {
	// Wdw is the paper's window array, 1-indexed (index 0 unused).
	Wdw []bool
	// R is the paper's r: the right edge of the window, initially 0.
	R uint64
	// Lst is the paper's lst: last value handed to SAVE, initially 0.
	Lst uint64
	// Wait is the paper's wait flag.
	Wait bool
	// K is the paper's Kq.
	K uint64
	// Resilient selects the §4 process over the §2 baseline.
	Resilient bool
	// Log records every receive verdict in order.
	Log []RxEvent

	durable      uint64
	durableSet   bool
	pending      *uint64
	resetPending bool
	wakePending  bool
	proc         *Process
}

// RequestReset arms the "(process q is reset)" guard.
func (q *PaperReceiver) RequestReset() { q.resetPending = true }

// RequestWake arms the "(process q wakes up after a reset)" guard.
func (q *PaperReceiver) RequestWake() { q.wakePending = true }

// Durable returns the persistent cell's value.
func (q *PaperReceiver) Durable() (uint64, bool) { return q.durable, q.durableSet }

// SavePending reports whether a background SAVE is in flight.
func (q *PaperReceiver) SavePending() bool { return q.pending != nil }

// Process returns the APN process for registration with a System.
func (q *PaperReceiver) Process() *Process { return q.proc }

// W returns the window width.
func (q *PaperReceiver) W() int { return len(q.Wdw) - 1 }

// NewPaperReceiver builds process q receiving msg(s) from in, with window
// width w. The §2 initial state is installed: every window entry true,
// r = 0. For the resilient version the persistent cell starts at 0,
// matching lst's initial value.
func NewPaperReceiver(name string, in *Channel, w int, k uint64, resilient bool) *PaperReceiver {
	if w < 1 {
		panic("apn: window width must be >= 1")
	}
	q := &PaperReceiver{Wdw: make([]bool, w+1), K: k, Resilient: resilient}
	for i := 1; i <= w; i++ {
		q.Wdw[i] = true
	}
	if resilient {
		q.durable, q.durableSet = 0, true
	}
	proc := NewProcess(name)

	// rcv msg(s) from p -> the three-case window decision, then the SAVE
	// trigger. The receive is guarded on ~wait: a machine that is down (or
	// mid-wake, which in APN is atomic) does not execute receive actions.
	proc.Add(&Action{
		Name:  "rcv",
		From:  in,
		Guard: func() bool { return !q.Wait },
		OnMsg: func(m Msg) {
			q.receive(m.Seq)
		},
	})

	if resilient {
		proc.Add(&Action{
			Name:  "save",
			Guard: func() bool { return q.pending != nil },
			Body: func() {
				q.durable, q.durableSet = *q.pending, true
				q.pending = nil
			},
		})
	}

	proc.Add(&Action{
		Name:  "reset",
		Guard: func() bool { return q.resetPending },
		Body: func() {
			q.resetPending = false
			q.Wait = true
			q.pending = nil
		},
	})

	proc.Add(&Action{
		Name:  "wake",
		Guard: func() bool { return q.wakePending && q.Wait },
		Body: func() {
			q.wakePending = false
			if !q.Resilient {
				// §3: q resumes with r = 0 and every entry false.
				q.R = 0
				for i := 1; i < len(q.Wdw); i++ {
					q.Wdw[i] = false
				}
				q.Wait = false
				return
			}
			// FETCH(r); SAVE(r+2Kq); r := r+2Kq; lst := r;
			// do i <= w -> wdw[i] := true od; wait := false
			r := q.durable
			r += 2 * q.K
			q.durable, q.durableSet = r, true
			q.R = r
			q.Lst = r
			for i := 1; i < len(q.Wdw); i++ {
				q.Wdw[i] = true
			}
			q.Wait = false
		},
	})

	q.proc = proc
	return q
}

// receive is the verbatim body of the paper's receive action.
func (q *PaperReceiver) receive(s uint64) {
	w := uint64(len(q.Wdw) - 1)
	delivered := false
	switch {
	case q.R >= w && s <= q.R-w:
		// s <= r-w -> skip (discard)
	case s <= q.R:
		// r-w < s <= r: i := s-r+w
		i := w - (q.R - s)
		if q.Wdw[i] {
			// discard
		} else {
			q.Wdw[i] = true
			delivered = true
		}
	default:
		// r < s: slide
		i := s - q.R + 1
		j := uint64(1)
		q.R = s
		for i <= w {
			q.Wdw[j] = q.Wdw[i]
			i++
			j++
		}
		for j < w {
			q.Wdw[j] = false
			j++
		}
		delivered = true
	}
	q.Log = append(q.Log, RxEvent{Seq: s, Delivered: delivered})

	if q.Resilient && q.R >= q.K+q.Lst {
		q.Lst = q.R
		v := q.R
		q.pending = &v
	}
}
