package experiments

import (
	"fmt"
	"time"
)

// ConvergenceConfig parameterizes the §5 convergence sweeps.
type ConvergenceConfig struct {
	// Ks is the sweep of SAVE intervals.
	Ks []uint64
	// Seed drives the simulations.
	Seed int64
}

// DefaultConvergenceConfig sweeps K over two orders of magnitude.
func DefaultConvergenceConfig() ConvergenceConfig {
	return ConvergenceConfig{Ks: []uint64{2, 5, 25, 100, 400}, Seed: 1}
}

// ConvergenceSender verifies §5 condition (i) across K in the paper's worst
// case: the SAVE captures the counter and commits, and the reset strikes
// before any further message is sent ("s-Kp+1 has not been used"). The
// wake-up then resumes at fetched+2K, wasting exactly 2K sequence numbers —
// and, because the resumed counter exceeds everything previously used, the
// receiver discards no fresh message.
func ConvergenceSender(cfg ConvergenceConfig) (*Table, error) {
	t := &Table{
		ID:    "convsender",
		Title: "Sender convergence across K (§5 condition i, worst case)",
		Note:  "Reset right after a SAVE commits with nothing sent since its capture. Expect lost = 2K exactly, fresh discards = 0, dup deliveries = 0.",
		Columns: []string{"K", "last_used", "fetched", "resumed", "lost",
			"bound_2K", "tight", "fresh_discards", "ok"},
	}
	for _, k := range cfg.Ks {
		fc := DefaultFlowConfig(cfg.Seed)
		fc.Kp, fc.Kq = k, k
		fc.W = 64
		fc.SaveDelay = time.Duration(k/2+1) * fc.SendInterval
		f, err := NewFlow(fc)
		if err != nil {
			return nil, err
		}
		// The save cycle at send 3K captures value 3K+1. Pause traffic
		// there (the paper's worst case needs the rate to drop), let the
		// save commit, then reset and wake.
		trigger := 3 * k
		var fetched uint64
		f.AtSendCount(trigger, func() {
			f.StopTraffic()
			f.Engine.After(2*fc.SaveDelay, func() { // SAVE(3K+1) is durable now
				f.Sender.Reset()
				f.Engine.After(time.Millisecond, func() {
					v, _, err := f.SenderStore.Fetch()
					if err == nil {
						fetched = v
					}
					f.Sender.Wake()
					// Resume traffic once the post-wake save completes.
					f.Engine.After(2*fc.SaveDelay, func() { f.StartTraffic(time.Hour) })
				})
			})
		})
		f.StartTraffic(time.Hour)
		horizon := time.Duration(trigger)*fc.SendInterval + time.Millisecond +
			10*fc.SaveDelay + time.Duration(3*k)*fc.SendInterval + 10*time.Millisecond
		f.Run(horizon)

		lastUsed := trigger // seqs 1..3K used before the pause
		resumed := fetched + 2*k
		lost := resumed - lastUsed - 1
		bound := 2 * k
		fresh := f.Matrix.FreshDiscarded()
		ok := lost <= bound && fresh == 0 && f.DupDeliveries() == 0
		t.AddRow(fmt.Sprint(k), fmt.Sprint(lastUsed), fmt.Sprint(fetched),
			fmt.Sprint(resumed), fmt.Sprint(lost), fmt.Sprint(bound),
			fmt.Sprint(lost == bound), fmt.Sprint(fresh), fmt.Sprint(ok))
	}
	return t, nil
}

// ConvergenceReceiver verifies §5 condition (ii) across K in the paper's
// worst case: the SAVE of edge r commits and the reset strikes before any
// further message is received. The wake-up reinstalls the edge at
// fetched+2K, so the next 2K fresh messages — exactly the numbers between
// r and r+2K — are sacrificed, and nothing is ever delivered twice even
// though the adversary replays the entire history.
func ConvergenceReceiver(cfg ConvergenceConfig) (*Table, error) {
	t := &Table{
		ID:    "convreceiver",
		Title: "Receiver convergence across K (§5 condition ii, worst case)",
		Note:  "Reset right after a SAVE commits with nothing received since its capture; full-history replay after wake. Expect sacrifices = 2K exactly, dup deliveries = 0.",
		Columns: []string{"K", "last_recv", "fetched", "resumed_edge",
			"sacrificed", "bound_2K", "tight", "replayed", "dup_delivered", "ok"},
	}
	for _, k := range cfg.Ks {
		fc := DefaultFlowConfig(cfg.Seed)
		fc.Kp, fc.Kq = k, k
		fc.W = 64
		fc.SaveDelay = time.Duration(k/2+1) * fc.SendInterval
		f, err := NewFlow(fc)
		if err != nil {
			return nil, err
		}
		// The receiver's save cycle at edge 3K captures value 3K. Pause the
		// sender there so nothing else is received, let the save commit,
		// then reset, wake, replay history, and resume traffic.
		// Pause by *send* count so no packets remain in flight when the
		// receiver's SAVE at edge 3K commits.
		trigger := 3 * k
		var fetched uint64
		f.AtSendCount(trigger, func() {
			f.StopTraffic()
			f.Engine.After(2*fc.SaveDelay+2*fc.Link.Delay, func() {
				f.Receiver.Reset()
				f.Engine.After(time.Millisecond, func() {
					v, _, err := f.ReceiverStore.Fetch()
					if err == nil {
						fetched = v
					}
					f.Receiver.Wake()
					f.Engine.After(2*fc.SaveDelay, func() {
						f.Replayer.ReplayAllAt(f.Engine.Now(), fc.SendInterval)
						f.StartTraffic(time.Hour)
					})
				})
			})
		})
		f.StartTraffic(time.Hour)
		horizon := time.Duration(trigger)*fc.SendInterval + time.Millisecond +
			10*fc.SaveDelay + time.Duration(6*k)*fc.SendInterval + 20*time.Millisecond
		f.Run(horizon)

		lastRecv := trigger
		resumed := fetched + 2*k
		sacrificed := f.Matrix.FreshDiscarded()
		replayed := f.Replayer.Injected()
		dups := f.DupDeliveries()
		bound := 2 * k
		ok := sacrificed <= bound && dups == 0
		t.AddRow(fmt.Sprint(k), fmt.Sprint(lastRecv), fmt.Sprint(fetched),
			fmt.Sprint(resumed), fmt.Sprint(sacrificed), fmt.Sprint(bound),
			fmt.Sprint(sacrificed == bound), fmt.Sprint(replayed),
			fmt.Sprint(dups), fmt.Sprint(ok))
	}
	return t, nil
}
