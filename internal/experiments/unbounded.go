package experiments

import (
	"fmt"
	"time"

	"antireplay/internal/stats"
)

// UnboundedConfig parameterizes the §3 baseline-failure demonstration.
type UnboundedConfig struct {
	// Traffic is the sweep of pre-reset message counts x.
	Traffic []uint64
	// Seed drives the simulation.
	Seed int64
}

// DefaultUnboundedConfig doubles x from 500 to 4000.
func DefaultUnboundedConfig() UnboundedConfig {
	return UnboundedConfig{Traffic: []uint64{500, 1000, 2000, 4000}, Seed: 1}
}

// UnboundedBaseline reproduces the §3 claims: under the baseline (§2)
// protocol, the damage of a reset grows without bound in the amount of
// pre-reset traffic x — the adversary replays all x messages into a freshly
// reset receiver and they are all accepted; a freshly reset sender has all
// its messages discarded until its counter climbs past the receiver's old
// edge (≈ x discards). The resilient protocol holds both at <= 2K
// regardless of x. A least-squares fit of damage against x demonstrates
// slope ≈ 1 (unbounded) vs slope ≈ 0 (bounded).
func UnboundedBaseline(cfg UnboundedConfig) (*Table, error) {
	t := &Table{
		ID:    "unbounded",
		Title: "Baseline vs resilient damage as pre-reset traffic grows (§3)",
		Columns: []string{"x_msgs", "protocol", "replays_delivered_again",
			"fresh_discarded_after_sender_reset"},
	}

	var xs, baseReplay, baseDiscard, resReplay, resDiscard []float64
	for _, x := range cfg.Traffic {
		for _, baseline := range []bool{true, false} {
			ra, err := receiverResetReplayDamage(cfg.Seed, x, baseline)
			if err != nil {
				return nil, err
			}
			fd, err := senderResetDiscardDamage(cfg.Seed, x, baseline)
			if err != nil {
				return nil, err
			}
			name := "resilient"
			if baseline {
				name = "baseline"
				baseReplay = append(baseReplay, float64(ra))
				baseDiscard = append(baseDiscard, float64(fd))
			} else {
				resReplay = append(resReplay, float64(ra))
				resDiscard = append(resDiscard, float64(fd))
			}
			t.AddRow(fmt.Sprint(x), name, fmt.Sprint(ra), fmt.Sprint(fd))
		}
		xs = append(xs, float64(x))
	}

	note := "Expect: baseline damage grows ~linearly in x (slope ~1); resilient stays <= 2K."
	if fit, err := stats.LinearFit(xs, baseReplay); err == nil {
		note += fmt.Sprintf(" Baseline replay slope=%.3f (r2=%.3f).", fit.Slope, fit.R2)
	}
	if fit, err := stats.LinearFit(xs, baseDiscard); err == nil {
		note += fmt.Sprintf(" Baseline discard slope=%.3f (r2=%.3f).", fit.Slope, fit.R2)
	}
	if fit, err := stats.LinearFit(xs, resReplay); err == nil {
		note += fmt.Sprintf(" Resilient replay slope=%.3f.", fit.Slope)
	}
	if fit, err := stats.LinearFit(xs, resDiscard); err == nil {
		note += fmt.Sprintf(" Resilient discard slope=%.3f.", fit.Slope)
	}
	t.Note = note
	return t, nil
}

// receiverResetReplayDamage sends x messages, resets+wakes the receiver,
// replays the full history, and counts the messages delivered a second
// time (the §3 replay damage).
func receiverResetReplayDamage(seed int64, x uint64, baseline bool) (uint64, error) {
	fc := DefaultFlowConfig(seed)
	fc.Baseline = baseline
	f, err := NewFlow(fc)
	if err != nil {
		return 0, err
	}
	f.AtSendCount(x, func() { f.StopTraffic() })
	f.StartTraffic(time.Hour)
	f.Run(time.Duration(x+10) * fc.SendInterval * 2)

	// Reset and wake the receiver, then replay everything.
	f.Receiver.Reset()
	f.Receiver.Wake()
	f.Run(f.Engine.Now() + fc.SaveDelay*2) // let the post-wake save finish
	f.Replayer.ReplayAllAt(f.Engine.Now(), fc.SendInterval)
	f.Run(f.Engine.Now() + time.Duration(x+10)*fc.SendInterval*2)

	return f.DupDeliveries(), nil
}

// senderResetDiscardDamage sends x messages, resets+wakes the sender, and
// counts how many of the next 2x fresh messages the receiver discards.
func senderResetDiscardDamage(seed int64, x uint64, baseline bool) (uint64, error) {
	fc := DefaultFlowConfig(seed)
	fc.Baseline = baseline
	f, err := NewFlow(fc)
	if err != nil {
		return 0, err
	}
	f.AtSendCount(x, func() {
		f.Sender.Reset()
		f.Engine.After(fc.SaveDelay, f.Sender.Wake)
	})
	f.StartTraffic(time.Hour)
	// Let the sender emit roughly 2x more messages after the wake.
	f.Run(time.Duration(3*x+200) * fc.SendInterval * 2)
	return f.Matrix.FreshDiscarded(), nil
}
