package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"antireplay/internal/ipsec"
	"antireplay/internal/store"
)

// ScaleConfig parameterizes the million-SA scale experiment.
type ScaleConfig struct {
	// Cells is the number of distinct SA counters populated into each
	// journal medium for the recovery comparison.
	Cells int
	// Lanes is the commit-lane count of the laned medium.
	Lanes int
	// Savers is the concurrent saver count for the steady-state SAVE row.
	Savers int
	// SAs is the inbound SA count for the heap-footprint row.
	SAs int
}

// DefaultScaleConfig returns the headline parameterization: one million
// counters and one million SAs.
func DefaultScaleConfig() ScaleConfig {
	return ScaleConfig{Cells: 1_000_000, Lanes: 64, Savers: 64, SAs: 1_000_000}
}

// Scale measures the journal-lanes subsystem at gateway scale: cold-start
// recovery of the same counter population through a single-lane journal
// (generic string-keyed representation) versus the laned medium (compact
// packed-key cells, lanes replayed concurrently), the steady-state cost of
// 64 concurrent savers spread across lanes, and the pinned per-SA heap
// footprint of a fully installed inbound SA population.
func Scale(cfg ScaleConfig) (*Table, error) {
	t := &Table{
		ID:    "scale",
		Title: "million-SA scale: laned recovery, 64-way SAVE, per-SA heap",
		Note: "Expect recover_lanes at least 2x faster than recover_single on the same population: lane " +
			"replay parses frames into packed uint64-keyed cells (no per-key string or map-bucket churn) " +
			"and lanes recover concurrently. save_lanes_64 is the gateway-scale SAVE shape routed across " +
			"lanes at 0 allocs_op; with ~one saver per lane each lane's group commit covers ~one frame, " +
			"so the laned append trades the single log's cross-saver write batching (hotpath's " +
			"journal_save_64, which this PR must not and does not regress) for per-lane committers and " +
			"fsyncs that parallelize across cores and devices. sa_heap installs the full inbound SA " +
			"population over the laned medium and reports live heap per SA; its install rate is bound by " +
			"the SAD's copy-on-write snapshots, not the journal.",
		Columns: []string{"path", "ops", "ms", "per_sec", "detail"},
	}
	dir, err := os.MkdirTemp("", "scale-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	if err := scaleRecoveryRows(t, cfg, dir); err != nil {
		return nil, err
	}
	if err := scaleFootprintRow(t, cfg, dir); err != nil {
		return nil, err
	}
	return t, nil
}

func addScaleRow(t *Table, path string, ops int, elapsed time.Duration, detail string) {
	t.AddRow(path, fmt.Sprint(ops), fmt.Sprintf("%.1f", float64(elapsed.Nanoseconds())/1e6),
		fmt.Sprintf("%.0f", float64(ops)/elapsed.Seconds()), detail)
}

// scaleRecoveryRows populates the identical cell population into both media,
// measures the 64-way steady-state SAVE on the lanes, then closes both and
// times the cold-start replay of each.
func scaleRecoveryRows(t *Table, cfg ScaleConfig, dir string) error {
	singlePath := filepath.Join(dir, "single.log")
	lanesDir := filepath.Join(dir, "lanes")
	single, err := store.OpenJournal(singlePath, store.JournalWithoutSync())
	if err != nil {
		return err
	}
	lanes, err := store.OpenLanes(lanesDir, store.LanesCount(cfg.Lanes), store.LanesWithoutSync())
	if err != nil {
		return err
	}
	for i := 0; i < cfg.Cells; i++ {
		key := fmt.Sprintf("rx/%08x", i)
		v := uint64(i + 1)
		if err := single.Cell(key).Save(v); err != nil {
			return err
		}
		if err := lanes.Cell(key).Save(v); err != nil {
			return err
		}
	}

	// Steady-state 64-way SAVE across lanes, before the close so the savers
	// run against warm staging slabs. The extra frames land in the lane logs
	// and are replayed below — which only handicaps the lanes side of the
	// recovery comparison, never flatters it.
	cells := make([]*store.Cell, cfg.Savers)
	for i := range cells {
		cells[i] = lanes.Cell(fmt.Sprintf("rx/%08x", i))
	}
	per := cfg.Cells / cfg.Savers / 4
	if per < 1000 {
		per = 1000
	}
	var wg sync.WaitGroup
	errs := make(chan error, cfg.Savers)
	start := time.Now()
	for g := 0; g < cfg.Savers; g++ {
		wg.Add(1)
		go func(c *store.Cell) {
			defer wg.Done()
			for i := 1; i <= per; i++ {
				if err := c.Save(uint64(cfg.Cells + i)); err != nil {
					errs <- err
					return
				}
			}
		}(cells[g])
	}
	wg.Wait()
	saveElapsed := time.Since(start)
	select {
	case err := <-errs:
		return err
	default:
	}
	v := uint64(2 * cfg.Cells)
	allocs := testing.AllocsPerRun(500, func() {
		v++
		if err := cells[0].Save(v); err != nil {
			errs <- err
		}
	})
	select {
	case err := <-errs:
		return err
	default:
	}
	ops := per * cfg.Savers
	addScaleRow(t, "save_lanes_64", ops, saveElapsed,
		fmt.Sprintf("ns_op=%.1f allocs_op=%.2f", float64(saveElapsed.Nanoseconds())/float64(ops), allocs))

	if err := single.Close(); err != nil {
		return err
	}
	if err := lanes.Close(); err != nil {
		return err
	}

	// Cold-start recovery: reopen each medium and replay its whole log.
	start = time.Now()
	single2, err := store.OpenJournal(singlePath, store.JournalWithoutSync())
	if err != nil {
		return err
	}
	singleElapsed := time.Since(start)
	defer single2.Close()
	if got := single2.Keys(); got != cfg.Cells {
		return fmt.Errorf("scale: single journal recovered %d keys, want %d", got, cfg.Cells)
	}
	addScaleRow(t, "recover_single", cfg.Cells, singleElapsed, "1 lane, generic string-keyed cells")

	start = time.Now()
	lanes2, err := store.OpenLanes(lanesDir, store.LanesWithoutSync())
	if err != nil {
		return err
	}
	lanesElapsed := time.Since(start)
	defer lanes2.Close()
	if got := lanes2.Keys(); got != cfg.Cells {
		return fmt.Errorf("scale: lanes recovered %d keys, want %d", got, cfg.Cells)
	}
	addScaleRow(t, "recover_lanes", cfg.Cells, lanesElapsed,
		fmt.Sprintf("%d lanes, compact cells, speedup=%.2fx",
			lanes2.LaneCount(), float64(singleElapsed)/float64(lanesElapsed)))
	return nil
}

// scaleFootprintRow installs the full inbound SA population on one gateway
// over a laned medium and reports the live heap cost per SA.
func scaleFootprintRow(t *Table, cfg ScaleConfig, dir string) error {
	lanes, err := store.OpenLanes(filepath.Join(dir, "sas"),
		store.LanesCount(cfg.Lanes), store.LanesWithoutSync())
	if err != nil {
		return err
	}
	defer lanes.Close()
	gw, err := ipsec.NewGateway(ipsec.GatewayConfig{Journal: lanes})
	if err != nil {
		return err
	}
	defer gw.Close()

	keys := ipsec.KeyMaterial{AuthKey: bytes.Repeat([]byte{0x5A}, ipsec.AuthKeySize)}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < cfg.SAs; i++ {
		if _, err := gw.AddInbound(uint32(i+1), keys); err != nil {
			return fmt.Errorf("scale: AddInbound %d: %w", i, err)
		}
	}
	elapsed := time.Since(start)
	runtime.GC()
	runtime.ReadMemStats(&after)
	heap := after.HeapAlloc - before.HeapAlloc
	addScaleRow(t, "sa_heap", cfg.SAs, elapsed,
		fmt.Sprintf("bytes_per_sa=%d heap_mib=%.0f", heap/uint64(cfg.SAs), float64(heap)/(1<<20)))
	return nil
}
