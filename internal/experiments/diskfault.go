package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"antireplay/internal/cluster"
	"antireplay/internal/core"
	"antireplay/internal/ipsec"
	"antireplay/internal/store"
	"antireplay/internal/storefault"
)

// DiskfaultConfig parameterizes the storage fault-domain experiment.
type DiskfaultConfig struct {
	// Seed drives all randomness (key material).
	Seed int64
	// Packets is the per-SA traffic volume of each phase.
	Packets int
	// Lanes is the lane count of the single_lane_eio campaign (the storm
	// and compaction campaigns use small fixed lane counts — their point
	// is the fault shape, not the lane fan-out).
	Lanes int
}

// DefaultDiskfaultConfig runs the EIO campaign over 64 lanes, so the
// one-quarantined-lane row prices exactly the 1/64 fault domain.
func DefaultDiskfaultConfig() DiskfaultConfig {
	return DiskfaultConfig{Seed: 1, Packets: 40, Lanes: 64}
}

const diskfaultK = 8 // SAVE interval of every diskfault gateway

// diskRow is one campaign's raw accounting before formatting.
type diskRow struct {
	fault       string // the injected fault schedule, human form
	lanes       int    // lane count of the victim medium
	quarantined int    // lanes poisoned at the end of the faulted phase
	sent        int    // data packets sealed at the sender
	delivered   int    // unique payloads delivered
	stalled     int    // packets refused by a quarantined lane's horizon stall
	healthyOK   bool   // every SA off the faulted lanes delivered everything
	replays     int    // wires delivered more than once (the hard SLO: 0)
	detail      string // campaign-side accounting
}

func (r diskRow) goodput() float64 {
	if r.sent == 0 {
		return 0
	}
	return float64(r.delivered) / float64(r.sent)
}

// Diskfault runs the three disk-chaos campaigns — an fsync storm across
// several lanes, ENOSPC aimed at compaction, and a single dead lane under
// live replication — and asserts the fault-domain SLOs:
//
//   - zero replay acceptances: replaying the full wiretap history after
//     the faults (and after the repair) re-delivers nothing;
//   - zero counter regressions: no SA's durable counter ever moves
//     backwards, not across quarantine and not across repair;
//   - bounded degradation: only SAs on a quarantined lane stall (at the
//     durable horizon, after the bounded 2K grace the leap allows), and
//     every SA on a healthy lane keeps full throughput — the blast radius
//     is the lane, never the gateway;
//   - transient faults cost nothing: ENOSPC during compaction is retried
//     on the old log and ENOSPC on a lane write is rescued by an
//     immediate compaction, with no quarantine and no stranded temp
//     files;
//   - repair restores service: after the injector is disarmed, the
//     standby-assisted lane repair plus a wake brings the quarantined
//     lane's SAs back to delivering.
func Diskfault(cfg DiskfaultConfig) (*Table, error) {
	return diskfaultTable(cfg, "")
}

// DiskfaultOnly runs a single named campaign (resetsim's -diskfault flag).
func DiskfaultOnly(cfg DiskfaultConfig, name string) (*Table, error) {
	for _, n := range DiskfaultNames() {
		if n == name {
			return diskfaultTable(cfg, name)
		}
	}
	return nil, fmt.Errorf("experiments: unknown diskfault campaign %q (have %v)", name, DiskfaultNames())
}

// DiskfaultNames lists the campaign ids in presentation order.
func DiskfaultNames() []string {
	return []string{"fsync_storm", "enospc_compact", "single_lane_eio"}
}

func diskfaultTable(cfg DiskfaultConfig, only string) (*Table, error) {
	t := &Table{
		ID:    "diskfault",
		Title: "Storage fault domains: quarantine, bounded degradation, lane repair",
		Note: "Each campaign injects scheduled I/O faults under a live gateway. " +
			"Expect replay_accepts = 0 and healthy_goodput = 100% on every row: a " +
			"poisoned lane quarantines alone (its SAs stall at the durable " +
			"horizon after the bounded 2K grace) while every other lane keeps " +
			"full throughput. ENOSPC rows are transient: rescued by compaction, " +
			"no quarantine, no stranded temps. The EIO row repairs the dead " +
			"lane from the standby's replica and the stalled SAs resume.",
		Columns: []string{"campaign", "fault", "lanes", "quarantined", "sent",
			"delivered", "stalled", "goodput", "healthy_goodput", "floor", "replay_accepts", "detail"},
	}

	specs := []struct {
		campaign string
		floor    float64
		run      func() (diskRow, error)
	}{
		{"fsync_storm", 0.75, func() (diskRow, error) { return fsyncStormRow(cfg) }},
		{"enospc_compact", 0.99, func() (diskRow, error) { return enospcCompactRow(cfg) }},
		{"single_lane_eio", 0.75, func() (diskRow, error) { return singleLaneEIORow(cfg) }},
	}

	for _, spec := range specs {
		if only != "" && spec.campaign != only {
			continue
		}
		row, err := spec.run()
		if err != nil {
			return nil, fmt.Errorf("experiments: diskfault %s: %w", spec.campaign, err)
		}
		if row.replays != 0 {
			return nil, fmt.Errorf("experiments: diskfault %s: %d replay acceptances", spec.campaign, row.replays)
		}
		if !row.healthyOK {
			return nil, fmt.Errorf("experiments: diskfault %s: an SA on a healthy lane lost throughput", spec.campaign)
		}
		if g := row.goodput(); g < spec.floor {
			return nil, fmt.Errorf("experiments: diskfault %s: goodput %.3f below floor %.2f",
				spec.campaign, g, spec.floor)
		}
		healthy := "100%"
		t.AddRow(spec.campaign, row.fault, fmt.Sprint(row.lanes), fmt.Sprint(row.quarantined),
			fmt.Sprint(row.sent), fmt.Sprint(row.delivered), fmt.Sprint(row.stalled),
			fmt.Sprintf("%.1f%%", 100*row.goodput()), healthy,
			fmt.Sprintf("%.0f%%", 100*spec.floor), fmt.Sprint(row.replays), row.detail)
	}
	return t, nil
}

// diskPair is a sender gateway (clean medium) facing a victim gateway
// whose laned medium sits on a fault injector, with exactly-once delivery
// accounting and per-SA bookkeeping.
type diskPair struct {
	dir   string
	in    *storefault.Injector
	lanes *store.Lanes
	a, b  *ipsec.Gateway
	spis  []uint32 // one inbound SA per entry, spis[i] on lane laneOf[i]
	lane  []int    // laneOf[i]: the victim lane hosting spis[i]
	src   []netip.Addr
	dst   netip.Addr

	poisonMu sync.Mutex
	poisoned []int // lanes reported by the LanesOnPoison hook, in order

	history [][]byte
	seen    map[string]bool
	replays int
}

// newDiskPair builds the pair over laneCount victim lanes and registers
// SAs lane by lane until each lane in want hosts perLane of them (probing
// SPIs through the lane hash). Extra lane options apply to the victim.
func newDiskPair(cfg DiskfaultConfig, laneCount, perLane int, opts ...store.LanesOption) (*diskPair, error) {
	dir, err := os.MkdirTemp("", "diskfault-*")
	if err != nil {
		return nil, err
	}
	p := &diskPair{dir: dir, in: storefault.NewInjector(nil), seen: make(map[string]bool)}
	fail := func(err error) (*diskPair, error) {
		p.close()
		return nil, err
	}

	lopts := append([]store.LanesOption{
		store.LanesCount(laneCount),
		store.LanesWithFS(p.in),
		store.LanesOnPoison(func(lane int, err error) {
			p.poisonMu.Lock()
			p.poisoned = append(p.poisoned, lane)
			p.poisonMu.Unlock()
		}),
	}, opts...)
	lanes, err := store.OpenLanes(filepath.Join(dir, "victim"), lopts...)
	if err != nil {
		return fail(err)
	}
	p.lanes = lanes
	b, err := ipsec.NewGateway(ipsec.GatewayConfig{Journal: lanes, K: diskfaultK, W: 64})
	if err != nil {
		return fail(err)
	}
	p.b = b

	jA, err := store.OpenJournal(filepath.Join(dir, "sender.log"), store.JournalWithoutSync())
	if err != nil {
		return fail(err)
	}
	a, err := ipsec.NewGateway(ipsec.GatewayConfig{Journal: jA, K: diskfaultK, W: 64})
	if err != nil {
		jA.Close()
		return fail(err)
	}
	p.a = a

	// Probe SPIs through the victim's lane hash until every lane hosts
	// perLane SAs: the traffic then exercises each fault domain, and
	// "every other lane at full throughput" is a claim about all of them.
	rng := rand.New(rand.NewSource(cfg.Seed + 500))
	p.dst = netip.AddrFrom4([4]byte{10, 9, 0, 1})
	fill := make([]int, laneCount)
	for spi := uint32(0xD100_0000); ; spi++ {
		lane := laneIndex(lanes, ipsec.InboundKey(spi))
		if fill[lane] >= perLane {
			continue
		}
		fill[lane]++
		keys := ipsec.KeyMaterial{AuthKey: make([]byte, ipsec.AuthKeySize)}
		rng.Read(keys.AuthKey)
		i := len(p.spis)
		src := netip.AddrFrom4([4]byte{10, 3, byte(i >> 8), byte(i)})
		sel := ipsec.Selector{Src: netip.PrefixFrom(src, 32), Dst: netip.PrefixFrom(p.dst, 32)}
		if _, err := a.AddOutbound(spi, keys, sel); err != nil {
			return fail(err)
		}
		if _, err := b.AddInbound(spi, keys); err != nil {
			return fail(err)
		}
		p.spis = append(p.spis, spi)
		p.lane = append(p.lane, lane)
		p.src = append(p.src, src)
		done := true
		for _, n := range fill {
			if n < perLane {
				done = false
				break
			}
		}
		if done {
			break
		}
	}
	return p, nil
}

// laneIndex resolves the victim lane hosting key.
func laneIndex(l *store.Lanes, key string) int {
	target := l.Lane(key)
	for i, j := range l.LaneJournals() {
		if j == target {
			return i
		}
	}
	return 0 // unreachable: Lane always returns one of LaneJournals
}

func (p *diskPair) close() {
	if p.a != nil {
		p.a.Close()
		p.a.Journal().Close()
	}
	if p.b != nil {
		p.b.Close()
	}
	if p.lanes != nil {
		p.lanes.Close()
	}
	os.RemoveAll(p.dir)
}

// seal seals one payload for SA i, riding out transient save lag.
func (p *diskPair) seal(i int, payload []byte) ([]byte, error) {
	for tries := 0; ; tries++ {
		w, err := p.a.Seal(p.src[i], p.dst, payload)
		if err == nil {
			p.history = append(p.history, w)
			return w, nil
		}
		if !errors.Is(err, core.ErrSaveLag) || tries > 10000 {
			return nil, err
		}
		time.Sleep(10 * time.Microsecond)
	}
}

// open opens one wire at the victim for SA i. A horizon stall on a
// quarantined lane is permanent until repair, so it is counted (false) at
// once; on a healthy lane it is transient save lag and retried.
func (p *diskPair) open(i int, w []byte) (bool, error) {
	for tries := 0; ; tries++ {
		_, v, err := p.b.Open(w)
		if err != nil {
			return false, err
		}
		if v == core.VerdictHorizon {
			if p.lanes.LaneJournals()[p.lane[i]].Poisoned() != nil {
				return false, nil // quarantined: stalled at the durable horizon
			}
			if tries > 10000 {
				return false, fmt.Errorf("diskfault: SA %#x horizon-stalled on a healthy lane", p.spis[i])
			}
			time.Sleep(10 * time.Microsecond)
			continue
		}
		if !v.Delivered() {
			return false, nil
		}
		if p.seen[string(w)] {
			p.replays++
			return false, nil
		}
		p.seen[string(w)] = true
		return true, nil
	}
}

// phase sends n packets on every SA, returning per-SA delivery counts.
func (p *diskPair) phase(n int, payload func(i, k int) []byte) ([]int, error) {
	got := make([]int, len(p.spis))
	for k := 0; k < n; k++ {
		for i := range p.spis {
			w, err := p.seal(i, payload(i, k))
			if err != nil {
				return nil, err
			}
			ok, err := p.open(i, w)
			if err != nil {
				return nil, err
			}
			if ok {
				got[i]++
			}
		}
	}
	return got, nil
}

// replayAll re-injects the full wiretap history; the seen map turns any
// second delivery into a replay count. Quarantined-lane stalls answer
// VerdictHorizon immediately, so no retry loop is needed.
func (p *diskPair) replayAll() {
	for _, w := range p.history {
		_, v, err := p.b.Open(w)
		if err != nil || !v.Delivered() {
			continue
		}
		if p.seen[string(w)] {
			p.replays++
		} else {
			p.seen[string(w)] = true
		}
	}
}

// committedFloor snapshots every inbound SA's durable counter.
func (p *diskPair) committedFloor() []uint64 {
	floors := make([]uint64, len(p.spis))
	for i, spi := range p.spis {
		if sa, ok := p.b.SAD().Lookup(spi); ok {
			floors[i] = sa.Receiver().Committed()
		}
	}
	return floors
}

// checkCommitted asserts no SA's durable counter regressed below floor.
func (p *diskPair) checkCommitted(floors []uint64) error {
	for i, spi := range p.spis {
		sa, ok := p.b.SAD().Lookup(spi)
		if !ok {
			return fmt.Errorf("diskfault: SA %#x vanished", spi)
		}
		if got := sa.Receiver().Committed(); got < floors[i] {
			return fmt.Errorf("diskfault: SA %#x durable counter regressed %d -> %d", spi, floors[i], got)
		}
	}
	return nil
}

// laneFile is the substring an injected fault uses to target one lane's
// log (the lane file naming is part of the manifest contract).
func laneFile(lane int) string { return fmt.Sprintf("lane-%03d.log", lane) }

// fsyncStormRow quarantines several lanes at once: every fsync on lanes 0
// and 1 fails, forever, mid-traffic. The first failed SAVE poisons each —
// never retried, per fsyncgate — and only their SAs stall; the storm must
// not leak into the other lanes' throughput, and the full-history replay
// must still deliver nothing twice.
func fsyncStormRow(cfg DiskfaultConfig) (diskRow, error) {
	const stormLanes = 8
	p, err := newDiskPair(cfg, stormLanes, 2)
	if err != nil {
		return diskRow{}, err
	}
	defer p.close()

	payload := func(i, k int) []byte { return []byte(fmt.Sprintf("storm-%02d-%06d", i, k)) }
	if _, err := p.phase(cfg.Packets, payload); err != nil {
		return diskRow{}, err
	}
	floors := p.committedFloor()

	faulted := []int{0, 1}
	p.in.Arm(
		storefault.Fault{Op: storefault.OpSync, Path: laneFile(0), Err: syscall.EIO},
		storefault.Fault{Op: storefault.OpSync, Path: laneFile(1), Err: syscall.EIO},
	)
	payload2 := func(i, k int) []byte { return []byte(fmt.Sprintf("storm2-%02d-%06d", i, k)) }
	got, err := p.phase(cfg.Packets, payload2)
	if err != nil {
		return diskRow{}, err
	}

	row := diskRow{
		fault: "fsync EIO forever on 2 lanes",
		lanes: stormLanes,
		sent:  2 * cfg.Packets * len(p.spis),
	}
	isFaulted := func(lane int) bool { return lane == faulted[0] || lane == faulted[1] }
	row.healthyOK = true
	stalledSAs := 0
	for i, lane := range p.lane {
		if isFaulted(lane) {
			if got[i] >= cfg.Packets {
				return diskRow{}, fmt.Errorf("SA %#x on quarantined lane %d never stalled", p.spis[i], lane)
			}
			stalledSAs++
			row.stalled += cfg.Packets - got[i]
		} else if got[i] != cfg.Packets {
			row.healthyOK = false
		}
	}
	if q := p.lanes.Quarantined(); len(q) != 2 || !isFaulted(q[0]) || !isFaulted(q[1]) {
		return diskRow{}, fmt.Errorf("quarantined lanes %v, want %v", q, faulted)
	}
	if d := p.b.Degraded(); len(d) != 2 {
		return diskRow{}, fmt.Errorf("gateway degraded %v, want both faulted lanes", d)
	}
	p.poisonMu.Lock()
	hooks := len(p.poisoned)
	p.poisonMu.Unlock()
	if hooks != 2 {
		return diskRow{}, fmt.Errorf("poison hook fired %d times, want 2", hooks)
	}
	if err := p.checkCommitted(floors); err != nil {
		return diskRow{}, err
	}
	p.replayAll()
	row.quarantined = 2
	row.delivered = len(p.seen)
	row.replays = p.replays
	row.detail = fmt.Sprintf("%d SAs stalled at horizon, %d faults fired", stalledSAs, p.in.Fired())
	return row, nil
}

// enospcCompactRow prices the transient full disk: first ENOSPC eats two
// compaction temp writes (retried on the old log, temps removed, no
// quarantine), then one lane write fails ENOSPC and the journal rescues
// itself by compacting in place of the failed batch. Everything stays
// delivered and no temp file strands.
func enospcCompactRow(cfg DiskfaultConfig) (diskRow, error) {
	const compactLanes = 4
	p, err := newDiskPair(cfg, compactLanes, 2,
		store.LanesWithoutSync(), store.LanesCompactAt(256))
	if err != nil {
		return diskRow{}, err
	}
	defer p.close()

	// Phase 1 under compaction ENOSPC: the temp write fails, the old log
	// stays authoritative, and the crossing is retried until the fault
	// budget runs out.
	p.in.Arm(storefault.Fault{Op: storefault.OpWrite, Path: ".compact", Count: 2, Err: syscall.ENOSPC})
	n := 4 * cfg.Packets // enough appends to cross the 256 B threshold repeatedly
	payload := func(i, k int) []byte { return []byte(fmt.Sprintf("enospc-%02d-%06d", i, k)) }
	got, err := p.phase(n, payload)
	if err != nil {
		return diskRow{}, err
	}
	compactFired := p.in.Fired()
	if compactFired < 2 {
		return diskRow{}, fmt.Errorf("compaction ENOSPC fired %d times, want 2 (threshold never crossed?)", compactFired)
	}

	var compactions uint64
	for _, j := range p.lanes.LaneJournals() {
		compactions += j.Compactions()
	}
	if compactions == 0 {
		return diskRow{}, errors.New("compaction never succeeded after the transient ENOSPC")
	}

	// Phase 2 on a fresh pair whose threshold is never crossed (default
	// compactAt), so the one-shot ENOSPC can only land on a commit's
	// write step: the journal rescues by compacting in place of the
	// failed batch — the batch is durable via the snapshot, nothing
	// poisons, no waiter sees an error. (On the first pair the fault
	// could land on a threshold compaction's own temp write instead,
	// which is the already-priced phase-1 shape.)
	p2, err := newDiskPair(cfg, compactLanes, 2, store.LanesWithoutSync())
	if err != nil {
		return diskRow{}, err
	}
	defer p2.close()
	p2.in.Arm(storefault.Fault{Op: storefault.OpWrite, Path: laneFile(0), Count: 1, Err: syscall.ENOSPC})
	payload2 := func(i, k int) []byte { return []byte(fmt.Sprintf("enospc2-%02d-%06d", i, k)) }
	got2, err := p2.phase(n, payload2)
	if err != nil {
		return diskRow{}, err
	}

	row := diskRow{
		fault:     "ENOSPC x2 at compact temp, x1 at lane write",
		lanes:     compactLanes,
		sent:      2 * n * len(p.spis),
		healthyOK: true,
	}
	for i := range p.spis {
		if got[i] != n || got2[i] != n {
			row.healthyOK = false
		}
	}
	if q := p.lanes.Quarantined(); len(q) != 0 {
		return diskRow{}, fmt.Errorf("transient ENOSPC quarantined lanes %v, want none", q)
	}
	if q := p2.lanes.Quarantined(); len(q) != 0 {
		return diskRow{}, fmt.Errorf("rescued ENOSPC quarantined lanes %v, want none", q)
	}
	var rescues uint64
	for _, j := range p2.lanes.LaneJournals() {
		rescues += j.Rescues()
	}
	if rescues == 0 {
		return diskRow{}, errors.New("lane-write ENOSPC was never rescued by compaction")
	}
	for _, dir := range []string{filepath.Join(p.dir, "victim"), filepath.Join(p2.dir, "victim")} {
		strays, err := filepath.Glob(filepath.Join(dir, "*.compact*"))
		if err != nil {
			return diskRow{}, err
		}
		if len(strays) != 0 {
			return diskRow{}, fmt.Errorf("stranded compaction temps: %v", strays)
		}
	}
	p.replayAll()
	p2.replayAll()
	row.delivered = len(p.seen) + len(p2.seen)
	row.replays = p.replays + p2.replays
	row.detail = fmt.Sprintf("%d faults fired, %d rescues, %d compactions, 0 stray temps",
		compactFired+p2.in.Fired(), rescues, compactions)
	return row, nil
}

// singleLaneEIORow kills one lane of cfg.Lanes under live replication:
// every write to that lane fails EIO, forever, while a cluster standby
// tails the medium. Only that lane quarantines and only its SA stalls —
// the other lanes keep full throughput. Then the "disk is replaced"
// (injector disarmed), the lane is repaired from the standby's replica,
// the SAs are woken, and traffic on the dead lane resumes.
func singleLaneEIORow(cfg DiskfaultConfig) (diskRow, error) {
	p, err := newDiskPair(cfg, cfg.Lanes, 1, store.LanesWithoutSync())
	if err != nil {
		return diskRow{}, err
	}
	defer p.close()

	sjPath := filepath.Join(p.dir, "standby")
	sj, err := store.OpenLanes(sjPath, store.LanesCount(cfg.Lanes), store.LanesWithoutSync())
	if err != nil {
		return diskRow{}, err
	}
	defer sj.Close()
	sb, err := cluster.NewStandby(cluster.Config{
		Source: p.lanes, Journal: sj, K: diskfaultK, W: 64,
	})
	if err != nil {
		return diskRow{}, err
	}
	if err := sb.Start(); err != nil {
		return diskRow{}, err
	}
	defer sb.Stop()
	if err := sb.Mirror(p.b.Snapshot()); err != nil {
		return diskRow{}, err
	}

	payload := func(i, k int) []byte { return []byte(fmt.Sprintf("eio-%03d-%06d", i, k)) }
	got1, err := p.phase(cfg.Packets, payload)
	if err != nil {
		return diskRow{}, err
	}
	for i, g := range got1 {
		if g != cfg.Packets {
			return diskRow{}, fmt.Errorf("pre-fault SA %#x delivered %d/%d", p.spis[i], g, cfg.Packets)
		}
	}
	floors := p.committedFloor()

	// Kill the last lane's disk: every write EIO, forever.
	dead := cfg.Lanes - 1
	p.in.Arm(storefault.Fault{Op: storefault.OpWrite, Path: laneFile(dead), Err: syscall.EIO})
	payload2 := func(i, k int) []byte { return []byte(fmt.Sprintf("eio2-%03d-%06d", i, k)) }
	got2, err := p.phase(cfg.Packets, payload2)
	if err != nil {
		return diskRow{}, err
	}

	row := diskRow{
		fault:       fmt.Sprintf("write EIO forever on lane %d (replicated)", dead),
		lanes:       cfg.Lanes,
		quarantined: 1,
		healthyOK:   true,
	}
	for i, lane := range p.lane {
		if lane == dead {
			if got2[i] >= cfg.Packets {
				return diskRow{}, fmt.Errorf("SA %#x on dead lane %d never stalled", p.spis[i], dead)
			}
			row.stalled += cfg.Packets - got2[i]
		} else if got2[i] != cfg.Packets {
			row.healthyOK = false
		}
	}
	if q := p.lanes.Quarantined(); len(q) != 1 || q[0] != dead {
		return diskRow{}, fmt.Errorf("quarantined lanes %v, want [%d]", q, dead)
	}
	if d := p.b.Degraded(); len(d) != 1 || d[0] != dead {
		return diskRow{}, fmt.Errorf("gateway degraded %v, want [%d]", d, dead)
	}

	// Replace the disk and repair the lane from the standby's replica,
	// then wake the population (FETCH + 2K leap + SAVE) so the stalled
	// SA's horizon unfreezes.
	p.in.Disarm()
	if err := sb.RepairSourceLane(dead); err != nil {
		return diskRow{}, fmt.Errorf("standby lane repair: %w", err)
	}
	if q := p.lanes.Quarantined(); len(q) != 0 {
		return diskRow{}, fmt.Errorf("lanes still quarantined after repair: %v", q)
	}
	if err := p.b.WakeAll(); err != nil {
		return diskRow{}, fmt.Errorf("post-repair wake: %w", err)
	}
	if err := p.checkCommitted(floors); err != nil {
		return diskRow{}, err
	}

	// Phase 3: the wake leap sacrifices at most 2K fresh packets per SA
	// (the paper's bounded wake bill); past that, every lane — the
	// repaired one included — must deliver again.
	payload3 := func(i, k int) []byte { return []byte(fmt.Sprintf("eio3-%03d-%06d", i, k)) }
	got3, err := p.phase(cfg.Packets, payload3)
	if err != nil {
		return diskRow{}, err
	}
	wakeBill := 2 * int(diskfaultK)
	resumed := 0
	for i, lane := range p.lane {
		if got3[i] < cfg.Packets-wakeBill-1 {
			return diskRow{}, fmt.Errorf("post-repair SA %#x (lane %d) delivered %d/%d, want >= %d",
				p.spis[i], lane, got3[i], cfg.Packets, cfg.Packets-wakeBill-1)
		}
		if lane == dead {
			resumed = got3[i]
			if got3[i] == 0 {
				return diskRow{}, errors.New("repaired lane's SA never resumed")
			}
		}
	}
	var repairs uint64
	for _, j := range p.lanes.LaneJournals() {
		repairs += j.Repairs()
	}
	if repairs != 1 {
		return diskRow{}, fmt.Errorf("repairs counter %d, want 1", repairs)
	}
	p.replayAll()
	row.sent = 3 * cfg.Packets * len(p.spis)
	row.delivered = len(p.seen)
	row.replays = p.replays
	row.detail = fmt.Sprintf("repaired lane %d from standby, SA resumed %d pkts", dead, resumed)
	return row, nil
}
