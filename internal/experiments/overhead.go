package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"antireplay/internal/core"
	"antireplay/internal/store"
)

// OverheadConfig parameterizes the SAVE-overhead measurement.
type OverheadConfig struct {
	// Messages is how many sequence numbers each configuration hands out.
	Messages int
	// Ks is the sweep of SAVE intervals; 0 denotes the baseline (no saves).
	Ks []uint64
}

// DefaultOverheadConfig sweeps K over three orders of magnitude.
func DefaultOverheadConfig() OverheadConfig {
	return OverheadConfig{
		Messages: 200000,
		Ks:       []uint64{0, 1, 5, 25, 100, 1000},
	}
}

// SaveOverhead measures the steady-state cost the SAVE machinery adds to
// the send path as a function of K, on a real file store with background
// (goroutine) saves and on an in-memory store. The paper's design goal is
// that the background SAVE "does not block the normal communication": the
// per-message overhead should fall roughly as 1/K and vanish against the
// baseline for the paper's K = 25.
func SaveOverhead(cfg OverheadConfig) (*Table, error) {
	t := &Table{
		ID:    "overhead",
		Title: "Steady-state SAVE overhead vs K",
		Note: "K=0 is the baseline protocol (no saves). Background saves run on goroutines; " +
			"expect ns/msg to approach the baseline as K grows (overhead ~ 1/K).",
		Columns: []string{"store", "K", "messages", "ns_per_msg", "saves_started"},
	}

	dir, err := os.MkdirTemp("", "overhead-*")
	if err != nil {
		return nil, fmt.Errorf("experiments: overhead tempdir: %w", err)
	}
	defer os.RemoveAll(dir)

	for _, medium := range []string{"mem", "file"} {
		for _, k := range cfg.Ks {
			nsPerMsg, saves, err := overheadRun(dir, medium, k, cfg.Messages)
			if err != nil {
				return nil, err
			}
			kLabel := fmt.Sprint(k)
			if k == 0 {
				kLabel = "baseline"
			}
			t.AddRow(medium, kLabel, fmt.Sprint(cfg.Messages),
				fmt.Sprintf("%.1f", nsPerMsg), fmt.Sprint(saves))
		}
	}
	return t, nil
}

func overheadRun(dir, medium string, k uint64, messages int) (nsPerMsg float64, saves uint64, err error) {
	var st store.Store
	switch medium {
	case "mem":
		st = &store.Mem{}
	case "file":
		st = store.NewFile(filepath.Join(dir, fmt.Sprintf("ovh-%s-%d.dat", medium, k)), store.WithoutSync())
	default:
		return 0, 0, fmt.Errorf("experiments: unknown medium %q", medium)
	}

	cfg := core.SenderConfig{K: k, Store: st}
	if k == 0 {
		cfg = core.SenderConfig{Baseline: true}
	}
	var saver *store.AsyncSaver
	if k > 0 {
		saver = store.NewAsyncSaver(st)
		cfg.Saver = saver
	}
	snd, err := core.NewSender(cfg)
	if err != nil {
		return 0, 0, err
	}

	start := time.Now()
	for i := 0; i < messages; i++ {
		if _, err := snd.Next(); err != nil {
			return 0, 0, err
		}
	}
	elapsed := time.Since(start)
	if saver != nil {
		saver.Close() // wait for in-flight saves before reading stats
	}
	return float64(elapsed.Nanoseconds()) / float64(messages), snd.Stats().SavesStarted, nil
}
