package experiments

import (
	"strconv"
	"testing"
	"time"
)

// TestGatewayPersistenceFsyncReduction is the acceptance gate for the
// shared-journal refactor: at 1000 SAs, one Journal + SaverPool must issue
// at least 10x fewer fsyncs than the per-file-store equivalent.
func TestGatewayPersistenceFsyncReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping 1k-SA persistence sweep")
	}
	tbl, err := GatewayPersistence(GatewayConfig{
		SACounts:   []int{1000},
		SavesPerSA: 10,
		Workers:    16,
		BatchDelay: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatalf("GatewayPersistence: %v", err)
	}
	t.Logf("\n%s", tbl)

	col := func(name string) uint64 {
		for i, c := range tbl.Columns {
			if c == name {
				v, err := strconv.ParseUint(tbl.Rows[0][i], 10, 64)
				if err != nil {
					t.Fatalf("parse %s: %v", name, err)
				}
				return v
			}
		}
		t.Fatalf("no column %q", name)
		return 0
	}
	journal, perFile := col("journal_fsyncs"), col("perfile_fsyncs")
	if journal == 0 {
		t.Fatal("journal_fsyncs = 0: durable saves must fsync")
	}
	if journal*10 > perFile {
		t.Errorf("journal fsyncs = %d, per-file = %d: want >= 10x reduction", journal, perFile)
	}
}
