package experiments

import (
	"strings"
	"testing"
)

// TestRekeyRolloverAcceptance is the acceptance gate for the rekey
// subsystem: under seeded IKE and data loss (including the >= 5% point)
// with a receiver reset injected mid-exchange, every tunnel's rollover
// converges with zero false rejections of in-flight old-SPI packets, zero
// replay acceptances, and every retired generation's journal cells erased.
func TestRekeyRolloverAcceptance(t *testing.T) {
	cfg := DefaultRekeyConfig()
	cfg.FastDH = true
	cfg.LossProbs = []float64{0.05, 0.25}
	tab, err := RekeyRollover(cfg)
	if err != nil {
		t.Fatalf("RekeyRollover: %v", err)
	}
	t.Logf("\n%s", tab)

	col := func(name string) int {
		for i, c := range tab.Columns {
			if c == name {
				return i
			}
		}
		t.Fatalf("column %q missing", name)
		return -1
	}
	for _, row := range tab.Rows {
		loss := row[col("ike_loss")]
		if got := row[col("rollovers")]; got != "4" {
			t.Errorf("loss %s: rollovers = %s, want 4 (one per tunnel)", loss, got)
		}
		if got := row[col("false_rejects")]; got != "0" {
			t.Errorf("loss %s: false_rejects = %s, want 0", loss, got)
		}
		if got := row[col("replay_accepts")]; got != "0" {
			t.Errorf("loss %s: replay_accepts = %s, want 0", loss, got)
		}
		inflight := row[col("inflight_ok")]
		if parts := strings.Split(inflight, "/"); len(parts) != 2 || parts[0] != parts[1] {
			t.Errorf("loss %s: inflight_ok = %s, want all delivered", loss, inflight)
		}
		erased := row[col("cells_erased")]
		if parts := strings.Split(erased, "/"); len(parts) != 2 || parts[0] != parts[1] {
			t.Errorf("loss %s: cells_erased = %s, want all erased", loss, erased)
		}
	}
}

// TestRekeyExperimentRegistered keeps the registry entry wired up.
func TestRekeyExperimentRegistered(t *testing.T) {
	r, ok := ByID("rekey")
	if !ok {
		t.Fatal("rekey experiment not registered")
	}
	if _, err := r.Run(true); err != nil {
		t.Fatalf("fast run: %v", err)
	}
}
