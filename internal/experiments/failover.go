package experiments

import (
	"errors"
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"time"

	"antireplay/internal/cluster"
	"antireplay/internal/core"
	"antireplay/internal/dpd"
	"antireplay/internal/ipsec"
	"antireplay/internal/netsim"
	"antireplay/internal/store"
)

// FailoverConfig parameterizes the HA failover experiment.
type FailoverConfig struct {
	// Seed drives all randomness (loss draws, key material).
	Seed int64
	// LossProbs is the sweep of per-direction packet loss probabilities;
	// DPD probes and acks are lost with the same probability.
	LossProbs []float64
	// Tunnels is the number of SA pairs between the peer and the cluster.
	Tunnels int
	// PacketsPerPhase is the number of bidirectional rounds per tunnel in
	// each traffic phase (before the failover, between the failovers, and
	// after the failback).
	PacketsPerPhase int
	// K is the SAVE interval of every SA.
	K uint64
	// Lanes is the number of journal commit lanes per node; <= 1 runs the
	// single-file journal. With more, every node's medium is a laned
	// journal and replication runs lane-to-lane.
	Lanes int
}

// DefaultFailoverConfig sweeps loss up to 25% over laned journals.
func DefaultFailoverConfig() FailoverConfig {
	return FailoverConfig{
		Seed:            1,
		LossProbs:       []float64{0, 0.05, 0.25},
		Tunnels:         4,
		PacketsPerPhase: 200,
		K:               25,
		Lanes:           8,
	}
}

// Failover runs the cluster subsystem end to end: a peer gateway drives
// bidirectional traffic through a primary whose journal replicates to a
// standby; the primary crashes; the standby is promoted by the epoch-fenced
// takeover (the paper's wake-up run against the replica); dead-peer
// detection on the surviving peer sees the outage and the promoted node's
// secured resurrection announcement, exactly the §6 flow. The experiment
// then fails BACK: the original node reboots, re-syncs as a standby, and is
// promoted while the interim primary is still alive — a deliberate split
// brain whose deposed writer must stall and whose journal writes must be
// rejected.
//
// Asserted invariants (the test fails a row otherwise):
//
//   - zero replay acceptances: after every promotion, replaying the entire
//     recorded wire history re-delivers nothing;
//   - the false-reject window after the crash failover is bounded by the
//     per-SA wake window (replicated value + leap − edge at crash), whose
//     sum the replication-lag gauges bound: window <= lag_values +
//     tunnels*(leap + 2K);
//   - no counter regression across the double failover: every failback
//     sender resumes at or above the interim primary's last used number;
//   - the split-brained deposed primary stalls within its horizon (at most
//     leap sequence numbers per SA) and its journal rejects writes.
func Failover(cfg FailoverConfig) (*Table, error) {
	t := &Table{
		ID:    "failover",
		Title: "HA cluster: journal replication, epoch-fenced takeover, failback",
		Note: "Expect zero replay_accepts and zero regressions at every loss rate: " +
			"takeover wakes each SA from its replicated counter, so the paper's " +
			"no-reuse/no-replay theorems carry over to failover verbatim. " +
			"false_rejects is the failover analogue of the paper's <= 2K " +
			"post-reset sacrifice, bounded by window_bound = sum over SAs of " +
			"(replicated value + leap - edge at crash), itself bounded by the " +
			"reported replication lag plus the leap per SA. deposed_seals counts " +
			"how far the split-brained old primary got before stalling (< leap " +
			"per SA, fenced journal).",
		Columns: []string{"loss", "delivered", "lag_records", "lag_values",
			"false_rejects", "window_bound", "blackout", "replay_accepts",
			"deposed_seals", "epochs", "regressions"},
	}
	for _, p := range cfg.LossProbs {
		row, err := failoverRow(cfg, p)
		if err != nil {
			return nil, fmt.Errorf("experiments: failover loss %.2f: %w", p, err)
		}
		t.AddRow(row...)
	}
	return t, nil
}

// ReplicationThroughput measures the journal replication pipeline in its
// deployment shape — concurrent producers saving into a source journal
// whose sync follower applies the tailed record stream into a follower
// journal in group-committed batches, acking each batch — and returns
// records per second of end-to-end (save-to-ack) throughput. Used by
// cmd/benchtables to seed the machine-readable perf trajectory.
func ReplicationThroughput(records, producers int) (float64, error) {
	dir, err := os.MkdirTemp("", "replthroughput-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	src, err := store.OpenJournal(filepath.Join(dir, "src.log"), store.JournalWithoutSync())
	if err != nil {
		return 0, err
	}
	defer src.Close()
	dst, err := store.OpenJournal(filepath.Join(dir, "dst.log"), store.JournalWithoutSync())
	if err != nil {
		return 0, err
	}
	defer dst.Close()

	tl, err := src.Follow()
	if err != nil {
		return 0, err
	}
	defer tl.Close()
	if err := src.SyncFollower(tl); err != nil {
		return 0, err
	}
	applyDone := make(chan error, 1)
	go func() {
		buf := make([]store.TailRecord, 512)
		for {
			n, err := tl.Recv(buf)
			if err != nil {
				if errors.Is(err, store.ErrClosed) {
					err = nil
				}
				applyDone <- err
				return
			}
			if err := dst.Apply(buf[:n]); err != nil {
				// Release the sync-follower gate before reporting, or the
				// producers' Saves block forever on acks that never come.
				tl.Close()
				applyDone <- err
				return
			}
			tl.Ack(buf[n-1].Seq + 1)
		}
	}()

	if producers < 1 {
		producers = 1
	}
	per := records / producers
	errs := make(chan error, producers)
	start := time.Now()
	for p := 0; p < producers; p++ {
		go func(p int) {
			key := fmt.Sprintf("sa/%04d", p)
			for i := 1; i <= per; i++ {
				if err := src.Cell(key).Save(uint64(i)); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(p)
	}
	for p := 0; p < producers; p++ {
		if err := <-errs; err != nil {
			return 0, err
		}
	}
	elapsed := time.Since(start)
	tl.Close()
	if err := <-applyDone; err != nil {
		return 0, err
	}
	return float64(per*producers) / elapsed.Seconds(), nil
}

// failoverSim bundles one row's topology and accounting.
type failoverSim struct {
	cfg  FailoverConfig
	loss float64

	e   *netsim.Engine
	A   *ipsec.Gateway // the surviving peer
	cur *ipsec.Gateway // current B-side primary (swapped by promotions)
	mon *dpd.Monitor

	abSPI, baSPI []uint32

	history   [][]byte        // every A->B wire ever sealed (data + probes)
	delivered map[string]bool // wire -> delivered at least once

	nDelivered   int
	nFalseReject int
	nLost        int
}

func (s *failoverSim) addrA(i int) netip.Addr {
	return netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)})
}
func (s *failoverSim) addrB(i int) netip.Addr {
	return netip.AddrFrom4([4]byte{10, 1, byte(i >> 8), byte(i)})
}

// sealA seals one A->B payload on tunnel i, retrying save-lag backpressure.
func (s *failoverSim) sealA(i int, payload []byte) ([]byte, error) {
	for tries := 0; ; tries++ {
		w, err := s.A.Seal(s.addrA(i), s.addrB(i), payload)
		if err == nil {
			s.history = append(s.history, w)
			return w, nil
		}
		if !errors.Is(err, core.ErrSaveLag) || tries > 100000 {
			return nil, fmt.Errorf("seal A tunnel %d: %w", i, err)
		}
		time.Sleep(10 * time.Microsecond)
	}
}

// openB opens one wire at the current B-side primary, deferring through
// horizon backpressure; reports whether it delivered.
func (s *failoverSim) openB(w []byte) (bool, error) {
	for tries := 0; ; tries++ {
		payload, v, err := s.cur.Open(w)
		if err != nil {
			return false, nil // down/unknown-SPI during a swap: network loss
		}
		if v == core.VerdictHorizon && tries < 100000 {
			time.Sleep(10 * time.Microsecond)
			continue
		}
		if !v.Delivered() {
			return false, nil
		}
		s.delivered[string(w)] = true
		// Control payloads: a probe is answered on the reverse SA.
		if kind, probeSeq, ok := dpd.ParsePayload(payload); ok && kind == "probe" {
			s.sendToA(0, dpd.AckPayload(probeSeq))
		}
		return true, nil
	}
}

// sendToA seals a B->A payload on tunnel i at the current primary and
// delivers it to A (subject to loss), feeding the DPD monitor.
func (s *failoverSim) sendToA(i int, payload []byte) {
	for tries := 0; ; tries++ {
		w, err := s.cur.Seal(s.addrB(i), s.addrA(i), payload)
		if err != nil {
			if errors.Is(err, core.ErrSaveLag) && tries < 100000 {
				time.Sleep(10 * time.Microsecond)
				continue
			}
			return // down, draining, fenced: the reply is simply not sent
		}
		if s.e.Rand().Float64() < s.loss {
			return
		}
		pl, v, err := s.A.Open(w)
		if err != nil || !v.Delivered() {
			return
		}
		if kind, probeSeq, ok := dpd.ParsePayload(pl); ok {
			switch kind {
			case "ack":
				s.mon.NoteAck(probeSeq)
			case "resync":
				s.mon.NoteInbound()
			}
		} else {
			s.mon.NoteInbound()
		}
		return
	}
}

// phase drives rounds of bidirectional traffic across every tunnel,
// counting deliveries, network losses, and false rejects (a non-lost fresh
// packet the receiver discarded).
func (s *failoverSim) phase(rounds int) error {
	const interval = 20 * time.Microsecond
	for n := 0; n < rounds; n++ {
		for i := 0; i < s.cfg.Tunnels; i++ {
			w, err := s.sealA(i, []byte(fmt.Sprintf("data %d/%d", n, i)))
			if err != nil {
				return err
			}
			if s.e.Rand().Float64() < s.loss {
				s.nLost++
			} else {
				ok, err := s.openB(w)
				if err != nil {
					return err
				}
				if ok {
					s.nDelivered++
				} else {
					s.nFalseReject++
				}
			}
			// The echo keeps the peer's DPD monitor fed.
			s.sendToA(i, []byte("echo"))
		}
		s.e.RunFor(interval)
	}
	return nil
}

// replayAll replays the full recorded history into the current primary and
// counts re-deliveries of wires that already delivered once.
func (s *failoverSim) replayAll() int {
	replays := 0
	for _, w := range s.history {
		_, v, _ := s.cur.Open(w)
		if v.Delivered() {
			if s.delivered[string(w)] {
				replays++
			}
			s.delivered[string(w)] = true
		}
	}
	return replays
}

func failoverRow(cfg FailoverConfig, loss float64) ([]string, error) {
	dir, err := os.MkdirTemp("", "failover-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// Each node's medium: a laned journal directory when cfg.Lanes asks for
	// one, else the single-file journal (same helper reopens either — the
	// failback reboot below must come back on the same medium shape).
	openJ := func(name string) (store.Medium, error) {
		if cfg.Lanes > 1 {
			return store.OpenLanes(filepath.Join(dir, name),
				store.LanesCount(cfg.Lanes), store.LanesWithoutSync())
		}
		return store.OpenJournal(filepath.Join(dir, name+".log"), store.JournalWithoutSync())
	}
	jA, err := openJ("peer")
	if err != nil {
		return nil, err
	}
	defer jA.Close()
	j1, err := openJ("node1")
	if err != nil {
		return nil, err
	}
	defer j1.Close()
	j2, err := openJ("node2")
	if err != nil {
		return nil, err
	}
	defer j2.Close()

	s := &failoverSim{
		cfg: cfg, loss: loss,
		e:         netsim.NewEngine(cfg.Seed),
		delivered: make(map[string]bool),
	}
	rng := s.e.Rand()
	keys := func() ipsec.KeyMaterial {
		k := ipsec.KeyMaterial{AuthKey: make([]byte, ipsec.AuthKeySize)}
		rng.Read(k.AuthKey)
		return k
	}

	if s.A, err = ipsec.NewGateway(ipsec.GatewayConfig{Journal: jA, K: cfg.K}); err != nil {
		return nil, err
	}
	defer s.A.Close()
	B1, err := ipsec.NewGateway(ipsec.GatewayConfig{Journal: j1, K: cfg.K})
	if err != nil {
		return nil, err
	}
	defer B1.Close()
	s.cur = B1

	for i := 0; i < cfg.Tunnels; i++ {
		ab, ba := uint32(0xA000+i), uint32(0xB000+i)
		s.abSPI = append(s.abSPI, ab)
		s.baSPI = append(s.baSPI, ba)
		kAB, kBA := keys(), keys()
		selAB := ipsec.Selector{Src: netip.PrefixFrom(s.addrA(i), 32), Dst: netip.PrefixFrom(s.addrB(i), 32)}
		selBA := ipsec.Selector{Src: netip.PrefixFrom(s.addrB(i), 32), Dst: netip.PrefixFrom(s.addrA(i), 32)}
		if _, err := s.A.AddOutbound(ab, kAB, selAB); err != nil {
			return nil, err
		}
		if _, err := s.A.AddInbound(ba, kBA); err != nil {
			return nil, err
		}
		if _, err := B1.AddInbound(ab, kAB); err != nil {
			return nil, err
		}
		if _, err := B1.AddOutbound(ba, kBA, selBA); err != nil {
			return nil, err
		}
	}

	sb, err := cluster.NewStandby(cluster.Config{Source: j1, Journal: j2, K: cfg.K})
	if err != nil {
		return nil, err
	}
	defer sb.Stop()
	if err := sb.Start(); err != nil {
		return nil, err
	}
	if err := sb.Mirror(B1.Snapshot()); err != nil {
		return nil, err
	}

	// Dead-peer detection on the surviving peer, probing over tunnel 0.
	s.mon, err = dpd.NewMonitor(dpd.Config{
		Engine:      s.e,
		IdleTimeout: time.Millisecond,
		AckTimeout:  500 * time.Microsecond,
		MaxProbes:   2,
		HoldTime:    time.Second,
		SendProbe: func(probeSeq uint64) {
			w, err := s.sealA(0, dpd.ProbePayload(probeSeq))
			if err != nil {
				return
			}
			if s.e.Rand().Float64() < s.loss {
				return
			}
			s.openB(w) //nolint:errcheck // an unanswered probe IS the signal
		},
	})
	if err != nil {
		return nil, err
	}

	// Phase 1: steady-state traffic through node 1.
	if err := s.phase(cfg.PacketsPerPhase); err != nil {
		return nil, err
	}
	preRejects := s.nFalseReject // horizon-settled steady state should have none

	// Capture the crash-instant truth: per-tunnel receive edges and used
	// send counters on the primary, and the replication gauges.
	edgeAtCrash := make([]uint64, cfg.Tunnels)
	for i, ab := range s.abSPI {
		in, _ := B1.SAD().Lookup(ab)
		edgeAtCrash[i] = in.Receiver().Edge()
	}
	lagRecords := sb.Stats().LagRecords
	lagValues := sb.LagValues()

	// Crash node 1 and let the outage run: DPD probes go unanswered and the
	// peer declares the cluster peer dead (within the §6 hold time).
	B1.ResetAll()
	crashAt := s.e.Now()
	s.e.RunFor(5 * time.Millisecond)

	// Epoch-fenced takeover; the promoted node announces itself with the §6
	// secured resurrection message, whose leaped sequence number the peer
	// necessarily accepts.
	gw2, epoch1, err := sb.Takeover()
	if err != nil {
		return nil, err
	}
	s.cur = gw2
	for s.mon.State() != dpd.StateAlive {
		s.sendToA(0, dpd.ResyncPayload())
		s.e.RunFor(100 * time.Microsecond)
		if s.e.Now()-crashAt > time.Second {
			return nil, fmt.Errorf("peer never saw the resurrection (monitor %v)", s.mon.State())
		}
	}
	blackout := s.e.Now() - crashAt

	// The false-reject window is exactly (wake edge - crash edge) per SA.
	var windowBound uint64
	for i, ab := range s.abSPI {
		in, ok := gw2.SAD().Lookup(ab)
		if !ok {
			return nil, fmt.Errorf("promoted gateway lacks inbound %#x", ab)
		}
		wake := in.Receiver().Edge()
		if wake < edgeAtCrash[i] {
			return nil, fmt.Errorf("tunnel %d: wake edge %d below crash edge %d (replay window!)",
				i, wake, edgeAtCrash[i])
		}
		windowBound += wake - edgeAtCrash[i]
	}
	leap := core.Leap(cfg.K, core.DefaultLeapFactor)
	if bound := lagValues + uint64(cfg.Tunnels)*(leap+2*cfg.K); windowBound > bound {
		return nil, fmt.Errorf("window bound %d exceeds lag-derived bound %d (lag_values=%d)",
			windowBound, bound, lagValues)
	}

	// Phase 2 through the promoted node; its false rejects are the failover
	// sacrifice and must fit the window.
	s.nFalseReject = 0
	if err := s.phase(cfg.PacketsPerPhase / 2); err != nil {
		return nil, err
	}
	falseRejects := s.nFalseReject
	if uint64(falseRejects) > windowBound {
		return nil, fmt.Errorf("false rejects %d exceed window bound %d", falseRejects, windowBound)
	}
	replays := s.replayAll()

	// Node 1 reboots and re-syncs as the standby of the interim primary.
	B1.Close()
	if err := j1.Close(); err != nil {
		return nil, err
	}
	j1b, err := openJ("node1")
	if err != nil {
		return nil, err
	}
	defer j1b.Close()
	sb2, err := cluster.NewStandby(cluster.Config{Source: j2, Journal: j1b, K: cfg.K})
	if err != nil {
		return nil, err
	}
	defer sb2.Stop()
	if err := sb2.Start(); err != nil {
		return nil, err
	}
	if err := sb2.Mirror(gw2.Snapshot()); err != nil {
		return nil, err
	}
	if err := s.phase(cfg.PacketsPerPhase / 4); err != nil {
		return nil, err
	}

	// Failback as a SPLIT BRAIN: promote node 1 while the interim primary
	// is still up and writing. Record the interim primary's used counters
	// first — the regression check.
	used2 := make([]uint64, cfg.Tunnels)
	for i, ba := range s.baSPI {
		out, _ := gw2.Outbound(ba)
		used2[i] = out.Sender().Seq()
	}
	gw3, epoch2, err := sb2.Takeover()
	if err != nil {
		return nil, err
	}

	// The deposed primary keeps writing: its journal is fenced, so every SA
	// stalls within its horizon — fewer than leap numbers each.
	deposedSeals := 0
	for i := 0; i < cfg.Tunnels; i++ {
		for n := 0; n < int(2*leap); n++ {
			if _, err := gw2.Seal(s.addrB(i), s.addrA(i), []byte("split-brain")); err != nil {
				break
			}
			deposedSeals++
		}
	}
	if deposedSeals > cfg.Tunnels*int(leap) {
		return nil, fmt.Errorf("deposed primary sealed %d packets, beyond its horizon (%d per SA)",
			deposedSeals, leap)
	}
	if err := j2.Cell(ipsec.OutboundKey(s.baSPI[0])).Save(1 << 40); !errors.Is(err, store.ErrFenced) {
		return nil, fmt.Errorf("deposed journal write = %v, want ErrFenced", err)
	}

	// The failback node serves; counters must not have regressed.
	s.cur = gw3
	regressions := 0
	for i, ba := range s.baSPI {
		out, ok := gw3.Outbound(ba)
		if !ok {
			return nil, fmt.Errorf("failback gateway lacks outbound %#x", ba)
		}
		if out.Sender().Seq() < used2[i] {
			regressions++
		}
	}
	if err := s.phase(cfg.PacketsPerPhase / 4); err != nil {
		return nil, err
	}
	replays += s.replayAll()

	return []string{
		fmt.Sprintf("%.0f%%", loss*100),
		fmt.Sprint(s.nDelivered),
		fmt.Sprint(lagRecords),
		fmt.Sprint(lagValues),
		fmt.Sprintf("%d (pre %d)", falseRejects, preRejects),
		fmt.Sprint(windowBound),
		fmt.Sprint(blackout),
		fmt.Sprint(replays),
		fmt.Sprint(deposedSeals),
		fmt.Sprintf("%d->%d", epoch1, epoch2),
		fmt.Sprint(regressions),
	}, nil
}
