package experiments

import (
	"fmt"
	"time"
)

// Fig1Config parameterizes the sender-reset analysis (paper Figure 1).
type Fig1Config struct {
	// K is Kp; the save delay is sized so one SAVE spans K/2 sends, giving
	// the cycle both an in-flight and a committed phase to reset within.
	K uint64
	// ResetOffsets are the send counts (relative to a save-cycle start in
	// steady state) at which to inject the reset, in [0, K).
	ResetOffsets []uint64
	// Seed drives the simulation.
	Seed int64
}

// DefaultFig1Config sweeps a full save cycle at the paper's K = 25.
func DefaultFig1Config() Fig1Config {
	return Fig1Config{
		K:            25,
		ResetOffsets: []uint64{0, 2, 5, 9, 12, 13, 15, 18, 21, 24},
		Seed:         1,
	}
}

// Fig1SenderReset reproduces Figure 1: a reset strikes the sender at a
// chosen offset within a steady-state save cycle; the experiment reports the
// value FETCH returns, the gap to the last used sequence number, the resume
// point, and the number of lost sequence numbers — all bounded by 2Kp —
// plus the count of fresh messages the receiver discards after the wake-up
// (zero, §5 condition (i)).
func Fig1SenderReset(cfg Fig1Config) (*Table, error) {
	t := &Table{
		ID:    "fig1",
		Title: "Sender reset within a save cycle (paper Fig. 1)",
		Note: fmt.Sprintf("Kp=%d, leap=2Kp=%d. Expect: lost <= 2Kp always; "+
			"gap largest when the reset lands mid-save (torn write); zero fresh discards after wake.",
			cfg.K, 2*cfg.K),
		Columns: []string{"reset@send", "save", "fetched", "last_used", "gap",
			"resumed", "lost", "bound_2K", "ok", "fresh_discards"},
	}

	for _, off := range cfg.ResetOffsets {
		if off >= cfg.K {
			return nil, fmt.Errorf("experiments: fig1 offset %d >= K %d", off, cfg.K)
		}
		row, err := fig1Row(cfg, off)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func fig1Row(cfg Fig1Config, off uint64) ([]string, error) {
	fc := DefaultFlowConfig(cfg.Seed)
	fc.Kp = cfg.K
	fc.Kq = cfg.K
	// Size the save to span half a trigger interval: the cycle has an
	// in-flight phase (offsets < K/2) and a committed phase (offsets >= K/2).
	fc.SaveDelay = time.Duration(cfg.K/2) * fc.SendInterval
	f, err := NewFlow(fc)
	if err != nil {
		return nil, err
	}

	// Steady state: the 4th save cycle starts at send 4K (s = 4K+1, SAVE(4K+1)).
	cycleStart := 4 * cfg.K
	resetAt := cycleStart + off
	const outage = time.Millisecond

	var (
		lastUsed uint64
		inFlight bool
		fetched  uint64
	)
	f.AtSendCount(resetAt, func() {
		lastUsed = f.LastSent()
		inFlight = f.senderSaver.InFlight()
		f.Sender.Reset()
		f.Engine.After(outage, func() {
			v, _, err := f.SenderStore.Fetch()
			if err == nil {
				fetched = v
			}
			f.Sender.Wake()
		})
	})

	f.StartTraffic(time.Second)
	horizon := time.Duration(resetAt)*fc.SendInterval + outage + 10*time.Millisecond
	f.Run(horizon)

	resumed := fetched + 2*cfg.K
	gap := lastUsed - fetched
	lost := resumed - lastUsed - 1
	bound := 2 * cfg.K
	saveState := "committed"
	if inFlight {
		saveState = "in-flight"
	}
	freshDiscards := f.Matrix.FreshDiscarded()
	ok := lost <= bound && freshDiscards == 0

	return []string{
		fmt.Sprint(resetAt), saveState, fmt.Sprint(fetched), fmt.Sprint(lastUsed),
		fmt.Sprint(gap), fmt.Sprint(resumed), fmt.Sprint(lost), fmt.Sprint(bound),
		fmt.Sprint(ok), fmt.Sprint(freshDiscards),
	}, nil
}

// Fig2Config parameterizes the receiver-reset analysis (paper Figure 2).
type Fig2Config struct {
	// K is Kq.
	K uint64
	// ResetOffsets are receive counts within a steady-state save cycle.
	ResetOffsets []uint64
	// Seed drives the simulation.
	Seed int64
}

// DefaultFig2Config sweeps a full save cycle at the paper's K = 25.
func DefaultFig2Config() Fig2Config {
	return Fig2Config{
		K:            25,
		ResetOffsets: []uint64{0, 2, 5, 9, 12, 13, 15, 18, 21, 24},
		Seed:         1,
	}
}

// Fig2ReceiverReset reproduces Figure 2: a reset strikes the receiver at a
// chosen offset within a save cycle. After the wake-up the adversary replays
// the entire recorded history while the sender keeps transmitting. The
// experiment reports the fetched edge, the resume edge, the number of fresh
// messages sacrificed (bounded by 2Kq, §5 condition (ii)), and the number
// of replays accepted (zero — the safety theorem).
func Fig2ReceiverReset(cfg Fig2Config) (*Table, error) {
	t := &Table{
		ID:    "fig2",
		Title: "Receiver reset within a save cycle (paper Fig. 2)",
		Note: fmt.Sprintf("Kq=%d, leap=2Kq=%d. Expect: fresh sacrifices <= 2Kq; "+
			"no sequence number is ever delivered twice (dup_delivered = 0).", cfg.K, 2*cfg.K),
		Columns: []string{"reset@recv", "save", "fetched", "last_recv",
			"resumed_edge", "sacrificed", "bound_2K", "replayed", "dup_delivered", "ok"},
	}
	for _, off := range cfg.ResetOffsets {
		if off >= cfg.K {
			return nil, fmt.Errorf("experiments: fig2 offset %d >= K %d", off, cfg.K)
		}
		row, err := fig2Row(cfg, off)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func fig2Row(cfg Fig2Config, off uint64) ([]string, error) {
	fc := DefaultFlowConfig(cfg.Seed)
	fc.Kp = cfg.K
	fc.Kq = cfg.K
	fc.SaveDelay = time.Duration(cfg.K/2) * fc.SendInterval
	f, err := NewFlow(fc)
	if err != nil {
		return nil, err
	}

	cycleStart := 4 * cfg.K
	resetAt := cycleStart + off
	// A short outage keeps the sender's counter below the leaped edge at
	// wake time, exposing the fresh-sacrifice window the paper bounds.
	outage := 5 * fc.SendInterval

	var (
		lastRecv uint64
		inFlight bool
		fetched  uint64
	)
	f.AtObserveCount(resetAt, func() {
		lastRecv = f.Receiver.Edge()
		inFlight = f.receiverSaver.InFlight()
		f.Receiver.Reset()
		f.Engine.After(outage, func() {
			v, _, err := f.ReceiverStore.Fetch()
			if err == nil {
				fetched = v
			}
			f.Receiver.Wake()
			// The adversary replays the full history right after the wake.
			f.Replayer.ReplayAllAt(f.Engine.Now()+fc.SaveDelay+fc.Link.Delay, fc.SendInterval)
		})
	})

	f.StartTraffic(time.Second)
	horizon := time.Duration(resetAt)*fc.SendInterval + outage + 20*time.Millisecond
	f.Run(horizon)

	resumedEdge := fetched + 2*cfg.K
	sacrificed := f.Matrix.FreshDiscarded()
	replayed := f.Replayer.Injected()
	dups := f.DupDeliveries()
	bound := 2 * cfg.K
	saveState := "committed"
	if inFlight {
		saveState = "in-flight"
	}
	ok := sacrificed <= bound && dups == 0

	return []string{
		fmt.Sprint(resetAt), saveState, fmt.Sprint(fetched), fmt.Sprint(lastRecv),
		fmt.Sprint(resumedEdge), fmt.Sprint(sacrificed), fmt.Sprint(bound),
		fmt.Sprint(replayed), fmt.Sprint(dups), fmt.Sprint(ok),
	}, nil
}
