package experiments

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"time"

	"antireplay/internal/core"
	"antireplay/internal/ipsec"
	"antireplay/internal/netsim"
	"antireplay/internal/store"
	"antireplay/internal/wire"
)

// This experiment exercises the wire layer (PR 7): the fragment-scenario
// table shows the reassembler delivering everything a lossy, reordering,
// duplicating link can legally produce while rejecting the hostile
// fragment catalogue (overlap, tiny non-final, inconsistent totals,
// out-of-bounds offsets) with bounded reassembly memory; the udp_* rows
// measure real seal→UDP-loopback→verify line rate, gracefully skipped on
// hosts without sockets.

// TransportConfig parameterizes the wire-layer experiment.
type TransportConfig struct {
	// Seed drives every random draw.
	Seed int64
	// WireMTU is the fragment scenarios' simulated path MTU.
	WireMTU int
	// DatagramBytes sizes the multi-fragment datagrams.
	DatagramBytes int
	// Datagrams is the per-scenario datagram count.
	Datagrams int
	// FloodIDs is how many incomplete reassemblies the memory-bound flood
	// opens (each pinning DatagramBytes until evicted).
	FloodIDs int
	// ReassemblyBytes bounds the reassembler's memory in the flood.
	ReassemblyBytes int
	// UDPPackets is the line-rate sample size per payload size.
	UDPPackets int
	// UDPPayloads are the line-rate payload sizes.
	UDPPayloads []int
}

// DefaultTransportConfig returns the committed parameterization.
func DefaultTransportConfig() TransportConfig {
	return TransportConfig{
		Seed:            7,
		WireMTU:         512,
		DatagramBytes:   4096,
		Datagrams:       200,
		FloodIDs:        512,
		ReassemblyBytes: 1 << 18, // 256 KiB: a quarter of the flood's appetite
		UDPPackets:      20000,
		UDPPayloads:     []int{64, 512, 1400},
	}
}

// fragHarness is one simulated sender→receiver fragment path.
type fragHarness struct {
	engine *netsim.Engine
	sa, sb *wire.SimLink
	fa, fb *wire.FragLink
	got    int
}

func newFragHarness(seed int64, linkCfg netsim.LinkConfig, fragCfg wire.FragConfig) *fragHarness {
	h := &fragHarness{engine: netsim.NewEngine(seed)}
	h.sa, h.sb = wire.NewSimPair(h.engine, linkCfg, netsim.LinkConfig{})
	if fragCfg.Now == nil {
		fragCfg.Now = h.engine.Now
	}
	h.fa = wire.NewFragLink(h.sa, fragCfg)
	h.fb = wire.NewFragLink(h.sb, fragCfg)
	h.fb.OnRecv(func([]byte) { h.got++ })
	return h
}

// espDatagram fabricates an ESP-shaped datagram: leading SPI, then a
// deterministic payload of n-4 bytes.
func espDatagram(spi uint32, n int) []byte {
	p := make([]byte, n)
	binary.BigEndian.PutUint32(p, spi)
	for i := 4; i < n; i++ {
		p[i] = byte(i * 31)
	}
	return p
}

// Transport runs the wire-layer experiment.
func Transport(cfg TransportConfig) (*Table, error) {
	t := &Table{
		ID:    "transport",
		Title: "wire layer: fragment handling and UDP loopback line rate",
		Note: "fragment rows: sent datagrams vs delivered through a " +
			fmt.Sprintf("%d-byte path MTU; hostile scenarios MUST deliver 0 and be counted. ", cfg.WireMTU) +
			"udp rows: seal->socket->verify packets/sec on loopback (skipped without sockets).",
		Columns: []string{"scenario", "sent", "delivered", "hostile_drops", "other_drops", "per_sec", "detail"},
	}
	if err := fragScenarioRows(t, cfg); err != nil {
		return nil, err
	}
	udpLineRateRows(t, cfg)
	return t, nil
}

func fragScenarioRows(t *Table, cfg TransportConfig) error {
	mtuCfg := netsim.LinkConfig{MTU: cfg.WireMTU}
	fragCfg := wire.FragConfig{WireMTU: cfg.WireMTU}

	// Clean path: every datagram fragments and reassembles.
	h := newFragHarness(cfg.Seed, mtuCfg, fragCfg)
	for i := 0; i < cfg.Datagrams; i++ {
		if err := h.fa.Send(espDatagram(0x10, cfg.DatagramBytes)); err != nil {
			return err
		}
	}
	h.engine.Run()
	fs := h.fb.FragStats()
	if h.got != cfg.Datagrams || fs.HostileDrops != 0 {
		return fmt.Errorf("transport: clean path delivered %d/%d, hostile %d",
			h.got, cfg.Datagrams, fs.HostileDrops)
	}
	t.AddRow("fragmentation", itoa(cfg.Datagrams), itoa(h.got), "0", "0", "-",
		fmt.Sprintf("%d frames/datagram", fs.FragsRx/uint64(h.got)))

	// Impaired path: the link duplicates and reorders fragments. Duplicate
	// frames are byte-identical retransmissions — idempotent, never
	// condemned as overlap — and reordering is what reassembly is for.
	h = newFragHarness(cfg.Seed+1, netsim.LinkConfig{
		MTU: cfg.WireMTU, DupProb: 0.2,
		ReorderProb: 0.3, ReorderDelay: 40 * time.Microsecond,
		Delay: time.Microsecond,
	}, fragCfg)
	for i := 0; i < cfg.Datagrams; i++ {
		if err := h.fa.Send(espDatagram(0x10, cfg.DatagramBytes)); err != nil {
			return err
		}
	}
	h.engine.Run()
	fs = h.fb.FragStats()
	if h.got != cfg.Datagrams || fs.HostileDrops != 0 {
		return fmt.Errorf("transport: impaired path delivered %d/%d, hostile %d",
			h.got, cfg.Datagrams, fs.HostileDrops)
	}
	t.AddRow("reorder_dup", itoa(cfg.Datagrams), itoa(h.got), "0", "0", "-",
		fmt.Sprintf("dup/reorder survived, %d frames", fs.FragsRx))

	// Hostile scenarios: forged fragment sequences injected beneath the
	// receiver's FragLink. Each MUST deliver nothing and count a hostile
	// drop; the poisoned id stays dead for the frames that follow.
	hostile := []struct {
		name   string
		frames func(id uint32) [][]byte
	}{
		{"overlap_attack", func(id uint32) [][]byte {
			a := bytes.Repeat([]byte{0xAA}, 256)
			b := bytes.Repeat([]byte{0xBB}, 256)
			return [][]byte{
				wire.EncodeFrame(0x10, wire.FragFlagFrag, id, 0, 768, a),
				wire.EncodeFrame(0x10, wire.FragFlagFrag, id, 128, 768, b), // rewrites [128,384)
				wire.EncodeFrame(0x10, wire.FragFlagFrag, id, 512, 768, a),
			}
		}},
		{"tiny_fragment", func(id uint32) [][]byte {
			return [][]byte{
				wire.EncodeFrame(0x10, wire.FragFlagFrag, id, 0, 2048, bytes.Repeat([]byte{1}, 8)),
			}
		}},
		{"inconsistent_total", func(id uint32) [][]byte {
			a := bytes.Repeat([]byte{2}, 256)
			return [][]byte{
				wire.EncodeFrame(0x10, wire.FragFlagFrag, id, 0, 1024, a),
				wire.EncodeFrame(0x10, wire.FragFlagFrag, id, 256, 900, a),
			}
		}},
		{"oob_offset", func(id uint32) [][]byte {
			return [][]byte{
				wire.EncodeFrame(0x10, wire.FragFlagFrag, id, 60000, 1024, bytes.Repeat([]byte{3}, 256)),
			}
		}},
	}
	for _, sc := range hostile {
		h = newFragHarness(cfg.Seed+2, mtuCfg, fragCfg)
		frames := sc.frames(0xBAD)
		for _, f := range frames {
			h.sa.Inject(f)
		}
		h.engine.Run()
		fs = h.fb.FragStats()
		if h.got != 0 || fs.HostileDrops == 0 {
			return fmt.Errorf("transport: %s delivered %d, hostile %d", sc.name, h.got, fs.HostileDrops)
		}
		t.AddRow(sc.name, itoa(len(frames)), "0", u64(fs.HostileDrops), "0", "-", "rejected")
	}

	// Memory-bound flood: many never-completing reassemblies. The pending
	// memory MUST stay under the bound; the overflow is evicted, and a
	// legitimate datagram still gets through afterwards.
	floodCfg := fragCfg
	floodCfg.MaxReassemblyBytes = cfg.ReassemblyBytes
	h = newFragHarness(cfg.Seed+3, mtuCfg, floodCfg)
	first := bytes.Repeat([]byte{4}, cfg.WireMTU/2)
	for id := uint32(0); id < uint32(cfg.FloodIDs); id++ {
		h.sa.Inject(wire.EncodeFrame(0x10, wire.FragFlagFrag, 0x1000+id, 0, uint16Cap(cfg.DatagramBytes), first))
	}
	h.engine.Run()
	fs = h.fb.FragStats()
	if fs.PendingBytes > cfg.ReassemblyBytes {
		return fmt.Errorf("transport: flood pending %d > bound %d", fs.PendingBytes, cfg.ReassemblyBytes)
	}
	if fs.EvictDrops == 0 {
		return fmt.Errorf("transport: flood evicted nothing")
	}
	if err := h.fa.Send(espDatagram(0x10, cfg.DatagramBytes)); err != nil {
		return err
	}
	h.engine.Run()
	if h.got != 1 {
		return fmt.Errorf("transport: post-flood datagram not delivered")
	}
	t.AddRow("memory_flood", itoa(cfg.FloodIDs), "0", "0", u64(fs.EvictDrops), "-",
		fmt.Sprintf("pending %d <= bound %d, flow survives", fs.PendingBytes, cfg.ReassemblyBytes))
	return nil
}

// udpLineRateRows measures seal→UDP-loopback→verify throughput. A host
// that cannot open loopback sockets skips the rows instead of failing the
// whole table.
func udpLineRateRows(t *Table, cfg TransportConfig) {
	skip := func(why string) {
		t.AddRow("udp_linerate", "-", "-", "-", "-", "-", "skipped: "+why)
	}
	ea, err := wire.ListenUDP("", wire.UDPConfig{})
	if err != nil {
		skip(err.Error())
		return
	}
	defer ea.Close()
	eb, err := wire.ListenUDP("", wire.UDPConfig{})
	if err != nil {
		skip(err.Error())
		return
	}
	defer eb.Close()
	la, err := ea.Link(eb.Addr())
	if err != nil {
		skip(err.Error())
		return
	}
	lb, err := eb.Link(ea.Addr(), 0x42)
	if err != nil {
		skip(err.Error())
		return
	}

	for _, size := range cfg.UDPPayloads {
		row, err := udpLineRate(la, lb, size, cfg.UDPPackets)
		if err != nil {
			t.AddRow(fmt.Sprintf("udp_%db", size), "-", "-", "-", "-", "-", "skipped: "+err.Error())
			continue
		}
		t.AddRow(row...)
	}
}

func udpLineRate(la, lb *wire.UDPLink, payloadLen, packets int) ([]string, error) {
	keys := ipsec.KeyMaterial{AuthKey: make([]byte, ipsec.AuthKeySize)}
	for i := range keys.AuthKey {
		keys.AuthKey[i] = byte(i + 1)
	}
	var mtx, mrx store.Mem
	snd, err := core.NewSender(core.SenderConfig{K: 1 << 40, Store: &mtx})
	if err != nil {
		return nil, err
	}
	tx, err := ipsec.NewOutboundSA(0x42, keys, snd, true, ipsec.Lifetime{}, nil)
	if err != nil {
		return nil, err
	}
	rcv, err := core.NewReceiver(core.ReceiverConfig{K: 1 << 40, W: 1024, Store: &mrx})
	if err != nil {
		return nil, err
	}
	rx, err := ipsec.NewInboundSA(0x42, keys, rcv, true, ipsec.Lifetime{}, nil)
	if err != nil {
		return nil, err
	}

	payload := make([]byte, payloadLen)
	delivered, drops := 0, 0
	start := time.Now()
	for i := 0; i < packets; i++ {
		w, err := tx.Seal(payload)
		if err != nil {
			return nil, err
		}
		if err := la.Send(w); err != nil {
			return nil, err
		}
		got, err := lb.RecvTimeout(2 * time.Second)
		if err != nil {
			return nil, err
		}
		_, verdict, err := rx.Open(got)
		if err != nil {
			return nil, err
		}
		if verdict.Delivered() {
			delivered++
		} else {
			drops++
		}
	}
	elapsed := time.Since(start)
	if delivered != packets {
		return nil, fmt.Errorf("delivered %d/%d", delivered, packets)
	}
	perSec := float64(packets) / elapsed.Seconds()
	return []string{
		fmt.Sprintf("udp_%db", payloadLen), itoa(packets), itoa(delivered), "0", itoa(drops),
		fmt.Sprintf("%.0f", perSec),
		fmt.Sprintf("seal->socket->verify, %v total", elapsed.Round(time.Millisecond)),
	}, nil
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }

func u64(n uint64) string { return fmt.Sprintf("%d", n) }

func uint16Cap(n int) int {
	if n > 0xFFFF {
		return 0xFFFF
	}
	return n
}
