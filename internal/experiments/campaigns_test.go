package experiments

import (
	"strconv"
	"testing"
)

// TestCampaignsAcceptance runs the stealth-DoS campaign suite and pins
// the reported numbers. The experiment itself errors on the hard SLOs
// (goodput below a row's floor, any replay acceptance, a defense knob
// that fails to improve its campaign's bound); the assertions here keep
// the table honest — every campaign present, both rows per campaign,
// zero in every replay_accepts cell.
func TestCampaignsAcceptance(t *testing.T) {
	cfg := DefaultCampaignsConfig()
	cfg.Packets = 240

	tbl, err := Campaigns(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tbl)
	col := make(map[string]int, len(tbl.Columns))
	for i, c := range tbl.Columns {
		col[c] = i
	}
	rowsPer := make(map[string]int)
	for _, row := range tbl.Rows {
		name := row[col["campaign"]]
		rowsPer[name]++
		if got := row[col["replay_accepts"]]; got != "0" {
			t.Errorf("campaign %s (%s): replay_accepts = %s, want 0",
				name, row[col["defense"]], got)
		}
		sent, err := strconv.Atoi(row[col["sent"]])
		if err != nil || sent <= 0 {
			t.Errorf("campaign %s: bad sent cell %q", name, row[col["sent"]])
		}
		delivered, err := strconv.Atoi(row[col["delivered"]])
		if err != nil || delivered <= 0 || delivered > sent {
			t.Errorf("campaign %s: delivered %q out of range (sent %d)",
				name, row[col["delivered"]], sent)
		}
	}
	for _, name := range CampaignNames() {
		if rowsPer[name] != 2 {
			t.Errorf("campaign %s: %d rows, want 2 (baseline + hardened)", name, rowsPer[name])
		}
	}
}

// TestCampaignsOnly checks the single-campaign filter used by resetsim's
// -campaign flag, including the unknown-name error.
func TestCampaignsOnly(t *testing.T) {
	cfg := DefaultCampaignsConfig()
	cfg.Packets = 120

	tbl, err := CampaignsOnly(cfg, "window_edge")
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[0] != "window_edge" {
			t.Errorf("row campaign = %q, want window_edge", row[0])
		}
	}
	if _, err := CampaignsOnly(cfg, "no_such_campaign"); err == nil {
		t.Error("unknown campaign accepted")
	}
}
