package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"antireplay/internal/core"
	"antireplay/internal/ipsec"
	"antireplay/internal/stats"
	"antireplay/internal/store"
)

// SizingConfig parameterizes the §4 SAVE-interval sizing measurement.
type SizingConfig struct {
	// Samples is how many save/send operations to time per medium.
	Samples int
	// PayloadBytes is the message size for the send-cost measurement
	// (paper: 1000-byte messages).
	PayloadBytes int
}

// DefaultSizingConfig matches the paper's 1000-byte messages.
func DefaultSizingConfig() SizingConfig {
	return SizingConfig{Samples: 200, PayloadBytes: 1000}
}

// SaveIntervalSizing reproduces the paper's §4 sizing example: the SAVE
// interval K is the maximum number of messages that can be sent during one
// SAVE, so K = ceil(T_save / T_send). The paper's Pentium III constants
// (100µs write, 4µs send, K = 25) are replayed through the formula, and the
// same two costs are measured on this machine for an in-memory store, a
// file store without fsync, and a file store with fsync.
func SaveIntervalSizing(cfg SizingConfig) (*Table, error) {
	t := &Table{
		ID:    "sizing",
		Title: "SAVE interval sizing: K = ceil(T_save / T_send) (§4)",
		Note: "Paper's worked example on a Pentium III 730MHz appears as the first row. " +
			"Measured rows use this machine's medians; K scales with the persistence medium.",
		Columns: []string{"medium", "t_save_us", "t_send_us", "K"},
	}

	// Paper row: constants from §4.
	t.AddRow("paper-pentium3-disk", "100.00", "4.00", "25")

	tSend, err := measureSendCost(cfg)
	if err != nil {
		return nil, err
	}

	dir, err := os.MkdirTemp("", "sizing-*")
	if err != nil {
		return nil, fmt.Errorf("experiments: sizing tempdir: %w", err)
	}
	defer os.RemoveAll(dir)

	media := []struct {
		name string
		st   store.Store
	}{
		{"mem", &store.Mem{}},
		{"file-nosync", store.NewFile(filepath.Join(dir, "nosync.dat"), store.WithoutSync())},
		{"file-fsync", store.NewFile(filepath.Join(dir, "fsync.dat"))},
	}
	for _, m := range media {
		tSave, err := measureSaveCost(m.st, cfg.Samples)
		if err != nil {
			return nil, err
		}
		k := sizingK(tSave, tSend)
		t.AddRow(m.name,
			fmt.Sprintf("%.2f", float64(tSave.Nanoseconds())/1e3),
			fmt.Sprintf("%.2f", float64(tSend.Nanoseconds())/1e3),
			fmt.Sprint(k))
	}
	return t, nil
}

// sizingK applies the paper's rule with a floor of 1.
func sizingK(tSave, tSend time.Duration) uint64 { return core.SizeK(tSave, tSend) }

// measureSaveCost times st.Save and returns the median.
func measureSaveCost(st store.Store, samples int) (time.Duration, error) {
	if samples < 1 {
		samples = 1
	}
	var sm stats.Sample
	for i := 0; i < samples; i++ {
		start := time.Now()
		if err := st.Save(uint64(i)); err != nil {
			return 0, fmt.Errorf("experiments: sizing save: %w", err)
		}
		sm.Add(float64(time.Since(start).Nanoseconds()))
	}
	return time.Duration(sm.Median()), nil
}

// measureSendCost times the full per-message send path — sequence-number
// assignment plus ESP encapsulation (HMAC + AES-CTR) of a payload — and
// returns the median.
func measureSendCost(cfg SizingConfig) (time.Duration, error) {
	var m store.Mem
	snd, err := core.NewSender(core.SenderConfig{K: 1 << 30, Store: &m})
	if err != nil {
		return 0, err
	}
	keys := ipsec.KeyMaterial{
		AuthKey: bytes.Repeat([]byte{0x5a}, ipsec.AuthKeySize),
		EncKey:  bytes.Repeat([]byte{0xa5}, ipsec.EncKeySize),
	}
	out, err := ipsec.NewOutboundSA(1, keys, snd, false, ipsec.Lifetime{}, nil)
	if err != nil {
		return 0, err
	}
	payload := bytes.Repeat([]byte{0x42}, cfg.PayloadBytes)
	var sm stats.Sample
	for i := 0; i < cfg.Samples; i++ {
		start := time.Now()
		if _, err := out.Seal(payload); err != nil {
			return 0, fmt.Errorf("experiments: sizing seal: %w", err)
		}
		sm.Add(float64(time.Since(start).Nanoseconds()))
	}
	return time.Duration(sm.Median()), nil
}
