package experiments

import (
	"fmt"
	"sync"

	"antireplay/internal/core"
	"antireplay/internal/store"
)

// HorizonConfig parameterizes the loss-jump experiment (E13).
type HorizonConfig struct {
	// K is the SAVE interval.
	K uint64
	// Jumps is the sweep of loss-gap sizes: after 2K in-order deliveries,
	// seqs up to base+jump are lost and base+jump arrives.
	Jumps []uint64
}

// DefaultHorizonConfig sweeps jumps across the 2K cliff for K = 25.
func DefaultHorizonConfig() HorizonConfig {
	return HorizonConfig{K: 25, Jumps: []uint64{10, 40, 49, 51, 60, 200, 1000}}
}

// LossJumpHorizon documents the reproduction's negative result (the
// analysis-gap note in README.md's "Tests and benchmarks" section): the
// paper's receiver-side theorem fails when a loss-induced sequence
// jump larger than the leap is delivered and its save is torn by a reset —
// the jumped message is then delivered twice. The strict-horizon variant
// drops the jump instead (extending its durable horizon with a save) and
// never duplicates; the jump is delivered exactly once when retransmitted
// after the horizon catches up.
func LossJumpHorizon(cfg HorizonConfig) (*Table, error) {
	t := &Table{
		ID:    "horizon",
		Title: "Loss-jump + torn save + reset: paper protocol vs strict horizon",
		Note: fmt.Sprintf("K=%d, leap=2K=%d. Expect: paper variant delivers the jumped message twice once "+
			"jump > leap (the analysis gap); strict variant never duplicates and still delivers the "+
			"retransmission exactly once.", cfg.K, 2*cfg.K),
		Columns: []string{"jump", "variant", "jump_delivered", "replay_delivered",
			"dup_delivery", "retransmit_delivered", "safe"},
	}
	for _, jump := range cfg.Jumps {
		for _, strict := range []bool{false, true} {
			row, err := horizonRow(cfg.K, jump, strict)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// horizonSaver is a deterministic in-flight saver: commits only on demand,
// tears on cancel.
type horizonSaver struct {
	mu      sync.Mutex
	st      store.Store
	pending []struct {
		v    uint64
		done func(error)
	}
}

func (h *horizonSaver) StartSave(v uint64, done func(error)) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.pending = append(h.pending, struct {
		v    uint64
		done func(error)
	}{v, done})
}

func (h *horizonSaver) Cancel() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.pending = nil
}

func (h *horizonSaver) commitAll() error {
	h.mu.Lock()
	batch := h.pending
	h.pending = nil
	h.mu.Unlock()
	for _, p := range batch {
		if err := h.st.Save(p.v); err != nil {
			return err
		}
		if p.done != nil {
			p.done(nil)
		}
	}
	return nil
}

func horizonRow(k, jump uint64, strict bool) ([]string, error) {
	var m store.Mem
	sv := &horizonSaver{st: &m}
	r, err := core.NewReceiver(core.ReceiverConfig{
		K: k, W: 64, Store: &m, Saver: sv, StrictHorizon: strict,
	})
	if err != nil {
		return nil, err
	}

	// Phase 1: 2K in-order deliveries, saves committed (sized K).
	base := 2 * k
	for s := uint64(1); s <= base; s++ {
		r.Admit(s)
		if err := sv.commitAll(); err != nil {
			return nil, err
		}
	}

	// Phase 2: seqs base+1 .. base+jump-1 are lost; base+jump arrives.
	jumpSeq := base + jump
	jumpDelivered := r.Admit(jumpSeq).Delivered()

	// Phase 3: reset tears whatever save phase 2 started; wake.
	r.Reset()
	r.Wake()
	if err := sv.commitAll(); err != nil {
		return nil, err
	}

	// Phase 4: the adversary replays the jumped message.
	replayDelivered := r.Admit(jumpSeq).Delivered()
	dup := jumpDelivered && replayDelivered

	// Phase 5: liveness — the sender retransmits (or traffic continues).
	// Commit saves between attempts: the horizon catches up.
	retransmitDelivered := false
	for try := 0; try < 4 && !retransmitDelivered; try++ {
		if err := sv.commitAll(); err != nil {
			return nil, err
		}
		v := r.Admit(jumpSeq)
		retransmitDelivered = v.Delivered()
	}
	deliveredOnce := jumpDelivered || replayDelivered || retransmitDelivered
	safe := !dup && deliveredOnce

	name := "paper"
	if strict {
		name = "strict"
	}
	return []string{
		fmt.Sprint(jump), name, fmt.Sprint(jumpDelivered), fmt.Sprint(replayDelivered),
		fmt.Sprint(dup), fmt.Sprint(retransmitDelivered), fmt.Sprint(safe),
	}, nil
}
