package experiments

import (
	"fmt"
	"time"
)

// DoubleResetConfig parameterizes the §4 "second consideration" experiment.
type DoubleResetConfig struct {
	// K is the SAVE interval.
	K uint64
	// Seed drives the simulation.
	Seed int64
}

// DefaultDoubleResetConfig uses the paper's K = 25.
func DefaultDoubleResetConfig() DoubleResetConfig {
	return DoubleResetConfig{K: 25, Seed: 1}
}

// DoubleReset reproduces the §4 second consideration: a second reset
// strikes after the wake-up but before the post-wake SAVE has committed.
// Under the paper's protocol the endpoint refuses to serve until that SAVE
// completes, so no sequence number is consumed in the vulnerable window and
// nothing can be reused. The ablation variant resumes immediately after
// FETCH+leap — the naive implementation — and demonstrably reuses sequence
// numbers (sender) and re-accepts replays (receiver) after the second
// reset.
func DoubleReset(cfg DoubleResetConfig) (*Table, error) {
	t := &Table{
		ID:    "doublereset",
		Title: "Double reset before the post-wake SAVE commits (§4)",
		Note: "paper = wait for the post-wake SAVE (safe); ablation = resume immediately " +
			"(unsafe). Expect reuse/duplicate deliveries only in the ablation rows.",
		Columns: []string{"variant", "side", "sent_in_window", "seqs_reused",
			"dup_deliveries", "safe"},
	}

	for _, ablation := range []bool{false, true} {
		sent, reused, err := doubleResetSender(cfg, ablation)
		if err != nil {
			return nil, err
		}
		name := "paper"
		if ablation {
			name = "ablation"
		}
		t.AddRow(name, "sender", fmt.Sprint(sent), fmt.Sprint(reused), "-",
			fmt.Sprint(reused == 0))

		dups, err := doubleResetReceiver(cfg, ablation)
		if err != nil {
			return nil, err
		}
		t.AddRow(name, "receiver", "-", "-", fmt.Sprint(dups),
			fmt.Sprint(dups == 0))
	}
	return t, nil
}

// doubleResetSender runs: traffic, reset, wake, more traffic inside the
// post-wake-save window (only possible in the ablation), second reset
// before the save commits, wake, traffic. It reports how many sequence
// numbers were handed out inside the vulnerable window and how many were
// reused afterwards.
func doubleResetSender(cfg DoubleResetConfig, ablation bool) (sent int, reused int, err error) {
	fc := DefaultFlowConfig(cfg.Seed)
	fc.Kp, fc.Kq = cfg.K, cfg.K
	fc.SkipPostWakeSave = ablation
	f, err := NewFlow(fc)
	if err != nil {
		return 0, 0, err
	}

	used := make(map[uint64]int)
	record := func() (uint64, bool) {
		seq, err := f.Sender.Next()
		if err != nil {
			return 0, false
		}
		used[seq]++
		return seq, true
	}

	// Warm-up traffic directly (no link needed for this experiment).
	for i := 0; i < int(3*cfg.K); i++ {
		record()
	}
	f.Run(fc.SaveDelay * 10) // let background saves commit

	f.Sender.Reset()
	f.Engine.After(time.Millisecond, f.Sender.Wake)
	f.Run(f.Engine.Now() + time.Millisecond) // wake begins; save in flight

	// Vulnerable window: before the post-wake save commits.
	inWindow := 0
	for i := 0; i < 5; i++ {
		if _, ok := record(); ok {
			inWindow++
		}
	}

	f.Sender.Reset() // second reset tears the post-wake save
	f.Engine.After(time.Millisecond, f.Sender.Wake)
	f.Run(f.Engine.Now() + time.Millisecond + fc.SaveDelay*4)

	for i := 0; i < int(3*cfg.K); i++ {
		record()
	}
	for _, n := range used {
		if n > 1 {
			reused += n - 1
		}
	}
	return inWindow, reused, nil
}

// doubleResetReceiver runs the mirror scenario. The receiver's first outage
// is long, so the sender's counter races far past the leaped edge; in the
// vulnerable window after the first wake the ablation variant then delivers
// those high sequence numbers and advances its edge *without any durable
// record*. The second reset rolls the edge back, and replaying the
// vulnerable-window traffic is accepted a second time — duplicate
// deliveries, the safety violation the paper's synchronous post-wake SAVE
// prevents. The paper variant buffers instead of delivering, so nothing can
// repeat.
func doubleResetReceiver(cfg DoubleResetConfig, ablation bool) (dups uint64, err error) {
	fc := DefaultFlowConfig(cfg.Seed)
	fc.Kp, fc.Kq = cfg.K, cfg.K
	fc.SkipPostWakeSave = ablation
	f, err := NewFlow(fc)
	if err != nil {
		return 0, err
	}

	f.StartTraffic(time.Hour)
	f.Run(time.Duration(3*cfg.K) * fc.SendInterval * 2)

	// Long first outage: the sender races ~250 numbers ahead.
	f.Receiver.Reset()
	f.Engine.After(time.Millisecond, f.Receiver.Wake)
	// Vulnerable window: half the post-wake save's duration. The ablation
	// serves (and advances its edge); the paper variant buffers.
	f.Run(f.Engine.Now() + time.Millisecond + fc.SaveDelay/2)

	// Second reset tears the post-wake save (and any edge advance with it).
	// Stop traffic so fresh sends cannot mask the rollback afterwards.
	f.Receiver.Reset()
	f.StopTraffic()
	f.Engine.After(time.Millisecond, f.Receiver.Wake)
	f.Run(f.Engine.Now() + time.Millisecond + fc.SaveDelay*4)

	// The adversary replays everything recorded, including the
	// vulnerable-window traffic.
	f.Replayer.ReplayAllAt(f.Engine.Now(), fc.SendInterval)
	f.Run(f.Engine.Now() + time.Second)
	return f.DupDeliveries(), nil
}
