package experiments

import (
	"fmt"
	"time"

	"antireplay/internal/adversary"
	"antireplay/internal/core"
	"antireplay/internal/netsim"
	"antireplay/internal/store"
	"antireplay/internal/trace"
)

// Packet is the simulated wire unit: a sequence number plus the harness's
// ground truth about whether this transmission is the sender's original.
type Packet struct {
	Seq   uint64
	Fresh bool
}

// FlowConfig parameterizes a simulated unidirectional flow p -> q.
type FlowConfig struct {
	// Seed drives all simulation randomness.
	Seed int64
	// Kp and Kq are the SAVE intervals; W the window width.
	Kp, Kq uint64
	W      int
	// LeapFactor overrides the paper's 2 when non-zero (negative disables).
	LeapFactor float64
	// SendInterval is the inter-message gap (paper example: 4µs).
	SendInterval time.Duration
	// SaveDelay is the background SAVE duration (paper example: 100µs).
	SaveDelay time.Duration
	// Link is the impairment model of the channel.
	Link netsim.LinkConfig
	// Baseline selects the §2 protocol on both endpoints.
	Baseline bool
	// SkipPostWakeSave selects the unsafe ablation on both endpoints.
	SkipPostWakeSave bool
	// WakeBuffer caps the receiver's post-wake buffer (0 = default).
	WakeBuffer int
}

// DefaultFlowConfig uses the paper's measured constants: a send every 4µs,
// a 100µs save, K = 25 on both sides, a 64-wide window, and a clean link.
func DefaultFlowConfig(seed int64) FlowConfig {
	return FlowConfig{
		Seed:         seed,
		Kp:           25,
		Kq:           25,
		W:            64,
		SendInterval: 4 * time.Microsecond,
		SaveDelay:    100 * time.Microsecond,
		Link:         netsim.LinkConfig{Delay: 50 * time.Microsecond},
	}
}

// Flow is a running simulated flow with ground-truth accounting.
type Flow struct {
	Engine   *netsim.Engine
	Sender   *core.Sender
	Receiver *core.Receiver
	Link     *netsim.Link[Packet]
	Matrix   *trace.Matrix
	Recorder *adversary.Recorder[Packet]
	Replayer *adversary.Replayer[Packet]
	Trace    *trace.Collector

	SenderStore   *store.Mem
	ReceiverStore *store.Mem
	senderSaver   *netsim.SimSaver
	receiverSaver *netsim.SimSaver

	// VerdictHook, when non-nil, observes every final verdict (including
	// drained buffered packets) with the harness's ground truth.
	VerdictHook func(seq uint64, truth trace.Truth, v core.Verdict)

	cfg           FlowConfig
	sendEnabled   bool
	sent          uint64
	lastSent      uint64
	skippedSends  uint64
	observed      uint64
	bufferTruth   []bufferedTruth // truths of buffered packets, FIFO
	sendHooks     map[uint64]func()
	observeHooks  map[uint64]func()
	deliveredSeqs map[uint64]bool
	dupDelivered  uint64
}

type bufferedTruth struct {
	seq   uint64
	truth trace.Truth
}

// NewFlow builds the flow but schedules no traffic; call StartTraffic.
func NewFlow(cfg FlowConfig) (*Flow, error) {
	if cfg.SendInterval <= 0 {
		return nil, fmt.Errorf("experiments: SendInterval must be positive")
	}
	f := &Flow{
		Engine:        netsim.NewEngine(cfg.Seed),
		Matrix:        &trace.Matrix{},
		Recorder:      adversary.NewRecorder[Packet](),
		Trace:         trace.NewCollector(0),
		SenderStore:   &store.Mem{},
		ReceiverStore: &store.Mem{},
		cfg:           cfg,
	}
	f.senderSaver = netsim.NewSimSaver(f.Engine, f.SenderStore, cfg.SaveDelay)
	f.receiverSaver = netsim.NewSimSaver(f.Engine, f.ReceiverStore, cfg.SaveDelay)

	sender, err := core.NewSender(core.SenderConfig{
		K:                        cfg.Kp,
		LeapFactor:               cfg.LeapFactor,
		Store:                    f.SenderStore,
		Saver:                    f.senderSaver,
		Baseline:                 cfg.Baseline,
		AblationSkipPostWakeSave: cfg.SkipPostWakeSave,
		Trace:                    f.Trace,
		Name:                     "p",
		Clock:                    f.Engine.Now,
	})
	if err != nil {
		return nil, err
	}
	f.Sender = sender

	receiver, err := core.NewReceiver(core.ReceiverConfig{
		K:                        cfg.Kq,
		LeapFactor:               cfg.LeapFactor,
		W:                        cfg.W,
		Store:                    f.ReceiverStore,
		Saver:                    f.receiverSaver,
		Baseline:                 cfg.Baseline,
		AblationSkipPostWakeSave: cfg.SkipPostWakeSave,
		WakeBuffer:               cfg.WakeBuffer,
		Trace:                    f.Trace,
		Name:                     "q",
		Clock:                    f.Engine.Now,
		Drain: func(seq uint64, v core.Verdict) {
			f.drainVerdict(seq, v)
		},
	})
	if err != nil {
		return nil, err
	}
	f.Receiver = receiver

	f.Link = netsim.NewLink(f.Engine, cfg.Link, f.deliver)
	f.Link.Tap(func(p Packet) {
		// The adversary's wiretap records replay-ready copies.
		f.Recorder.Record(Packet{Seq: p.Seq, Fresh: false})
	})
	f.Replayer = adversary.NewReplayer[Packet](f.Engine, f.Link, f.Recorder)
	f.sendHooks = make(map[uint64]func())
	f.observeHooks = make(map[uint64]func())
	f.deliveredSeqs = make(map[uint64]bool)
	return f, nil
}

// DupDeliveries returns how many deliveries repeated an already-delivered
// sequence number. This is the paper's safety metric (Discrimination /
// anti-replay): it must be zero under the resilient protocol no matter the
// reset and replay schedule.
func (f *Flow) DupDeliveries() uint64 { return f.dupDelivered }

// AtSendCount registers fn to run immediately after the n-th successful
// send (n counts from 1).
func (f *Flow) AtSendCount(n uint64, fn func()) { f.sendHooks[n] = fn }

// AtObserveCount registers fn to run immediately after the receiver has
// observed (decided or buffered) its n-th packet.
func (f *Flow) AtObserveCount(n uint64, fn func()) { f.observeHooks[n] = fn }

// StartTraffic schedules one send every SendInterval from the current
// virtual time until stop. Sends attempted while the sender is down or
// waking are skipped and counted.
func (f *Flow) StartTraffic(stop time.Duration) {
	f.sendEnabled = true
	var tick func()
	tick = func() {
		if !f.sendEnabled || f.Engine.Now() > stop {
			return
		}
		f.sendOne()
		f.Engine.After(f.cfg.SendInterval, tick)
	}
	f.Engine.After(f.cfg.SendInterval, tick)
}

// StopTraffic halts the send loop.
func (f *Flow) StopTraffic() { f.sendEnabled = false }

func (f *Flow) sendOne() {
	seq, err := f.Sender.Next()
	if err != nil {
		f.skippedSends++
		return
	}
	f.sent++
	f.lastSent = seq
	f.Link.Send(Packet{Seq: seq, Fresh: true})
	if fn, ok := f.sendHooks[f.sent]; ok {
		delete(f.sendHooks, f.sent)
		fn()
	}
}

func (f *Flow) deliver(p Packet) {
	truth := trace.TruthFresh
	if !p.Fresh {
		truth = trace.TruthReplay
	}
	v := f.Receiver.Admit(p.Seq)
	switch v {
	case core.VerdictBuffered:
		f.bufferTruth = append(f.bufferTruth, bufferedTruth{seq: p.Seq, truth: truth})
		f.noteObserved()
	case core.VerdictDown, core.VerdictOverflow:
		f.Matrix.Add(truth, trace.VerdictUnobserved)
	default:
		f.recordVerdict(p.Seq, truth, v)
		f.noteObserved()
	}
}

func (f *Flow) noteObserved() {
	f.observed++
	if fn, ok := f.observeHooks[f.observed]; ok {
		delete(f.observeHooks, f.observed)
		fn()
	}
}

// drainVerdict resolves a buffered packet's truth in FIFO order (the
// receiver drains its buffer in arrival order).
func (f *Flow) drainVerdict(seq uint64, v core.Verdict) {
	truth := trace.TruthFresh
	if len(f.bufferTruth) > 0 {
		truth = f.bufferTruth[0].truth
		f.bufferTruth = f.bufferTruth[1:]
	}
	f.recordVerdict(seq, truth, v)
}

func (f *Flow) recordVerdict(seq uint64, truth trace.Truth, v core.Verdict) {
	if f.VerdictHook != nil {
		f.VerdictHook(seq, truth, v)
	}
	if v.Delivered() {
		if f.deliveredSeqs[seq] {
			f.dupDelivered++
		} else {
			f.deliveredSeqs[seq] = true
		}
		f.Matrix.Add(truth, trace.VerdictDelivered)
		return
	}
	f.Matrix.Add(truth, trace.VerdictDiscarded)
}

// ResetSender schedules a sender reset at down and wake at up. The wake's
// post-wake SAVE runs on the sender's saver (SaveDelay of virtual time).
func (f *Flow) ResetSender(down, up time.Duration) {
	f.Engine.At(down, f.Sender.Reset)
	f.Engine.At(up, f.Sender.Wake)
}

// ResetReceiver schedules a receiver reset and wake.
func (f *Flow) ResetReceiver(down, up time.Duration) {
	f.Engine.At(down, f.Receiver.Reset)
	f.Engine.At(up, f.Receiver.Wake)
}

// Run advances virtual time to t.
func (f *Flow) Run(t time.Duration) { f.Engine.RunUntil(t) }

// Sent returns how many messages the sender emitted; LastSent the highest
// sequence number; SkippedSends how many ticks found the sender down.
func (f *Flow) Sent() uint64 { return f.sent }

// LastSent returns the highest sequence number emitted.
func (f *Flow) LastSent() uint64 { return f.lastSent }

// SkippedSends returns how many send ticks found the sender unavailable.
func (f *Flow) SkippedSends() uint64 { return f.skippedSends }
