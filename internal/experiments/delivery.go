package experiments

import (
	"fmt"
	"time"

	"antireplay/internal/core"
	"antireplay/internal/netsim"
	"antireplay/internal/trace"
)

// DeliveryConfig parameterizes the §2 w-Delivery / Discrimination check.
type DeliveryConfig struct {
	// Messages is the number of fresh messages per row.
	Messages uint64
	// W is the window width.
	W int
	// Rows is the sweep of link impairments.
	Rows []DeliveryRow
	// Seed drives the simulation.
	Seed int64
}

// DeliveryRow is one impairment setting.
type DeliveryRow struct {
	Name    string
	Loss    float64
	Dup     float64
	Reorder float64
	// ReorderDelay in send intervals; it determines the worst reorder
	// degree the link can induce.
	ReorderDelayIntervals int
}

// DefaultDeliveryConfig sweeps clean, lossy, duplicating, mildly reordering
// (degree < w) and violently reordering (degree can exceed w) links.
func DefaultDeliveryConfig() DeliveryConfig {
	return DeliveryConfig{
		Messages: 10000,
		W:        64,
		Seed:     1,
		Rows: []DeliveryRow{
			{Name: "clean"},
			{Name: "loss-5%", Loss: 0.05},
			{Name: "dup-5%", Dup: 0.05},
			{Name: "reorder<w", Reorder: 0.3, ReorderDelayIntervals: 32},
			{Name: "reorder>w", Reorder: 0.3, ReorderDelayIntervals: 256},
			{Name: "all-mild", Loss: 0.02, Dup: 0.02, Reorder: 0.2, ReorderDelayIntervals: 16},
		},
	}
}

// Delivery verifies the §2 conditions on the full stack: Discrimination (no
// sequence number is ever delivered twice, even under network duplication)
// and w-Delivery (messages neither lost nor reordered by degree >= w are
// delivered — so the only window-caused fresh discards appear when the
// reorder delay can exceed w send intervals).
func Delivery(cfg DeliveryConfig) (*Table, error) {
	t := &Table{
		ID:    "delivery",
		Title: "w-Delivery and Discrimination under link impairments (§2)",
		Note: fmt.Sprintf("w=%d. Expect: dupes_delivered=0 in every row; window_discards=0 unless "+
			"the reorder delay exceeds w send intervals; delivered ~= sent*(1-loss).", cfg.W),
		Columns: []string{"link", "sent", "delivered", "dupes_delivered",
			"window_discards", "net_lost"},
	}
	for _, row := range cfg.Rows {
		fc := DefaultFlowConfig(cfg.Seed)
		fc.W = cfg.W
		fc.Link = netsim.LinkConfig{
			Delay:        fc.SendInterval * 10,
			LossProb:     row.Loss,
			DupProb:      row.Dup,
			ReorderProb:  row.Reorder,
			ReorderDelay: time.Duration(row.ReorderDelayIntervals) * fc.SendInterval,
		}
		f, err := NewFlow(fc)
		if err != nil {
			return nil, err
		}

		perSeq := make(map[uint64]int)
		dupes := 0
		f.VerdictHook = func(seq uint64, _ trace.Truth, v core.Verdict) {
			if v.Delivered() {
				perSeq[seq]++
				if perSeq[seq] > 1 {
					dupes++
				}
			}
		}
		f.AtSendCount(cfg.Messages, f.StopTraffic)
		f.StartTraffic(time.Hour)
		f.Run(time.Duration(cfg.Messages)*fc.SendInterval*4 + time.Second)

		sent := f.Sent()
		delivered := f.Matrix.FreshDelivered()
		// Fresh discards are window-caused losses: stale verdicts from
		// excessive reorder. (Network duplicates are TruthFresh copies too;
		// subtract their legitimate duplicate-discards.)
		st := f.Link.Stats()
		freshDiscards := f.Matrix.FreshDiscarded()
		windowDiscards := int64(freshDiscards) - int64(st.Duplicated)
		if windowDiscards < 0 {
			windowDiscards = 0
		}
		t.AddRow(row.Name, fmt.Sprint(sent), fmt.Sprint(delivered),
			fmt.Sprint(dupes), fmt.Sprint(windowDiscards), fmt.Sprint(st.Lost))
	}
	return t, nil
}
