package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"os"
	"path/filepath"
	"time"

	"antireplay/internal/adversary"
	"antireplay/internal/cluster"
	"antireplay/internal/core"
	"antireplay/internal/ike"
	"antireplay/internal/ipsec"
	"antireplay/internal/rekey"
	"antireplay/internal/store"
	"antireplay/internal/tunnel"
	"antireplay/internal/wire"
)

// CampaignsConfig parameterizes the stealth-DoS campaign experiment.
type CampaignsConfig struct {
	// Seed drives all randomness (key material, IKE nonces).
	Seed int64
	// Packets scales each row's traffic phases.
	Packets int
}

// DefaultCampaignsConfig runs each campaign over ~600-packet phases.
func DefaultCampaignsConfig() CampaignsConfig {
	return CampaignsConfig{Seed: 1, Packets: 600}
}

// campRow is one row's raw accounting before formatting.
type campRow struct {
	defense   string // the defense-knob setting this row prices
	sent      int    // data packets the victim sender emitted
	delivered int    // unique payloads the victim receiver delivered
	cost      string // campaign-side cost/effect accounting
	replays   int    // wires delivered more than once (the hard SLO: 0)

	// rollover bookkeeping, used by the rekey_cutover rows only.
	abandoned, rollovers uint64
}

func (r campRow) goodput() float64 {
	if r.sent == 0 {
		return 0
	}
	return float64(r.delivered) / float64(r.sent)
}

// Campaigns runs the four stealth-DoS campaigns of the adversary layer,
// each twice — once against a baseline configuration and once against a
// hardened one — and asserts the bounded-degradation SLOs:
//
//   - goodput >= the row's configured floor (the attack's damage is
//     bounded, and the bound is priced in the table);
//   - zero replay acceptances: no wire is ever delivered twice, not even
//     under edge-adjacent duplicate injection or a recorded-traffic flood
//     into the failover wake window;
//   - each defense knob measurably improves its campaign's bound:
//     window sizing (W) recovers the sniper's hostages, a smaller SAVE
//     interval (K) shrinks both the storm-parked reset sacrifice and the
//     takeover wake window, and a deeper retry budget (MaxAttempts) rides
//     through exchange suppression without abandoning the rollover.
//
// Every campaign computes its decisions from bytes observable on the wire
// (cleartext ESP sequence numbers, SPI changes) plus protocol knowledge
// (K); none peeks at victim state.
func Campaigns(cfg CampaignsConfig) (*Table, error) {
	return campaignsTable(cfg, "")
}

// CampaignsOnly runs a single named campaign's baseline+hardened rows
// (resetsim's -campaign flag).
func CampaignsOnly(cfg CampaignsConfig, name string) (*Table, error) {
	for _, n := range CampaignNames() {
		if n == name {
			return campaignsTable(cfg, name)
		}
	}
	return nil, fmt.Errorf("experiments: unknown campaign %q (have %v)", name, CampaignNames())
}

// CampaignNames lists the campaign ids in presentation order.
func CampaignNames() []string {
	return []string{"window_edge", "save_storm", "rekey_cutover", "blackout_flood"}
}

func campaignsTable(cfg CampaignsConfig, only string) (*Table, error) {
	t := &Table{
		ID:    "campaigns",
		Title: "Stealth-DoS campaigns: bounded degradation, zero replay acceptance",
		Note: "Each campaign runs against a baseline and a hardened defense knob. " +
			"Expect goodput >= floor on every row and replay_accepts = 0 everywhere: " +
			"well-timed interference degrades goodput boundedly but never breaks " +
			"exactly-once delivery. The hardened rows price the knobs: wider W " +
			"recovers the window-edge sniper's hostages, smaller K shrinks the " +
			"storm-parked reset sacrifice and the takeover wake window (both " +
			"bounded by the leap, 2K), and a deeper IKE retry budget rides " +
			"through exchange suppression without abandoning the rollover.",
		Columns: []string{"campaign", "defense", "sent", "delivered", "goodput",
			"floor", "attack_cost", "replay_accepts"},
	}

	specs := []struct {
		campaign             string
		baseFloor, hardFloor float64
		run                  func(hardened bool) (campRow, error)
	}{
		{"window_edge", 0.90, 0.99, func(hardened bool) (campRow, error) {
			w := 64 // narrower than the snipe's HoldDepth: hostages land stale
			if hardened {
				w = 256 // wider: hostages land inside the window, merely late
			}
			return snipeRow(cfg, w)
		}},
		{"save_storm", 0.50, 0.72, func(hardened bool) (campRow, error) {
			k := uint64(240) // big K: wake leap 2K makes the parked reset expensive
			if hardened {
				k = 30 // adaptive-K defense: smaller leap, smaller sacrifice
			}
			return stormRow(cfg, k)
		}},
		{"rekey_cutover", 0.85, 0.85, func(hardened bool) (campRow, error) {
			attempts := 2 // shallow retry budget: suppression forces abandonment
			if hardened {
				attempts = 12 // outlasts the bounded suppression in one trigger
			}
			return rekeyCutRow(cfg, attempts)
		}},
		{"blackout_flood", 0.45, 0.82, func(hardened bool) (campRow, error) {
			k := uint64(200) // wake window after takeover ~ leap = 2K
			if hardened {
				k = 25
			}
			return floodRow(cfg, k)
		}},
	}

	for _, spec := range specs {
		if only != "" && spec.campaign != only {
			continue
		}
		base, err := spec.run(false)
		if err != nil {
			return nil, fmt.Errorf("experiments: campaign %s baseline: %w", spec.campaign, err)
		}
		hard, err := spec.run(true)
		if err != nil {
			return nil, fmt.Errorf("experiments: campaign %s hardened: %w", spec.campaign, err)
		}
		for _, r := range []struct {
			row   campRow
			floor float64
		}{{base, spec.baseFloor}, {hard, spec.hardFloor}} {
			if r.row.replays != 0 {
				return nil, fmt.Errorf("experiments: campaign %s (%s): %d replay acceptances",
					spec.campaign, r.row.defense, r.row.replays)
			}
			if g := r.row.goodput(); g < r.floor {
				return nil, fmt.Errorf("experiments: campaign %s (%s): goodput %.3f below floor %.2f",
					spec.campaign, r.row.defense, g, r.floor)
			}
		}
		// The knob must measurably improve the bound.
		switch spec.campaign {
		case "rekey_cutover":
			if base.abandoned == 0 || hard.abandoned != 0 {
				return nil, fmt.Errorf("experiments: campaign rekey_cutover: abandoned base=%d hard=%d, want >0 / 0",
					base.abandoned, hard.abandoned)
			}
			if base.rollovers == 0 || hard.rollovers == 0 {
				return nil, fmt.Errorf("experiments: campaign rekey_cutover: rollover never converged (base=%d hard=%d)",
					base.rollovers, hard.rollovers)
			}
		default:
			if hard.goodput() <= base.goodput() {
				return nil, fmt.Errorf("experiments: campaign %s: hardened goodput %.3f <= baseline %.3f",
					spec.campaign, hard.goodput(), base.goodput())
			}
		}
		for _, r := range []struct {
			row   campRow
			floor float64
		}{{base, spec.baseFloor}, {hard, spec.hardFloor}} {
			t.AddRow(spec.campaign, r.row.defense,
				fmt.Sprint(r.row.sent), fmt.Sprint(r.row.delivered),
				fmt.Sprintf("%.1f%%", 100*r.row.goodput()),
				fmt.Sprintf("%.0f%%", 100*r.floor),
				r.row.cost, fmt.Sprint(r.row.replays))
		}
	}
	return t, nil
}

// campLink is the receiver side of a gated path: everything the gate lets
// through is handed to deliver (set once the victim pair exists).
type campLink struct{ deliver func(p []byte) }

func (l *campLink) Send(p []byte) error {
	if l.deliver != nil {
		l.deliver(append([]byte(nil), p...))
	}
	return nil
}
func (l *campLink) Recv() ([]byte, error) { return nil, wire.ErrNoDatagram }
func (l *campLink) Close() error          { return nil }
func (l *campLink) Stats() wire.Stats     { return wire.Stats{} }
func (l *campLink) MTU() int              { return 64 << 10 }

func campIKE(seed int64, id string) ike.Config {
	return ike.Config{PSK: []byte("campaign-experiment"), Group: ike.TestGroup(),
		Rand: rand.New(rand.NewSource(seed)), ID: id}
}

// gatedPair builds a tunnel peer pair whose a->b direction crosses a
// GateLink, recording the full wiretap history and exactly-once delivery
// accounting at b.
type gatedPair struct {
	a, b    *tunnel.Peer
	gate    *wire.GateLink
	history [][]byte

	delivered map[string]bool
	nDeliver  int
	replays   int
}

func newGatedPair(cfg CampaignsConfig, k uint64, w int) (*gatedPair, error) {
	g := &gatedPair{delivered: make(map[string]bool)}
	link := &campLink{}
	g.gate = wire.NewGateLink(link)
	onData := func(p []byte) {
		if g.delivered[string(p)] {
			g.replays++
			return
		}
		g.delivered[string(p)] = true
		g.nDeliver++
	}
	a, b, err := tunnel.Pair(
		tunnel.Config{Name: "victim-p", K: k},
		tunnel.Config{Name: "victim-q", K: k, W: w, OnData: onData},
		campIKE(cfg.Seed+101, "p"), campIKE(cfg.Seed+102, "q"),
		func(wireBytes []byte, deliver func([]byte)) {
			link.deliver = deliver
			g.history = append(g.history, append([]byte(nil), wireBytes...))
			g.gate.Send(wireBytes) //nolint:errcheck // drops are the adversary's verdict
		}, nil)
	if err != nil {
		return nil, err
	}
	g.a, g.b = a, b
	return g, nil
}

// replayAll re-injects the entire wiretap history at b; OnData's
// exactly-once map turns any second delivery into a replay count.
func (g *gatedPair) replayAll() {
	for _, w := range g.history {
		g.b.Receive(w) //nolint:errcheck // rejections are the expected outcome
	}
}

// snipeRow prices the window-edge snipe against window width w: every
// 16th packet is held back 96 packets and re-released, plus an
// edge-adjacent duplicate injection every 10th. A window wider than the
// hold depth delivers the hostages late; a narrower one silently loses
// them (with ESN the deep-late packets fail ICV under the wrong inferred
// epoch — either way, goodput the victim never sees).
func snipeRow(cfg CampaignsConfig, w int) (campRow, error) {
	g, err := newGatedPair(cfg, 25, w)
	if err != nil {
		return campRow{}, err
	}
	snipe := adversary.NewWindowEdgeSnipe(adversary.SnipeConfig{
		HoldEvery: 16, HoldDepth: 96, DupEvery: 10,
	})
	if err := snipe.Arm(adversary.Hooks{Gate: g.gate}); err != nil {
		return campRow{}, err
	}
	snipe.Activate()
	n := cfg.Packets
	for i := 0; i < n; i++ {
		if err := g.a.Send([]byte(fmt.Sprintf("pkt-%06d", i))); err != nil {
			return campRow{}, err
		}
	}
	snipe.Deactivate()
	g.replayAll()
	st := snipe.Stats()
	return campRow{
		defense:   fmt.Sprintf("W=%d", w),
		sent:      n,
		delivered: g.nDeliver,
		cost:      fmt.Sprintf("held %d, dups %d", st.Held, st.DupsInjected),
		replays:   g.replays,
	}, nil
}

// stormRow prices the SAVE-storm against SAVE interval k: the storm
// drops the strike zone below every SAVE boundary (bounded cost,
// BurstLen per K), then the receiver is crashed at a Parked instant.
// The wake sacrifice is bounded by the leap (2K), so the adaptive-K
// defense — a smaller K — shrinks the reset bill the storm set up.
func stormRow(cfg CampaignsConfig, k uint64) (campRow, error) {
	g, err := newGatedPair(cfg, k, 64)
	if err != nil {
		return campRow{}, err
	}
	storm, err := adversary.NewSaveStorm(adversary.StormConfig{K: k})
	if err != nil {
		return campRow{}, err
	}
	if err := storm.Arm(adversary.Hooks{Gate: g.gate}); err != nil {
		return campRow{}, err
	}
	storm.Activate()
	sent := 0
	send := func() error {
		sent++
		return g.a.Send([]byte(fmt.Sprintf("s-%06d", sent)))
	}
	for i := 0; i < 2*cfg.Packets; i++ {
		if err := send(); err != nil {
			return campRow{}, err
		}
	}
	// Walk the sender into the strike zone so the crash lands at the
	// storm's point of maximal damage, then crash and wake the receiver.
	for extra := uint64(0); !storm.Parked() && extra < k; extra++ {
		if err := send(); err != nil {
			return campRow{}, err
		}
	}
	g.b.Reset()
	if err := g.b.Wake(); err != nil {
		return campRow{}, err
	}
	for i := 0; i < 2*cfg.Packets; i++ {
		if err := send(); err != nil {
			return campRow{}, err
		}
	}
	storm.Deactivate()
	g.replayAll()
	st := storm.Stats()
	return campRow{
		defense:   fmt.Sprintf("K=%d", k),
		sent:      sent,
		delivered: g.nDeliver,
		cost:      fmt.Sprintf("dropped %d, parked reset", st.Dropped),
		replays:   g.replays,
	}, nil
}

// rekeyCutRow prices exchange suppression against the retry budget: the
// campaign eats the first 6 exchange attempts and fires a 48-packet
// blackout at the cutover it cannot ultimately prevent. A shallow budget
// (MaxAttempts=2) abandons the trigger repeatedly before converging; a
// deep one rides the suppression out in a single trigger.
func rekeyCutRow(cfg CampaignsConfig, maxAttempts int) (campRow, error) {
	dir, err := os.MkdirTemp("", "campaign-rekey-*")
	if err != nil {
		return campRow{}, err
	}
	defer os.RemoveAll(dir)

	const k = 25
	payload := make([]byte, 280)
	mkGateway := func(name string) (*ipsec.Gateway, error) {
		j, err := store.OpenJournal(filepath.Join(dir, name+".journal"), store.JournalWithoutSync())
		if err != nil {
			return nil, err
		}
		return ipsec.NewGateway(ipsec.GatewayConfig{
			Journal: j, K: k, W: 64,
			// The soft lifetime trips midway through phase 1.
			Lifetime: ipsec.Lifetime{SoftBytes: uint64(cfg.Packets) * 300 / 2},
		})
	}
	A, err := mkGateway("a")
	if err != nil {
		return campRow{}, err
	}
	defer func() { A.Close(); A.Journal().Close() }()
	B, err := mkGateway("b")
	if err != nil {
		return campRow{}, err
	}
	defer func() { B.Close(); B.Journal().Close() }()

	cut := adversary.NewRekeyCut(adversary.RekeyCutConfig{
		SuppressExchanges: 6, BlackoutPackets: 48,
	})
	var (
		history []([]byte)
		seen    = make(map[string]bool)
		row     campRow
	)
	open := func(w []byte) {
		for tries := 0; ; tries++ {
			_, v, err := B.Open(w)
			if err != nil {
				return
			}
			if v == core.VerdictHorizon && tries < 10000 {
				time.Sleep(10 * time.Microsecond)
				continue
			}
			if v.Delivered() {
				if seen[string(w)] {
					row.replays++
				} else {
					seen[string(w)] = true
					row.delivered++
				}
			}
			return
		}
	}
	link := &campLink{deliver: open}
	gate := wire.NewGateLink(link)
	if err := cut.Arm(adversary.Hooks{Gate: gate}); err != nil {
		return campRow{}, err
	}

	addrA := netip.AddrFrom4([4]byte{10, 0, 0, 1})
	addrB := netip.AddrFrom4([4]byte{10, 0, 0, 2})
	send := func() error {
		for tries := 0; ; tries++ {
			w, err := A.Seal(addrA, addrB, payload)
			if err == nil {
				row.sent++
				history = append(history, w)
				return gate.Send(w)
			}
			if !errors.Is(err, core.ErrSaveLag) || tries > 10000 {
				return err
			}
			time.Sleep(10 * time.Microsecond)
		}
	}

	res, err := ike.Establish(campIKE(cfg.Seed+201, "init"), campIKE(cfg.Seed+202, "resp"))
	if err != nil {
		return campRow{}, err
	}
	kk := res.Keys
	sel := ipsec.Selector{Src: netip.PrefixFrom(addrA, 32), Dst: netip.PrefixFrom(addrB, 32)}
	if _, err := A.AddOutbound(kk.SPIInitToResp, kk.InitToResp, sel); err != nil {
		return campRow{}, err
	}
	if _, err := B.AddInbound(kk.SPIInitToResp, kk.InitToResp); err != nil {
		return campRow{}, err
	}
	// The reverse direction exists so the orchestrator can track the pair.
	selR := ipsec.Selector{Src: netip.PrefixFrom(addrB, 32), Dst: netip.PrefixFrom(addrA, 32)}
	if _, err := B.AddOutbound(kk.SPIRespToInit, kk.RespToInit, selR); err != nil {
		return campRow{}, err
	}
	if _, err := A.AddInbound(kk.SPIRespToInit, kk.RespToInit); err != nil {
		return campRow{}, err
	}

	var vt time.Duration
	exchangeSeed := cfg.Seed + 300
	o, err := rekey.New(rekey.Config{
		A: A, B: B,
		Grace:       time.Hour,
		MaxAttempts: maxAttempts,
		Clock:       func() time.Duration { vt += 10 * time.Microsecond; return vt },
		Observer: func(ev rekey.Event) {
			if ev.Kind == rekey.EventCutover {
				cut.OnCutover()
			}
		},
		Exchange: func(oldAB, oldBA uint32) (ike.ChildKeys, error) {
			if cut.SuppressExchange() {
				return ike.ChildKeys{}, fmt.Errorf("exchange messages eaten by the adversary")
			}
			exchangeSeed++
			ini, err := ike.NewRekeyInitiator(campIKE(exchangeSeed, "gw-a"), oldAB, oldBA)
			if err != nil {
				return ike.ChildKeys{}, err
			}
			rsp, err := ike.NewRekeyResponder(campIKE(exchangeSeed+1000, "gw-b"), oldAB, oldBA)
			if err != nil {
				return ike.ChildKeys{}, err
			}
			m1, err := ini.Request()
			if err != nil {
				return ike.ChildKeys{}, err
			}
			m2, err := rsp.HandleRequest(m1)
			if err != nil {
				return ike.ChildKeys{}, err
			}
			if err := ini.HandleResponse(m2); err != nil {
				return ike.ChildKeys{}, err
			}
			return ini.ChildKeys(), nil
		},
	})
	if err != nil {
		return campRow{}, err
	}
	if _, err := o.Track(kk.SPIInitToResp, kk.SPIRespToInit); err != nil {
		return campRow{}, err
	}

	// Phase 1: traffic past the soft lifetime, then the attack window
	// opens and the rollover fights through the suppression.
	for i := 0; i < cfg.Packets; i++ {
		if err := send(); err != nil {
			return campRow{}, err
		}
	}
	cut.Activate()
	for polls := 0; o.Stats().Rollovers < 1; polls++ {
		if polls > 8*maxAttempts+40 {
			return campRow{}, fmt.Errorf("rollover never converged: %+v", o.Stats())
		}
		o.Poll() //nolint:errcheck // suppressed exchanges retry on the next poll
	}

	// Phase 2: the cutover blackout eats a bounded run of packets.
	for i := 0; i < cfg.Packets; i++ {
		if err := send(); err != nil {
			return campRow{}, err
		}
	}
	cut.Deactivate()
	for _, w := range history {
		open(w)
	}

	st := o.Stats()
	cs := cut.Stats()
	row.defense = fmt.Sprintf("MaxAttempts=%d", maxAttempts)
	row.abandoned = st.Abandoned
	row.rollovers = st.Rollovers
	row.cost = fmt.Sprintf("suppressed %d, abandoned %d, blackout %d",
		cs.Suppressed, st.Abandoned, cs.BlackoutDrops)
	return row, nil
}

// floodRow prices the failover-blackout replay flood against SAVE
// interval k: the campaign wiretaps all traffic, the primary crashes,
// and the recorded burst is injected exactly in the takeover wake window
// (via the cluster promotion hook). The SLO is absolute — zero replay
// acceptances even then; the k knob prices the wake window's
// false-reject bill (bounded by leap + replication lag).
func floodRow(cfg CampaignsConfig, k uint64) (campRow, error) {
	dir, err := os.MkdirTemp("", "campaign-flood-*")
	if err != nil {
		return campRow{}, err
	}
	defer os.RemoveAll(dir)
	openJ := func(name string) (store.Medium, error) {
		return store.OpenJournal(filepath.Join(dir, name+".log"), store.JournalWithoutSync())
	}
	jA, err := openJ("peer")
	if err != nil {
		return campRow{}, err
	}
	defer jA.Close()
	j1, err := openJ("node1")
	if err != nil {
		return campRow{}, err
	}
	defer j1.Close()
	j2, err := openJ("node2")
	if err != nil {
		return campRow{}, err
	}
	defer j2.Close()

	A, err := ipsec.NewGateway(ipsec.GatewayConfig{Journal: jA, K: k, W: 64})
	if err != nil {
		return campRow{}, err
	}
	defer A.Close()
	B1, err := ipsec.NewGateway(ipsec.GatewayConfig{Journal: j1, K: k, W: 64})
	if err != nil {
		return campRow{}, err
	}
	defer B1.Close()

	rng := rand.New(rand.NewSource(cfg.Seed + 400))
	keys := ipsec.KeyMaterial{AuthKey: make([]byte, ipsec.AuthKeySize)}
	rng.Read(keys.AuthKey)
	addrA := netip.AddrFrom4([4]byte{10, 2, 0, 1})
	addrB := netip.AddrFrom4([4]byte{10, 2, 0, 2})
	const ab = uint32(0xC100)
	sel := ipsec.Selector{Src: netip.PrefixFrom(addrA, 32), Dst: netip.PrefixFrom(addrB, 32)}
	if _, err := A.AddOutbound(ab, keys, sel); err != nil {
		return campRow{}, err
	}
	if _, err := B1.AddInbound(ab, keys); err != nil {
		return campRow{}, err
	}

	var (
		row       campRow
		seen      = make(map[string]bool)
		history   [][]byte
		cur       = B1
		buffering bool
		pending   [][]byte
	)
	open := func(w []byte) {
		for tries := 0; ; tries++ {
			_, v, err := cur.Open(w)
			if err != nil {
				return
			}
			if v == core.VerdictHorizon && tries < 10000 {
				time.Sleep(10 * time.Microsecond)
				continue
			}
			if v.Delivered() {
				if seen[string(w)] {
					row.replays++
				} else {
					seen[string(w)] = true
					row.delivered++
				}
			}
			return
		}
	}
	link := &campLink{deliver: func(p []byte) {
		if buffering {
			pending = append(pending, p)
			return
		}
		open(p)
	}}
	gate := wire.NewGateLink(link)
	flood := adversary.NewBlackoutFlood(adversary.BlackoutFloodConfig{MaxBurst: 256})
	if err := flood.Arm(adversary.Hooks{Gate: gate}); err != nil {
		return campRow{}, err
	}

	sb, err := cluster.NewStandby(cluster.Config{
		Source: j1, Journal: j2, K: k,
		// The campaign's hook point: the flood fires inside the takeover
		// wake window, between the epoch fence and the wake itself.
		OnPromote: func(epoch uint64) { flood.OnTakeover(epoch) },
	})
	if err != nil {
		return campRow{}, err
	}
	defer sb.Stop()
	if err := sb.Start(); err != nil {
		return campRow{}, err
	}
	if err := sb.Mirror(B1.Snapshot()); err != nil {
		return campRow{}, err
	}

	payload := make([]byte, 120)
	send := func() error {
		for tries := 0; ; tries++ {
			w, err := A.Seal(addrA, addrB, payload)
			if err == nil {
				row.sent++
				history = append(history, w)
				return gate.Send(w)
			}
			if !errors.Is(err, core.ErrSaveLag) || tries > 10000 {
				return err
			}
			time.Sleep(10 * time.Microsecond)
		}
	}

	// Phase 1: recorded traffic through the primary.
	for i := 0; i < cfg.Packets; i++ {
		if err := send(); err != nil {
			return campRow{}, err
		}
	}

	// Crash; the flood arms and fires inside the promotion wake window.
	flood.Activate()
	B1.ResetAll()
	buffering = true
	gw2, _, err := sb.Takeover()
	if err != nil {
		return campRow{}, err
	}
	cur = gw2
	buffering = false
	for _, p := range pending {
		open(p) // the flood lands as the promoted node comes up
	}
	pending = nil
	flood.Deactivate()

	// Phase 2: fresh traffic pays the wake window's false-reject bill.
	for i := 0; i < cfg.Packets; i++ {
		if err := send(); err != nil {
			return campRow{}, err
		}
	}
	for _, w := range history {
		open(w)
	}

	st := flood.Stats()
	row.defense = fmt.Sprintf("K=%d", k)
	row.cost = fmt.Sprintf("recorded %d, flooded %d", st.Recorded, st.Flooded)
	return row, nil
}
