package experiments

import (
	"fmt"
	"sync"
	"time"

	"antireplay/internal/core"
	"antireplay/internal/store"
)

// DatapathConfig parameterizes the concurrent-admission comparison.
type DatapathConfig struct {
	// Goroutines is the sweep of concurrent admitter counts.
	Goroutines []int
	// Packets is the total number of admissions per measurement.
	Packets int
	// K is the SAVE interval (large enough that admission, not
	// persistence, dominates).
	K uint64
	// W is the anti-replay window width.
	W int
}

// DefaultDatapathConfig sweeps 1..8 admitters over a million packets.
func DefaultDatapathConfig() DatapathConfig {
	return DatapathConfig{
		Goroutines: []int{1, 2, 4, 8},
		Packets:    1 << 20,
		K:          1 << 12,
		W:          1024,
	}
}

// Datapath prices the receiver's concurrent admission fast path against the
// mutex-serialized baseline: G goroutines split one in-order stream
// (striped, so neighbours interleave within the window) and push it through
// a Receiver backed by (a) the default Bitmap window behind the receiver
// mutex and (b) the seqwin.Atomic window on the lock-minimizing fast path.
// Wall-clock throughput is the headline; on a multi-core host the fast
// path should scale with GOMAXPROCS while the mutex receiver stays at
// single-core speed (the acceptance target is >= 3x at 8 goroutines).
func Datapath(cfg DatapathConfig) (*Table, error) {
	t := &Table{
		ID:    "datapath",
		Title: "Concurrent admission: mutex receiver vs atomic fast path",
		Note: "Expect fast_mpps to grow with goroutines on multi-core hosts while " +
			"mutex_mpps stays flat; both deliver identical verdicts (differential " +
			"tests). Single-core hosts show speedup near 1x.",
		Columns: []string{"goroutines", "packets", "mutex_mpps", "fast_mpps", "speedup"},
	}
	for _, g := range cfg.Goroutines {
		mutexRate, err := datapathRate(cfg, g, false)
		if err != nil {
			return nil, err
		}
		fastRate, err := datapathRate(cfg, g, true)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(g), fmt.Sprint(cfg.Packets),
			fmt.Sprintf("%.2f", mutexRate), fmt.Sprintf("%.2f", fastRate),
			fmt.Sprintf("%.2fx", fastRate/mutexRate))
	}
	return t, nil
}

// datapathRate measures one configuration, returning delivered throughput
// in million packets per second.
func datapathRate(cfg DatapathConfig, goroutines int, concurrent bool) (float64, error) {
	var m store.Mem
	r, err := core.NewReceiver(core.ReceiverConfig{
		K: cfg.K, W: cfg.W, Store: &m, Concurrent: concurrent,
	})
	if err != nil {
		return 0, fmt.Errorf("experiments: datapath receiver: %w", err)
	}
	perG := cfg.Packets / goroutines
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Striped in-order stream: goroutine g admits g+1, g+1+G, ...
			// — the interleaving a multi-queue NIC produces, mixing
			// DecisionNew with in-window marks.
			s := uint64(g + 1)
			for i := 0; i < perG; i++ {
				r.Admit(s)
				s += uint64(goroutines)
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	total := float64(perG * goroutines)
	return total / elapsed.Seconds() / 1e6, nil
}
