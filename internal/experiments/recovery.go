package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"antireplay/internal/ike"
	"antireplay/internal/store"
)

// RecoveryConfig parameterizes the §3 recovery-cost comparison.
type RecoveryConfig struct {
	// SACounts is the sweep of concurrent SAs the reset host holds.
	SACounts []int
	// FastDH swaps the 2048-bit group for a small test group; the shape
	// (relative scaling) is identical, the absolute times much smaller.
	FastDH bool
	// Seed drives key generation.
	Seed int64
}

// DefaultRecoveryConfig sweeps 1..64 SAs with real group-14 DH.
func DefaultRecoveryConfig() RecoveryConfig {
	return RecoveryConfig{SACounts: []int{1, 4, 16, 64}, Seed: 1}
}

// RecoveryCost prices the two ways to recover from a reset: the IETF
// remedy — delete and renegotiate every SA with IKE (4 messages, 4 modular
// exponentiations per SA pair) — against the paper's SAVE/FETCH wake-up
// (one FETCH and one synchronous SAVE per SA, no network traffic, no
// asymmetric crypto). The paper's §3 motivation is exactly this gap,
// "especially for a host with multiple existing SAs".
func RecoveryCost(cfg RecoveryConfig) (*Table, error) {
	t := &Table{
		ID:    "recovery",
		Title: "Reset recovery: IKE re-establishment vs SAVE/FETCH (§3)",
		Note: "Expect IKE cost to grow linearly in the SA count and exceed SAVE/FETCH by " +
			"orders of magnitude; SAVE/FETCH needs zero network messages.",
		Columns: []string{"n_sas", "ike_ms", "ike_msgs", "ike_modexps",
			"savefetch_ms", "sf_msgs", "speedup"},
	}

	dir, err := os.MkdirTemp("", "recovery-*")
	if err != nil {
		return nil, fmt.Errorf("experiments: recovery tempdir: %w", err)
	}
	defer os.RemoveAll(dir)

	var group *ike.Group
	if cfg.FastDH {
		group = ike.TestGroup()
	}

	for _, n := range cfg.SACounts {
		// IKE path: n full handshakes.
		ikeStart := time.Now()
		msgs, modexps := 0, 0
		for i := 0; i < n; i++ {
			icfg := ike.Config{
				PSK:   []byte("recovery-bench-psk"),
				Rand:  rand.New(rand.NewSource(cfg.Seed + int64(i))),
				Group: group,
				ID:    "initiator",
			}
			rcfg := icfg
			rcfg.Rand = rand.New(rand.NewSource(cfg.Seed + int64(i) + 1e6))
			rcfg.ID = "responder"
			res, err := ike.Establish(icfg, rcfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: recovery handshake: %w", err)
			}
			msgs += res.Messages
			modexps += res.InitiatorStats.ModExps + res.ResponderStats.ModExps
		}
		ikeElapsed := time.Since(ikeStart)

		// SAVE/FETCH path: per SA, one FETCH plus one synchronous SAVE of
		// the leaped value on a real (fsynced) file store.
		stores := make([]*store.File, n)
		for i := range stores {
			stores[i] = store.NewFile(filepath.Join(dir, fmt.Sprintf("sa-%d-%d.dat", n, i)))
			if err := stores[i].Save(uint64(1000 + i)); err != nil {
				return nil, fmt.Errorf("experiments: recovery seed store: %w", err)
			}
		}
		sfStart := time.Now()
		for _, st := range stores {
			v, ok, err := st.Fetch()
			if err != nil || !ok {
				return nil, fmt.Errorf("experiments: recovery fetch: ok=%v err=%w", ok, err)
			}
			if err := st.Save(v + 50); err != nil {
				return nil, fmt.Errorf("experiments: recovery save: %w", err)
			}
		}
		sfElapsed := time.Since(sfStart)

		speedup := float64(ikeElapsed) / float64(sfElapsed)
		t.AddRow(fmt.Sprint(n),
			fmt.Sprintf("%.3f", ikeElapsed.Seconds()*1e3),
			fmt.Sprint(msgs),
			fmt.Sprint(modexps),
			fmt.Sprintf("%.3f", sfElapsed.Seconds()*1e3),
			"0",
			fmt.Sprintf("%.1fx", speedup))
	}
	return t, nil
}
