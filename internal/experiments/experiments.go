// Package experiments regenerates every figure and table of the paper's
// analysis, plus extension experiments beyond the paper (E1–E13).
//
// Each experiment is a pure function from a parameter struct (with a
// Default* constructor) to a *Table; all randomness is seeded, so runs are
// reproducible bit-for-bit. The cmd/benchtables binary and the root
// bench_test.go both call these functions; each Table.Note records the
// expected shapes next to paper claims.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Table is one experiment's rendered result.
type Table struct {
	// ID is the short experiment id (e.g. "fig1").
	ID string
	// Title is the human heading.
	Title string
	// Note records the paper reference and the expected shape.
	Note string
	// Columns are the header cells.
	Columns []string
	// Rows are the data cells, formatted.
	Rows [][]string
}

// AddRow appends one formatted row. It panics if the cell count does not
// match the header (programmer error in an experiment).
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("experiments: table %s: row has %d cells, want %d", t.ID, len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "=== %s: %s ===\n", t.ID, t.Title); err != nil {
		return fmt.Errorf("experiments: render: %w", err)
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Note); err != nil {
			return fmt.Errorf("experiments: render: %w", err)
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if _, err := fmt.Fprintln(tw, strings.Join(t.Columns, "\t")); err != nil {
		return fmt.Errorf("experiments: render: %w", err)
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(tw, strings.Join(row, "\t")); err != nil {
			return fmt.Errorf("experiments: render: %w", err)
		}
	}
	if err := tw.Flush(); err != nil {
		return fmt.Errorf("experiments: render: %w", err)
	}
	return nil
}

// RenderCSV writes the table as CSV (header then rows).
func (t *Table) RenderCSV(w io.Writer) error {
	write := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := write(t.Columns); err != nil {
		return fmt.Errorf("experiments: render csv: %w", err)
	}
	for _, row := range t.Rows {
		if err := write(row); err != nil {
			return fmt.Errorf("experiments: render csv: %w", err)
		}
	}
	return nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	if err := t.Render(&sb); err != nil {
		return fmt.Sprintf("table %s: %v", t.ID, err)
	}
	return sb.String()
}

// Runner is one experiment entry in the registry.
type Runner struct {
	// ID matches Table.ID.
	ID string
	// Paper names the paper artifact reproduced.
	Paper string
	// Run executes the experiment with default parameters. fast selects a
	// cheaper parameterization where one exists (same shape, less work).
	Run func(fast bool) (*Table, error)
}

// All returns the experiment registry in presentation order.
func All() []Runner {
	return []Runner{
		{ID: "fig1", Paper: "Figure 1 (sender reset analysis)", Run: func(fast bool) (*Table, error) {
			cfg := DefaultFig1Config()
			return Fig1SenderReset(cfg)
		}},
		{ID: "fig2", Paper: "Figure 2 (receiver reset analysis)", Run: func(fast bool) (*Table, error) {
			cfg := DefaultFig2Config()
			return Fig2ReceiverReset(cfg)
		}},
		{ID: "unbounded", Paper: "§3 unbounded failures of the baseline", Run: func(fast bool) (*Table, error) {
			cfg := DefaultUnboundedConfig()
			if fast {
				cfg.Traffic = cfg.Traffic[:2]
			}
			return UnboundedBaseline(cfg)
		}},
		{ID: "sizing", Paper: "§4 SAVE-interval sizing example", Run: func(fast bool) (*Table, error) {
			cfg := DefaultSizingConfig()
			if fast {
				cfg.Samples = 32
			}
			return SaveIntervalSizing(cfg)
		}},
		{ID: "convsender", Paper: "§5 condition (i): sender convergence", Run: func(fast bool) (*Table, error) {
			return ConvergenceSender(DefaultConvergenceConfig())
		}},
		{ID: "convreceiver", Paper: "§5 condition (ii): receiver convergence", Run: func(fast bool) (*Table, error) {
			return ConvergenceReceiver(DefaultConvergenceConfig())
		}},
		{ID: "recovery", Paper: "§3 cost of SA re-establishment vs SAVE/FETCH", Run: func(fast bool) (*Table, error) {
			cfg := DefaultRecoveryConfig()
			if fast {
				cfg.FastDH = true
				cfg.SACounts = []int{1, 4, 16}
			}
			return RecoveryCost(cfg)
		}},
		{ID: "prolonged", Paper: "§6 prolonged resets with DPD", Run: func(fast bool) (*Table, error) {
			return ProlongedReset(DefaultProlongedConfig())
		}},
		{ID: "doublereset", Paper: "§4 second consideration: double reset", Run: func(fast bool) (*Table, error) {
			return DoubleReset(DefaultDoubleResetConfig())
		}},
		{ID: "leap", Paper: "leap-number ablation (why 2K)", Run: func(fast bool) (*Table, error) {
			return LeapAblation(DefaultLeapConfig())
		}},
		{ID: "delivery", Paper: "§2 w-Delivery and Discrimination", Run: func(fast bool) (*Table, error) {
			cfg := DefaultDeliveryConfig()
			if fast {
				cfg.Messages = 2000
			}
			return Delivery(cfg)
		}},
		{ID: "overhead", Paper: "SAVE overhead amortization", Run: func(fast bool) (*Table, error) {
			cfg := DefaultOverheadConfig()
			if fast {
				cfg.Messages = 20000
			}
			return SaveOverhead(cfg)
		}},
		{ID: "horizon", Paper: "analysis gap: loss jump + torn save (README.md)", Run: func(fast bool) (*Table, error) {
			return LossJumpHorizon(DefaultHorizonConfig())
		}},
		{ID: "gateway", Paper: "gateway-scale SAVE: shared journal vs per-SA files", Run: func(fast bool) (*Table, error) {
			cfg := DefaultGatewayConfig()
			if fast {
				cfg.SACounts = []int{100, 250}
			}
			return GatewayPersistence(cfg)
		}},
		{ID: "datapath", Paper: "extension: concurrent admission fast path vs mutex receiver", Run: func(fast bool) (*Table, error) {
			cfg := DefaultDatapathConfig()
			if fast {
				cfg.Packets = 1 << 18
				cfg.Goroutines = []int{1, 4}
			}
			return Datapath(cfg)
		}},
		{ID: "rekey", Paper: "extension: IKE-driven rollover under resets (make-before-break)", Run: func(fast bool) (*Table, error) {
			cfg := DefaultRekeyConfig()
			if fast {
				cfg.FastDH = true
				cfg.Tunnels = 2
				cfg.LossProbs = []float64{0, 0.25}
			}
			return RekeyRollover(cfg)
		}},
		{ID: "failover", Paper: "extension: HA failover as the paper's reset (epoch-fenced takeover)", Run: func(fast bool) (*Table, error) {
			cfg := DefaultFailoverConfig()
			if fast {
				cfg.Tunnels = 2
				cfg.PacketsPerPhase = 80
				cfg.LossProbs = []float64{0, 0.25}
			}
			return Failover(cfg)
		}},
		{ID: "hotpath", Paper: "extension: hot-path cost (commit pipeline, zero-alloc datapath, wait-free admission)", Run: func(fast bool) (*Table, error) {
			cfg := DefaultHotpathConfig()
			if fast {
				cfg.Records = 64000
				cfg.Packets = 40000
			}
			return Hotpath(cfg)
		}},
		{ID: "scale", Paper: "extension: journal lanes at million-SA scale (concurrent recovery, compact cells, per-SA heap)", Run: func(fast bool) (*Table, error) {
			cfg := DefaultScaleConfig()
			if fast {
				cfg.Cells = 50_000
				cfg.SAs = 50_000
			}
			return Scale(cfg)
		}},
		{ID: "transport", Paper: "extension: the wire layer (fragment attacks rejected, UDP loopback line rate)", Run: func(fast bool) (*Table, error) {
			cfg := DefaultTransportConfig()
			if fast {
				cfg.Datagrams = 50
				cfg.FloodIDs = 128
				cfg.UDPPackets = 4000
			}
			return Transport(cfg)
		}},
		{ID: "campaigns", Paper: "extension: stealth-DoS campaigns (bounded degradation, zero replay acceptance)", Run: func(fast bool) (*Table, error) {
			cfg := DefaultCampaignsConfig()
			if fast {
				cfg.Packets = 240
			}
			return Campaigns(cfg)
		}},
		{ID: "diskfault", Paper: "extension: storage fault domains (lane quarantine, bounded degradation, standby lane repair)", Run: func(fast bool) (*Table, error) {
			cfg := DefaultDiskfaultConfig()
			if fast {
				cfg.Packets = 30
				cfg.Lanes = 16
			}
			return Diskfault(cfg)
		}},
	}
}

// ByID returns the runner with the given id.
func ByID(id string) (Runner, bool) {
	for _, r := range All() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}
