package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// TestFailoverAcceptance runs the HA failover experiment and asserts the
// acceptance criteria on its cells. The experiment itself errors on the
// hard invariants (a wake edge below the crash edge, a false-reject count
// beyond the wake window, an unfenced deposed journal, a counter
// regression); the assertions here pin the reported numbers so a silently
// weakened experiment cannot pass either.
func TestFailoverAcceptance(t *testing.T) {
	cfg := DefaultFailoverConfig()
	cfg.Tunnels = 2
	cfg.PacketsPerPhase = 80
	cfg.LossProbs = []float64{0, 0.25}

	tbl, err := Failover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	col := make(map[string]int, len(tbl.Columns))
	for i, c := range tbl.Columns {
		col[c] = i
	}
	cell := func(row []string, name string) string {
		i, ok := col[name]
		if !ok {
			t.Fatalf("column %q missing from %v", name, tbl.Columns)
		}
		return row[i]
	}
	num := func(row []string, name string) int {
		s := cell(row, name)
		if i := strings.IndexByte(s, ' '); i >= 0 {
			s = s[:i] // "60 (pre 0)" -> "60"
		}
		n, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("column %q cell %q: %v", name, cell(row, name), err)
		}
		return n
	}

	if len(tbl.Rows) != len(cfg.LossProbs) {
		t.Fatalf("got %d rows, want %d", len(tbl.Rows), len(cfg.LossProbs))
	}
	for _, row := range tbl.Rows {
		loss := cell(row, "loss")
		if got := num(row, "replay_accepts"); got != 0 {
			t.Errorf("loss %s: %d replay acceptances across two failovers, want 0", loss, got)
		}
		if got := num(row, "regressions"); got != 0 {
			t.Errorf("loss %s: %d counter regressions after failback, want 0", loss, got)
		}
		// The post-failover sacrifice must fit the wake window, and the
		// window itself must be bounded by the reported replication lag
		// plus the per-SA leap slack — the gauge-bounds-the-window claim.
		fr, wb := num(row, "false_rejects"), num(row, "window_bound")
		if fr > wb {
			t.Errorf("loss %s: false_rejects %d > window_bound %d", loss, fr, wb)
		}
		leap := int(2 * cfg.K)
		if lagBound := num(row, "lag_values") + cfg.Tunnels*(leap+int(2*cfg.K)); wb > lagBound {
			t.Errorf("loss %s: window_bound %d exceeds lag-derived bound %d", loss, wb, lagBound)
		}
		// Split brain: the deposed primary stalls inside its horizon.
		if ds := num(row, "deposed_seals"); ds > cfg.Tunnels*leap {
			t.Errorf("loss %s: deposed primary sealed %d packets, beyond %d", loss, ds, cfg.Tunnels*leap)
		}
		if got := cell(row, "epochs"); got != "1->2" {
			t.Errorf("loss %s: epochs %q, want \"1->2\"", loss, got)
		}
		if num(row, "delivered") == 0 {
			t.Errorf("loss %s: nothing delivered", loss)
		}
	}
}
