package experiments

import (
	"fmt"
	"time"
)

// LeapConfig parameterizes the leap-number ablation.
type LeapConfig struct {
	// K is the SAVE interval.
	K uint64
	// Factors is the sweep of leap multipliers λ (leap = ceil(λ*K)).
	// A zero entry means "no leap at all".
	Factors []float64
	// Seed drives the simulation.
	Seed int64
}

// DefaultLeapConfig sweeps λ from 0 to the paper's 2 and one beyond.
func DefaultLeapConfig() LeapConfig {
	return LeapConfig{K: 24, Factors: []float64{0, 0.5, 1, 1.5, 2, 3}, Seed: 1}
}

// LeapAblation answers "why 2K?": the reset is injected at the worst point
// of the save cycle (the save has been in flight for almost a full trigger
// interval, so FETCH returns a value nearly 2K behind). With λ < 2 the
// leaped sender collides with already-used sequence numbers (fresh
// discards) and the leaped receiver's edge lands below already-received
// numbers (replays accepted — a safety violation). λ = 2 is the smallest
// safe multiplier; larger values only waste more numbers.
func LeapAblation(cfg LeapConfig) (*Table, error) {
	t := &Table{
		ID:    "leap",
		Title: "Leap-number ablation: leap = ceil(λK) under a worst-case reset",
		Note: fmt.Sprintf("K=%d, reset just before the next SAVE starts with the previous one torn. "+
			"Expect: λ<2 rows unsafe (duplicate deliveries / fresh discards); λ>=2 rows safe.", cfg.K),
		Columns: []string{"lambda", "sender_fresh_discards", "receiver_dup_deliveries", "safe"},
	}
	for _, lambda := range cfg.Factors {
		fd, err := leapSenderDamage(cfg, lambda)
		if err != nil {
			return nil, err
		}
		ra, err := leapReceiverDamage(cfg, lambda)
		if err != nil {
			return nil, err
		}
		safe := fd == 0 && ra == 0
		t.AddRow(fmt.Sprintf("%.1f", lambda), fmt.Sprint(fd), fmt.Sprint(ra), fmt.Sprint(safe))
	}
	return t, nil
}

// leapFlowConfig sizes the save to span a whole trigger interval, making
// the torn-save gap approach its 2K maximum.
func leapFlowConfig(cfg LeapConfig, lambda float64) FlowConfig {
	fc := DefaultFlowConfig(cfg.Seed)
	fc.Kp, fc.Kq = cfg.K, cfg.K
	fc.W = 64
	fc.SaveDelay = time.Duration(cfg.K) * fc.SendInterval
	if lambda == 0 {
		fc.LeapFactor = -1 // disable the leap entirely
	} else {
		fc.LeapFactor = lambda
	}
	return fc
}

func leapSenderDamage(cfg LeapConfig, lambda float64) (uint64, error) {
	f, err := NewFlow(leapFlowConfig(cfg, lambda))
	if err != nil {
		return 0, err
	}
	resetAt := 4*cfg.K - 1 // just before the next save starts; current one torn
	f.AtSendCount(resetAt, func() {
		f.Sender.Reset()
		f.Engine.After(time.Millisecond, f.Sender.Wake)
	})
	f.StartTraffic(time.Hour)
	fc := f.cfg
	f.Run(time.Duration(resetAt)*fc.SendInterval + time.Millisecond + 50*time.Millisecond)
	return f.Matrix.FreshDiscarded(), nil
}

func leapReceiverDamage(cfg LeapConfig, lambda float64) (uint64, error) {
	f, err := NewFlow(leapFlowConfig(cfg, lambda))
	if err != nil {
		return 0, err
	}
	fc := f.cfg
	resetAt := 4*cfg.K - 1
	f.AtObserveCount(resetAt, func() {
		f.StopTraffic() // isolate the replay damage from fresh-traffic effects
		f.Receiver.Reset()
		f.Engine.After(time.Millisecond, func() {
			f.Receiver.Wake()
			f.Replayer.ReplayAllAt(f.Engine.Now()+fc.SaveDelay+fc.Link.Delay, fc.SendInterval)
		})
	})
	f.StartTraffic(time.Hour)
	f.Run(time.Duration(resetAt)*fc.SendInterval + time.Millisecond + 50*time.Millisecond)
	return f.DupDeliveries(), nil
}
