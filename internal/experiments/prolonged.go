package experiments

import (
	"fmt"
	"time"

	"antireplay/internal/core"
	"antireplay/internal/dpd"
	"antireplay/internal/netsim"
	"antireplay/internal/store"
)

// ProlongedConfig parameterizes the §6 prolonged-reset scenario.
type ProlongedConfig struct {
	// Outages is the sweep of reset durations.
	Outages []time.Duration
	// IdleTimeout, AckTimeout, MaxProbes, HoldTime configure DPD at the
	// surviving host.
	IdleTimeout time.Duration
	AckTimeout  time.Duration
	MaxProbes   int
	HoldTime    time.Duration
	// Seed drives the simulation.
	Seed int64
}

// DefaultProlongedConfig detects death after 10s+3*2s=16s and holds SAs for
// 60s, sweeping outages across the alive/dead/expired regimes.
func DefaultProlongedConfig() ProlongedConfig {
	return ProlongedConfig{
		Outages:     []time.Duration{5 * time.Second, 30 * time.Second, 70 * time.Second, 120 * time.Second},
		IdleTimeout: 10 * time.Second,
		AckTimeout:  2 * time.Second,
		MaxProbes:   3,
		HoldTime:    60 * time.Second,
		Seed:        1,
	}
}

// ProlongedReset reproduces the §6 remark: host A keeps its SAs alive for a
// hold time after detecting that host B is unreachable. If B wakes within
// the hold time, its secured "I am up" message — whose sequence number was
// leaped past everything used before the reset — revives the association
// with no renegotiation; a replayed pre-reset message cannot, because its
// sequence number falls at or below A's window edge. Past the hold time the
// SA is expired and only IKE can recover.
func ProlongedReset(cfg ProlongedConfig) (*Table, error) {
	t := &Table{
		ID:    "prolonged",
		Title: "Prolonged resets with dead-peer detection (§6)",
		Note: fmt.Sprintf("Death declared at %v, SAs held %v. Expect revival iff the wake lands before expiry; "+
			"replayed announcements never revive.",
			cfg.IdleTimeout+time.Duration(cfg.MaxProbes)*cfg.AckTimeout, cfg.HoldTime),
		Columns: []string{"outage", "state_at_wake", "resync_verdict",
			"revived", "replayed_resync_delivered", "ike_required"},
	}
	for _, outage := range cfg.Outages {
		row, err := prolongedRow(cfg, outage)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func prolongedRow(cfg ProlongedConfig, outage time.Duration) ([]string, error) {
	engine := netsim.NewEngine(cfg.Seed)

	// Host B's sending state (B -> A direction), with SAVE/FETCH.
	var bStore store.Mem
	bSender, err := core.NewSender(core.SenderConfig{
		K:     25,
		Store: &bStore,
		Saver: netsim.NewSimSaver(engine, &bStore, 100*time.Microsecond),
		Clock: engine.Now,
	})
	if err != nil {
		return nil, err
	}
	// Host A's receiving state for B's traffic.
	var aStore store.Mem
	aReceiver, err := core.NewReceiver(core.ReceiverConfig{
		K:     25,
		W:     64,
		Store: &aStore,
		Saver: netsim.NewSimSaver(engine, &aStore, 100*time.Microsecond),
		Clock: engine.Now,
	})
	if err != nil {
		return nil, err
	}

	mon, err := dpd.NewMonitor(dpd.Config{
		Engine:      engine,
		IdleTimeout: cfg.IdleTimeout,
		AckTimeout:  cfg.AckTimeout,
		MaxProbes:   cfg.MaxProbes,
		HoldTime:    cfg.HoldTime,
		SendProbe:   func(uint64) {}, // B is down; probes vanish
	})
	if err != nil {
		return nil, err
	}

	// Phase 1: B sends a message each second for 5s; A sees life.
	var lastSeqBeforeReset uint64
	for i := 1; i <= 5; i++ {
		engine.At(time.Duration(i)*time.Second, func() {
			seq, err := bSender.Next()
			if err != nil {
				return
			}
			lastSeqBeforeReset = seq
			if aReceiver.Admit(seq).Delivered() {
				mon.NoteInbound()
			}
		})
	}

	// Phase 2: B resets at 6s for the given outage.
	resetAt := 6 * time.Second
	wakeAt := resetAt + outage
	engine.At(resetAt, bSender.Reset)
	engine.At(wakeAt, bSender.Wake)

	var (
		stateAtWake     dpd.PeerState
		resyncVerdict   core.Verdict
		revived         bool
		replayDelivered bool
	)
	// Phase 3: on wake (plus save time), B announces itself; meanwhile an
	// adversary replays B's last pre-reset message.
	announceAt := wakeAt + time.Millisecond
	engine.At(announceAt, func() {
		stateAtWake = mon.State()

		// Adversarial replay of an old message first: it must not revive.
		if mon.State() != dpd.StateExpired {
			if aReceiver.Admit(lastSeqBeforeReset).Delivered() {
				replayDelivered = true
				mon.NoteInbound()
			}
		}

		if mon.State() == dpd.StateExpired {
			return // SA gone; only IKE can help
		}
		seq, err := bSender.Next() // the secured "I am up" (leaped seq)
		if err != nil {
			return
		}
		resyncVerdict = aReceiver.Admit(seq)
		if resyncVerdict.Delivered() {
			mon.NoteInbound()
			revived = mon.State() == dpd.StateAlive
		}
	})

	engine.RunUntil(wakeAt + 10*time.Second)

	ikeRequired := stateAtWake == dpd.StateExpired
	verdictStr := "n/a (expired)"
	if !ikeRequired {
		verdictStr = resyncVerdict.String()
	}
	return []string{
		outage.String(), stateAtWake.String(), verdictStr,
		fmt.Sprint(revived), fmt.Sprint(replayDelivered), fmt.Sprint(ikeRequired),
	}, nil
}
