package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func col(t *testing.T, tbl *Table, name string) int {
	t.Helper()
	for i, c := range tbl.Columns {
		if c == name {
			return i
		}
	}
	t.Fatalf("table %s has no column %q (have %v)", tbl.ID, name, tbl.Columns)
	return -1
}

func mustUint(t *testing.T, s string) uint64 {
	t.Helper()
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{ID: "x", Title: "T", Note: "n", Columns: []string{"a", "b"}}
	tbl.AddRow("1", "two")
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"=== x: T ===", "n", "a", "two"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	sb.Reset()
	if err := tbl.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != "a,b\n1,two\n" {
		t.Errorf("csv = %q", got)
	}
}

func TestTableAddRowPanicsOnMismatch(t *testing.T) {
	tbl := &Table{ID: "x", Columns: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Error("AddRow with wrong arity should panic")
		}
	}()
	tbl.AddRow("only-one")
}

func TestTableCSVEscaping(t *testing.T) {
	tbl := &Table{ID: "x", Columns: []string{"a"}}
	tbl.AddRow(`va"l,ue`)
	var sb strings.Builder
	if err := tbl.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != "a\n\"va\"\"l,ue\"\n" {
		t.Errorf("csv = %q", got)
	}
}

func TestFlowCleanDelivery(t *testing.T) {
	f, err := NewFlow(DefaultFlowConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	f.AtSendCount(1000, f.StopTraffic)
	f.StartTraffic(time.Hour)
	f.Run(time.Second)
	if f.Sent() != 1000 {
		t.Fatalf("sent = %d, want 1000", f.Sent())
	}
	if got := f.Matrix.FreshDelivered(); got != 1000 {
		t.Errorf("delivered = %d, want 1000", got)
	}
	if got := f.Matrix.FreshDiscarded(); got != 0 {
		t.Errorf("fresh discarded = %d, want 0", got)
	}
}

func TestFlowDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		cfg := DefaultFlowConfig(42)
		cfg.Link.LossProb = 0.1
		cfg.Link.ReorderProb = 0.2
		cfg.Link.ReorderDelay = 40 * time.Microsecond
		f, err := NewFlow(cfg)
		if err != nil {
			t.Fatal(err)
		}
		f.AtSendCount(2000, f.StopTraffic)
		f.ResetReceiver(2*time.Millisecond, 3*time.Millisecond)
		f.StartTraffic(time.Hour)
		f.Run(time.Second)
		return f.Matrix.FreshDelivered(), f.Matrix.FreshDiscarded()
	}
	d1, x1 := run()
	d2, x2 := run()
	if d1 != d2 || x1 != x2 {
		t.Errorf("non-deterministic flow: (%d,%d) vs (%d,%d)", d1, x1, d2, x2)
	}
}

func TestFig1Bounds(t *testing.T) {
	tbl, err := Fig1SenderReset(DefaultFig1Config())
	if err != nil {
		t.Fatal(err)
	}
	okCol := col(t, tbl, "ok")
	lostCol := col(t, tbl, "lost")
	boundCol := col(t, tbl, "bound_2K")
	states := map[string]bool{}
	for _, row := range tbl.Rows {
		if row[okCol] != "true" {
			t.Errorf("fig1 row violates bound: %v", row)
		}
		if mustUint(t, row[lostCol]) > mustUint(t, row[boundCol]) {
			t.Errorf("fig1 lost > bound: %v", row)
		}
		states[row[col(t, tbl, "save")]] = true
	}
	// The sweep must cover both branches of the Figure 1 analysis.
	if !states["in-flight"] || !states["committed"] {
		t.Errorf("fig1 sweep covered states %v, want both in-flight and committed", states)
	}
}

func TestFig2Bounds(t *testing.T) {
	tbl, err := Fig2ReceiverReset(DefaultFig2Config())
	if err != nil {
		t.Fatal(err)
	}
	accCol := col(t, tbl, "dup_delivered")
	sacCol := col(t, tbl, "sacrificed")
	boundCol := col(t, tbl, "bound_2K")
	repCol := col(t, tbl, "replayed")
	for _, row := range tbl.Rows {
		if got := mustUint(t, row[accCol]); got != 0 {
			t.Errorf("SAFETY: fig2 delivered %s duplicates: %v", row[accCol], row)
		}
		if mustUint(t, row[sacCol]) > mustUint(t, row[boundCol]) {
			t.Errorf("fig2 sacrificed > bound: %v", row)
		}
		if mustUint(t, row[repCol]) == 0 {
			t.Errorf("fig2 row replayed nothing — the adversary did not run: %v", row)
		}
	}
}

func TestUnboundedShape(t *testing.T) {
	cfg := DefaultUnboundedConfig()
	cfg.Traffic = []uint64{300, 600, 1200}
	tbl, err := UnboundedBaseline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	protoCol := col(t, tbl, "protocol")
	xCol := col(t, tbl, "x_msgs")
	raCol := col(t, tbl, "replays_delivered_again")
	fdCol := col(t, tbl, "fresh_discarded_after_sender_reset")
	for _, row := range tbl.Rows {
		x := mustUint(t, row[xCol])
		ra := mustUint(t, row[raCol])
		fd := mustUint(t, row[fdCol])
		switch row[protoCol] {
		case "baseline":
			// Damage grows with x: at least half of the replays land, and
			// the sender-reset discard count is within a factor of x.
			if ra < x/2 {
				t.Errorf("baseline x=%d accepted only %d replays", x, ra)
			}
			if fd < x/2 {
				t.Errorf("baseline x=%d discarded only %d fresh", x, fd)
			}
		case "resilient":
			if ra != 0 {
				t.Errorf("SAFETY: resilient accepted %d replays at x=%d", ra, x)
			}
			if fd > 2*25 {
				t.Errorf("resilient fresh discards %d > 2K at x=%d", fd, x)
			}
		default:
			t.Errorf("unknown protocol %q", row[protoCol])
		}
	}
	if !strings.Contains(tbl.Note, "slope") {
		t.Errorf("note lacks slope fits: %s", tbl.Note)
	}
}

func TestSizingTable(t *testing.T) {
	cfg := DefaultSizingConfig()
	cfg.Samples = 25
	tbl, err := SaveIntervalSizing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (paper + 3 media)", len(tbl.Rows))
	}
	if tbl.Rows[0][col(t, tbl, "K")] != "25" {
		t.Errorf("paper row K = %s, want 25", tbl.Rows[0][col(t, tbl, "K")])
	}
	for _, row := range tbl.Rows[1:] {
		if mustUint(t, row[col(t, tbl, "K")]) < 1 {
			t.Errorf("measured K < 1: %v", row)
		}
	}
}

func TestSizingKRule(t *testing.T) {
	tests := []struct {
		save, send time.Duration
		want       uint64
	}{
		{100 * time.Microsecond, 4 * time.Microsecond, 25},
		{100 * time.Microsecond, 3 * time.Microsecond, 34},
		{time.Microsecond, time.Millisecond, 1},
		{0, time.Microsecond, 1},
		{time.Microsecond, 0, 1},
	}
	for _, tt := range tests {
		if got := sizingK(tt.save, tt.send); got != tt.want {
			t.Errorf("sizingK(%v, %v) = %d, want %d", tt.save, tt.send, got, tt.want)
		}
	}
}

func TestConvergenceSenderTight(t *testing.T) {
	tbl, err := ConvergenceSender(DefaultConvergenceConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[col(t, tbl, "ok")] != "true" {
			t.Errorf("convsender row not ok: %v", row)
		}
		if row[col(t, tbl, "tight")] != "true" {
			t.Errorf("convsender worst case not tight (lost != 2K): %v", row)
		}
	}
}

func TestConvergenceReceiverBounds(t *testing.T) {
	tbl, err := ConvergenceReceiver(DefaultConvergenceConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[col(t, tbl, "ok")] != "true" {
			t.Errorf("convreceiver row not ok: %v", row)
		}
		if mustUint(t, row[col(t, tbl, "dup_delivered")]) != 0 {
			t.Errorf("SAFETY: convreceiver delivered duplicates: %v", row)
		}
		if row[col(t, tbl, "tight")] != "true" {
			t.Errorf("convreceiver worst case not tight (sacrificed != 2K): %v", row)
		}
	}
}

func TestRecoveryCostShape(t *testing.T) {
	cfg := RecoveryConfig{SACounts: []int{1, 4, 16}, FastDH: true, Seed: 1}
	tbl, err := RecoveryCost(cfg)
	if err != nil {
		t.Fatal(err)
	}
	msgsCol := col(t, tbl, "ike_msgs")
	modCol := col(t, tbl, "ike_modexps")
	for i, row := range tbl.Rows {
		n := uint64(cfg.SACounts[i])
		if got := mustUint(t, row[msgsCol]); got != 4*n {
			t.Errorf("n=%d: ike_msgs = %d, want %d", n, got, 4*n)
		}
		if got := mustUint(t, row[modCol]); got != 4*n {
			t.Errorf("n=%d: ike_modexps = %d, want %d", n, got, 4*n)
		}
		if row[col(t, tbl, "sf_msgs")] != "0" {
			t.Errorf("SAVE/FETCH should need zero messages: %v", row)
		}
	}
}

func TestProlongedResetRegimes(t *testing.T) {
	tbl, err := ProlongedReset(DefaultProlongedConfig())
	if err != nil {
		t.Fatal(err)
	}
	stCol := col(t, tbl, "state_at_wake")
	revCol := col(t, tbl, "revived")
	repCol := col(t, tbl, "replayed_resync_delivered")
	ikeCol := col(t, tbl, "ike_required")
	var sawAlive, sawDead, sawExpired bool
	for _, row := range tbl.Rows {
		if row[repCol] != "false" {
			t.Errorf("SAFETY: replayed announcement delivered: %v", row)
		}
		switch row[stCol] {
		case "alive", "probing":
			sawAlive = true
			if row[revCol] != "true" {
				t.Errorf("short outage should revive: %v", row)
			}
		case "dead":
			sawDead = true
			if row[revCol] != "true" || row[ikeCol] != "false" {
				t.Errorf("wake within hold should revive without IKE: %v", row)
			}
		case "expired":
			sawExpired = true
			if row[revCol] != "false" || row[ikeCol] != "true" {
				t.Errorf("wake after expiry should require IKE: %v", row)
			}
		}
	}
	if !sawAlive || !sawDead || !sawExpired {
		t.Errorf("sweep missed a regime: alive=%v dead=%v expired=%v", sawAlive, sawDead, sawExpired)
	}
}

func TestDoubleResetAblation(t *testing.T) {
	tbl, err := DoubleReset(DefaultDoubleResetConfig())
	if err != nil {
		t.Fatal(err)
	}
	variant := col(t, tbl, "variant")
	side := col(t, tbl, "side")
	safe := col(t, tbl, "safe")
	for _, row := range tbl.Rows {
		switch row[variant] {
		case "paper":
			if row[safe] != "true" {
				t.Errorf("SAFETY: paper variant unsafe: %v", row)
			}
		case "ablation":
			if row[safe] != "false" {
				t.Errorf("ablation (%s) unexpectedly safe — the experiment "+
					"no longer demonstrates why the post-wake SAVE matters: %v", row[side], row)
			}
		}
	}
}

func TestLeapAblationCliff(t *testing.T) {
	tbl, err := LeapAblation(DefaultLeapConfig())
	if err != nil {
		t.Fatal(err)
	}
	lambdaCol := col(t, tbl, "lambda")
	safeCol := col(t, tbl, "safe")
	raCol := col(t, tbl, "receiver_dup_deliveries")
	for _, row := range tbl.Rows {
		lambda, err := strconv.ParseFloat(row[lambdaCol], 64)
		if err != nil {
			t.Fatal(err)
		}
		if lambda >= 2 {
			if row[safeCol] != "true" {
				t.Errorf("lambda=%v should be safe: %v", lambda, row)
			}
			if mustUint(t, row[raCol]) != 0 {
				t.Errorf("SAFETY: lambda=%v accepted replays: %v", lambda, row)
			}
		} else {
			if row[safeCol] != "false" {
				t.Errorf("lambda=%v should be unsafe in the worst case: %v", lambda, row)
			}
		}
	}
}

func TestDeliveryConditions(t *testing.T) {
	cfg := DefaultDeliveryConfig()
	cfg.Messages = 3000
	tbl, err := Delivery(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nameCol := col(t, tbl, "link")
	dupCol := col(t, tbl, "dupes_delivered")
	wdCol := col(t, tbl, "window_discards")
	for _, row := range tbl.Rows {
		if got := mustUint(t, row[dupCol]); got != 0 {
			t.Errorf("DISCRIMINATION: %s delivered %d duplicates", row[nameCol], got)
		}
		wd := mustUint(t, row[wdCol])
		switch row[nameCol] {
		case "clean", "loss-5%", "dup-5%", "reorder<w":
			if wd != 0 {
				t.Errorf("w-DELIVERY: %s discarded %d in-window messages", row[nameCol], wd)
			}
		case "reorder>w":
			if wd == 0 {
				t.Errorf("reorder>w should show window discards (got 0)")
			}
		}
	}
}

func TestSaveOverheadShape(t *testing.T) {
	cfg := OverheadConfig{Messages: 50000, Ks: []uint64{0, 1, 100}}
	tbl, err := SaveOverhead(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tbl.Rows))
	}
	savesCol := col(t, tbl, "saves_started")
	kCol := col(t, tbl, "K")
	for _, row := range tbl.Rows {
		saves := mustUint(t, row[savesCol])
		switch row[kCol] {
		case "baseline":
			if saves != 0 {
				t.Errorf("baseline started %d saves", saves)
			}
		case "1":
			if saves == 0 {
				t.Errorf("K=1 started no saves")
			}
		}
	}
}

func TestLossJumpHorizonCliff(t *testing.T) {
	tbl, err := LossJumpHorizon(DefaultHorizonConfig())
	if err != nil {
		t.Fatal(err)
	}
	jumpCol := col(t, tbl, "jump")
	varCol := col(t, tbl, "variant")
	dupCol := col(t, tbl, "dup_delivery")
	safeCol := col(t, tbl, "safe")
	leap := 2 * DefaultHorizonConfig().K
	for _, row := range tbl.Rows {
		jump := mustUint(t, row[jumpCol])
		switch row[varCol] {
		case "paper":
			if jump > leap && row[dupCol] != "true" {
				t.Errorf("paper variant at jump %d should exhibit the duplicate (gap pin): %v", jump, row)
			}
			if jump < leap && row[dupCol] != "false" {
				t.Errorf("paper variant at jump %d should be safe: %v", jump, row)
			}
		case "strict":
			if row[dupCol] != "false" {
				t.Errorf("SAFETY: strict variant duplicated at jump %d: %v", jump, row)
			}
			if row[safeCol] != "true" {
				t.Errorf("strict variant not safe+live at jump %d: %v", jump, row)
			}
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig1", "fig2", "unbounded", "sizing", "convsender",
		"convreceiver", "recovery", "prolonged", "doublereset", "leap",
		"delivery", "overhead", "horizon", "gateway", "datapath", "rekey",
		"failover", "hotpath", "scale", "transport", "campaigns", "diskfault"}
	rs := All()
	if len(rs) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(rs), len(want))
	}
	for i, id := range want {
		if rs[i].ID != id {
			t.Errorf("registry[%d] = %s, want %s", i, rs[i].ID, id)
		}
		if rs[i].Paper == "" {
			t.Errorf("registry %s has no paper reference", rs[i].ID)
		}
	}
	if _, ok := ByID("fig1"); !ok {
		t.Error("ByID(fig1) not found")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID(nope) found")
	}
}

// TestRegistryRunsFast executes every experiment in fast mode end to end.
func TestRegistryRunsFast(t *testing.T) {
	if testing.Short() {
		t.Skip("registry sweep is slow")
	}
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			tbl, err := r.Run(true)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if len(tbl.Rows) == 0 {
				t.Error("empty table")
			}
			if tbl.ID != r.ID {
				t.Errorf("table ID %s, want %s", tbl.ID, r.ID)
			}
		})
	}
}
