package experiments

import (
	"runtime"
	"strconv"
	"strings"
	"testing"
)

// TestDatapathFastPathSpeedup is the acceptance gate for the concurrent
// admission fast path: at the largest goroutine count the atomic receiver
// must out-admit the mutex receiver. The full >= 3x target applies on
// multi-core hosts; the assertion scales down to "no regression" when the
// test host cannot exhibit parallelism.
func TestDatapathFastPathSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping million-packet admission sweep")
	}
	cfg := DatapathConfig{Goroutines: []int{8}, Packets: 1 << 19, K: 1 << 12, W: 1024}
	tbl, err := Datapath(cfg)
	if err != nil {
		t.Fatalf("Datapath: %v", err)
	}
	t.Logf("\n%s", tbl)

	col := func(name string) float64 {
		for i, c := range tbl.Columns {
			if c == name {
				v, err := strconv.ParseFloat(strings.TrimSuffix(tbl.Rows[0][i], "x"), 64)
				if err != nil {
					t.Fatalf("parse %s: %v", name, err)
				}
				return v
			}
		}
		t.Fatalf("no column %q", name)
		return 0
	}
	mutex, fast := col("mutex_mpps"), col("fast_mpps")
	if mutex <= 0 || fast <= 0 {
		t.Fatalf("degenerate rates: mutex=%f fast=%f", mutex, fast)
	}
	procs := runtime.GOMAXPROCS(0)
	switch {
	case procs >= 8:
		if fast < 3*mutex {
			t.Errorf("8 goroutines on %d procs: fast %.2f Mpps < 3x mutex %.2f Mpps", procs, fast, mutex)
		}
	case procs >= 4:
		if fast < 1.5*mutex {
			t.Errorf("8 goroutines on %d procs: fast %.2f Mpps < 1.5x mutex %.2f Mpps", procs, fast, mutex)
		}
	default:
		// No parallelism available: the fast path must at least not collapse
		// under contention it cannot exploit.
		if fast < 0.5*mutex {
			t.Errorf("8 goroutines on %d procs: fast %.2f Mpps < 0.5x mutex %.2f Mpps", procs, fast, mutex)
		}
	}
}
