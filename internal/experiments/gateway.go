package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"antireplay/internal/store"
)

// GatewayConfig parameterizes the gateway-persistence comparison.
type GatewayConfig struct {
	// SACounts is the sweep of SA populations.
	SACounts []int
	// SavesPerSA is how many SAVEs each SA issues.
	SavesPerSA int
	// Workers sizes the shared SaverPool.
	Workers int
	// BatchDelay is the journal's group-commit linger.
	BatchDelay time.Duration
}

// DefaultGatewayConfig sweeps up to the acceptance point: 1k SAs on one
// journal.
func DefaultGatewayConfig() GatewayConfig {
	return GatewayConfig{
		SACounts:   []int{100, 1000},
		SavesPerSA: 10,
		Workers:    16,
		BatchDelay: 200 * time.Microsecond,
	}
}

// GatewayPersistence prices the paper's SAVE operation at gateway scale:
// n SAs persisting through one group-committed Journal + shared SaverPool
// versus the same workload on the seed's one-file-per-SA stores (each save
// costing a temp-file fsync plus a directory fsync). The journal multiplexes
// every SA onto one durable medium, so concurrent SAVEs share fsyncs; the
// reduction column is the acceptance metric (>= 10x at 1000 SAs).
func GatewayPersistence(cfg GatewayConfig) (*Table, error) {
	t := &Table{
		ID:    "gateway",
		Title: "Gateway persistence: shared journal+pool vs per-SA files",
		Note: "Expect journal fsyncs to stay orders of magnitude below the per-file " +
			"count: group commit shares each fsync across every SA that saved since " +
			"the last one.",
		Columns: []string{"n_sas", "saves", "journal_fsyncs", "journal_ms",
			"perfile_fsyncs", "perfile_ms", "fsync_reduction"},
	}

	for _, n := range cfg.SACounts {
		dir, err := os.MkdirTemp("", "gwpersist-*")
		if err != nil {
			return nil, fmt.Errorf("experiments: gateway tempdir: %w", err)
		}

		// drive pushes the whole workload through savers built by mk,
		// returning the elapsed wall time. Saves for one SA are issued
		// back-to-back (coalescible), all SAs concurrently queued — a
		// burst across the population, the shape a busy gateway produces.
		drive := func(mk func(i int) *store.PoolSaver) (time.Duration, error) {
			start := time.Now()
			var wg sync.WaitGroup
			var mu sync.Mutex
			var firstErr error
			for i := 0; i < n; i++ {
				s := mk(i)
				wg.Add(cfg.SavesPerSA)
				for v := 1; v <= cfg.SavesPerSA; v++ {
					s.StartSave(uint64(v*25), func(err error) {
						if err != nil {
							mu.Lock()
							if firstErr == nil {
								firstErr = err
							}
							mu.Unlock()
						}
						wg.Done()
					})
				}
			}
			wg.Wait()
			return time.Since(start), firstErr
		}

		// Shared journal + pool.
		j, err := store.OpenJournal(filepath.Join(dir, "gw.journal"),
			store.JournalBatchDelay(cfg.BatchDelay))
		if err != nil {
			os.RemoveAll(dir)
			return nil, fmt.Errorf("experiments: gateway journal: %w", err)
		}
		jPool := store.NewSaverPool(cfg.Workers)
		jElapsed, err := drive(func(i int) *store.PoolSaver {
			return jPool.Saver(j.Cell(fmt.Sprintf("sa/%06d", i)))
		})
		jPool.Close()
		journalSyncs := j.Syncs()
		j.Close()
		if err != nil {
			os.RemoveAll(dir)
			return nil, fmt.Errorf("experiments: gateway journal save: %w", err)
		}

		// Per-file equivalent: same pool shape, one store + fsync stream
		// per SA.
		files := make([]*store.File, n)
		fPool := store.NewSaverPool(cfg.Workers)
		fElapsed, err := drive(func(i int) *store.PoolSaver {
			files[i] = store.NewFile(filepath.Join(dir, fmt.Sprintf("sa-%06d.seq", i)))
			return fPool.Saver(files[i])
		})
		fPool.Close()
		if err != nil {
			os.RemoveAll(dir)
			return nil, fmt.Errorf("experiments: gateway per-file save: %w", err)
		}
		var fileSyncs uint64
		for _, f := range files {
			fileSyncs += f.Syncs()
		}
		os.RemoveAll(dir)

		reduction := float64(fileSyncs) / float64(max(journalSyncs, 1))
		t.AddRow(fmt.Sprint(n),
			fmt.Sprint(n*cfg.SavesPerSA),
			fmt.Sprint(journalSyncs),
			fmt.Sprintf("%.2f", jElapsed.Seconds()*1e3),
			fmt.Sprint(fileSyncs),
			fmt.Sprintf("%.2f", fElapsed.Seconds()*1e3),
			fmt.Sprintf("%.1fx", reduction))
	}
	return t, nil
}
