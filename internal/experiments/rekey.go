package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"os"
	"path/filepath"
	"time"

	"antireplay/internal/core"
	"antireplay/internal/ike"
	"antireplay/internal/ipsec"
	"antireplay/internal/netsim"
	"antireplay/internal/rekey"
	"antireplay/internal/resetinj"
	"antireplay/internal/store"
)

// RekeyConfig parameterizes the rekey-under-reset rollover experiment.
type RekeyConfig struct {
	// Seed drives all randomness (IKE nonces, loss draws, reorder shuffles).
	Seed int64
	// LossProbs is the sweep of per-message IKE loss probabilities; data
	// packets are additionally lost with half each probability.
	LossProbs []float64
	// Tunnels is the number of tunnels tracked per row.
	Tunnels int
	// PacketsPerPhase is the data traffic per tunnel before and after the
	// rollover.
	PacketsPerPhase int
	// InFlight is the number of old-SPI packets left in flight across each
	// tunnel's cutover.
	InFlight int
	// MaxAttempts bounds IKE retries per rollover trigger.
	MaxAttempts int
	// FastDH selects the small test group instead of group 14.
	FastDH bool
}

// DefaultRekeyConfig sweeps IKE loss up to the acceptance point (>= 5%)
// and beyond.
func DefaultRekeyConfig() RekeyConfig {
	return RekeyConfig{
		Seed:            1,
		LossProbs:       []float64{0, 0.05, 0.25},
		Tunnels:         4,
		PacketsPerPhase: 200,
		InFlight:        8,
		MaxAttempts:     64,
	}
}

// gatewayEndpoint adapts a whole Gateway to the resetinj crash interface:
// Reset crashes every SA's volatile counters at once (the machine reset of
// the paper's §3 multi-SA scenario) and Wake runs the population recovery.
type gatewayEndpoint struct{ gw *ipsec.Gateway }

func (ge gatewayEndpoint) Reset() { ge.gw.ResetAll() }
func (ge gatewayEndpoint) Wake()  { ge.gw.WakeAll() } //nolint:errcheck // experiment wake errors surface as traffic failures

// RekeyRollover demonstrates the make-before-break property end to end:
// soft lifetimes trip IKE-driven rollovers on a gateway pair while the
// receiver gateway is crashed mid-exchange (via resetinj on the simulation
// clock) and both the exchange and the data path suffer seeded loss and
// reordering. For every row the experiment asserts the two safety outcomes
// the rollover design exists for:
//
//   - in-flight old-SPI packets sealed after the receiver's recovery but
//     before the cutover all deliver during the drain window
//     (false_rejects must be 0);
//   - replaying the entire recorded history after retirement re-delivers
//     nothing (replay_accepts must be 0), and the retired generations'
//     journal cells are erased (cells_erased counts them).
//
// The "sacrificed" column is the paper's own receiver-reset cost — up to 2K
// fresh messages per reset, unrelated to the rollover — reported so the
// zero-false-reject claim is measured on top of, not instead of, the
// protocol's documented behavior.
func RekeyRollover(cfg RekeyConfig) (*Table, error) {
	t := &Table{
		ID:    "rekey",
		Title: "IKE-driven SA rollover under receiver resets (make-before-break)",
		Note: "Expect zero false_rejects and zero replay_accepts at every loss rate: " +
			"the drain window keeps old-SPI packets deliverable across the cutover and " +
			"retirement tombstones the old counters. sacrificed is the paper's own " +
			"<= 2K-per-reset recovery cost, not a rollover defect.",
		Columns: []string{"ike_loss", "rollovers", "ike_attempts", "delivered",
			"sacrificed", "inflight_ok", "false_rejects", "replay_accepts", "cells_erased"},
	}
	for _, p := range cfg.LossProbs {
		row, err := rekeyRolloverRow(cfg, p)
		if err != nil {
			return nil, fmt.Errorf("experiments: rekey loss %.2f: %w", p, err)
		}
		t.AddRow(row...)
	}
	return t, nil
}

// rekeyRow accumulates one row's accounting.
type rekeyRow struct {
	attempts   int
	delivered  int
	sacrificed int
	inflightOK int
	falseRej   int
	replays    int
}

func rekeyRolloverRow(cfg RekeyConfig, loss float64) ([]string, error) {
	dir, err := os.MkdirTemp("", "rekey-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	const k = 25
	mkGateway := func(name string) (*ipsec.Gateway, error) {
		j, err := store.OpenJournal(filepath.Join(dir, name+".journal"))
		if err != nil {
			return nil, err
		}
		return ipsec.NewGateway(ipsec.GatewayConfig{
			Journal: j, K: k, W: 64,
			// Soft lifetime trips after roughly one phase of traffic.
			Lifetime: ipsec.Lifetime{SoftBytes: uint64(cfg.PacketsPerPhase) * 300 / 2},
		})
	}
	A, err := mkGateway("a")
	if err != nil {
		return nil, err
	}
	defer func() { A.Close(); A.Journal().Close() }()
	B, err := mkGateway("b")
	if err != nil {
		return nil, err
	}
	defer func() { B.Close(); B.Journal().Close() }()

	e := netsim.NewEngine(cfg.Seed)
	rng := e.Rand()
	group := ike.Group14()
	if cfg.FastDH {
		group = ike.TestGroup()
	}
	// Every party of every exchange draws a distinct seed from the engine's
	// deterministic source, so repeated rollovers negotiate distinct SPIs.
	ikeCfg := func(id string) ike.Config {
		return ike.Config{PSK: []byte("rekey-experiment"), Group: group,
			Rand: rand.New(rand.NewSource(rng.Int63())), ID: id}
	}

	var (
		row      rekeyRow
		history  [][]byte
		seen     = make(map[string]bool) // wire -> delivered at least once
		addrFor  = make(map[uint32]int)  // live A->B SPI -> tunnel index
		inflight [][]byte
	)
	addr := func(i int, side byte) netip.Addr {
		return netip.AddrFrom4([4]byte{10, side, byte(i >> 8), byte(i)})
	}
	sel := func(i int, rev bool) ipsec.Selector {
		src, dst := addr(i, 0), addr(i, 1)
		if rev {
			src, dst = dst, src
		}
		return ipsec.Selector{Src: netip.PrefixFrom(src, 32), Dst: netip.PrefixFrom(dst, 32)}
	}

	// seal seals one payload on tunnel i with save-lag retry.
	seal := func(i int) ([]byte, error) {
		for tries := 0; ; tries++ {
			w, err := A.Seal(addr(i, 0), addr(i, 1), make([]byte, 280))
			if err == nil {
				history = append(history, w)
				return w, nil
			}
			if !errors.Is(err, core.ErrSaveLag) || tries > 10000 {
				return nil, err
			}
			time.Sleep(20 * time.Microsecond)
		}
	}
	// open delivers one wire at B with horizon retry, recording delivery.
	open := func(w []byte) (core.Verdict, error) {
		for tries := 0; ; tries++ {
			_, verdict, err := B.Open(w)
			if verdict != core.VerdictHorizon || tries > 10000 {
				if err == nil && verdict.Delivered() {
					seen[string(w)] = true
				}
				return verdict, err
			}
			time.Sleep(20 * time.Microsecond)
		}
	}
	// phase pushes packets-per-tunnel of traffic with data loss p/2 and
	// light reordering (batch shuffle), counting deliveries.
	phase := func(packets int) error {
		batch := make([][]byte, 0, 8)
		flush := func() error {
			rng.Shuffle(len(batch), func(a, b int) { batch[a], batch[b] = batch[b], batch[a] })
			for _, w := range batch {
				v, err := open(w)
				if err != nil {
					return err
				}
				if v.Delivered() {
					row.delivered++
				}
			}
			batch = batch[:0]
			return nil
		}
		for n := 0; n < packets; n++ {
			for i := 0; i < cfg.Tunnels; i++ {
				w, err := seal(i)
				if err != nil {
					return err
				}
				if rng.Float64() < loss/2 {
					continue // data packet lost in the network
				}
				batch = append(batch, w)
				if len(batch) == cap(batch) {
					if err := flush(); err != nil {
						return err
					}
				}
			}
		}
		return flush()
	}

	// Establish and track the tunnels.
	o, err := rekey.New(rekey.Config{
		A: A, B: B,
		// Each exchange attempt advances the virtual clock 2ms; the grace
		// window outlasts the worst-case retry budget, so no drained
		// generation can retire while its in-flight packets are unchecked.
		Grace:       time.Duration(cfg.MaxAttempts*cfg.Tunnels+10) * 2 * time.Millisecond,
		MaxAttempts: cfg.MaxAttempts,
		Clock:       e.Now,
		Exchange: func(oldAB, oldBA uint32) (ike.ChildKeys, error) {
			row.attempts++
			ini, err := ike.NewRekeyInitiator(ikeCfg("gw-a"), oldAB, oldBA)
			if err != nil {
				return ike.ChildKeys{}, err
			}
			rsp, err := ike.NewRekeyResponder(ikeCfg("gw-b"), oldAB, oldBA)
			if err != nil {
				return ike.ChildKeys{}, err
			}
			m1, err := ini.Request()
			if err != nil {
				return ike.ChildKeys{}, err
			}
			// Run the simulation forward between the two messages: this is
			// where resetinj's scheduled receiver crash fires, mid-exchange.
			e.RunFor(2 * time.Millisecond)
			if rng.Float64() < loss {
				return ike.ChildKeys{}, fmt.Errorf("rekey request lost")
			}
			m2, err := rsp.HandleRequest(m1)
			if err != nil {
				return ike.ChildKeys{}, err
			}
			if rng.Float64() < loss {
				return ike.ChildKeys{}, fmt.Errorf("rekey response lost")
			}
			// This attempt will complete, so the cutover is imminent. First
			// flush the receiver's post-reset sacrifice window on this
			// tunnel (the paper's <= 2K cost), then leave InFlight packets
			// in flight on the old SPI across the cutover.
			ti := addrFor[oldAB]
			for n := 0; n < 3*k; n++ {
				w, err := seal(ti)
				if err != nil {
					return ike.ChildKeys{}, err
				}
				if v, err := open(w); err != nil {
					return ike.ChildKeys{}, err
				} else if v.Delivered() {
					row.delivered++
				} else {
					row.sacrificed++
				}
			}
			for n := 0; n < cfg.InFlight; n++ {
				w, err := seal(ti)
				if err != nil {
					return ike.ChildKeys{}, err
				}
				inflight = append(inflight, w)
			}
			if err := ini.HandleResponse(m2); err != nil {
				return ike.ChildKeys{}, err
			}
			return ini.ChildKeys(), nil
		},
	})
	if err != nil {
		return nil, err
	}
	tunnels := make([]*rekey.Tunnel, cfg.Tunnels)
	var oldKeys []string
	for i := range tunnels {
		res, err := ike.Establish(ikeCfg(fmt.Sprintf("init-%d", i)), ikeCfg(fmt.Sprintf("resp-%d", i)))
		if err != nil {
			return nil, err
		}
		kk := res.Keys
		if _, err := A.AddOutbound(kk.SPIInitToResp, kk.InitToResp, sel(i, false)); err != nil {
			return nil, err
		}
		if _, err := A.AddInbound(kk.SPIRespToInit, kk.RespToInit); err != nil {
			return nil, err
		}
		if _, err := B.AddInbound(kk.SPIInitToResp, kk.InitToResp); err != nil {
			return nil, err
		}
		if _, err := B.AddOutbound(kk.SPIRespToInit, kk.RespToInit, sel(i, true)); err != nil {
			return nil, err
		}
		if tunnels[i], err = o.Track(kk.SPIInitToResp, kk.SPIRespToInit); err != nil {
			return nil, err
		}
		addrFor[kk.SPIInitToResp] = i
		oldKeys = append(oldKeys,
			ipsec.OutboundKey(kk.SPIInitToResp), ipsec.InboundKey(kk.SPIRespToInit), // A's cells
			ipsec.InboundKey(kk.SPIInitToResp), ipsec.OutboundKey(kk.SPIRespToInit)) // B's cells
	}

	// Phase 1: traffic past the soft lifetime.
	if err := phase(cfg.PacketsPerPhase); err != nil {
		return nil, err
	}

	// Schedule the receiver crash to strike mid-exchange of the first
	// rollover attempt, then poll until every tunnel has rolled over.
	resetinj.Schedule(e, gatewayEndpoint{B}, e.Now()+500*time.Microsecond, e.Now()+time.Millisecond)
	for polls := 0; o.Stats().Rollovers < uint64(cfg.Tunnels); polls++ {
		if polls > cfg.MaxAttempts*cfg.Tunnels {
			return nil, fmt.Errorf("rollovers did not converge: %+v", o.Stats())
		}
		o.Poll() //nolint:errcheck // lost exchanges retry on the next poll
	}
	for i, tun := range tunnels {
		ab, _ := tun.SPIs()
		addrFor[ab] = i
	}

	// The in-flight old-SPI packets must all deliver during the drain.
	for _, w := range inflight {
		v, err := open(w)
		if err != nil {
			return nil, fmt.Errorf("in-flight old-SPI packet: %w", err)
		}
		if v.Delivered() {
			row.inflightOK++
		} else {
			row.falseRej++
		}
	}

	// Phase 2: lighter traffic on the successors (below their own soft
	// bound, so the measurement window holds exactly one rollover per
	// tunnel), then retire the drained generations by advancing the
	// virtual clock past the grace window.
	if err := phase(cfg.PacketsPerPhase / 4); err != nil {
		return nil, err
	}
	e.RunFor(time.Duration(cfg.MaxAttempts*cfg.Tunnels+20) * 2 * time.Millisecond)
	if err := o.Poll(); err != nil {
		return nil, err
	}

	// Replay the entire history: a delivery of an already-delivered wire is
	// a replay acceptance.
	for _, w := range history {
		_, verdict, _ := B.Open(w)
		if verdict.Delivered() {
			if seen[string(w)] {
				row.replays++
			}
			seen[string(w)] = true
		}
	}

	// The retired generations' journal cells must be erased.
	erased := 0
	for n, key := range oldKeys {
		j := A.Journal()
		if n%4 >= 2 {
			j = B.Journal()
		}
		if _, ok, _ := j.Cell(key).Fetch(); !ok {
			erased++
		}
	}

	st := o.Stats()
	return []string{
		fmt.Sprintf("%.0f%%", loss*100),
		fmt.Sprint(st.Rollovers),
		fmt.Sprint(row.attempts),
		fmt.Sprint(row.delivered),
		fmt.Sprint(row.sacrificed),
		fmt.Sprintf("%d/%d", row.inflightOK, len(inflight)),
		fmt.Sprint(row.falseRej),
		fmt.Sprint(row.replays),
		fmt.Sprintf("%d/%d", erased, len(oldKeys)),
	}, nil
}
