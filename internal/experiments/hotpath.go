package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"antireplay/internal/core"
	"antireplay/internal/ipsec"
	"antireplay/internal/store"
)

// HotpathConfig parameterizes the datapath/persistence hot-path microbench
// table.
type HotpathConfig struct {
	// Records is the journal append count (split across Savers goroutines).
	Records int
	// Savers is the parallel saver count for the journal row.
	Savers int
	// Packets is the per-row packet count for the seal/open/admission rows.
	Packets int
	// PayloadLen sizes the ESP payload.
	PayloadLen int
}

// DefaultHotpathConfig returns the standard parameterization.
func DefaultHotpathConfig() HotpathConfig {
	return HotpathConfig{Records: 400000, Savers: 64, Packets: 200000, PayloadLen: 64}
}

// Hotpath measures the wait-free datapath and the journal commit pipeline
// on this machine: 64-way parallel journal SAVE throughput (the path every
// SA's counter persistence shares), zero-copy seal/open throughput, and the
// per-packet admission cost of the lock-free fast path against the mutex
// receiver. The allocs_op column is measured with testing.AllocsPerRun on
// the steady state and is the pinned zero-allocation contract of PR 5.
func Hotpath(cfg HotpathConfig) (*Table, error) {
	t := &Table{
		ID:    "hotpath",
		Title: "hot-path cost: pipelined journal commit, zero-alloc seal/verify, wait-free admission",
		Note: "Expect 0 allocs_op on every steady-state row: the commit pipeline stages encoded frames " +
			"into reused slabs and group-commits them, and the seal/open paths reuse pooled per-SA crypto " +
			"state and caller buffers. journal_save_64 is the gateway-scale SAVE shape (64 concurrent " +
			"savers sharing one log); admission_fast vs admission_mutex is the per-packet anti-replay " +
			"decision with and without the RCU fast path.",
		Columns: []string{"path", "ops", "ns_op", "per_sec", "allocs_op"},
	}

	if err := hotpathJournalRows(t, cfg); err != nil {
		return nil, err
	}
	if err := hotpathSealRows(t, cfg); err != nil {
		return nil, err
	}
	if err := hotpathAdmissionRows(t, cfg); err != nil {
		return nil, err
	}
	return t, nil
}

func addHotpathRow(t *Table, path string, ops int, elapsed time.Duration, allocs float64) {
	nsOp := float64(elapsed.Nanoseconds()) / float64(ops)
	t.AddRow(path, fmt.Sprint(ops), fmt.Sprintf("%.1f", nsOp),
		fmt.Sprintf("%.0f", float64(ops)/elapsed.Seconds()), fmt.Sprintf("%.2f", allocs))
}

func hotpathJournalRows(t *Table, cfg HotpathConfig) error {
	dir, err := os.MkdirTemp("", "hotpath-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	j, err := store.OpenJournal(filepath.Join(dir, "j.log"), store.JournalWithoutSync())
	if err != nil {
		return err
	}
	defer j.Close()

	// Parallel: the gateway-scale shape — many SAs' savers sharing one log.
	cells := make([]*store.Cell, cfg.Savers)
	for i := range cells {
		cells[i] = j.Cell(ipsec.OutboundKey(uint32(i + 1)))
	}
	per := cfg.Records / cfg.Savers
	var wg sync.WaitGroup
	errs := make(chan error, cfg.Savers)
	start := time.Now()
	for g := 0; g < cfg.Savers; g++ {
		wg.Add(1)
		go func(c *store.Cell) {
			defer wg.Done()
			for i := 1; i <= per; i++ {
				if err := c.Save(uint64(i)); err != nil {
					errs <- err
					return
				}
			}
		}(cells[g])
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return err
	default:
	}

	// Serial steady-state allocation count for one save.
	v := uint64(per)
	allocs := testing.AllocsPerRun(500, func() {
		v++
		if err := cells[0].Save(v); err != nil {
			errs <- err
		}
	})
	select {
	case err := <-errs:
		return err
	default:
	}
	addHotpathRow(t, "journal_save_64", per*cfg.Savers, elapsed, allocs)
	return nil
}

func hotpathSealRows(t *Table, cfg HotpathConfig) error {
	keys := ipsec.KeyMaterial{
		AuthKey: make([]byte, ipsec.AuthKeySize),
		EncKey:  make([]byte, ipsec.EncKeySize),
	}
	var mtx, mrx store.Mem
	snd, err := core.NewSender(core.SenderConfig{K: 1 << 40, Store: &mtx})
	if err != nil {
		return err
	}
	tx, err := ipsec.NewOutboundSA(0x42, keys, snd, true, ipsec.Lifetime{}, nil)
	if err != nil {
		return err
	}
	rcv, err := core.NewReceiver(core.ReceiverConfig{K: 1 << 40, W: 1024, Store: &mrx, Concurrent: true})
	if err != nil {
		return err
	}
	rx, err := ipsec.NewInboundSA(0x42, keys, rcv, true, ipsec.Lifetime{}, nil)
	if err != nil {
		return err
	}

	payload := make([]byte, cfg.PayloadLen)
	workers := runtime.GOMAXPROCS(0)
	per := cfg.Packets / workers
	var wg sync.WaitGroup
	sealErrs := make(chan error, workers)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 0, 4096)
			for i := 0; i < per; i++ {
				out, err := tx.SealAppend(buf[:0], payload)
				if err != nil {
					sealErrs <- err
					return
				}
				buf = out[:0]
			}
		}()
	}
	wg.Wait()
	sealElapsed := time.Since(start)
	select {
	case err := <-sealErrs:
		return err
	default:
	}
	sealBuf := make([]byte, 0, 4096)
	sealAllocs := testing.AllocsPerRun(200, func() {
		out, err := tx.SealAppend(sealBuf[:0], payload)
		if err == nil {
			sealBuf = out[:0]
		}
	})
	addHotpathRow(t, "seal_append", per*workers, sealElapsed, sealAllocs)

	// Open: verify a pre-sealed in-order stream.
	wires := make([][]byte, cfg.Packets/4)
	for i := range wires {
		w, err := tx.Seal(payload)
		if err != nil {
			return err
		}
		wires[i] = w
	}
	pbuf := make([]byte, 0, 4096)
	start = time.Now()
	for _, w := range wires {
		out, verdict, err := rx.OpenAppend(pbuf[:0], w)
		if err != nil {
			return err
		}
		if !verdict.Delivered() {
			return fmt.Errorf("hotpath: in-order packet not delivered: %v", verdict)
		}
		pbuf = out[:0]
	}
	openElapsed := time.Since(start)
	i := 0
	extra := make([][]byte, 300)
	for k := range extra {
		w, err := tx.Seal(payload)
		if err != nil {
			return err
		}
		extra[k] = w
	}
	openAllocs := testing.AllocsPerRun(200, func() {
		out, _, err := rx.OpenAppend(pbuf[:0], extra[i])
		if err == nil {
			pbuf = out[:0]
		}
		i++
	})
	addHotpathRow(t, "open_append", len(wires), openElapsed, openAllocs)
	return nil
}

func hotpathAdmissionRows(t *Table, cfg HotpathConfig) error {
	for _, concurrent := range []bool{false, true} {
		var m store.Mem
		r, err := core.NewReceiver(core.ReceiverConfig{
			K: 1 << 12, W: 1024, Store: &m, Concurrent: concurrent,
		})
		if err != nil {
			return err
		}
		workers := runtime.GOMAXPROCS(0)
		per := cfg.Packets / workers
		var ticket atomic.Uint64
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					r.Admit(ticket.Add(1))
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		allocs := testing.AllocsPerRun(500, func() {
			r.Admit(ticket.Add(1))
		})
		name := "admission_mutex"
		if concurrent {
			name = "admission_fast"
		}
		addHotpathRow(t, name, per*workers, elapsed, allocs)
	}
	return nil
}
