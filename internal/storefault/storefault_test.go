package storefault

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// TestOSPassthrough pins the passthrough: files round-trip bytes, syncs
// succeed, renames land, and SyncDir works on a real directory.
func TestOSPassthrough(t *testing.T) {
	fs := OS()
	dir := t.TempDir()
	path := filepath.Join(dir, "a.log")
	f, err := fs.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(path, filepath.Join(dir, "b.log")); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile(filepath.Join(dir, "b.log"))
	if err != nil || string(data) != "hello" {
		t.Fatalf("read back %q, %v", data, err)
	}
}

// TestInjectorSchedule pins the After/Count arithmetic: the fault skips
// the first After matching ops, fires Count times, then passes through.
func TestInjectorSchedule(t *testing.T) {
	in := NewInjector(nil)
	in.Arm(Fault{Op: OpSync, Path: "a.log", After: 2, Count: 1})
	dir := t.TempDir()
	f, err := in.OpenFile(filepath.Join(dir, "a.log"), os.O_WRONLY|os.O_CREATE, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 5; i++ {
		err := f.Sync()
		if i == 2 {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("sync %d: got %v, want ErrInjected", i, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("sync %d: %v", i, err)
		}
	}
	if got := in.Fired(); got != 1 {
		t.Fatalf("fired %d, want 1", got)
	}
}

// TestInjectorShortWrite pins the torn-write shape: Short bytes land, the
// error is reported, and the file holds exactly the prefix.
func TestInjectorShortWrite(t *testing.T) {
	in := NewInjector(nil)
	in.Arm(Fault{Op: OpWrite, Count: 1, Short: 3, Err: syscall.EIO})
	dir := t.TempDir()
	path := filepath.Join(dir, "torn.log")
	f, err := in.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("abcdef"))
	if !errors.Is(err, syscall.EIO) || n != 3 {
		t.Fatalf("torn write: n=%d err=%v, want 3, EIO", n, err)
	}
	if _, err := f.Write([]byte("rest")); err != nil {
		t.Fatalf("post-fault write: %v", err)
	}
	f.Close()
	data, _ := os.ReadFile(path)
	if string(data) != "abcrest" {
		t.Fatalf("file holds %q, want torn prefix + later write", data)
	}
}

// TestInjectorPathAndOps pins path scoping (only the matching file fails)
// and the non-file ops (rename, read, create-temp, syncdir).
func TestInjectorPathAndOps(t *testing.T) {
	in := NewInjector(nil)
	in.Arm(
		Fault{Op: OpRename, Path: "victim", Count: 1},
		Fault{Op: OpRead, Path: "victim", Count: 1},
		Fault{Op: OpCreate, Path: ".compact", Count: 1, Err: syscall.ENOSPC},
		Fault{Op: OpSyncDir, Count: 1},
	)
	dir := t.TempDir()
	if err := in.Rename(filepath.Join(dir, "x"), filepath.Join(dir, "bystander")); err == nil || errors.Is(err, ErrInjected) {
		// Non-matching rename passes through to the real fs (ENOENT here).
		t.Fatalf("bystander rename: %v", err)
	}
	if err := in.Rename(filepath.Join(dir, "x"), filepath.Join(dir, "victim")); !errors.Is(err, ErrInjected) {
		t.Fatalf("victim rename: %v, want ErrInjected", err)
	}
	if _, err := in.ReadFile(filepath.Join(dir, "victim")); !errors.Is(err, ErrInjected) {
		t.Fatalf("victim read: %v, want ErrInjected", err)
	}
	if _, err := in.CreateTemp(dir, "lane-000.log.compact*"); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("compact temp: %v, want ENOSPC", err)
	}
	if err := in.SyncDir(dir); !errors.Is(err, ErrInjected) {
		t.Fatalf("syncdir: %v, want ErrInjected", err)
	}
	if err := in.SyncDir(dir); err != nil {
		t.Fatalf("syncdir after exhaustion: %v", err)
	}
	if got := in.Fired(); got != 4 {
		t.Fatalf("fired %d, want 4", got)
	}
}

// TestInjectorTempAlias pins that a CreateTemp file's writes match both
// its real (random-suffixed) name and the creation pattern.
func TestInjectorTempAlias(t *testing.T) {
	in := NewInjector(nil)
	in.Arm(Fault{Op: OpWrite, Path: ".compact", Count: 1, Err: syscall.ENOSPC})
	f, err := in.CreateTemp(t.TempDir(), "lane.log.compact*")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("x")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("temp write: %v, want ENOSPC", err)
	}
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatalf("temp write after exhaustion: %v", err)
	}
}

// TestInjectorDisarm pins that Disarm clears the schedule.
func TestInjectorDisarm(t *testing.T) {
	in := NewInjector(nil)
	in.Arm(Fault{Op: OpSyncDir})
	if err := in.SyncDir(t.TempDir()); !errors.Is(err, ErrInjected) {
		t.Fatal("armed fault did not fire")
	}
	in.Disarm()
	if err := in.SyncDir(t.TempDir()); err != nil {
		t.Fatalf("after disarm: %v", err)
	}
}
