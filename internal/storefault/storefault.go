// Package storefault is the injectable file layer under the store package's
// durable media. Journal, Lanes, and File perform every filesystem operation
// through the FS interface here instead of calling the os package directly,
// so a fault schedule (Injector) can make fsync fail on the 7th sync of one
// lane, tear a write short at a precise append count, return ENOSPC during a
// compaction, or break a rename — the failure classes real disks exhibit and
// the paper's persistent-memory assumption must survive.
//
// The default implementation (OS) is a zero-cost passthrough: it hands the
// store real *os.File values behind the File interface, so the hot commit
// path pays one interface-method dispatch per write/sync and nothing else —
// no closures, no wrappers, no allocations. The zero-alloc gates in
// internal/store pin that property.
package storefault

import (
	"errors"
	"os"
	"runtime"
)

// ErrInjected is the default error produced by fault injection. The store
// package aliases it (store.ErrInjected), so the toy single-cell Faulty
// wrapper and the file-layer Injector share one injection vocabulary.
var ErrInjected = errors.New("store: injected fault")

// File is the os.File-shaped surface the store's media actually use: the
// append/sync pair of the journal commit pipeline plus the recovery-time
// truncate/seek. *os.File satisfies it directly.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
	Truncate(size int64) error
	Seek(offset int64, whence int) (int64, error)
	Name() string
}

// FS is the filesystem surface the store's media use. Every operation that
// can fail on a real disk is a method, so an Injector can fail any of them
// on schedule; SyncDir is the rename-durability fsync of the parent
// directory (a no-op on Windows, where directory handles cannot be
// flushed).
type FS interface {
	// OpenFile opens name with the given flags; Create semantics come from
	// the flags, as with os.OpenFile.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// CreateTemp creates a new temporary file in dir as os.CreateTemp does.
	CreateTemp(dir, pattern string) (File, error)
	// ReadFile reads the whole file, as os.ReadFile does.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// MkdirAll creates a directory tree.
	MkdirAll(dir string, perm os.FileMode) error
	// SyncDir fsyncs a directory, making a completed rename within it
	// durable.
	SyncDir(dir string) error
}

// osFS is the passthrough FS over the real filesystem.
type osFS struct{}

// OS returns the default passthrough FS: every method forwards to the os
// package and files are real *os.File values behind the File interface.
// The zero value is stateless; OS may be called freely.
func OS() FS { return osFS{} }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		// Return a genuinely nil interface, not a typed-nil *os.File.
		return nil, err
	}
	return f, nil
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) ReadFile(name string) ([]byte, error)       { return os.ReadFile(name) }
func (osFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                   { return os.Remove(name) }
func (osFS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }

func (osFS) SyncDir(dir string) error {
	if runtime.GOOS == "windows" {
		return nil
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}
