package storefault

import (
	"fmt"
	"os"
	"strings"
	"sync"
)

// Op names one class of filesystem operation a Fault can target.
type Op int

const (
	// OpWrite targets File.Write — fail it outright (Err) or tear it
	// short (Short bytes land, the rest do not: the torn-tail shape a
	// crash mid-write leaves).
	OpWrite Op = iota
	// OpSync targets File.Sync — the fsyncgate fault: the kernel may have
	// marked the dirty pages clean, so the caller must never retry the
	// sync and report success.
	OpSync
	// OpOpen targets FS.OpenFile.
	OpOpen
	// OpCreate targets FS.CreateTemp.
	OpCreate
	// OpRead targets FS.ReadFile.
	OpRead
	// OpRename targets FS.Rename.
	OpRename
	// OpRemove targets FS.Remove.
	OpRemove
	// OpSyncDir targets FS.SyncDir.
	OpSyncDir
)

var opNames = [...]string{"write", "sync", "open", "create", "read", "rename", "remove", "syncdir"}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Fault is one scheduled fault: the Count operations of kind Op whose path
// contains Path (empty matches everything), after skipping the first After
// matching operations, fail with Err. A matching operation is counted per
// rule, so "the 7th sync of lane-003.log fails" is
// {Op: OpSync, Path: "lane-003", After: 6, Count: 1}.
type Fault struct {
	// Op selects the operation class.
	Op Op
	// Path is a substring match against the operation's path (a file's
	// Name for Write/Sync). Empty matches every path.
	Path string
	// After skips the first After matching operations before firing.
	After int
	// Count is how many matching operations fail once armed; 0 or
	// negative means every one, forever (a dead disk, not a glitch).
	Count int
	// Err is the injected error; nil means ErrInjected.
	Err error
	// Short, for OpWrite only, makes the failure a torn write: Short
	// bytes of the buffer reach the file before the error. Zero tears
	// nothing (the write fails with no bytes landed).
	Short int
}

// Injector is an FS that applies a fault schedule in front of a base FS.
// Operations that no armed fault matches pass straight through. Safe for
// concurrent use; fault matching is serialized so "the Nth op" is exact
// even under concurrent lanes.
type Injector struct {
	base FS

	mu     sync.Mutex
	faults []*armedFault
}

// armedFault tracks one Fault's live counters.
type armedFault struct {
	Fault
	seen  int // matching operations observed
	fired int // failures injected
}

// NewInjector wraps base (nil means OS()) with an empty schedule.
func NewInjector(base FS) *Injector {
	if base == nil {
		base = OS()
	}
	return &Injector{base: base}
}

// Arm appends faults to the schedule. Faults are matched in Arm order;
// the first armed fault that matches an operation decides it.
func (in *Injector) Arm(faults ...Fault) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, f := range faults {
		if f.Err == nil {
			f.Err = ErrInjected
		}
		af := f // copy
		in.faults = append(in.faults, &armedFault{Fault: af})
	}
}

// Disarm clears the whole schedule; fired counts are kept readable
// through the stats Fired returned before the call.
func (in *Injector) Disarm() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.faults = nil
}

// Fired returns the total number of failures injected so far.
func (in *Injector) Fired() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := 0
	for _, f := range in.faults {
		n += f.fired
	}
	return n
}

// match decides whether an operation fails, advancing the schedule's
// counters. It returns the fault to apply, or nil.
func (in *Injector) match(op Op, path string) *Fault {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, f := range in.faults {
		if f.Op != op {
			continue
		}
		if f.Path != "" && !strings.Contains(path, f.Path) {
			continue
		}
		f.seen++
		if f.seen <= f.After {
			return nil // armed but not yet due; first match wins regardless
		}
		if f.Count > 0 && f.fired >= f.Count {
			continue // exhausted: later rules may still match
		}
		f.fired++
		return &f.Fault
	}
	return nil
}

var _ FS = (*Injector)(nil)

// OpenFile applies OpOpen faults, wrapping the opened file so its writes
// and syncs stay under the schedule.
func (in *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if f := in.match(OpOpen, name); f != nil {
		return nil, f.Err
	}
	file, err := in.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, in: in}, nil
}

// CreateTemp applies OpCreate faults; the pattern (not the random final
// name) is what Fault.Path matches, so a schedule can target "the compact
// temp of lane 3" without knowing the suffix.
func (in *Injector) CreateTemp(dir, pattern string) (File, error) {
	if f := in.match(OpCreate, pattern); f != nil {
		return nil, f.Err
	}
	file, err := in.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, in: in, alias: pattern}, nil
}

// ReadFile applies OpRead faults.
func (in *Injector) ReadFile(name string) ([]byte, error) {
	if f := in.match(OpRead, name); f != nil {
		return nil, f.Err
	}
	return in.base.ReadFile(name)
}

// Rename applies OpRename faults (matched against the destination path —
// the log being replaced — then the source).
func (in *Injector) Rename(oldpath, newpath string) error {
	if f := in.match(OpRename, newpath+" "+oldpath); f != nil {
		return f.Err
	}
	return in.base.Rename(oldpath, newpath)
}

// Remove applies OpRemove faults.
func (in *Injector) Remove(name string) error {
	if f := in.match(OpRemove, name); f != nil {
		return f.Err
	}
	return in.base.Remove(name)
}

// MkdirAll passes through; directory creation is setup, not a fault
// domain worth scheduling.
func (in *Injector) MkdirAll(dir string, perm os.FileMode) error {
	return in.base.MkdirAll(dir, perm)
}

// SyncDir applies OpSyncDir faults.
func (in *Injector) SyncDir(dir string) error {
	if f := in.match(OpSyncDir, dir); f != nil {
		return f.Err
	}
	return in.base.SyncDir(dir)
}

// faultFile applies write/sync faults to one open file. The schedule
// matches on the file's name (for CreateTemp files, on the creation
// pattern too, so temp-file faults are addressable before the random
// suffix is known).
type faultFile struct {
	File
	in    *Injector
	alias string // CreateTemp pattern, "" otherwise
}

// name is the string the schedule matches against.
func (f *faultFile) name() string {
	if f.alias != "" {
		return f.Name() + " " + f.alias
	}
	return f.Name()
}

// Write applies OpWrite faults: a plain failure writes nothing; a Short
// fault writes the prefix first — the torn tail a crash mid-write leaves
// on the platter — then reports the error.
func (f *faultFile) Write(p []byte) (int, error) {
	if ft := f.in.match(OpWrite, f.name()); ft != nil {
		n := 0
		if ft.Short > 0 {
			short := ft.Short
			if short > len(p) {
				short = len(p)
			}
			n, _ = f.File.Write(p[:short])
		}
		return n, ft.Err
	}
	return f.File.Write(p)
}

// Sync applies OpSync faults. The injected failure models fsyncgate: the
// base file is NOT synced, and whether its dirty pages survive is exactly
// as undefined as after a real failed fsync — the caller must poison, not
// retry.
func (f *faultFile) Sync() error {
	if ft := f.in.match(OpSync, f.name()); ft != nil {
		return ft.Err
	}
	return f.File.Sync()
}
