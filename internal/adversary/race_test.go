package adversary

import (
	"errors"
	"math/rand"
	"net/netip"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"antireplay/internal/core"
	"antireplay/internal/ike"
	"antireplay/internal/ipsec"
	"antireplay/internal/rekey"
	"antireplay/internal/store"
	"antireplay/internal/wire"
)

var (
	raceAddrA = netip.AddrFrom4([4]byte{10, 9, 0, 1})
	raceAddrB = netip.AddrFrom4([4]byte{10, 9, 0, 2})
	raceSelAB = ipsec.Selector{Src: netip.PrefixFrom(raceAddrA, 32), Dst: netip.PrefixFrom(raceAddrB, 32)}
	raceSelBA = ipsec.Selector{Src: netip.PrefixFrom(raceAddrB, 32), Dst: netip.PrefixFrom(raceAddrA, 32)}
)

func raceIKE(seed int64, id string) ike.Config {
	return ike.Config{
		PSK:   []byte("campaign-race-psk"),
		Rand:  rand.New(rand.NewSource(seed)),
		Group: ike.TestGroup(),
		ID:    id,
	}
}

func raceGateway(t *testing.T, name string) *ipsec.Gateway {
	t.Helper()
	j, err := store.OpenJournal(filepath.Join(t.TempDir(), name+".journal"), store.JournalWithoutSync())
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	t.Cleanup(func() { j.Close() })
	g, err := ipsec.NewGateway(ipsec.GatewayConfig{
		Journal: j, K: 5, W: 128, Lifetime: ipsec.Lifetime{SoftBytes: 64 << 10},
	})
	if err != nil {
		t.Fatalf("NewGateway: %v", err)
	}
	t.Cleanup(func() { g.Close() })
	return g
}

// verifyLink is the bottom of the stacked adversary path: every datagram
// that survives both gates is verified at the receiver gateway
// immediately, in the goroutine that sent (or released, or injected) it.
type verifyLink struct {
	deliver func(p []byte)
}

func (l *verifyLink) Send(p []byte) error   { l.deliver(p); return nil }
func (l *verifyLink) Recv() ([]byte, error) { return nil, wire.ErrNoDatagram }
func (l *verifyLink) Close() error          { return nil }
func (l *verifyLink) Stats() wire.Stats     { return wire.Stats{} }
func (l *verifyLink) MTU() int              { return 64 << 10 }

// TestRaceCampaignDatapath is the -race stress test for the adversary
// layer against the live datapath: a window-edge snipe (holds, late
// releases, duplicate injections) and a rekey-cutover campaign (exchange
// suppression, post-cutover blackouts) run concurrently with batched
// seal/verify traffic, orchestrator-driven rollovers, and receiver
// gateway resets. Two gates stack over the verify link, so snipe
// releases, cutover blackouts, sealer sends, and dup injections all race
// through the same path the campaigns interfere with.
//
// Safety assertions:
//   - exactly-once: no wire delivers twice, in any interleaving of
//     holds, releases, injections, resets, and rollovers;
//   - zero replay acceptances after convergence: replaying the full
//     recorded history never re-delivers a delivered wire.
func TestRaceCampaignDatapath(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	A := raceGateway(t, "a")
	B := raceGateway(t, "b")
	res, err := ike.Establish(raceIKE(60, "a"), raceIKE(61, "b"))
	if err != nil {
		t.Fatalf("Establish: %v", err)
	}
	k := res.Keys
	if _, err := A.AddOutbound(k.SPIInitToResp, k.InitToResp, raceSelAB); err != nil {
		t.Fatal(err)
	}
	if _, err := A.AddInbound(k.SPIRespToInit, k.RespToInit); err != nil {
		t.Fatal(err)
	}
	if _, err := B.AddInbound(k.SPIInitToResp, k.InitToResp); err != nil {
		t.Fatal(err)
	}
	if _, err := B.AddOutbound(k.SPIRespToInit, k.RespToInit, raceSelBA); err != nil {
		t.Fatal(err)
	}

	var (
		mu        sync.Mutex
		delivered = make(map[string]int)
		history   [][]byte
		doubles   atomic.Uint64
	)
	pipe := &verifyLink{}
	pipe.deliver = func(p []byte) {
		res := B.VerifyBatch([][]byte{p})[0]
		if !res.Delivered() {
			return
		}
		mu.Lock()
		delivered[string(p)]++
		if delivered[string(p)] > 1 {
			doubles.Add(1)
		}
		mu.Unlock()
	}

	// The stacked path: sealers -> snipe gate -> cutover gate -> verify.
	// Injections and releases bypass the deciders above them but still
	// land on the same verify path as ordinary traffic.
	cutGate := wire.NewGateLink(pipe)
	snipeGate := wire.NewGateLink(cutGate)
	snipeGate.Tap(func(p []byte) {
		mu.Lock()
		history = append(history, p)
		mu.Unlock()
	})

	snipe := NewWindowEdgeSnipe(SnipeConfig{HoldEvery: 8, HoldDepth: 96, DupEvery: 5})
	if err := snipe.Arm(Hooks{Gate: snipeGate}); err != nil {
		t.Fatal(err)
	}
	cut := NewRekeyCut(RekeyCutConfig{SuppressExchanges: 4, BlackoutPackets: 32})
	if err := cut.Arm(Hooks{Gate: cutGate}); err != nil {
		t.Fatal(err)
	}
	snipe.Activate()
	cut.Activate()

	ini, rsp := raceIKE(62, "a"), raceIKE(63, "b")
	o, err := rekey.New(rekey.Config{
		A: A, B: B,
		Grace:       20 * time.Millisecond,
		MaxAttempts: 6, // outlasts SuppressExchanges=4 within one trigger
		Observer: func(ev rekey.Event) {
			if ev.Kind == rekey.EventCutover {
				cut.OnCutover()
			}
		},
		Exchange: func(oldAB, oldBA uint32) (ike.ChildKeys, error) {
			if cut.SuppressExchange() {
				return ike.ChildKeys{}, errors.New("suppressed by rekey_cutover campaign")
			}
			r, err := ike.RekeyChild(ini, rsp, oldAB, oldBA)
			if err != nil {
				return ike.ChildKeys{}, err
			}
			return r.Keys, nil
		},
	})
	if err != nil {
		t.Fatalf("rekey.New: %v", err)
	}
	tun, err := o.Track(k.SPIInitToResp, k.SPIRespToInit)
	if err != nil {
		t.Fatalf("Track: %v", err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Traffic: sealers batch-seal at A and push every wire through the
	// gated path; verification happens at the bottom of the stack.
	const sealers = 4
	payload := make([]byte, 256)
	for s := 0; s < sealers; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			batch := make([][]byte, 8)
			for i := range batch {
				batch[i] = payload
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				wires, err := A.SealBatch(raceAddrA, raceAddrB, batch)
				if err != nil && !errors.Is(err, core.ErrSaveLag) &&
					!errors.Is(err, ipsec.ErrDraining) && !errors.Is(err, core.ErrWaking) {
					t.Errorf("SealBatch: %v", err)
					return
				}
				if len(wires) == 0 {
					time.Sleep(50 * time.Microsecond)
					continue
				}
				for _, w := range wires {
					if err := snipeGate.Send(w); err != nil {
						t.Errorf("gate send: %v", err)
						return
					}
				}
			}
		}()
	}

	// Chaos: receiver gateway resets while campaigns and traffic run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 15; i++ {
			select {
			case <-stop:
				return
			default:
			}
			B.ResetAll()
			B.WakeAll() //nolint:errcheck // transient wake errors retried next cycle
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// Orchestrator: polling trips rollovers; the campaign suppresses the
	// first exchanges and blacks out the wire after each cutover.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			o.Poll() //nolint:errcheck // suppressed exchanges fail by design; Poll retries
			time.Sleep(time.Millisecond)
		}
	}()

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Stand down: hostages release into the path, suppression ends.
	snipe.Deactivate()
	cut.Deactivate()

	// Convergence: receiver up, rollover machinery steady.
	if err := B.WakeAll(); err != nil {
		t.Fatalf("final WakeAll: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for tun.State() != rekey.StateSteady {
		if time.Now().After(deadline) {
			t.Fatalf("tunnel never returned to steady (state %v)", tun.State())
		}
		o.Poll() //nolint:errcheck
		time.Sleep(time.Millisecond)
	}

	if n := doubles.Load(); n != 0 {
		t.Fatalf("%d wires delivered twice during the stress run", n)
	}
	sst, cst := snipe.Stats(), cut.Stats()
	if sst.Held == 0 || sst.DupsInjected == 0 {
		t.Fatalf("snipe campaign idle: %+v", sst)
	}
	if cst.Suppressed == 0 {
		t.Fatalf("rekey_cutover campaign idle: %+v", cst)
	}
	if s := o.Stats(); s.Rollovers == 0 {
		t.Fatalf("no rollovers completed under suppression: %+v", s)
	}

	// Zero replay acceptances: the attacker's full recording, replayed
	// into the converged receiver, never re-delivers a delivered wire.
	// (A wire whose prior submissions were all discarded — dropped in a
	// blackout, sealed mid-reset — may legitimately deliver now as a
	// late first delivery.)
	mu.Lock()
	replaySet := history
	mu.Unlock()
	replays := 0
	for start := 0; start < len(replaySet); start += 64 {
		end := min(start+64, len(replaySet))
		batch := replaySet[start:end]
		results := B.VerifyBatch(batch)
		mu.Lock()
		for i, res := range results {
			if !res.Delivered() {
				continue
			}
			if delivered[string(batch[i])] > 0 {
				replays++
			}
			delivered[string(batch[i])]++
		}
		mu.Unlock()
	}
	if replays != 0 {
		t.Fatalf("%d replay acceptances after convergence, want 0", replays)
	}
}
