package adversary

import (
	"fmt"
	"sync/atomic"
	"time"

	"antireplay/internal/ipsec"
	"antireplay/internal/netsim"
	"antireplay/internal/wire"
)

// This file is the campaign engine: the step from the paper's replay-only
// adversary (Recorder/Replayer, random ImpairLink loss) to the stealth-DoS
// attacker of Herzberg & Shulman — low-rate, well-timed interference that
// never breaks the channel's cryptography and still degrades it. A
// Campaign composes three powers over a victim wire.Link:
//
//   - the wiretap (wire.Tapper): observe every datagram the sender
//     transmits, including ones the network then loses;
//   - the gate (wire.GateLink): drop or delay *chosen* datagrams, not
//     random ones — loss aimed at window edges, SAVE cadence, cutovers;
//   - injection (wire.Injector): transmit recorded copies, bypassing the
//     victim's own impairment.
//
// Campaigns are armed once against a path and then activated in timed
// phases (Script). Everything a campaign decides is computed from bytes
// it could see on a real wire — ESP sequence numbers are cleartext — plus
// protocol knowledge (the SAVE interval K, rollover events it can detect
// by SPI changes); nothing peeks at victim internals.

// Hooks bundles the adversary's access to one direction of a victim
// path. Gate is required (it is both the actuator and, via its taps, the
// default wiretap); Engine is the virtual clock for scheduled phases and
// may be nil in wall-clock harnesses (the -race stress tests).
type Hooks struct {
	// Engine is the simulation clock for Script-scheduled phases.
	Engine *netsim.Engine
	// Gate is the drop/hold/inject actuator spliced into the victim path.
	Gate *wire.GateLink
	// Tap overrides the wiretap registration; nil uses Gate.Tap.
	Tap func(fn func(p []byte))
}

func (h Hooks) tap(fn func(p []byte)) {
	if h.Tap != nil {
		h.Tap(fn)
		return
	}
	h.Gate.Tap(fn)
}

// Campaign is one named, armable attack. Arm splices the campaign into
// the victim path (taps, gate decider); an armed campaign stays inert —
// observing, not interfering — until Activate, so its intelligence
// (window edges, cadence) is warm when its phase window opens.
type Campaign interface {
	Name() string
	Arm(h Hooks) error
	Activate()
	Deactivate()
}

// phase is the shared activation latch campaigns embed.
type phase struct{ active atomic.Bool }

// Activate opens the campaign's attack window.
func (p *phase) Activate() { p.active.Store(true) }

// Deactivate closes it; the campaign keeps observing.
func (p *phase) Deactivate() { p.active.Store(false) }

func (p *phase) attacking() bool { return p.active.Load() }

// Script schedules campaign activation windows on the simulation clock —
// the "timed attack phases" of a stealth campaign. A campaign may appear
// in several windows; windows of different campaigns may overlap.
type Script struct {
	engine *netsim.Engine
}

// NewScript returns a scheduler over engine.
func NewScript(engine *netsim.Engine) *Script { return &Script{engine: engine} }

// Window activates c at virtual time from and deactivates it at until.
func (s *Script) Window(c Campaign, from, until time.Duration) error {
	if until <= from {
		return fmt.Errorf("adversary: window [%v, %v) is empty", from, until)
	}
	s.engine.At(from, c.Activate)
	s.engine.At(until, c.Deactivate)
	return nil
}

// ESPSeq extracts the low 32 bits of a sealed ESP datagram's sequence
// number — cleartext on the wire, the campaign's view of the victim's
// counter. Reports false for datagrams too short to be ESP (control
// traffic, keepalives).
func ESPSeq(p []byte) (uint64, bool) {
	seq, err := ipsec.ParseSeqLo(p)
	if err != nil {
		return 0, false
	}
	return uint64(seq), true
}

// ESPSPI extracts a sealed ESP datagram's SPI; false for non-ESP bytes.
func ESPSPI(p []byte) (uint32, bool) {
	spi, err := ipsec.ParseSPI(p)
	if err != nil {
		return 0, false
	}
	return spi, true
}
