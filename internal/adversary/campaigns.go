package adversary

import (
	"fmt"
	"sync"

	"antireplay/internal/wire"
)

// ---------------------------------------------------------------------------
// Campaign (a): window-edge sniping.

// SnipeConfig parameterizes a WindowEdgeSnipe.
type SnipeConfig struct {
	// SeqOf extracts the victim counter from a datagram; nil uses ESPSeq.
	// Datagrams it rejects (control traffic) pass untouched.
	SeqOf func(p []byte) (uint64, bool)
	// HoldEvery holds back every N-th data packet (default 16) — sparse
	// enough to read as jitter, not an outage.
	HoldEvery int
	// HoldDepth releases a held packet only after HoldDepth newer packets
	// have passed (default 96). The released packet lands HoldDepth
	// behind the receiver's window edge: just inside a window wider than
	// HoldDepth (delivered late), just OUTSIDE a narrower one (stale,
	// discarded — goodput the victim silently loses).
	HoldDepth int
	// DupEvery, when > 0, injects a copy of every M-th passed packet: an
	// edge-adjacent duplicate the receiver's window must reject.
	DupEvery int
}

// SnipeStats counts the snipe's activity.
type SnipeStats struct {
	// Observed counts data packets the gate classified; Edge is the
	// highest sequence number seen on the wire.
	Observed, Edge uint64
	// Held and Released count reorder hostages taken and freed.
	Held, Released uint64
	// DupsInjected counts edge-adjacent duplicates injected.
	DupsInjected uint64
}

// WindowEdgeSnipe aims reorders and duplicates just inside the
// receiver's anti-replay window edge, tracked live from the wiretap: it
// delays one packet in HoldEvery by exactly HoldDepth packets, so
// whether that traffic survives is decided entirely by the victim's
// window width — the defense knob this campaign prices.
type WindowEdgeSnipe struct {
	phase
	cfg  SnipeConfig
	gate *wire.GateLink

	mu    sync.Mutex
	holds []uint64 // Observed value at each GateHold, FIFO
	st    SnipeStats
}

// NewWindowEdgeSnipe builds the campaign; Arm splices it into a path.
func NewWindowEdgeSnipe(cfg SnipeConfig) *WindowEdgeSnipe {
	if cfg.SeqOf == nil {
		cfg.SeqOf = ESPSeq
	}
	if cfg.HoldEvery <= 0 {
		cfg.HoldEvery = 16
	}
	if cfg.HoldDepth <= 0 {
		cfg.HoldDepth = 96
	}
	return &WindowEdgeSnipe{cfg: cfg}
}

// Name identifies the campaign in tables and flags.
func (c *WindowEdgeSnipe) Name() string { return "window_edge" }

// Arm installs the campaign as h.Gate's decider.
func (c *WindowEdgeSnipe) Arm(h Hooks) error {
	if h.Gate == nil {
		return fmt.Errorf("adversary: %s: gate required", c.Name())
	}
	c.gate = h.Gate
	h.Gate.SetGate(c.decide)
	return nil
}

func (c *WindowEdgeSnipe) decide(p []byte) wire.GateVerdict {
	seq, ok := c.cfg.SeqOf(p)
	if !ok {
		return wire.GatePass
	}
	c.mu.Lock()
	c.st.Observed++
	if seq > c.st.Edge {
		c.st.Edge = seq
	}
	// A hostage whose delay has matured re-enters the path now, landing
	// HoldDepth behind the edge.
	release := len(c.holds) > 0 && c.st.Observed-c.holds[0] >= uint64(c.cfg.HoldDepth)
	if release {
		c.holds = c.holds[1:]
		c.st.Released++
	}
	hold := c.attacking() && c.st.Observed%uint64(c.cfg.HoldEvery) == 0
	if hold {
		c.holds = append(c.holds, c.st.Observed)
		c.st.Held++
	}
	dup := !hold && c.attacking() && c.cfg.DupEvery > 0 &&
		c.st.Observed%uint64(c.cfg.DupEvery) == 0
	if dup {
		c.st.DupsInjected++
	}
	c.mu.Unlock()

	if release {
		c.gate.Release(1)
	}
	if hold {
		return wire.GateHold
	}
	if dup {
		c.gate.Inject(append([]byte(nil), p...))
	}
	return wire.GatePass
}

// Deactivate closes the attack window and frees remaining hostages (a
// stealth attacker leaves no queue behind to be found).
func (c *WindowEdgeSnipe) Deactivate() {
	c.phase.Deactivate()
	if c.gate != nil {
		n := c.gate.Release(-1)
		c.mu.Lock()
		c.holds = nil
		c.st.Released += uint64(n)
		c.mu.Unlock()
	}
}

// Stats returns a snapshot of the campaign counters.
func (c *WindowEdgeSnipe) Stats() SnipeStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st
}

// ---------------------------------------------------------------------------
// Campaign (b): SAVE-storm timing.

// StormConfig parameterizes a SaveStorm.
type StormConfig struct {
	// SeqOf extracts the victim counter; nil uses ESPSeq.
	SeqOf func(p []byte) (uint64, bool)
	// K is the victim's SAVE interval as the attacker estimates it — the
	// receiver's durable horizon advances in steps of K, so loss placed
	// against that cadence is worth more than random loss. Required.
	K uint64
	// BurstLen drops the packets whose sequence numbers fall in
	// [mK-BurstLen, mK) for every m: the strike zone just below each
	// SAVE boundary. The receiver's delivered edge parks BurstLen+1
	// short of the boundary, so its durable state trails the traffic by
	// a maximal margin — a crash now costs the widest sacrifice the
	// protocol allows. Default K/8 (min 1).
	BurstLen uint64
}

// StormStats counts the storm's activity.
type StormStats struct {
	// Observed counts data packets classified; Dropped counts strike-zone
	// drops; LastSeq is the latest sequence number seen.
	Observed, Dropped, LastSeq uint64
}

// SaveStorm synchronizes loss bursts to the observed SAVE-trigger
// cadence so the durable horizon lags maximally. Its goodput cost is
// bounded (BurstLen per K packets); the damage it buys is the *reset*
// cost, which the adaptive-K defense knob shrinks.
type SaveStorm struct {
	phase
	cfg StormConfig

	mu sync.Mutex
	st StormStats
}

// NewSaveStorm builds the campaign.
func NewSaveStorm(cfg StormConfig) (*SaveStorm, error) {
	if cfg.K == 0 {
		return nil, fmt.Errorf("adversary: save_storm: K required")
	}
	if cfg.SeqOf == nil {
		cfg.SeqOf = ESPSeq
	}
	if cfg.BurstLen == 0 {
		cfg.BurstLen = cfg.K / 8
		if cfg.BurstLen == 0 {
			cfg.BurstLen = 1
		}
	}
	if cfg.BurstLen >= cfg.K {
		return nil, fmt.Errorf("adversary: save_storm: BurstLen %d must be < K %d (a stealth attack is not an outage)",
			cfg.BurstLen, cfg.K)
	}
	return &SaveStorm{cfg: cfg}, nil
}

// Name identifies the campaign.
func (c *SaveStorm) Name() string { return "save_storm" }

// Arm installs the campaign as h.Gate's decider.
func (c *SaveStorm) Arm(h Hooks) error {
	if h.Gate == nil {
		return fmt.Errorf("adversary: %s: gate required", c.Name())
	}
	h.Gate.SetGate(c.decide)
	return nil
}

func (c *SaveStorm) decide(p []byte) wire.GateVerdict {
	seq, ok := c.cfg.SeqOf(p)
	if !ok {
		return wire.GatePass
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.st.Observed++
	c.st.LastSeq = seq
	if c.attacking() && seq%c.cfg.K >= c.cfg.K-c.cfg.BurstLen {
		c.st.Dropped++
		return wire.GateDrop
	}
	return wire.GatePass
}

// Parked reports whether the victim is currently at the storm's point of
// maximal damage: the sender has reached the strike zone below a SAVE
// boundary, so everything since the last boundary that the receiver
// delivered is ahead of its durable horizon. A reset timed now (the
// attacker can often cause or predict one) maximizes the wake sacrifice.
func (c *SaveStorm) Parked() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st.LastSeq%c.cfg.K >= c.cfg.K-c.cfg.BurstLen
}

// Stats returns a snapshot of the campaign counters.
func (c *SaveStorm) Stats() StormStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st
}

// ---------------------------------------------------------------------------
// Campaign (c): rekey-cutover resets.

// RekeyCutConfig parameterizes a RekeyCut.
type RekeyCutConfig struct {
	// SuppressExchanges eats this many rekey exchange attempts outright —
	// the off-path attacker dropping IKE messages it can aim at (rekey
	// traffic is bursty and well-timed, easy to recognize).
	SuppressExchanges int
	// BlackoutPackets drops this many data packets immediately after each
	// observed cutover — a link reset timed against the rollover window,
	// when both generations' state is in motion.
	BlackoutPackets int
}

// RekeyCutStats counts the campaign's activity.
type RekeyCutStats struct {
	// Suppressed counts exchange attempts eaten; Cutovers counts rollover
	// cutovers observed; BlackoutDrops counts post-cutover packet drops.
	Suppressed, Cutovers, BlackoutDrops uint64
}

// RekeyCut times interference against rekey.Orchestrator rollover
// windows: it suppresses the first SuppressExchanges exchange attempts
// (wired into the orchestrator's Exchange hook via SuppressExchange) and
// fires a BlackoutPackets link reset at each cutover (wired into the
// orchestrator's Observer via OnCutover). Make-before-break is the
// defense it prices: the old generation must carry traffic through every
// suppressed retry, and bounded retry (MaxAttempts) must converge the
// rollover once suppression is exhausted.
type RekeyCut struct {
	phase
	cfg RekeyCutConfig

	mu           sync.Mutex
	suppressed   int
	blackoutLeft int
	st           RekeyCutStats
}

// NewRekeyCut builds the campaign.
func NewRekeyCut(cfg RekeyCutConfig) *RekeyCut { return &RekeyCut{cfg: cfg} }

// Name identifies the campaign.
func (c *RekeyCut) Name() string { return "rekey_cutover" }

// Arm installs the blackout decider on h.Gate.
func (c *RekeyCut) Arm(h Hooks) error {
	if h.Gate == nil {
		return fmt.Errorf("adversary: %s: gate required", c.Name())
	}
	h.Gate.SetGate(c.decide)
	return nil
}

func (c *RekeyCut) decide([]byte) wire.GateVerdict {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.blackoutLeft > 0 {
		c.blackoutLeft--
		c.st.BlackoutDrops++
		return wire.GateDrop
	}
	return wire.GatePass
}

// SuppressExchange reports whether the adversary eats this exchange
// attempt's messages; the harness consults it from the orchestrator's
// Exchange hook. Suppression stops after SuppressExchanges attempts —
// holding IKE down forever is an outage, not a stealth campaign.
func (c *RekeyCut) SuppressExchange() bool {
	if !c.attacking() {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.suppressed >= c.cfg.SuppressExchanges {
		return false
	}
	c.suppressed++
	c.st.Suppressed++
	return true
}

// OnCutover arms the post-cutover blackout; wire it to the rollover
// observer (rekey.Config.Observer, EventCutover).
func (c *RekeyCut) OnCutover() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.st.Cutovers++
	if c.attacking() {
		c.blackoutLeft = c.cfg.BlackoutPackets
	}
}

// Stats returns a snapshot of the campaign counters.
func (c *RekeyCut) Stats() RekeyCutStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st
}

// ---------------------------------------------------------------------------
// Campaign (d): failover-blackout replay floods.

// BlackoutFloodConfig parameterizes a BlackoutFlood.
type BlackoutFloodConfig struct {
	// MaxBurst bounds the flood to the most recent N recorded datagrams;
	// 0 floods the entire recording (the §3 catastrophe's shape).
	MaxBurst int
}

// BlackoutFloodStats counts the campaign's activity.
type BlackoutFloodStats struct {
	// Recorded counts wiretapped datagrams; Floods counts takeover
	// windows attacked; Flooded counts datagrams injected.
	Recorded, Floods, Flooded uint64
}

// BlackoutFlood records the victim's traffic and injects it as a burst
// during the failover takeover wake window — the instant a standby wakes
// from replicated counters and its windows are at their most freshly
// reinitialized. The zero-replay SLO must hold even then; what the flood
// actually prices is the wake window's false-reject bill.
type BlackoutFlood struct {
	phase
	cfg  BlackoutFloodConfig
	rec  *Recorder[[]byte]
	gate *wire.GateLink

	mu sync.Mutex
	st BlackoutFloodStats
}

// NewBlackoutFlood builds the campaign.
func NewBlackoutFlood(cfg BlackoutFloodConfig) *BlackoutFlood {
	return &BlackoutFlood{cfg: cfg, rec: NewRecorder[[]byte]()}
}

// Name identifies the campaign.
func (c *BlackoutFlood) Name() string { return "blackout_flood" }

// Arm attaches the recording wiretap. The gate passes traffic untouched
// (this campaign's weapon is the recording, not drops).
func (c *BlackoutFlood) Arm(h Hooks) error {
	if h.Gate == nil {
		return fmt.Errorf("adversary: %s: gate required", c.Name())
	}
	c.gate = h.Gate
	tapFn := c.rec.Tap()
	h.tap(func(p []byte) {
		tapFn(append([]byte(nil), p...))
		c.mu.Lock()
		c.st.Recorded++
		c.mu.Unlock()
	})
	return nil
}

// OnTakeover floods the recording into the path; wire it to the cluster
// promotion hook (cluster.Config.OnPromote), which fires inside the
// takeover wake window.
func (c *BlackoutFlood) OnTakeover(uint64) {
	if !c.attacking() {
		return
	}
	msgs := c.rec.Messages()
	if c.cfg.MaxBurst > 0 && len(msgs) > c.cfg.MaxBurst {
		msgs = msgs[len(msgs)-c.cfg.MaxBurst:]
	}
	c.mu.Lock()
	c.st.Floods++
	c.st.Flooded += uint64(len(msgs))
	c.mu.Unlock()
	for _, m := range msgs {
		c.gate.Inject(m)
	}
}

// Recorded returns how many datagrams the wiretap has captured.
func (c *BlackoutFlood) Recorded() int { return c.rec.Len() }

// Stats returns a snapshot of the campaign counters.
func (c *BlackoutFlood) Stats() BlackoutFloodStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st
}

var (
	_ Campaign = (*WindowEdgeSnipe)(nil)
	_ Campaign = (*SaveStorm)(nil)
	_ Campaign = (*RekeyCut)(nil)
	_ Campaign = (*BlackoutFlood)(nil)
)
