// Package adversary implements the paper's replay attacker: a wiretap that
// records every message the sender transmits, plus injection strategies that
// replay recorded traffic into the receiver.
//
// The adversary is Dolev-Yao-restricted to replay: it cannot forge message
// contents (the SA's integrity key prevents that), only re-insert copies of
// messages it has observed — "an adversary can insert in the message stream
// from p to q a copy of any message t that was sent earlier by p" (§2).
//
// Recorder taps a link at the wiretap position (seeing what the sender
// transmits, including messages the network then loses — the adversary's
// antenna is not subject to the victim's packet loss), and Replayer turns
// the recording into injection schedules: everything at once after a
// wake-up (the §3 catastrophe's strongest shape), a sliding window of
// recent traffic, or arbitrary programmed subsets. Injections bypass the
// link's loss model because the adversary controls its own transmissions.
// The experiment harness pairs every replayed packet with ground truth in a
// trace.Matrix, so "replay accepted" is counted from the harness's
// knowledge, not inferred from verdicts.
package adversary

import (
	"sync"
	"time"

	"antireplay/internal/netsim"
)

// Recorder captures wire traffic of type T for later replay.
// It is safe for concurrent use.
type Recorder[T any] struct {
	mu   sync.Mutex
	msgs []T
}

// NewRecorder returns an empty recorder.
func NewRecorder[T any]() *Recorder[T] { return &Recorder[T]{} }

// Tap returns a callback suitable for Link.Tap that records each message.
func (r *Recorder[T]) Tap() func(T) {
	return func(v T) {
		r.mu.Lock()
		defer r.mu.Unlock()
		r.msgs = append(r.msgs, v)
	}
}

// Record stores one message directly.
func (r *Recorder[T]) Record(v T) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.msgs = append(r.msgs, v)
}

// Len returns the number of recorded messages.
func (r *Recorder[T]) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.msgs)
}

// Messages returns a copy of the recorded messages in capture order.
func (r *Recorder[T]) Messages() []T {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]T, len(r.msgs))
	copy(out, r.msgs)
	return out
}

// MaxBy returns the recorded message maximizing key, and false when empty.
func (r *Recorder[T]) MaxBy(key func(T) uint64) (T, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var best T
	if len(r.msgs) == 0 {
		return best, false
	}
	best = r.msgs[0]
	bk := key(best)
	for _, m := range r.msgs[1:] {
		if k := key(m); k > bk {
			best, bk = m, k
		}
	}
	return best, true
}

// Injector abstracts the adversary's write access to the channel; a
// *netsim.Link[T] satisfies it.
type Injector[T any] interface {
	Inject(v T)
}

var _ Injector[int] = (*netsim.Link[int])(nil)

// Replayer schedules replay attacks on a simulation engine.
type Replayer[T any] struct {
	engine   *netsim.Engine
	inject   Injector[T]
	recorder *Recorder[T]
	injected uint64
	mu       sync.Mutex
}

// NewReplayer returns a replayer injecting recorder's captures into inject.
func NewReplayer[T any](engine *netsim.Engine, inject Injector[T], recorder *Recorder[T]) *Replayer[T] {
	return &Replayer[T]{engine: engine, inject: inject, recorder: recorder}
}

// Injected returns how many messages the adversary has injected so far.
func (a *Replayer[T]) Injected() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.injected
}

func (a *Replayer[T]) doInject(v T) {
	a.mu.Lock()
	a.injected++
	a.mu.Unlock()
	a.inject.Inject(v)
}

// ReplayAllAt schedules, starting at virtual time start, an in-order replay
// of everything recorded by then, one injection every gap. This is the §3
// attack against a freshly reset receiver: "an adversary can replay in order
// all the messages with sequence numbers within the range from 1 to x".
// It returns the number of messages scheduled.
func (a *Replayer[T]) ReplayAllAt(start time.Duration, gap time.Duration) int {
	msgs := a.recorder.Messages()
	for i, m := range msgs {
		m := m
		a.engine.At(start+time.Duration(i)*gap, func() { a.doInject(m) })
	}
	return len(msgs)
}

// ReplayMaxAt schedules, at virtual time start, a single replay of the
// recorded message with the largest key. This is the §3 window-shift attack
// after a double reset: replaying the highest-sequence message forces the
// receiver's window edge far beyond the reset sender's counter, blackholing
// all fresh traffic. It reports whether a message was available.
func (a *Replayer[T]) ReplayMaxAt(start time.Duration, key func(T) uint64) bool {
	m, ok := a.recorder.MaxBy(key)
	if !ok {
		return false
	}
	a.engine.At(start, func() { a.doInject(m) })
	return true
}

// ReplayIndexAt schedules a replay of the i-th recorded message (capture
// order) at virtual time start. It reports whether the index existed.
func (a *Replayer[T]) ReplayIndexAt(start time.Duration, i int) bool {
	msgs := a.recorder.Messages()
	if i < 0 || i >= len(msgs) {
		return false
	}
	a.engine.At(start, func() { a.doInject(msgs[i]) })
	return true
}
