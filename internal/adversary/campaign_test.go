package adversary

import (
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"antireplay/internal/netsim"
	"antireplay/internal/seqwin"
	"antireplay/internal/wire"
)

// sinkLink is a minimal wire.Link that collects everything sent through
// it, in arrival order — the "receiver side of the wire" for campaign
// physics tests that want to replay arrivals into an anti-replay window.
type sinkLink struct {
	mu   sync.Mutex
	sent [][]byte
}

func (s *sinkLink) Send(p []byte) error {
	s.mu.Lock()
	s.sent = append(s.sent, append([]byte(nil), p...))
	s.mu.Unlock()
	return nil
}

func (s *sinkLink) Recv() ([]byte, error) { return nil, wire.ErrNoDatagram }
func (s *sinkLink) Close() error          { return nil }
func (s *sinkLink) Stats() wire.Stats     { return wire.Stats{} }
func (s *sinkLink) MTU() int              { return 64 << 10 }

func (s *sinkLink) arrivals() [][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([][]byte(nil), s.sent...)
}

// rawSeq is the test's stand-in for ESPSeq: the datagram is just an
// 8-byte big-endian counter.
func rawSeq(p []byte) (uint64, bool) {
	if len(p) < 8 {
		return 0, false
	}
	return binary.BigEndian.Uint64(p), true
}

func seqPacket(s uint64) []byte {
	p := make([]byte, 8)
	binary.BigEndian.PutUint64(p, s)
	return p
}

// admitAll replays arrivals into a fresh Bitmap window of width w and
// returns (delivered unique count, duplicate discards, stale discards).
func admitAll(t *testing.T, arrivals [][]byte, w int) (delivered, dups, stale int) {
	t.Helper()
	win := seqwin.NewBitmap(w)
	for _, p := range arrivals {
		s, ok := rawSeq(p)
		if !ok {
			t.Fatalf("non-seq arrival %x", p)
		}
		switch d := win.Admit(s); d {
		case seqwin.DecisionNew, seqwin.DecisionInWindow:
			delivered++
		case seqwin.DecisionDuplicate:
			dups++
		case seqwin.DecisionStale:
			stale++
		default:
			t.Fatalf("seq %d: unexpected decision %v", s, d)
		}
	}
	return delivered, dups, stale
}

// TestWindowEdgeSnipeWindowWidth is the campaign's core physics: a
// hostage released HoldDepth packets late lands inside a window wider
// than HoldDepth (delivered) and below the edge of a narrower one
// (silently discarded). The defense knob is the window width.
func TestWindowEdgeSnipeWindowWidth(t *testing.T) {
	const n = 1000
	run := func() (*WindowEdgeSnipe, [][]byte) {
		sink := &sinkLink{}
		gate := wire.NewGateLink(sink)
		c := NewWindowEdgeSnipe(SnipeConfig{SeqOf: rawSeq, HoldEvery: 16, HoldDepth: 96})
		if err := c.Arm(Hooks{Gate: gate}); err != nil {
			t.Fatal(err)
		}
		c.Activate()
		for s := uint64(1); s <= n; s++ {
			if err := gate.Send(seqPacket(s)); err != nil {
				t.Fatal(err)
			}
		}
		c.Deactivate() // frees remaining hostages
		return c, sink.arrivals()
	}

	c, arrivals := run()
	st := c.Stats()
	if st.Observed != n || st.Edge != n {
		t.Fatalf("Observed=%d Edge=%d, want %d", st.Observed, st.Edge, n)
	}
	if st.Held == 0 || st.Held != st.Released {
		t.Fatalf("Held=%d Released=%d: every hostage must be freed", st.Held, st.Released)
	}
	if len(arrivals) != n {
		t.Fatalf("arrivals=%d, want %d (holds delay, never destroy)", len(arrivals), n)
	}

	// Wide window: every hostage lands inside, nothing is lost.
	delivered, dups, stale := admitAll(t, arrivals, 128)
	if delivered != n || dups != 0 || stale != 0 {
		t.Errorf("w=128: delivered=%d dups=%d stale=%d, want %d/0/0", delivered, dups, stale, n)
	}

	// Narrow window: matured hostages land below the edge and are
	// discarded as stale — goodput lost without a single drop on the wire.
	_, arrivals = run()
	delivered, dups, stale = admitAll(t, arrivals, 64)
	if stale == 0 {
		t.Errorf("w=64: no stale discards; the snipe should cost goodput")
	}
	if dups != 0 {
		t.Errorf("w=64: dups=%d, want 0", dups)
	}
	if delivered+stale != n {
		t.Errorf("w=64: delivered+stale = %d+%d, want %d", delivered, stale, n)
	}
}

// TestWindowEdgeSnipeDuplicates checks the dup injector: every injected
// copy is edge-adjacent, and the receiver window must reject all of them
// (zero replay acceptance) while still delivering the originals.
func TestWindowEdgeSnipeDuplicates(t *testing.T) {
	const n = 500
	sink := &sinkLink{}
	gate := wire.NewGateLink(sink)
	c := NewWindowEdgeSnipe(SnipeConfig{SeqOf: rawSeq, HoldEvery: 1 << 30, DupEvery: 10})
	if err := c.Arm(Hooks{Gate: gate}); err != nil {
		t.Fatal(err)
	}
	c.Activate()
	for s := uint64(1); s <= n; s++ {
		if err := gate.Send(seqPacket(s)); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.DupsInjected != n/10 {
		t.Fatalf("DupsInjected=%d, want %d", st.DupsInjected, n/10)
	}
	arrivals := sink.arrivals()
	if len(arrivals) != n+n/10 {
		t.Fatalf("arrivals=%d, want %d", len(arrivals), n+n/10)
	}
	delivered, dups, stale := admitAll(t, arrivals, 64)
	if delivered != n || stale != 0 {
		t.Errorf("delivered=%d stale=%d, want %d/0", delivered, stale, n)
	}
	if dups != n/10 {
		t.Errorf("window rejected %d duplicates, want %d", dups, n/10)
	}
}

// TestSaveStormStrikeZone checks the storm drops exactly the strike zone
// [mK-BurstLen, mK) while attacking, nothing while dormant, and that
// Parked reports the maximal-damage instants.
func TestSaveStormStrikeZone(t *testing.T) {
	c, err := NewSaveStorm(StormConfig{SeqOf: rawSeq, K: 100, BurstLen: 8})
	if err != nil {
		t.Fatal(err)
	}
	sink := &sinkLink{}
	gate := wire.NewGateLink(sink)
	if err := c.Arm(Hooks{Gate: gate}); err != nil {
		t.Fatal(err)
	}

	// Dormant: the armed campaign only observes.
	for s := uint64(1); s <= 100; s++ {
		if err := gate.Send(seqPacket(s)); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Dropped != 0 || st.Observed != 100 {
		t.Fatalf("dormant: Dropped=%d Observed=%d, want 0/100", st.Dropped, st.Observed)
	}

	c.Activate()
	var wantDropped uint64
	for s := uint64(101); s <= 300; s++ {
		if err := gate.Send(seqPacket(s)); err != nil {
			t.Fatal(err)
		}
		inZone := s%100 >= 92
		if inZone {
			wantDropped++
		}
		if got := c.Parked(); got != inZone {
			t.Fatalf("seq %d: Parked=%v, want %v", s, got, inZone)
		}
	}
	st := c.Stats()
	if st.Dropped != wantDropped {
		t.Errorf("Dropped=%d, want %d", st.Dropped, wantDropped)
	}
	if got := len(sink.arrivals()); got != 300-int(wantDropped) {
		t.Errorf("arrivals=%d, want %d", got, 300-int(wantDropped))
	}

	// Config validation: K is required, BurstLen must stay stealthy.
	if _, err := NewSaveStorm(StormConfig{}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := NewSaveStorm(StormConfig{K: 8, BurstLen: 8}); err == nil {
		t.Error("BurstLen >= K accepted")
	}
}

// TestRekeyCutSuppressAndBlackout checks the two timed weapons: bounded
// exchange suppression while attacking, and a packet blackout armed by
// each cutover observed during the attack window.
func TestRekeyCutSuppressAndBlackout(t *testing.T) {
	c := NewRekeyCut(RekeyCutConfig{SuppressExchanges: 3, BlackoutPackets: 4})
	sink := &sinkLink{}
	gate := wire.NewGateLink(sink)
	if err := c.Arm(Hooks{Gate: gate}); err != nil {
		t.Fatal(err)
	}

	if c.SuppressExchange() {
		t.Fatal("dormant campaign suppressed an exchange")
	}
	c.OnCutover() // dormant: observed, not weaponized
	for i := 0; i < 5; i++ {
		if err := gate.Send(seqPacket(uint64(i + 1))); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Cutovers != 1 || st.BlackoutDrops != 0 {
		t.Fatalf("dormant: Cutovers=%d BlackoutDrops=%d, want 1/0", st.Cutovers, st.BlackoutDrops)
	}

	c.Activate()
	got := 0
	for i := 0; i < 10; i++ {
		if c.SuppressExchange() {
			got++
		}
	}
	if got != 3 {
		t.Errorf("suppressed %d exchanges, want 3 (suppression is bounded)", got)
	}

	before := len(sink.arrivals())
	c.OnCutover()
	for i := 0; i < 10; i++ {
		if err := gate.Send(seqPacket(uint64(100 + i))); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.BlackoutDrops != 4 {
		t.Errorf("BlackoutDrops=%d, want 4", st.BlackoutDrops)
	}
	if gotN := len(sink.arrivals()) - before; gotN != 6 {
		t.Errorf("post-cutover arrivals=%d, want 6", gotN)
	}
}

// TestBlackoutFloodRecordsAndFloods checks the record-then-replay shape:
// the wiretap captures passing traffic, and OnTakeover injects the most
// recent MaxBurst datagrams only while the attack window is open.
func TestBlackoutFloodRecordsAndFloods(t *testing.T) {
	c := NewBlackoutFlood(BlackoutFloodConfig{MaxBurst: 5})
	sink := &sinkLink{}
	gate := wire.NewGateLink(sink)
	if err := c.Arm(Hooks{Gate: gate}); err != nil {
		t.Fatal(err)
	}
	const n = 20
	for s := uint64(1); s <= n; s++ {
		if err := gate.Send(seqPacket(s)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Recorded() != n {
		t.Fatalf("Recorded=%d, want %d", c.Recorded(), n)
	}

	c.OnTakeover(1) // dormant: no flood
	if got := len(sink.arrivals()); got != n {
		t.Fatalf("dormant flood injected: arrivals=%d, want %d", got, n)
	}

	c.Activate()
	c.OnTakeover(2)
	arrivals := sink.arrivals()
	if len(arrivals) != n+5 {
		t.Fatalf("arrivals=%d, want %d", len(arrivals), n+5)
	}
	// The flood is the most recent 5 recordings, in capture order.
	for i, p := range arrivals[n:] {
		want := uint64(n - 5 + 1 + i)
		if s, _ := rawSeq(p); s != want {
			t.Errorf("flooded[%d] = seq %d, want %d", i, s, want)
		}
	}
	// Injection bypasses the wiretap: the flood must not re-record itself.
	if c.Recorded() != n {
		t.Errorf("flood re-recorded: Recorded=%d, want %d", c.Recorded(), n)
	}
	st := c.Stats()
	if st.Floods != 1 || st.Flooded != 5 {
		t.Errorf("Floods=%d Flooded=%d, want 1/5", st.Floods, st.Flooded)
	}
}

// TestScriptWindows drives a campaign through a scheduled attack window
// on the virtual clock and checks interference happens only inside it.
func TestScriptWindows(t *testing.T) {
	e := netsim.NewEngine(7)
	sink := &sinkLink{}
	gate := wire.NewGateLink(sink)
	// Every packet sits in the strike zone (seq = 10m+9, K=10, BurstLen=9),
	// so drops map one-to-one onto the activation window.
	c, err := NewSaveStorm(StormConfig{SeqOf: rawSeq, K: 10, BurstLen: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Arm(Hooks{Engine: e, Gate: gate}); err != nil {
		t.Fatal(err)
	}
	script := NewScript(e)
	if err := script.Window(c, 10*time.Microsecond, 20*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	if err := script.Window(c, 20*time.Microsecond, 20*time.Microsecond); err == nil {
		t.Fatal("empty window accepted")
	}

	for i := 0; i < 30; i++ {
		s := uint64(10*i + 9)
		at := time.Duration(i)*time.Microsecond + 500*time.Nanosecond
		e.At(at, func() {
			if err := gate.Send(seqPacket(s)); err != nil {
				t.Error(err)
			}
		})
	}
	e.Run()

	st := c.Stats()
	if st.Observed != 30 {
		t.Fatalf("Observed=%d, want 30", st.Observed)
	}
	// Sends at 10.5µs..19.5µs fall inside [10µs, 20µs): exactly 10 drops.
	if st.Dropped != 10 {
		t.Errorf("Dropped=%d, want 10 (the scheduled window)", st.Dropped)
	}
	if got := len(sink.arrivals()); got != 20 {
		t.Errorf("arrivals=%d, want 20", got)
	}
}
