package adversary

import (
	"sync"
	"testing"
	"time"

	"antireplay/internal/netsim"
)

type pkt struct {
	seq   uint64
	fresh bool
}

func TestRecorderTapAndMessages(t *testing.T) {
	r := NewRecorder[pkt]()
	tap := r.Tap()
	tap(pkt{seq: 1, fresh: true})
	tap(pkt{seq: 2, fresh: true})
	r.Record(pkt{seq: 3})
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	msgs := r.Messages()
	if len(msgs) != 3 || msgs[0].seq != 1 || msgs[2].seq != 3 {
		t.Errorf("Messages = %v", msgs)
	}
	// Messages returns a copy.
	msgs[0].seq = 99
	if r.Messages()[0].seq == 99 {
		t.Error("Messages must return a copy")
	}
}

func TestRecorderMaxBy(t *testing.T) {
	r := NewRecorder[pkt]()
	if _, ok := r.MaxBy(func(p pkt) uint64 { return p.seq }); ok {
		t.Error("MaxBy on empty should report false")
	}
	for _, s := range []uint64{5, 9, 3, 9, 1} {
		r.Record(pkt{seq: s})
	}
	m, ok := r.MaxBy(func(p pkt) uint64 { return p.seq })
	if !ok || m.seq != 9 {
		t.Errorf("MaxBy = %v %v, want seq 9", m, ok)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder[uint64]()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tap := r.Tap()
			for i := 0; i < 500; i++ {
				tap(uint64(g*1000 + i))
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 4000 {
		t.Errorf("Len = %d, want 4000", r.Len())
	}
}

func replaySetup(t *testing.T, seed int64) (*netsim.Engine, *netsim.Link[pkt], *Recorder[pkt], *Replayer[pkt], *[]pkt) {
	t.Helper()
	e := netsim.NewEngine(seed)
	var delivered []pkt
	link := netsim.NewLink(e, netsim.LinkConfig{Delay: time.Millisecond}, func(p pkt) {
		delivered = append(delivered, p)
	})
	rec := NewRecorder[pkt]()
	link.Tap(func(p pkt) {
		rec.Record(pkt{seq: p.seq, fresh: false}) // record replay-ready copies
	})
	rep := NewReplayer[pkt](e, link, rec)
	return e, link, rec, rep, &delivered
}

func TestReplayAllAtInOrder(t *testing.T) {
	e, link, _, rep, delivered := replaySetup(t, 1)
	for s := uint64(1); s <= 5; s++ {
		link.Send(pkt{seq: s, fresh: true})
	}
	e.Run()
	*delivered = nil

	n := rep.ReplayAllAt(10*time.Millisecond, 100*time.Microsecond)
	if n != 5 {
		t.Fatalf("scheduled %d, want 5", n)
	}
	e.Run()
	if len(*delivered) != 5 {
		t.Fatalf("delivered %d, want 5", len(*delivered))
	}
	for i, p := range *delivered {
		if p.seq != uint64(i+1) {
			t.Errorf("replay %d = seq %d, want %d", i, p.seq, i+1)
		}
		if p.fresh {
			t.Errorf("replay %d marked fresh", i)
		}
	}
	if rep.Injected() != 5 {
		t.Errorf("Injected = %d, want 5", rep.Injected())
	}
}

func TestReplayMaxAt(t *testing.T) {
	e, link, _, rep, delivered := replaySetup(t, 2)
	for _, s := range []uint64{3, 7, 2} {
		link.Send(pkt{seq: s, fresh: true})
	}
	e.Run()
	*delivered = nil

	if !rep.ReplayMaxAt(5*time.Millisecond, func(p pkt) uint64 { return p.seq }) {
		t.Fatal("ReplayMaxAt = false")
	}
	e.Run()
	if len(*delivered) != 1 || (*delivered)[0].seq != 7 {
		t.Errorf("delivered = %v, want [seq 7]", *delivered)
	}
}

func TestReplayMaxAtEmpty(t *testing.T) {
	_, _, _, rep, _ := replaySetup(t, 3)
	if rep.ReplayMaxAt(time.Millisecond, func(p pkt) uint64 { return p.seq }) {
		t.Error("ReplayMaxAt on empty recorder should report false")
	}
}

func TestReplayIndexAt(t *testing.T) {
	e, link, _, rep, delivered := replaySetup(t, 4)
	for s := uint64(1); s <= 3; s++ {
		link.Send(pkt{seq: s, fresh: true})
	}
	e.Run()
	*delivered = nil

	if !rep.ReplayIndexAt(time.Millisecond, 1) {
		t.Fatal("ReplayIndexAt(1) = false")
	}
	if rep.ReplayIndexAt(time.Millisecond, 7) {
		t.Error("ReplayIndexAt out of range should report false")
	}
	if rep.ReplayIndexAt(time.Millisecond, -1) {
		t.Error("ReplayIndexAt(-1) should report false")
	}
	e.Run()
	if len(*delivered) != 1 || (*delivered)[0].seq != 2 {
		t.Errorf("delivered = %v, want [seq 2]", *delivered)
	}
}

// TestReplayBypassesLoss: the adversary's injections are not subject to the
// network's loss model (it controls its own transmissions).
func TestReplayBypassesLoss(t *testing.T) {
	e := netsim.NewEngine(5)
	var delivered []pkt
	link := netsim.NewLink(e, netsim.LinkConfig{LossProb: 1}, func(p pkt) {
		delivered = append(delivered, p)
	})
	rec := NewRecorder[pkt]()
	rec.Record(pkt{seq: 42})
	rep := NewReplayer[pkt](e, link, rec)
	rep.ReplayAllAt(0, time.Microsecond)
	e.Run()
	if len(delivered) != 1 {
		t.Errorf("delivered %d, want 1 (injections bypass loss)", len(delivered))
	}
}
