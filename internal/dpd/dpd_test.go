package dpd

import (
	"testing"
	"time"

	"antireplay/internal/netsim"
)

func testConfig(e *netsim.Engine, probes *[]uint64, states *[]PeerState) Config {
	return Config{
		Engine:      e,
		IdleTimeout: 10 * time.Second,
		AckTimeout:  2 * time.Second,
		MaxProbes:   3,
		HoldTime:    60 * time.Second,
		SendProbe:   func(seq uint64) { *probes = append(*probes, seq) },
		OnState:     func(s PeerState) { *states = append(*states, s) },
	}
}

func TestConfigValidate(t *testing.T) {
	e := netsim.NewEngine(1)
	valid := Config{Engine: e, IdleTimeout: time.Second, AckTimeout: time.Second, SendProbe: func(uint64) {}}
	if err := valid.Validate(); err != nil {
		t.Errorf("valid config: %v", err)
	}
	for name, mutate := range map[string]func(*Config){
		"no engine":    func(c *Config) { c.Engine = nil },
		"no idle":      func(c *Config) { c.IdleTimeout = 0 },
		"no ack":       func(c *Config) { c.AckTimeout = 0 },
		"neg probes":   func(c *Config) { c.MaxProbes = -1 },
		"no sendprobe": func(c *Config) { c.SendProbe = nil },
	} {
		c := valid
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate = nil, want error", name)
		}
	}
}

func TestQuietPeerDeclaredDeadThenExpired(t *testing.T) {
	e := netsim.NewEngine(1)
	var probes []uint64
	var states []PeerState
	m, err := NewMonitor(testConfig(e, &probes, &states))
	if err != nil {
		t.Fatal(err)
	}

	// Idle 10s + 3 probes * 2s = dead at 16s; hold 60s -> expired at 76s.
	e.RunUntil(15 * time.Second)
	if m.State() != StateProbing {
		t.Fatalf("state at 15s = %v, want probing", m.State())
	}
	e.RunUntil(17 * time.Second)
	if m.State() != StateDead {
		t.Fatalf("state at 17s = %v, want dead", m.State())
	}
	if len(probes) != 3 {
		t.Errorf("probes sent = %d, want 3", len(probes))
	}
	e.RunUntil(80 * time.Second)
	if m.State() != StateExpired {
		t.Fatalf("state at 80s = %v, want expired", m.State())
	}
	wantStates := []PeerState{StateProbing, StateDead, StateExpired}
	if len(states) != len(wantStates) {
		t.Fatalf("transitions = %v, want %v", states, wantStates)
	}
	for i := range wantStates {
		if states[i] != wantStates[i] {
			t.Fatalf("transition %d = %v, want %v", i, states[i], wantStates[i])
		}
	}
	probesSent, acks, deaths := m.Stats()
	if probesSent != 3 || acks != 0 || deaths != 1 {
		t.Errorf("stats = %d/%d/%d, want 3/0/1", probesSent, acks, deaths)
	}
}

func TestInboundTrafficKeepsAlive(t *testing.T) {
	e := netsim.NewEngine(1)
	var probes []uint64
	var states []PeerState
	m, err := NewMonitor(testConfig(e, &probes, &states))
	if err != nil {
		t.Fatal(err)
	}
	// Traffic every 5s forever: never probes.
	for i := 1; i <= 20; i++ {
		e.At(time.Duration(i)*5*time.Second, m.NoteInbound)
	}
	e.RunUntil(100 * time.Second)
	if m.State() != StateAlive {
		t.Fatalf("state = %v, want alive", m.State())
	}
	if len(probes) != 0 {
		t.Errorf("probes = %v, want none", probes)
	}
}

func TestAckDuringProbingRecovers(t *testing.T) {
	e := netsim.NewEngine(1)
	var probes []uint64
	var states []PeerState
	m, err := NewMonitor(testConfig(e, &probes, &states))
	if err != nil {
		t.Fatal(err)
	}
	// First probe at 10s; ack arrives at 11s.
	e.At(11*time.Second, func() { m.NoteAck(1) })
	e.RunUntil(12 * time.Second)
	if m.State() != StateAlive {
		t.Fatalf("state = %v, want alive after ack", m.State())
	}
	_, acks, _ := m.Stats()
	if acks != 1 {
		t.Errorf("acks = %d, want 1", acks)
	}
	// The cycle repeats: idle again from 11s, probing at 21s.
	e.RunUntil(22 * time.Second)
	if m.State() != StateProbing {
		t.Fatalf("state at 22s = %v, want probing again", m.State())
	}
}

func TestResurrectionDuringHold(t *testing.T) {
	// §6: the peer resets, is declared dead, and wakes within the hold
	// time; its secured announcement revives the association.
	e := netsim.NewEngine(1)
	var probes []uint64
	var states []PeerState
	m, err := NewMonitor(testConfig(e, &probes, &states))
	if err != nil {
		t.Fatal(err)
	}
	e.RunUntil(20 * time.Second) // dead at 16s
	if m.State() != StateDead {
		t.Fatalf("state = %v, want dead", m.State())
	}
	m.NoteInbound() // the "I am up" message (already window/ICV-checked)
	if m.State() != StateAlive {
		t.Fatalf("state = %v, want alive after resurrection", m.State())
	}
	// With traffic flowing again, the stale hold timer (armed at the death
	// declaration, due at 76s) must not expire the revived association.
	for ts := 25 * time.Second; ts <= 200*time.Second; ts += 5 * time.Second {
		e.At(ts, m.NoteInbound)
	}
	e.RunUntil(200 * time.Second)
	if m.State() != StateAlive {
		t.Fatalf("state = %v, want alive while traffic flows", m.State())
	}
}

func TestExpiredIgnoresTraffic(t *testing.T) {
	e := netsim.NewEngine(1)
	var probes []uint64
	var states []PeerState
	m, err := NewMonitor(testConfig(e, &probes, &states))
	if err != nil {
		t.Fatal(err)
	}
	e.RunUntil(100 * time.Second) // expired at 76s
	if m.State() != StateExpired {
		t.Fatalf("state = %v, want expired", m.State())
	}
	m.NoteInbound()
	if m.State() != StateExpired {
		t.Error("expired association must stay expired (IKE required)")
	}
	m.NoteAck(1)
	if m.State() != StateExpired {
		t.Error("expired association must ignore acks")
	}
}

func TestZeroHoldTimeGoesStraightToExpired(t *testing.T) {
	e := netsim.NewEngine(1)
	var probes []uint64
	cfg := Config{
		Engine:      e,
		IdleTimeout: time.Second,
		AckTimeout:  time.Second,
		MaxProbes:   1,
		SendProbe:   func(seq uint64) { probes = append(probes, seq) },
	}
	m, err := NewMonitor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.RunUntil(10 * time.Second)
	if m.State() != StateExpired {
		t.Fatalf("state = %v, want expired (no hold)", m.State())
	}
}

func TestDefaultMaxProbes(t *testing.T) {
	e := netsim.NewEngine(1)
	var probes []uint64
	cfg := Config{
		Engine:      e,
		IdleTimeout: time.Second,
		AckTimeout:  time.Second,
		SendProbe:   func(seq uint64) { probes = append(probes, seq) },
		HoldTime:    time.Minute,
	}
	m, err := NewMonitor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.RunUntil(10 * time.Second)
	if m.State() != StateDead {
		t.Fatalf("state = %v, want dead", m.State())
	}
	if len(probes) != 3 {
		t.Errorf("probes = %d, want default 3", len(probes))
	}
}

func TestPeerStateString(t *testing.T) {
	tests := []struct {
		s    PeerState
		want string
	}{
		{StateAlive, "alive"},
		{StateProbing, "probing"},
		{StateDead, "dead"},
		{StateExpired, "expired"},
		{PeerState(0), "peerstate(0)"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}

func TestPayloadRoundTrip(t *testing.T) {
	kind, seq, ok := ParsePayload(ProbePayload(42))
	if !ok || kind != "probe" || seq != 42 {
		t.Errorf("probe parse = %q %d %v", kind, seq, ok)
	}
	kind, seq, ok = ParsePayload(AckPayload(7))
	if !ok || kind != "ack" || seq != 7 {
		t.Errorf("ack parse = %q %d %v", kind, seq, ok)
	}
	kind, _, ok = ParsePayload(ResyncPayload())
	if !ok || kind != "resync" {
		t.Errorf("resync parse = %q %v", kind, ok)
	}
	if _, _, ok := ParsePayload([]byte("ordinary data")); ok {
		t.Error("data misclassified as control")
	}
	if _, _, ok := ParsePayload([]byte("DPD/R-U-THERE/x")); ok {
		t.Error("garbage probe seq accepted")
	}
}
