// Package dpd implements dead-peer detection and the paper's §6 prolonged-
// reset recovery flow.
//
// The paper's remark: a host that detects its peer is unreachable keeps the
// SAs alive for a bounded hold time instead of deleting them; when the reset
// peer wakes up it sends a *secured* "I am up" message whose sequence number
// (leaped by the SAVE/FETCH wake-up) necessarily exceeds the window's right
// edge, so the surviving host can distinguish a genuine resurrection from a
// replayed announcement — the attack that defeats the naive "let's both
// reset to 1" special message.
//
// Detection here is traffic-based in the style of draft-ietf-ipsec-dpd:
// inbound authenticated traffic proves liveness; after an idle timeout the
// monitor sends R-U-THERE probes and declares the peer dead after N
// unacknowledged probes. Timers run on the deterministic simulation engine.
//
// The monitor walks StateAlive -> StateProbing -> StateDead -> StateExpired:
// probing begins at the idle timeout, death is declared after MaxProbes
// unacknowledged probes, and expiry (the hold time's end, when a real
// implementation would finally delete the SAs) models the bound the paper
// places on how long a surviving host waits for its peer's resurrection.
// Any authenticated inbound traffic — data, ack, or the §6 resync message —
// snaps the monitor back to alive. The prolonged-reset experiment
// (internal/experiments, "prolonged") drives this state machine against
// scheduled outages to regenerate the §6 recovery-time analysis.
package dpd

import (
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"antireplay/internal/netsim"
	"antireplay/internal/stats"
	"antireplay/internal/telemetry"
)

// PeerState is the monitor's belief about the peer.
type PeerState uint8

// Peer states.
const (
	// StateAlive means recent inbound traffic proves the peer up.
	StateAlive PeerState = iota + 1
	// StateProbing means the idle timeout expired and R-U-THERE probes are
	// outstanding.
	StateProbing
	// StateDead means MaxProbes probes went unacknowledged; SAs are kept
	// alive for the hold time (§6).
	StateDead
	// StateExpired means the hold time elapsed: the SAs should be deleted
	// and a fresh IKE negotiation is required (the expensive path).
	StateExpired
)

// String returns the lower-case state name.
func (s PeerState) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateProbing:
		return "probing"
	case StateDead:
		return "dead"
	case StateExpired:
		return "expired"
	default:
		return fmt.Sprintf("peerstate(%d)", uint8(s))
	}
}

// Config parameterizes a Monitor.
type Config struct {
	// Engine supplies virtual time and timers. Required.
	Engine *netsim.Engine
	// IdleTimeout is how long without inbound traffic before probing.
	// Required (> 0).
	IdleTimeout time.Duration
	// AckTimeout is how long to wait for each probe's acknowledgment.
	// Required (> 0).
	AckTimeout time.Duration
	// MaxProbes is how many unacknowledged probes declare the peer dead.
	// Zero means 3 (the draft's default behaviour of a few retries).
	MaxProbes int
	// HoldTime is how long SAs are kept alive after a dead declaration
	// before expiring (§6: bounded, "otherwise an adversary will have
	// enough time to apply cryptographic analysis"). Zero means no hold:
	// dead goes straight to expired.
	HoldTime time.Duration
	// SendProbe transmits an R-U-THERE probe with the given probe sequence
	// number; the transport (normally an outbound SA) is the caller's.
	// Required.
	SendProbe func(probeSeq uint64)
	// OnState, if non-nil, observes every state transition.
	OnState func(PeerState)
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Engine == nil {
		return fmt.Errorf("dpd: Engine required")
	}
	if c.IdleTimeout <= 0 || c.AckTimeout <= 0 {
		return fmt.Errorf("dpd: IdleTimeout and AckTimeout must be positive")
	}
	if c.MaxProbes < 0 {
		return fmt.Errorf("dpd: MaxProbes must be >= 0")
	}
	if c.SendProbe == nil {
		return fmt.Errorf("dpd: SendProbe required")
	}
	return nil
}

// Monitor watches one peer. It is driven entirely by the simulation engine
// thread (not safe for concurrent use from other goroutines); the
// published state and the stats counters are atomics, so State, Stats and
// the telemetry collector MAY be read from any goroutine — a metrics
// scrape never has to stop the engine.
type Monitor struct {
	cfg   Config
	state PeerState
	epoch uint64 // invalidates stale timers
	probe uint64 // last probe sequence sent
	tries int

	pub        atomic.Uint32 // state mirror for cross-goroutine readers
	probesSent stats.Counter
	acks       stats.Counter
	deaths     stats.Counter
}

// NewMonitor validates cfg and returns a monitor in StateAlive with its
// idle timer armed.
func NewMonitor(cfg Config) (*Monitor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxProbes == 0 {
		cfg.MaxProbes = 3
	}
	m := &Monitor{cfg: cfg, state: StateAlive}
	m.pub.Store(uint32(StateAlive))
	m.armIdle()
	return m, nil
}

// State returns the current belief about the peer. Readable from any
// goroutine.
func (m *Monitor) State() PeerState { return PeerState(m.pub.Load()) }

// Stats returns (probes sent, acks received, dead declarations). Readable
// from any goroutine.
func (m *Monitor) Stats() (probes, acks, deaths uint64) {
	return m.probesSent.Value(), m.acks.Value(), m.deaths.Value()
}

// CollectTelemetry emits the probe counters and the peer-state belief as
// a one-hot gauge set, scrape-safe against the engine thread.
func (m *Monitor) CollectTelemetry(emit telemetry.Emit) {
	probes, acks, deaths := m.Stats()
	emit("probes_sent_total", telemetry.KindCounter, float64(probes))
	emit("acks_total", telemetry.KindCounter, float64(acks))
	emit("deaths_total", telemetry.KindCounter, float64(deaths))
	cur := m.State()
	for _, s := range []PeerState{StateAlive, StateProbing, StateDead, StateExpired} {
		v := 0.0
		if s == cur {
			v = 1
		}
		emit("peer_state", telemetry.KindGauge, v,
			telemetry.Label{Key: "state", Value: s.String()})
	}
}

func (m *Monitor) setState(s PeerState) {
	if m.state == s {
		return
	}
	m.state = s
	m.pub.Store(uint32(s))
	if m.cfg.OnState != nil {
		m.cfg.OnState(s)
	}
}

func (m *Monitor) armIdle() {
	epoch := m.epoch
	m.cfg.Engine.After(m.cfg.IdleTimeout, func() {
		if m.epoch != epoch || m.state != StateAlive {
			return
		}
		m.startProbing()
	})
}

func (m *Monitor) startProbing() {
	m.setState(StateProbing)
	m.tries = 0
	m.sendProbe()
}

func (m *Monitor) sendProbe() {
	m.probe++
	m.tries++
	m.probesSent.Add(1)
	m.cfg.SendProbe(m.probe)
	epoch := m.epoch
	probe := m.probe
	m.cfg.Engine.After(m.cfg.AckTimeout, func() {
		if m.epoch != epoch || m.state != StateProbing || m.probe != probe {
			return
		}
		if m.tries >= m.cfg.MaxProbes {
			m.declareDead()
			return
		}
		m.sendProbe()
	})
}

func (m *Monitor) declareDead() {
	m.deaths.Add(1)
	m.setState(StateDead)
	epoch := m.epoch
	if m.cfg.HoldTime <= 0 {
		m.setState(StateExpired)
		return
	}
	m.cfg.Engine.After(m.cfg.HoldTime, func() {
		if m.epoch != epoch || m.state != StateDead {
			return
		}
		m.setState(StateExpired)
	})
}

// NoteInbound records authenticated inbound traffic: proof of life. In
// StateDead (within the hold time) this is the §6 resurrection: the peer's
// secured, leaped-sequence message revives the SA without renegotiation.
// In StateExpired it is ignored — the SAs are gone and only IKE can help.
func (m *Monitor) NoteInbound() {
	if m.state == StateExpired {
		return
	}
	m.epoch++ // cancel outstanding timers
	m.setState(StateAlive)
	m.armIdle()
}

// NoteAck records an R-U-THERE-ACK for the given probe number. Stale acks
// (for earlier probes) still prove liveness — any authenticated traffic
// does — so they are treated as NoteInbound.
func (m *Monitor) NoteAck(probeSeq uint64) {
	if m.state == StateExpired {
		return
	}
	m.acks.Add(1)
	m.NoteInbound()
	_ = probeSeq
}

// Probe payload helpers: the R-U-THERE exchange and the §6 "I am up"
// resynchronization announcement travel as secured payloads inside ESP, so
// they inherit integrity and anti-replay protection from the SA.
const (
	payloadRUThere    = "DPD/R-U-THERE/"
	payloadRUThereAck = "DPD/ACK/"
	payloadResync     = "DPD/I-AM-UP"
)

// ProbePayload builds an R-U-THERE payload. Probes fire on every
// hold-timer tick across the whole SA population, so the payload is built
// with a direct append instead of fmt machinery.
func ProbePayload(probeSeq uint64) []byte {
	return strconv.AppendUint([]byte(payloadRUThere), probeSeq, 10)
}

// AckPayload builds the acknowledgment for a probe payload.
func AckPayload(probeSeq uint64) []byte {
	return strconv.AppendUint([]byte(payloadRUThereAck), probeSeq, 10)
}

// ResyncPayload builds the §6 "I am up" announcement.
func ResyncPayload() []byte { return []byte(payloadResync) }

// ParsePayload classifies a delivered control payload. kind is "probe",
// "ack", or "resync"; ok is false for ordinary data.
func ParsePayload(p []byte) (kind string, probeSeq uint64, ok bool) {
	s := string(p)
	switch {
	case len(s) > len(payloadRUThere) && s[:len(payloadRUThere)] == payloadRUThere:
		if _, err := fmt.Sscanf(s[len(payloadRUThere):], "%d", &probeSeq); err != nil {
			return "", 0, false
		}
		return "probe", probeSeq, true
	case len(s) > len(payloadRUThereAck) && s[:len(payloadRUThereAck)] == payloadRUThereAck:
		if _, err := fmt.Sscanf(s[len(payloadRUThereAck):], "%d", &probeSeq); err != nil {
			return "", 0, false
		}
		return "ack", probeSeq, true
	case s == payloadResync:
		return "resync", 0, true
	default:
		return "", 0, false
	}
}
