package cluster

import (
	"errors"
	"fmt"
	"net/netip"
	"path/filepath"
	"testing"
	"time"

	"antireplay/internal/core"
	"antireplay/internal/ipsec"
	"antireplay/internal/store"
)

const testK = 10

func testKeys(b byte) ipsec.KeyMaterial {
	k := ipsec.KeyMaterial{AuthKey: make([]byte, ipsec.AuthKeySize)}
	for i := range k.AuthKey {
		k.AuthKey[i] = b
	}
	return k
}

func testAddr(side byte) netip.Addr { return netip.AddrFrom4([4]byte{10, side, 0, 1}) }

func testSel(rev bool) ipsec.Selector {
	src, dst := testAddr(0), testAddr(1)
	if rev {
		src, dst = dst, src
	}
	return ipsec.Selector{Src: netip.PrefixFrom(src, 32), Dst: netip.PrefixFrom(dst, 32)}
}

func openJournal(t *testing.T, path string) *store.Journal {
	t.Helper()
	j, err := store.OpenJournal(path, store.JournalWithoutSync())
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// sealRetry seals one payload with ErrSaveLag retry (bounded).
func sealRetry(t *testing.T, gw *ipsec.Gateway, src, dst netip.Addr, payload []byte) []byte {
	t.Helper()
	for tries := 0; ; tries++ {
		w, err := gw.Seal(src, dst, payload)
		if err == nil {
			return w
		}
		if !errors.Is(err, core.ErrSaveLag) || tries > 100000 {
			t.Fatalf("seal: %v", err)
		}
		time.Sleep(10 * time.Microsecond)
	}
}

// openRetry opens one wire with VerdictHorizon retry (bounded), returning
// the final verdict.
func openRetry(t *testing.T, gw *ipsec.Gateway, wire []byte) core.Verdict {
	t.Helper()
	for tries := 0; ; tries++ {
		_, v, err := gw.Open(wire)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if v != core.VerdictHorizon || tries > 100000 {
			return v
		}
		time.Sleep(10 * time.Microsecond)
	}
}

// haPair is the standard test topology: peer gateway A (never fails), B-side
// primary over jP, standby over jS replicating jP.
type haPair struct {
	A, B    *ipsec.Gateway
	jA, jP  *store.Journal
	jS      *store.Journal
	standby *Standby
	abSPI   uint32
	baSPI   uint32
}

func newHAPair(t *testing.T) *haPair {
	t.Helper()
	dir := t.TempDir()
	h := &haPair{
		jA:    openJournal(t, filepath.Join(dir, "a.log")),
		jP:    openJournal(t, filepath.Join(dir, "primary.log")),
		jS:    openJournal(t, filepath.Join(dir, "standby.log")),
		abSPI: 0x11, baSPI: 0x21,
	}
	t.Cleanup(func() { h.jA.Close(); h.jP.Close(); h.jS.Close() })

	var err error
	if h.A, err = ipsec.NewGateway(ipsec.GatewayConfig{Journal: h.jA, K: testK}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.A.Close() })
	if h.B, err = ipsec.NewGateway(ipsec.GatewayConfig{Journal: h.jP, K: testK}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.B.Close() })

	if _, err := h.A.AddOutbound(h.abSPI, testKeys(1), testSel(false)); err != nil {
		t.Fatal(err)
	}
	if _, err := h.A.AddInbound(h.baSPI, testKeys(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := h.B.AddInbound(h.abSPI, testKeys(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := h.B.AddOutbound(h.baSPI, testKeys(2), testSel(true)); err != nil {
		t.Fatal(err)
	}

	if h.standby, err = NewStandby(Config{Source: h.jP, Journal: h.jS, K: testK}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.standby.Stop() })
	if err := h.standby.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h.standby.Mirror(h.B.Snapshot()); err != nil {
		t.Fatal(err)
	}
	return h
}

func TestStandbyReplicationAndTakeover(t *testing.T) {
	h := newHAPair(t)

	// Bidirectional traffic; keep the A->B history for the replay check.
	var history [][]byte
	delivered := make(map[string]bool)
	for i := 0; i < 150; i++ {
		w := sealRetry(t, h.A, testAddr(0), testAddr(1), []byte(fmt.Sprintf("a->b %d", i)))
		history = append(history, w)
		if v := openRetry(t, h.B, w); v.Delivered() {
			delivered[string(w)] = true
		}
		back := sealRetry(t, h.B, testAddr(1), testAddr(0), []byte(fmt.Sprintf("b->a %d", i)))
		openRetry(t, h.A, back)
	}

	// With a sync follower the replication lag in records can only be the
	// in-flight batch; after the traffic quiesces it drains to zero.
	for i := 0; h.standby.Stats().LagRecords > 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	st := h.standby.Stats()
	if st.AppliedRecords == 0 || st.SnapshotLoads == 0 {
		t.Fatalf("replication idle: %+v", st)
	}

	// Crash the primary and promote.
	bIn, _ := h.B.SAD().Lookup(h.abSPI)
	edgeAtCrash := bIn.Receiver().Edge()
	bOut, _ := h.B.Outbound(h.baSPI)
	usedAtCrash := bOut.Sender().Seq()
	h.B.ResetAll()

	gw2, epoch, err := h.standby.Takeover()
	if err != nil {
		t.Fatalf("takeover: %v", err)
	}
	if epoch != 1 {
		t.Errorf("first takeover epoch = %d, want 1", epoch)
	}

	// Split brain: the deposed primary's journal rejects writes.
	if err := h.jP.Cell(ipsec.InboundKey(h.abSPI)).Save(1 << 30); !errors.Is(err, store.ErrFenced) {
		t.Errorf("deposed journal save = %v, want ErrFenced", err)
	}

	// The promoted inbound edge must clear every sequence number the dead
	// primary ever delivered — that is the zero-replay invariant — and the
	// false-reject window is exactly (wake edge - edge at crash).
	in2, ok := gw2.SAD().Lookup(h.abSPI)
	if !ok {
		t.Fatal("promoted gateway lacks the inbound SA")
	}
	wakeEdge := in2.Receiver().Edge()
	if wakeEdge < edgeAtCrash {
		t.Fatalf("promoted edge %d below the crash edge %d: replays possible", wakeEdge, edgeAtCrash)
	}
	window := wakeEdge - edgeAtCrash

	falseRejects := 0
	deliveredAfter := 0
	for i := 0; deliveredAfter < 50; i++ {
		if i > int(window)+10000 {
			t.Fatalf("traffic never resumed after takeover (%d false rejects)", falseRejects)
		}
		w := sealRetry(t, h.A, testAddr(0), testAddr(1), []byte(fmt.Sprintf("post %d", i)))
		history = append(history, w)
		if v := openRetry(t, gw2, w); v.Delivered() {
			deliveredAfter++
			delivered[string(w)] = true
		} else {
			falseRejects++
		}
	}
	if uint64(falseRejects) > window {
		t.Errorf("false rejects %d exceed the wake window %d", falseRejects, window)
	}

	// The promoted outbound counter must clear every number the dead
	// primary ever used (no reuse), and A must accept its traffic.
	out2, ok := gw2.Outbound(h.baSPI)
	if !ok {
		t.Fatal("promoted gateway lacks the outbound SA")
	}
	if first := out2.Sender().Seq(); first < usedAtCrash {
		t.Fatalf("promoted sender resumes at %d, below the primary's %d", first, usedAtCrash)
	}
	back := sealRetry(t, gw2, testAddr(1), testAddr(0), []byte("resync"))
	if v := openRetry(t, h.A, back); !v.Delivered() {
		t.Fatalf("peer rejected the promoted sender's first packet: %v", v)
	}

	// Replay the full recorded history: nothing already delivered may
	// deliver again.
	replays := 0
	for _, w := range history {
		_, v, _ := gw2.Open(w)
		if v.Delivered() && delivered[string(w)] {
			replays++
		}
	}
	if replays != 0 {
		t.Fatalf("%d replay acceptances across the failover", replays)
	}
}

func TestStandbyRefusesStaleEpochSource(t *testing.T) {
	dir := t.TempDir()
	src := openJournal(t, filepath.Join(dir, "deposed.log"))
	defer src.Close()
	local := openJournal(t, filepath.Join(dir, "promoted.log"))
	defer local.Close()

	// The local journal has lived under epoch 3; the source never took
	// over (epoch 0) — it is a deposed primary and must be refused.
	if err := local.Cell(EpochKey).Save(3); err != nil {
		t.Fatal(err)
	}
	if _, err := NewStandby(Config{Source: src, Journal: local, K: testK}); !errors.Is(err, ErrFenced) {
		t.Fatalf("NewStandby on stale source = %v, want ErrFenced", err)
	}

	// An up-to-date source (same or newer epoch) attaches fine.
	if err := src.Cell(EpochKey).Save(3); err != nil {
		t.Fatal(err)
	}
	s, err := NewStandby(Config{Source: src, Journal: local, K: testK})
	if err != nil {
		t.Fatalf("NewStandby on current source: %v", err)
	}
	s.Stop()
}

func TestDoubleFailoverFailbackNoCounterRegression(t *testing.T) {
	h := newHAPair(t)
	dir := filepath.Dir(h.jP.Path())

	var history [][]byte
	delivered := make(map[string]bool)
	pump := func(gw *ipsec.Gateway, n int, tag string) {
		for i := 0; i < n; i++ {
			w := sealRetry(t, h.A, testAddr(0), testAddr(1), []byte(fmt.Sprintf("%s %d", tag, i)))
			history = append(history, w)
			if v := openRetry(t, gw, w); v.Delivered() {
				delivered[string(w)] = true
			}
		}
	}

	pump(h.B, 80, "phase1")

	// Failover 1: node1 dies, node2 takes over at epoch 1.
	h.B.ResetAll()
	gw2, epoch1, err := h.standby.Takeover()
	if err != nil {
		t.Fatal(err)
	}
	pump(gw2, 80, "phase2")
	out2, _ := gw2.Outbound(h.baSPI)
	used2 := out2.Sender().Seq()

	// Node1 "reboots": its old gateway and fenced journal handle close, the
	// journal reopens from disk, and the node re-syncs as a standby of the
	// new primary — the failback path.
	h.B.Close()
	if err := h.jP.Close(); err != nil {
		t.Fatal(err)
	}
	jP2, err := store.OpenJournal(filepath.Join(dir, "primary.log"), store.JournalWithoutSync())
	if err != nil {
		t.Fatal(err)
	}
	defer jP2.Close()
	sb2, err := NewStandby(Config{Source: h.jS, Journal: jP2, K: testK})
	if err != nil {
		t.Fatal(err)
	}
	defer sb2.Stop()
	if err := sb2.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sb2.Mirror(gw2.Snapshot()); err != nil {
		t.Fatal(err)
	}
	pump(gw2, 40, "phase3")

	// Failover 2: fail back to the original node at epoch 2.
	gw2.ResetAll()
	gw3, epoch2, err := sb2.Takeover()
	if err != nil {
		t.Fatal(err)
	}
	if epoch2 <= epoch1 {
		t.Fatalf("failback epoch %d not above first takeover epoch %d", epoch2, epoch1)
	}

	// No counter regression: the failback sender must clear every number
	// node2 ever used, even though node1's journal held stale state.
	out3, ok := gw3.Outbound(h.baSPI)
	if !ok {
		t.Fatal("failback gateway lacks the outbound SA")
	}
	if first := out3.Sender().Seq(); first < used2 {
		t.Fatalf("failback sender resumes at %d, below node2's %d", first, used2)
	}
	back := sealRetry(t, gw3, testAddr(1), testAddr(0), []byte("failback"))
	if v := openRetry(t, h.A, back); !v.Delivered() {
		t.Fatalf("peer rejected the failback sender's first packet: %v", v)
	}

	// And after the double failover, replaying all history re-delivers
	// nothing.
	pump(gw3, 40, "phase4")
	replays := 0
	for _, w := range history {
		_, v, _ := gw3.Open(w)
		if v.Delivered() && delivered[string(w)] {
			replays++
		}
	}
	if replays != 0 {
		t.Fatalf("%d replay acceptances across double failover", replays)
	}
}

func TestTakeoverRefusedAfterStreamFailure(t *testing.T) {
	dir := t.TempDir()
	src := openJournal(t, filepath.Join(dir, "src.log"))
	defer src.Close()
	local := openJournal(t, filepath.Join(dir, "local.log"))
	defer local.Close()

	s, err := NewStandby(Config{Source: src, Journal: local, K: testK})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	if _, _, err := s.Takeover(); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("takeover before start = %v, want ErrNotRunning", err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Takeover(); err != nil {
		t.Fatalf("takeover: %v", err)
	}
	if _, _, err := s.Takeover(); !errors.Is(err, ErrPromoted) {
		t.Fatalf("second takeover = %v, want ErrPromoted", err)
	}
	if err := s.Mirror(ipsec.GatewaySnapshot{}); !errors.Is(err, ErrPromoted) {
		t.Fatalf("mirror after takeover = %v, want ErrPromoted", err)
	}
}
