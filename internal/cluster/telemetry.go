package cluster

import (
	"strconv"
	"time"

	"antireplay/internal/telemetry"
)

var (
	_ telemetry.Collector = ReplicationStats{}
	_ telemetry.Collector = (*Standby)(nil)
)

// CollectTelemetry emits a replication-progress snapshot. The up gauge is
// 0 once the stream has died (Err set) — the alerting signal that turns
// the primary's silent degradation to local-only durability loud.
func (r ReplicationStats) CollectTelemetry(emit telemetry.Emit) {
	emit("applied_records_total", telemetry.KindCounter, float64(r.AppliedRecords))
	emit("snapshot_loads_total", telemetry.KindCounter, float64(r.SnapshotLoads))
	emit("lag_records", telemetry.KindGauge, float64(r.LagRecords))
	emit("last_ack_age_seconds", telemetry.KindGauge, r.LastAckAge.Seconds())
	emit("source_epoch", telemetry.KindGauge, float64(r.SourceEpoch))
	up := 1.0
	if r.Err != nil {
		up = 0
	}
	emit("up", telemetry.KindGauge, up)
}

// CollectTelemetry emits the standby's live replication state: the
// aggregate snapshot (lag recomputed at scrape) plus the per-lane lag and
// ack-age series that show one wedged lane behind a healthy aggregate.
func (s *Standby) CollectTelemetry(emit telemetry.Emit) {
	s.Stats().CollectTelemetry(emit)
	s.mu.Lock()
	promoted := s.promoted
	localEpoch := s.localEpoch
	s.mu.Unlock()
	emit("local_epoch", telemetry.KindGauge, float64(localEpoch))
	p := 0.0
	if promoted {
		p = 1
	}
	emit("promoted", telemetry.KindGauge, p)
	now := time.Now()
	for _, l := range s.lanes {
		label := telemetry.Label{Key: "lane", Value: strconv.Itoa(l.idx)}
		emit("lane_lag_records", telemetry.KindGauge, float64(l.tl.Lag()), label)
		age := now.Sub(time.Unix(0, l.lastAck.Load()))
		emit("lane_last_ack_age_seconds", telemetry.KindGauge, age.Seconds(), label)
	}
}
