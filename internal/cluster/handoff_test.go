package cluster

import (
	"errors"
	"fmt"
	"testing"

	"antireplay/internal/ike"
	"antireplay/internal/ipsec"
	"antireplay/internal/rekey"
)

// TestRekeyHandoffSurvivesPromotion drives the rekey orchestrator through a
// failover: a rollover's exchange is interrupted by the primary's crash
// (the in-flight rollover), the standby is promoted, the orchestrator is
// handed the promoted gateway, and the retried rollover completes against
// it — including retirement, whose tombstones land in the promoted node's
// journal.
func TestRekeyHandoffSurvivesPromotion(t *testing.T) {
	h := newHAPair(t)

	// A deterministic key-material exchange: each rollover yields fresh
	// SPIs and keys. crashOnce makes the first exchange die mid-flight —
	// the moment the primary is lost.
	nextSPI := uint32(0x1000)
	crashOnce := true
	var current *ipsec.Gateway = h.B
	exchange := func(oldAB, oldBA uint32) (ike.ChildKeys, error) {
		if crashOnce {
			crashOnce = false
			current.ResetAll() // the crash strikes mid-exchange
			return ike.ChildKeys{}, errors.New("exchange interrupted by primary crash")
		}
		ab, ba := nextSPI, nextSPI+1
		nextSPI += 2
		return ike.ChildKeys{
			SPIInitToResp: ab, SPIRespToInit: ba,
			InitToResp: testKeys(byte(ab)), RespToInit: testKeys(byte(ba)),
		}, nil
	}

	o, err := rekey.New(rekey.Config{A: h.A, B: h.B, Exchange: exchange})
	if err != nil {
		t.Fatal(err)
	}
	tun, err := o.Track(h.abSPI, h.baSPI)
	if err != nil {
		t.Fatal(err)
	}

	// Traffic so the counters are real, then the interrupted rollover.
	for i := 0; i < 60; i++ {
		w := sealRetry(t, h.A, testAddr(0), testAddr(1), []byte(fmt.Sprintf("pre %d", i)))
		openRetry(t, h.B, w)
	}
	if err := o.Rollover(tun); err == nil {
		t.Fatal("interrupted rollover reported success")
	}
	if tun.State() != rekey.StateSteady {
		t.Fatalf("tunnel state after interrupted rollover = %v, want steady", tun.State())
	}

	// Promote the standby and hand the orchestrator the new gateway.
	gw2, _, err := h.standby.Takeover()
	if err != nil {
		t.Fatal(err)
	}
	current = gw2
	if err := o.Handoff(gw2, gw2); !errors.Is(err, rekey.ErrUnknownGateway) {
		t.Fatalf("handoff of a foreign gateway = %v, want ErrUnknownGateway", err)
	}
	if err := o.Handoff(h.B, gw2); err != nil {
		t.Fatalf("handoff: %v", err)
	}

	// The retried rollover now runs against the promoted gateway: make
	// (install successor inbound on gw2 and A), break (cut both outbound
	// sides), drain.
	if err := o.Rollover(tun); err != nil {
		t.Fatalf("rollover after handoff: %v", err)
	}
	if tun.State() != rekey.StateDraining {
		t.Fatalf("tunnel state after rollover = %v, want draining", tun.State())
	}
	newAB, newBA := tun.SPIs()

	// Traffic flows on the successor generation through the promoted pair.
	for i := 0; i < 40; i++ {
		w := sealRetry(t, h.A, testAddr(0), testAddr(1), []byte(fmt.Sprintf("post %d", i)))
		if v := openRetry(t, gw2, w); !v.Delivered() && i > 30 {
			t.Fatalf("successor traffic not delivering after handoff: %v", v)
		}
		back := sealRetry(t, gw2, testAddr(1), testAddr(0), []byte(fmt.Sprintf("echo %d", i)))
		openRetry(t, h.A, back)
	}
	if spi, err := wireSPI(t, h.A, gw2); err == nil && spi != newAB {
		t.Errorf("A seals on SPI %#x after cutover, want successor %#x", spi, newAB)
	}

	// Retirement (Grace 0: first Poll) must address the promoted gateway —
	// the old generation's cells are tombstoned in the FOLLOWER journal.
	if err := o.Poll(); err != nil {
		t.Fatalf("retiring poll: %v", err)
	}
	if tun.State() != rekey.StateSteady {
		t.Fatalf("tunnel state after retirement = %v, want steady", tun.State())
	}
	if _, ok, _ := h.jS.Cell(ipsec.InboundKey(h.abSPI)).Fetch(); ok {
		t.Error("retired inbound cell survives in the promoted journal")
	}
	if _, ok, _ := h.jS.Cell(ipsec.OutboundKey(h.baSPI)).Fetch(); ok {
		t.Error("retired outbound cell survives in the promoted journal")
	}
	if _, ok := gw2.SAD().Lookup(h.abSPI); ok {
		t.Error("retired inbound SA still registered on the promoted gateway")
	}
	if _, ok := gw2.Outbound(newBA); !ok {
		t.Error("successor outbound SA missing on the promoted gateway")
	}
}

// wireSPI reports which SPI A currently seals on toward gw.
func wireSPI(t *testing.T, a, gw *ipsec.Gateway) (uint32, error) {
	t.Helper()
	w := sealRetry(t, a, testAddr(0), testAddr(1), []byte("probe"))
	openRetry(t, gw, w)
	return ipsec.ParseSPI(w)
}
