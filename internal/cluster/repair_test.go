package cluster

import (
	"errors"
	"fmt"
	"path/filepath"
	"syscall"
	"testing"

	"antireplay/internal/store"
	"antireplay/internal/storefault"
)

// repairLanes opens a primary/standby lane pair (the primary behind a fault
// injector) and a running standby replicating it.
func repairLanes(t *testing.T, laneCount int) (*store.Lanes, *store.Lanes, *Standby, *storefault.Injector) {
	t.Helper()
	dir := t.TempDir()
	in := storefault.NewInjector(nil)
	lp, err := store.OpenLanes(filepath.Join(dir, "primary"),
		store.LanesCount(laneCount), store.LanesWithoutSync(), store.LanesWithFS(in))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lp.Close() })
	ls, err := store.OpenLanes(filepath.Join(dir, "standby"),
		store.LanesCount(laneCount), store.LanesWithoutSync())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ls.Close() })
	s, err := NewStandby(Config{Source: lp, Journal: ls, K: testK})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Stop() })
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	return lp, ls, s, in
}

// laneKey probes for a key the lane hash places on the given lane.
func laneKey(t *testing.T, l *store.Lanes, lane int) string {
	t.Helper()
	target := l.LaneJournals()[lane]
	for i := 0; i < 1<<16; i++ {
		k := fmt.Sprintf("sa/%d", i)
		if l.Lane(k) == target {
			return k
		}
	}
	t.Fatalf("no key found for lane %d", lane)
	return ""
}

// TestRepairSourceLane exercises the standby-assisted half of lane repair:
// a primary lane dies mid-write and is quarantined, the sibling lanes keep
// committing, and RepairSourceLane re-seeds the dead lane from the follower's
// applied state — which, through the sync-follower gate, holds every save
// the primary ever acknowledged on that lane.
func TestRepairSourceLane(t *testing.T) {
	lp, _, s, in := repairLanes(t, 4)
	sick := laneKey(t, lp, 0)
	well := laneKey(t, lp, 1)

	if err := lp.Cell(sick).Save(7); err != nil {
		t.Fatal(err)
	}
	if err := lp.Cell(well).Save(9); err != nil {
		t.Fatal(err)
	}

	// Kill lane 0's medium: every write to its log fails from here on.
	in.Arm(storefault.Fault{Op: storefault.OpWrite, Path: "lane-000.log", Err: syscall.EIO})
	if err := lp.Cell(sick).Save(8); !errors.Is(err, syscall.EIO) {
		t.Fatalf("save into dead lane = %v, want EIO", err)
	}
	if q := lp.Quarantined(); len(q) != 1 || q[0] != 0 {
		t.Fatalf("Quarantined() = %v, want [0]", q)
	}
	// The fault domain is one lane wide: the sibling still commits, and its
	// saves still clear the sync-follower gate.
	if err := lp.Cell(well).Save(10); err != nil {
		t.Fatalf("sibling lane save: %v", err)
	}

	// Bounds and the repair itself.
	if err := s.RepairSourceLane(-1); err == nil {
		t.Fatal("RepairSourceLane(-1) accepted")
	}
	if err := s.RepairSourceLane(4); err == nil {
		t.Fatal("RepairSourceLane(4) accepted on a 4-lane standby")
	}
	in.Disarm()
	if err := s.RepairSourceLane(0); err != nil {
		t.Fatalf("RepairSourceLane(0): %v", err)
	}
	if q := lp.Quarantined(); len(q) != 0 {
		t.Fatalf("Quarantined() after repair = %v, want none", q)
	}
	// Every acknowledged value survived the round trip through the donor,
	// and the lane takes fresh saves again.
	if got := lp.Values()[sick]; got < 7 {
		t.Fatalf("repaired lane lost acked value: %s = %d, want >= 7", sick, got)
	}
	if err := lp.Cell(sick).Save(8); err != nil {
		t.Fatalf("save into repaired lane: %v", err)
	}
	if got := lp.Values()[sick]; got != 8 {
		t.Fatalf("%s = %d after post-repair save, want 8", sick, got)
	}
}

// TestRepairSourceLaneRefusedAfterPromotion pins the fencing rule: once the
// standby has taken over, "repairing" the deposed primary would revive a
// fenced writer, so RepairSourceLane must refuse with ErrPromoted.
func TestRepairSourceLaneRefusedAfterPromotion(t *testing.T) {
	lp, _, s, _ := repairLanes(t, 2)
	if err := lp.Cell(laneKey(t, lp, 0)).Save(3); err != nil {
		t.Fatal(err)
	}
	gw, _, err := s.Takeover()
	if err != nil {
		t.Fatalf("takeover: %v", err)
	}
	defer gw.Close()
	if err := s.RepairSourceLane(0); !errors.Is(err, ErrPromoted) {
		t.Fatalf("RepairSourceLane after takeover = %v, want ErrPromoted", err)
	}
}
