package cluster

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"antireplay/internal/telemetry"
)

// TestStatsLagRecomputedOnScrape is the regression test for the stale-lag
// bug: LagRecords used to be a sum of gauges the apply loops published
// after each batch, so a follower whose loops never ran (dead, wedged, or
// simply not started) reported lag 0 — indistinguishable from healthy —
// while the primary committed records past it. Stats must recompute lag
// from the tails at call time.
func TestStatsLagRecomputedOnScrape(t *testing.T) {
	dir := t.TempDir()
	src := openJournal(t, filepath.Join(dir, "src.log"))
	defer src.Close()
	dst := openJournal(t, filepath.Join(dir, "dst.log"))
	defer dst.Close()

	s, err := NewStandby(Config{Source: src, Journal: dst, K: testK, W: 64})
	if err != nil {
		t.Fatal(err)
	}
	// The dead follower: the sync-follower tail is registered (NewStandby
	// did that), but no replication loop ever runs — Start is never
	// called. The old implementation reported LagRecords 0 here forever.
	saved := make(chan error, 1)
	go func() { saved <- src.Cell("rx/1").Save(42) }()

	// The save appends and commits locally (bumping the stream the lag is
	// measured against) and then blocks on the follower's ack.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().LagRecords == 0 {
		if time.Now().After(deadline) {
			t.Fatal("lag never became visible: Stats is not recomputing from the tails")
		}
		time.Sleep(time.Millisecond)
	}

	age1 := s.Stats().LastAckAge
	if age1 <= 0 {
		t.Fatalf("LastAckAge = %v, want > 0", age1)
	}
	time.Sleep(10 * time.Millisecond)
	if age2 := s.Stats().LastAckAge; age2 <= age1 {
		t.Errorf("LastAckAge did not grow on a dead follower: %v then %v", age1, age2)
	}

	// The collector view carries the same live numbers.
	var sawLag, sawAge bool
	s.CollectTelemetry(func(name string, kind telemetry.Kind, value float64, labels ...telemetry.Label) {
		switch name {
		case "lag_records":
			sawLag = value > 0
		case "last_ack_age_seconds":
			sawAge = value > 0
		}
	})
	if !sawLag || !sawAge {
		t.Errorf("collector: lag>0=%v age>0=%v, want both", sawLag, sawAge)
	}

	// Stop clears the sync-follower registration, releasing the blocked
	// save (degraded to local-only durability — loud, not wedged).
	s.Stop()
	select {
	case err := <-saved:
		if err != nil {
			t.Fatalf("released save: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("save still blocked after Stop")
	}
}

// TestStatsLagDrainsWhenRunning is the healthy-path complement: with the
// loops running, scrape-time lag drains to zero and acks stay fresh.
func TestStatsLagDrainsWhenRunning(t *testing.T) {
	dir := t.TempDir()
	src := openJournal(t, filepath.Join(dir, "src.log"))
	defer src.Close()
	dst := openJournal(t, filepath.Join(dir, "dst.log"))
	defer dst.Close()

	s, err := NewStandby(Config{Source: src, Journal: dst, K: testK, W: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 10; i++ {
		if err := src.Cell("rx/1").Save(i * 10); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := s.Stats()
		if st.LagRecords == 0 && st.AppliedRecords > 0 {
			if st.LastAckAge > time.Minute {
				t.Errorf("LastAckAge = %v on a follower that just acked", st.LastAckAge)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lag never drained: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestReplicationStatsCollector pins the snapshot struct's metric names.
func TestReplicationStatsCollector(t *testing.T) {
	r := telemetry.NewRegistry()
	st := ReplicationStats{AppliedRecords: 5, SnapshotLoads: 1, LagRecords: 3,
		LastAckAge: 1500 * time.Millisecond, SourceEpoch: 2}
	r.RegisterCollector("apn_cluster", st)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"apn_cluster_applied_records_total 5",
		"apn_cluster_lag_records 3",
		"apn_cluster_last_ack_age_seconds 1.5",
		"apn_cluster_source_epoch 2",
		"apn_cluster_up 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if errs := r.Lint(); len(errs) != 0 {
		t.Errorf("lint: %v", errs)
	}
}
