package cluster

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"antireplay/internal/core"
	"antireplay/internal/ike"
	"antireplay/internal/ipsec"
	"antireplay/internal/rekey"
	"antireplay/internal/store"
)

// TestRaceFailoverRekeyDatapath is the cluster's -race stress test: batched
// seal/verify traffic hammers the datapath while the rekey orchestrator
// rolls the tunnel over and a controller repeatedly crashes the primary,
// promotes the standby, hands the orchestrator over, and rebuilds a standby
// on the rebooted node — failover, failback, failover again.
//
// Safety assertions: every payload is delivered at most once (exactly-once
// across rollover AND failover), and replaying the entire recorded wire
// history into the final primary re-delivers nothing.
func TestRaceFailoverRekeyDatapath(t *testing.T) {
	dir := t.TempDir()
	const (
		k         = 10
		workers   = 4
		batches   = 120
		batchLen  = 8
		failovers = 3
	)

	jA := openJournal(t, filepath.Join(dir, "a.log"))
	defer jA.Close()
	A, err := ipsec.NewGateway(ipsec.GatewayConfig{Journal: jA, K: k})
	if err != nil {
		t.Fatal(err)
	}
	defer A.Close()

	j1 := openJournal(t, filepath.Join(dir, "node1.log"))
	t.Cleanup(func() { j1.Close() })
	B1, err := ipsec.NewGateway(ipsec.GatewayConfig{Journal: j1, K: k})
	if err != nil {
		t.Fatal(err)
	}

	abSPI, baSPI := uint32(0x11), uint32(0x21)
	if _, err := A.AddOutbound(abSPI, testKeys(1), testSel(false)); err != nil {
		t.Fatal(err)
	}
	if _, err := A.AddInbound(baSPI, testKeys(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := B1.AddInbound(abSPI, testKeys(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := B1.AddOutbound(baSPI, testKeys(2), testSel(true)); err != nil {
		t.Fatal(err)
	}

	// current is the serving B-side gateway (swapped atomically by the
	// failover controller); the control plane — rollovers, mirrors,
	// failovers — serializes on ctl.Mutex, the datapath does not.
	var current atomic.Pointer[ipsec.Gateway]
	current.Store(B1)
	var ctl struct {
		sync.Mutex
		standby *Standby
	}

	j2 := openJournal(t, filepath.Join(dir, "node2.log"))
	t.Cleanup(func() { j2.Close() })
	sb, err := NewStandby(Config{Source: j1, Journal: j2, K: k})
	if err != nil {
		t.Fatal(err)
	}
	if err := sb.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sb.Mirror(B1.Snapshot()); err != nil {
		t.Fatal(err)
	}
	ctl.standby = sb

	// Rekey orchestrator with a synthetic always-succeeding exchange; the
	// hour-long grace keeps every drained generation verifiable, so the
	// end-of-run history replay exercises old SPIs too.
	var nextSPI atomic.Uint32
	nextSPI.Store(0x1000)
	o, err := rekey.New(rekey.Config{
		A: A, B: B1,
		Grace: time.Hour,
		Exchange: func(oldAB, oldBA uint32) (ike.ChildKeys, error) {
			ab := nextSPI.Add(2)
			return ike.ChildKeys{
				SPIInitToResp: ab, SPIRespToInit: ab + 1,
				InitToResp: testKeys(byte(ab)), RespToInit: testKeys(byte(ab + 1)),
			}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tun, err := o.Track(abSPI, baSPI)
	if err != nil {
		t.Fatal(err)
	}

	var (
		histMu      sync.Mutex
		history     [][]byte
		delivered   sync.Map // payload string -> *atomic.Int64
		trafficDone = make(chan struct{})
		trafficWG   sync.WaitGroup
		ctlWG       sync.WaitGroup
	)
	countDelivery := func(payload []byte) {
		c, _ := delivered.LoadOrStore(string(payload), new(atomic.Int64))
		c.(*atomic.Int64).Add(1)
	}

	// Datapath workers: SealBatch at A, VerifyBatch at the current B.
	for w := 0; w < workers; w++ {
		trafficWG.Add(1)
		go func(w int) {
			defer trafficWG.Done()
			for n := 0; n < batches; n++ {
				payloads := make([][]byte, batchLen)
				for i := range payloads {
					payloads[i] = []byte(fmt.Sprintf("p-%d-%d-%d", w, n, i))
				}
				// Seal, resuming after partial grants so no payload is ever
				// sealed twice (a re-seal would forge a duplicate delivery).
				var wires [][]byte
				remaining := payloads
				for tries := 0; len(remaining) > 0; tries++ {
					ws, err := A.SealBatch(testAddr(0), testAddr(1), remaining)
					wires = append(wires, ws...)
					remaining = remaining[len(ws):]
					if len(remaining) == 0 {
						break
					}
					if tries > 200000 {
						t.Errorf("worker %d: sealing stalled: %v", w, err)
						return
					}
					if err != nil && !errors.Is(err, core.ErrSaveLag) &&
						!errors.Is(err, ipsec.ErrDraining) && !errors.Is(err, ipsec.ErrNoPolicy) {
						t.Errorf("worker %d: seal: %v", w, err)
						return
					}
					time.Sleep(20 * time.Microsecond)
				}
				histMu.Lock()
				history = append(history, wires...)
				histMu.Unlock()

				// Verify with bounded retry. Horizon clears once the lagging
				// replicated save lands; Down clears when the failover swaps
				// in the promoted gateway. Everything else is final — stale,
				// duplicate and unknown-SPI outcomes are network loss here.
				pending := wires
				for tries := 0; len(pending) > 0 && tries < 4000; tries++ {
					gw := current.Load()
					results := gw.VerifyBatch(pending)
					retry := pending[:0]
					for i, res := range results {
						switch {
						case res.Delivered():
							countDelivery(res.Payload)
						case res.Err == nil && (res.Verdict == core.VerdictHorizon ||
							res.Verdict == core.VerdictDown):
							retry = append(retry, pending[i])
						}
					}
					pending = retry
					if len(pending) > 0 {
						time.Sleep(50 * time.Microsecond)
					}
				}
				time.Sleep(150 * time.Microsecond)
			}
		}(w)
	}

	// Rollover driver: rolls the tunnel over whenever it is steady and
	// refreshes the standby's mirror after each cutover.
	var failoversDone, rolloversDone atomic.Int64
	ctlWG.Add(1)
	go func() {
		defer ctlWG.Done()
		for {
			select {
			case <-trafficDone:
				return
			case <-time.After(3 * time.Millisecond):
			}
			ctl.Lock()
			if tun.State() == rekey.StateSteady {
				if err := o.Rollover(tun); err == nil {
					rolloversDone.Add(1)
					ctl.standby.Mirror(current.Load().Snapshot()) //nolint:errcheck // refreshed after the next rollover
				}
			}
			ctl.Unlock()
		}
	}()

	// Failover controller: crash, promote, hand off, reboot the dead node
	// as the next standby. Odd rounds fail back to the original node.
	ctlWG.Add(1)
	go func() {
		defer ctlWG.Done()
		for round := 0; round < failovers; round++ {
			select {
			case <-trafficDone:
				return
			case <-time.After(5 * time.Millisecond):
			}
			ctl.Lock()
			old := current.Load()
			ctl.standby.Mirror(old.Snapshot()) //nolint:errcheck // best-effort refresh before the crash
			old.ResetAll()
			gw2, _, err := ctl.standby.Takeover()
			if err != nil {
				t.Errorf("round %d takeover: %v", round, err)
				ctl.Unlock()
				return
			}
			if err := o.Handoff(old, gw2); err != nil {
				t.Errorf("round %d handoff: %v", round, err)
				ctl.Unlock()
				return
			}
			current.Store(gw2)
			// Reboot the dead node: close its gateway and fenced journal
			// handle, reopen the journal from disk, re-sync as standby.
			oldJournal := old.Journal()
			path := oldJournal.Path()
			old.Close()
			oldJournal.Close()
			jre, err := store.OpenJournal(path, store.JournalWithoutSync())
			if err != nil {
				t.Errorf("round %d reboot: %v", round, err)
				ctl.Unlock()
				return
			}
			t.Cleanup(func() { jre.Close() })
			sb2, err := NewStandby(Config{Source: gw2.Journal(), Journal: jre, K: k})
			if err != nil {
				t.Errorf("round %d standby rebuild: %v", round, err)
				ctl.Unlock()
				return
			}
			if err := sb2.Start(); err != nil {
				t.Errorf("round %d standby start: %v", round, err)
				ctl.Unlock()
				return
			}
			sb2.Mirror(gw2.Snapshot()) //nolint:errcheck // the rollover driver refreshes it
			ctl.standby = sb2
			ctl.Unlock()
			failoversDone.Add(1)
		}
	}()

	trafficWG.Wait()
	close(trafficDone)
	ctlWG.Wait()
	ctl.Lock()
	finalStandby := ctl.standby
	ctl.Unlock()
	defer finalStandby.Stop()

	// The stress must actually have stressed: failovers and a rollover
	// interleaved with live traffic, and a healthy share of it delivered.
	if failoversDone.Load() < 2 {
		t.Fatalf("only %d failovers completed during traffic; pacing broken", failoversDone.Load())
	}
	if rolloversDone.Load() < 1 {
		t.Fatalf("no rollover completed during traffic; pacing broken")
	}
	total := 0
	delivered.Range(func(_, _ any) bool { total++; return true })
	if total < workers*batches*batchLen/2 {
		t.Fatalf("only %d/%d payloads delivered; the fleet mostly failed", total, workers*batches*batchLen)
	}

	// Exactly-once: no payload may have been delivered more than once.
	dups := 0
	delivered.Range(func(key, v any) bool {
		if n := v.(*atomic.Int64).Load(); n > 1 {
			dups++
			if dups <= 5 {
				t.Errorf("payload %q delivered %d times", key, n)
			}
		}
		return true
	})
	if dups > 0 {
		t.Fatalf("%d payloads delivered more than once", dups)
	}

	// Zero replays: the full wire history re-delivers nothing that was
	// already delivered. (A wire that was genuinely lost during the run may
	// deliver for the first time here — that is late delivery, not replay —
	// and joining the ledger means a second copy of it in this loop would
	// be caught too.)
	final := current.Load()
	replays := 0
	histMu.Lock()
	defer histMu.Unlock()
	for _, wire := range history {
		payload, v, err := final.Open(wire)
		if err != nil || !v.Delivered() {
			continue
		}
		c, _ := delivered.LoadOrStore(string(payload), new(atomic.Int64))
		if c.(*atomic.Int64).Add(1) > 1 {
			replays++
		}
	}
	if replays != 0 {
		t.Fatalf("%d wires from the history re-delivered on the final primary", replays)
	}
}
