// Package cluster makes a gateway highly available by turning the paper's
// reset protocol into a failover protocol: a standby node mirrors the
// primary's durable counter state through journal replication, and takeover
// is nothing more than the paper's wake-up — FETCH every counter from the
// replica, leap, SAVE — executed on the standby's warm gateway image.
//
// The design rests on one observation: the paper's guarantees (no sequence
// reuse, no replay acceptance, bounded fresh-traffic sacrifice) are proved
// against whatever medium SAVE and FETCH share. Replication therefore does
// not need new protocol machinery; it needs the pair (primary journal,
// follower journal) to BE that medium. The package arranges exactly that:
//
//   - The standby tails the primary journal's committed record stream
//     (store.Journal.Follow — snapshot-then-tail, tombstones included) and
//     applies it to its own journal in group-committed batches.
//   - The tail is registered as the primary journal's sync follower, so a
//     SAVE completes only once the standby has applied it. The endpoints'
//     "committed" — and with it the strict durable horizon that bounds
//     every sequence number they hand out or deliver — then incorporates
//     replication: every number that ever existed is below some value the
//     standby holds, plus the leap. Waking from the standby's journal is
//     therefore exactly as safe as waking from the primary's own disk.
//   - Failover loss is bounded by replication lag, not by local-disk
//     staleness: the false-reject window after takeover is (applied + leap)
//     − (edge at crash), which the replication gauges bound. Compare a cold
//     restart of the primary itself, whose window is governed by the
//     group-commit batching delay of its own disk.
//
// Split brain is handled by epoch fencing. Promotion (1) fences the deposed
// primary's journal — its writes are rejected from the moment of takeover,
// and even a partitioned primary that cannot be fenced explicitly stalls
// within one horizon, because its saves can no longer be acknowledged
// without the standby's acks — and (2) durably bumps a monotone epoch
// (EpochKey) in the new primary's journal. A replication stream from a
// lower epoch is refused (ErrFenced), so a deposed primary can neither feed
// a standby nor regress counters it no longer owns. Failback runs the same
// machinery in reverse: the old node re-syncs as a standby of the new
// primary (snapshot-then-tail reconciles its stale journal, max-wins
// keeping any residual higher counters, which errs toward extra sacrifice
// and never toward replay), then takes over at epoch+1.
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"antireplay/internal/ipsec"
	"antireplay/internal/stats"
	"antireplay/internal/store"
)

// EpochKey is the journal key of the cluster epoch: a monotone counter
// bumped durably by every takeover. It shares the journal with the SA
// counters (the tx/ and rx/ namespaces) and replicates like any other key.
const EpochKey = "cluster/epoch"

// Sentinel errors.
var (
	// ErrConfig reports an invalid standby configuration.
	ErrConfig = errors.New("cluster: invalid configuration")
	// ErrFenced reports a replication stream from a deposed primary: the
	// source's epoch is below the local journal's, so applying it could
	// regress counters the current primary owns.
	ErrFenced = errors.New("cluster: replication source fenced (stale epoch)")
	// ErrPromoted reports use of a standby that has already taken over.
	ErrPromoted = errors.New("cluster: standby already promoted")
	// ErrNotRunning reports a Takeover before Start.
	ErrNotRunning = errors.New("cluster: standby not running")
)

// DefaultBatchMax is the apply-batch size used when Config.BatchMax is 0.
const DefaultBatchMax = 256

// Config parameterizes a Standby.
type Config struct {
	// Source is the primary's durable medium — the replication source: a
	// single *store.Journal or a laned *store.Lanes. Required.
	Source store.Medium
	// Journal is the standby's own (follower) medium, the one a takeover
	// wakes from. It must have the same number of commit lanes as Source —
	// replication runs lane-to-lane, so the key-to-lane hash must agree on
	// both sides. Required.
	Journal store.Medium
	// K, W, ESN, Workers, Lifetime and Clock configure the warm gateway
	// image exactly as ipsec.GatewayConfig does; they should match the
	// primary's settings.
	K        uint64
	W        int
	ESN      bool
	Workers  int
	Lifetime ipsec.Lifetime
	Clock    func() time.Duration
	// BatchMax bounds records per receive from the source's tail. The
	// replication loop coalesces consecutive receives that are already
	// committed, so one apply batch — one follower group commit and one
	// Ack — covers up to 4*BatchMax records. Zero means DefaultBatchMax.
	BatchMax int
	// OnPromote, when set, is called during Takeover inside the wake
	// window — after the deposed primary is fenced and the epoch durably
	// bumped, immediately before the standby's gateway image wakes. It
	// receives the new epoch. This is the cluster's most delicate
	// instant, which is exactly why it is exposed: the adversary
	// campaign layer (internal/adversary.BlackoutFlood) injects its
	// recorded-traffic burst here, and operators hook promotion alerts
	// here. The callback runs synchronously on the takeover path; keep
	// it fast, and do not call back into the Standby.
	OnPromote func(epoch uint64)
	// OnLifecycle is passed through to the warm gateway image's
	// ipsec.GatewayConfig.OnLifecycle, so the takeover's population-wide
	// wake shows up in the same lifecycle stream as the deposed
	// primary's reset.
	OnLifecycle func(kind string, sas int)
}

// ReplicationStats is a snapshot of a standby's replication progress.
type ReplicationStats struct {
	// AppliedRecords counts records durably applied to the follower
	// journal (snapshot reconciliations not included).
	AppliedRecords uint64
	// SnapshotLoads counts snapshot-then-tail resynchronizations: the
	// initial attach plus every ErrTailLagged recovery (e.g. across a
	// retained-window overrun).
	SnapshotLoads uint64
	// LagRecords is the instantaneous replication lag in records:
	// committed on the primary, not yet acknowledged by this standby.
	// It is recomputed from the tails at snapshot time, NOT read from a
	// gauge the apply loop updates — a follower whose loops have died
	// shows its true, growing lag even though nothing is applying.
	LagRecords uint64
	// LastAckAge is how long ago the stalest lane last acknowledged
	// anything (attachment counts as an ack). An idle healthy follower's
	// age grows too — the liveness signal is age combined with
	// LagRecords: lag pending AND an old ack means the follower is dead,
	// not idle.
	LastAckAge time.Duration
	// SourceEpoch is the highest cluster epoch observed from the source.
	SourceEpoch uint64
	// Err is the terminal replication error, if the stream has stopped.
	Err error
}

// Standby replicates a primary journal into a local one and keeps a warm,
// down-state gateway image ready for promotion. Takeover fences the source,
// drains the stream, bumps the epoch, and wakes the image — the paper's
// recovery, pointed at the replica. Safe for concurrent use.
type Standby struct {
	cfg   Config
	gw    *ipsec.Gateway
	lanes []*laneRepl

	applied   stats.Counter
	snapshots stats.Counter

	// op serializes the control-plane operations that act on the gateway
	// image — Mirror and Takeover — so a mirror can never run Adopt on an
	// already-promoted (live) gateway.
	op sync.Mutex

	mu         sync.Mutex
	started    bool
	promoted   bool
	stopped    bool
	runErr     error
	localEpoch uint64 // fencing floor: sources below this are stale
	srcEpoch   uint64 // highest epoch seen from the source
	done       chan struct{}
	wg         sync.WaitGroup
}

// laneRepl replicates one commit lane: the source lane's tail applied into
// the same-numbered follower lane. Lanes replicate independently — each has
// its own replication goroutine, sync-follower registration, and lag gauge
// — so one lane's apply fsync never delays another lane's acks, and the
// cluster's save-to-ack throughput scales with the lane parallelism the
// laned journal already provides locally.
type laneRepl struct {
	s   *Standby
	idx int
	src *store.Journal
	dst *store.Journal
	tl  *store.Tail
	// lastAck is the wall-clock time (UnixNano) of this lane's most
	// recent Ack — attachment stamps it too, so age is "since attach"
	// until the first batch lands. Stats derives last_ack_age from it.
	lastAck atomic.Int64
}

// ack forwards the cursor to the source and stamps the ack time.
func (l *laneRepl) ack(next uint64) {
	l.tl.Ack(next)
	l.lastAck.Store(time.Now().UnixNano())
}

// journalEpoch reads a medium's cluster epoch (0 when never set).
func journalEpoch(m store.Medium) uint64 {
	v, ok, err := m.Cell(EpochKey).Fetch()
	if err != nil || !ok {
		return 0
	}
	return v
}

// NewStandby validates cfg, builds the warm gateway image over the follower
// journal, attaches a tail to the source, and registers it as the source's
// sync follower — from this moment the primary's saves complete only when
// this standby has applied them. Replication does not flow until Start.
//
// The attachment is refused with ErrFenced when the source's epoch is below
// the follower journal's: that shape means the "primary" is a deposed node
// and this journal already lived under a newer one.
func NewStandby(cfg Config) (*Standby, error) {
	if cfg.Source == nil || cfg.Journal == nil {
		return nil, fmt.Errorf("%w: source and follower journals required", ErrConfig)
	}
	if cfg.Source == cfg.Journal {
		return nil, fmt.Errorf("%w: a journal cannot follow itself", ErrConfig)
	}
	srcLanes := cfg.Source.LaneJournals()
	dstLanes := cfg.Journal.LaneJournals()
	if len(srcLanes) != len(dstLanes) {
		return nil, fmt.Errorf("%w: lane counts differ (source %d, follower %d)",
			ErrConfig, len(srcLanes), len(dstLanes))
	}
	if cfg.BatchMax <= 0 {
		cfg.BatchMax = DefaultBatchMax
	}
	localEpoch := journalEpoch(cfg.Journal)
	if srcEpoch := journalEpoch(cfg.Source); srcEpoch < localEpoch {
		return nil, fmt.Errorf("%w: source epoch %d < local epoch %d",
			ErrFenced, srcEpoch, localEpoch)
	}
	gw, err := ipsec.NewGateway(ipsec.GatewayConfig{
		Journal:     cfg.Journal,
		K:           cfg.K,
		W:           cfg.W,
		ESN:         cfg.ESN,
		Workers:     cfg.Workers,
		Lifetime:    cfg.Lifetime,
		Clock:       cfg.Clock,
		OnLifecycle: cfg.OnLifecycle,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: standby gateway: %w", err)
	}
	s := &Standby{
		cfg:        cfg,
		gw:         gw,
		localEpoch: localEpoch,
		done:       make(chan struct{}),
	}
	for i := range srcLanes {
		tl, err := srcLanes[i].Follow()
		if err == nil {
			if err = srcLanes[i].SyncFollower(tl); err != nil {
				tl.Close()
			}
		}
		if err != nil {
			s.closeTails()
			gw.Close()
			return nil, fmt.Errorf("cluster: follow source lane %d: %w", i, err)
		}
		l := &laneRepl{s: s, idx: i, src: srcLanes[i], dst: dstLanes[i], tl: tl}
		l.lastAck.Store(time.Now().UnixNano())
		s.lanes = append(s.lanes, l)
	}
	return s, nil
}

// Start launches the replication loops, one per commit lane:
// snapshot-then-tail from each source lane into the same-numbered follower
// lane. It returns immediately; terminal stream errors surface through
// Stats().Err and fail a later Takeover.
func (s *Standby) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.promoted {
		return ErrPromoted
	}
	if s.started {
		return nil
	}
	s.started = true
	s.wg.Add(len(s.lanes))
	for _, l := range s.lanes {
		go l.run()
	}
	go func() {
		s.wg.Wait()
		close(s.done)
	}()
	return nil
}

// fail records a loop's terminal error and releases the primary's savers:
// a dead standby must degrade the primary to local-only durability, not
// wedge it. Every lane's tail is closed — a standby with one dead lane is a
// dead standby; letting the healthy lanes keep acking would let the primary
// count saves on them as replicated while the broken lane silently rots.
// Closing a tail clears the sync-follower role only if this standby still
// holds it — never a successor standby's registration (which would silently
// void the successor's replication guarantee). The degradation is loud —
// Stats().Err and a failed Takeover.
func (s *Standby) fail(err error) {
	s.mu.Lock()
	if s.runErr == nil {
		s.runErr = err
	}
	s.mu.Unlock()
	s.closeTails()
}

// closeTails detaches every lane's tail; idempotent.
func (s *Standby) closeTails() {
	for _, l := range s.lanes {
		l.tl.Close()
	}
}

// totalLag sums the instantaneous replication lag across lanes.
func (s *Standby) totalLag() uint64 {
	var lag uint64
	for _, l := range s.lanes {
		lag += l.tl.Lag()
	}
	return lag
}

// run is one lane's replication loop; it exits when the lane's tail closes
// (Stop or Takeover) or on a terminal error, which tears down every lane.
//
// Receives are coalesced: after one blocking Recv the loop drains whatever
// further records the source lane has already committed (Tail.TryRecv)
// before applying, so a burst of primary group commits lands in the
// follower lane as ONE Apply — one follower fsync — and is acknowledged
// with ONE Ack. Since the sync-follower ack is what completes the primary's
// saves, batching here directly raises the cluster's save-to-ack
// throughput; with many lanes those applies also run in parallel across the
// follower's lane files.
func (l *laneRepl) run() {
	s := l.s
	defer s.wg.Done()
	buf := make([]store.TailRecord, s.cfg.BatchMax)
	batch := make([]store.TailRecord, 0, 4*s.cfg.BatchMax)
	needSnap := true
	for {
		if needSnap {
			if err := l.resync(); err != nil {
				if !errors.Is(err, store.ErrClosed) {
					s.fail(err)
				}
				return
			}
			needSnap = false
		}
		n, err := l.tl.Recv(buf)
		switch {
		case errors.Is(err, store.ErrTailLagged):
			needSnap = true
			continue
		case errors.Is(err, store.ErrClosed):
			return // Stop/Takeover closed the tail, or the source closed
		case err != nil:
			s.fail(err)
			return
		}
		batch = append(batch[:0], buf[:n]...)
		for len(batch)+len(buf) <= 4*s.cfg.BatchMax {
			m, terr := l.tl.TryRecv(buf)
			if terr != nil || m == 0 {
				// Apply what we have; the next blocking Recv surfaces any
				// error (lag, closure) in the switch above.
				break
			}
			batch = append(batch, buf[:m]...)
		}
		for _, rec := range batch {
			if rec.Key != EpochKey || rec.Del {
				continue
			}
			if err := s.noteSourceEpoch(rec.Val); err != nil {
				s.fail(err)
				return
			}
		}
		if err := l.dst.Apply(batch); err != nil {
			s.fail(fmt.Errorf("cluster: apply batch (lane %d): %w", l.idx, err))
			return
		}
		l.ack(batch[len(batch)-1].Seq + 1)
		s.applied.Add(uint64(len(batch)))
	}
}

// resync performs one snapshot-then-tail attachment of a lane: fence-check
// the source's epoch, reconcile the follower lane to the snapshot (keys
// absent from the snapshot are tombstoned — they were retired on the
// primary while we were not watching; values apply max-wins, so residual
// higher local counters survive, which errs toward sacrifice, never toward
// replay), and acknowledge the snapshot position.
func (l *laneRepl) resync() error {
	s := l.s
	snap, next, err := l.tl.Snapshot()
	if err != nil {
		return err
	}
	// Only the epoch's own lane carries EpochKey; on every other lane the
	// key's absence means "not this lane", not "epoch zero", so the fence
	// check is presence-guarded. (A stale source is still refused at
	// attach time — NewStandby reads the epoch through the lane hash.)
	if e, ok := snap[EpochKey]; ok {
		if err := s.noteSourceEpoch(e); err != nil {
			return err
		}
	}
	// Tombstones and values join one batch, so the whole reconciliation
	// group-commits under a single fsync regardless of how many keys were
	// retired while this node was not watching.
	local := l.dst.Values()
	recs := make([]store.TailRecord, 0, len(snap)+8)
	for key := range local {
		if _, ok := snap[key]; !ok {
			recs = append(recs, store.TailRecord{Key: key, Del: true})
		}
	}
	for key, v := range snap {
		recs = append(recs, store.TailRecord{Key: key, Val: v})
	}
	if err := l.dst.Apply(recs); err != nil {
		return fmt.Errorf("cluster: apply snapshot (lane %d): %w", l.idx, err)
	}
	l.ack(next)
	s.snapshots.Add(1)
	return nil
}

// noteSourceEpoch folds an observed source epoch into the fencing check.
func (s *Standby) noteSourceEpoch(e uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e < s.localEpoch {
		return fmt.Errorf("%w: source epoch %d < local epoch %d", ErrFenced, e, s.localEpoch)
	}
	if e > s.srcEpoch {
		s.srcEpoch = e
	}
	return nil
}

// Mirror reconciles the warm gateway image to the primary's control-plane
// snapshot (ipsec.Gateway.Snapshot): SAs appear in the down state, retired
// SAs are forgotten without touching their replicated cells. Call it after
// population changes on the primary — initial setup, rekey rollovers,
// SA removals. Refused after promotion (the image is live then).
func (s *Standby) Mirror(snap ipsec.GatewaySnapshot) error {
	s.op.Lock()
	defer s.op.Unlock()
	s.mu.Lock()
	promoted := s.promoted
	s.mu.Unlock()
	if promoted {
		return ErrPromoted
	}
	return s.gw.Adopt(snap)
}

// Gateway exposes the standby's gateway image: down-state while standing
// by, live after Takeover.
func (s *Standby) Gateway() *ipsec.Gateway { return s.gw }

// Stats returns a snapshot of replication progress. LagRecords is
// recomputed against the source's commit watermark at call time — an
// earlier version summed gauges the apply loops updated, so a follower
// whose loops had silently died kept reporting its last healthy lag
// (usually 0) while the primary committed past it. Scrape-time
// recomputation is what makes an idle-but-dead follower visible.
func (s *Standby) Stats() ReplicationStats {
	s.mu.Lock()
	err := s.runErr
	epoch := s.srcEpoch
	s.mu.Unlock()
	var lag uint64
	oldest := time.Duration(0)
	now := time.Now()
	for _, l := range s.lanes {
		lag += l.tl.Lag()
		if age := now.Sub(time.Unix(0, l.lastAck.Load())); age > oldest {
			oldest = age
		}
	}
	return ReplicationStats{
		AppliedRecords: s.applied.Value(),
		SnapshotLoads:  s.snapshots.Value(),
		LagRecords:     lag,
		LastAckAge:     oldest,
		SourceEpoch:    epoch,
		Err:            err,
	}
}

// LagValues measures the replication lag in counter values: the sum over
// all keys of how far the follower journal's value trails the source's.
// This is the quantity that bounds the post-takeover false-reject window —
// the promoted gateway wakes at (applied value + leap) per key, so fresh
// traffic is sacrificed for at most (lag + leap) sequence numbers per SA.
// It reads both journals, so it is an observability aid (experiments,
// operator dashboards), not a datapath primitive.
func (s *Standby) LagValues() uint64 {
	src := s.cfg.Source.Values()
	local := s.cfg.Journal.Values()
	var lag uint64
	for key, sv := range src {
		if lv := local[key]; sv > lv {
			lag += sv - lv
		}
	}
	return lag
}

// RepairSourceLane re-seeds one quarantined lane of the PRIMARY's medium
// from this standby's follower lane — the standby-assisted half of lane
// repair. The donor is the follower lane's applied state which, thanks to
// the sync-follower registration, covers every save the primary ever
// acknowledged on that lane; Journal.Repair merges it max-wins with the
// primary's own in-memory values (so nothing staged after the fault is lost
// either) and rewrites the lane's log from scratch, clearing the
// quarantine. The primary's stalled SAs then resume via its WakeAll.
//
// Repairing from a promoted standby is refused: after takeover the old
// primary is fenced, and "repairing" it would revive a deposed writer.
func (s *Standby) RepairSourceLane(lane int) error {
	s.mu.Lock()
	promoted := s.promoted
	s.mu.Unlock()
	if promoted {
		return ErrPromoted
	}
	if lane < 0 || lane >= len(s.lanes) {
		return fmt.Errorf("cluster: repair lane %d: standby has %d lanes", lane, len(s.lanes))
	}
	l := s.lanes[lane]
	return l.src.Repair(l.dst.Values())
}

// Stop gracefully detaches the standby without promoting it: the sync-
// follower registration is cleared (the primary degrades to local-only
// durability), the stream stops, and the warm image is closed. A stopped
// standby cannot be restarted; build a new one.
func (s *Standby) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	started, promoted := s.started, s.promoted
	s.mu.Unlock()
	// Tail.Close clears a source lane's sync-follower role only when this
	// standby's tail still holds it; a successor standby's registrations
	// are never touched.
	s.closeTails()
	if started {
		<-s.done
	}
	if !promoted {
		s.gw.Close()
	}
}

// Takeover promotes the standby: the epoch-fenced failover.
//
//  1. The source journal is fenced: every deposed-primary write from this
//     instant on is rejected (and a partitioned primary that never sees the
//     fence stalls on its own within one horizon, because its saves can no
//     longer be acknowledged).
//  2. The committed stream is drained, so the follower holds everything the
//     primary ever acknowledged — takeover loss is replication lag, which
//     the sync-follower gate has kept at "the in-flight batch".
//  3. The cluster epoch is durably bumped in the local journal; any later
//     replication stream from the deposed primary is refused as stale.
//  4. The warm image wakes (ipsec.Gateway.WakeAll): every SA runs the
//     paper's FETCH + leap + SAVE against its replicated counter. This is
//     the whole point — takeover IS the reset protocol's wake-up, so the
//     paper's no-reuse/no-replay theorems apply to failover verbatim.
//
// The returned gateway is live and owns the SA population; the deposed
// primary's gateway must not be used again. Takeover fails with the
// stream's terminal error if replication already died (e.g. ErrFenced).
// A Takeover that fails at the epoch bump or the wake (steps 3-4) leaves
// the standby unpromoted and may be retried: the source stays fenced and
// drained, so the retry just repeats the local steps.
func (s *Standby) Takeover() (*ipsec.Gateway, uint64, error) {
	s.op.Lock()
	defer s.op.Unlock()
	s.mu.Lock()
	if s.promoted {
		s.mu.Unlock()
		return nil, 0, ErrPromoted
	}
	if !s.started {
		s.mu.Unlock()
		return nil, 0, ErrNotRunning
	}
	if s.runErr != nil {
		err := s.runErr
		s.mu.Unlock()
		return nil, 0, fmt.Errorf("cluster: takeover refused: %w", err)
	}
	s.mu.Unlock()

	// (1) Fence the deposed primary — every lane. After Fence returns each
	// lane's durable stream is frozen, so the drain below is exhaustive.
	s.cfg.Source.Fence(store.ErrFenced)

	// (2) Drain: the run loops keep applying; wait until every lane has
	// consumed its frozen stream. A generous deadline guards against a
	// wedged loop — proceeding early is safe (endpoint-acknowledged saves
	// are already applied; un-applied records only cost extra sacrifice),
	// it just widens the false-reject window.
	deadline := time.Now().Add(5 * time.Second)
	for s.totalLag() > 0 && time.Now().Before(deadline) {
		s.mu.Lock()
		err := s.runErr
		s.mu.Unlock()
		if err != nil {
			return nil, 0, fmt.Errorf("cluster: takeover drain: %w", err)
		}
		time.Sleep(50 * time.Microsecond)
	}
	s.closeTails()
	<-s.done

	s.mu.Lock()
	epoch := s.localEpoch
	if s.srcEpoch > epoch {
		epoch = s.srcEpoch
	}
	epoch++
	s.mu.Unlock()

	// (3) Durable epoch bump, then (4) wake the image from the replica.
	// The promotion is committed only once both succeed; a failure here
	// leaves the standby unpromoted and Takeover retryable.
	if err := s.cfg.Journal.Cell(EpochKey).Save(epoch); err != nil {
		return nil, 0, fmt.Errorf("cluster: persist epoch: %w", err)
	}
	if s.cfg.OnPromote != nil {
		// The wake window: fenced, epoch bumped, image not yet awake.
		s.cfg.OnPromote(epoch)
	}
	if err := s.gw.WakeAll(); err != nil {
		return nil, 0, fmt.Errorf("cluster: wake image: %w", err)
	}
	s.mu.Lock()
	s.promoted = true
	s.localEpoch = epoch
	s.mu.Unlock()
	return s.gw, epoch, nil
}
