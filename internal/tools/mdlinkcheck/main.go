// Command mdlinkcheck is the CI docs gate's entry point: it checks the
// given markdown files for references to files that do not exist and exits
// non-zero on the first finding.
//
//	go run ./internal/tools/mdlinkcheck README.md DESIGN.md CHANGES.md
package main

import (
	"fmt"
	"os"

	"antireplay/internal/doccheck"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: mdlinkcheck FILE.md [FILE.md ...]")
		os.Exit(2)
	}
	broken, err := doccheck.Check(os.Args[1:]...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdlinkcheck: %v\n", err)
		os.Exit(2)
	}
	for _, b := range broken {
		fmt.Fprintln(os.Stderr, b)
	}
	if len(broken) > 0 {
		os.Exit(1)
	}
	fmt.Printf("mdlinkcheck: %d files clean\n", len(os.Args)-1)
}
