package resetinj

import (
	"testing"
	"time"

	"antireplay/internal/netsim"
)

// recordingEndpoint logs reset/wake times.
type recordingEndpoint struct {
	e      *netsim.Engine
	resets []time.Duration
	wakes  []time.Duration
}

func (r *recordingEndpoint) Reset() { r.resets = append(r.resets, r.e.Now()) }
func (r *recordingEndpoint) Wake()  { r.wakes = append(r.wakes, r.e.Now()) }

func TestSchedule(t *testing.T) {
	e := netsim.NewEngine(1)
	ep := &recordingEndpoint{e: e}
	Schedule(e, ep, 10*time.Millisecond, 25*time.Millisecond)
	e.Run()
	if len(ep.resets) != 1 || ep.resets[0] != 10*time.Millisecond {
		t.Errorf("resets = %v", ep.resets)
	}
	if len(ep.wakes) != 1 || ep.wakes[0] != 25*time.Millisecond {
		t.Errorf("wakes = %v", ep.wakes)
	}
}

func TestSchedulePanicsOnBackwardWake(t *testing.T) {
	e := netsim.NewEngine(1)
	ep := &recordingEndpoint{e: e}
	defer func() {
		if recover() == nil {
			t.Error("Schedule with up < down should panic")
		}
	}()
	Schedule(e, ep, 10*time.Millisecond, 5*time.Millisecond)
}

func TestScheduleDouble(t *testing.T) {
	e := netsim.NewEngine(1)
	ep := &recordingEndpoint{e: e}
	ScheduleDouble(e, ep,
		10*time.Millisecond, 20*time.Millisecond,
		22*time.Millisecond, 40*time.Millisecond)
	e.Run()
	if len(ep.resets) != 2 || len(ep.wakes) != 2 {
		t.Fatalf("resets %v wakes %v, want 2+2", ep.resets, ep.wakes)
	}
	if ep.resets[1] != 22*time.Millisecond || ep.wakes[1] != 40*time.Millisecond {
		t.Errorf("second pair = %v/%v", ep.resets[1], ep.wakes[1])
	}
}

func TestSchedulePeriodic(t *testing.T) {
	e := netsim.NewEngine(1)
	ep := &recordingEndpoint{e: e}
	n := SchedulePeriodic(e, ep, 10*time.Millisecond, 2*time.Millisecond, 50*time.Millisecond)
	e.Run()
	if n != 4 {
		t.Fatalf("scheduled %d pairs, want 4 (at 10,20,30,40ms)", n)
	}
	if len(ep.resets) != 4 || len(ep.wakes) != 4 {
		t.Fatalf("resets %d wakes %d, want 4+4", len(ep.resets), len(ep.wakes))
	}
	for i, at := range ep.resets {
		want := time.Duration(i+1) * 10 * time.Millisecond
		if at != want {
			t.Errorf("reset %d at %v, want %v", i, at, want)
		}
		if ep.wakes[i] != want+2*time.Millisecond {
			t.Errorf("wake %d at %v, want %v", i, ep.wakes[i], want+2*time.Millisecond)
		}
	}
}

func TestSchedulePeriodicPanicsOnZeroPeriod(t *testing.T) {
	e := netsim.NewEngine(1)
	ep := &recordingEndpoint{e: e}
	defer func() {
		if recover() == nil {
			t.Error("SchedulePeriodic with period 0 should panic")
		}
	}()
	SchedulePeriodic(e, ep, 0, time.Millisecond, time.Second)
}

func TestSchedulePeriodicNoneFit(t *testing.T) {
	e := netsim.NewEngine(1)
	ep := &recordingEndpoint{e: e}
	n := SchedulePeriodic(e, ep, time.Second, time.Second, 500*time.Millisecond)
	if n != 0 {
		t.Errorf("scheduled %d, want 0", n)
	}
}
