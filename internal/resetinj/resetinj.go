// Package resetinj schedules machine resets and wake-ups against protocol
// endpoints running on the simulation engine. It drives the fault scenarios
// of the paper's §3 (single reset of p or q, double reset of both) and §4's
// "second consideration" (a second reset striking before the first post-wake
// SAVE completes).
package resetinj

import (
	"time"

	"antireplay/internal/netsim"
)

// Endpoint is the crash interface protocol endpoints expose.
//
// Reset models the machine losing volatile state instantly. Wake models the
// machine booting and starting the paper's wake-up action (FETCH, leap,
// post-wake SAVE); the endpoint resumes service only after that SAVE
// completes, which the endpoint itself arranges.
type Endpoint interface {
	Reset()
	Wake()
}

// Schedule arranges one reset at down and the matching wake at up.
// It panics if up < down (programmer error).
func Schedule(e *netsim.Engine, ep Endpoint, down, up time.Duration) {
	if up < down {
		panic("resetinj: wake scheduled before reset")
	}
	e.At(down, ep.Reset)
	e.At(up, ep.Wake)
}

// ScheduleDouble arranges the §4 "second consideration" scenario: a reset at
// down1 with wake at up1, then a second reset at down2 (typically chosen to
// land before the post-wake SAVE completes) with wake at up2.
func ScheduleDouble(e *netsim.Engine, ep Endpoint, down1, up1, down2, up2 time.Duration) {
	Schedule(e, ep, down1, up1)
	Schedule(e, ep, down2, up2)
}

// SchedulePeriodic arranges resets every period, each lasting outage, until
// horizon. It returns the number of reset/wake pairs scheduled.
func SchedulePeriodic(e *netsim.Engine, ep Endpoint, period, outage, horizon time.Duration) int {
	if period <= 0 {
		panic("resetinj: period must be positive")
	}
	n := 0
	for t := period; t+outage <= horizon; t += period {
		Schedule(e, ep, t, t+outage)
		n++
	}
	return n
}
