// Package resetinj schedules machine resets and wake-ups against protocol
// endpoints running on the simulation engine. It drives the fault scenarios
// of the paper's §3 (single reset of p or q, double reset of both), §4's
// "second consideration" (a second reset striking before the first
// post-wake SAVE completes), and the rekey experiment's reset-mid-exchange
// scenario (a receiver gateway crashing between the two messages of a
// CREATE_CHILD_SA rollover).
//
// The Endpoint interface is deliberately minimal — Reset and Wake — so any
// crashable thing plugs in: a single core.Sender or core.Receiver, a
// tunnel.Peer, or a whole ipsec.Gateway wrapped in a two-method adapter
// (Reset -> ResetAll, Wake -> WakeAll; see the experiments package). The
// three schedule shapes cover the paper's fault models: Schedule for one
// reset/wake pair, ScheduleDouble for the back-to-back reset that tests the
// post-wake SAVE's necessity, and SchedulePeriodic for sustained reset
// storms (the convergence experiments' workload).
//
// All timing is virtual (netsim.Engine events), so a scheduled reset lands
// at an exact, reproducible instant relative to traffic and handshake
// messages — the precision the mid-exchange scenarios need.
package resetinj

import (
	"time"

	"antireplay/internal/netsim"
)

// Endpoint is the crash interface protocol endpoints expose.
//
// Reset models the machine losing volatile state instantly. Wake models the
// machine booting and starting the paper's wake-up action (FETCH, leap,
// post-wake SAVE); the endpoint resumes service only after that SAVE
// completes, which the endpoint itself arranges.
type Endpoint interface {
	Reset()
	Wake()
}

// Schedule arranges one reset at down and the matching wake at up.
// It panics if up < down (programmer error).
func Schedule(e *netsim.Engine, ep Endpoint, down, up time.Duration) {
	if up < down {
		panic("resetinj: wake scheduled before reset")
	}
	e.At(down, ep.Reset)
	e.At(up, ep.Wake)
}

// ScheduleDouble arranges the §4 "second consideration" scenario: a reset at
// down1 with wake at up1, then a second reset at down2 (typically chosen to
// land before the post-wake SAVE completes) with wake at up2.
func ScheduleDouble(e *netsim.Engine, ep Endpoint, down1, up1, down2, up2 time.Duration) {
	Schedule(e, ep, down1, up1)
	Schedule(e, ep, down2, up2)
}

// SchedulePeriodic arranges resets every period, each lasting outage, until
// horizon. It returns the number of reset/wake pairs scheduled.
func SchedulePeriodic(e *netsim.Engine, ep Endpoint, period, outage, horizon time.Duration) int {
	if period <= 0 {
		panic("resetinj: period must be positive")
	}
	n := 0
	for t := period; t+outage <= horizon; t += period {
		Schedule(e, ep, t, t+outage)
		n++
	}
	return n
}
