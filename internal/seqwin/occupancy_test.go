package seqwin

import "testing"

func testOccupancy(t *testing.T, name string, mk func(w int) Window) {
	t.Helper()
	w := mk(64)
	occ := w.(Occupier)
	if got := occ.Occupancy(); got != 0 {
		t.Fatalf("%s: empty window occupancy = %d, want 0", name, got)
	}
	// In-order delivery: every number inside the window is seen.
	for s := uint64(1); s <= 200; s++ {
		w.Admit(s)
	}
	if got := occ.Occupancy(); got != 64 {
		t.Errorf("%s: full window occupancy = %d, want 64", name, got)
	}
	// Gappy delivery: jump the edge far ahead, only the edge bit is set.
	w.Admit(10_000)
	if got := occ.Occupancy(); got != 1 {
		t.Errorf("%s: post-jump occupancy = %d, want 1", name, got)
	}
	w.Admit(9_990)
	if got := occ.Occupancy(); got != 2 {
		t.Errorf("%s: occupancy after backfill = %d, want 2", name, got)
	}
	// Reinit with allSeen models the wake-up reinstall: all w bits marked.
	w.Reinit(50_000, true)
	if got := occ.Occupancy(); got != 64 {
		t.Errorf("%s: post-wake occupancy = %d, want 64", name, got)
	}
	w.Reinit(60_000, false)
	if got := occ.Occupancy(); got != 0 {
		t.Errorf("%s: post-clear occupancy = %d, want 0", name, got)
	}
	// A narrow window near zero: (edge-w, edge] clips at 1.
	w2 := mk(64)
	occ2 := w2.(Occupier)
	for s := uint64(1); s <= 10; s++ {
		w2.Admit(s)
	}
	if got := occ2.Occupancy(); got != 10 {
		t.Errorf("%s: low-edge occupancy = %d, want 10", name, got)
	}
}

func TestBitmapOccupancy(t *testing.T) {
	testOccupancy(t, "bitmap", func(w int) Window { return NewBitmap(w) })
}

func TestAtomicOccupancy(t *testing.T) {
	testOccupancy(t, "atomic", func(w int) Window { return NewAtomic(w) })
}
