package seqwin

import "fmt"

// Bitmap is an RFC 6479-style anti-replay window: a ring of 64-bit words
// holding seen-bits for sequence numbers, sized to at least the window width
// plus one spare word so that whole words can be cleared as the window
// advances (no per-bit shifting).
//
// Bit for sequence number s lives at word (s/64) mod len(words), bit s%64.
// Words between the old and new edge are zeroed on advance, which keeps the
// invariant that every bit position in (edge-w, edge] faithfully records
// whether that sequence number has been accepted.
type Bitmap struct {
	words []uint64
	r     uint64 // right edge
	w     int    // logical window width
}

var _ Window = (*Bitmap)(nil)

// NewBitmap returns a window of width w (w >= 1). The ring is sized to
// ceil(w/64)+1 words, guaranteeing the spare word RFC 6479 requires.
// It panics if w < 1 (programmer error).
func NewBitmap(w int) *Bitmap {
	if w < 1 {
		panic(fmt.Sprintf("seqwin: window width %d < 1", w))
	}
	nwords := (w+63)/64 + 1
	return &Bitmap{words: make([]uint64, nwords), w: w}
}

func (b *Bitmap) wordOf(s uint64) int { return int((s / 64) % uint64(len(b.words))) }

func (b *Bitmap) bit(s uint64) uint64 { return uint64(1) << (s % 64) }

// Admit decides and records sequence number s.
func (b *Bitmap) Admit(s uint64) Decision {
	if staleBelow(s, b.r, b.w) {
		return DecisionStale
	}
	if s > b.r {
		b.advance(s)
		b.words[b.wordOf(s)] |= b.bit(s)
		b.r = s
		return DecisionNew
	}
	wi, m := b.wordOf(s), b.bit(s)
	if b.words[wi]&m != 0 {
		return DecisionDuplicate
	}
	b.words[wi] |= m
	return DecisionInWindow
}

// advance zeroes the ring words the edge passes over when moving from b.r
// to s (exclusive of b.r's word, inclusive of s's word).
func (b *Bitmap) advance(s uint64) {
	cur := b.r / 64
	dst := s / 64
	if dst-cur >= uint64(len(b.words)) {
		for i := range b.words {
			b.words[i] = 0
		}
		return
	}
	for wd := cur + 1; wd <= dst; wd++ {
		b.words[wd%uint64(len(b.words))] = 0
	}
}

// Edge returns the right edge.
func (b *Bitmap) Edge() uint64 { return b.r }

// W returns the logical window width.
func (b *Bitmap) W() int { return b.w }

// Seen reports whether s is marked received (stale numbers report true,
// numbers above the edge false), mirroring Bool.Seen.
func (b *Bitmap) Seen(s uint64) bool {
	if staleBelow(s, b.r, b.w) {
		return true
	}
	if s > b.r {
		return false
	}
	return b.words[b.wordOf(s)]&b.bit(s) != 0
}

// Reinit reinstalls the window at edge, marking every number in
// (edge-w, edge] as seen when allSeen is set and clearing the window
// otherwise.
func (b *Bitmap) Reinit(edge uint64, allSeen bool) {
	for i := range b.words {
		b.words[i] = 0
	}
	b.r = edge
	if !allSeen {
		return
	}
	lo := uint64(1)
	if edge > uint64(b.w) {
		lo = edge - uint64(b.w) + 1
	}
	for s := lo; s <= edge; s++ {
		b.words[b.wordOf(s)] |= b.bit(s)
	}
}
