package seqwin

import (
	"math/rand"
	"testing"
)

// TestDifferentialCampaignSchedules runs Atomic and Bitmap in lockstep
// over ten thousand randomized campaign-shaped admit schedules — the
// traffic the adversary layer's stealth campaigns produce: window-edge
// hostages released deep behind the edge, edge-adjacent duplicate
// injections, save-storm loss bursts, blackout replay floods, and
// reset/wake-leap reinitializations. Used serially the two
// implementations must be bit-identical: same decision on every admit,
// same edge after it, same Seen verdict across and beyond the window.
// (TestDifferential covers generic random walks; this pins the shapes
// campaigns actually generate, at 10x the schedule count.)
func TestDifferentialCampaignSchedules(t *testing.T) {
	const schedules = 10_000
	widths := []int{32, 64, 128, 256}

	for i := 0; i < schedules; i++ {
		rng := rand.New(rand.NewSource(int64(i)*2654435761 + 99))
		w := widths[rng.Intn(len(widths))]
		bm := NewBitmap(w)
		at := NewAtomic(w)

		admit := func(step int, s uint64) {
			db, da := bm.Admit(s), at.Admit(s)
			if db != da {
				t.Fatalf("schedule %d step %d w=%d: Admit(%d): Bitmap=%v Atomic=%v",
					i, step, w, s, db, da)
			}
			if be, ae := bm.Edge(), at.Edge(); be != ae {
				t.Fatalf("schedule %d step %d w=%d: after Admit(%d): edge Bitmap=%d Atomic=%d",
					i, step, w, s, be, ae)
			}
		}

		next := uint64(1)
		var held []uint64    // the sniper's parked hostages, FIFO
		var history []uint64 // recent deliveries, the flood's capture
		record := func(s uint64) {
			history = append(history, s)
			if len(history) > 4*w {
				history = history[len(history)-4*w:]
			}
		}

		steps := 40 + rng.Intn(41)
		for step := 0; step < steps; step++ {
			switch rng.Intn(12) {
			case 0: // sniper parks a fresh number
				held = append(held, next)
				next++
			case 1: // a matured hostage arrives, possibly far below the edge
				if len(held) > 0 {
					s := held[0]
					held = held[1:]
					admit(step, s)
					record(s)
				}
			case 2: // edge-adjacent duplicate injection
				if len(history) > 0 {
					back := rng.Intn(min(len(history), w)) + 1
					admit(step, history[len(history)-back])
				}
			case 3: // save-storm strike: a burst of traffic is dropped
				next += uint64(rng.Intn(2*w) + 1)
			case 4: // blackout replay flood: re-send a captured run
				if len(history) > 0 {
					n := rng.Intn(min(len(history), 8)) + 1
					for _, s := range history[len(history)-n:] {
						admit(step, s)
					}
				}
			case 5: // reset + wake: both windows leap to the same edge
				leap := uint64(rng.Intn(2*w) + 1)
				edge := bm.Edge() + leap
				allSeen := rng.Intn(2) == 0
				bm.Reinit(edge, allSeen)
				at.Reinit(edge, allSeen)
				if be, ae := bm.Edge(), at.Edge(); be != ae {
					t.Fatalf("schedule %d step %d w=%d: after Reinit(%d, %v): edge Bitmap=%d Atomic=%d",
						i, step, w, edge, allSeen, be, ae)
				}
				if next <= edge {
					next = edge + 1
				}
			default: // in-order traffic
				admit(step, next)
				record(next)
				next++
			}
		}

		// Seen must agree bit-for-bit: deep-stale, in-window, above-edge.
		e := bm.Edge()
		lo := uint64(1)
		if e > uint64(2*w) {
			lo = e - uint64(2*w)
		}
		for s := lo; s <= e+uint64(w); s++ {
			if bs, as := bm.Seen(s), at.Seen(s); bs != as {
				t.Fatalf("schedule %d w=%d: Seen(%d): Bitmap=%v Atomic=%v (edge %d)",
					i, w, s, bs, as, e)
			}
		}
	}
}
