package seqwin

import "fmt"

// InferESN reconstructs a 64-bit extended sequence number from the 32 bits
// carried on the wire, following the RFC 4303 Appendix A2 procedure.
//
// edge is the receiver's 64-bit right edge (highest authenticated sequence
// number so far), lo the 32-bit wire value, and w the anti-replay window
// width. Writing Th/Tl for the high/low halves of edge:
//
//   - If Tl >= w-1 the window lies within one 2^32 subspace: lo at or above
//     the window's low end belongs to subspace Th, anything below it is
//     interpreted as the next subspace (Th+1).
//   - Otherwise the window straddles a subspace boundary: small lo (<= Tl,
//     or in the gap above Tl but below the wrapped low end) belongs to Th,
//     while lo at or above the wrapped low end belongs to Th-1.
//
// The inference alone does not authenticate: the caller must verify the
// packet's ICV computed over the inferred high half before trusting the
// result, exactly as RFC 4303 prescribes. When edge straddles nothing yet
// (Th == 0) the "previous subspace" interpretation is clamped to subspace 0.
//
// InferESN panics if w < 1 (programmer error, like the window constructors):
// the w-1 window arithmetic underflows there and would silently misinfer
// every high half.
func InferESN(edge uint64, lo uint32, w int) uint64 {
	if w < 1 {
		panic(fmt.Sprintf("seqwin: InferESN window width %d < 1", w))
	}
	th := uint32(edge >> 32)
	tl := uint32(edge)
	ww := uint32(w)

	var hi uint32
	if tl >= ww-1 {
		if lo >= tl-ww+1 {
			hi = th
		} else {
			hi = th + 1
		}
	} else {
		// tl - ww + 1 wraps: the window's low end lies in subspace th-1.
		wrappedLow := tl - ww + 1
		switch {
		case lo <= tl:
			hi = th
		case lo >= wrappedLow:
			if th == 0 {
				hi = 0 // no previous subspace exists; ICV check will reject
			} else {
				hi = th - 1
			}
		default:
			hi = th
		}
	}
	return uint64(hi)<<32 | uint64(lo)
}
