package seqwin

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// allWindows returns one of each implementation at width w (Fixed64 only
// when w == 64).
func allWindows(w int) map[string]Window {
	ws := map[string]Window{
		"bool":   NewBool(w),
		"bitmap": NewBitmap(w),
		"atomic": NewAtomic(w),
	}
	if w == Fixed64Width {
		ws["fixed64"] = NewFixed64()
	}
	return ws
}

func TestDecisionString(t *testing.T) {
	tests := []struct {
		d    Decision
		want string
	}{
		{DecisionNew, "new"},
		{DecisionInWindow, "in-window"},
		{DecisionDuplicate, "duplicate"},
		{DecisionStale, "stale"},
		{Decision(0), "decision(0)"},
	}
	for _, tt := range tests {
		if got := tt.d.String(); got != tt.want {
			t.Errorf("Decision(%d).String() = %q, want %q", tt.d, got, tt.want)
		}
	}
}

func TestDecisionDeliver(t *testing.T) {
	if !DecisionNew.Deliver() || !DecisionInWindow.Deliver() {
		t.Error("New and InWindow must deliver")
	}
	if DecisionDuplicate.Deliver() || DecisionStale.Deliver() {
		t.Error("Duplicate and Stale must not deliver")
	}
}

// TestPaperThreeCases exercises the three receive cases of §2 on every
// implementation.
func TestPaperThreeCases(t *testing.T) {
	for name, win := range allWindows(64) {
		t.Run(name, func(t *testing.T) {
			// Case 3 first: s > r advances the window.
			if d := win.Admit(100); d != DecisionNew {
				t.Fatalf("Admit(100) = %v, want new", d)
			}
			if win.Edge() != 100 {
				t.Fatalf("Edge = %d, want 100", win.Edge())
			}
			// Case 2: r-w < s <= r, unseen then seen.
			if d := win.Admit(80); d != DecisionInWindow {
				t.Errorf("Admit(80) = %v, want in-window", d)
			}
			if d := win.Admit(80); d != DecisionDuplicate {
				t.Errorf("Admit(80) again = %v, want duplicate", d)
			}
			// Replay of the right edge itself must be a duplicate.
			if d := win.Admit(100); d != DecisionDuplicate {
				t.Errorf("Admit(100) replay of edge = %v, want duplicate", d)
			}
			// Case 1: s <= r-w is stale.
			if d := win.Admit(36); d != DecisionStale {
				t.Errorf("Admit(36) = %v, want stale (left edge is 37)", d)
			}
			if d := win.Admit(37); d != DecisionInWindow {
				t.Errorf("Admit(37) = %v, want in-window (exactly left edge)", d)
			}
		})
	}
}

func TestZeroAlwaysStale(t *testing.T) {
	for name, win := range allWindows(64) {
		if d := win.Admit(0); d != DecisionStale {
			t.Errorf("%s: Admit(0) = %v, want stale", name, d)
		}
	}
}

func TestInitialStateAcceptsOne(t *testing.T) {
	for name, win := range allWindows(64) {
		if d := win.Admit(1); d != DecisionNew {
			t.Errorf("%s: Admit(1) on fresh window = %v, want new", name, d)
		}
	}
}

func TestInOrderStream(t *testing.T) {
	for name, win := range allWindows(64) {
		t.Run(name, func(t *testing.T) {
			for s := uint64(1); s <= 1000; s++ {
				if d := win.Admit(s); d != DecisionNew {
					t.Fatalf("Admit(%d) = %v, want new", s, d)
				}
			}
			if win.Edge() != 1000 {
				t.Errorf("Edge = %d, want 1000", win.Edge())
			}
		})
	}
}

func TestSlideBeyondWindow(t *testing.T) {
	for name, win := range allWindows(64) {
		t.Run(name, func(t *testing.T) {
			win.Admit(10)
			// Jump far beyond the window: everything old becomes stale.
			if d := win.Admit(10_000); d != DecisionNew {
				t.Fatalf("Admit(10000) = %v, want new", d)
			}
			if d := win.Admit(10); d != DecisionStale {
				t.Errorf("Admit(10) after jump = %v, want stale", d)
			}
			// Unseen numbers inside the new window deliver.
			if d := win.Admit(10_000 - 63); d != DecisionInWindow {
				t.Errorf("Admit(left edge) = %v, want in-window", d)
			}
		})
	}
}

func TestReorderWithinWindow(t *testing.T) {
	for name, win := range allWindows(64) {
		t.Run(name, func(t *testing.T) {
			// Deliver out of order: 5, 3, 4, 1, 2 all within w.
			order := []uint64{5, 3, 4, 1, 2}
			for _, s := range order {
				if d := win.Admit(s); !d.Deliver() {
					t.Errorf("Admit(%d) = %v, want deliverable", s, d)
				}
			}
			// Everything replayed is now a duplicate.
			for _, s := range order {
				if d := win.Admit(s); d.Deliver() {
					t.Errorf("replayed Admit(%d) = %v, want discard", s, d)
				}
			}
		})
	}
}

func TestReinitAllSeen(t *testing.T) {
	for name, win := range allWindows(64) {
		t.Run(name, func(t *testing.T) {
			for s := uint64(1); s <= 30; s++ {
				win.Admit(s)
			}
			// Paper wake-up: edge leaps, whole window marked seen.
			win.Reinit(130, true)
			if win.Edge() != 130 {
				t.Fatalf("Edge = %d, want 130", win.Edge())
			}
			// Every number in (130-64, 130] must be a duplicate.
			for _, s := range []uint64{130, 100, 67} {
				if d := win.Admit(s); d != DecisionDuplicate {
					t.Errorf("Admit(%d) = %v, want duplicate", s, d)
				}
			}
			// Below the left edge: stale.
			if d := win.Admit(66); d != DecisionStale {
				t.Errorf("Admit(66) = %v, want stale", d)
			}
			// Fresh numbers still flow.
			if d := win.Admit(131); d != DecisionNew {
				t.Errorf("Admit(131) = %v, want new", d)
			}
		})
	}
}

func TestReinitCleared(t *testing.T) {
	for name, win := range allWindows(64) {
		t.Run(name, func(t *testing.T) {
			for s := uint64(1); s <= 300; s++ {
				win.Admit(s)
			}
			// Baseline cold restart: r=0, window cleared. Old traffic is
			// accepted again — the paper's §3 failure.
			win.Reinit(0, false)
			if win.Edge() != 0 {
				t.Fatalf("Edge = %d, want 0", win.Edge())
			}
			if d := win.Admit(250); d != DecisionNew {
				t.Errorf("replayed Admit(250) after cold restart = %v, want new (the vulnerability)", d)
			}
		})
	}
}

// TestBoolPaperEdgeInvariant checks the transliteration subtlety: after any
// slide the right-edge cell reads seen, because wdw[w] is never overwritten
// after its all-true initialization.
func TestBoolPaperEdgeInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	win := NewBool(32)
	s := uint64(0)
	for i := 0; i < 500; i++ {
		s += uint64(rng.Intn(40) + 1)
		win.Admit(s)
		if !win.Seen(s) {
			t.Fatalf("edge %d not seen after slide", s)
		}
		if d := win.Admit(s); d != DecisionDuplicate {
			t.Fatalf("replay of edge %d = %v, want duplicate", s, d)
		}
	}
}

// TestDifferential runs identical random admit streams through all
// implementations and requires identical decisions and edges throughout.
func TestDifferential(t *testing.T) {
	widths := []int{64}
	for _, w := range []int{1, 2, 63, 65, 128, 100} {
		widths = append(widths, w)
	}
	for _, w := range widths {
		w := w
		t.Run(fmt.Sprintf("w=%d", w), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(w) * 7919))
			wins := allWindows(w)
			base := uint64(1)
			for i := 0; i < 5000; i++ {
				// Random walk: mostly near the edge, occasional jumps.
				var s uint64
				switch rng.Intn(10) {
				case 0:
					s = base + uint64(rng.Intn(3*w+10))
				case 1:
					d := uint64(rng.Intn(3 * w))
					if d >= base {
						s = 1
					} else {
						s = base - d
					}
				default:
					s = base + uint64(rng.Intn(5))
				}
				if s > base {
					base = s
				}

				var firstName string
				var first Decision
				for name, win := range wins {
					d := win.Admit(s)
					if firstName == "" {
						firstName, first = name, d
						continue
					}
					if d != first {
						t.Fatalf("step %d: Admit(%d): %s = %v but %s = %v",
							i, s, firstName, first, name, d)
					}
				}
				var edge uint64
				edgeSet := false
				for name, win := range wins {
					if !edgeSet {
						edge, edgeSet = win.Edge(), true
						firstName = name
						continue
					}
					if win.Edge() != edge {
						t.Fatalf("step %d: edge mismatch: %s=%d %s=%d",
							i, firstName, edge, name, win.Edge())
					}
				}
			}
		})
	}
}

// TestDiscriminationProperty: no window ever delivers the same sequence
// number twice (the paper's Discrimination condition), for random streams.
func TestDiscriminationProperty(t *testing.T) {
	f := func(seed int64, raw []uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		w := 1 + rng.Intn(100)
		for name, win := range allWindows(w) {
			delivered := make(map[uint64]int)
			base := uint64(1)
			for _, r := range raw {
				s := base + uint64(r%200)
				if r%3 == 0 && base > uint64(r) {
					s = base - uint64(r%100)
				}
				if s > base {
					base = s
				}
				if win.Admit(s).Deliver() {
					delivered[s]++
					if delivered[s] > 1 {
						t.Logf("%s delivered %d twice", name, s)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestWDeliveryProperty: with reorder degree < w and no loss, every message
// is delivered exactly once (the paper's w-Delivery condition).
func TestWDeliveryProperty(t *testing.T) {
	const w = 32
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 500
		// Build an arrival order in which no message suffers a reorder of
		// degree >= w: at every step only sequence numbers less than
		// (oldest pending)+w may arrive.
		pending := make([]uint64, n)
		for i := range pending {
			pending[i] = uint64(i + 1)
		}
		seqs := make([]uint64, 0, n)
		for len(pending) > 0 {
			lim := pending[0] + w
			k := 0
			for k < len(pending) && pending[k] < lim {
				k++
			}
			idx := rng.Intn(k)
			seqs = append(seqs, pending[idx])
			pending = append(pending[:idx], pending[idx+1:]...)
		}
		for name, win := range allWindows(w) {
			delivered := 0
			for _, s := range seqs {
				if win.Admit(s).Deliver() {
					delivered++
				}
			}
			if delivered != n {
				t.Logf("%s delivered %d of %d", name, delivered, n)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBitmapWordBoundaries(t *testing.T) {
	win := NewBitmap(64)
	// Advance to just below a word boundary, then cross it.
	for _, s := range []uint64{63, 64, 65, 127, 128, 192} {
		if d := win.Admit(s); d != DecisionNew {
			t.Fatalf("Admit(%d) = %v, want new", s, d)
		}
	}
	// In-window unseen values across word boundaries (edge is 192, so the
	// window covers [129, 192]).
	if d := win.Admit(190); d != DecisionInWindow {
		t.Errorf("Admit(190) = %v, want in-window", d)
	}
	if d := win.Admit(129); d != DecisionInWindow {
		t.Errorf("Admit(129) = %v, want in-window (exactly left edge)", d)
	}
	if d := win.Admit(128); d != DecisionStale {
		t.Errorf("Admit(128) = %v, want stale (was admitted, but lies below window)", d)
	}
}

func TestBitmapHugeJump(t *testing.T) {
	win := NewBitmap(128)
	win.Admit(5)
	win.Admit(7)
	// Jump that wraps the ring several times over.
	if d := win.Admit(1 << 40); d != DecisionNew {
		t.Fatalf("huge jump = %v, want new", d)
	}
	// The ring must be fully cleared: in-window unseen values deliver.
	if d := win.Admit(1<<40 - 100); d != DecisionInWindow {
		t.Errorf("Admit(edge-100) = %v, want in-window", d)
	}
	if d := win.Admit(7); d != DecisionStale {
		t.Errorf("Admit(7) = %v, want stale", d)
	}
}

func TestFixed64ShiftBoundaries(t *testing.T) {
	win := NewFixed64()
	win.Admit(10)
	if d := win.Admit(10 + 63); d != DecisionNew {
		t.Fatalf("shift 63 = %v, want new", d)
	}
	// Offset 63 is the last in-window position: 10 was seen, so duplicate
	// (not stale), while 9 lies just below the window.
	if d := win.Admit(10); d != DecisionDuplicate {
		t.Errorf("Admit(10) = %v, want duplicate (offset 63 still in window)", d)
	}
	if d := win.Admit(11); d != DecisionInWindow {
		t.Errorf("Admit(11) = %v, want in-window (offset 62, unseen)", d)
	}
	if d := win.Admit(9); d != DecisionStale {
		t.Errorf("Admit(9) = %v, want stale", d)
	}
	win2 := NewFixed64()
	win2.Admit(10)
	if d := win2.Admit(10 + 64); d != DecisionNew {
		t.Fatalf("shift 64 = %v, want new", d)
	}
	if d := win2.Admit(10); d != DecisionStale {
		t.Errorf("Admit(10) after shift 64 = %v, want stale", d)
	}
}

func TestNewBoolPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBool(0) should panic")
		}
	}()
	NewBool(0)
}

func TestNewBitmapPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBitmap(-1) should panic")
		}
	}()
	NewBitmap(-1)
}

func TestSeenReporting(t *testing.T) {
	for name, win := range allWindows(64) {
		t.Run(name, func(t *testing.T) {
			type seenReporter interface{ Seen(uint64) bool }
			sr, ok := win.(seenReporter)
			if !ok {
				t.Fatalf("%T does not expose Seen", win)
			}
			win.Admit(100)
			win.Admit(50)
			if !sr.Seen(100) || !sr.Seen(50) {
				t.Error("delivered numbers must report seen")
			}
			if sr.Seen(99) {
				t.Error("unseen in-window number must report unseen")
			}
			if !sr.Seen(20) {
				t.Error("stale numbers must report seen (cannot discriminate)")
			}
			if sr.Seen(101) {
				t.Error("future numbers must report unseen")
			}
		})
	}
}

func TestInferESNWithinSubspace(t *testing.T) {
	const w = 64
	tests := []struct {
		name string
		edge uint64
		lo   uint32
		want uint64
	}{
		{"in window", 1000, 990, 990},
		{"at edge", 1000, 1000, 1000},
		{"future same subspace", 1000, 5000, 5000},
		{"below window wraps to next", 1 << 33, 5, 2<<32 + 5},
		{"high subspace in window", 5<<32 + 1000, 990, 5<<32 + 990},
		{"high subspace below window", 5<<32 + 1000, 900, 6<<32 + 900},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := InferESN(tt.edge, tt.lo, w); got != tt.want {
				t.Errorf("InferESN(%#x, %#x, %d) = %#x, want %#x",
					tt.edge, tt.lo, w, got, tt.want)
			}
		})
	}
}

func TestInferESNStraddling(t *testing.T) {
	const w = 64
	// Edge just above a subspace boundary: Tl = 10 < w-1, Th = 3.
	edge := uint64(3)<<32 + 10
	// Low lo values belong to the current subspace.
	if got := InferESN(edge, 5, w); got != uint64(3)<<32+5 {
		t.Errorf("low lo: got %#x", got)
	}
	// lo in the wrapped window tail belongs to the previous subspace.
	var below uint32 = w - 1 - 10
	tail := uint32(0) - below + 5 // a value >= wrapped low end
	want := uint64(2)<<32 | uint64(tail)
	if got := InferESN(edge, tail, w); got != want {
		t.Errorf("wrapped tail: got %#x, want %#x", got, want)
	}
	// lo in the future gap (above Tl, below wrapped low end): current.
	if got := InferESN(edge, 100000, w); got != uint64(3)<<32+100000 {
		t.Errorf("future gap: got %#x", got)
	}
}

func TestInferESNClampAtZero(t *testing.T) {
	// Th == 0 with a straddling-shaped window: no previous subspace exists.
	edge := uint64(10) // Tl = 10 < w-1, Th = 0
	got := InferESN(edge, ^uint32(0), 64)
	if got>>32 != 0 {
		t.Errorf("clamped hi = %d, want 0", got>>32)
	}
}

// TestInferESNRoundTrip: for a sliding 64-bit edge and wire values within
// the window or a bounded distance ahead, inference recovers the true seq.
func TestInferESNRoundTrip(t *testing.T) {
	const w = 128
	f := func(rawEdge uint64, delta uint16, ahead bool) bool {
		edge := rawEdge % (1 << 40)
		if edge < w {
			edge += w
		}
		var s uint64
		if ahead {
			s = edge + uint64(delta%10000) + 1
		} else {
			d := uint64(delta % (w - 1))
			s = edge - d
		}
		got := InferESN(edge, uint32(s), w)
		return got == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestWAccessors(t *testing.T) {
	if got := NewBool(17).W(); got != 17 {
		t.Errorf("Bool.W = %d, want 17", got)
	}
	if got := NewBitmap(17).W(); got != 17 {
		t.Errorf("Bitmap.W = %d, want 17", got)
	}
	if got := NewFixed64().W(); got != 64 {
		t.Errorf("Fixed64.W = %d, want 64", got)
	}
}

func TestDecisionNamesComplete(t *testing.T) {
	for d := DecisionNew; d <= DecisionStale; d++ {
		if strings.HasPrefix(d.String(), "decision(") {
			t.Errorf("decision %d lacks a name", d)
		}
	}
}
