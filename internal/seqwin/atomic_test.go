package seqwin

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestAtomicDifferentialBoundaries runs Atomic and Bitmap in lockstep over
// adversarial serial streams anchored at the edges the ESN machinery cares
// about: 0, 1, and the 2^32 subspace boundary.
func TestAtomicDifferentialBoundaries(t *testing.T) {
	anchors := []uint64{0, 1, 1<<32 - 200, 1 << 32, 1<<32 + 3}
	for _, w := range []int{1, 64, 100, 1024} {
		for _, anchor := range anchors {
			rng := rand.New(rand.NewSource(int64(w)*31 + int64(anchor%977)))
			at, bm := NewAtomic(w), NewBitmap(w)
			if anchor > 0 {
				at.Reinit(anchor, false)
				bm.Reinit(anchor, false)
			}
			base := anchor
			for i := 0; i < 4000; i++ {
				var s uint64
				switch rng.Intn(10) {
				case 0:
					s = base + uint64(rng.Intn(3*w+10))
				case 1:
					d := uint64(rng.Intn(3 * w))
					if d >= base {
						s = 1
					} else {
						s = base - d
					}
				default:
					s = base + uint64(rng.Intn(5))
				}
				if s > base {
					base = s
				}
				da, db := at.Admit(s), bm.Admit(s)
				if da != db {
					t.Fatalf("w=%d anchor=%d step %d: Admit(%d): atomic=%v bitmap=%v",
						w, anchor, i, s, da, db)
				}
				if at.Edge() != bm.Edge() {
					t.Fatalf("w=%d anchor=%d step %d: edge: atomic=%d bitmap=%d",
						w, anchor, i, at.Edge(), bm.Edge())
				}
			}
		}
	}
}

// TestAtomicConcurrentExactlyOnce is the load-bearing race test: many
// goroutines admit an overlapping mix of fresh and replayed numbers, and no
// number may ever be delivered twice — the Discrimination property under
// concurrency. Run with -race.
func TestAtomicConcurrentExactlyOnce(t *testing.T) {
	const (
		goroutines = 8
		perG       = 20000
		span       = 40000
	)
	win := NewAtomic(128)
	delivered := make([]atomic.Uint32, span+1)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 1))
			for i := 0; i < perG; i++ {
				// Mostly walk forward, frequently replay recent numbers so
				// goroutines collide on the same bits.
				s := uint64(g + i*2 + 1)
				if rng.Intn(3) == 0 {
					s = uint64(rng.Intn(i*2+2) + 1)
				}
				if s > span {
					s = span
				}
				if win.Admit(s).Deliver() {
					delivered[s].Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	for s := range delivered {
		if n := delivered[s].Load(); n > 1 {
			t.Fatalf("sequence %d delivered %d times", s, n)
		}
	}
}

// TestAtomicConcurrentSlides hammers the recycle path: goroutines race huge
// edge advances (which lap the ring) against in-window admits and replays.
// Exactly-once must survive; run with -race.
func TestAtomicConcurrentSlides(t *testing.T) {
	const goroutines = 8
	win := NewAtomic(64)
	var next atomic.Uint64
	deliveredOnce := sync.Map{} // seq -> struct{}; double insert of a delivery is a bug
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) * 131))
			for i := 0; i < 5000; i++ {
				var s uint64
				switch rng.Intn(4) {
				case 0: // jump far ahead: laps the whole ring
					s = next.Add(10_000)
				case 1: // replay something old
					s = uint64(rng.Intn(int(next.Load())+2) + 1)
				default: // creep forward
					s = next.Add(1)
				}
				if win.Admit(s).Deliver() {
					if _, dup := deliveredOnce.LoadOrStore(s, struct{}{}); dup {
						t.Errorf("sequence %d delivered twice", s)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestAtomicReinitAllSeen mirrors TestReinitAllSeen but also checks the
// slot/tag bookkeeping survives a post-wake install above the ring span.
func TestAtomicReinitAllSeen(t *testing.T) {
	win := NewAtomic(64)
	for s := uint64(1); s <= 30; s++ {
		win.Admit(s)
	}
	win.Reinit(1<<32+130, true)
	for _, s := range []uint64{1<<32 + 130, 1<<32 + 100, 1<<32 + 67} {
		if d := win.Admit(s); d != DecisionDuplicate {
			t.Errorf("Admit(%d) = %v, want duplicate", s, d)
		}
	}
	if d := win.Admit(1<<32 + 66); d != DecisionStale {
		t.Errorf("Admit(edge-64) = %v, want stale", d)
	}
	if d := win.Admit(1<<32 + 131); d != DecisionNew {
		t.Errorf("Admit(edge+1) = %v, want new", d)
	}
}

func TestNewAtomicPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewAtomic(0) should panic")
		}
	}()
	NewAtomic(0)
}

func TestInferESNPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("InferESN with w=0 should panic (ww-1 underflows)")
		}
	}()
	InferESN(100, 50, 0)
}
