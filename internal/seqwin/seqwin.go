// Package seqwin implements anti-replay sequence-number windows.
//
// Four implementations share one interface:
//
//   - Bool: a direct transliteration of the paper's array-of-boolean window
//     (process q, §2), preserving its exact slide semantics, including the
//     invariant that the right-edge cell remains true from initialization.
//   - Bitmap: an RFC 6479-style ring of uint64 words for arbitrary window
//     sizes, clearing whole words as the window advances.
//   - Fixed64: the classic single-uint64 window of RFC 4303 (w = 64).
//   - ESN inference (InferESN): reconstruction of 64-bit extended sequence
//     numbers from the 32-bit wire value, RFC 4303 Appendix A style.
//
// Sequence numbers are uint64 and start at 1; Admit(0) is always
// DecisionStale (the paper's senders never emit 0, and this removes the
// unsigned-underflow edge cases around an empty window).
package seqwin

import "fmt"

// Decision classifies the receiver's verdict for one sequence number.
type Decision uint8

// Decision values. DecisionNew and DecisionInWindow mean "deliver";
// DecisionDuplicate and DecisionStale mean "discard".
const (
	// DecisionNew means the number lies beyond the right edge: deliver and
	// slide the window.
	DecisionNew Decision = iota + 1
	// DecisionInWindow means the number lies inside the window and was not
	// seen before: deliver and mark.
	DecisionInWindow
	// DecisionDuplicate means the number lies inside the window and was
	// already seen: discard.
	DecisionDuplicate
	// DecisionStale means the number lies at or below the left edge, where
	// the receiver can no longer discriminate: discard (paper: "to be on the
	// safe side, q assumes that this message has been received before").
	DecisionStale
)

// Deliver reports whether the decision delivers the message.
func (d Decision) Deliver() bool { return d == DecisionNew || d == DecisionInWindow }

// String returns the lower-case name of the decision.
func (d Decision) String() string {
	switch d {
	case DecisionNew:
		return "new"
	case DecisionInWindow:
		return "in-window"
	case DecisionDuplicate:
		return "duplicate"
	case DecisionStale:
		return "stale"
	default:
		return fmt.Sprintf("decision(%d)", uint8(d))
	}
}

// Window is a mutable anti-replay window over uint64 sequence numbers.
// Implementations are not safe for concurrent use; callers serialize.
type Window interface {
	// Admit decides the verdict for sequence number s and updates the
	// window state accordingly (marks s seen, slides on DecisionNew).
	Admit(s uint64) Decision
	// Edge returns the right edge (largest sequence number represented).
	Edge() uint64
	// W returns the window width in sequence numbers.
	W() int
	// Reinit reinstalls the window at the given right edge. When allSeen is
	// true every number in the window is marked already-received (the
	// paper's post-wake state); otherwise the window is cleared (the
	// baseline's post-reset state).
	Reinit(edge uint64, allSeen bool)
}

// staleBelow reports whether s is at or below the left edge for a window of
// width w ending at edge r, handling unsigned underflow: the stale region is
// s <= r-w, which is empty (except s == 0) while r < w.
func staleBelow(s, r uint64, w int) bool {
	if s == 0 {
		return true
	}
	uw := uint64(w)
	return r >= uw && s <= r-uw
}
