package seqwin

import "math/bits"

// Occupier is the optional interface a window implements when it can
// report how many numbers inside (edge-w, edge] are currently marked seen.
// Occupancy is a diagnostic gauge: a nearly full window under loss-free
// in-order traffic is healthy, a sparse one betrays loss or reordering,
// and a full window immediately after a wake betrays the paper's
// mark-all-seen reinstall. Implementations may return a moment-in-time
// approximation under concurrent admits.
type Occupier interface {
	Occupancy() int
}

var (
	_ Occupier = (*Bitmap)(nil)
	_ Occupier = (*Atomic)(nil)
)

// windowMask returns the bitmask selecting the in-window bits of the
// 64-number block containing s, for a window spanning [lo, hi]: bits
// s%64 .. min(hi, blockEnd)%64. s must lie in [lo, hi] and in the block.
func windowMask(s, hi uint64) (mask uint64, next uint64) {
	blockEnd := s/64*64 + 63
	if blockEnd < hi {
		hi = blockEnd
	}
	width := hi - s + 1
	if width >= 64 {
		mask = ^uint64(0)
	} else {
		mask = (uint64(1)<<width - 1) << (s % 64)
	}
	return mask, hi + 1
}

// Occupancy counts the seen-marked numbers in (edge-w, edge]. Exact: ring
// words can retain set bits for numbers that have slid below the window
// (they are only zeroed when the edge passes over the whole word), so the
// count masks each word down to its in-window span.
func (b *Bitmap) Occupancy() int {
	if b.r == 0 {
		return 0
	}
	lo := uint64(1)
	if b.r > uint64(b.w) {
		lo = b.r - uint64(b.w) + 1
	}
	n := 0
	for s := lo; s <= b.r; {
		mask, next := windowMask(s, b.r)
		n += bits.OnesCount64(b.words[b.wordOf(s)] & mask)
		s = next
	}
	return n
}

// Occupancy counts the seen-marked numbers in (edge-w, edge] under the tag
// protocol: a block's bits are only trusted while its slot stably holds
// that block, so bits belonging to recycled-away history never inflate the
// count. Under concurrent admits the result is a moment-in-time snapshot —
// a block that slides mid-scan is simply skipped for that scrape.
func (a *Atomic) Occupancy() int {
	edge := a.edge.Load()
	if edge == 0 {
		return 0
	}
	lo := uint64(1)
	if edge > uint64(a.w) {
		lo = edge - uint64(a.w) + 1
	}
	n := 0
	for s := lo; s <= edge; {
		blk := s / 64
		wd := a.slot(blk)
		tag1 := wd.tag.Load()
		word := wd.bits.Load()
		mask, next := windowMask(s, edge)
		if tag1 == stableTag(blk) && wd.tag.Load() == tag1 {
			n += bits.OnesCount64(word & mask)
		}
		s = next
	}
	return n
}
