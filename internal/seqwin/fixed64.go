package seqwin

// Fixed64 is the classic single-word anti-replay window of RFC 4303 with a
// fixed width of 64: bit i of the mask records whether sequence number
// edge-i has been received.
type Fixed64 struct {
	r    uint64
	bits uint64
}

var _ Window = (*Fixed64)(nil)

// Fixed64Width is the window width of a Fixed64.
const Fixed64Width = 64

// NewFixed64 returns an empty 64-wide window with edge 0.
func NewFixed64() *Fixed64 { return &Fixed64{} }

// Admit decides and records sequence number s.
func (f *Fixed64) Admit(s uint64) Decision {
	if staleBelow(s, f.r, Fixed64Width) {
		return DecisionStale
	}
	if s > f.r {
		shift := s - f.r
		if shift >= 64 {
			f.bits = 1 // only the new edge
		} else {
			f.bits = f.bits<<shift | 1
		}
		f.r = s
		return DecisionNew
	}
	mask := uint64(1) << (f.r - s)
	if f.bits&mask != 0 {
		return DecisionDuplicate
	}
	f.bits |= mask
	return DecisionInWindow
}

// Edge returns the right edge.
func (f *Fixed64) Edge() uint64 { return f.r }

// W returns 64.
func (f *Fixed64) W() int { return Fixed64Width }

// Seen reports whether s is marked received, mirroring Bool.Seen.
func (f *Fixed64) Seen(s uint64) bool {
	if staleBelow(s, f.r, Fixed64Width) {
		return true
	}
	if s > f.r {
		return false
	}
	return f.bits&(uint64(1)<<(f.r-s)) != 0
}

// Reinit reinstalls the window at edge, full or empty.
func (f *Fixed64) Reinit(edge uint64, allSeen bool) {
	f.r = edge
	if allSeen {
		f.bits = ^uint64(0)
	} else {
		f.bits = 0
	}
}
