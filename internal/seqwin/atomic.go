package seqwin

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
)

// ConcurrentWindow marks Window implementations whose Admit may be called
// from many goroutines at once. A ConcurrentWindow guarantees the
// Discrimination property under concurrency: no sequence number is ever
// delivered (DecisionNew / DecisionInWindow) twice, in any interleaving.
// It may conservatively discard a fresh number that races a large window
// slide — the same trade every anti-replay window already makes for
// out-of-window traffic. Reinit still requires external serialization
// against concurrent Admits (core.Receiver provides it with its state gate).
type ConcurrentWindow interface {
	Window
	// ConcurrentSafe is a marker: implementing it declares Admit
	// goroutine-safe with exactly-once delivery.
	ConcurrentSafe()
}

// atomicWord is one ring slot of an Atomic window: a 64-bit seen-bitmap plus
// a tag recording which 64-number block the bitmap currently represents.
// The tag is seqlock-encoded: 2*blk while the slot stably holds block blk,
// 2*blk-1 while a slide is recycling the slot INTO block blk. Readers only
// trust a bit they set while observing the same even tag before and after
// the set; the recycler publishes the odd tag strictly before wiping the
// word, so any reader whose bit could have been wiped is guaranteed to see
// the tag move and discard instead. The pad keeps each slot on its own
// cache line so bit-sets on different words never false-share.
type atomicWord struct {
	bits atomic.Uint64
	tag  atomic.Uint64
	_    [48]byte
}

// Atomic is a concurrency-safe anti-replay window in the style of the Linux
// xfrm / WireGuard receive counters: an RFC 6479 ring of 64-bit words, but
// with the right edge advanced by compare-and-swap and seen-bits set with
// atomic fetch-OR instead of under a lock. Used serially it makes exactly
// the decisions Bitmap makes (the differential tests enforce this); used
// concurrently it never delivers the same number twice.
//
// The exactly-once argument has three legs:
//
//   - Every delivery — in-window mark and freshly CASed edge alike — is
//     decided by one fetch-OR on the number's seen-bit (claim): of all
//     goroutines admitting one number, exactly one observes the bit clear.
//     In particular, the edge-CAS winner does not deliver by virtue of the
//     CAS; a replay racing into the window it just published contends on
//     the same bit.
//   - Edge advances serialize on the CAS and the edge only grows.
//   - Ring words are recycled only after the edge covering the new block is
//     published, under the tag protocol above: tags only move forward, a
//     wipe is always preceded by the odd transition tag, and claim re-reads
//     the tag after its fetch-OR. If the recheck still shows the even tag
//     of its block, no wipe can have intervened; if it does not, the number
//     is already stale under the published edge and the admit discards
//     conservatively.
//
// A small mutex serializes recycling between concurrent advances (two
// overlapping slides may alias the same physical slot); in-order traffic
// crosses a word boundary — and thus takes that mutex — once per 64
// packets, and in-window traffic never takes it.
type Atomic struct {
	w     int
	mask  uint64 // len(words)-1; the ring size is a power of two
	edge  atomic.Uint64
	reMu  sync.Mutex // serializes word recycling between advances
	words []atomicWord

	// Delivery accounting without a per-packet counter: every delivery IS a
	// bit flipped by claim, so the delivered count is the number of set bits
	// minus the ones Reinit pre-marked — summed as popcounts when recycle
	// wipes a word (wiped) plus a scan of the live ring on demand. This
	// keeps the admission fast path at two locked operations; see Delivered
	// for the exactness contract.
	wiped     atomic.Uint64 // popcount of bits wiped by recycles since Reinit
	preMarked uint64        // bits pre-set by the last Reinit (not deliveries)
}

var _ ConcurrentWindow = (*Atomic)(nil)

// NewAtomic returns a concurrency-safe window of width w (w >= 1). The ring
// holds at least ceil(w/64)+1 words — the spare word is what guarantees a
// live in-window number never shares a physical slot with a block being
// recycled — rounded up to a power of two so the per-packet block-to-slot
// map is a mask instead of a DIV (an extra ~10ns per admit on commodity
// x86). Extra slots only retain more already-stale history; the tag
// protocol ignores them. It panics if w < 1 (programmer error).
func NewAtomic(w int) *Atomic {
	if w < 1 {
		panic(fmt.Sprintf("seqwin: window width %d < 1", w))
	}
	nwords := 1
	for nwords < (w+63)/64+1 {
		nwords <<= 1
	}
	a := &Atomic{w: w, mask: uint64(nwords - 1), words: make([]atomicWord, nwords)}
	for i := range a.words {
		a.words[i].tag.Store(stableTag(uint64(i)))
	}
	return a
}

// stableTag is the tag of a slot stably holding block blk; stableTag-1 is
// the transitional tag while a slide recycles the slot into blk.
func stableTag(blk uint64) uint64 { return blk * 2 }

// ConcurrentSafe marks Atomic as safe for concurrent Admit.
func (a *Atomic) ConcurrentSafe() {}

func (a *Atomic) slot(blk uint64) *atomicWord { return &a.words[blk&a.mask] }

// Admit decides and records sequence number s. Safe for concurrent use.
func (a *Atomic) Admit(s uint64) Decision {
	for {
		r := a.edge.Load()
		if staleBelow(s, r, a.w) {
			return DecisionStale
		}
		if s <= r {
			return a.claim(s, DecisionInWindow)
		}
		// Advance: publish the new edge first, then recycle the ring words
		// the edge passed over. Publishing first is what makes concurrent
		// clearing safe — any bit the recycle wipes belongs to a number that
		// is already stale under the published edge.
		if !a.edge.CompareAndSwap(r, s) {
			continue // another admit moved the edge; re-decide against it
		}
		if s/64 != r/64 {
			a.recycle(r/64, s/64)
		}
		// Winning the edge CAS is NOT the delivery decision: between the CAS
		// and this point a replay of s (now in-window under the published
		// edge) can race us to the seen-bit. The fetch-OR in claim is the
		// one serialization point for delivering s — whoever flips the bit
		// delivers, everyone else sees a duplicate.
		return a.claim(s, DecisionNew)
	}
}

// recycle clears the ring words for blocks (from, to], skipping any slot a
// later (larger) advance has already carried past. The mutex serializes
// overlapping advances whose block ranges alias the same physical slots.
// Order is load-bearing: the transitional tag is published before the wipe,
// the stable tag after it, and tags never move backward.
func (a *Atomic) recycle(from, to uint64) {
	n := uint64(len(a.words))
	lo := from + 1
	if to >= n && lo < to-n+1 {
		lo = to - n + 1 // the slide laps the ring; only the top n blocks survive
	}
	a.reMu.Lock()
	for b := lo; b <= to; b++ {
		wd := a.slot(b)
		if wd.tag.Load() >= stableTag(b) {
			continue
		}
		wd.tag.Store(stableTag(b) - 1) // announce: bits are about to be wiped
		if old := wd.bits.Load(); old != 0 {
			// Fold the outgoing block's deliveries into the wiped tally
			// before the bits vanish; runs once per 64 in-order packets.
			a.wiped.Add(uint64(bits.OnesCount64(old)))
		}
		wd.bits.Store(0)
		wd.tag.Store(stableTag(b))
	}
	a.reMu.Unlock()
}

// Delivered returns how many distinct sequence numbers this window has
// delivered since its last Reinit: the bits recycling wiped plus the bits
// still live in the ring, minus the bits Reinit pre-marked. Exact once
// admits quiesce (every claim's fetch-OR is a delivery and vice versa);
// while admits are in flight it is a moment-in-time snapshot that can
// additionally over-count by claims that straddled a whole-ring slide (the
// same vanishingly rare interleaving documented in claim). This derivation
// is what lets the admission fast path skip a dedicated delivered counter —
// the claim bit-flip already records the event.
func (a *Atomic) Delivered() uint64 {
	var live uint64
	for i := range a.words {
		live += uint64(bits.OnesCount64(a.words[i].bits.Load()))
	}
	return a.wiped.Load() + live - a.preMarked
}

// claim runs the test-and-set for s under the tag protocol described on
// atomicWord and returns deliver — DecisionInWindow for the in-window path,
// DecisionNew for the freshly CASed edge — if this call flipped the bit.
// The fetch-OR is the single point that decides delivery of s: of all
// concurrent admits of one number (including the edge-CAS winner racing a
// replay of its own number), exactly one observes the bit clear under a
// stable tag.
func (a *Atomic) claim(s uint64, deliver Decision) Decision {
	b := s / 64
	wd := a.slot(b)
	bit := uint64(1) << (s % 64)
	want := stableTag(b)
	for {
		// The tag is checked BEFORE the flip and again after it; both
		// checks are load-bearing. The pre-check ensures the flip only
		// lands while the slot stably holds s's block — without it, a flip
		// racing an in-progress recycle can land between the recycler's
		// bits read and its wipe, and the post-check alone cannot tell (the
		// recycler publishes the final even tag right after the wipe), so a
		// "delivered" packet would leave no seen-bit behind and its replay
		// would deliver again. The post-check ensures no recycle started
		// after the pre-check read its stable tag.
		switch tag := wd.tag.Load(); {
		case tag > want:
			// The slot was (or is being) recycled past s's block: s is
			// stale under an edge at least a full ring ahead. If s was
			// delivered before the lap its bit is gone, but every future
			// admit of s lands here (tags only grow), so nothing can
			// deliver it again; if it was never delivered, discarding a
			// fresh number that raced a whole-ring slide is the
			// conservative trade every window makes below its edge.
			return DecisionStale
		case tag < want:
			// An advance has published an edge covering s but has not
			// finished recycling this word; wait for it.
			runtime.Gosched()
			continue
		}
		// Test-and-set via an explicit CAS loop. (Not atomic.Uint64.Or: its
		// old-value intrinsic miscompiles on go1.24.0/amd64, clobbering the
		// register holding `deliver` with the Or result.)
		var old uint64
		for {
			old = wd.bits.Load()
			if old&bit != 0 || wd.bits.CompareAndSwap(old, old|bit) {
				break
			}
		}
		if wd.tag.Load() != want {
			// Recycled underneath us: the bit may have been wiped, so the
			// verdict is a conservative Stale (s is already below the newer
			// published edge). If our flip instead landed AFTER the wipe it
			// pollutes the slot's new block, and the one number aliasing
			// that bit position is later mis-reported Duplicate — a
			// conservative discard the ConcurrentWindow contract permits.
			// The pollution is deliberately NOT undone: from here we cannot
			// distinguish our surviving flip from a wiped flip followed by
			// a legitimate delivery of the aliasing number, and clearing a
			// delivered number's bit would re-admit its replay. Requires a
			// claim stalled across a whole-ring slide, so the lost number
			// is vanishingly rare; its retransmissions are rejected only
			// until the slot recycles again.
			return DecisionStale
		}
		if old&bit != 0 {
			return DecisionDuplicate
		}
		return deliver
	}
}

// Edge returns the right edge.
func (a *Atomic) Edge() uint64 { return a.edge.Load() }

// W returns the logical window width.
func (a *Atomic) W() int { return a.w }

// Seen reports whether s is marked received (stale numbers report true,
// numbers above the edge false), mirroring Bitmap.Seen. Under concurrency
// the answer is a racy snapshot.
func (a *Atomic) Seen(s uint64) bool {
	r := a.edge.Load()
	if staleBelow(s, r, a.w) {
		return true
	}
	if s > r {
		return false
	}
	b := s / 64
	wd := a.slot(b)
	if tag := wd.tag.Load(); tag != stableTag(b) {
		return tag > stableTag(b) // carried past: effectively stale; not yet recycled: unseen
	}
	return wd.bits.Load()&(uint64(1)<<(s%64)) != 0
}

// Reinit reinstalls the window at edge, full or empty. Unlike Admit, Reinit
// requires external serialization against concurrent use (core.Receiver
// calls it only while its write gate excludes the admission fast path).
func (a *Atomic) Reinit(edge uint64, allSeen bool) {
	a.reMu.Lock()
	defer a.reMu.Unlock()
	a.wiped.Store(0)
	a.preMarked = 0
	a.edge.Store(edge)
	n := uint64(len(a.words))
	top := edge / 64
	// Reset every slot to its initial identity, then install the blocks at
	// and below the edge; slots above the edge's reach keep blocks 0..n-1
	// exactly as a fresh window would.
	for i := uint64(0); i < n; i++ {
		a.words[i].bits.Store(0)
		a.words[i].tag.Store(stableTag(i))
	}
	lo := uint64(0)
	if top >= n {
		lo = top - n + 1
	}
	for b := lo; b <= top; b++ {
		a.slot(b).tag.Store(stableTag(b))
	}
	if !allSeen {
		return
	}
	first := uint64(1)
	if edge > uint64(a.w) {
		first = edge - uint64(a.w) + 1
	}
	for s := first; s <= edge; s++ {
		a.slot(s / 64).bits.Or(uint64(1) << (s % 64))
	}
	if edge >= first {
		a.preMarked = edge - first + 1
	}
}
